// Command durability demonstrates the WAL sync levels, centred on
// grouped mode's commit futures: appends return immediately, a
// background group-commit daemon fsyncs each shard log once per
// pending window, and Wait() blocks until the batched fsync has made
// the append durable. See docs/DURABILITY.md for the full semantics.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

func main() {
	dir, err := os.MkdirTemp("", "fungusdb-durability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := core.Open(core.DBConfig{
		Seed: 1,
		Dir:  dir,
		// The DB-level default; individual tables can override it via
		// TableConfig.Durability or the spec's "durability" field.
		Durability: wal.DurabilityGrouped,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := tuple.MustSchema(
		tuple.Column{Name: "device", Kind: tuple.KindString},
		tuple.Column{Name: "temp", Kind: tuple.KindFloat},
	)
	readings, err := db.CreateTable("readings", core.TableConfig{
		Schema:  schema,
		Shards:  4,
		Persist: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One durable insert: the returned commit future resolves after the
	// group-commit window covering it is fsynced (at most one window
	// interval later, 2ms by default).
	start := time.Now()
	tp, wait, err := readings.InsertDurable(core.Row("sensor-1", 21.5))
	if err != nil {
		log.Fatal(err)
	}
	if err := wait.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuple %d durable after %v (grouped fsync)\n", tp.ID, time.Since(start).Round(time.Microsecond))

	// Many concurrent writers share each window's fsync: every wait
	// below resolves off a handful of group commits, not one fsync per
	// insert — that amortisation is the whole point of grouped mode.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 250; k++ {
				_, cw, err := readings.InsertDurable(core.Row(fmt.Sprintf("sensor-%d", w), float64(k)))
				if err != nil {
					log.Print(err)
					return
				}
				if err := cw.Wait(); err != nil {
					log.Print(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	info := readings.WALInfo()
	fmt.Printf("%d rows acknowledged durable via %d group commits (avg %.1f records per fsync)\n",
		readings.Len(), info.GroupCommits, info.AvgGroupSize)

	// A batch gets one future covering every row in it.
	rows := make([][]tuple.Value, 100)
	for i := range rows {
		rows[i] = core.Row("bulk", float64(i))
	}
	if _, batchWait, err := readings.InsertBatchDurable(rows); err != nil {
		log.Fatal(err)
	} else if err := batchWait.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("batch of 100 acknowledged by one commit future")
	fmt.Printf("sync mode %q; compare durability=strict (fsync per append) and durability=none (fsync at checkpoint only)\n",
		info.SyncMode)
}
