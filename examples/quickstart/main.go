// Quickstart: the two natural laws of Big Data in ~60 lines.
//
//	go run ./examples/quickstart
//
// A table of sensor readings decays under the EGI fungus (law 1) while
// queries consume what they answer (law 2), distilling it into a
// knowledge container that outlives the raw data.
package main

import (
	"fmt"
	"log"

	"fungusdb/internal/container"
	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
)

func main() {
	db, err := core.Open(core.DBConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	schema := tuple.MustSchema(
		tuple.Column{Name: "device", Kind: tuple.KindString},
		tuple.Column{Name: "temp", Kind: tuple.KindFloat},
	)
	readings, err := db.CreateTable("readings", core.TableConfig{
		Schema: schema,
		// Law 1: the extent decays — EGI plants rot spots that grow
		// along the insertion-time axis.
		Fungus:       fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 2, DecayRate: 0.1, AgeBias: 2}),
		DistillOnRot: true,                            // inspect rotting tuples once before removal
		Digest:       container.CompactDigestConfig(), // small extent, small sketches
	})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 1000; i++ {
		if _, err := readings.Insert(core.Row(fmt.Sprintf("sensor-%d", i%10), 20+float64(i%15))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded:  %d tuples\n", readings.Len())

	// Prepared statements compile once and stream: the `?` binds at
	// Execute, and rows arrive shard-parallel in insertion order
	// without materialising the answer set.
	warm, err := readings.Prepare("SELECT device, temp FROM readings WHERE temp > ? LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	rows, err := warm.Execute(tuple.Float(28))
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		v := rows.Values()
		fmt.Printf("streamed: %s %s\n", v[0].AsString(), v[1])
	}
	if err := rows.Close(); err != nil {
		log.Fatal(err)
	}

	// Law 2: a consume query removes what it answers and cooks it into
	// the "hot" knowledge container.
	res, err := readings.Query("temp > 30", query.Consume, core.QueryOpts{Distill: "hot"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumed %d hot readings; extent now %d\n", res.Len(), readings.Len())

	// Let nature work: 40 clock cycles of decay.
	for i := 0; i < 40; i++ {
		if _, err := db.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after 40 ticks: %s\n", readings.Profile())

	// The raw rows may be gone, but the knowledge survives.
	hot := readings.Shelf().Get("hot").Digest
	mean, _ := hot.Mean("temp")
	ndv, _ := hot.NDV("device")
	fmt.Printf("knowledge: %d hot readings from ~%d devices, mean temp %.1f, in %d bytes\n",
		hot.Count(), ndv, mean, hot.Bytes())

	fmt.Println("counters:", readings.Counters())
}
