// IoT fleet example: distill-before-rot at scale.
//
//	go run ./examples/iot
//
// A hundred sensors stream readings through an ingestion pipeline into
// a decaying table. The operator's dashboard asks two standing
// questions — current alarms (peek, refreshing what it touches) and an
// hourly consume-query that archives old readings into per-hour
// knowledge containers before the fungus can eat them. The final report
// shows the paper's health criterion: nothing of value rotted away
// uncaptured, yet the extent stayed small.
package main

import (
	"fmt"
	"log"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/ingest"
	"fungusdb/internal/query"
	"fungusdb/internal/workload"
)

const (
	hours        = 6
	ticksPerHour = 50
	rowsPerTick  = 200
)

func main() {
	db, err := core.Open(core.DBConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.NewIoT(100, 7)
	egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 20, DecayRate: 0.05, AgeBias: 2})
	readings, err := db.CreateTable("readings", core.TableConfig{
		Schema:            gen.Schema(),
		Fungus:            fungus.AccessRefresh{Inner: egi}, // tended data stays alive
		TouchOnRead:       true,
		DistillOnRot:      true, // whatever rots anyway is still inspected once
		ContainerHalfLife: 0,    // archives never decay in this example
	})
	if err != nil {
		log.Fatal(err)
	}

	pipe, err := ingest.New(gen, readings, ingest.Config{BatchSize: rowsPerTick})
	if err != nil {
		log.Fatal(err)
	}

	for hour := 0; hour < hours; hour++ {
		for tick := 0; tick < ticksPerHour; tick++ {
			if _, err := pipe.Run(rowsPerTick); err != nil {
				log.Fatal(err)
			}
			if _, err := db.Tick(); err != nil {
				log.Fatal(err)
			}

			// Dashboard: watch the alarms. Peek + TouchOnRead keeps
			// alarming readings fresh — the owner is "taking care" of
			// exactly the data that matters.
			if _, err := readings.Query("alarm", query.Peek); err != nil {
				log.Fatal(err)
			}
		}

		// End of hour: archive everything older than half an hour into
		// this hour's container, consuming it from the extent.
		cutoff := uint64(db.Now()) - ticksPerHour/2
		archive := fmt.Sprintf("hour-%02d", hour)
		res, err := readings.Query(
			fmt.Sprintf("_t < %d", cutoff),
			query.Consume,
			core.QueryOpts{Distill: archive},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hour %d: archived %6d readings into %q; extent %6d, %s\n",
			hour, res.Len(), archive, readings.Len(), readings.Profile())
	}

	fmt.Println("\n=== end of shift ===")
	c := readings.Counters()
	fmt.Println("counters:", c)
	fmt.Printf("health: %.1f%% of departed readings captured as knowledge\n", 100*c.CaptureRate())

	fmt.Println("\nwhat the archives know:")
	for _, name := range readings.Shelf().Names() {
		d := readings.Shelf().Get(name).Digest
		mean, _ := d.Mean("temp")
		q95, _ := d.Quantile("temp", 0.95)
		lo, hi := d.TickRange()
		fmt.Printf("  %-8s %7d readings  ticks %s..%s  mean temp %5.1f  p95 %5.1f  (%d bytes)\n",
			name, d.Count(), lo, hi, mean, q95, d.Bytes())
	}

	// Was sensor-042 ever hot? The raw rows are long gone; the bloom
	// filters still answer definite negatives.
	d0 := readings.Shelf().Get("hour-00")
	if d0 != nil {
		present, _ := d0.Digest.MayContain("device", core.Row("sensor-042")[0])
		fmt.Printf("\nhour-00 may contain sensor-042: %v\n", present)
	}
}
