// Logrot example: EGI versus TTL retention, side by side.
//
//	go run ./examples/logrot
//
// The same syslog stream feeds two tables: one under classic TTL
// retention, one under the EGI fungus. An ingestion-time refiner drops
// debug noise before it ever lands (cooking a.s.a.p., §3). The report
// contrasts the two decay shapes — TTL's hard horizon versus EGI's blue
// cheese, which keeps scattered old entries "edible for a long time" —
// and shows that serious events were distilled into a never-rotting
// incident container under both regimes.
package main

import (
	"fmt"
	"log"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/ingest"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
	"fungusdb/internal/workload"
)

func main() {
	db, err := core.Open(core.DBConfig{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	mk := func(name string, f fungus.Fungus) (*core.Table, *ingest.Pipeline) {
		gen := workload.NewSyslog(16, 17) // same seed -> identical streams
		tbl, err := db.CreateTable(name, core.TableConfig{
			Schema:            gen.Schema(),
			Fungus:            f,
			ContainerHalfLife: 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Cook at ingestion: debug chatter (severity 7) never lands.
		pipe, err := ingest.New(gen, tbl, ingest.Config{
			BatchSize: 200,
			Refiner: ingest.RefinerFunc(func(row []tuple.Value) (bool, error) {
				return row[1].AsInt() < 7, nil
			}),
		})
		if err != nil {
			log.Fatal(err)
		}
		return tbl, pipe
	}

	ttlTbl, ttlPipe := mk("logs_ttl", fungus.TTL{Lifetime: 60})
	egiTbl, egiPipe := mk("logs_egi", fungus.NewEGI(fungus.EGIConfig{
		SeedsPerTick: 8, DecayRate: 0.08, AgeBias: 2,
	}))

	const ticks = 120
	for tick := 1; tick <= ticks; tick++ {
		if _, err := ttlPipe.Run(200); err != nil {
			log.Fatal(err)
		}
		if _, err := egiPipe.Run(200); err != nil {
			log.Fatal(err)
		}
		if _, err := db.Tick(); err != nil {
			log.Fatal(err)
		}

		// Incident response: serious events (sev <= 3) are consumed
		// into the incident book on both arms, every 10 ticks.
		if tick%10 == 0 {
			for _, tbl := range []*core.Table{ttlTbl, egiTbl} {
				if _, err := tbl.Query("severity <= 3", query.Consume,
					core.QueryOpts{Distill: "incidents"}); err != nil {
					log.Fatal(err)
				}
			}
		}
		if tick%30 == 0 {
			fmt.Printf("t%-4d ttl: %s\n", tick, ttlTbl.Profile())
			fmt.Printf("      egi: %s\n", egiTbl.Profile())
		}
	}

	fmt.Println("\n=== decay shapes along the time axis (old -> new) ===")
	show := func(name string, tbl *core.Table) {
		fmt.Printf("%s:\n", name)
		for _, b := range tbl.TimeSeries(8) {
			bar := ""
			for i := 0; i < int(b.Mean*24); i++ {
				bar += "#"
			}
			fmt.Printf("  ids %7d..%-7d live %6d  mean %.2f %s\n", b.FromID, b.ToID, b.Live, b.Mean, bar)
		}
	}
	show("ttl (hard horizon: old buckets empty, recent pristine)", ttlTbl)
	show("egi (blue cheese: old buckets thinned but still populated)", egiTbl)

	fmt.Println("\n=== incident books (identical streams -> comparable knowledge) ===")
	for _, arm := range []struct {
		name string
		tbl  *core.Table
	}{{"ttl", ttlTbl}, {"egi", egiTbl}} {
		c := arm.tbl.Shelf().Get("incidents")
		if c == nil {
			fmt.Printf("  %s: no incidents captured\n", arm.name)
			continue
		}
		d := c.Digest
		top, _ := d.HeavyHitters("host", 3)
		fmt.Printf("  %s: %d serious events", arm.name, d.Count())
		if len(top) > 0 {
			fmt.Printf("; noisiest host %s (~%d)", top[0].Item, top[0].Count)
		}
		fmt.Println()
	}

	fmt.Println("\ncounters:")
	fmt.Println("  ttl:", ttlTbl.Counters())
	fmt.Println("  egi:", egiTbl.Counters())
}
