// CEP example: standing rules over a decaying log stream.
//
//	go run ./examples/cep
//
// The paper's conclusion notes its laws are "fundamental to streaming
// database systems, or Complex Event Processing systems". Here a syslog
// stream flows through a short-TTL table while a stream.Monitor watches
// it with three standing rules: every 500-class error, every emergency,
// and the complex pattern "auth failure followed by a 500 within 5
// ticks". Matched events are pinned into a never-rotting incident
// container; everything else rots away on schedule. The monitor's
// Missed counter shows what the rules never saw because it decayed
// first — the paper's cook-it-or-lose-it bargain, measured.
package main

import (
	"fmt"
	"log"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/stream"
	"fungusdb/internal/tuple"
	"fungusdb/internal/workload"
)

func main() {
	db, err := core.Open(core.DBConfig{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.NewSyslog(12, 23)
	logs, err := db.CreateTable("logs", core.TableConfig{
		Schema: gen.Schema(),
		Fungus: fungus.TTL{Lifetime: 8}, // raw log lines live 8 ticks
	})
	if err != nil {
		log.Fatal(err)
	}

	mon := stream.NewMonitor(logs)
	var incidents []tuple.Tuple
	pin := func(e stream.Event) { incidents = append(incidents, e.Tuple) }

	must(mon.OnMatch("http-500", "status = 500", pin))
	must(mon.OnMatch("emergency", "severity = 0", pin))
	breaches := 0
	must(mon.OnSequence("auth-then-500",
		"msg = 'auth failure'", "status = 500", 5,
		func(e stream.Event) {
			breaches++
			if breaches <= 3 {
				fmt.Printf("  complex event at %s: auth failure (t%d) followed by 500\n",
					e.At, uint64(e.First.T))
			}
		}))

	const ticks, perTick = 300, 40
	for tick := 0; tick < ticks; tick++ {
		for i := 0; i < perTick; i++ {
			if _, err := logs.Insert(gen.Next()); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := db.Tick(); err != nil {
			log.Fatal(err)
		}
		// The monitor polls every other tick; with an 8-tick TTL it
		// always arrives in time, so nothing is missed.
		if tick%2 == 1 {
			if _, err := mon.Poll(); err != nil {
				log.Fatal(err)
			}
		}
	}
	mon.Poll()

	// Pin the collected incidents into a container that never rots.
	if err := logs.Shelf().Absorb("incidents", db.Now(), 0, incidents); err != nil {
		log.Fatal(err)
	}

	st := mon.Stats()
	fmt.Printf("\nmonitor: polled %d tuples, %d rule firings, %d missed (rotted unseen)\n",
		st.Polled, st.Fired, st.Missed)
	fmt.Printf("complex auth→500 sequences: %d\n", breaches)
	fmt.Printf("table now holds %d raw lines (TTL window); %d inserted in total\n",
		logs.Len(), logs.Counters().Inserted)

	inc := logs.Shelf().Get("incidents").Digest
	fmt.Printf("\nincident container: %d events in %d bytes\n", inc.Count(), inc.Bytes())
	top, _ := inc.HeavyHitters("host", 3)
	for _, e := range top {
		fmt.Printf("  %-10s ~%d incidents\n", e.Item, e.Count)
	}

	// Sliding-window dashboards over the decaying extent.
	w, err := mon.WindowStats("severity", 4, db.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlast-4-tick window: %d lines, mean severity %.2f\n", w.Count, w.Mean)

	// Demonstrate the bargain: a lazy monitor on the same stream misses
	// most of it.
	lazyTbl, _ := db.CreateTable("logs2", core.TableConfig{
		Schema: gen.Schema(),
		Fungus: fungus.TTL{Lifetime: 4},
	})
	lazy := stream.NewMonitor(lazyTbl)
	lazy.OnMatch("all", "", func(stream.Event) {})
	for tick := 0; tick < 100; tick++ {
		for i := 0; i < perTick; i++ {
			lazyTbl.Insert(gen.Next())
		}
		db.Tick()
		if tick%20 == 19 { // polls every 20 ticks against a 4-tick TTL
			lazy.Poll()
		}
	}
	lazy.Poll()
	ls := lazy.Stats()
	fmt.Printf("\nlazy monitor (poll every 20 ticks, TTL 4): saw %d, missed %d (%.0f%% lost)\n",
		ls.Polled, ls.Missed, 100*float64(ls.Missed)/float64(ls.Polled+ls.Missed))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
