// Clickstream example: consume-on-query analytics.
//
//	go run ./examples/clickstream
//
// Click events land in a table with a strict TTL (sessions lose value
// fast). Three analytics jobs run as consume queries — conversions,
// engaged reads, bounces — each distilling its slice of the stream into
// its own container. The same event is never analysed twice (answers
// are disjoint by construction, the second natural law), and whatever
// no job claimed rots away on schedule.
package main

import (
	"fmt"
	"log"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/ingest"
	"fungusdb/internal/query"
	"fungusdb/internal/workload"
)

func main() {
	db, err := core.Open(core.DBConfig{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	gen := workload.NewClickstream(20000, 500, 99)
	clicks, err := db.CreateTable("clicks", core.TableConfig{
		Schema: gen.Schema(),
		Fungus: fungus.TTL{Lifetime: 30}, // raw clicks live 30 ticks, no exceptions
	})
	if err != nil {
		log.Fatal(err)
	}

	pipe, err := ingest.New(gen, clicks, ingest.Config{BatchSize: 500})
	if err != nil {
		log.Fatal(err)
	}

	jobs := []struct {
		name  string
		where string
	}{
		{"conversions", "converted"},
		{"engaged", "dwell_ms > 5000"},
		{"bounces", "dwell_ms < 200"},
	}

	const rounds = 20
	for round := 0; round < rounds; round++ {
		if _, err := pipe.Run(2000); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := db.Tick(); err != nil {
				log.Fatal(err)
			}
		}
		for _, job := range jobs {
			res, err := clicks.Query(job.where, query.Consume, core.QueryOpts{Distill: job.name})
			if err != nil {
				log.Fatal(err)
			}
			if round == rounds-1 {
				fmt.Printf("round %2d %-12s claimed %5d events\n", round, job.name, res.Len())
			}
		}
	}

	fmt.Printf("\nextent after %d rounds: %d raw clicks (TTL keeps it bounded)\n", rounds, clicks.Len())
	fmt.Println("counters:", clicks.Counters())

	fmt.Println("\nper-job knowledge:")
	for _, job := range jobs {
		c := clicks.Shelf().Get(job.name)
		if c == nil {
			continue
		}
		d := c.Digest
		users, _ := d.NDV("user")
		meanDwell, _ := d.Mean("dwell_ms")
		fmt.Printf("  %-12s %7d events  ~%6d users  mean dwell %6.0f ms\n",
			job.name, d.Count(), users, meanDwell)
		top, _ := d.HeavyHitters("url", 3)
		for _, e := range top {
			fmt.Printf("      %-14s ~%d hits\n", e.Item, e.Count)
		}
	}

	// Sanity: disjointness. Total claimed + rotted + still live equals
	// total ingested — each click was counted exactly once somewhere.
	c := clicks.Counters()
	total := c.Consumed + c.Rotted + uint64(clicks.Len())
	fmt.Printf("\naccounting: consumed %d + rotted %d + live %d = %d (inserted %d)\n",
		c.Consumed, c.Rotted, clicks.Len(), total, c.Inserted)
}
