module fungusdb

go 1.22
