// Command fungusbench regenerates the experiment tables and figures
// catalogued in DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	fungusbench [-exp E1|E2|...|all] [-scale 1.0] [-seed N]
//	fungusbench -benchjson bench.txt [-benchout BENCH_ci.json]
//	            [-baseline BENCH_baseline.json] [-tolerance 0.25]
//
// Each experiment prints an aligned text table; figure experiments
// print their series as rows. Scale < 1 shrinks the workloads
// proportionally (tests use 0.05); the shapes are scale-invariant.
// The -benchjson mode is the CI benchmark tracker: see benchjson.go.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fungusdb/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E9) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 20150104, "deterministic seed")
	shards := flag.Int("shards", 1, "extent shards per table (1 = pre-sharding engine)")
	benchIn := flag.String("benchjson", "", "parse `go test -bench` output from this file ('-' = stdin) into JSON and exit")
	benchOut := flag.String("benchout", "BENCH_ci.json", "JSON report path for -benchjson")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (with -benchjson)")
	tolerance := flag.Float64("tolerance", 0.25, "max allowed ns/op growth vs -baseline before failing")
	flag.Parse()

	if *benchIn != "" {
		os.Exit(runBenchJSON(*benchIn, *benchOut, *baseline, *tolerance))
	}

	cfg := sim.Config{Scale: *scale, Seed: *seed, Shards: *shards}

	ids := sim.ExperimentIDs
	if *exp != "all" {
		if _, ok := sim.Runner[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "fungusbench: unknown experiment %q (want E1..E9 or all)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		table := sim.Runner[id](cfg)
		table.Render(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
