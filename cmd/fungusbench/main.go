// Command fungusbench regenerates the experiment tables and figures
// catalogued in DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	fungusbench [-exp E1|E2|...|all] [-scale 1.0] [-seed N]
//	fungusbench -macro short|mixed|soak|all|list [-macro-scale 1.0]
//	fungusbench [-macro ...] [-benchjson bench.txt] [-benchout BENCH_ci.json]
//	            [-baseline BENCH_baseline.json] [-tolerance 0.25]
//
// Each experiment prints an aligned text table; figure experiments
// print their series as rows. Scale < 1 shrinks the workloads
// proportionally (tests use 0.05); the shapes are scale-invariant.
//
// -macro runs end-to-end macro-benchmarks (concurrent streaming
// clients against a live server with ingest and decay running; see
// internal/macrobench) and folds their latency percentiles into the
// same benchjson report the micro-benchmarks feed, so one baseline
// gates both. The -benchjson mode is the CI benchmark tracker: see
// benchjson.go. The two combine: CI passes both flags and gets one
// merged BENCH_ci.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fungusdb/internal/macrobench"
	"fungusdb/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E9) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 20150104, "deterministic seed")
	shards := flag.Int("shards", 1, "extent shards per table (1 = pre-sharding engine)")
	benchIn := flag.String("benchjson", "", "parse `go test -bench` output from this file ('-' = stdin) into JSON and exit")
	benchOut := flag.String("benchout", "BENCH_ci.json", "JSON report path for -benchjson / -macro")
	baseline := flag.String("baseline", "", "baseline JSON to gate against (with -benchjson / -macro)")
	tolerance := flag.Float64("tolerance", 0.25, "max allowed ns/op growth vs -baseline before failing")
	macro := flag.String("macro", "", "run macro experiments: comma list, 'all', or 'list' to enumerate")
	macroScale := flag.Float64("macro-scale", 1.0, "macro experiment scale factor (duration, concurrency, preload)")
	macroCount := flag.Int("macro-count", 1, "repetitions per macro experiment; each cell keeps the minimum")
	flag.Parse()

	if *macro == "list" {
		for _, name := range macrobench.List() {
			desc, _ := macrobench.Describe(name)
			fmt.Printf("%-8s %s\n", name, desc)
		}
		return
	}
	if *benchIn != "" || *macro != "" {
		os.Exit(runBenchJSON(*benchIn, *macro, *macroScale, *macroCount, *seed, *benchOut, *baseline, *tolerance))
	}

	cfg := sim.Config{Scale: *scale, Seed: *seed, Shards: *shards}

	ids := sim.ExperimentIDs
	if *exp != "all" {
		if _, ok := sim.Runner[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "fungusbench: unknown experiment %q (want E1..E9 or all)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		table := sim.Runner[id](cfg)
		table.Render(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
