// Command fungusbench regenerates the experiment tables and figures
// catalogued in DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	fungusbench [-exp E1|E2|...|all] [-scale 1.0] [-seed N]
//
// Each experiment prints an aligned text table; figure experiments
// print their series as rows. Scale < 1 shrinks the workloads
// proportionally (tests use 0.05); the shapes are scale-invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fungusdb/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (E1..E9) or 'all'")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	seed := flag.Int64("seed", 20150104, "deterministic seed")
	shards := flag.Int("shards", 1, "extent shards per table (1 = pre-sharding engine)")
	flag.Parse()

	cfg := sim.Config{Scale: *scale, Seed: *seed, Shards: *shards}

	ids := sim.ExperimentIDs
	if *exp != "all" {
		if _, ok := sim.Runner[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "fungusbench: unknown experiment %q (want E1..E9 or all)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	for _, id := range ids {
		start := time.Now()
		table := sim.Runner[id](cfg)
		table.Render(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
