package main

import (
	"io"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: fungusdb
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedTick/shards=1-8         	     494	    450496 ns/op	     944 B/op	      11 allocs/op
BenchmarkShardedTick/shards=1-8         	     501	    440000 ns/op	     940 B/op	      11 allocs/op
BenchmarkRecovery/shards=4-8            	      38	  13965574 ns/op	10544013 B/op	  140199 allocs/op
BenchmarkPrunedScan/sel=0.001/shards=1/prune=pruned-8 	    4734	     74087 ns/op	        24.00 prunedsegs/op	     98304 skippedtuples/op
PASS
ok  	fungusdb	21.319s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parseBenchOutput(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" {
		t.Errorf("platform = %s/%s", rep.GOOS, rep.GOARCH)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	// Sorted by name, GOMAXPROCS suffix stripped, min ns/op kept.
	tick := rep.Benchmarks[2]
	if tick.Name != "BenchmarkShardedTick/shards=1" {
		t.Errorf("name = %q (suffix not stripped?)", tick.Name)
	}
	if tick.NsPerOp != 440000 || tick.Runs != 2 {
		t.Errorf("tick = %+v, want min 440000 over 2 runs", tick)
	}
	if tick.BytesPerOp != 940 || tick.AllocsPerOp != 11 {
		t.Errorf("tick mem metrics = %+v", tick)
	}
	// Custom b.ReportMetric units ride along in Metrics.
	pruned := rep.Benchmarks[0]
	if pruned.Name != "BenchmarkPrunedScan/sel=0.001/shards=1/prune=pruned" {
		t.Fatalf("pruned entry = %q", pruned.Name)
	}
	if pruned.Metrics["prunedsegs/op"] != 24 || pruned.Metrics["skippedtuples/op"] != 98304 {
		t.Errorf("custom metrics = %+v", pruned.Metrics)
	}
}

func TestCompareReportsGate(t *testing.T) {
	base := BenchReport{Benchmarks: []BenchEntry{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 1000},
	}}
	cur := BenchReport{Benchmarks: []BenchEntry{
		{Name: "BenchmarkA", NsPerOp: 1240}, // +24%: inside tolerance
		{Name: "BenchmarkB", NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 500},
	}}
	if n := compareReports(base, cur, 0.25, io.Discard); n != 1 {
		t.Errorf("regressions = %d, want 1 (only BenchmarkB; missing/new entries never fail)", n)
	}
	if n := compareReports(base, cur, 0.50, io.Discard); n != 0 {
		t.Errorf("regressions at +50%% tolerance = %d, want 0", n)
	}
}
