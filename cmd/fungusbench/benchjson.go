// Benchmark-tracking mode: fungusbench -benchjson parses `go test
// -bench` text output into a stable JSON report (BENCH_ci.json in CI)
// and optionally gates it against a checked-in baseline, failing on
// regressions beyond the tolerance. CI runs:
//
//	go test -bench='ShardedTick|ShardedIngest|Recovery' -benchtime=500ms \
//	    -count=3 -benchmem -run '^$' . | tee bench.txt
//	go run ./cmd/fungusbench -benchjson bench.txt -benchout BENCH_ci.json \
//	    -baseline BENCH_baseline.json -tolerance 0.25
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"fungusdb/internal/macrobench"
)

// BenchEntry is one benchmark's best observation. With -count > 1 the
// MINIMUM ns/op across repetitions is kept: the floor is the least
// noisy statistic on shared CI runners, and a regression that survives
// the minimum is real.
type BenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
	// Metrics carries any custom b.ReportMetric units the benchmark
	// emitted (e.g. the pruning counters "prunedsegs/op" and
	// "skippedtuples/op" from BenchmarkPrunedScan), from the same
	// repetition the ns/op minimum came from.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchReport is the BENCH_*.json schema.
type BenchReport struct {
	GOOS       string       `json:"goos,omitempty"`
	GOARCH     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkRecovery/shards=4-8   	     100	  11050825 ns/op	 1234 B/op	 12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// parseBenchOutput folds `go test -bench` text into a report. The
// trailing -N GOMAXPROCS suffix is stripped from names so reports
// compare across runner shapes.
func parseBenchOutput(r io.Reader) (BenchReport, error) {
	rep := BenchReport{}
	best := map[string]*BenchEntry{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		e := best[name]
		if e == nil {
			e = &BenchEntry{Name: name, NsPerOp: ns}
			best[name] = e
		}
		e.Runs++
		if ns <= e.NsPerOp {
			e.NsPerOp = ns
			e.BytesPerOp, e.AllocsPerOp = 0, 0
			e.Metrics = nil
			for _, metric := range strings.Split(m[4], "\t") {
				f := strings.Fields(strings.TrimSpace(metric))
				if len(f) != 2 {
					continue
				}
				v, err := strconv.ParseFloat(f[0], 64)
				if err != nil {
					continue
				}
				switch f[1] {
				case "B/op":
					e.BytesPerOp = v
				case "allocs/op":
					e.AllocsPerOp = v
				default:
					if e.Metrics == nil {
						e.Metrics = map[string]float64{}
					}
					e.Metrics[f[1]] = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	names := make([]string, 0, len(best))
	for n := range best {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		rep.Benchmarks = append(rep.Benchmarks, *best[n])
	}
	return rep, nil
}

// compareReports gates cur against base: any benchmark present in both
// whose ns/op grew by more than tolerance (0.25 = +25%) is a
// regression. Benchmarks only in one report are noted, not failed, so
// adding or retiring a benchmark never blocks CI.
func compareReports(base, cur BenchReport, tolerance float64, out io.Writer) (regressions int) {
	curBy := map[string]BenchEntry{}
	for _, e := range cur.Benchmarks {
		curBy[e.Name] = e
	}
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			fmt.Fprintf(out, "  ~ %-50s missing from current run\n", b.Name)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		mark := "ok"
		if ratio > 1+tolerance {
			mark = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "  %-2s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			map[string]string{"ok": "=", "REGRESSION": "!"}[mark], b.Name, b.NsPerOp, c.NsPerOp, (ratio-1)*100)
		delete(curBy, b.Name)
	}
	for name := range curBy {
		fmt.Fprintf(out, "  + %-50s new (no baseline)\n", name)
	}
	return regressions
}

// macroEntries runs the named macro experiments count times each and
// renders them as benchjson cells: Macro/<name>/query_p50|p95|p99
// carry the latency percentile as ns/op (what the baseline gate
// compares), and Macro/<name>/wall carries the run length plus the
// side counters (heap readings, ingest volume, shed rows) in the
// Metrics map. Like the micro parser, each cell keeps the MINIMUM
// across repetitions: tail percentiles are noisy on shared runners,
// and a regression that survives the floor is real.
func macroEntries(list string, scale float64, seed int64, count int) ([]BenchEntry, error) {
	names := macrobench.List()
	if list != "all" {
		names = strings.Split(list, ",")
	}
	if count < 1 {
		count = 1
	}
	var out []BenchEntry
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cells := map[string]*BenchEntry{}
		for rep := 0; rep < count; rep++ {
			res, err := macrobench.Run(name, macrobench.Config{Seed: seed + int64(rep), Scale: scale})
			if err != nil {
				return nil, err
			}
			fmt.Printf("macro %-8s wall %8v  p50 %8v  p95 %8v  p99 %8v  (%d queries, %d rows ingested, %d shed, %d ticks, heap peak %.1f MiB)\n",
				res.Name, res.Wall.Round(time.Millisecond),
				res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond), res.P99.Round(time.Microsecond),
				res.Queries, res.Rows, res.Dropped, res.Ticks, float64(res.HeapPeak)/(1<<20))
			prefix := "Macro/" + res.Name
			fold := func(suffix string, ns float64, metrics map[string]float64) {
				e := cells[suffix]
				if e == nil {
					e = &BenchEntry{Name: prefix + "/" + suffix, NsPerOp: ns, Metrics: metrics}
					cells[suffix] = e
				} else if ns < e.NsPerOp {
					e.NsPerOp = ns
					e.Metrics = metrics
				}
				e.Runs++
			}
			fold("query_p50", float64(res.P50.Nanoseconds()), nil)
			fold("query_p95", float64(res.P95.Nanoseconds()), nil)
			fold("query_p99", float64(res.P99.Nanoseconds()), nil)
			fold("wall", float64(res.Wall.Nanoseconds()), map[string]float64{
				"queries":           float64(res.Queries),
				"rows_ingested":     float64(res.Rows),
				"queue_dropped":     float64(res.Dropped),
				"ticks":             float64(res.Ticks),
				"soak_streams":      float64(res.Soak),
				"heap_before_bytes": float64(res.HeapPre),
				"heap_peak_bytes":   float64(res.HeapPeak),
				"heap_after_bytes":  float64(res.HeapPost),
			})
		}
		for _, suffix := range []string{"query_p50", "query_p95", "query_p99", "wall"} {
			out = append(out, *cells[suffix])
		}
	}
	return out, nil
}

// runBenchJSON is the -benchjson / -macro entry point; returns the
// exit code. Micro cells (parsed from `go test -bench` text) and macro
// cells (run in-process) merge into one report so a single baseline
// gates both.
func runBenchJSON(inPath, macroList string, macroScale float64, macroCount int, seed int64, outPath, baselinePath string, tolerance float64) int {
	var rep BenchReport
	if inPath != "" {
		var in io.Reader = os.Stdin
		if inPath != "-" {
			f, err := os.Open(inPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fungusbench:", err)
				return 2
			}
			defer f.Close()
			in = f
		}
		var err error
		rep, err = parseBenchOutput(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fungusbench: parse:", err)
			return 2
		}
	}
	if macroList != "" {
		cells, err := macroEntries(macroList, macroScale, seed, macroCount)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fungusbench:", err)
			return 2
		}
		rep.Benchmarks = append(rep.Benchmarks, cells...)
		sort.Slice(rep.Benchmarks, func(i, j int) bool {
			return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name
		})
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "fungusbench: no benchmark lines found")
		return 2
	}
	// Macro-only runs have no `go test` header lines to harvest the
	// platform from; fill it in so reports stay comparable.
	if rep.GOOS == "" {
		rep.GOOS = runtime.GOOS
	}
	if rep.GOARCH == "" {
		rep.GOARCH = runtime.GOARCH
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fungusbench:", err)
		return 2
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fungusbench:", err)
		return 2
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", outPath, len(rep.Benchmarks))

	if baselinePath == "" {
		return 0
	}
	baseData, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fungusbench: baseline:", err)
		return 2
	}
	var base BenchReport
	if err := json.Unmarshal(baseData, &base); err != nil {
		fmt.Fprintln(os.Stderr, "fungusbench: baseline decode:", err)
		return 2
	}
	fmt.Printf("vs %s (tolerance +%.0f%%):\n", baselinePath, tolerance*100)
	if n := compareReports(base, rep, tolerance, os.Stdout); n > 0 {
		fmt.Fprintf(os.Stderr, "fungusbench: %d benchmark(s) regressed beyond +%.0f%%\n", n, tolerance*100)
		return 1
	}
	fmt.Println("no regressions")
	return 0
}
