// Command fungusd serves a FungusDB over HTTP (see internal/server for
// the API). Decay advances in real time: one logical tick per -period.
//
//	fungusd -addr :8044 -dir /var/lib/fungusdb -period 1s
//
// With -dir set, tables created through the API with "persist": true
// survive restarts (WAL + snapshots + catalog).
//
// With -follow set, the process runs as a replication follower instead:
// it mirrors the leader's persistent tables as in-memory read-only
// replicas, tails the leader's WAL (see docs/REPLICATION.md), and
// serves read-only queries, stats and metrics. Mutating routes answer
// the stable "read_only" error code, and decay arrives exclusively via
// the leader's shipped tick/evict records — the local clock stays put.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/repl"
	"fungusdb/internal/server"
	"fungusdb/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8044", "listen address")
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	period := flag.Duration("period", time.Second, "wall time per decay tick")
	seed := flag.Int64("seed", 20150104, "deterministic seed")
	recoveryPar := flag.Int("recovery-parallelism", 0, "goroutines replaying per-shard WAL files at reopen (0 = worker pool size)")
	durability := flag.String("durability", "none", "default WAL sync level for persistent tables: none|grouped|strict (table specs override)")
	groupInterval := flag.Duration("group-commit-interval", 0, "grouped-durability flush tick (0 = 2ms default)")
	groupSize := flag.Int("group-commit-size", 0, "records per group-commit window before an early flush (0 = 512 default)")
	maxRequestBytes := flag.Int64("max-request-bytes", 0, "request body cap in bytes (0 = 64 MiB default, negative = unlimited)")
	follow := flag.String("follow", "", "leader base URL to replicate from (runs as a read-only follower)")
	flag.Parse()

	level, err := wal.ParseDurability(*durability)
	if err != nil {
		log.Fatalf("fungusd: %v", err)
	}
	if *follow != "" && *dir != "" {
		log.Fatalf("fungusd: -follow replicas are in-memory; drop -dir")
	}
	db, err := core.Open(core.DBConfig{
		Seed: *seed, Dir: *dir, RecoveryParallelism: *recoveryPar,
		Durability: level, GroupCommitInterval: *groupInterval, GroupCommitSize: *groupSize,
	})
	if err != nil {
		log.Fatalf("fungusd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	srvCfg := server.Config{MaxRequestBytes: *maxRequestBytes}
	var follower *repl.Follower
	if *follow != "" {
		follower, err = repl.Start(repl.Config{Leader: *follow, DB: db})
		if err != nil {
			log.Fatalf("fungusd: follow: %v", err)
		}
		defer follower.Stop()
		srvCfg.ReadOnly = true
		srvCfg.ReplStatus = follower.ServerStatus
	} else {
		// The periodic clock of T seconds: advance decay in real time.
		// A follower skips it — decay arrives through the leader's
		// shipped tick and evict records instead.
		go func() {
			tick := time.NewTicker(*period)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := db.Tick(); err != nil {
						log.Printf("fungusd: tick: %v", err)
					}
				}
			}
		}()
	}

	handler := server.NewWithConfig(db, srvCfg)
	if follower != nil {
		handler.Registry().Register(follower.Collector())
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	if *follow != "" {
		fmt.Printf("fungusd following %s on %s (read-only)\n", *follow, *addr)
	} else {
		fmt.Printf("fungusd listening on %s (tick period %v, dir %q)\n", *addr, *period, *dir)
	}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("fungusd: %v", err)
	}
	if err := db.Close(); err != nil {
		log.Fatalf("fungusd: close: %v", err)
	}
	fmt.Println("fungusd: checkpointed and stopped")
}
