// Command fungusctl is an interactive (and scriptable) shell over a
// FungusDB instance. It reads commands from stdin, one per line:
//
//	create <table> <name KIND, ...> [fungus=egi|ttl|linear|none] [rate=F] [shards=N] [durability=none|grouped|strict] [distill]
//	insert <table> <v1> <v2> ...
//	query  <table> peek|consume [into=<container>] [<where...>]
//	tick   [n]
//	stats  <table>
//	series <table> [buckets]
//	containers <table>
//	ask    <table> <container> count|ndv:<col>|mean:<col>|q50:<col>|top:<col>
//	tables
//	help
//	quit
//
// With -dir the instance is persistent: state survives restarts.
//
// With -addr pointing at a fungusd server, the `query` subcommand runs
// one statement remotely over the streaming v2 API and prints rows as
// they arrive:
//
//	fungusctl -addr http://localhost:8044 query "SELECT * FROM t WHERE x > ?" 42
//
// and the `stats` subcommand fetches a table's stats remotely — against
// a replication follower that includes its replication position and lag:
//
//	fungusctl -addr http://follower:8045 stats events
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/obs"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
	"fungusdb/internal/workload"
	"fungusdb/pkg/client"
)

var defaultShards = flag.Int("shards", 1, "default shard count for created tables (create ... shards=N overrides)")

func main() {
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	addr := flag.String("addr", "", "fungusd base URL for remote subcommands (e.g. http://localhost:8044)")
	recoveryPar := flag.Int("recovery-parallelism", 0, "goroutines replaying per-shard WAL files at reopen (0 = worker pool size)")
	durability := flag.String("durability", "none", "default WAL sync level for persistent tables: none|grouped|strict (create ... durability=L overrides)")
	groupInterval := flag.Duration("group-commit-interval", 0, "grouped-durability flush tick (0 = 2ms default)")
	groupSize := flag.Int("group-commit-size", 0, "records per group-commit window before an early flush (0 = 512 default)")
	flag.Parse()

	if flag.NArg() > 0 && flag.Arg(0) == "query" {
		if err := remoteQuery(*addr, flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "fungusctl:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() > 0 && flag.Arg(0) == "stats" && *addr != "" {
		if err := remoteStats(os.Stdout, *addr, flag.Args()[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "fungusctl:", err)
			os.Exit(1)
		}
		return
	}

	level, err := wal.ParseDurability(*durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fungusctl:", err)
		os.Exit(1)
	}
	db, err := core.Open(core.DBConfig{
		Seed: *seed, Dir: *dir, RecoveryParallelism: *recoveryPar,
		Durability: level, GroupCommitInterval: *groupInterval, GroupCommitSize: *groupSize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fungusctl:", err)
		os.Exit(1)
	}
	defer db.Close()

	sh := &shell{db: db, persist: *dir != "", out: os.Stdout}
	sh.repl(os.Stdin)
}

// remoteQuery streams one statement from a fungusd server: prepare the
// SQL, bind any trailing arguments as positional parameters, print
// rows as the NDJSON stream delivers them.
func remoteQuery(addr string, args []string) error {
	if addr == "" {
		return fmt.Errorf("query subcommand needs -addr <fungusd URL>")
	}
	if len(args) < 1 {
		return fmt.Errorf("usage: fungusctl -addr URL query <sql> [param ...]")
	}
	sql := args[0]
	params := make([]any, 0, len(args)-1)
	for _, raw := range args[1:] {
		params = append(params, parseParam(raw))
	}
	c := client.New(addr, nil)
	stmt, err := c.Prepare(sql)
	if err != nil {
		return err
	}
	rows, err := stmt.Query(params...)
	if err != nil {
		return err
	}
	defer rows.Close()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, strings.Join(rows.Cols(), "\t"))
	for rows.Next() {
		cells := rows.Row()
		for i, v := range cells {
			if i > 0 {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprintf(w, "%v", v)
		}
		fmt.Fprintln(w)
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Fprintf(w, "(%d rows, %d scanned)\n", rows.Count(), rows.Scanned())
	return nil
}

// remoteStats prints a table's stats from a fungusd server. Against a
// replication follower the server attaches the table's replication
// position, rendered here field by field from the wire JSON — the
// generic walk (rather than a hand-picked subset) means a new
// replication stat can never silently miss the CLI, which the parity
// test in main_test.go pins down.
func remoteStats(w io.Writer, addr string, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: fungusctl -addr URL stats <table>")
	}
	c := client.New(addr, nil)
	st, err := c.Stats(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "live %d over %d shards, %d bytes, mean freshness %.3f\n",
		st.Live, st.Shards, st.Bytes, st.MeanFresh)
	fmt.Fprintf(w, "inserted %d, rotted %d, consumed %d, queries %d, ticks %d\n",
		st.Inserted, st.Rotted, st.Consumed, st.Queries, st.Ticks)
	if st.Persistent {
		fmt.Fprintf(w, "wal: sync mode %s\n", st.WALSyncMode)
	}
	if st.Replication != nil {
		fmt.Fprintln(w, "replication:")
		data, err := json.Marshal(st.Replication)
		if err != nil {
			return err
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			return err
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s %v\n", k, m[k])
		}
	}
	return nil
}

// parseParam types a CLI parameter: int, then float, then bool, else
// string.
func parseParam(raw string) any {
	if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return f
	}
	if raw == "true" || raw == "false" {
		return raw == "true"
	}
	return raw
}

type shell struct {
	db      *core.DB
	persist bool
	out     io.Writer
}

func (s *shell) repl(in io.Reader) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprintln(s.out, "fungusdb shell — 'help' for commands")
	for {
		fmt.Fprint(s.out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := s.exec(line); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	}
}

func (s *shell) exec(line string) error {
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "help":
		fmt.Fprint(s.out, helpText)
		return nil
	case "tables":
		for _, n := range s.db.Tables() {
			fmt.Fprintln(s.out, n)
		}
		return nil
	case "create":
		return s.create(args, line)
	case "insert":
		return s.insert(args)
	case "query":
		return s.query(args)
	case "tick":
		return s.tick(args)
	case "stats":
		return s.stats(args)
	case "series":
		return s.series(args)
	case "containers":
		return s.containers(args)
	case "ask":
		return s.ask(args)
	case "sql", "select", "SELECT":
		return s.sql(line)
	case "load":
		return s.load(args)
	case "dump":
		return s.dump(args)
	case "drop":
		if len(args) != 1 {
			return fmt.Errorf("usage: drop <table>")
		}
		if err := s.db.DropTable(args[0]); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "dropped %s\n", args[0])
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}

const helpText = `commands:
  create <table> <name KIND, ...> [fungus=egi|ttl|linear|none] [rate=F] [shards=N] [durability=none|grouped|strict] [distill]
  insert <table> <v1> <v2> ...
  query  <table> peek|consume [into=<container>] [<where...>]
  tick   [n]
  stats  <table>
  series <table> [buckets]
  containers <table>
  ask    <table> <container> count|ndv:<col>|mean:<col>|q50:<col>|top:<col>
  sql    SELECT [CONSUME] <targets> FROM <table> [WHERE ..] [GROUP BY ..] [ORDER BY ..] [LIMIT n]
  load   <table> iot|clickstream|syslog <n>   (table is created if missing)
  dump   <table> <file.csv> [where...]
  drop   <table>
  tables
  quit
`

// load bulk-generates workload rows into a table, creating the table
// with the workload's schema when it does not exist yet.
func (s *shell) load(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: load <table> iot|clickstream|syslog <n>")
	}
	n, err := strconv.Atoi(args[2])
	if err != nil || n < 1 {
		return fmt.Errorf("bad row count %q", args[2])
	}
	var gen workload.Generator
	switch args[1] {
	case "iot":
		gen = workload.NewIoT(100, 1)
	case "clickstream":
		gen = workload.NewClickstream(10000, 500, 1)
	case "syslog":
		gen = workload.NewSyslog(16, 1)
	default:
		return fmt.Errorf("unknown workload %q", args[1])
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		if tbl, err = s.db.CreateTable(args[0], core.TableConfig{
			Schema:  gen.Schema(),
			Shards:  *defaultShards,
			Persist: s.persist,
		}); err != nil {
			return err
		}
		fmt.Fprintf(s.out, "created %s(%s)\n", args[0], gen.Schema())
	} else if !tbl.Schema().Equal(gen.Schema()) {
		return fmt.Errorf("table %s schema (%s) does not match workload (%s)", args[0], tbl.Schema(), gen.Schema())
	}
	// Batched inserts: one shard-lock round per batch instead of per row.
	const loadBatch = 1024
	for done := 0; done < n; {
		b := loadBatch
		if rem := n - done; rem < b {
			b = rem
		}
		rows := make([][]tuple.Value, b)
		for i := range rows {
			rows[i] = gen.Next()
		}
		if _, err := tbl.InsertBatch(rows); err != nil {
			return err
		}
		done += b
	}
	fmt.Fprintf(s.out, "loaded %d %s rows into %s (extent %d)\n", n, args[1], args[0], tbl.Len())
	return nil
}

// dump writes the live extent (optionally filtered) as CSV with _id,
// _t and _f columns prepended.
func (s *shell) dump(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: dump <table> <file.csv> [where...]")
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		return err
	}
	res, err := tbl.Query(strings.Join(args[2:], " "), query.Peek)
	if err != nil {
		return err
	}
	f, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"_id", "_t", "_f"}
	for _, c := range tbl.Schema().Columns() {
		header = append(header, c.Name)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for i := range res.Tuples {
		tp := &res.Tuples[i]
		rec := []string{
			strconv.FormatUint(uint64(tp.ID), 10),
			strconv.FormatUint(uint64(tp.T), 10),
			strconv.FormatFloat(float64(tp.F), 'g', -1, 64),
		}
		for _, v := range tp.Attrs {
			if v.Kind() == tuple.KindString {
				rec = append(rec, v.AsString())
			} else {
				rec = append(rec, v.String())
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "dumped %d rows to %s\n", res.Len(), args[1])
	return nil
}

func (s *shell) sql(line string) error {
	src := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "sql"))
	stmt, err := query.ParseSelect(src)
	if err != nil {
		return err
	}
	tbl, err := s.db.Table(stmt.From)
	if err != nil {
		return err
	}
	g, err := tbl.SQL(src)
	if err != nil {
		return err
	}
	g.Render(s.out)
	fmt.Fprintf(s.out, "(%d rows)\n", len(g.Rows))
	return nil
}

func (s *shell) create(args []string, line string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: create <table> <schema> [options]")
	}
	name := args[0]

	// Separate trailing option tokens from the schema spec.
	rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(line, "create")), name))
	fungusName, rate, distill, shards := "none", 0.05, false, *defaultShards
	durability := wal.DurabilityDefault
	for {
		idx := strings.LastIndex(rest, " ")
		if idx < 0 {
			break
		}
		tok := rest[idx+1:]
		switch {
		case tok == "distill":
			distill = true
		case strings.HasPrefix(tok, "fungus="):
			fungusName = strings.TrimPrefix(tok, "fungus=")
		case strings.HasPrefix(tok, "rate="):
			f, err := strconv.ParseFloat(strings.TrimPrefix(tok, "rate="), 64)
			if err != nil {
				return fmt.Errorf("bad rate: %v", err)
			}
			rate = f
		case strings.HasPrefix(tok, "shards="):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "shards="))
			if err != nil || n < 1 {
				return fmt.Errorf("bad shards %q", strings.TrimPrefix(tok, "shards="))
			}
			shards = n
		case strings.HasPrefix(tok, "durability="):
			d, err := wal.ParseDurability(strings.TrimPrefix(tok, "durability="))
			if err != nil {
				return err
			}
			durability = d
		default:
			idx = -1
		}
		if idx < 0 {
			break
		}
		rest = strings.TrimSpace(rest[:idx])
	}

	schema, err := tuple.ParseSchema(rest)
	if err != nil {
		return err
	}
	var f fungus.Fungus
	switch fungusName {
	case "none":
		f = fungus.Null{}
	case "egi":
		f = fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 1, DecayRate: rate, AgeBias: 2})
	case "ttl":
		f = fungus.TTL{Lifetime: uint64(1 / rate)}
	case "linear":
		f = fungus.Linear{Rate: rate}
	default:
		return fmt.Errorf("unknown fungus %q", fungusName)
	}
	_, err = s.db.CreateTable(name, core.TableConfig{
		Schema:       schema,
		Fungus:       f,
		Shards:       shards,
		DistillOnRot: distill,
		Durability:   durability,
		Persist:      s.persist,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "created %s(%s) fungus=%s\n", name, schema, f.Name())
	return nil
}

func (s *shell) insert(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: insert <table> <values...>")
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		return err
	}
	schema := tbl.Schema()
	if len(args)-1 != schema.Len() {
		return fmt.Errorf("table %s wants %d values, got %d", args[0], schema.Len(), len(args)-1)
	}
	vals := make([]tuple.Value, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		raw := args[i+1]
		switch schema.Column(i).Kind {
		case tuple.KindInt:
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				return fmt.Errorf("column %s: %v", schema.Column(i).Name, err)
			}
			vals[i] = tuple.Int(n)
		case tuple.KindFloat:
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return fmt.Errorf("column %s: %v", schema.Column(i).Name, err)
			}
			vals[i] = tuple.Float(f)
		case tuple.KindBool:
			b, err := strconv.ParseBool(raw)
			if err != nil {
				return fmt.Errorf("column %s: %v", schema.Column(i).Name, err)
			}
			vals[i] = tuple.Bool(b)
		default:
			vals[i] = tuple.String_(raw)
		}
	}
	tp, err := tbl.Insert(vals)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "inserted id=%d t=%s\n", tp.ID, tp.T)
	return nil
}

func (s *shell) query(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: query <table> peek|consume [into=<c>] [where]")
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		return err
	}
	var mode query.Mode
	switch args[1] {
	case "peek":
		mode = query.Peek
	case "consume":
		mode = query.Consume
	default:
		return fmt.Errorf("mode must be peek or consume")
	}
	rest := args[2:]
	var opts core.QueryOpts
	if len(rest) > 0 && strings.HasPrefix(rest[0], "into=") {
		opts.Distill = strings.TrimPrefix(rest[0], "into=")
		rest = rest[1:]
	}
	where := strings.Join(rest, " ")
	res, err := tbl.Query(where, mode, opts)
	if err != nil {
		return err
	}
	limit := 20
	for i := range res.Tuples {
		if i == limit {
			fmt.Fprintf(s.out, "... (%d more)\n", res.Len()-limit)
			break
		}
		fmt.Fprintln(s.out, res.Tuples[i].String())
	}
	fmt.Fprintf(s.out, "%d tuples (%s, scanned %d, mean freshness %.3f)\n",
		res.Len(), mode, res.Scanned, res.MeanFreshness())
	return nil
}

func (s *shell) tick(args []string) error {
	n := 1
	if len(args) > 0 {
		v, err := strconv.Atoi(args[0])
		if err != nil || v < 1 {
			return fmt.Errorf("tick wants a positive count")
		}
		n = v
	}
	totalRot := 0
	for i := 0; i < n; i++ {
		rep, err := s.db.Tick()
		if err != nil {
			return err
		}
		totalRot += rep.TotalRot
	}
	fmt.Fprintf(s.out, "now %s, %d tuples rotted\n", s.db.Now(), totalRot)
	return nil
}

func (s *shell) stats(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: stats <table>")
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintln(s.out, tbl.Profile())
	fmt.Fprintln(s.out, tbl.Counters())
	st := tbl.StoreStats()
	fmt.Fprintf(s.out, "segments: %d live / %d total, %d dropped\n", st.SegsLive, st.SegsTotal, st.SegsDropped)
	if st.SegsPruned > 0 {
		fmt.Fprintf(s.out, "pruning: %d segments skipped (%d tuples never examined)\n", st.SegsPruned, st.TuplesSkipped)
	}
	if st.BatchesScanned > 0 {
		fmt.Fprintf(s.out, "vectorized: %d batches scanned (%d rows evaluated kernel-wise)\n", st.BatchesScanned, st.RowsVectorized)
	}
	if wi := tbl.WALInfo(); wi.Persistent {
		fmt.Fprintf(s.out, "wal: %d shard logs, snapshot generation %d, sync mode %s\n",
			wi.LogShards, wi.Generation, wi.SyncMode)
		if wi.GroupCommits > 0 {
			fmt.Fprintf(s.out, "group commits: %d (avg %.1f records/fsync)\n", wi.GroupCommits, wi.AvgGroupSize)
		}
	}

	// The metric view: the same engine walk the /metrics endpoint
	// scrapes, filtered to this table. Rendering the shared catalog here
	// (rather than a hand-maintained list) keeps the CLI and the scrape
	// from ever drifting apart.
	fmt.Fprintln(s.out, "metrics:")
	for _, fam := range obs.CollectEngine(s.db) {
		for _, sm := range fam.Samples {
			onTable := false
			for _, l := range sm.Labels {
				if l.Name == "table" && l.Value == args[0] {
					onTable = true
					break
				}
			}
			if !onTable {
				continue
			}
			fmt.Fprintf(s.out, "  %s %s\n", obs.SampleName(fam, sm, "table"), obs.FormatValue(sm.Value))
		}
	}
	return nil
}

func (s *shell) series(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: series <table> [buckets]")
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		return err
	}
	buckets := 10
	if len(args) > 1 {
		if buckets, err = strconv.Atoi(args[1]); err != nil || buckets < 1 {
			return fmt.Errorf("bad bucket count")
		}
	}
	for _, b := range tbl.TimeSeries(buckets) {
		bar := strings.Repeat("#", int(b.Mean*20))
		fmt.Fprintf(s.out, "ids %7d..%-7d live %6d mean %.3f %s\n", b.FromID, b.ToID, b.Live, b.Mean, bar)
	}
	return nil
}

func (s *shell) containers(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: containers <table>")
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		return err
	}
	names := tbl.Shelf().Names()
	if len(names) == 0 {
		fmt.Fprintln(s.out, "(no containers)")
		return nil
	}
	for _, n := range names {
		c := tbl.Shelf().Get(n)
		fmt.Fprintf(s.out, "%-20s count=%d bytes=%d freshness=%.3f\n",
			n, c.Digest.Count(), c.Digest.Bytes(), float64(c.Freshness()))
	}
	return nil
}

func (s *shell) ask(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: ask <table> <container> <question>")
	}
	tbl, err := s.db.Table(args[0])
	if err != nil {
		return err
	}
	c := tbl.Shelf().Get(args[1])
	if c == nil {
		return fmt.Errorf("no container %q", args[1])
	}
	c.Touch() // consulting knowledge keeps it fresh
	d := c.Digest
	q := args[2]
	switch {
	case q == "count":
		fmt.Fprintln(s.out, d.Count())
	case strings.HasPrefix(q, "ndv:"):
		v, err := d.NDV(strings.TrimPrefix(q, "ndv:"))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, v)
	case strings.HasPrefix(q, "mean:"):
		v, err := d.Mean(strings.TrimPrefix(q, "mean:"))
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, v)
	case strings.HasPrefix(q, "q50:"):
		v, err := d.Quantile(strings.TrimPrefix(q, "q50:"), 0.5)
		if err != nil {
			return err
		}
		fmt.Fprintln(s.out, v)
	case strings.HasPrefix(q, "top:"):
		entries, err := d.HeavyHitters(strings.TrimPrefix(q, "top:"), 5)
		if err != nil {
			return err
		}
		for _, e := range entries {
			fmt.Fprintf(s.out, "%-24s ~%d\n", e.Item, e.Count)
		}
	default:
		return fmt.Errorf("unknown question %q", q)
	}
	return nil
}
