package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"fungusdb/internal/core"
	"fungusdb/internal/obs"
	"fungusdb/internal/server"
)

// runScript feeds a command script to a fresh shell and returns stdout.
func runScript(t *testing.T, script string) string {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var out strings.Builder
	sh := &shell{db: db, out: &out}
	sh.repl(strings.NewReader(script))
	return out.String()
}

func TestShellCreateInsertQuery(t *testing.T) {
	out := runScript(t, `
create iot device STRING, temp FLOAT
insert iot sensor-1 21.5
insert iot sensor-2 40.0
query iot peek temp > 30
tables
quit
`)
	for _, want := range []string{
		"created iot(device STRING, temp FLOAT)",
		"inserted id=0",
		"inserted id=1",
		"1 tuples (peek, scanned 2",
		"sensor-2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellConsumeAndContainers(t *testing.T) {
	out := runScript(t, `
create logs host STRING, sev INT
insert logs web-1 2
insert logs web-2 7
query logs consume into=serious sev <= 3
containers logs
ask logs serious count
ask logs serious top:host
quit
`)
	for _, want := range []string{
		"1 tuples (consume",
		"serious",
		"count=1",
		"web-1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The consumed tuple is gone.
	out2 := runScript(t, `
create logs host STRING, sev INT
insert logs web-1 2
query logs consume sev <= 3
query logs peek
quit
`)
	if !strings.Contains(out2, "0 tuples (peek") {
		t.Errorf("consumed tuple still visible:\n%s", out2)
	}
}

func TestShellTickAndDecay(t *testing.T) {
	out := runScript(t, `
create iot device STRING, temp FLOAT fungus=linear rate=0.5
insert iot s-1 1.0
insert iot s-2 2.0
tick 2
stats iot
quit
`)
	for _, want := range []string{"2 tuples rotted", "live=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellDistillOnRot(t *testing.T) {
	out := runScript(t, `
create iot device STRING, temp FLOAT fungus=linear rate=1.0 distill
insert iot s-1 1.0
tick
containers iot
ask iot _rot count
quit
`)
	if !strings.Contains(out, "_rot") || !strings.Contains(out, "count=1") {
		t.Errorf("rot distillation missing:\n%s", out)
	}
}

func TestShellSeries(t *testing.T) {
	script := "create iot device STRING, temp FLOAT\n"
	for i := 0; i < 20; i++ {
		script += "insert iot s 1.0\n"
	}
	script += "series iot 4\nquit\n"
	out := runScript(t, script)
	if !strings.Contains(out, "live      5") && !strings.Contains(out, "live      5 ") {
		// 20 tuples over 4 buckets = 5 each; formatting uses %6d.
		if !strings.Contains(out, "mean 1.000") {
			t.Errorf("series output wrong:\n%s", out)
		}
	}
}

func TestShellErrors(t *testing.T) {
	out := runScript(t, `
nonsense
create
insert nosuch 1
query nosuch peek
stats nosuch
tick -1
create iot device STRING fungus=mystery
quit
`)
	if got := strings.Count(out, "error:"); got != 7 {
		t.Errorf("want 7 errors, got %d:\n%s", got, out)
	}
}

func TestShellSQL(t *testing.T) {
	out := runScript(t, `
create clicks user STRING, dwell INT
insert clicks alice 100
insert clicks bob 200
insert clicks alice 300
sql SELECT user, COUNT(*) AS n, SUM(dwell) AS total FROM clicks GROUP BY user ORDER BY n DESC
SELECT user FROM clicks WHERE dwell > 150
sql SELECT CONSUME * FROM clicks WHERE user = 'bob'
sql SELECT COUNT(*) FROM clicks
quit
`)
	for _, want := range []string{
		"alice  2  400", // group row
		"(2 rows)",      // where query returns bob+alice300
		"2",             // final count after consuming bob
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "error") {
		t.Errorf("sql session errored:\n%s", out)
	}
}

func TestShellLoadAndDump(t *testing.T) {
	dir := t.TempDir()
	out := runScript(t, `
load iot iot 50
load iot iot 25
sql SELECT COUNT(*) FROM iot
dump iot `+dir+`/out.csv temp > -1000
load iot syslog 1
load iot mystery 1
load iot iot zero
quit
`)
	for _, want := range []string{
		"created iot(device STRING",
		"loaded 50 iot rows",
		"loaded 25 iot rows into iot (extent 75)",
		"75",
		"dumped 75 rows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The three trailing commands are invalid (schema mismatch, unknown
	// workload, bad count).
	if got := strings.Count(out, "error:"); got != 3 {
		t.Errorf("want 3 errors, got %d:\n%s", got, out)
	}
	data, err := os.ReadFile(dir + "/out.csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 76 { // header + 75 rows
		t.Errorf("csv has %d lines", lines)
	}
	if !strings.HasPrefix(string(data), "_id,_t,_f,device,temp,battery,alarm") {
		t.Errorf("csv header wrong: %s", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestShellDrop(t *testing.T) {
	out := runScript(t, `
create t x INT
drop t
drop t
tables
quit
`)
	if !strings.Contains(out, "dropped t") {
		t.Errorf("drop missing:\n%s", out)
	}
	if got := strings.Count(out, "error:"); got != 1 {
		t.Errorf("want 1 error (double drop), got %d:\n%s", got, out)
	}
}

// TestShellStatsMetricsParity is the drift guard for the CLI metric
// view: every family the /metrics endpoint exports for a table (the
// obs engine catalog) must appear in `stats <table>` output, under the
// exact exported name. If someone adds a family to the catalog without
// it surfacing here, or filters one out of the CLI walk, this fails.
func TestShellStatsMetricsParity(t *testing.T) {
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var out strings.Builder
	sh := &shell{db: db, out: &out}
	script := "create iot device STRING, temp FLOAT shards=2\ninsert iot s-1 21.5\nstats iot\nquit\n"
	sh.repl(strings.NewReader(script))

	fams := obs.CollectEngine(db)
	if len(fams) == 0 {
		t.Fatal("engine walk returned no families")
	}
	got := out.String()
	if !strings.Contains(got, "metrics:") {
		t.Fatalf("stats output has no metrics section:\n%s", got)
	}
	for _, fam := range fams {
		if !strings.Contains(got, fam.Name) {
			t.Errorf("stats output missing metric family %s:\n%s", fam.Name, got)
		}
	}
	// Per-shard balance renders one labelled line per shard.
	for _, want := range []string{`fungusdb_table_shard_tuples{shard="0"}`, `fungusdb_table_shard_tuples{shard="1"}`} {
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing %s:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "fungusdb_table_inserted_total 1\n") {
		t.Errorf("inserted counter not rendered with its value:\n%s", got)
	}
}

func TestShellHelpAndComments(t *testing.T) {
	out := runScript(t, "# a comment\nhelp\nquit\n")
	if !strings.Contains(out, "commands:") {
		t.Errorf("help missing:\n%s", out)
	}
	if strings.Contains(out, "error") {
		t.Errorf("comment caused an error:\n%s", out)
	}
}

// TestRemoteStatsReplicationParity is the drift guard for `fungusctl
// -addr ... stats` against a replication follower: every field the
// server's replication status marshals must surface in the rendered
// output, with its value. remoteStats walks the wire JSON generically,
// so this can only fail if the client's ReplStats type falls behind the
// server's ReplStatus — exactly the drift to catch.
func TestRemoteStatsReplicationParity(t *testing.T) {
	repl := server.ReplStatus{
		Leader: "http://leader:8044", Generation: 3, LagRecords: 17,
		Inserts: 1201, Evicts: 43, Ticks: 96, Batches: 88,
		Reconnects: 2, Rebases: 1, Connected: true,
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/tables/events/stats" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"live": 5, "shards": 2, "bytes": 640, "mean_freshness": 0.75,
			"persistent": false, "replication": repl,
		})
	}))
	defer srv.Close()

	var out strings.Builder
	if err := remoteStats(&out, srv.URL, []string{"events"}); err != nil {
		t.Fatalf("remoteStats: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "replication:") {
		t.Fatalf("no replication section:\n%s", got)
	}

	data, err := json.Marshal(repl)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m) < 10 {
		t.Fatalf("replication status marshals only %d fields — test setup stale", len(m))
	}
	for k, v := range m {
		want := fmt.Sprintf("%s %v", k, v)
		if !strings.Contains(got, want) {
			t.Errorf("stats output missing replication field %q (want line %q):\n%s", k, want, got)
		}
	}
}
