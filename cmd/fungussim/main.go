// Command fungussim runs a long decay simulation and reports the
// extent's health as it rots: freshness profile sparklines, rot-spot
// time series, and capture statistics.
//
// Usage:
//
//	fungussim [-fungus egi|ttl|linear|exponential|none] [-tuples N]
//	          [-ticks N] [-ingest N] [-report N] [-distill]
//	          [-seeds N] [-rate F] [-seed N] [-shards N]
//	          [-dir D] [-durability none|grouped|strict]
//
// With -ingest > 0 the simulation keeps inserting rows per tick, so the
// steady state between ingestion and rot is visible; otherwise a single
// initial load decays to extinction. With -dir the simulated table is
// persistent, so the run doubles as a WAL durability/throughput probe:
// -durability selects the sync level (see docs/DURABILITY.md).
//
// With -addr the whole simulation drives a remote fungusd through
// pkg/client instead of an embedded engine: table DDL, batched ingest
// and decay ticks go over the v1 API, and the periodic health probes
// are prepared v2 statements whose results stream back as NDJSON.
package main

import (
	"flag"
	"fmt"
	"os"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
	"fungusdb/internal/workload"
	"fungusdb/pkg/client"
)

func main() {
	fungusName := flag.String("fungus", "egi", "decay law: egi, ttl, linear, exponential, none")
	tuples := flag.Int("tuples", 50000, "initial load")
	ticks := flag.Int("ticks", 200, "clock cycles to simulate")
	ingestRate := flag.Int("ingest", 0, "rows inserted per tick (0 = initial load only)")
	reportEvery := flag.Int("report", 20, "ticks between reports")
	distill := flag.Bool("distill", false, "distill rotting tuples into the _rot container")
	seeds := flag.Int("seeds", 2, "EGI seeds per tick")
	rate := flag.Float64("rate", 0.05, "decay rate / TTL uses 1/rate ticks lifetime")
	seed := flag.Int64("seed", 20150104, "deterministic seed")
	shards := flag.Int("shards", 1, "extent shards (parallel decay/scan)")
	dir := flag.String("dir", "", "data directory (empty = in-memory simulation)")
	durability := flag.String("durability", "none", "WAL sync level with -dir: none|grouped|strict")
	addr := flag.String("addr", "", "drive a remote fungusd at this base URL instead of an embedded engine")
	flag.Parse()

	if *addr != "" {
		if err := runRemote(remoteConfig{
			addr: *addr, fungus: *fungusName, tuples: *tuples, ticks: *ticks,
			ingest: *ingestRate, report: *reportEvery, seeds: *seeds, rate: *rate,
			seed: *seed, shards: *shards, durability: *durability,
		}); err != nil {
			fatal(err)
		}
		return
	}

	var f fungus.Fungus
	switch *fungusName {
	case "egi":
		f = fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: *seeds, DecayRate: *rate, AgeBias: 2})
	case "ttl":
		f = fungus.TTL{Lifetime: uint64(1 / *rate)}
	case "linear":
		f = fungus.Linear{Rate: *rate}
	case "exponential":
		f = fungus.Exponential{Factor: 1 - *rate}
	case "none":
		f = fungus.Null{}
	default:
		fmt.Fprintf(os.Stderr, "fungussim: unknown fungus %q\n", *fungusName)
		os.Exit(2)
	}

	level, err := wal.ParseDurability(*durability)
	if err != nil {
		fatal(err)
	}
	db, err := core.Open(core.DBConfig{Seed: *seed, Dir: *dir, Durability: level})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	gen := workload.NewIoT(100, *seed)
	tbl, err := db.CreateTable("iot", core.TableConfig{
		Schema:       gen.Schema(),
		Fungus:       f,
		Shards:       *shards,
		DistillOnRot: *distill,
		Persist:      *dir != "",
	})
	if err != nil {
		fatal(err)
	}

	for i := 0; i < *tuples; i++ {
		if _, err := tbl.Insert(gen.Next()); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("loaded %d tuples under fungus %q; simulating %d ticks\n\n", *tuples, f.Name(), *ticks)

	for tick := 1; tick <= *ticks; tick++ {
		for i := 0; i < *ingestRate; i++ {
			if _, err := tbl.Insert(gen.Next()); err != nil {
				fatal(err)
			}
		}
		if _, err := db.Tick(); err != nil {
			fatal(err)
		}
		if tick%*reportEvery == 0 || tbl.Len() == 0 {
			fmt.Printf("t%-6d %s\n", tick, tbl.Profile())
			if tbl.Len() == 0 && *ingestRate == 0 {
				fmt.Println("\nextent completely disappeared — the first natural law is done")
				break
			}
		}
	}

	fmt.Println()
	c := tbl.Counters()
	fmt.Println("final:", c)
	if wi := tbl.WALInfo(); wi.Persistent {
		fmt.Printf("wal: sync mode %s, %d group commits (avg %.1f records/fsync)\n",
			wi.SyncMode, wi.GroupCommits, wi.AvgGroupSize)
	}
	if *distill {
		if rot := tbl.Shelf().Get(core.RotContainer); rot != nil {
			fmt.Printf("rot container: %d tuples distilled, %d bytes of knowledge\n",
				rot.Digest.Count(), rot.Digest.Bytes())
		}
	}
	if buckets := tbl.TimeSeries(10); buckets != nil {
		fmt.Println("\nper-time-bucket mean freshness (old -> new):")
		for _, b := range buckets {
			fmt.Printf("  ids %7d..%-7d live %6d  mean %.3f  infected %d\n",
				b.FromID, b.ToID, b.Live, b.Mean, b.Infected)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fungussim:", err)
	os.Exit(1)
}

type remoteConfig struct {
	addr, fungus, durability string
	tuples, ticks, ingest    int
	report, seeds, shards    int
	rate                     float64
	seed                     int64
}

// remoteFungusSpec maps the CLI fungus selection onto the declarative
// spec the server's catalog understands.
func remoteFungusSpec(cfg remoteConfig) (*client.FungusSpec, error) {
	switch cfg.fungus {
	case "egi":
		return &client.FungusSpec{Kind: "egi", Seeds: cfg.seeds, Rate: cfg.rate, AgeBias: 2}, nil
	case "ttl":
		return &client.FungusSpec{Kind: "ttl", Lifetime: uint64(1 / cfg.rate)}, nil
	case "linear":
		return &client.FungusSpec{Kind: "linear", Rate: cfg.rate}, nil
	case "exponential":
		return &client.FungusSpec{Kind: "exponential", Factor: 1 - cfg.rate}, nil
	case "none":
		return nil, nil
	}
	return nil, fmt.Errorf("unknown fungus %q for remote mode", cfg.fungus)
}

// rowsToJSON converts generated workload rows to the positional JSON
// values the bulk-insert API wants.
func rowsToJSON(rows [][]tuple.Value) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		vals := make([]any, len(row))
		for j, v := range row {
			switch v.Kind() {
			case tuple.KindInt:
				vals[j] = v.AsInt()
			case tuple.KindFloat:
				vals[j] = v.AsFloat()
			case tuple.KindBool:
				vals[j] = v.AsBool()
			default:
				vals[j] = v.AsString()
			}
		}
		out[i] = vals
	}
	return out
}

// runRemote replays the simulation loop against a fungusd server. The
// per-report health probe is a prepared v2 statement executed with a
// fresh parameter binding each round, so the run exercises the whole
// prepare -> plan -> execute -> stream pipeline end to end.
func runRemote(cfg remoteConfig) error {
	c := client.New(cfg.addr, nil)
	if _, err := c.Health(); err != nil {
		return err
	}
	fspec, err := remoteFungusSpec(cfg)
	if err != nil {
		return err
	}
	const table = "iot"
	if err := c.CreateTable(client.TableSpec{
		Name:       table,
		Schema:     "device STRING, temp FLOAT, battery FLOAT, alarm BOOL",
		Fungus:     fspec,
		Shards:     cfg.shards,
		Durability: cfg.durability,
	}); err != nil {
		return err
	}
	gen := workload.NewIoT(100, cfg.seed)

	const batch = 1024
	insert := func(n int) error {
		for done := 0; done < n; {
			b := batch
			if rem := n - done; rem < b {
				b = rem
			}
			rows := make([][]tuple.Value, b)
			for i := range rows {
				rows[i] = gen.Next()
			}
			if _, err := c.Insert(table, rowsToJSON(rows)); err != nil {
				return err
			}
			done += b
		}
		return nil
	}
	if err := insert(cfg.tuples); err != nil {
		return err
	}
	fmt.Printf("loaded %d tuples into %s at %s; simulating %d ticks remotely\n\n",
		cfg.tuples, table, cfg.addr, cfg.ticks)

	// One prepared probe, many parameterised executions.
	probe, err := c.Prepare("SELECT COUNT(*) AS hot FROM iot WHERE temp > ?")
	if err != nil {
		return err
	}
	threshold := 30.0
	for tick := 1; tick <= cfg.ticks; tick++ {
		if cfg.ingest > 0 {
			if err := insert(cfg.ingest); err != nil {
				return err
			}
		}
		if _, err := c.Tick(1); err != nil {
			return err
		}
		if tick%cfg.report == 0 {
			st, err := c.Stats(table)
			if err != nil {
				return err
			}
			rows, err := probe.Query(threshold)
			if err != nil {
				return err
			}
			hot := 0.0
			for rows.Next() {
				if v, ok := rows.Row()[0].(float64); ok {
					hot = v
				}
			}
			rerr := rows.Err()
			rows.Close()
			if rerr != nil {
				return rerr
			}
			fmt.Printf("t%-6d live %6d mean %.3f rotted %6d hot(>%.0f) %6.0f\n",
				tick, st.Live, st.MeanFresh, st.Rotted, threshold, hot)
			if st.Live == 0 && cfg.ingest == 0 {
				fmt.Println("\nextent completely disappeared — the first natural law is done")
				break
			}
		}
	}

	st, err := c.Stats(table)
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal: live %d, inserted %d, rotted %d, queries %d (sync mode %s)\n",
		st.Live, st.Inserted, st.Rotted, st.Queries, st.WALSyncMode)
	return nil
}
