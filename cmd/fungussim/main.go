// Command fungussim runs a long decay simulation and reports the
// extent's health as it rots: freshness profile sparklines, rot-spot
// time series, and capture statistics.
//
// Usage:
//
//	fungussim [-fungus egi|ttl|linear|exponential|none] [-tuples N]
//	          [-ticks N] [-ingest N] [-report N] [-distill]
//	          [-seeds N] [-rate F] [-seed N] [-shards N]
//	          [-dir D] [-durability none|grouped|strict]
//
// With -ingest > 0 the simulation keeps inserting rows per tick, so the
// steady state between ingestion and rot is visible; otherwise a single
// initial load decays to extinction. With -dir the simulated table is
// persistent, so the run doubles as a WAL durability/throughput probe:
// -durability selects the sync level (see docs/DURABILITY.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/wal"
	"fungusdb/internal/workload"
)

func main() {
	fungusName := flag.String("fungus", "egi", "decay law: egi, ttl, linear, exponential, none")
	tuples := flag.Int("tuples", 50000, "initial load")
	ticks := flag.Int("ticks", 200, "clock cycles to simulate")
	ingestRate := flag.Int("ingest", 0, "rows inserted per tick (0 = initial load only)")
	reportEvery := flag.Int("report", 20, "ticks between reports")
	distill := flag.Bool("distill", false, "distill rotting tuples into the _rot container")
	seeds := flag.Int("seeds", 2, "EGI seeds per tick")
	rate := flag.Float64("rate", 0.05, "decay rate / TTL uses 1/rate ticks lifetime")
	seed := flag.Int64("seed", 20150104, "deterministic seed")
	shards := flag.Int("shards", 1, "extent shards (parallel decay/scan)")
	dir := flag.String("dir", "", "data directory (empty = in-memory simulation)")
	durability := flag.String("durability", "none", "WAL sync level with -dir: none|grouped|strict")
	flag.Parse()

	var f fungus.Fungus
	switch *fungusName {
	case "egi":
		f = fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: *seeds, DecayRate: *rate, AgeBias: 2})
	case "ttl":
		f = fungus.TTL{Lifetime: uint64(1 / *rate)}
	case "linear":
		f = fungus.Linear{Rate: *rate}
	case "exponential":
		f = fungus.Exponential{Factor: 1 - *rate}
	case "none":
		f = fungus.Null{}
	default:
		fmt.Fprintf(os.Stderr, "fungussim: unknown fungus %q\n", *fungusName)
		os.Exit(2)
	}

	level, err := wal.ParseDurability(*durability)
	if err != nil {
		fatal(err)
	}
	db, err := core.Open(core.DBConfig{Seed: *seed, Dir: *dir, Durability: level})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	gen := workload.NewIoT(100, *seed)
	tbl, err := db.CreateTable("iot", core.TableConfig{
		Schema:       gen.Schema(),
		Fungus:       f,
		Shards:       *shards,
		DistillOnRot: *distill,
		Persist:      *dir != "",
	})
	if err != nil {
		fatal(err)
	}

	for i := 0; i < *tuples; i++ {
		if _, err := tbl.Insert(gen.Next()); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("loaded %d tuples under fungus %q; simulating %d ticks\n\n", *tuples, f.Name(), *ticks)

	for tick := 1; tick <= *ticks; tick++ {
		for i := 0; i < *ingestRate; i++ {
			if _, err := tbl.Insert(gen.Next()); err != nil {
				fatal(err)
			}
		}
		if _, err := db.Tick(); err != nil {
			fatal(err)
		}
		if tick%*reportEvery == 0 || tbl.Len() == 0 {
			fmt.Printf("t%-6d %s\n", tick, tbl.Profile())
			if tbl.Len() == 0 && *ingestRate == 0 {
				fmt.Println("\nextent completely disappeared — the first natural law is done")
				break
			}
		}
	}

	fmt.Println()
	c := tbl.Counters()
	fmt.Println("final:", c)
	if wi := tbl.WALInfo(); wi.Persistent {
		fmt.Printf("wal: sync mode %s, %d group commits (avg %.1f records/fsync)\n",
			wi.SyncMode, wi.GroupCommits, wi.AvgGroupSize)
	}
	if *distill {
		if rot := tbl.Shelf().Get(core.RotContainer); rot != nil {
			fmt.Printf("rot container: %d tuples distilled, %d bytes of knowledge\n",
				rot.Digest.Count(), rot.Digest.Bytes())
		}
	}
	if buckets := tbl.TimeSeries(10); buckets != nil {
		fmt.Println("\nper-time-bucket mean freshness (old -> new):")
		for _, b := range buckets {
			fmt.Printf("  ids %7d..%-7d live %6d  mean %.3f  infected %d\n",
				b.FromID, b.ToID, b.Live, b.Mean, b.Infected)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fungussim:", err)
	os.Exit(1)
}
