// Command fungusvet is the engine's project-specific linter: a
// multichecker over the internal/analysis pack that mechanically
// enforces the determinism, WAL-exhaustiveness, shard-locking,
// error-code and metric-catalog invariants documented in
// docs/ANALYSIS.md.
//
// Usage:
//
//	go run ./cmd/fungusvet ./...
//
// Exit status is 0 when the tree is clean, 1 when there are findings,
// 2 on a loading or internal error. CI runs it as a blocking job.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fungusdb/internal/analysis"
)

func main() {
	listOnly := flag.Bool("list", false, "list the analyzers in the pack and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fungusvet [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listOnly {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	moduleDir, err := analysis.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(moduleDir, patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := d.Pos
		// Paths relative to the module root keep the output stable
		// across checkouts (and clickable in CI logs).
		if rel, err := filepath.Rel(moduleDir, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Printf("fungusvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fungusvet:", err)
	os.Exit(2)
}
