package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Stmt is a server-side prepared statement: the SQL compiled once into
// a plan cached under an opaque handle. Execute it any number of times
// with different parameter bindings. If the server evicts the handle,
// Query returns a not_found *Error — re-Prepare and retry.
type Stmt struct {
	c *Client
	// Handle is the server-side token.
	Handle string
	// Cols are the statement's output column names.
	Cols []string
	// NumParams is how many `?` placeholders Query must bind.
	NumParams int
}

// Prepare compiles sql on the server and returns the reusable handle.
func (c *Client) Prepare(sql string) (*Stmt, error) {
	var resp struct {
		Handle string   `json:"handle"`
		Cols   []string `json:"cols"`
		Params int      `json:"params"`
	}
	if err := c.do(http.MethodPost, "/v2/prepare", map[string]string{"sql": sql}, &resp); err != nil {
		return nil, err
	}
	return &Stmt{c: c, Handle: resp.Handle, Cols: resp.Cols, NumParams: resp.Params}, nil
}

// Query executes the prepared statement with the given positional
// parameters, streaming the result.
func (s *Stmt) Query(params ...any) (*Rows, error) {
	return s.c.stream(map[string]any{"handle": s.Handle, "params": params})
}

// Query executes sql in one shot over the streaming endpoint. Params
// bind the statement's `?` placeholders positionally.
func (c *Client) Query(sql string, params ...any) (*Rows, error) {
	return c.stream(map[string]any{"sql": sql, "params": params})
}

// stream POSTs to /v2/query and wires the NDJSON body into a Rows.
func (c *Client) stream(body map[string]any) (*Rows, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: marshal: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v2/query", bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("client: request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, decodeError(resp.StatusCode, data)
	}
	r := &Rows{body: resp.Body, dec: json.NewDecoder(resp.Body)}
	// The header is the first NDJSON line; reading it here surfaces
	// immediate failures from Query itself.
	var header struct {
		Cols []string `json:"cols"`
	}
	var raw json.RawMessage
	if err := r.dec.Decode(&raw); err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("client: stream header: %w", err)
	}
	if err := json.Unmarshal(raw, &header); err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("client: stream header: %w", err)
	}
	r.cols = header.Cols
	return r, nil
}

// Rows iterates an NDJSON result stream row by row; rows decode as the
// server produces them, so a very large answer never buffers in the
// client either. Always Close (or drain) the Rows.
type Rows struct {
	body    io.ReadCloser
	dec     *json.Decoder
	cols    []string
	cur     []any
	err     error
	done    bool
	rows    int
	scanned int
	trailer bool // saw {"done":true,...}
}

// Cols returns the output column names.
func (r *Rows) Cols() []string { return r.cols }

// Next advances to the next row. Once it returns false, check Err.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	var raw json.RawMessage
	if err := r.dec.Decode(&raw); err != nil {
		// A truncated stream (no trailer) means the server died
		// mid-answer; io.EOF alone is not success.
		r.fail(fmt.Errorf("client: stream truncated: %w", err))
		return false
	}
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) == 0 {
		r.fail(fmt.Errorf("client: empty stream line"))
		return false
	}
	if trimmed[0] == '[' {
		var row []any
		if err := json.Unmarshal(trimmed, &row); err != nil {
			r.fail(fmt.Errorf("client: bad row: %w", err))
			return false
		}
		r.cur = row
		r.rows++
		return true
	}
	// Object line: trailer or mid-stream error.
	var tail struct {
		Done    bool `json:"done"`
		Rows    int  `json:"rows"`
		Scanned int  `json:"scanned"`
		Error   *struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(trimmed, &tail); err != nil {
		r.fail(fmt.Errorf("client: bad stream line: %w", err))
		return false
	}
	if tail.Error != nil {
		r.fail(&Error{Code: tail.Error.Code, Message: tail.Error.Message, Status: http.StatusOK})
		return false
	}
	if !tail.Done {
		r.fail(fmt.Errorf("client: unexpected stream line"))
		return false
	}
	r.trailer = true
	r.scanned = tail.Scanned
	r.done = true
	return false
}

func (r *Rows) fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.done = true
}

// Row returns the current row's values (JSON-typed: float64, string,
// bool). Valid until the next Next call.
func (r *Rows) Row() []any { return r.cur }

// Err returns the first error hit while streaming. It is nil after a
// complete, trailer-terminated stream.
func (r *Rows) Err() error { return r.err }

// Scanned reports how many live tuples the server examined (valid
// after the stream completed).
func (r *Rows) Scanned() int { return r.scanned }

// Count reports the rows received so far.
func (r *Rows) Count() int { return r.rows }

// Close releases the underlying response body. Closing before the
// stream ends aborts the server-side scan.
func (r *Rows) Close() error {
	r.done = true
	return r.body.Close()
}
