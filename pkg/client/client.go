// Package client is the Go client for a fungusd server. It speaks
// both API generations: the materialised v1 endpoints (table DDL, bulk
// insert, decay ticks, stats, container questions) and the v2
// prepared-statement surface, where SELECTs compile once into a
// server-side handle and results stream back as NDJSON rows instead of
// one buffered grid.
//
// The package is self-contained — it mirrors the wire JSON with its
// own types rather than importing engine internals — so external tools
// can depend on it without pulling the engine in.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client talks to one fungusd server.
type Client struct {
	base string
	hc   *http.Client
}

// New targets base (e.g. "http://localhost:8044"). A nil httpClient
// uses http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// Error is a decoded server error: a stable machine-readable code plus
// a human message (the {"error":{"code","message"}} envelope).
type Error struct {
	Code    string
	Message string
	Status  int
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server: %s (%s)", e.Message, e.Code)
	}
	return fmt.Sprintf("server: status %d: %s", e.Status, e.Message)
}

type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// decodeError turns a non-2xx response body into an *Error.
func decodeError(status int, data []byte) error {
	var env errEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error.Message != "" {
		return &Error{Code: env.Error.Code, Message: env.Error.Message, Status: status}
	}
	return &Error{Status: status, Message: strings.TrimSpace(string(data))}
}

// do runs one materialised JSON round trip.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read: %w", err)
	}
	if resp.StatusCode >= 400 {
		return decodeError(resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode: %w", err)
		}
	}
	return nil
}

// FungusSpec mirrors the server's declarative fungus description (the
// subset external tools configure).
type FungusSpec struct {
	Kind     string  `json:"kind"`
	Rate     float64 `json:"rate,omitempty"`
	Lifetime uint64  `json:"lifetime,omitempty"`
	Factor   float64 `json:"factor,omitempty"`
	HalfLife float64 `json:"half_life,omitempty"`
	Seeds    int     `json:"seeds,omitempty"`
	AgeBias  float64 `json:"age_bias,omitempty"`
}

// TableSpec mirrors the server's declarative table description.
type TableSpec struct {
	Name         string      `json:"name"`
	Schema       string      `json:"schema"`
	Fungus       *FungusSpec `json:"fungus,omitempty"`
	Shards       int         `json:"shards,omitempty"`
	TickEvery    int         `json:"tick_every,omitempty"`
	DistillOnRot bool        `json:"distill_on_rot,omitempty"`
	Durability   string      `json:"durability,omitempty"`
	Persist      bool        `json:"persist,omitempty"`
}

// Health checks liveness and returns the server's logical time.
func (c *Client) Health() (uint64, error) {
	var resp struct {
		OK  bool   `json:"ok"`
		Now uint64 `json:"now"`
	}
	if err := c.do(http.MethodGet, "/healthz", nil, &resp); err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("client: server not ok")
	}
	return resp.Now, nil
}

// Tables lists table names.
func (c *Client) Tables() ([]string, error) {
	var resp struct {
		Tables []string `json:"tables"`
	}
	if err := c.do(http.MethodGet, "/v1/tables", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// CreateTable creates a table from a spec.
func (c *Client) CreateTable(spec TableSpec) error {
	return c.do(http.MethodPost, "/v1/tables", spec, nil)
}

// DropTable removes a table.
func (c *Client) DropTable(name string) error {
	return c.do(http.MethodDelete, "/v1/tables/"+name, nil, nil)
}

// InsertResult reports a bulk insert.
type InsertResult struct {
	Inserted int    `json:"inserted"`
	FirstID  uint64 `json:"first_id"`
}

// Insert bulk-inserts positional rows.
func (c *Client) Insert(table string, rows [][]any) (InsertResult, error) {
	var resp InsertResult
	err := c.do(http.MethodPost, "/v1/tables/"+table+"/rows",
		map[string]any{"rows": rows}, &resp)
	return resp, err
}

// TickResult reports the aggregate decay outcome.
type TickResult struct {
	Now    uint64 `json:"now"`
	Rotted int    `json:"rotted"`
	Live   int    `json:"live"`
}

// Tick advances decay by n cycles.
func (c *Client) Tick(n int) (TickResult, error) {
	var resp TickResult
	err := c.do(http.MethodPost, "/v1/tick", map[string]int{"n": n}, &resp)
	return resp, err
}

// Stats is a table's freshness profile and counters (the fields
// external tools read; the server may send more).
type Stats struct {
	Live        int     `json:"live"`
	Shards      int     `json:"shards"`
	Bytes       int     `json:"bytes"`
	MeanFresh   float64 `json:"mean_freshness"`
	Inserted    uint64  `json:"inserted"`
	Rotted      uint64  `json:"rotted"`
	Consumed    uint64  `json:"consumed"`
	Queries     uint64  `json:"queries"`
	Ticks       uint64  `json:"ticks"`
	WALSyncMode string  `json:"wal_sync_mode"`
	Persistent  bool    `json:"persistent"`
	// Replication is present only on a follower: its position and lag
	// against the leader it tails.
	Replication *ReplStats `json:"replication,omitempty"`
}

// ReplStats describes a follower table's replication position.
type ReplStats struct {
	Leader     string `json:"leader"`
	Generation uint64 `json:"generation"`
	LagRecords uint64 `json:"lag_records"`
	Inserts    uint64 `json:"applied_inserts"`
	Evicts     uint64 `json:"applied_evicts"`
	Ticks      uint64 `json:"applied_ticks"`
	Batches    uint64 `json:"batches"`
	Reconnects uint64 `json:"reconnects"`
	Rebases    uint64 `json:"rebases"`
	Connected  bool   `json:"connected"`
}

// Stats fetches a table's profile and counters.
func (c *Client) Stats(table string) (Stats, error) {
	var resp Stats
	err := c.do(http.MethodGet, "/v1/tables/"+table+"/stats", nil, &resp)
	return resp, err
}

// AskResult answers one knowledge-container question.
type AskResult struct {
	Question string  `json:"question"`
	Value    float64 `json:"value,omitempty"`
	Bool     *bool   `json:"bool,omitempty"`
	Top      []struct {
		Item  string `json:"item"`
		Count uint64 `json:"count"`
	} `json:"top,omitempty"`
}

// Ask poses a question to a knowledge container ("count", "ndv:col",
// "mean:col", "sum:col", "q:col:0.95", "top:col", "has:col:value").
func (c *Client) Ask(table, container, question string) (AskResult, error) {
	var resp AskResult
	err := c.do(http.MethodGet,
		"/v1/tables/"+table+"/containers/"+container+"/ask?q="+url.QueryEscape(question), nil, &resp)
	return resp, err
}
