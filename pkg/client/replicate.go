// The replication tailer: a thin, engine-free client for the leader's
// POST /v2/replicate NDJSON stream. Like the rest of the package it
// mirrors the wire JSON with its own types; the []byte fields carry raw
// WAL frames / snapshot chunks (base64 on the wire, decoded by
// encoding/json) and are opaque here — the follower daemon feeds them
// to the engine's replay machinery.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ReplCursor is a follower's resume position: the WAL generation it has
// been applying and, per shard, the byte offset one past the last
// applied record in that shard's log. The zero value means "from the
// beginning of history".
type ReplCursor struct {
	Generation uint64  `json:"generation"`
	Offsets    []int64 `json:"offsets,omitempty"`
}

// ReplHeader opens every replication stream. Mode is "tail" (records
// follow from the requested cursor) or "rebase" (the cursor predates
// the leader's last checkpoint; per-shard snapshot chunks follow, then
// records from offset zero of the named generation).
type ReplHeader struct {
	Table      string   `json:"table"`
	Shards     int      `json:"shards"`
	Generation uint64   `json:"generation"`
	Mode       string   `json:"mode"`
	NextIDs    []uint64 `json:"next_ids,omitempty"`
}

// ReplSnap is one chunk of one shard's snapshot during a rebase. Last
// marks the shard's final chunk; a shard with no snapshot data sends a
// single empty last chunk.
type ReplSnap struct {
	Shard int    `json:"shard"`
	Data  []byte `json:"data,omitempty"`
	Last  bool   `json:"last"`
}

// ReplRecs carries whole WAL frames for one shard: Data is the raw
// framed bytes starting at byte offset From of the shard's log, N the
// record count within.
type ReplRecs struct {
	Shard int    `json:"shard"`
	From  int64  `json:"from"`
	N     int    `json:"n"`
	Data  []byte `json:"data"`
}

// ReplCommit marks a group-commit window boundary: everything shipped
// since the last commit is a consistent batch. Counts is the leader's
// per-shard record count for the generation (the follower's lag is the
// difference to what it has applied). Reset means the leader
// checkpointed while the follower was fully caught up: the stream
// continues at the new generation with all offsets rewound to zero.
type ReplCommit struct {
	Generation uint64   `json:"generation"`
	Counts     []uint64 `json:"counts,omitempty"`
	Reset      bool     `json:"reset,omitempty"`
}

// ReplEnd terminates a stream deliberately. Reason "rebase_required"
// tells the follower to reconnect with its (now stale) cursor and
// accept the rebase the leader will offer.
type ReplEnd struct {
	Reason string `json:"reason"`
}

// ReplEvent is one NDJSON line of the stream; exactly one field is set.
type ReplEvent struct {
	Header *ReplHeader `json:"header,omitempty"`
	Snap   *ReplSnap   `json:"snap,omitempty"`
	Recs   *ReplRecs   `json:"recs,omitempty"`
	Commit *ReplCommit `json:"commit,omitempty"`
	Ping   *ReplCommit `json:"ping,omitempty"`
	End    *ReplEnd    `json:"end,omitempty"`
	Err    *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error,omitempty"`
}

// ReplStream is an open replication stream. Next blocks for the next
// event; Close aborts the stream.
type ReplStream struct {
	resp *http.Response
	sc   *bufio.Scanner
}

// maxReplLine bounds one NDJSON line: a snapshot chunk or record batch
// is at most a few MB of base64.
const maxReplLine = 64 << 20

// Replicate opens a WAL-shipping stream for table from the given
// cursor. The first event is always a header (or an error).
func (c *Client) Replicate(table string, cur ReplCursor) (*ReplStream, error) {
	body, err := json.Marshal(struct {
		Table string `json:"table"`
		ReplCursor
	}{Table: table, ReplCursor: cur})
	if err != nil {
		return nil, fmt.Errorf("client: marshal: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v2/replicate", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return nil, decodeError(resp.StatusCode, data)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxReplLine)
	return &ReplStream{resp: resp, sc: sc}, nil
}

// Next returns the next stream event. A server-sent error line comes
// back as a *Error; a closed stream returns io.EOF-like errors from the
// transport.
func (s *ReplStream) Next() (*ReplEvent, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return nil, fmt.Errorf("client: replicate stream: %w", err)
		}
		return nil, fmt.Errorf("client: replicate stream closed")
	}
	var ev ReplEvent
	if err := json.Unmarshal(s.sc.Bytes(), &ev); err != nil {
		return nil, fmt.Errorf("client: replicate decode: %w", err)
	}
	if ev.Err != nil {
		return nil, &Error{Code: ev.Err.Code, Message: ev.Err.Message, Status: 200}
	}
	return &ev, nil
}

// Close aborts the stream.
func (s *ReplStream) Close() error { return s.resp.Body.Close() }

// ReplTables fetches the leader's replicable table specs as raw JSON
// (the follower daemon decodes them with the engine's own catalog
// types, which this package deliberately does not import).
func (c *Client) ReplTables() ([]json.RawMessage, error) {
	var resp struct {
		Tables []json.RawMessage `json:"tables"`
	}
	if err := c.do(http.MethodGet, "/v2/replicate/tables", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Tables, nil
}
