package wal

import (
	"path/filepath"
	"testing"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// The snapshot header records only the GLOBAL next-ID high-water mark;
// per-shard cursors can trail it by up to shards-1. A post-checkpoint
// insert on a lagging shard must survive crash recovery — the cursors
// may only be advanced to the header mark after the log has replayed.
func TestRecoverPostCheckpointInsertOnLaggingShard(t *testing.T) {
	dir := t.TempDir()
	ss := storage.NewSharded(walSchema, 2)
	log, err := Open(filepath.Join(dir, LogFile))
	if err != nil {
		t.Fatal(err)
	}
	// IDs 0,1,2: shard 0's cursor is now 4, shard 1's is 3.
	for i := 0; i < 3; i++ {
		tp, err := ss.Insert(1, []tuple.Value{tuple.String_("d"), tuple.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := log.AppendInsert(tp); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint: snapshot header nextID = max cursor = 4, log truncated.
	if err := Checkpoint(dir, ss, log); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint insert lands on lagging shard 1 as ID 3.
	tp, err := ss.Insert(1, []tuple.Value{tuple.String_("d"), tuple.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if tp.ID != 3 {
		t.Fatalf("post-checkpoint insert got ID %d, want 3", tp.ID)
	}
	if err := log.AppendInsert(tp); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil { // flush; the "crash" is not reopening cleanly
		t.Fatal(err)
	}

	got := storage.NewSharded(walSchema, 2)
	if err := RecoverInto(dir, got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("recovered %d tuples, want 4 (post-checkpoint insert lost)", got.Len())
	}
	if !got.Contains(3) {
		t.Fatal("tuple 3 (post-checkpoint, lagging shard) missing after recovery")
	}
	// The high-water mark still holds: fresh inserts never reuse IDs.
	next, err := got.Insert(2, []tuple.Value{tuple.String_("d"), tuple.Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID < 4 {
		t.Fatalf("post-recovery insert reused ID %d", next.ID)
	}
}

// Concurrent shards append WAL records in per-shard (not global) ID
// order. Recovery must tolerate that interleaving under ANY shard
// count — including one different from the writer's — without
// silently dropping tuples (replay sorts inserts by ID before
// routing).
func TestRecoverInterleavedLogAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	log, err := Open(filepath.Join(dir, LogFile))
	if err != nil {
		t.Fatal(err)
	}
	// A 2-shard writer flushing shard 0's group before shard 1's:
	// IDs 0,2,4 then 1,3,5 — monotone per writer shard, not globally.
	for _, id := range []tuple.ID{0, 2, 4, 1, 3, 5} {
		tp := tuple.New(id, 1, []tuple.Value{tuple.String_("d"), tuple.Int(int64(id))})
		if err := log.AppendInsert(tp); err != nil {
			t.Fatal(err)
		}
	}
	// Evict one tuple; its record precedes some inserts ID-wise.
	if err := log.AppendEvict(2); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 3} {
		store := storage.NewSharded(walSchema, shards)
		if err := RecoverInto(dir, store); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if store.Len() != 5 {
			t.Fatalf("shards=%d: recovered %d tuples, want 5", shards, store.Len())
		}
		want := []tuple.ID{0, 1, 3, 4, 5}
		var got []tuple.ID
		store.Scan(func(tp *tuple.Tuple) bool { got = append(got, tp.ID); return true })
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				t.Fatalf("shards=%d: recovered IDs %v, want %v", shards, got, want)
			}
		}
	}
}
