package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// Robustness: feeding arbitrary bytes to Replay and LoadSnapshot must
// yield zero-or-some records or a clean error — never a panic and never
// fabricated data that breaks recovery.

func TestReplayArbitraryBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dir := t.TempDir()
	for trial := 0; trial < 200; trial++ {
		size := rng.Intn(512)
		data := make([]byte, size)
		rng.Read(data)
		path := filepath.Join(dir, "junk.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		err := Replay(path, func(Rec) error { return nil })
		// Random bytes should essentially never form a valid CRC frame;
		// either way the call must return without panicking.
		_ = err
	}
}

func TestReplayBitFlipsOnValidLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogFile)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tp := tuple.New(tuple.ID(i), 1, []tuple.Value{tuple.String_("dev"), tuple.Int(int64(i))})
		if err := l.AppendInsert(tp); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), orig...)
		// Flip 1-3 bits anywhere in the file.
		for f := 0; f <= rng.Intn(3); f++ {
			pos := rng.Intn(len(data))
			data[pos] ^= 1 << rng.Intn(8)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		count := 0
		var firstErr error
		err := Replay(path, func(r Rec) error {
			count++
			if r.Type == RecInsert && len(r.Tuple.Attrs) != 2 && firstErr == nil {
				t.Fatalf("trial %d: corrupt record passed CRC with %d attrs", trial, len(r.Tuple.Attrs))
			}
			return nil
		})
		_ = err // a decode error after a passing CRC is acceptable
		if count > 20 {
			t.Fatalf("trial %d: replayed %d records from a 20-record log", trial, count)
		}
	}
}

func TestLoadSnapshotArbitraryBytes(t *testing.T) {
	schema := tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt})
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	path := filepath.Join(dir, SnapshotFile)
	for trial := 0; trial < 200; trial++ {
		size := rng.Intn(1024)
		data := make([]byte, size)
		rng.Read(data)
		// Half the trials get the valid magic so parsing goes deeper.
		if trial%2 == 0 && size >= 8 {
			copy(data, []byte("FDBSNAP1"))
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st := storage.New(schema)
		if err := LoadSnapshot(path, st); err == nil && st.Len() > 0 {
			t.Fatalf("trial %d: random bytes produced %d tuples", trial, st.Len())
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	schema := tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt})
	dir := t.TempDir()
	st := storage.New(schema)
	log, _ := Open(filepath.Join(dir, LogFile))
	for i := 0; i < 50; i++ {
		tp, _ := st.Insert(1, []tuple.Value{tuple.Int(int64(i))})
		log.AppendInsert(tp)
	}
	for i := 0; i < 50; i += 3 {
		st.Evict(tuple.ID(i))
		log.AppendEvict(tuple.ID(i))
	}
	log.Sync()
	log.Close()

	// Recover repeatedly: every pass yields the identical extent.
	var want []tuple.ID
	for pass := 0; pass < 3; pass++ {
		got, err := Recover(dir, schema)
		if err != nil {
			t.Fatal(err)
		}
		ids := got.ScanIDs(nil)
		if pass == 0 {
			want = ids
			continue
		}
		if len(ids) != len(want) {
			t.Fatalf("pass %d: %d tuples vs %d", pass, len(ids), len(want))
		}
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("pass %d: extent differs at %d", pass, i)
			}
		}
	}
}
