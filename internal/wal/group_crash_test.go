package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// Crash-injection tests for group-commit durability: a crash mid-group
// must lose AT MOST the unacknowledged window — every append whose
// CommitWait resolved before the crash is recovered, across shard
// counts. The "crash" snapshots the directory while the log objects
// are still open and un-flushed, exactly the on-disk state an aborted
// process leaves behind (buffered appends never reached the files).

// TestGroupCommitCrashLosesOnlyUnacknowledged drives a deterministic
// window (no ticker, unreachable size threshold): acked rows are
// exactly the ones flushed before the crash, and recovery returns
// exactly that set — nothing acknowledged lost, nothing unacknowledged
// resurrected.
func TestGroupCommitCrashLosesOnlyUnacknowledged(t *testing.T) {
	const acked, unacked = 30, 11
	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			ss, sl := buildSharded(t, dir, shards, 0)
			gc := manualGC(sl)

			appendNoted := func(k int) CommitWait {
				i := ss.NextShard()
				tp, err := ss.InsertShard(i, 1, row("dev", int64(k)))
				if err != nil {
					t.Fatal(err)
				}
				if err := sl.AppendInsert(i, tp); err != nil {
					t.Fatal(err)
				}
				return gc.Note(i, 1)
			}

			waits := make([]CommitWait, 0, acked)
			for k := 0; k < acked; k++ {
				waits = append(waits, appendNoted(k))
			}
			if err := gc.Flush(); err != nil {
				t.Fatal(err)
			}
			for k, w := range waits {
				if !w.Resolved() {
					t.Fatalf("wait %d unresolved after its window flushed", k)
				}
			}
			// The next window: appended and noted, never flushed. Their
			// waits must still be pending at the crash.
			var pending []CommitWait
			for k := acked; k < acked+unacked; k++ {
				pending = append(pending, appendNoted(k))
			}
			for k, w := range pending {
				if w.Resolved() {
					t.Fatalf("unflushed wait %d already resolved", k)
				}
			}

			// Crash: snapshot the directory with the logs still open.
			// The unflushed window lives only in the writers' buffers,
			// so the copy holds exactly the acknowledged state.
			crashed := copyDir(t, dir)

			got := storage.NewSharded(walSchema, shards)
			if err := RecoverSharded(crashed, got, shards); err != nil {
				t.Fatal(err)
			}
			if got.Len() != acked {
				t.Fatalf("recovered %d tuples, want the %d acknowledged", got.Len(), acked)
			}
			for id := 0; id < acked; id++ {
				if !got.Contains(tuple.ID(id)) {
					t.Errorf("acknowledged tuple %d lost in crash", id)
				}
			}
			for id := acked; id < acked+unacked; id++ {
				if got.Contains(tuple.ID(id)) {
					t.Errorf("unacknowledged tuple %d survived the crash", id)
				}
			}

			// Cleanly shut the live side down (not part of the crash).
			if err := gc.Close(); err != nil {
				t.Fatal(err)
			}
			if err := sl.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGroupCommitCrashMidGroupConcurrent crashes while appenders and
// the group-commit daemon are racing: whatever set of waits had
// resolved when the crash copy began must be a subset of what recovery
// returns. (Unacknowledged rows may or may not survive — the guarantee
// is one-sided.)
func TestGroupCommitCrashMidGroupConcurrent(t *testing.T) {
	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			ss, sl := buildSharded(t, dir, shards, 0)
			gc := NewGroupCommitter(sl, GroupCommitConfig{Interval: 200 * time.Microsecond, SizeThreshold: 16})

			var ackMu sync.Mutex
			acked := make(map[tuple.ID]bool)
			stop := make(chan struct{})
			locks := make([]sync.Mutex, shards)
			var wg sync.WaitGroup
			for w := 0; w < shards; w++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for k := 0; ; k++ {
						select {
						case <-stop:
							return
						default:
						}
						locks[i].Lock()
						tp, err := ss.InsertShard(i, 1, row("dev", int64(k)))
						if err != nil {
							locks[i].Unlock()
							t.Error(err)
							return
						}
						if err := sl.AppendInsert(i, tp); err != nil {
							locks[i].Unlock()
							t.Error(err)
							return
						}
						cw := gc.Note(i, 1)
						locks[i].Unlock()
						if err := cw.Wait(); err != nil {
							t.Error(err)
							return
						}
						ackMu.Lock()
						acked[tp.ID] = true
						ackMu.Unlock()
					}
				}(w)
			}
			time.Sleep(20 * time.Millisecond)

			// Crash point: freeze the acknowledged set FIRST, then copy
			// the directory. Every acked record was fsynced before its
			// ID entered the set, so it is within the stable prefix the
			// copy captures even though appends keep racing.
			ackMu.Lock()
			ackedAtCrash := make([]tuple.ID, 0, len(acked))
			for id := range acked {
				ackedAtCrash = append(ackedAtCrash, id)
			}
			ackMu.Unlock()
			crashed := copyDir(t, dir)

			close(stop)
			wg.Wait()
			if err := gc.Close(); err != nil {
				t.Fatal(err)
			}
			if err := sl.Close(); err != nil {
				t.Fatal(err)
			}

			if len(ackedAtCrash) == 0 {
				t.Fatal("nothing acknowledged before the crash; test proves nothing")
			}
			got := storage.NewSharded(walSchema, shards)
			if err := RecoverSharded(crashed, got, shards); err != nil {
				t.Fatal(err)
			}
			for _, id := range ackedAtCrash {
				if !got.Contains(id) {
					t.Errorf("acknowledged tuple %d lost in mid-group crash", id)
				}
			}
		})
	}
}
