package wal

import (
	"os"
	"path/filepath"
	"testing"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

var walSchema = tuple.MustSchema(
	tuple.Column{Name: "device", Kind: tuple.KindString},
	tuple.Column{Name: "v", Kind: tuple.KindInt},
)

func row(device string, v int64) []tuple.Value {
	return []tuple.Value{tuple.String_(device), tuple.Int(v)}
}

func TestLogAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogFile)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tp1 := tuple.New(0, 5, row("a", 1))
	tp2 := tuple.New(1, 6, row("b", 2))
	tp2.F = 0.75
	tp2.Infected = true
	if err := l.AppendInsert(tp1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendInsert(tp2); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEvict(0); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []Rec
	if err := Replay(path, func(r Rec) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Type != RecInsert || recs[0].Tuple.ID != 0 {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if recs[1].Tuple.F != 0.75 || !recs[1].Tuple.Infected {
		t.Errorf("rec1 lost decay state: %+v", recs[1].Tuple)
	}
	if recs[2].Type != RecEvict || recs[2].ID != 0 {
		t.Errorf("rec2 = %+v", recs[2])
	}
}

func TestReplayMissingFile(t *testing.T) {
	n := 0
	err := Replay(filepath.Join(t.TempDir(), "nope.log"), func(Rec) error {
		n++
		return nil
	})
	if err != nil || n != 0 {
		t.Errorf("missing file: err=%v n=%d", err, n)
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogFile)
	l, _ := Open(path)
	l.AppendInsert(tuple.New(0, 1, row("a", 1)))
	l.AppendInsert(tuple.New(1, 1, row("b", 2)))
	l.Close()

	// Tear the last record: chop some trailing bytes.
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-5], 0o644)

	var n int
	if err := Replay(path, func(Rec) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("replayed %d records after tear, want 1", n)
	}
}

func TestReplayStopsAtCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogFile)
	l, _ := Open(path)
	l.AppendInsert(tuple.New(0, 1, row("a", 1)))
	l.Close()

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // flip a payload byte
	os.WriteFile(path, data, 0o644)

	var n int
	if err := Replay(path, func(Rec) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("replayed %d corrupt records, want 0", n)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := storage.New(walSchema, storage.WithSegmentSize(4))
	for i := 0; i < 10; i++ {
		if _, err := src.Insert(3, row("dev", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	src.Evict(2)
	src.Evict(3)
	src.Update(5, func(tp *tuple.Tuple) { tp.F = 0.25; tp.Infected = true })

	path := filepath.Join(dir, SnapshotFile)
	if err := WriteSnapshot(path, src); err != nil {
		t.Fatal(err)
	}

	dst := storage.New(walSchema, storage.WithSegmentSize(4))
	if err := LoadSnapshot(path, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d tuples, want %d", dst.Len(), src.Len())
	}
	got, err := dst.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.F != 0.25 || !got.Infected {
		t.Errorf("decay state lost: %+v", got)
	}
	if dst.Contains(2) || dst.Contains(3) {
		t.Error("evicted tuples resurrected")
	}
	// Inserts after restore must not collide with restored IDs.
	tp, err := dst.Insert(9, row("new", 99))
	if err != nil {
		t.Fatal(err)
	}
	if tp.ID < 10 {
		t.Errorf("new insert reused ID %d", tp.ID)
	}
}

func TestLoadSnapshotMissingFile(t *testing.T) {
	dst := storage.New(walSchema)
	if err := LoadSnapshot(filepath.Join(t.TempDir(), "none"), dst); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Error("loaded tuples from nothing")
	}
}

func TestLoadSnapshotCorrupt(t *testing.T) {
	dir := t.TempDir()
	src := storage.New(walSchema)
	src.Insert(1, row("a", 1))
	path := filepath.Join(dir, SnapshotFile)
	if err := WriteSnapshot(path, src); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)-6] ^= 0x55
	os.WriteFile(path, data, 0o644)
	if err := LoadSnapshot(path, storage.New(walSchema)); err == nil {
		t.Error("corrupt snapshot accepted")
	}
	// Bad magic.
	data[0] = 'X'
	os.WriteFile(path, data, 0o644)
	if err := LoadSnapshot(path, storage.New(walSchema)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestRecoverSnapshotPlusLog(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: build a store, checkpoint it.
	store := storage.New(walSchema, storage.WithSegmentSize(4))
	log, err := Open(filepath.Join(dir, LogFile))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tp, _ := store.Insert(1, row("pre", int64(i)))
		log.AppendInsert(tp)
	}
	if err := Checkpoint(dir, store, log); err != nil {
		t.Fatal(err)
	}

	// Phase 2: more activity after the checkpoint.
	tp6, _ := store.Insert(2, row("post", 6))
	log.AppendInsert(tp6)
	store.Evict(1)
	log.AppendEvict(1)
	if err := log.Sync(); err != nil {
		t.Fatal(err)
	}
	log.Close()

	// Crash. Recover.
	got, err := Recover(dir, walSchema, storage.WithSegmentSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != store.Len() {
		t.Fatalf("recovered %d tuples, want %d", got.Len(), store.Len())
	}
	if got.Contains(1) {
		t.Error("evicted tuple recovered")
	}
	if !got.Contains(6) {
		t.Error("post-checkpoint insert lost")
	}
}

func TestRecoverSkipsStaleRecords(t *testing.T) {
	// Crash between snapshot rename and log truncation: the log still
	// holds records already covered by the snapshot.
	dir := t.TempDir()
	store := storage.New(walSchema)
	log, _ := Open(filepath.Join(dir, LogFile))
	tp0, _ := store.Insert(1, row("a", 0))
	log.AppendInsert(tp0)
	tp1, _ := store.Insert(1, row("b", 1))
	log.AppendInsert(tp1)
	log.Sync()
	// Snapshot written but log NOT truncated.
	if err := WriteSnapshot(filepath.Join(dir, SnapshotFile), store); err != nil {
		t.Fatal(err)
	}
	log.Close()

	got, err := Recover(dir, walSchema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("recovered %d tuples, want 2 (no duplicates)", got.Len())
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	got, err := Recover(t.TempDir(), walSchema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Error("recovered tuples from empty dir")
	}
}

func TestTruncateAllowsNewRecords(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LogFile)
	l, _ := Open(path)
	l.AppendInsert(tuple.New(0, 1, row("old", 1)))
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	l.AppendInsert(tuple.New(7, 1, row("new", 2)))
	l.Close()

	var recs []Rec
	Replay(path, func(r Rec) error { recs = append(recs, r); return nil })
	if len(recs) != 1 || recs[0].Tuple.ID != 7 {
		t.Errorf("after truncate replayed %+v", recs)
	}
}

func TestRecoverSparseSnapshotSegmentsSealed(t *testing.T) {
	// A snapshot whose tuples leave a whole segment dead must recover
	// into a store where evicting the survivors drops their segments.
	dir := t.TempDir()
	store := storage.New(walSchema, storage.WithSegmentSize(2))
	for i := 0; i < 6; i++ {
		store.Insert(1, row("x", int64(i)))
	}
	store.Evict(2)
	store.Evict(3) // segment 1 fully dead
	store.Evict(5) // segment 2 half dead
	if err := WriteSnapshot(filepath.Join(dir, SnapshotFile), store); err != nil {
		t.Fatal(err)
	}
	got, err := Recover(dir, walSchema, storage.WithSegmentSize(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("Len = %d, want 3", got.Len())
	}
	// Evict the survivors of segment 0; it must drop. Segment 2 is the
	// open insert tail, so it stays.
	for _, id := range []tuple.ID{0, 1, 4} {
		if err := got.Evict(id); err != nil {
			t.Fatal(err)
		}
	}
	if st := got.Stats(); st.SegsDropped != 1 {
		t.Errorf("SegsDropped = %d, want 1", st.SegsDropped)
	}
	// The pre-crash allocation point survives: tuple 5 was evicted
	// before the snapshot, and its ID must not be reused.
	tp, err := got.Insert(2, row("fresh", 1))
	if err != nil {
		t.Fatal(err)
	}
	if tp.ID < 6 {
		t.Errorf("insert after recovery reused ID %d", tp.ID)
	}
}
