// Unit coverage for the shipping read surface replication sits on:
// frame-aligned reads, whole-frame validation, and record accounting
// across truncation.
package wal

import (
	"testing"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

func shipLog(t *testing.T, shards int) *ShardedLog {
	t.Helper()
	sl, err := OpenSharded(t.TempDir(), shards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sl.Close() })
	return sl
}

func shipTuple(id uint64, n int64) tuple.Tuple {
	return tuple.Tuple{ID: tuple.ID(id), F: 1,
		Attrs: []tuple.Value{tuple.String_("d"), tuple.Int(n)}}
}

// TestFrameScanTrimsPartialTail: a torn tail — any prefix of a frame —
// must be excluded, and a corrupt byte kills the frame it lives in.
func TestFrameScanTrimsPartialTail(t *testing.T) {
	sl := shipLog(t, 1)
	for i := 0; i < 3; i++ {
		if err := sl.AppendInsert(0, shipTuple(uint64(i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.AppendTick(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := sl.FlushShard(0); err != nil {
		t.Fatal(err)
	}
	data, nrec, err := sl.ReadShard(0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if nrec != 4 {
		t.Fatalf("read %d records, want 4", nrec)
	}
	if n, recs := FrameScan(data); n != int64(len(data)) || recs != 4 {
		t.Fatalf("FrameScan(whole) = (%d, %d), want (%d, 4)", n, recs, len(data))
	}
	// Chop mid-frame: the scan must stop at the last whole frame.
	torn := data[:len(data)-3]
	n, recs := FrameScan(torn)
	if n >= int64(len(torn)) || recs != 3 {
		t.Fatalf("FrameScan(torn) = (%d, %d), want (<%d, 3)", n, recs, len(torn))
	}
	if m, _ := FrameScan(torn[:n]); m != n {
		t.Fatalf("trimmed prefix rescans to %d, want %d (not frame-closed)", m, n)
	}
	// Flip a payload byte: its frame (and everything after) is rejected.
	bad := append([]byte(nil), data...)
	bad[10] ^= 0xff
	if n, recs := FrameScan(bad); recs != 0 || n != 0 {
		t.Fatalf("FrameScan(corrupt first frame) = (%d, %d), want (0, 0)", n, recs)
	}
}

// TestReadShardFrameAligned: a maxBytes cap lands reads on frame
// boundaries, successive reads tile the log exactly, and the record
// total matches RecordCounts.
func TestReadShardFrameAligned(t *testing.T) {
	sl := shipLog(t, 2)
	const perShard = 20
	for i := 0; i < perShard; i++ {
		if err := sl.AppendInsert(0, shipTuple(uint64(2*i), int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := sl.AppendEvict(1, tuple.ID(2*i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := sl.FlushShard(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		size, err := sl.ShardSize(i)
		if err != nil {
			t.Fatal(err)
		}
		var off int64
		var total int
		for off < size {
			data, nrec, err := sl.ReadShard(i, off, 64) // tiny cap: forces many frame-aligned reads
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Fatalf("shard %d: empty read at %d/%d", i, off, size)
			}
			if n, recs := FrameScan(data); n != int64(len(data)) || recs != nrec {
				t.Fatalf("shard %d read at %d not whole frames: scan (%d, %d) vs (%d, %d)",
					i, off, n, recs, len(data), nrec)
			}
			off += int64(len(data))
			total += nrec
		}
		if off != size {
			t.Fatalf("shard %d reads tiled to %d, size %d", i, off, size)
		}
		if total != perShard {
			t.Fatalf("shard %d read %d records, want %d", i, total, perShard)
		}
		if counts := sl.RecordCounts(); counts[i] != perShard {
			t.Fatalf("shard %d RecordCounts = %d, want %d", i, counts[i], perShard)
		}
	}
}

// TestRecordCountsResetAtCheckpoint: counts are per-generation — a
// checkpoint folds them into the snapshots and restarts the ledger the
// follower's lag gauge is computed from.
func TestRecordCountsResetAtCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSharded(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	ss := storage.NewSharded(walSchema, 1)
	for i := 0; i < 5; i++ {
		tp, err := ss.Insert(1, []tuple.Value{tuple.String_("d"), tuple.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := sl.AppendInsert(0, tp); err != nil {
			t.Fatal(err)
		}
	}
	if got := sl.RecordCounts()[0]; got != 5 {
		t.Fatalf("pre-checkpoint count %d, want 5", got)
	}
	preSize, err := sl.ShardSize(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Checkpoint(ss, 1); err != nil {
		t.Fatal(err)
	}
	if got := sl.RecordCounts()[0]; got != 0 {
		t.Fatalf("post-checkpoint count %d, want 0", got)
	}
	trunc, ok := sl.LastTruncation()
	if !ok {
		t.Fatal("checkpoint recorded no truncation")
	}
	if trunc.FromGen != 0 || trunc.Sizes[0] != preSize {
		t.Fatalf("truncation = %+v, want FromGen 0 with size %d (the rollover cursor contract)",
			trunc, preSize)
	}
}
