package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// Snapshot/recovery file names within a table directory.
const (
	SnapshotFile = "snapshot.db"
	LogFile      = "wal.log"
)

var (
	snapshotMagicV1 = [8]byte{'F', 'D', 'B', 'S', 'N', 'A', 'P', '1'}
	snapshotMagic   = [8]byte{'F', 'D', 'B', 'S', 'N', 'A', 'P', '2'}
)

// Extent is the store surface persistence needs. Both *storage.Store
// and *storage.ShardedStore implement it: snapshots are written in
// global scan (ID) order and restored by routing each record back to
// its owner, so a table can even be reopened with a different shard
// count — IDs decide ownership, not file layout.
type Extent interface {
	Schema() *tuple.Schema
	Len() int
	NextID() tuple.ID
	Scan(fn func(*tuple.Tuple) bool)
	Restore(tp tuple.Tuple) error
	FinishRestore()
	AdvanceNextID(id tuple.ID)
	Evict(id tuple.ID) error
}

// zoneSaver and zoneLoader are the optional extent surfaces for
// carrying segment zone maps through snapshots. Extents that lack them
// (e.g. the shard-merge collector) simply rebuild summaries from the
// restored tuples — persistence is an optimisation, never required.
type zoneSaver interface {
	AppendZones(dst []byte) []byte
}

type zoneLoader interface {
	InstallZones(blob []byte)
}

// WriteSnapshot serialises every live tuple of store (with exact
// freshness and infection state) to path, atomically via a temp file +
// rename. Layout: magic, uvarint nextID, uvarint tuple count, a
// length-prefixed zone-map blob (empty when the extent has none), the
// tuples, then crc32c of everything after the magic. The zone blob sits
// before the tuples so recovery can stage the summaries ahead of the
// restore stream.
func WriteSnapshot(path string, store Extent) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot create: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	crc := crc32.New(crcTable)
	w := bufio.NewWriter(io.MultiWriter(f, crc))
	if _, err = f.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("wal: snapshot magic: %w", err)
	}
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(store.NextID()))
	hdr = binary.AppendUvarint(hdr, uint64(store.Len()))
	var zones []byte
	if zs, ok := store.(zoneSaver); ok {
		zones = zs.AppendZones(nil)
	}
	hdr = binary.AppendUvarint(hdr, uint64(len(zones)))
	hdr = append(hdr, zones...)
	if _, err = w.Write(hdr); err != nil {
		return fmt.Errorf("wal: snapshot header: %w", err)
	}
	var buf []byte
	var scanErr error
	store.Scan(func(tp *tuple.Tuple) bool {
		buf = tuple.AppendEncode(buf[:0], *tp)
		if _, scanErr = w.Write(buf); scanErr != nil {
			return false
		}
		return true
	})
	if scanErr != nil {
		err = fmt.Errorf("wal: snapshot body: %w", scanErr)
		return err
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("wal: snapshot flush: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err = f.Write(tail[:]); err != nil {
		return fmt.Errorf("wal: snapshot crc: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return nil
}

// LoadSnapshot restores tuples from path into store (which must be
// empty). A missing file is not an error and loads nothing.
func LoadSnapshot(path string, store Extent) error {
	nextID, err := loadSnapshot(path, store)
	if err != nil {
		return err
	}
	store.FinishRestore()
	// Resume ID allocation where the snapshotted store left off, so IDs
	// of tuples evicted before the snapshot are never reused.
	store.AdvanceNextID(nextID)
	return nil
}

// loadSnapshot restores the snapshot body without touching allocation
// cursors, returning the header's next-ID high-water mark. RecoverInto
// needs the raw form: advancing cursors before WAL replay would make a
// lagging shard's logged post-checkpoint inserts look stale (the header
// records only the global maximum, which rounds up per shard).
func loadSnapshot(path string, store Extent) (tuple.ID, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: snapshot read: %w", err)
	}
	return DecodeSnapshot(data, store)
}

// DecodeSnapshot restores a serialised snapshot from memory into store
// without touching allocation cursors, returning the header's next-ID
// high-water mark. A replication follower re-basing from a shipped
// snapshot uses it directly: the chunks arrive over the wire, never
// touching the follower's disk. The caller is responsible for
// FinishRestore and AdvanceNextID once every shard is loaded.
func DecodeSnapshot(data []byte, store Extent) (tuple.ID, error) {
	if len(data) < len(snapshotMagic)+4 {
		return 0, fmt.Errorf("wal: snapshot truncated (%d bytes)", len(data))
	}
	v2 := true
	for i, b := range snapshotMagic {
		if data[i] != b {
			v2 = false
			break
		}
	}
	if !v2 {
		// A v1 snapshot (pre zone-map persistence) restores fine — the
		// summaries rebuild from the tuples.
		for i, b := range snapshotMagicV1 {
			if data[i] != b {
				return 0, fmt.Errorf("wal: bad snapshot magic")
			}
		}
	}
	body := data[len(snapshotMagic) : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return 0, fmt.Errorf("wal: snapshot crc mismatch")
	}

	pos := 0
	nextID, w := binary.Uvarint(body[pos:])
	if w <= 0 {
		return 0, fmt.Errorf("wal: snapshot bad nextID")
	}
	pos += w
	count, w := binary.Uvarint(body[pos:])
	if w <= 0 {
		return 0, fmt.Errorf("wal: snapshot bad count")
	}
	pos += w
	if v2 {
		zlen, w := binary.Uvarint(body[pos:])
		if w <= 0 || pos+w+int(zlen) > len(body) {
			return 0, fmt.Errorf("wal: snapshot bad zone blob")
		}
		pos += w
		if zl, ok := store.(zoneLoader); ok && zlen > 0 {
			zl.InstallZones(body[pos : pos+int(zlen)])
		}
		pos += int(zlen)
	}
	for i := uint64(0); i < count; i++ {
		tp, n, err := tuple.Decode(body[pos:], store.Schema())
		if err != nil {
			return 0, fmt.Errorf("wal: snapshot tuple %d: %w", i, err)
		}
		pos += n
		if err := store.Restore(tp); err != nil {
			return 0, fmt.Errorf("wal: snapshot tuple %d: %w", i, err)
		}
	}
	return tuple.ID(nextID), nil
}

// Recover rebuilds a plain store from the snapshot and WAL in dir.
func Recover(dir string, schema *tuple.Schema, opts ...storage.Option) (*storage.Store, error) {
	store := storage.New(schema, opts...)
	if err := RecoverInto(dir, store); err != nil {
		return nil, err
	}
	return store, nil
}

// RecoverInto replays the snapshot and WAL in dir into an empty extent.
// Records that predate the snapshot (possible when a crash interrupted
// a checkpoint between snapshot rename and log truncation) are skipped.
// A sharded extent routes every record to its owning shard by ID, so
// recovery works even when the shard count changed since the files were
// written.
//
// Concurrent shards append log records in per-shard (not global) ID
// order, and a different shard count re-partitions the residue classes,
// so the raw log stream need not be monotonic per NEW shard. Replay
// therefore buffers the log tail, sorts inserts by ID (restoring
// per-shard monotonicity under any partitioning) and applies evictions
// afterwards — IDs are never reused, so insert-then-evict commutes to
// the same final extent.
func RecoverInto(dir string, store Extent) error {
	hdrNext, err := loadSnapshot(filepath.Join(dir, SnapshotFile), store)
	if err != nil {
		return err
	}
	var inserts []tuple.Tuple
	var evicts []tuple.ID
	err = Replay(filepath.Join(dir, LogFile), func(rec Rec) error {
		switch rec.Type {
		case RecInsert:
			inserts = append(inserts, rec.Tuple)
			return nil
		case RecEvict:
			evicts = append(evicts, rec.ID)
			return nil
		case RecTick:
			// Freshness at the crash point is approximated by the
			// snapshot (see the package comment's bounded-staleness
			// trade-off); ticks matter only to live followers.
			return nil
		}
		return fmt.Errorf("wal: recover: unknown record %d", rec.Type)
	})
	if err != nil {
		return err
	}
	sort.Slice(inserts, func(i, j int) bool { return inserts[i].ID < inserts[j].ID })
	for _, tp := range inserts {
		// A record behind the owning shard's cursor is already in the
		// snapshot; the staleness check lives in the store so it is per
		// shard, not against the global high-water mark.
		if err := store.Restore(tp); err != nil && !errors.Is(err, storage.ErrStaleRestore) {
			return err
		}
	}
	for _, id := range evicts {
		if err := store.Evict(id); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return err
		}
	}
	store.FinishRestore()
	// Advance allocation cursors only AFTER replay: the header records
	// the global maximum, which rounds up per shard — doing this first
	// would make a lagging shard's logged post-checkpoint inserts look
	// stale and silently drop them.
	store.AdvanceNextID(hdrNext)
	return nil
}

// Checkpoint writes a fresh snapshot of store into dir and truncates the
// log. The order (snapshot first, truncate second) keeps every state
// recoverable: a crash in between replays stale records, which Recover
// skips.
func Checkpoint(dir string, store Extent, log *Log) error {
	if err := WriteSnapshot(filepath.Join(dir, SnapshotFile), store); err != nil {
		return err
	}
	return log.Truncate()
}

// Truncate discards all logged records. The caller must have captured
// the state elsewhere (see Checkpoint).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: truncate flush: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: truncate seek: %w", err)
	}
	l.w.Reset(l.f)
	l.recs = 0
	return nil
}
