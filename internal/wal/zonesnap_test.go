package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// writeSnapshotV1 emits the pre-zone-persistence layout (v1 magic, no
// zone blob) the way the old writer did, for compatibility testing.
func writeSnapshotV1(path string, store Extent) error {
	var body []byte
	body = binary.AppendUvarint(body, uint64(store.NextID()))
	body = binary.AppendUvarint(body, uint64(store.Len()))
	store.Scan(func(tp *tuple.Tuple) bool {
		body = tuple.AppendEncode(body, *tp)
		return true
	})
	data := append([]byte{}, snapshotMagicV1[:]...)
	data = append(data, body...)
	data = binary.LittleEndian.AppendUint32(data, crc32.Checksum(body, crcTable))
	return os.WriteFile(path, data, 0o644)
}

// countZoneFolds arranges for folds to be counted for the duration of
// the test and returns the live counter.
func countZoneFolds(t *testing.T) *int {
	t.Helper()
	folds := 0
	storage.TestHookZoneFold = func() { folds++ }
	t.Cleanup(func() { storage.TestHookZoneFold = nil })
	return &folds
}

// zonesUsable proves every live segment carries a usable zone summary:
// a scan whose skip callback rejects everything must skip every live
// tuple (segments without a usable summary are never offered for
// pruning and would be scanned instead).
func zonesUsable(t *testing.T, s interface {
	Len() int
	ScanPruned(func(*storage.ZoneMap) bool, func(*tuple.Tuple) bool) storage.PruneStats
}) {
	t.Helper()
	ps := s.ScanPruned(
		func(*storage.ZoneMap) bool { return true },
		func(*tuple.Tuple) bool { return true },
	)
	if ps.Tuples != s.Len() {
		t.Errorf("only %d of %d live tuples sit under usable zone maps", ps.Tuples, s.Len())
	}
}

// TestSnapshotZoneRestoreSkipsFolds is the recovery acceptance check:
// a snapshot carries the per-segment zone maps, so loading it installs
// the summaries instead of rebuilding them row by row — zero folds —
// and the restored store prunes exactly like the original.
func TestSnapshotZoneRestoreSkipsFolds(t *testing.T) {
	dir := t.TempDir()
	src := storage.New(walSchema, storage.WithSegmentSize(4))
	for i := 0; i < 19; i++ {
		if _, err := src.Insert(clock.Tick(3+i/4), row("dev", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, SnapshotFile)
	if err := WriteSnapshot(path, src); err != nil {
		t.Fatal(err)
	}

	folds := countZoneFolds(t)
	dst := storage.New(walSchema, storage.WithSegmentSize(4))
	if err := LoadSnapshot(path, dst); err != nil {
		t.Fatal(err)
	}
	if *folds != 0 {
		t.Errorf("restore folded %d rows; persisted zone maps should cover all of them", *folds)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d tuples, want %d", dst.Len(), src.Len())
	}
	zonesUsable(t, dst)

	// The installed bounds must match what a rebuild would produce:
	// collect per-segment ID bounds from both stores and compare.
	bounds := func(s *storage.Store) [][2]tuple.ID {
		var out [][2]tuple.ID
		s.ScanPruned(func(z *storage.ZoneMap) bool {
			lo, hi, ok := z.IDBounds()
			if !ok {
				t.Fatal("usable zone without ID bounds")
			}
			out = append(out, [2]tuple.ID{tuple.ID(lo.AsInt()), tuple.ID(hi.AsInt())})
			return true
		}, func(*tuple.Tuple) bool { return true })
		return out
	}
	got, want := bounds(dst), bounds(src)
	if len(got) != len(want) {
		t.Fatalf("restored %d zoned segments, original had %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("segment %d ID bounds: restored %v, original %v", i, got[i], want[i])
		}
	}
}

// TestRecoverZoneFoldsOnlyLogTail: after a checkpoint plus more logged
// inserts, recovery installs the snapshot summaries untouched and folds
// exactly the log-tail rows (whose IDs sit above the persisted
// high-water marks).
func TestRecoverZoneFoldsOnlyLogTail(t *testing.T) {
	dir := t.TempDir()
	src := storage.New(walSchema, storage.WithSegmentSize(4))
	log, err := Open(filepath.Join(dir, LogFile))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		tp, err := src.Insert(3, row("dev", int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.AppendInsert(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := Checkpoint(dir, src, log); err != nil {
		t.Fatal(err)
	}
	const tail = 5
	for i := 0; i < tail; i++ {
		tp, err := src.Insert(4, row("late", int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.AppendInsert(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	folds := countZoneFolds(t)
	dst, err := Recover(dir, walSchema, storage.WithSegmentSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 17 {
		t.Fatalf("recovered %d tuples, want 17", dst.Len())
	}
	if *folds != tail {
		t.Errorf("recovery folded %d rows, want exactly the %d log-tail inserts", *folds, tail)
	}
	zonesUsable(t, dst)
}

// TestZoneRestoreShardCountChange: reopening with a different shard
// count re-partitions the ID residue classes, so the persisted records
// no longer line up — they must be dropped (not misinstalled) and the
// summaries rebuilt from the tuples, which still prune correctly.
func TestZoneRestoreShardCountChange(t *testing.T) {
	dir := t.TempDir()
	src := storage.NewSharded(walSchema, 2, storage.WithSegmentSize(4))
	for i := 0; i < 24; i++ {
		if _, err := src.Insert(3, row("dev", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, SnapshotFile)
	if err := WriteSnapshot(path, src); err != nil {
		t.Fatal(err)
	}

	// Same shard count: summaries install, no folds.
	folds := countZoneFolds(t)
	same := storage.NewSharded(walSchema, 2, storage.WithSegmentSize(4))
	if err := LoadSnapshot(path, same); err != nil {
		t.Fatal(err)
	}
	if *folds != 0 {
		t.Errorf("same-layout restore folded %d rows, want 0", *folds)
	}

	// Different shard count: records dropped, summaries rebuilt.
	*folds = 0
	diff := storage.NewSharded(walSchema, 3, storage.WithSegmentSize(4))
	if err := LoadSnapshot(path, diff); err != nil {
		t.Fatal(err)
	}
	if *folds == 0 {
		t.Error("re-sharded restore installed mismatched zone records instead of rebuilding")
	}
	if diff.Len() != 24 {
		t.Fatalf("re-sharded restore lost tuples: %d, want 24", diff.Len())
	}
	for i := 0; i < 3; i++ {
		sh := diff.Shard(i)
		ps := sh.ScanPruned(
			func(*storage.ZoneMap) bool { return true },
			func(*tuple.Tuple) bool { return true },
		)
		if ps.Tuples != sh.Len() {
			t.Errorf("shard %d: only %d of %d tuples under usable zones after rebuild", i, ps.Tuples, sh.Len())
		}
	}
}

// TestV1SnapshotStillLoads: a pre-zone-persistence snapshot (v1 magic,
// no zone blob) restores fine; the summaries rebuild from the tuples.
func TestV1SnapshotStillLoads(t *testing.T) {
	dir := t.TempDir()
	src := storage.New(walSchema, storage.WithSegmentSize(4))
	for i := 0; i < 10; i++ {
		if _, err := src.Insert(3, row("dev", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, SnapshotFile)
	if err := writeSnapshotV1(path, src); err != nil {
		t.Fatal(err)
	}
	dst := storage.New(walSchema, storage.WithSegmentSize(4))
	if err := LoadSnapshot(path, dst); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 10 {
		t.Fatalf("v1 restore got %d tuples, want 10", dst.Len())
	}
	zonesUsable(t, dst)
	// Corrupt magic still rejected.
	data, _ := os.ReadFile(path)
	data[7] = 'X'
	bad := filepath.Join(dir, "bad.db")
	os.WriteFile(bad, data, 0o644)
	if err := LoadSnapshot(bad, storage.New(walSchema)); err == nil {
		t.Error("unknown snapshot magic accepted")
	}
}
