// Log shipping: the read-side surface a replication leader uses to
// stream per-shard WAL bytes to followers.
//
// Shipping works on raw framed bytes, not decoded records — the frames
// already carry lengths and crc32c checksums, so the wire inherits the
// log's integrity checking for free and the follower replays shipped
// bytes through the exact decode path crash recovery uses. Offsets into
// a shard log are the replication cursor: a follower resumes by asking
// for (generation, per-shard byte offsets), and every offset handed out
// by ReadShard lands on a frame boundary.
//
// The shipper never takes engine locks. It flushes the target log's
// write buffer, reads the file, and relies on the generation protocol
// (see ShardedLog.Checkpoint) to detect a concurrent truncation: a
// reader that observes the same committed generation before and after a
// file read is guaranteed the bytes belong to that generation.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// FrameScan returns the byte length of the longest prefix of data that
// consists of complete, checksum-valid records, and how many records it
// holds. Shipping uses it to trim a read that raced a partially flushed
// append down to whole frames.
func FrameScan(data []byte) (n int64, recs int) {
	for {
		if int64(len(data))-n < 8 {
			return n, recs
		}
		length := binary.LittleEndian.Uint32(data[n : n+4])
		wantCRC := binary.LittleEndian.Uint32(data[n+4 : n+8])
		if length == 0 || length > 1<<28 {
			return n, recs
		}
		end := n + 8 + int64(length)
		if end > int64(len(data)) {
			return n, recs
		}
		if crc32.Checksum(data[n+8:end], crcTable) != wantCRC {
			return n, recs
		}
		n = end
		recs++
	}
}

// DecodeFrames invokes fn for each record in data, which must be a
// whole number of valid frames (the shape FrameScan and ReadShard
// produce). The follower's apply loop feeds shipped bytes through it.
func DecodeFrames(data []byte, fn func(Rec) error) error {
	for len(data) > 0 {
		if len(data) < 8 {
			return fmt.Errorf("wal: frame decode: torn header (%d bytes)", len(data))
		}
		length := binary.LittleEndian.Uint32(data[0:4])
		wantCRC := binary.LittleEndian.Uint32(data[4:8])
		if length == 0 || int(length) > len(data)-8 {
			return fmt.Errorf("wal: frame decode: bad length %d", length)
		}
		payload := data[8 : 8+length]
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return fmt.Errorf("wal: frame decode: checksum mismatch")
		}
		rec, err := decodeRec(payload)
		if err != nil {
			return fmt.Errorf("wal: frame decode: %w", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
		data = data[8+length:]
	}
	return nil
}

// scanFrameFile counts the valid frames in the log at path without
// decoding payloads (Open uses it to rebuild the record counter). A
// missing file scans as empty.
func scanFrameFile(path string) (valid int64, recs uint64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var hdr [8]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return valid, recs, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > 1<<28 {
			return valid, recs, nil
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(r, buf); err != nil {
			return valid, recs, nil
		}
		if crc32.Checksum(buf, crcTable) != wantCRC {
			return valid, recs, nil
		}
		valid += 8 + int64(length)
		recs++
	}
}

// FlushShard pushes shard i's buffered appends to the OS (no fsync) so
// a subsequent ReadShard sees them.
func (sl *ShardedLog) FlushShard(i int) error {
	return sl.logs[i].Flush()
}

// ShardSize flushes shard i's log and returns its file size — the
// upper bound of bytes ReadShard can currently serve.
func (sl *ShardedLog) ShardSize(i int) (int64, error) {
	if err := sl.logs[i].Flush(); err != nil {
		return 0, err
	}
	fi, err := os.Stat(filepath.Join(sl.dir, ShardLogFile(i)))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// ReadShard returns up to maxBytes of shard i's log starting at byte
// offset from, trimmed to whole checksum-valid frames, plus the record
// count. from must itself be a frame boundary (offsets returned by
// earlier reads are). Reading at or past the flushed size returns
// (nil, 0, nil); the caller distinguishes "no new data" from "log
// truncated under me" with the generation protocol.
func (sl *ShardedLog) ReadShard(i int, from int64, maxBytes int) ([]byte, int, error) {
	f, err := os.Open(filepath.Join(sl.dir, ShardLogFile(i)))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	buf := make([]byte, maxBytes)
	n, err := f.ReadAt(buf, from)
	if err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("wal: ship read shard %d: %w", i, err)
	}
	valid, recs := FrameScan(buf[:n])
	if valid == 0 {
		return nil, 0, nil
	}
	return buf[:valid], recs, nil
}

// RecordCounts returns every shard's appended-record count for the
// current generation (buffered appends included). Followers subtract
// their applied counts from these to compute replication lag.
func (sl *ShardedLog) RecordCounts() []uint64 {
	out := make([]uint64, len(sl.logs))
	for i, l := range sl.logs {
		out[i] = l.Records()
	}
	return out
}

// SnapshotBlobs reads the committed generation's per-shard snapshot
// files, retrying if a checkpoint commits a new generation mid-read, and
// returns the manifest they belong to. Generation 0 has no snapshot
// files; its blobs are nil (an empty base — the logs hold everything).
// The leader uses this to re-base a follower whose cursor predates the
// last checkpoint.
func (sl *ShardedLog) SnapshotBlobs() (Manifest, [][]byte, error) {
	for attempt := 0; attempt < 5; attempt++ {
		man := sl.Manifest()
		blobs := make([][]byte, len(sl.logs))
		if man.Generation > 0 {
			ok := true
			for i := range sl.logs {
				data, err := os.ReadFile(filepath.Join(sl.dir, shardSnapshotFile(man.Generation, i)))
				if err != nil {
					ok = false // checkpoint racing us; retry with the new manifest
					break
				}
				blobs[i] = data
			}
			if !ok {
				continue
			}
		}
		if sl.Manifest().Generation != man.Generation {
			continue
		}
		return man, blobs, nil
	}
	return Manifest{}, nil, fmt.Errorf("wal: snapshot blobs: generation kept moving")
}
