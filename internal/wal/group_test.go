package wal

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// manualGC builds a committer with no ticker and an unreachable size
// threshold, so windows flush only when the test says so.
func manualGC(sl *ShardedLog) *GroupCommitter {
	return NewGroupCommitter(sl, GroupCommitConfig{Interval: -1, SizeThreshold: 1 << 30})
}

func TestParseDurabilityRoundTrip(t *testing.T) {
	for _, l := range []DurabilityLevel{DurabilityNone, DurabilityGrouped, DurabilityStrict} {
		got, err := ParseDurability(l.String())
		if err != nil || got != l {
			t.Errorf("ParseDurability(%q) = %v, %v", l.String(), got, err)
		}
	}
	for _, s := range []string{"", "default"} {
		if got, err := ParseDurability(s); err != nil || got != DurabilityDefault {
			t.Errorf("ParseDurability(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDurability("fsync-sometimes"); err == nil {
		t.Error("bad level accepted")
	}
}

// A wait is unresolved until its window flushes, resolved after, and a
// zero CommitWait is born resolved.
func TestGroupCommitWaitResolvesOnFlush(t *testing.T) {
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, 2, 0)
	gc := manualGC(sl)
	defer sl.Close()
	defer gc.Close()

	if !(CommitWait{}).Resolved() {
		t.Error("zero CommitWait not resolved")
	}
	i := ss.NextShard()
	tp, err := ss.InsertShard(i, 1, row("dev", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendInsert(i, tp); err != nil {
		t.Fatal(err)
	}
	w := gc.Note(i, 1)
	if w.Resolved() {
		t.Error("wait resolved before any flush")
	}
	if err := gc.Flush(); err != nil {
		t.Fatal(err)
	}
	if !w.Resolved() {
		t.Error("wait unresolved after flush")
	}
	if err := w.Wait(); err != nil {
		t.Errorf("wait err = %v", err)
	}
	st := gc.Stats()
	if st.Commits != 1 || st.Records != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// The size threshold flushes the window without a tick or manual kick.
func TestGroupCommitSizeThresholdFlushes(t *testing.T) {
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, 1, 0)
	gc := NewGroupCommitter(sl, GroupCommitConfig{Interval: -1, SizeThreshold: 8})
	defer sl.Close()
	defer gc.Close()

	var last CommitWait
	for k := 0; k < 8; k++ {
		tp, err := ss.InsertShard(0, 1, row("dev", int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sl.AppendInsert(0, tp); err != nil {
			t.Fatal(err)
		}
		last = gc.Note(0, 1)
	}
	// The eighth note kicked the daemon; the flush is asynchronous.
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := gc.Stats(); st.Records != 8 {
		t.Errorf("records = %d, want 8", st.Records)
	}
}

// The interval ticker flushes a sub-threshold window on its own.
func TestGroupCommitTickFlushes(t *testing.T) {
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, 1, 0)
	gc := NewGroupCommitter(sl, GroupCommitConfig{Interval: time.Millisecond, SizeThreshold: 1 << 30})
	defer sl.Close()
	defer gc.Close()

	tp, err := ss.InsertShard(0, 1, row("dev", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendInsert(0, tp); err != nil {
		t.Fatal(err)
	}
	w := gc.Note(0, 1)
	done := make(chan error, 1)
	go func() { done <- w.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tick never flushed the window")
	}
}

// Close resolves every outstanding wait (the shutdown flush).
func TestGroupCommitCloseResolvesPending(t *testing.T) {
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, 3, 9)
	gc := manualGC(sl)
	i := ss.NextShard()
	tp, err := ss.InsertShard(i, 1, row("dev", 99))
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendInsert(i, tp); err != nil {
		t.Fatal(err)
	}
	w := gc.Note(i, 1)
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	if !w.Resolved() {
		t.Error("Close left a wait pending")
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
}

// Concurrent noters across shards all resolve, and the record/commit
// accounting conserves: every noted record is covered by exactly one
// commit.
func TestGroupCommitConcurrentNoters(t *testing.T) {
	const shards, perShard = 4, 200
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, shards, 0)
	gc := NewGroupCommitter(sl, GroupCommitConfig{Interval: 500 * time.Microsecond, SizeThreshold: 32})
	defer sl.Close()

	// One mutex per shard serialises append+note pairs, standing in for
	// the engine's shard locks.
	locks := make([]sync.Mutex, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perShard; k++ {
				locks[i].Lock()
				tp, err := ss.InsertShard(i, 1, row("dev", int64(k)))
				if err != nil {
					locks[i].Unlock()
					t.Error(err)
					return
				}
				if err := sl.AppendInsert(i, tp); err != nil {
					locks[i].Unlock()
					t.Error(err)
					return
				}
				w := gc.Note(i, 1)
				locks[i].Unlock()
				if err := w.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	st := gc.Stats()
	if st.Records != shards*perShard {
		t.Errorf("committed %d records, want %d", st.Records, shards*perShard)
	}
	if st.Commits == 0 || st.Commits > st.Records {
		t.Errorf("commits = %d for %d records", st.Commits, st.Records)
	}
	if avg := st.AvgGroupSize(); avg < 1 {
		t.Errorf("avg group size = %g", avg)
	}
}

// Sync must attempt every shard and join every failure, not just the
// first: both broken shards appear in the error.
func TestShardedSyncJoinsAllShardErrors(t *testing.T) {
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, 4, 0)
	// Buffer a record on every shard so each Sync has work to flush.
	for i := 0; i < 4; i++ {
		tp, err := ss.InsertShard(i, 1, row("dev", int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sl.AppendInsert(i, tp); err != nil {
			t.Fatal(err)
		}
	}
	// Break shards 1 and 3 underneath their Logs.
	sl.logs[1].f.Close()
	sl.logs[3].f.Close()
	err := sl.Sync()
	if err == nil {
		t.Fatal("Sync over broken shards returned nil")
	}
	for _, want := range []string{"shard 1", "shard 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error misses %q: %v", want, err)
		}
	}
	if strings.Contains(err.Error(), "shard 0") || strings.Contains(err.Error(), "shard 2") {
		t.Errorf("healthy shards reported broken: %v", err)
	}
}

// A flush that hits a broken shard delivers the error to that window's
// waiters instead of swallowing it.
func TestGroupCommitFlushErrorReachesWaiters(t *testing.T) {
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, 2, 0)
	gc := manualGC(sl)
	defer gc.Close()
	tp, err := ss.InsertShard(1, 1, row("dev", 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendInsert(1, tp); err != nil {
		t.Fatal(err)
	}
	w := gc.Note(1, 1)
	sl.logs[1].f.Close()
	if err := gc.Flush(); err == nil {
		t.Fatal("flush over a broken shard returned nil")
	}
	if err := w.Wait(); err == nil {
		t.Error("waiter did not observe the flush error")
	}
}
