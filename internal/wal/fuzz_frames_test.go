// FuzzDecodeFrames is the native fuzz target over the log-shipping
// decode path. Followers feed bytes received off the wire straight
// into DecodeFrames, so the decoder must be total: arbitrary input
// yields records or an error, never a panic, and FrameScan's notion of
// "valid prefix" must stay consistent with what DecodeFrames accepts.
package wal

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"fungusdb/internal/tuple"
)

// fuzzFrame wraps payload in a length+crc32c header, the exact shape
// appendFramed writes.
func fuzzFrame(payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	return append(hdr[:], payload...)
}

func FuzzDecodeFrames(f *testing.F) {
	insert := append([]byte{byte(RecInsert)}, tuple.AppendEncode(nil,
		tuple.Tuple{ID: 7, T: 3, F: 1, Attrs: []tuple.Value{tuple.String_("sensor-1"), tuple.Int(42)}})...)
	evict := binary.LittleEndian.AppendUint64([]byte{byte(RecEvict)}, 7)
	tick := binary.LittleEndian.AppendUint64([]byte{byte(RecTick)}, 99)

	f.Add([]byte{})
	f.Add(fuzzFrame(insert))
	f.Add(append(fuzzFrame(evict), fuzzFrame(tick)...))
	f.Add(fuzzFrame(insert)[:5]) // torn header
	f.Add(fuzzFrame([]byte{0xFF, 1, 2, 3}))
	badLen := fuzzFrame(tick)
	binary.LittleEndian.PutUint32(badLen[0:4], 1<<30) // length past the buffer
	f.Add(badLen)
	badCRC := fuzzFrame(evict)
	badCRC[4] ^= 0xA5
	f.Add(badCRC)
	zero := fuzzFrame(nil) // zero-length frame is invalid by construction
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded int
		err := DecodeFrames(data, func(r Rec) error {
			switch r.Type {
			case RecInsert, RecEvict, RecTick:
			default:
				t.Fatalf("DecodeFrames produced unknown record type %d", r.Type)
			}
			decoded++
			return nil
		})
		if err == nil && len(data) > 0 && decoded == 0 {
			t.Fatalf("DecodeFrames(%d bytes) = nil with no records", len(data))
		}

		// FrameScan's valid prefix is exactly the frames DecodeFrames
		// can checksum: decoding the prefix visits at most recs records
		// and visits all of them whenever the payloads are well-formed.
		valid, recs := FrameScan(data)
		var prefixDecoded int
		perr := DecodeFrames(data[:valid], func(Rec) error { prefixDecoded++; return nil })
		if prefixDecoded > recs {
			t.Fatalf("prefix decoded %d records, FrameScan counted %d", prefixDecoded, recs)
		}
		if perr == nil && prefixDecoded != recs {
			t.Fatalf("prefix decoded %d records without error, FrameScan counted %d", prefixDecoded, recs)
		}
	})
}
