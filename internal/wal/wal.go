// Package wal provides crash-safe persistence for a relation extent: a
// write-ahead log of insert/evict records plus full-store snapshots.
//
// The paper's decay laws mutate freshness continuously; logging every
// freshness update would write more than the data itself. The WAL
// therefore records only membership changes (inserts and evictions —
// whether from rot or consume-on-query), and checkpoints capture exact
// freshness and infection state. On recovery, tuples inserted after the
// last checkpoint come back with full freshness; at most one checkpoint
// interval of decay is lost, which only delays their rot. DESIGN.md
// lists this bounded-staleness trade-off.
//
// Record framing: [length uint32][crc32c uint32][type byte][payload].
// Replay stops cleanly at the first torn or corrupt record, which is the
// expected state after a crash mid-append; ReplayBounded additionally
// reports where the valid prefix ends so the torn tail can be truncated
// before new appends land behind it.
//
// # Per-shard layout
//
// A sharded table keeps one log per shard (wal.0.log … wal.N-1.log) and
// one snapshot per shard (snapshot.<gen>.<shard>.db), tied together by a
// manifest (wal.manifest.json) recording the shard count, the committed
// snapshot generation and the per-shard next-ID cursors. Shard i's log
// receives only shard i's records, appended under shard i's engine lock,
// so every log is locally ID-ordered and recovery replays the logs in
// parallel with no cross-shard buffering or sorting.
//
// Checkpoint commit protocol: write every shard's generation-g+1
// snapshot, then atomically rename the manifest naming generation g+1
// (the commit point), then truncate the shard logs and delete the
// generation-g files. A crash anywhere in that sequence either leaves
// the old manifest pointing at the complete generation-g files plus
// untruncated logs (stale records are skipped on replay), or the new
// manifest pointing at the complete generation-g+1 files.
//
// Directories written by the old single-log engine (snapshot.db +
// wal.log, no manifest) are detected on open, recovered through the
// order-insensitive merge path, and rewritten in place to the per-shard
// layout; a manifest whose shard count differs from the opening table's
// takes the same merge-and-rewrite path, re-routing every record to its
// new owner by ID residue.
//
// # Durability
//
// Appends are buffered; WHEN they are fsynced is the DurabilityLevel:
// none (checkpoint/Sync/Close only), grouped (a GroupCommitter absorbs
// appends from all shards into a pending window, fsyncs each dirty
// shard log once per window and resolves the window's CommitWait
// futures — the durability acknowledgement), or strict (the owning
// shard's log is fsynced before the append acknowledges). A crash
// under grouped mode loses at most the unacknowledged window; the
// crash-injection tests and the what-you-can-lose table live in
// docs/DURABILITY.md.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"fungusdb/internal/tuple"
)

// RecType tags WAL records.
type RecType uint8

// WAL record types.
const (
	RecInsert RecType = iota + 1
	RecEvict
	// RecTick marks that the table's fungus ran on this shard at a
	// logical instant. Recovery skips tick records (checkpoint snapshots
	// already carry exact freshness), but a replication follower running
	// a replayable decay law re-executes them to reproduce the leader's
	// freshness trajectory bit-for-bit — see fungus.Replayable and
	// docs/REPLICATION.md.
	RecTick
)

// Rec is one decoded WAL record.
type Rec struct {
	Type  RecType
	Tuple tuple.Tuple // valid for RecInsert
	ID    tuple.ID    // valid for RecEvict
	Now   uint64      // valid for RecTick: the clock tick the fungus ran at
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only WAL writer. Appends, syncs and truncation are
// internally serialised so the engine's shards can log concurrently;
// callers that need record ORDER guarantees (per-shard ID monotonicity)
// must provide them externally — the engine appends while holding the
// owning shard's lock.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	buf  []byte
	recs uint64 // records appended since the last truncation
}

// Open opens (creating if needed) the log at path for appending. The
// record count of the existing content is rebuilt by a frame scan so
// replication lag (measured in records, not bytes) stays correct across
// a leader restart mid-generation.
func Open(path string) (*Log, error) {
	_, recs, err := scanFrameFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriter(f), recs: recs}, nil
}

// AppendInsert logs the insertion of tp. The record is buffered, not
// durable: it reaches the disk at the next Sync/Truncate/Close — or,
// through a ShardedLog, when the group-commit daemon or a strict-mode
// append syncs the shard (see DurabilityLevel).
func (l *Log) AppendInsert(tp tuple.Tuple) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, byte(RecInsert))
	l.buf = tuple.AppendEncode(l.buf, tp)
	return l.appendFramed(l.buf)
}

// AppendEvict logs the eviction of id (rot or consume). Buffered like
// AppendInsert; the same durability contract applies.
func (l *Log) AppendEvict(id tuple.ID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, byte(RecEvict))
	l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(id))
	return l.appendFramed(l.buf)
}

// AppendTick logs a fungus run at logical time now. Tick records are
// what let a follower with a replayable decay law regenerate freshness
// locally instead of trusting approximations; on recovery they are
// skipped.
func (l *Log) AppendTick(now uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, byte(RecTick))
	l.buf = binary.LittleEndian.AppendUint64(l.buf, now)
	return l.appendFramed(l.buf)
}

func (l *Log) appendFramed(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.recs++
	return nil
}

// Flush pushes buffered records to the OS without fsyncing. The
// replication shipper flushes before reading the log file so every
// acknowledged append is visible to the stream; durability still comes
// only from Sync.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Records returns the number of records appended since the log was last
// truncated (including records still in the write buffer).
func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Sync flushes buffered records and fsyncs the file. Safe to call
// concurrently with appends (the log serialises internally): records
// appended before Sync is entered are covered, later ones may be.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: flush on close: %w", err)
	}
	return l.f.Close()
}

// Replay reads records from path in order, invoking fn for each. A
// missing file replays zero records. Replay stops without error at the
// first torn or corrupt record (the crash tail); fn errors abort.
func Replay(path string, fn func(Rec) error) error {
	_, err := ReplayBounded(path, fn)
	return err
}

// ReplayBounded is Replay returning the byte offset one past the last
// fully valid record — the truncation point for a torn tail. A shard
// log reopened for appending MUST be truncated there first, or records
// appended after the tear would hide behind it and be lost on the next
// recovery. Sharded recovery uses the per-shard offsets to truncate
// each log independently, so one shard's torn tail never aborts (or
// shortens) the recovery of the others.
func ReplayBounded(path string, fn func(Rec) error) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > 1<<28 {
			return off, nil // implausible length: corrupt tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return off, nil // corrupt record
		}
		rec, err := decodeRec(payload)
		if err != nil {
			return off, fmt.Errorf("wal: replay: %w", err)
		}
		if err := fn(rec); err != nil {
			return off, err
		}
		off += int64(len(hdr)) + int64(length)
	}
}

func decodeRec(payload []byte) (Rec, error) {
	switch RecType(payload[0]) {
	case RecInsert:
		tp, _, err := tuple.Decode(payload[1:], nil)
		if err != nil {
			return Rec{}, fmt.Errorf("bad insert record: %w", err)
		}
		return Rec{Type: RecInsert, Tuple: tp}, nil
	case RecEvict:
		if len(payload) != 9 {
			return Rec{}, fmt.Errorf("bad evict record length %d", len(payload))
		}
		return Rec{Type: RecEvict, ID: tuple.ID(binary.LittleEndian.Uint64(payload[1:]))}, nil
	case RecTick:
		if len(payload) != 9 {
			return Rec{}, fmt.Errorf("bad tick record length %d", len(payload))
		}
		return Rec{Type: RecTick, Now: binary.LittleEndian.Uint64(payload[1:])}, nil
	default:
		return Rec{}, fmt.Errorf("unknown record type %d", payload[0])
	}
}
