// Package wal provides crash-safe persistence for a relation extent: a
// write-ahead log of insert/evict records plus full-store snapshots.
//
// The paper's decay laws mutate freshness continuously; logging every
// freshness update would write more than the data itself. The WAL
// therefore records only membership changes (inserts and evictions —
// whether from rot or consume-on-query), and checkpoints capture exact
// freshness and infection state. On recovery, tuples inserted after the
// last checkpoint come back with full freshness; at most one checkpoint
// interval of decay is lost, which only delays their rot. DESIGN.md
// lists this bounded-staleness trade-off.
//
// Record framing: [length uint32][crc32c uint32][type byte][payload].
// Replay stops cleanly at the first torn or corrupt record, which is the
// expected state after a crash mid-append.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"fungusdb/internal/tuple"
)

// RecType tags WAL records.
type RecType uint8

// WAL record types.
const (
	RecInsert RecType = iota + 1
	RecEvict
)

// Rec is one decoded WAL record.
type Rec struct {
	Type  RecType
	Tuple tuple.Tuple // valid for RecInsert
	ID    tuple.ID    // valid for RecEvict
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an append-only WAL writer. Appends, syncs and truncation are
// internally serialised so the engine's shards can log concurrently;
// callers that need record ORDER guarantees (per-shard ID monotonicity)
// must provide them externally — the engine appends while holding the
// owning shard's lock.
type Log struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	buf []byte
}

// Open opens (creating if needed) the log at path for appending.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	return &Log{f: f, w: bufio.NewWriter(f)}, nil
}

// AppendInsert logs the insertion of tp.
func (l *Log) AppendInsert(tp tuple.Tuple) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, byte(RecInsert))
	l.buf = tuple.AppendEncode(l.buf, tp)
	return l.appendFramed(l.buf)
}

// AppendEvict logs the eviction of id (rot or consume).
func (l *Log) AppendEvict(id tuple.ID) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = l.buf[:0]
	l.buf = append(l.buf, byte(RecEvict))
	l.buf = binary.LittleEndian.AppendUint64(l.buf, uint64(id))
	return l.appendFramed(l.buf)
}

func (l *Log) appendFramed(payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: flush on close: %w", err)
	}
	return l.f.Close()
}

// Replay reads records from path in order, invoking fn for each. A
// missing file replays zero records. Replay stops without error at the
// first torn or corrupt record (the crash tail); fn errors abort.
func Replay(path string, fn func(Rec) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn header: stop
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > 1<<28 {
			return nil // implausible length: corrupt tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return nil // corrupt record
		}
		rec, err := decodeRec(payload)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

func decodeRec(payload []byte) (Rec, error) {
	switch RecType(payload[0]) {
	case RecInsert:
		tp, _, err := tuple.Decode(payload[1:], nil)
		if err != nil {
			return Rec{}, fmt.Errorf("bad insert record: %w", err)
		}
		return Rec{Type: RecInsert, Tuple: tp}, nil
	case RecEvict:
		if len(payload) != 9 {
			return Rec{}, fmt.Errorf("bad evict record length %d", len(payload))
		}
		return Rec{Type: RecEvict, ID: tuple.ID(binary.LittleEndian.Uint64(payload[1:]))}, nil
	default:
		return Rec{}, fmt.Errorf("unknown record type %d", payload[0])
	}
}
