package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// Crash-injection tests for the per-shard WAL layout: torn tails must
// stay local to their shard, a checkpoint is committed only by the
// manifest rename, and old single-log directories migrate in place.

// buildSharded inserts n round-robin rows into a fresh store+log pair
// in dir, logging every insert to its shard's log.
func buildSharded(t testing.TB, dir string, shards, n int) (*storage.ShardedStore, *ShardedLog) {
	t.Helper()
	ss := storage.NewSharded(walSchema, shards)
	sl, err := OpenSharded(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, ss, sl, n)
	return ss, sl
}

func appendRows(t testing.TB, ss *storage.ShardedStore, sl *ShardedLog, n int) {
	t.Helper()
	for k := 0; k < n; k++ {
		i := ss.NextShard()
		tp, err := ss.InsertShard(i, 1, row("dev", int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sl.AppendInsert(i, tp); err != nil {
			t.Fatal(err)
		}
	}
}

// signature captures the full recovered state: IDs, insertion ticks,
// freshness, infection and attributes in global scan order.
func signature(ss *storage.ShardedStore) string {
	var b strings.Builder
	ss.Scan(func(tp *tuple.Tuple) bool {
		fmt.Fprintf(&b, "%d|%d|%g|%v|%v\n", tp.ID, tp.T, tp.F, tp.Infected, tp.Attrs)
		return true
	})
	return b.String()
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// A torn tail in ONE shard's log loses only that shard's trailing
// records: every other shard replays in full, and the torn log is
// truncated at the tear so post-recovery appends are never hidden
// behind garbage.
func TestShardedTornTailIsolatedPerShard(t *testing.T) {
	const shards, n = 4, 40
	dir := t.TempDir()
	_, sl := buildSharded(t, dir, shards, n)
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear shard 2's log: chop a few trailing bytes mid-record.
	tornPath := filepath.Join(dir, ShardLogFile(2))
	data, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	got := storage.NewSharded(walSchema, shards)
	if err := RecoverSharded(dir, got, shards); err != nil {
		t.Fatal(err)
	}
	// Shard 2 owned IDs 2, 6, ..., 38 (10 tuples); the tear loses
	// exactly its last record. Everything else must be complete.
	if got.Len() != n-1 {
		t.Fatalf("recovered %d tuples, want %d (one torn record)", got.Len(), n-1)
	}
	if got.Contains(38) {
		t.Error("torn final record of shard 2 came back")
	}
	for id := 0; id < n; id++ {
		if id == 38 {
			continue
		}
		if !got.Contains(tuple.ID(id)) {
			t.Errorf("tuple %d lost to another shard's torn tail", id)
		}
	}
	// The torn log was truncated at the tear, independently of the
	// healthy shards.
	fi, err := os.Stat(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(data)-3) {
		t.Errorf("torn log not truncated: %d bytes (tear was at <%d)", fi.Size(), len(data)-3)
	}
	healthy, err := os.Stat(filepath.Join(dir, ShardLogFile(1)))
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Size() == 0 {
		t.Error("healthy shard log truncated to zero")
	}

	// Appends after the truncation land on a clean tail and survive the
	// next recovery.
	sl2, err := OpenSharded(dir, shards)
	if err != nil {
		t.Fatal(err)
	}
	tp := tuple.New(42, 2, row("post", 42))
	if err := sl2.AppendInsert(2, tp); err != nil {
		t.Fatal(err)
	}
	if err := sl2.Close(); err != nil {
		t.Fatal(err)
	}
	again := storage.NewSharded(walSchema, shards)
	if err := RecoverSharded(dir, again, shards); err != nil {
		t.Fatal(err)
	}
	if !again.Contains(42) {
		t.Error("append after torn-tail truncation lost")
	}
}

// A crash BETWEEN the per-shard snapshot writes and the manifest commit
// must fall back to the previous generation plus the untruncated logs —
// the half-written next generation is invisible and gets cleaned up.
func TestCrashBetweenSnapshotWriteAndManifestCommit(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, shards, 30)
	if err := sl.Checkpoint(ss, shards); err != nil { // generation 1
		t.Fatal(err)
	}
	appendRows(t, ss, sl, 15) // post-checkpoint, logged only
	if err := ss.Evict(4); err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendEvict(ss.ShardOf(4), 4); err != nil {
		t.Fatal(err)
	}
	want := signature(ss)

	// Simulate the next checkpoint crashing after its snapshots but
	// before the manifest rename: generation-2 files appear, manifest
	// still names generation 1, logs untouched.
	for i := 0; i < shards; i++ {
		if err := WriteSnapshot(filepath.Join(dir, shardSnapshotFile(2, i)), ss.Shard(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	got := storage.NewSharded(walSchema, shards)
	if err := RecoverSharded(dir, got, shards); err != nil {
		t.Fatal(err)
	}
	if s := signature(got); s != want {
		t.Errorf("fallback to previous generation diverged:\ngot:\n%s\nwant:\n%s", s, want)
	}
	// The uncommitted generation was swept.
	for i := 0; i < shards; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardSnapshotFile(2, i))); err == nil {
			t.Errorf("uncommitted generation-2 snapshot %d survived recovery", i)
		}
	}
}

// A directory written by the old single-log engine must reopen through
// in-place migration at any shard count, reproducing the pre-migration
// extent exactly — and reopen identically again from the migrated
// layout.
func TestMigrateLegacySingleLogLayout(t *testing.T) {
	legacy := t.TempDir()
	// Old engine: 2-writer-shard store appending to ONE log, with a
	// checkpoint mid-stream and post-checkpoint activity (including a
	// consume) left in the log.
	ss := storage.NewSharded(walSchema, 2)
	log, err := Open(filepath.Join(legacy, LogFile))
	if err != nil {
		t.Fatal(err)
	}
	insert := func(k int) {
		i := ss.NextShard()
		tp, err := ss.InsertShard(i, 1, row("dev", int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.AppendInsert(tp); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 20; k++ {
		insert(k)
	}
	if err := Checkpoint(legacy, ss, log); err != nil {
		t.Fatal(err)
	}
	for k := 20; k < 33; k++ {
		insert(k)
	}
	for _, id := range []tuple.ID{3, 8, 25} {
		if err := ss.Evict(id); err != nil {
			t.Fatal(err)
		}
		if err := log.AppendEvict(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	want := signature(ss)

	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := copyDir(t, legacy)
			got := storage.NewSharded(walSchema, shards)
			if err := RecoverSharded(dir, got, shards); err != nil {
				t.Fatal(err)
			}
			if s := signature(got); s != want {
				t.Fatalf("migrated extent diverged from pre-migration contents:\ngot:\n%s\nwant:\n%s", s, want)
			}
			// Migration rewrote the directory: legacy files gone,
			// manifest + per-shard snapshots committed.
			for _, name := range []string{SnapshotFile, LogFile} {
				if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
					t.Errorf("legacy file %s survived migration", name)
				}
			}
			man, ok, err := loadManifest(dir)
			if err != nil || !ok {
				t.Fatalf("no manifest after migration: %v", err)
			}
			if man.Shards != shards {
				t.Fatalf("manifest shards = %d, want %d", man.Shards, shards)
			}

			// Reopening the MIGRATED directory reproduces the same bytes.
			again := storage.NewSharded(walSchema, shards)
			if err := RecoverSharded(dir, again, shards); err != nil {
				t.Fatal(err)
			}
			if s := signature(again); s != want {
				t.Fatalf("migrated directory did not reopen identically:\ngot:\n%s\nwant:\n%s", s, want)
			}
			// IDs are never reused after migration.
			tp, err := again.Insert(2, row("fresh", 99))
			if err != nil {
				t.Fatal(err)
			}
			if tp.ID < 33 {
				t.Errorf("post-migration insert reused ID %d", tp.ID)
			}
		})
	}
}

// Reopening a per-shard directory at a DIFFERENT shard count re-routes
// every record to its new owner by ID residue and rewrites the layout.
func TestRecoverShardedAcrossShardCounts(t *testing.T) {
	src := t.TempDir()
	ss, sl := buildSharded(t, src, 4, 40)
	if err := sl.Checkpoint(ss, 4); err != nil {
		t.Fatal(err)
	}
	appendRows(t, ss, sl, 13)
	if err := ss.Evict(10); err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendEvict(ss.ShardOf(10), 10); err != nil {
		t.Fatal(err)
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	want := signature(ss)

	for _, shards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := copyDir(t, src)
			got := storage.NewSharded(walSchema, shards)
			if err := RecoverSharded(dir, got, shards); err != nil {
				t.Fatal(err)
			}
			if s := signature(got); s != want {
				t.Fatalf("resharded extent diverged:\ngot:\n%s\nwant:\n%s", s, want)
			}
			man, ok, err := loadManifest(dir)
			if err != nil || !ok {
				t.Fatalf("no manifest after reshard: %v", err)
			}
			if man.Shards != shards {
				t.Fatalf("manifest shards = %d, want %d", man.Shards, shards)
			}
			// Old-count logs were removed — their residue classes no
			// longer match, so replaying them would misroute.
			for i := 0; i < 8; i++ {
				if fi, err := os.Stat(filepath.Join(dir, ShardLogFile(i))); err == nil && fi.Size() > 0 {
					t.Errorf("old shard log %d survived reshard with %d bytes", i, fi.Size())
				}
			}
			tp, err := got.Insert(2, row("fresh", 1))
			if err != nil {
				t.Fatal(err)
			}
			if tp.ID < 53 {
				t.Errorf("post-reshard insert reused ID %d", tp.ID)
			}
		})
	}
}

// Matched-count recovery restores every shard's allocation cursor
// EXACTLY (from its own snapshot header), so the post-recovery insert
// rotation continues where the pre-crash one left off — no rounding up
// to the global high-water mark.
func TestRecoverShardedPreservesPerShardCursors(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, shards, 10) // IDs 0..9: cursors 12,13,10,11
	if err := sl.Checkpoint(ss, shards); err != nil {
		t.Fatal(err)
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}

	got := storage.NewSharded(walSchema, shards)
	if err := RecoverSharded(dir, got, shards); err != nil {
		t.Fatal(err)
	}
	wantCursors := ss.ShardNextIDs()
	for i, next := range got.ShardNextIDs() {
		if next != wantCursors[i] {
			t.Errorf("shard %d cursor = %d, want %d", i, next, wantCursors[i])
		}
	}
	// The next inserts continue the exact pre-crash ID sequence.
	for want := tuple.ID(10); want < 14; want++ {
		tp, err := got.Insert(2, row("cont", int64(want)))
		if err != nil {
			t.Fatal(err)
		}
		if tp.ID != want {
			t.Fatalf("post-recovery rotation broke: got ID %d, want %d", tp.ID, want)
		}
	}
}

// Checkpoint generations advance and supersede each other: the previous
// generation's files are removed once the new manifest commits.
func TestShardedCheckpointGenerations(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	ss, sl := buildSharded(t, dir, shards, 8)
	if err := sl.Checkpoint(ss, shards); err != nil {
		t.Fatal(err)
	}
	appendRows(t, ss, sl, 4)
	if err := sl.Checkpoint(ss, shards); err != nil {
		t.Fatal(err)
	}
	if g := sl.Manifest().Generation; g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
	for i := 0; i < shards; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardSnapshotFile(1, i))); err == nil {
			t.Errorf("generation-1 snapshot %d not removed", i)
		}
		if _, err := os.Stat(filepath.Join(dir, shardSnapshotFile(2, i))); err != nil {
			t.Errorf("generation-2 snapshot %d missing: %v", i, err)
		}
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	got := storage.NewSharded(walSchema, shards)
	if err := RecoverSharded(dir, got, shards); err != nil {
		t.Fatal(err)
	}
	if s, want := signature(got), signature(ss); s != want {
		t.Errorf("post-generation-2 recovery diverged:\ngot:\n%s\nwant:\n%s", s, want)
	}
}
