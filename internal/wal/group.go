package wal

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// DurabilityLevel selects when WAL appends are fsynced, trading
// ingestion throughput against the window of acknowledged-but-lost
// records after a crash. docs/DURABILITY.md tabulates the guarantees.
type DurabilityLevel uint8

// The durability levels, weakest to strongest.
const (
	// DurabilityDefault inherits the enclosing configuration's default
	// (core.DBConfig.Durability for tables); the DB-level default of
	// DurabilityDefault resolves to DurabilityNone.
	DurabilityDefault DurabilityLevel = iota
	// DurabilityNone buffers appends and fsyncs only at checkpoint,
	// Sync and Close — the pre-group-commit behaviour. A crash can lose
	// every record since the last checkpoint.
	DurabilityNone
	// DurabilityGrouped batches appends into a pending window that a
	// background GroupCommitter fsyncs once per window (size threshold
	// or tick). Appends return a CommitWait that resolves after the
	// batched fsync; a crash loses only appends whose wait had not
	// resolved.
	DurabilityGrouped
	// DurabilityStrict fsyncs the owning shard's log before every
	// append acknowledges. Nothing acknowledged is ever lost, at the
	// cost of one fsync per append.
	DurabilityStrict
)

// String returns the spec/flag spelling of the level.
func (l DurabilityLevel) String() string {
	switch l {
	case DurabilityDefault:
		return "default"
	case DurabilityNone:
		return "none"
	case DurabilityGrouped:
		return "grouped"
	case DurabilityStrict:
		return "strict"
	}
	return fmt.Sprintf("DurabilityLevel(%d)", uint8(l))
}

// ParseDurability parses a spec/flag spelling ("", "default", "none",
// "grouped", "strict") into a DurabilityLevel.
func ParseDurability(s string) (DurabilityLevel, error) {
	switch s {
	case "", "default":
		return DurabilityDefault, nil
	case "none":
		return DurabilityNone, nil
	case "grouped":
		return DurabilityGrouped, nil
	case "strict":
		return DurabilityStrict, nil
	}
	return DurabilityDefault, fmt.Errorf("wal: unknown durability level %q (want none, grouped or strict)", s)
}

// GroupCommitConfig tunes a GroupCommitter's flush window.
type GroupCommitConfig struct {
	// Interval is the flush tick: the daemon fsyncs the pending window
	// at least this often while records are pending. 0 means the
	// 2ms default; negative disables the ticker entirely (flushes
	// happen only on the size threshold, Flush, or Close — tests use
	// this for deterministic windows).
	Interval time.Duration
	// SizeThreshold flushes the window early once this many records are
	// pending, bounding the unacknowledged window under burst load.
	// 0 means the 512-record default.
	SizeThreshold int
}

// Group-commit window defaults.
const (
	DefaultGroupInterval = 2 * time.Millisecond
	DefaultGroupSize     = 512
)

func (c GroupCommitConfig) withDefaults() GroupCommitConfig {
	if c.Interval == 0 {
		c.Interval = DefaultGroupInterval
	}
	if c.SizeThreshold <= 0 {
		c.SizeThreshold = DefaultGroupSize
	}
	return c
}

// commitBatch is one pending window: the records noted since the last
// flush and the channel their CommitWaits block on.
type commitBatch struct {
	done    chan struct{}
	err     error // valid after done closes
	records int
	dirty   []bool // shards with pending records
}

func newBatch(shards int) *commitBatch {
	return &commitBatch{done: make(chan struct{}), dirty: make([]bool, shards)}
}

// CommitWait is the commit future returned by group-commit appends: it
// resolves once every record it covers is durable (fsynced, or captured
// by a checkpoint's committed snapshot). The zero value is already
// resolved — strict appends (durable before return) and non-persistent
// tables hand it out.
type CommitWait struct {
	batches []*commitBatch
}

// Wait blocks until the commit covering this append completes,
// returning the fsync error (nil on success). Waiting on the zero
// value returns nil immediately.
func (w CommitWait) Wait() error {
	var errs []error
	for _, b := range w.batches {
		<-b.done
		if b.err != nil {
			errs = append(errs, b.err)
		}
	}
	return errors.Join(errs...)
}

// Resolved reports, without blocking, whether the commit has completed.
func (w CommitWait) Resolved() bool {
	for _, b := range w.batches {
		select {
		case <-b.done:
		default:
			return false
		}
	}
	return true
}

// JoinWaits merges commit futures (a batch insert's shard groups may
// straddle a window swap) into one wait over the union of their
// batches: it resolves when every input has resolved, joining errors.
func JoinWaits(ws []CommitWait) CommitWait {
	var out CommitWait
	for _, w := range ws {
		out.batches = append(out.batches, w.batches...)
	}
	return out
}

// GroupCommitStats snapshots a GroupCommitter's lifetime counters.
type GroupCommitStats struct {
	// Commits is the number of fsync-backed group flushes performed.
	Commits uint64
	// Records is the total records those flushes made durable; Records
	// / Commits is the average group size (the amortisation factor over
	// per-append fsyncs).
	Records uint64
}

// AvgGroupSize returns Records/Commits (0 before the first commit).
func (s GroupCommitStats) AvgGroupSize() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Records) / float64(s.Commits)
}

// GroupCommitter is the per-ShardedLog group-commit daemon: appenders
// Note their records into the pending window and the daemon fsyncs
// every dirty shard log once per window — flushing when the window
// reaches GroupCommitConfig.SizeThreshold or on the Interval tick —
// then resolves the window's CommitWaits.
//
// Locking/durability contract: Note is safe from any goroutine and
// never blocks on I/O (appenders call it under their shard lock; the
// committer itself takes no shard locks, so flushes can never deadlock
// with the engine). A record must be appended to its shard log BEFORE
// it is noted: the flush that covers a note flushes and fsyncs
// everything appended before it, so the wait resolving implies the
// record is on disk.
type GroupCommitter struct {
	sl  *ShardedLog
	cfg GroupCommitConfig

	mu    sync.Mutex
	cur   *commitBatch
	stats GroupCommitStats

	flushMu sync.Mutex // serialises flushes so commits resolve in window order
	kick    chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

// NewGroupCommitter starts a group-commit daemon over sl. Callers must
// Close it (which performs a final flush) before closing sl.
func NewGroupCommitter(sl *ShardedLog, cfg GroupCommitConfig) *GroupCommitter {
	g := &GroupCommitter{
		sl:   sl,
		cfg:  cfg.withDefaults(),
		cur:  newBatch(sl.NumShards()),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go g.run()
	return g
}

// Note registers n records just appended to shard i's log with the
// pending window and returns the commit future resolved by the window's
// flush. The records must already be appended (see the type contract).
func (g *GroupCommitter) Note(i, n int) CommitWait {
	g.mu.Lock()
	b := g.cur
	b.dirty[i] = true
	b.records += n
	full := b.records >= g.cfg.SizeThreshold
	g.mu.Unlock()
	if full {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
	return CommitWait{batches: []*commitBatch{b}}
}

// run is the daemon loop: flush on tick, on a size-threshold kick, and
// once more on stop.
func (g *GroupCommitter) run() {
	defer close(g.done)
	var tickC <-chan time.Time
	if g.cfg.Interval > 0 {
		tick := time.NewTicker(g.cfg.Interval)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-g.stop:
			g.Flush()
			return
		case <-g.kick:
			g.Flush()
		case <-tickC:
			g.Flush()
		}
	}
}

// Flush synchronously commits the pending window: swap in a fresh
// window, fsync every dirty shard log, then resolve the old window's
// waits with the joined per-shard error. An empty window is a no-op.
func (g *GroupCommitter) Flush() error {
	g.flushMu.Lock()
	defer g.flushMu.Unlock()
	g.mu.Lock()
	b := g.cur
	if b.records == 0 {
		g.mu.Unlock()
		return nil
	}
	g.cur = newBatch(g.sl.NumShards())
	g.mu.Unlock()

	var errs []error
	for i, dirty := range b.dirty {
		if !dirty {
			continue
		}
		if err := g.sl.SyncShard(i); err != nil {
			errs = append(errs, err)
		}
	}
	b.err = errors.Join(errs...)

	g.mu.Lock()
	g.stats.Commits++
	g.stats.Records += uint64(b.records)
	g.mu.Unlock()
	close(b.done)
	return b.err
}

// ResolveCheckpointed resolves the pending window WITHOUT fsyncing:
// the caller just committed a checkpoint whose snapshots captured every
// appended record (it holds all shard locks, so no new note can race
// in), which makes the window durable through the manifest instead of
// the logs. Not counted as a group commit in the stats.
func (g *GroupCommitter) ResolveCheckpointed() {
	g.mu.Lock()
	b := g.cur
	if b.records == 0 {
		g.mu.Unlock()
		return
	}
	g.cur = newBatch(g.sl.NumShards())
	g.mu.Unlock()
	close(b.done)
}

// Stats snapshots the lifetime group-commit counters.
func (g *GroupCommitter) Stats() GroupCommitStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Close stops the daemon and performs a final flush, resolving every
// outstanding wait. It must be called before the underlying ShardedLog
// closes; it is idempotent only in the sense that the caller must not
// Note after it returns.
func (g *GroupCommitter) Close() error {
	close(g.stop)
	<-g.done
	// The daemon's own shutdown flush already drained the window; a
	// direct Flush picks up anything noted between that flush and the
	// daemon exit (not possible under the engine's locking, but cheap).
	return g.Flush()
}
