package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fungusdb/internal/fanout"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// ManifestFile names the per-shard layout manifest within a table
// directory. Its atomic rename is the checkpoint commit point.
const ManifestFile = "wal.manifest.json"

const manifestVersion = 1

// Manifest describes a table directory in the per-shard layout: which
// shard count the files were written at, which snapshot generation is
// committed, and each shard's next-ID allocation cursor at that commit.
type Manifest struct {
	Version    int      `json:"version"`
	Shards     int      `json:"shards"`
	Generation uint64   `json:"generation"`
	NextIDs    []uint64 `json:"next_ids,omitempty"`
}

// ShardLogFile returns the log file name of shard i.
func ShardLogFile(i int) string { return fmt.Sprintf("wal.%d.log", i) }

// shardSnapshotFile returns the snapshot file name of shard i at
// generation gen. The generation is part of the name so a crashed
// checkpoint's half-written next generation can never be confused with
// the committed one.
func shardSnapshotFile(gen uint64, i int) string {
	return fmt.Sprintf("snapshot.%d.%d.db", gen, i)
}

func loadManifest(dir string) (Manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("wal: manifest read: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("wal: manifest decode: %w", err)
	}
	if m.Version != manifestVersion || m.Shards < 1 {
		return Manifest{}, false, fmt.Errorf("wal: manifest version %d / shards %d unsupported", m.Version, m.Shards)
	}
	return m, true, nil
}

// writeManifest commits m atomically: temp file, fsync, rename, then
// directory fsync so the rename itself is durable.
func writeManifest(dir string, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("wal: manifest encode: %w", err)
	}
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: manifest create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: manifest write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: manifest close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: manifest rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// cursorsOf snapshots every shard's allocation cursor for the manifest.
func cursorsOf(ss *storage.ShardedStore) []uint64 {
	out := make([]uint64, ss.NumShards())
	for i, id := range ss.ShardNextIDs() {
		out[i] = uint64(id)
	}
	return out
}

// ShardedLog owns one append-only Log per shard plus the layout
// manifest. Appends to different shards share no lock or file — the
// engine appends shard i's records while holding shard i's lock, which
// keeps each log locally ID-ordered with no cross-shard serialisation.
type ShardedLog struct {
	dir  string
	logs []*Log

	mu    sync.Mutex // guards man and trunc (checkpoint vs. stats/ship readers)
	man   Manifest
	trunc *Truncation
}

// Truncation records the flushed byte size of every shard log at the
// moment the last checkpoint truncated them. The replication shipper
// compares a follower's cursors against it when the generation advances
// under a live stream: cursors that had reached the truncation sizes
// roll over to the new generation seamlessly; cursors behind them point
// at records that now exist only inside the snapshot, so the stream
// must re-base.
type Truncation struct {
	FromGen uint64  // the generation whose logs were truncated
	Sizes   []int64 // per-shard flushed size immediately before truncation
}

// OpenSharded opens the per-shard logs of dir for appending, creating
// the manifest (and empty logs) on first open. The directory must
// already be in the per-shard layout at this shard count — callers
// recover (and thereby migrate or reshard) via RecoverSharded first.
func OpenSharded(dir string, shards int) (*ShardedLog, error) {
	if shards < 1 {
		shards = 1
	}
	man, ok, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		// First open: commit the manifest before any append so a crash
		// later cannot leave shard logs no recovery would look at.
		man = Manifest{Version: manifestVersion, Shards: shards, Generation: 0}
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
	} else if man.Shards != shards {
		return nil, fmt.Errorf("wal: open at %d shards but manifest has %d (recover first)", shards, man.Shards)
	}
	sl := &ShardedLog{dir: dir, logs: make([]*Log, shards), man: man}
	for i := range sl.logs {
		log, err := Open(filepath.Join(dir, ShardLogFile(i)))
		if err != nil {
			sl.Close()
			return nil, err
		}
		sl.logs[i] = log
	}
	return sl, nil
}

// NumShards returns the number of shard logs.
func (sl *ShardedLog) NumShards() int { return len(sl.logs) }

// Manifest returns a copy of the committed manifest.
func (sl *ShardedLog) Manifest() Manifest {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	m := sl.man
	m.NextIDs = append([]uint64(nil), sl.man.NextIDs...)
	return m
}

// AppendInsert logs the insertion of tp to shard i's log. The caller
// holds shard i's lock, which is what keeps the log ID-ordered.
func (sl *ShardedLog) AppendInsert(i int, tp tuple.Tuple) error {
	return sl.logs[i].AppendInsert(tp)
}

// AppendEvict logs the eviction of id to its owning shard i's log.
func (sl *ShardedLog) AppendEvict(i int, id tuple.ID) error {
	return sl.logs[i].AppendEvict(id)
}

// AppendTick logs a fungus run on shard i at logical time now. The
// engine appends it BEFORE the run's eviction records, so a follower
// replaying the tick derives the same rot set itself and the leader's
// trailing evict records degrade into idempotent no-ops.
func (sl *ShardedLog) AppendTick(i int, now uint64) error {
	return sl.logs[i].AppendTick(now)
}

// SyncShard flushes and fsyncs shard i's log alone. The group-commit
// daemon uses it to fsync only the shards dirtied by the pending
// window; it takes no shard lock (Log serialises internally), so it is
// safe to call concurrently with appends to any shard.
func (sl *ShardedLog) SyncShard(i int) error {
	return sl.logs[i].Sync()
}

// Sync flushes and fsyncs every shard log. Every shard is attempted
// even when an earlier one fails; the joined error names each failing
// shard, so no shard failure is silently dropped.
func (sl *ShardedLog) Sync() error {
	errs := make([]error, 0, len(sl.logs))
	for i, l := range sl.logs {
		if l == nil {
			continue
		}
		if err := l.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close flushes and closes every shard log, joining per-shard errors
// like Sync.
func (sl *ShardedLog) Close() error {
	errs := make([]error, 0, len(sl.logs))
	for i, l := range sl.logs {
		if l == nil {
			continue
		}
		if err := l.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Checkpoint snapshots every shard of ss concurrently (over at most
// parallelism goroutines) into the next generation, commits it by
// atomically renaming the manifest, then truncates the shard logs and
// removes the previous generation's files. The caller holds every shard
// lock, so the snapshot set is one consistent cut. A crash before the
// manifest rename falls back cleanly to the previous generation (the
// logs are still intact); a crash after it merely leaves stale log
// records, which replay skips.
func (sl *ShardedLog) Checkpoint(ss *storage.ShardedStore, parallelism int) error {
	if ss.NumShards() != len(sl.logs) {
		return fmt.Errorf("wal: checkpoint %d-shard store against %d-shard log", ss.NumShards(), len(sl.logs))
	}
	gen := sl.man.Generation + 1
	if err := fanout.Run(len(sl.logs), parallelism, func(i int) error {
		return WriteSnapshot(filepath.Join(sl.dir, shardSnapshotFile(gen, i)), ss.Shard(i))
	}); err != nil {
		// Uncommitted generation: remove the half-written files.
		for i := range sl.logs {
			os.Remove(filepath.Join(sl.dir, shardSnapshotFile(gen, i)))
		}
		return err
	}
	man := Manifest{Version: manifestVersion, Shards: len(sl.logs), Generation: gen, NextIDs: cursorsOf(ss)}
	if err := writeManifest(sl.dir, man); err != nil {
		return err
	}
	// Capture the flushed log sizes before truncating, then publish the
	// new generation only AFTER the logs are empty. The replication
	// shipper reads Manifest() around every log read: publishing last
	// means a stable generation implies the bytes it read belong to that
	// generation (the caller holds every shard lock, so no append can
	// land between truncation and publication).
	trunc := &Truncation{FromGen: sl.man.Generation, Sizes: make([]int64, len(sl.logs))}
	for i, l := range sl.logs {
		if err := l.Flush(); err != nil {
			return err
		}
		fi, err := os.Stat(filepath.Join(sl.dir, ShardLogFile(i)))
		if err != nil {
			return fmt.Errorf("wal: checkpoint stat shard %d: %w", i, err)
		}
		trunc.Sizes[i] = fi.Size()
	}
	for _, l := range sl.logs {
		if err := l.Truncate(); err != nil {
			return err
		}
	}
	sl.mu.Lock()
	sl.man = man
	sl.trunc = trunc
	sl.mu.Unlock()
	cleanupStale(sl.dir, man)
	return nil
}

// LastTruncation returns a copy of the most recent checkpoint's
// truncation record, or ok=false if no checkpoint has run since open.
func (sl *ShardedLog) LastTruncation() (Truncation, bool) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.trunc == nil {
		return Truncation{}, false
	}
	t := Truncation{FromGen: sl.trunc.FromGen, Sizes: append([]int64(nil), sl.trunc.Sizes...)}
	return t, true
}

// cleanupStale removes files the committed manifest does not own:
// legacy single-log files, snapshots of other generations, and shard
// files at other shard counts. Best effort — leftovers are skipped (and
// re-deleted) by the next recovery or checkpoint.
func cleanupStale(dir string, man Manifest) {
	os.Remove(filepath.Join(dir, SnapshotFile))
	os.Remove(filepath.Join(dir, LogFile))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if gen, shard, ok := parseShardSnapshotName(name); ok {
			if gen != man.Generation || shard >= man.Shards {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if shard, ok := parseShardLogName(name); ok && shard >= man.Shards {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

func parseShardSnapshotName(name string) (gen uint64, shard int, ok bool) {
	rest, found := strings.CutPrefix(name, "snapshot.")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, ".db")
	if !found {
		return 0, 0, false
	}
	genStr, shardStr, found := strings.Cut(rest, ".")
	if !found {
		return 0, 0, false
	}
	gen, err := strconv.ParseUint(genStr, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	shard, err = strconv.Atoi(shardStr)
	if err != nil || shard < 0 {
		return 0, 0, false
	}
	return gen, shard, true
}

func parseShardLogName(name string) (shard int, ok bool) {
	rest, found := strings.CutPrefix(name, "wal.")
	if !found {
		return 0, false
	}
	rest, found = strings.CutSuffix(rest, ".log")
	if !found {
		return 0, false
	}
	shard, err := strconv.Atoi(rest)
	if err != nil || shard < 0 {
		return 0, false
	}
	return shard, true
}

// RecoverSharded rebuilds ss (which must be empty) from dir and leaves
// dir in the canonical per-shard layout at ss's shard count:
//
//   - Per-shard layout at a matching shard count: every shard loads its
//     own snapshot and replays its own log, all shards in parallel over
//     at most parallelism goroutines. Each log is locally ID-ordered, so
//     records apply directly — no buffering, no sorting. A torn tail in
//     one shard's log truncates that log at the tear and never aborts
//     (or shortens) the recovery of the others.
//   - Per-shard layout at a different shard count: the merge path loads
//     every old shard file, sorts by ID (IDs decide ownership, not file
//     layout) and re-routes each record to its new owner, then rewrites
//     the directory at the new shard count.
//   - Legacy single-log layout (snapshot.db + wal.log, no manifest): the
//     old order-insensitive recovery runs unchanged, then the directory
//     is migrated in place to the per-shard layout.
//
// A fresh directory recovers nothing and is left untouched (OpenSharded
// commits the first manifest).
func RecoverSharded(dir string, ss *storage.ShardedStore, parallelism int) error {
	man, ok, err := loadManifest(dir)
	if err != nil {
		return err
	}
	if !ok {
		if !legacyLayoutPresent(dir) {
			return nil // fresh directory
		}
		// Migrate the single-log layout in place: recover through the
		// order-insensitive path, then rewrite as per-shard files.
		if err := RecoverInto(dir, ss); err != nil {
			return err
		}
		return rewriteLayout(dir, ss, 1, parallelism)
	}
	if man.Shards == ss.NumShards() {
		return recoverMatched(dir, man, ss, parallelism)
	}
	if err := recoverReshard(dir, man, ss); err != nil {
		return err
	}
	return rewriteLayout(dir, ss, man.Generation+1, parallelism)
}

func legacyLayoutPresent(dir string) bool {
	for _, name := range []string{SnapshotFile, LogFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// recoverMatched is the fast path: shard counts agree, so shard i's
// files rebuild shard i's store with no cross-shard traffic, and the
// shards recover in parallel.
func recoverMatched(dir string, man Manifest, ss *storage.ShardedStore, parallelism int) error {
	n := ss.NumShards()
	err := fanout.Run(n, parallelism, func(i int) error {
		sh := ss.Shard(i)
		hdrNext, err := loadSnapshot(filepath.Join(dir, shardSnapshotFile(man.Generation, i)), sh)
		if err != nil {
			return fmt.Errorf("wal: recover shard %d: %w", i, err)
		}
		logPath := filepath.Join(dir, ShardLogFile(i))
		valid, err := ReplayBounded(logPath, func(rec Rec) error {
			switch rec.Type {
			case RecInsert:
				// Behind the shard's cursor means already in the shard's
				// snapshot (a checkpoint crashed between manifest commit
				// and log truncation): skip, not fail.
				if err := sh.Restore(rec.Tuple); err != nil && !errors.Is(err, storage.ErrStaleRestore) {
					return err
				}
				return nil
			case RecEvict:
				if err := sh.Evict(rec.ID); err != nil && !errors.Is(err, storage.ErrNotFound) {
					return err
				}
				return nil
			case RecTick:
				// Crash recovery takes freshness from the snapshot, not
				// from re-running decay; ticks are for live followers.
				return nil
			}
			return fmt.Errorf("unknown record %d", rec.Type)
		})
		if err != nil {
			return fmt.Errorf("wal: recover shard %d: %w", i, err)
		}
		// Truncate this shard's torn tail (if any) before the log is
		// reopened for appending — independently of every other shard.
		if fi, statErr := os.Stat(logPath); statErr == nil && fi.Size() > valid {
			if err := os.Truncate(logPath, valid); err != nil {
				return fmt.Errorf("wal: truncate torn tail of shard %d: %w", i, err)
			}
		}
		// The per-shard snapshot header holds this shard's exact cursor
		// (no global round-up), applied only after replay so logged
		// post-checkpoint inserts never look stale.
		sh.AdvanceNextID(hdrNext)
		if i < len(man.NextIDs) {
			sh.AdvanceNextID(tuple.ID(man.NextIDs[i]))
		}
		return nil
	})
	if err != nil {
		return err
	}
	ss.FinishRestore()
	// A checkpoint that crashed before its manifest commit may have left
	// next-generation snapshot files behind; they are uncommitted.
	cleanupStale(dir, man)
	return nil
}

// collectExtent buffers snapshot tuples instead of restoring them, so
// the reshard path can merge several shard snapshots by ID before
// routing. Only the methods loadSnapshot touches do real work.
type collectExtent struct {
	schema *tuple.Schema
	tuples []tuple.Tuple
}

func (c *collectExtent) Schema() *tuple.Schema        { return c.schema }
func (c *collectExtent) Len() int                     { return len(c.tuples) }
func (c *collectExtent) NextID() tuple.ID             { return 0 }
func (c *collectExtent) Scan(func(*tuple.Tuple) bool) {}
func (c *collectExtent) Restore(tp tuple.Tuple) error { c.tuples = append(c.tuples, tp); return nil }
func (c *collectExtent) FinishRestore()               {}
func (c *collectExtent) AdvanceNextID(tuple.ID)       {}
func (c *collectExtent) Evict(tuple.ID) error         { return nil }

// recoverReshard re-routes a per-shard directory written at a different
// shard count: all old snapshots and log inserts merge into one
// ID-sorted stream (stable, snapshots first, so a record that survived
// into a snapshot wins over its own stale log copy), restore routes each
// tuple to its new owner by residue, and evictions apply afterwards —
// IDs are never reused, so insert-then-evict commutes.
func recoverReshard(dir string, man Manifest, ss *storage.ShardedStore) error {
	var inserts []tuple.Tuple
	var evicts []tuple.ID
	maxNext := tuple.ID(0)
	for i := 0; i < man.Shards; i++ {
		col := &collectExtent{schema: ss.Schema()}
		hdrNext, err := loadSnapshot(filepath.Join(dir, shardSnapshotFile(man.Generation, i)), col)
		if err != nil {
			return fmt.Errorf("wal: reshard snapshot %d: %w", i, err)
		}
		if hdrNext > maxNext {
			maxNext = hdrNext
		}
		inserts = append(inserts, col.tuples...)
	}
	for i := 0; i < man.Shards; i++ {
		_, err := ReplayBounded(filepath.Join(dir, ShardLogFile(i)), func(rec Rec) error {
			switch rec.Type {
			case RecInsert:
				inserts = append(inserts, rec.Tuple)
			case RecEvict:
				evicts = append(evicts, rec.ID)
			case RecTick:
				// As on the matched path: crash recovery takes freshness
				// from the snapshots, ticks matter only to live followers.
			default:
				return fmt.Errorf("reshard: unknown record %d", rec.Type)
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("wal: reshard log %d: %w", i, err)
		}
	}
	sort.SliceStable(inserts, func(a, b int) bool { return inserts[a].ID < inserts[b].ID })
	for _, tp := range inserts {
		if err := ss.Restore(tp); err != nil && !errors.Is(err, storage.ErrStaleRestore) {
			return err
		}
	}
	for _, id := range evicts {
		if err := ss.Evict(id); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return err
		}
	}
	ss.FinishRestore()
	for _, nid := range man.NextIDs {
		if tuple.ID(nid) > maxNext {
			maxNext = tuple.ID(nid)
		}
	}
	// Old cursors round up into the new residue classes; only the global
	// high-water mark is meaningful across shard counts.
	ss.AdvanceNextID(maxNext)
	return nil
}

// rewriteLayout writes dir's canonical per-shard layout for ss at the
// given generation — per-shard snapshots, then the manifest commit —
// and removes every superseded file, including all old shard logs
// (their records now live in the new snapshots, and their residue
// classes may not match the new shard count). Used by migration and
// resharding; a crash before the manifest commit leaves the old layout
// fully intact.
func rewriteLayout(dir string, ss *storage.ShardedStore, gen uint64, parallelism int) error {
	n := ss.NumShards()
	if err := fanout.Run(n, parallelism, func(i int) error {
		return WriteSnapshot(filepath.Join(dir, shardSnapshotFile(gen, i)), ss.Shard(i))
	}); err != nil {
		return err
	}
	man := Manifest{Version: manifestVersion, Shards: n, Generation: gen, NextIDs: cursorsOf(ss)}
	if err := writeManifest(dir, man); err != nil {
		return err
	}
	// Every old log is superseded by the generation just committed.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if _, ok := parseShardLogName(e.Name()); ok {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	cleanupStale(dir, man)
	return nil
}
