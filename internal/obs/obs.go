// Package obs is the production observability layer: a dependency-free
// metric model with a Prometheus text-exposition writer. The engine's
// operational counters were historically scattered across per-table
// JSON stats (internal/server), storage atomics, WAL info and ingest
// pipeline snapshots; obs unifies them behind one Registry that any
// component can contribute Collectors to, and one scrape surface
// (GET /metrics) renders them all.
//
// The model is pull-based: a Collector produces a snapshot of metric
// Families when asked, so components keep their existing cheap internal
// counters (atomics, mutex-guarded structs) and pay nothing between
// scrapes. Only live instruments that accumulate observations — the
// latency Histogram — carry their own synchronisation.
package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is the metric family type, mirroring the Prometheus exposition
// TYPE keywords.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// Bucket is one cumulative histogram bucket: the count of observations
// at or below UpperBound.
type Bucket struct {
	UpperBound float64
	Count      uint64
}

// Sample is one labelled observation inside a family. Counter and gauge
// samples use Value; histogram samples use Buckets/Sum/Count instead.
type Sample struct {
	Labels  []Label
	Value   float64
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Family is one named metric with help text, a kind, and any number of
// labelled samples.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// Collector produces a point-in-time snapshot of metric families. A
// Collector must be safe for concurrent Collect calls.
type Collector interface {
	Collect() []Family
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func() []Family

// Collect implements Collector.
func (f CollectorFunc) Collect() []Family { return f() }

// Registry fans a scrape out over its registered collectors and merges
// the result into one sorted, deduplicated family list.
type Registry struct {
	mu         sync.RWMutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector. Safe to call while scrapes are in flight.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// metricName is the Prometheus metric/label name grammar.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// ValidName reports whether s satisfies the metric/label name grammar
// Gather enforces at scrape time. Exported so fungusvet's metricname
// analyzer applies the registry's exact rules at compile time instead
// of a drifting copy.
func ValidName(s string) bool { return metricName.MatchString(s) }

// Gather collects from every registered collector and merges families
// with the same name (first help/kind wins, samples append). Families
// come back sorted by name and samples by label signature, so the
// exposition — and any test comparing it — is deterministic.
func (r *Registry) Gather() ([]Family, error) {
	r.mu.RLock()
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.RUnlock()

	byName := map[string]*Family{}
	order := []string{}
	for _, c := range collectors {
		for _, fam := range c.Collect() {
			if !metricName.MatchString(fam.Name) {
				return nil, fmt.Errorf("obs: invalid metric name %q", fam.Name)
			}
			dst, ok := byName[fam.Name]
			if !ok {
				f := fam
				f.Samples = append([]Sample(nil), fam.Samples...)
				byName[fam.Name] = &f
				order = append(order, fam.Name)
				continue
			}
			if dst.Kind != fam.Kind {
				return nil, fmt.Errorf("obs: metric %q collected with conflicting kinds", fam.Name)
			}
			dst.Samples = append(dst.Samples, fam.Samples...)
		}
	}
	sort.Strings(order)
	out := make([]Family, 0, len(order))
	for _, name := range order {
		fam := byName[name]
		for _, s := range fam.Samples {
			for _, l := range s.Labels {
				if !metricName.MatchString(l.Name) {
					return nil, fmt.Errorf("obs: metric %q: invalid label name %q", name, l.Name)
				}
			}
		}
		sort.SliceStable(fam.Samples, func(i, j int) bool {
			return labelSignature(fam.Samples[i].Labels) < labelSignature(fam.Samples[j].Labels)
		})
		out = append(out, *fam)
	}
	return out, nil
}

// labelSignature renders labels into a stable sort key.
func labelSignature(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// FormatValue renders a sample value the way the exposition format
// expects (shortest round-trippable float).
func FormatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SampleName renders a sample's display name: the family name plus its
// labels, skipping any label named skip (callers printing per-table
// output drop the redundant table label). Label values are escaped as
// in the exposition format.
func SampleName(fam Family, s Sample, skip string) string {
	var kept []Label
	for _, l := range s.Labels {
		if l.Name == skip {
			continue
		}
		kept = append(kept, l)
	}
	if len(kept) == 0 {
		return fam.Name
	}
	var b strings.Builder
	b.WriteString(fam.Name)
	b.WriteByte('{')
	for i, l := range kept {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
