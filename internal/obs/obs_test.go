package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWriteTextGolden pins the exact exposition bytes for one of each
// family kind: HELP/TYPE ordering, label escaping, histogram expansion
// with the implicit +Inf bucket.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func() []Family {
		return []Family{
			{
				Name: "fungusdb_test_rows_total",
				Help: `rows with a "quoted" label and back\slash`,
				Kind: KindCounter,
				Samples: []Sample{
					{Labels: []Label{{Name: "table", Value: `io"t`}}, Value: 42},
					{Labels: []Label{{Name: "table", Value: "clicks"}}, Value: 7},
				},
			},
			{
				Name:    "fungusdb_test_depth",
				Help:    "a gauge",
				Kind:    KindGauge,
				Samples: []Sample{{Value: 1.5}},
			},
		}
	}))
	h := NewHistogram("fungusdb_test_seconds", "a histogram", []float64{0.1, 1}, Label{Name: "route", Value: "v1"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.7)
	h.Observe(30)
	reg.Register(h)

	fams, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteText(&sb, fams); err != nil {
		t.Fatal(err)
	}
	want := `# HELP fungusdb_test_depth a gauge
# TYPE fungusdb_test_depth gauge
fungusdb_test_depth 1.5
# HELP fungusdb_test_rows_total rows with a "quoted" label and back\\slash
# TYPE fungusdb_test_rows_total counter
fungusdb_test_rows_total{table="clicks"} 7
fungusdb_test_rows_total{table="io\"t"} 42
# HELP fungusdb_test_seconds a histogram
# TYPE fungusdb_test_seconds histogram
fungusdb_test_seconds_bucket{route="v1",le="0.1"} 1
fungusdb_test_seconds_bucket{route="v1",le="1"} 3
fungusdb_test_seconds_bucket{route="v1",le="+Inf"} 4
fungusdb_test_seconds_sum{route="v1"} 31.25
fungusdb_test_seconds_count{route="v1"} 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestGatherMergesFamilies checks that two collectors contributing the
// same family name merge into one family with all samples.
func TestGatherMergesFamilies(t *testing.T) {
	reg := NewRegistry()
	mk := func(label string, v float64) Collector {
		return CollectorFunc(func() []Family {
			return []Family{{
				Name: "fungusdb_merge_total", Help: "h", Kind: KindCounter,
				Samples: []Sample{{Labels: []Label{{Name: "route", Value: label}}, Value: v}},
			}}
		})
	}
	reg.Register(mk("b", 2))
	reg.Register(mk("a", 1))
	fams, err := reg.Gather()
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 {
		t.Fatalf("want 1 family, got %d", len(fams))
	}
	if len(fams[0].Samples) != 2 {
		t.Fatalf("want 2 samples, got %d", len(fams[0].Samples))
	}
	// Samples sort by label signature.
	if fams[0].Samples[0].Value != 1 || fams[0].Samples[1].Value != 2 {
		t.Errorf("samples not sorted by label: %+v", fams[0].Samples)
	}
}

// TestGatherRejectsBadNames checks validation of metric and label names.
func TestGatherRejectsBadNames(t *testing.T) {
	for _, bad := range []Family{
		{Name: "has space", Kind: KindGauge},
		{Name: "ok_name", Kind: KindGauge, Samples: []Sample{{Labels: []Label{{Name: "bad-label", Value: "x"}}}}},
	} {
		reg := NewRegistry()
		fam := bad
		reg.Register(CollectorFunc(func() []Family { return []Family{fam} }))
		if _, err := reg.Gather(); err == nil {
			t.Errorf("Gather accepted invalid family %+v", bad)
		}
	}
}

// TestGatherRejectsKindConflict: same name, different kinds is an error
// (a drifted collector), not silent corruption.
func TestGatherRejectsKindConflict(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func() []Family {
		return []Family{{Name: "fungusdb_x", Kind: KindCounter}}
	}))
	reg.Register(CollectorFunc(func() []Family {
		return []Family{{Name: "fungusdb_x", Kind: KindGauge}}
	}))
	if _, err := reg.Gather(); err == nil {
		t.Error("Gather accepted conflicting kinds")
	}
}

// TestHandler exercises the HTTP surface: content type and body shape.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func() []Family {
		return []Family{{Name: "fungusdb_up", Help: "liveness", Kind: KindGauge, Samples: []Sample{{Value: 1}}}}
	}))
	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "fungusdb_up 1\n") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestHistogramBucketing pins bucket boundary behaviour (le is
// inclusive) and concurrent-safety is covered by the race CI job via
// the server concurrency test.
func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram("h_seconds", "h", []float64{1, 2})
	for _, v := range []float64{1, 1, 2, 3} {
		h.Observe(v)
	}
	fam := h.Collect()[0]
	s := fam.Samples[0]
	if s.Buckets[0].Count != 2 || s.Buckets[1].Count != 3 {
		t.Errorf("cumulative buckets wrong: %+v", s.Buckets)
	}
	if s.Count != 4 || s.Sum != 7 {
		t.Errorf("sum/count wrong: sum=%v count=%d", s.Sum, s.Count)
	}
}

// TestSampleName covers the shared display-name helper fungusctl's
// stats walk uses.
func TestSampleName(t *testing.T) {
	fam := Family{Name: "fungusdb_table_shard_tuples"}
	s := Sample{Labels: []Label{{Name: "table", Value: "iot"}, {Name: "shard", Value: "3"}}}
	if got := SampleName(fam, s, "table"); got != `fungusdb_table_shard_tuples{shard="3"}` {
		t.Errorf("SampleName = %q", got)
	}
	if got := SampleName(fam, Sample{Labels: []Label{{Name: "table", Value: "iot"}}}, "table"); got != "fungusdb_table_shard_tuples" {
		t.Errorf("SampleName without extra labels = %q", got)
	}
}
