// The engine collector: one snapshot walk unifying the counters and
// gauges that previously lived in four different stats surfaces
// (metrics.Counters, storage.Stats, core.WALInfo and the per-table
// JSON stats handler) into labelled metric families. Both the server's
// /metrics endpoint and `fungusctl stats` render the same walk, so the
// two surfaces cannot drift apart.
package obs

import (
	"strconv"

	"fungusdb/internal/core"
)

// EngineCollector wraps a DB so a Registry can scrape it. Each scrape
// takes a fresh snapshot: tables created or dropped between scrapes
// appear and disappear with them.
func EngineCollector(db *core.DB) Collector {
	return CollectorFunc(func() []Family { return CollectEngine(db) })
}

// engineFamily pairs a family skeleton with a per-table value getter;
// the catalog below is the single definition every scrape walks.
type engineFamily struct {
	name string
	help string
	kind Kind
	// value extracts the scalar for one table snapshot; nil families
	// fill their samples specially (per-shard gauges).
	value func(ts tableSnap) float64
}

// tableSnap is one table's stats, captured once per scrape so every
// family in the walk reads the same moment.
type tableSnap struct {
	table    *core.Table
	counters coreCounters
	store    coreStoreStats
	wal      core.WALInfo
	shards   int
}

// Narrow local views of the stats structs keep the catalog readable.
type coreCounters struct {
	inserted, rotted, consumed, distilled, queries, ticks uint64
	captureRate                                           float64
}

type coreStoreStats struct {
	live, bytes, segsLive                                     int
	segsDropped                                               uint64
	segsPruned, tuplesSkipped, batchesScanned, rowsVectorized uint64
}

// engineCatalog is every per-table family the engine exports, in
// exposition (alphabetical) order. docs/OBSERVABILITY.md documents each
// entry; the scrape golden test counts them.
var engineCatalog = []engineFamily{
	{"fungusdb_storage_batches_scanned_total", "Column batches handed to the vectorized scan routes.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.store.batchesScanned) }},
	{"fungusdb_storage_rows_vectorized_total", "Live rows evaluated kernel-wise by vectorized scans.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.store.rowsVectorized) }},
	{"fungusdb_storage_segments_dropped_total", "Extent segments freed after their last live tuple left.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.store.segsDropped) }},
	{"fungusdb_storage_segments_live", "Extent segments currently held in memory.", KindGauge,
		func(ts tableSnap) float64 { return float64(ts.store.segsLive) }},
	{"fungusdb_storage_segments_pruned_total", "Segments skipped wholesale by zone-map pruning.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.store.segsPruned) }},
	{"fungusdb_storage_tuples_skipped_total", "Live tuples inside pruned segments — work scans never did.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.store.tuplesSkipped) }},
	{"fungusdb_table_bytes", "Approximate live extent size in bytes.", KindGauge,
		func(ts tableSnap) float64 { return float64(ts.store.bytes) }},
	{"fungusdb_table_capture_rate", "Fraction of departed tuples distilled into knowledge first (1 = nothing lost).", KindGauge,
		func(ts tableSnap) float64 { return ts.counters.captureRate }},
	{"fungusdb_table_consumed_total", "Tuples evicted by consume-mode queries.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.counters.consumed) }},
	{"fungusdb_table_distilled_total", "Departed tuples captured in a knowledge container on the way out.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.counters.distilled) }},
	{"fungusdb_table_inserted_total", "Tuples inserted over the table's lifetime.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.counters.inserted) }},
	{"fungusdb_table_live_tuples", "Live tuples currently in the extent.", KindGauge,
		func(ts tableSnap) float64 { return float64(ts.store.live) }},
	{"fungusdb_table_queries_total", "Queries executed against the table.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.counters.queries) }},
	{"fungusdb_table_rotted_total", "Tuples evicted because freshness decayed to zero.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.counters.rotted) }},
	{"fungusdb_table_shard_tuples", "Live tuples per shard (rotation balance).", KindGauge, nil},
	{"fungusdb_table_shards", "Extent shard count.", KindGauge,
		func(ts tableSnap) float64 { return float64(ts.shards) }},
	{"fungusdb_table_ticks_total", "Decay ticks applied to the table.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.counters.ticks) }},
	{"fungusdb_wal_generation", "Committed snapshot generation (0 = in-memory table or no checkpoint yet).", KindGauge,
		func(ts tableSnap) float64 { return float64(ts.wal.Generation) }},
	{"fungusdb_wal_group_commit_avg_size", "Mean records per group-commit fsync (grouped durability only).", KindGauge,
		func(ts tableSnap) float64 { return ts.wal.AvgGroupSize }},
	{"fungusdb_wal_group_commits_total", "Fsync-backed group-commit flushes.", KindCounter,
		func(ts tableSnap) float64 { return float64(ts.wal.GroupCommits) }},
	{"fungusdb_wal_shards", "Per-shard WAL files backing the table (0 = in-memory).", KindGauge,
		func(ts tableSnap) float64 { return float64(ts.wal.LogShards) }},
}

// CollectEngine snapshots every table in db into the engine metric
// families, one sample per table (labelled table="name"; the per-shard
// balance gauge adds shard="i").
func CollectEngine(db *core.DB) []Family {
	names := db.Tables()
	snaps := make([]tableSnap, 0, len(names))
	shardLens := make([][]int, 0, len(names))
	for _, name := range names {
		tbl, err := db.Table(name)
		if err != nil {
			continue // dropped between listing and lookup
		}
		c := tbl.Counters()
		st := tbl.StoreStats()
		snaps = append(snaps, tableSnap{
			table: tbl,
			counters: coreCounters{
				inserted:    c.Inserted,
				rotted:      c.Rotted,
				consumed:    c.Consumed,
				distilled:   c.DistilledRot + c.DistilledQuery,
				queries:     c.Queries,
				ticks:       c.Ticks,
				captureRate: c.CaptureRate(),
			},
			store: coreStoreStats{
				live: st.Live, bytes: st.Bytes, segsLive: st.SegsLive,
				segsDropped: st.SegsDropped,
				segsPruned:  st.SegsPruned, tuplesSkipped: st.TuplesSkipped,
				batchesScanned: st.BatchesScanned, rowsVectorized: st.RowsVectorized,
			},
			wal:    tbl.WALInfo(),
			shards: tbl.Shards(),
		})
		shardLens = append(shardLens, tbl.ShardLens())
	}

	out := make([]Family, 0, len(engineCatalog))
	for _, ef := range engineCatalog {
		fam := Family{Name: ef.name, Help: ef.help, Kind: ef.kind}
		for i, ts := range snaps {
			tableLabel := Label{Name: "table", Value: ts.table.Name()}
			if ef.value == nil { // per-shard balance gauge
				for shard, n := range shardLens[i] {
					fam.Samples = append(fam.Samples, Sample{
						Labels: []Label{tableLabel, {Name: "shard", Value: strconv.Itoa(shard)}},
						Value:  float64(n),
					})
				}
				continue
			}
			fam.Samples = append(fam.Samples, Sample{
				Labels: []Label{tableLabel},
				Value:  ef.value(ts),
			})
		}
		out = append(out, fam)
	}
	return out
}
