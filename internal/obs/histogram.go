package obs

import "sync"

// DefLatencyBuckets are the query-latency histogram bounds, in seconds:
// half-millisecond resolution at the fast end (a pruned in-memory point
// query), stretching to multi-second buckets so a stalled scan is still
// visible rather than clipped. Documented in docs/OBSERVABILITY.md.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a live instrument accumulating observations into fixed
// cumulative buckets. Unlike the snapshot collectors, it is written on
// the request hot path, so it carries its own lock; Observe is a few
// additions under a mutex. A Histogram is itself a Collector producing
// a single-sample family, so same-named histograms with different
// labels (one per route) merge into one family at Gather time.
type Histogram struct {
	name   string
	help   string
	labels []Label
	bounds []float64

	mu     sync.Mutex
	counts []uint64 // per-bucket, non-cumulative; same length as bounds
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram with the given upper bounds (must be
// sorted ascending; the +Inf bucket is implicit).
func NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be sorted ascending")
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		labels: labels,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Collect implements Collector: one family with one cumulative-bucket
// sample.
func (h *Histogram) Collect() []Family {
	h.mu.Lock()
	buckets := make([]Bucket, len(h.bounds))
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		buckets[i] = Bucket{UpperBound: b, Count: cum}
	}
	sample := Sample{
		Labels:  h.labels,
		Buckets: buckets,
		Sum:     h.sum,
		Count:   h.count,
	}
	h.mu.Unlock()
	return []Family{{Name: h.name, Help: h.help, Kind: KindHistogram, Samples: []Sample{sample}}}
}
