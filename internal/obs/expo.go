// Prometheus text exposition (format version 0.0.4): every family gets
// a # HELP and # TYPE comment followed by its samples, histograms
// expand into _bucket/_sum/_count series with a cumulative +Inf bucket.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// ContentType is the scrape response content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes HELP text (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writeLabels renders {a="x",b="y"}; extra, when non-nil, is appended
// last (histograms use it for le).
func writeLabels(b *strings.Builder, labels []Label, extra *Label) {
	if len(labels) == 0 && extra == nil {
		return
	}
	b.WriteByte('{')
	first := true
	emit := func(l Label) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	for _, l := range labels {
		emit(l)
	}
	if extra != nil {
		emit(*extra)
	}
	b.WriteByte('}')
}

// formatBound renders a bucket upper bound; +Inf is spelled the way
// Prometheus expects.
func formatBound(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return FormatValue(v)
}

// WriteText renders families in exposition order. Families should come
// from Registry.Gather, which sorts and validates them.
func WriteText(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, fam := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.Name, fam.Kind)
		for _, s := range fam.Samples {
			if fam.Kind == KindHistogram {
				writeHistogramSample(&b, fam.Name, s)
				continue
			}
			b.WriteString(fam.Name)
			writeLabels(&b, s.Labels, nil)
			b.WriteByte(' ')
			b.WriteString(FormatValue(s.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogramSample expands one histogram sample into its bucket,
// sum and count series. Buckets are cumulative; a trailing +Inf bucket
// equal to the total count is added when the sample does not carry one.
func writeHistogramSample(b *strings.Builder, name string, s Sample) {
	sawInf := false
	for _, bk := range s.Buckets {
		le := Label{Name: "le", Value: formatBound(bk.UpperBound)}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.Labels, &le)
		fmt.Fprintf(b, " %d\n", bk.Count)
		if math.IsInf(bk.UpperBound, +1) {
			sawInf = true
		}
	}
	if !sawInf {
		le := Label{Name: "le", Value: "+Inf"}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.Labels, &le)
		fmt.Fprintf(b, " %d\n", s.Count)
	}
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, s.Labels, nil)
	b.WriteByte(' ')
	b.WriteString(FormatValue(s.Sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, s.Labels, nil)
	fmt.Fprintf(b, " %d\n", s.Count)
}

// Handler serves the registry as a GET /metrics scrape endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		fams, err := r.Gather()
		if err != nil {
			http.Error(w, "metrics collection failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", ContentType)
		_ = WriteText(w, fams)
	})
}
