package obs

import (
	"testing"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/tuple"
)

// engineValue digs one table's sample out of a collected family list.
func engineValue(t *testing.T, fams []Family, name, table string) float64 {
	t.Helper()
	for _, fam := range fams {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			for _, l := range s.Labels {
				if l.Name == "table" && l.Value == table {
					return s.Value
				}
			}
		}
	}
	t.Fatalf("no sample %s{table=%q}", name, table)
	return 0
}

// TestCollectEngine drives a table through inserts, queries, consume
// and decay, then checks the collector reports the same numbers the
// engine's own stats surfaces do.
func TestCollectEngine(t *testing.T) {
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := tuple.MustSchema(
		tuple.Column{Name: "host", Kind: tuple.KindString},
		tuple.Column{Name: "sev", Kind: tuple.KindInt},
	)
	tbl, err := db.CreateTable("logs", core.TableConfig{
		Schema: schema, Shards: 3, Fungus: fungus.Linear{Rate: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := tbl.Insert(core.Row("web", i%10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.SQL("SELECT COUNT(*) FROM logs WHERE sev > 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Tick(); err != nil {
		t.Fatal(err)
	}

	fams := CollectEngine(db)
	if len(fams) != len(engineCatalog) {
		t.Fatalf("collected %d families, catalog has %d", len(fams), len(engineCatalog))
	}
	c := tbl.Counters()
	checks := map[string]float64{
		"fungusdb_table_inserted_total": float64(c.Inserted),
		"fungusdb_table_queries_total":  float64(c.Queries),
		"fungusdb_table_ticks_total":    float64(c.Ticks),
		"fungusdb_table_rotted_total":   float64(c.Rotted),
		"fungusdb_table_live_tuples":    float64(tbl.Len()),
		"fungusdb_table_shards":         3,
		"fungusdb_wal_shards":           0, // in-memory table
	}
	for name, want := range checks {
		if got := engineValue(t, fams, name, "logs"); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if c.Inserted != 30 {
		t.Fatalf("sanity: inserted %d", c.Inserted)
	}

	// Per-shard balance: one sample per shard, totalling the live count.
	var shardSum, shardSamples float64
	for _, fam := range fams {
		if fam.Name != "fungusdb_table_shard_tuples" {
			continue
		}
		for _, s := range fam.Samples {
			shardSum += s.Value
			shardSamples++
		}
	}
	if shardSamples != 3 {
		t.Errorf("want 3 shard samples, got %v", shardSamples)
	}
	if shardSum != float64(tbl.Len()) {
		t.Errorf("shard tuples sum %v != live %d", shardSum, tbl.Len())
	}

	// The whole walk must render as a valid exposition via a registry.
	reg := NewRegistry()
	reg.Register(EngineCollector(db))
	if _, err := reg.Gather(); err != nil {
		t.Fatalf("engine families failed validation: %v", err)
	}
}
