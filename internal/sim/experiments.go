package sim

import (
	"fmt"
	"strconv"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
	"fungusdb/internal/workload"
)

// Config scales the experiments. Scale 1.0 reproduces the numbers in
// EXPERIMENTS.md; tests run smaller scales for speed.
type Config struct {
	Scale float64
	Seed  int64
	// Shards runs every experiment table with this many extent shards
	// (0/1 = the unsharded engine). Reports stay deterministic for a
	// fixed (Seed, Shards) pair; Shards <= 1 reproduces the pre-sharding
	// engine byte for byte.
	Shards int
	// Workers bounds the engine's fan-out pool (0 = GOMAXPROCS).
	Workers int
}

// DefaultConfig is the full-size configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 20150104} } // CIDR'15 opening day

func (c Config) n(full int) int {
	n := int(float64(full) * c.Scale)
	if n < 8 {
		n = 8
	}
	return n
}

// Runner maps experiment IDs to their functions.
var Runner = map[string]func(Config) *Table{
	"E1": E1ChessBoard,
	"E2": E2RotSpots,
	"E3": E3BlueCheese,
	"E4": E4Consume,
	"E5": E5Distill,
	"E6": E6Extinction,
	"E7": E7Health,
	"E8": E8SteadyState,
	"E9": E9FreshnessTradeoff,
}

// ExperimentIDs lists the experiments in order.
var ExperimentIDs = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}

// newIoTTable builds a DB + IoT table with the given fungus.
func newIoTTable(cfg Config, name string, f fungus.Fungus, distill bool) (*core.DB, *core.Table, *workload.IoT) {
	db, err := core.Open(core.DBConfig{Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		panic(err)
	}
	gen := workload.NewIoT(100, cfg.Seed)
	tbl, err := db.CreateTable(name, core.TableConfig{
		Schema:       gen.Schema(),
		Fungus:       f,
		Shards:       cfg.Shards,
		DistillOnRot: distill,
	})
	if err != nil {
		panic(err)
	}
	return db, tbl, gen
}

// E1ChessBoard — DESIGN.md "Table 1". The chess-board fable is about
// hoarding: keep every grain and the pile explodes. Under a sustained
// data deluge the no-fungus extent accumulates without bound, while any
// decay law converges to a working set proportional to the ingest rate.
// (A literally doubling rate would not discriminate: the last square
// dominates every arm alike, decayed or not — the fable's own point.)
func E1ChessBoard(cfg Config) *Table {
	const epochs = 12
	ticksPerEpoch := 8
	baseRate := cfg.n(256) // inserts per epoch, constant

	type arm struct {
		name string
		mk   func() fungus.Fungus
	}
	arms := []arm{
		{"none", func() fungus.Fungus { return fungus.Null{} }},
		{"ttl", func() fungus.Fungus { return fungus.TTL{Lifetime: uint64(2 * ticksPerEpoch)} }},
		// Half-life of a quarter epoch: tuples rot (freshness < 1e-3)
		// after ~2.5 epochs, well inside the 12-epoch horizon.
		{"exponential", func() fungus.Fungus { return fungus.HalfLife(float64(ticksPerEpoch) / 4) }},
		{"egi", func() fungus.Fungus {
			return fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: baseRate / ticksPerEpoch, DecayRate: 0.25, AgeBias: 2})
		}},
	}

	names := make([]string, len(arms))
	for i, a := range arms {
		names[i] = a.name
	}
	t := &Table{
		ID:     "E1",
		Title:  "chess-board hoarding: extent size per epoch under sustained ingest",
		Header: append([]string{"epoch", "inserted"}, names...),
		Notes: []string{
			"shape: 'none' accumulates linearly without bound; every fungus plateaus",
		},
	}

	type state struct {
		db  *core.DB
		tbl *core.Table
		gen *workload.IoT
	}
	states := make([]state, len(arms))
	for i, a := range arms {
		db, tbl, gen := newIoTTable(cfg, "iot", a.mk(), false)
		states[i] = state{db, tbl, gen}
	}
	defer func() {
		for _, s := range states {
			s.db.Close()
		}
	}()

	perTick := baseRate / ticksPerEpoch
	if perTick < 1 {
		perTick = 1
	}
	totalInserted := 0
	for epoch := 0; epoch < epochs; epoch++ {
		for tick := 0; tick < ticksPerEpoch; tick++ {
			for _, s := range states {
				for i := 0; i < perTick; i++ {
					if _, err := s.tbl.Insert(s.gen.Next()); err != nil {
						panic(err)
					}
				}
				if _, err := s.db.Tick(); err != nil {
					panic(err)
				}
			}
		}
		totalInserted += perTick * ticksPerEpoch
		row := []any{epoch, totalInserted}
		for _, s := range states {
			row = append(row, s.tbl.Len())
		}
		t.Add(row...)
	}
	return t
}

// E2RotSpots — DESIGN.md "Figure 1". One deterministic EGI seed planted
// mid-extent; the per-time-bucket freshness series shows a spot growing
// bi-directionally along the insertion axis.
func E2RotSpots(cfg Config) *Table {
	n := cfg.n(20000)
	egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 0, DecayRate: 0.05, AgeBias: 2})
	db, tbl, gen := newIoTTable(cfg, "iot", egi, false)
	defer db.Close()
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(gen.Next()); err != nil {
			panic(err)
		}
	}
	// The hand-planted seed goes into the caller-held EGI instance,
	// which ForShard assigns to shard 0 — round the target ID into
	// shard 0's residue class so the spot grows under any shard count.
	seedID := n / 2
	if cfg.Shards > 1 {
		seedID -= seedID % cfg.Shards
	}
	egi.Seed(tuple.ID(seedID))

	const buckets = 20
	checkpoints := []int{0, n / 200, n / 100, n / 40}
	t := &Table{
		ID:     "E2",
		Title:  "EGI rot spot: freshness mass per time bucket over ticks",
		Header: append([]string{"tick"}, bucketHeaders(buckets)...),
		Notes: []string{
			"mass = sum of live freshness / IDs in bucket; rotted (evicted) IDs count 0",
			"shape: a crater appears at the centre bucket and widens symmetrically",
		},
	}
	tick := 0
	for _, cp := range checkpoints {
		for tick < cp {
			if _, err := db.Tick(); err != nil {
				panic(err)
			}
			tick++
		}
		row := []any{tick}
		for _, b := range tbl.TimeSeries(buckets) {
			span := float64(b.Live + b.Dead)
			mass := 0.0
			if span > 0 {
				mass = b.Mean * float64(b.Live) / span
			}
			row = append(row, mass)
		}
		t.Add(row...)
	}
	return t
}

func bucketHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "b" + strconv.Itoa(i)
	}
	return out
}

// E3BlueCheese — DESIGN.md "Table 2". Under EGI the relation "remains
// edible for a long time": answer coverage of a standing query degrades
// gracefully, while TTL falls off a cliff at the retention boundary.
func E3BlueCheese(cfg Config) *Table {
	n := cfg.n(20000)
	horizon := 60 // ticks
	mkArms := func() map[string]fungus.Fungus {
		// Calibrated so both arms remove the whole extent near the end
		// of the horizon: TTL at tick 40 exactly; EGI spread over time.
		return map[string]fungus.Fungus{
			"ttl": fungus.TTL{Lifetime: 40},
			"egi": fungus.NewEGI(fungus.EGIConfig{
				SeedsPerTick: n / 200, DecayRate: 0.1, AgeBias: 1,
			}),
		}
	}

	t := &Table{
		ID:     "E3",
		Title:  "blue cheese: standing-query coverage vs ticks (EGI degrades, TTL cliffs)",
		Header: []string{"tick", "egi_coverage", "ttl_coverage", "egi_meanfresh", "ttl_meanfresh"},
		Notes: []string{
			"coverage = live answer size / original answer size",
			"shape: EGI falls smoothly; TTL holds 1.0 then drops to 0 at its lifetime",
		},
	}

	type armState struct {
		db   *core.DB
		tbl  *core.Table
		base int
	}
	states := map[string]armState{}
	for name, f := range mkArms() {
		db, tbl, gen := newIoTTable(cfg, "iot", f, false)
		for i := 0; i < n; i++ {
			if _, err := tbl.Insert(gen.Next()); err != nil {
				panic(err)
			}
		}
		res, err := tbl.Query("temp >= 10", query.Peek)
		if err != nil {
			panic(err)
		}
		states[name] = armState{db, tbl, res.Len()}
	}
	defer func() {
		for _, s := range states {
			s.db.Close()
		}
	}()

	for tick := 0; tick <= horizon; tick += 5 {
		cov := map[string]float64{}
		fresh := map[string]float64{}
		for name, s := range states {
			res, err := s.tbl.Query("temp >= 10", query.Peek)
			if err != nil {
				panic(err)
			}
			if s.base > 0 {
				cov[name] = float64(res.Len()) / float64(s.base)
			}
			fresh[name] = res.MeanFreshness()
		}
		t.Add(tick, cov["egi"], cov["ttl"], fresh["egi"], fresh["ttl"])
		for i := 0; i < 5; i++ {
			for _, s := range states {
				if _, err := s.db.Tick(); err != nil {
					panic(err)
				}
			}
		}
	}
	return t
}

// E4Consume — DESIGN.md "Table 3". Law 2 mechanics: consume-mode
// queries shrink the extent by exactly the answer set; repeated answers
// are disjoint; peek baselines return duplicates and leave the extent
// alone.
func E4Consume(cfg Config) *Table {
	n := cfg.n(20000)
	rounds := 8

	t := &Table{
		ID:     "E4",
		Title:  "consume-on-query vs peek over repeated identical queries",
		Header: []string{"round", "mode", "answer", "dup_answers", "extent_after", "answer_bytes"},
		Notes: []string{
			"shape: consume answers shrink to 0 and the extent strictly decreases;",
			"peek answers repeat identically (all duplicates) and the extent is flat",
		},
	}

	for _, mode := range []query.Mode{query.Consume, query.Peek} {
		db, tbl, gen := newIoTTable(cfg, "clicks", fungus.Null{}, false)
		for i := 0; i < n; i++ {
			if _, err := tbl.Insert(gen.Next()); err != nil {
				panic(err)
			}
		}
		seen := map[tuple.ID]bool{}
		for round := 0; round < rounds; round++ {
			res, err := tbl.Query("temp >= 15 AND temp < 25", mode, core.QueryOpts{Limit: n / 16})
			if err != nil {
				panic(err)
			}
			dups := 0
			for i := range res.Tuples {
				if seen[res.Tuples[i].ID] {
					dups++
				}
				seen[res.Tuples[i].ID] = true
			}
			t.Add(round, mode.String(), res.Len(), dups, tbl.Len(), res.Bytes())
		}
		db.Close()
	}
	return t
}

// E5Distill — DESIGN.md "Table 4". Distilling an extent into a
// knowledge container: footprint shrinks by orders of magnitude while
// count is exact and NDV/quantile/heavy-hitter queries stay accurate.
func E5Distill(cfg Config) *Table {
	n := cfg.n(100000)
	db, err := core.Open(core.DBConfig{Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		panic(err)
	}
	defer db.Close()
	gen := workload.NewClickstream(5000, 1000, cfg.Seed)
	tbl, err := db.CreateTable("clicks", core.TableConfig{Schema: gen.Schema(), Shards: cfg.Shards})
	if err != nil {
		panic(err)
	}

	exactURL := map[string]int{}
	exactUsers := map[string]bool{}
	var dwells []float64
	for i := 0; i < n; i++ {
		row := gen.Next()
		exactURL[row[1].AsString()]++
		exactUsers[row[0].AsString()] = true
		dwells = append(dwells, float64(row[2].AsInt()))
		if _, err := tbl.Insert(row); err != nil {
			panic(err)
		}
	}
	rawBytes := tbl.Bytes()

	// Consume the whole extent into one container.
	res, err := tbl.Query("", query.Consume, core.QueryOpts{Distill: "archive"})
	if err != nil {
		panic(err)
	}
	if res.Len() != n || tbl.Len() != 0 {
		panic("E5: consume did not empty the extent")
	}
	d := tbl.Shelf().Get("archive").Digest

	t := &Table{
		ID:     "E5",
		Title:  "distillation fidelity: container vs raw extent",
		Header: []string{"metric", "exact", "container", "rel_err"},
		Notes: []string{
			"shape: footprint shrinks >=10x at full scale; count exact; NDV and quantiles within a few %",
		},
	}
	t.Add("bytes", rawBytes, d.Bytes(), ratio(float64(d.Bytes()), float64(rawBytes)))
	t.Add("count", n, d.Count(), relErr(float64(d.Count()), float64(n)))
	ndv, err := d.NDV("user")
	if err != nil {
		panic(err)
	}
	t.Add("ndv(user)", len(exactUsers), ndv, relErr(float64(ndv), float64(len(exactUsers))))
	for _, q := range []float64{0.5, 0.95} {
		got, err := d.Quantile("dwell_ms", q)
		if err != nil {
			panic(err)
		}
		want := exactQuantile(dwells, q)
		t.Add(fmt.Sprintf("q%g(dwell_ms)", q*100), want, got, relErr(got, want))
	}
	// Heavy hitter recall: are the true top-5 URLs reported in the
	// container's top-10?
	top, err := d.HeavyHitters("url", 10)
	if err != nil {
		panic(err)
	}
	reported := map[string]bool{}
	for _, e := range top {
		reported[e.Item] = true
	}
	hits := 0
	for _, u := range topKeys(exactURL, 5) {
		if reported[u] {
			hits++
		}
	}
	t.Add("top5(url) recall", 5, hits, relErr(float64(hits), 5))
	return t
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	d := (got - want) / want
	if d < 0 {
		return -d
	}
	return d
}

func exactQuantile(data []float64, q float64) float64 {
	cp := append([]float64(nil), data...)
	// insertion of sort here avoids importing sketch just for the helper
	sortFloats(cp)
	if len(cp) == 0 {
		return 0
	}
	pos := q * float64(len(cp)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 < len(cp) {
		return cp[i]*(1-frac) + cp[i+1]*frac
	}
	return cp[i]
}

func topKeys(m map[string]int, k int) []string {
	type kv struct {
		k string
		v int
	}
	all := make([]kv, 0, len(m))
	for key, v := range m {
		all = append(all, kv{key, v})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].v > all[i].v || (all[j].v == all[i].v && all[j].k < all[i].k) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].k
	}
	return out
}

func sortFloats(x []float64) {
	// stdlib sort; tiny wrapper keeps the import local to this file
	quickSort(x, 0, len(x)-1)
}

func quickSort(x []float64, lo, hi int) {
	for lo < hi {
		p := x[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for x[i] < p {
				i++
			}
			for x[j] > p {
				j--
			}
			if i <= j {
				x[i], x[j] = x[j], x[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSort(x, lo, j)
			lo = i
		} else {
			quickSort(x, i, hi)
			hi = j
		}
	}
}

// E6Extinction — DESIGN.md "Figure 2". Parameter sweep: ticks until the
// first natural law finishes its work ("until it has been completely
// disappeared") as a function of EGI seed and decay rates.
func E6Extinction(cfg Config) *Table {
	n := cfg.n(5000)
	seedRates := []int{1, 4, 16}
	decayRates := []float64{0.05, 0.1, 0.25}

	t := &Table{
		ID:     "E6",
		Title:  "EGI time-to-extinction (ticks) vs seeds/tick and decay rate",
		Header: []string{"seeds_per_tick", "decay_rate", "ticks_to_extinction"},
		Notes: []string{
			"shape: extinction time falls as either rate rises",
		},
	}
	for _, sr := range seedRates {
		for _, dr := range decayRates {
			egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: sr, DecayRate: dr, AgeBias: 2})
			db, tbl, gen := newIoTTable(cfg, "iot", egi, false)
			for i := 0; i < n; i++ {
				if _, err := tbl.Insert(gen.Next()); err != nil {
					panic(err)
				}
			}
			ticks := 0
			for tbl.Len() > 0 && ticks < 1_000_000 {
				if _, err := db.Tick(); err != nil {
					panic(err)
				}
				ticks++
			}
			t.Add(sr, dr, ticks)
			db.Close()
		}
	}
	return t
}

// E7Health — DESIGN.md "Figure 3". The paper's health criterion: sweep
// the distillation period; the more regularly rotting data is cooked
// into summaries, the higher the captured-knowledge rate.
func E7Health(cfg Config) *Table {
	n := cfg.n(4000)
	horizon := 200
	periods := []int{0, 5, 20, 50} // 0 = never distill

	t := &Table{
		ID:     "E7",
		Title:  "health: knowledge capture rate vs distillation period",
		Header: []string{"distill_period", "rotted", "consumed", "captured", "capture_rate"},
		Notes: []string{
			"period 0 = owner never distills: everything rots uncaptured",
			"shape: capture rate rises as the distillation period shrinks",
		},
	}
	for _, period := range periods {
		egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 4, DecayRate: 0.1, AgeBias: 2})
		db, tbl, gen := newIoTTable(cfg, "iot", egi, false)
		for i := 0; i < n; i++ {
			if _, err := tbl.Insert(gen.Next()); err != nil {
				panic(err)
			}
		}
		for tick := 1; tick <= horizon && tbl.Len() > 0; tick++ {
			if period > 0 && tick%period == 0 {
				// The owner distills the most rotten decile before the
				// fungus finishes it off.
				if _, err := tbl.Query("_f < 0.5", query.Consume, core.QueryOpts{Distill: "weekly"}); err != nil {
					panic(err)
				}
			}
			if _, err := db.Tick(); err != nil {
				panic(err)
			}
		}
		c := tbl.Counters()
		t.Add(period, c.Rotted, c.Consumed, c.DistilledRot+c.DistilledQuery, c.CaptureRate())
		db.Close()
	}
	return t
}

// E8SteadyState — DESIGN.md "Table 5". Sustained ingest under each
// fungus: does memory stabilise, and what does decay cost?
func E8SteadyState(cfg Config) *Table {
	perTick := cfg.n(200)
	horizon := 150
	warmup := 100

	arms := []struct {
		name string
		mk   func() fungus.Fungus
	}{
		{"none", func() fungus.Fungus { return fungus.Null{} }},
		{"ttl", func() fungus.Fungus { return fungus.TTL{Lifetime: 20} }},
		{"exponential", func() fungus.Fungus { return fungus.HalfLife(5) }},
		{"egi", func() fungus.Fungus {
			return fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: perTick / 2, DecayRate: 0.2, AgeBias: 2})
		}},
	}

	t := &Table{
		ID:     "E8",
		Title:  "steady state under sustained ingest",
		Header: []string{"fungus", "extent_t50", "extent_t100", "extent_t150", "bounded", "evictions"},
		Notes: []string{
			"shape: 'none' grows linearly forever; every fungus plateaus",
		},
	}
	for _, a := range arms {
		db, tbl, gen := newIoTTable(cfg, "iot", a.mk(), false)
		var e50, e100, e150 int
		for tick := 1; tick <= horizon; tick++ {
			for i := 0; i < perTick; i++ {
				if _, err := tbl.Insert(gen.Next()); err != nil {
					panic(err)
				}
			}
			if _, err := db.Tick(); err != nil {
				panic(err)
			}
			switch tick {
			case 50:
				e50 = tbl.Len()
			case 100:
				e100 = tbl.Len()
			case 150:
				e150 = tbl.Len()
			}
		}
		// Bounded if the extent stopped growing materially after warmup.
		bounded := float64(e150) < 1.2*float64(e100)
		_ = warmup
		t.Add(a.name, e50, e100, e150, bounded, tbl.StoreStats().Evicted)
		db.Close()
	}
	return t
}

// E9FreshnessTradeoff — DESIGN.md "Figure 4". Decay aggressiveness
// trades answer mass (how much a query returns) against answer
// freshness: harsher linear fungi leave fewer survivors whose mean
// freshness floors at 0.5 — the survivor ages are uniform over [0, 1/r]
// once the rot cutoff is active, so the mean cannot drop below it.
func E9FreshnessTradeoff(cfg Config) *Table {
	n := cfg.n(10000)
	age := 20 // ticks of decay before the probe query
	rates := []float64{0.005, 0.01, 0.02, 0.04, 0.08}

	t := &Table{
		ID:     "E9",
		Title:  "answer mass vs mean freshness as decay aggressiveness rises",
		Header: []string{"linear_rate", "answer_size", "answer_mass", "mean_freshness"},
		Notes: []string{
			"answer_mass = sum of freshness over the answer",
			"shape: size and mass fall with the rate; survivor mean freshness",
			"declines toward a 0.5 floor (uniform ages over the shrinking window)",
		},
	}
	for _, rate := range rates {
		db, tbl, gen := newIoTTable(cfg, "iot", fungus.Linear{Rate: rate}, false)
		// Insert continuously while decaying so ages vary.
		perTick := n / age
		for tick := 0; tick < age; tick++ {
			for i := 0; i < perTick; i++ {
				if _, err := tbl.Insert(gen.Next()); err != nil {
					panic(err)
				}
			}
			if _, err := db.Tick(); err != nil {
				panic(err)
			}
		}
		res, err := tbl.Query("", query.Peek)
		if err != nil {
			panic(err)
		}
		t.Add(rate, res.Len(), res.FreshnessMass(), res.MeanFreshness())
		db.Close()
	}
	return t
}
