package sim

import (
	"strings"
	"testing"
)

// renderAll runs every experiment under cfg and returns the rendered
// report stream.
func renderAll(t *testing.T, cfg Config) string {
	t.Helper()
	var b strings.Builder
	for _, id := range ExperimentIDs {
		Runner[id](cfg).Render(&b)
	}
	return b.String()
}

// TestExperimentsByteIdenticalAtOneShard proves determinism survived
// the sharding refactor: the explicit shards=1 engine and the default
// (unset) configuration — the pre-refactor code path — must render
// byte-identical reports for a fixed seed.
func TestExperimentsByteIdenticalAtOneShard(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	base := renderAll(t, Config{Scale: 0.05, Seed: 7})
	one := renderAll(t, Config{Scale: 0.05, Seed: 7, Shards: 1})
	if base != one {
		t.Fatal("shards=1 diverged from the default engine")
	}
	again := renderAll(t, Config{Scale: 0.05, Seed: 7})
	if base != again {
		t.Fatal("two identical runs diverged")
	}
}

// TestExperimentsDeterministicWhenSharded: a sharded run is just as
// reproducible — same seed and shard count, same bytes — even with the
// parallel fan-out enabled.
func TestExperimentsDeterministicWhenSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	cfg := Config{Scale: 0.05, Seed: 7, Shards: 4, Workers: 4}
	a := renderAll(t, cfg)
	b := renderAll(t, cfg)
	if a != b {
		t.Fatal("sharded experiment runs diverged")
	}
}
