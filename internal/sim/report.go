// Package sim runs the reproduction experiments defined in DESIGN.md.
// The paper (a CIDR vision note) publishes no tables or figures; each
// experiment here operationalises one claim of the text and is labelled
// with the table/figure number we assigned in DESIGN.md. Experiments
// are deterministic given their config seed and scale down for tests.
package sim

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: rows of pre-formatted cells.
// Both tables and figure-series use it (a figure is a table whose rows
// are the series points).
type Table struct {
	ID     string // experiment id, e.g. "E1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string // shape expectations, caveats
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Cell returns the cell at (row, col) for test assertions.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }
