package sim

import (
	"strconv"
	"strings"
	"testing"
)

// testCfg runs every experiment at a small, fast scale.
func testCfg() Config { return Config{Scale: 0.05, Seed: 7} }

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q is not an int: %v", s, err)
	}
	return n
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a float: %v", s, err)
	}
	return f
}

func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, id := range ExperimentIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			fn, ok := Runner[id]
			if !ok {
				t.Fatalf("no runner for %s", id)
			}
			tbl := fn(testCfg())
			if tbl.ID != id {
				t.Errorf("table ID = %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
				}
			}
			out := tbl.String()
			if !strings.Contains(out, tbl.Title) || !strings.Contains(out, tbl.Header[0]) {
				t.Errorf("render missing pieces:\n%s", out)
			}
		})
	}
}

func TestE1NoneGrowsFungiBound(t *testing.T) {
	tbl := E1ChessBoard(testCfg())
	last := tbl.Rows[len(tbl.Rows)-1]
	mid := tbl.Rows[len(tbl.Rows)/2]
	// Column layout: epoch, inserted, none, ttl, exponential, egi.
	noneLast, noneMid := atoi(t, last[2]), atoi(t, mid[2])
	// 'none' hoards everything: extent == inserted, still growing.
	if noneLast != atoi(t, last[1]) {
		t.Errorf("'none' extent %d != inserted %d", noneLast, atoi(t, last[1]))
	}
	if noneLast <= noneMid {
		t.Errorf("'none' stopped growing: mid=%d last=%d", noneMid, noneLast)
	}
	for col := 3; col <= 5; col++ {
		fLast, fMid := atoi(t, last[col]), atoi(t, mid[col])
		if fLast >= noneLast/3 {
			t.Errorf("%s arm (%d) not clearly bounded vs none (%d)", tbl.Header[col], fLast, noneLast)
		}
		// Plateau: the decayed extent stays within 2x of its midpoint.
		if fMid > 0 && (fLast > 2*fMid) {
			t.Errorf("%s arm still growing: mid=%d last=%d", tbl.Header[col], fMid, fLast)
		}
	}
}

func TestE2SpotGrowsFromCentre(t *testing.T) {
	tbl := E2RotSpots(testCfg())
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	nb := len(tbl.Header) - 1
	centre := 1 + nb/2
	// At tick 0 everything is fresh.
	for c := 1; c < len(first); c++ {
		if atof(t, first[c]) != 1 {
			t.Errorf("tick-0 bucket %d = %s, want 1", c, first[c])
		}
	}
	// At the end the centre dipped below the edges.
	centreF := atof(t, last[centre])
	edgeF := (atof(t, last[1]) + atof(t, last[len(last)-1])) / 2
	if centreF >= edgeF {
		t.Errorf("centre %v not below edges %v", centreF, edgeF)
	}
}

func TestE3EGIDegradesTTLCliffs(t *testing.T) {
	tbl := E3BlueCheese(testCfg())
	// ttl_coverage (col 2) is 1.0 early and 0 at the end; egi (col 1)
	// passes through intermediate values.
	first, last := tbl.Rows[0], tbl.Rows[len(tbl.Rows)-1]
	if atof(t, first[2]) != 1 {
		t.Errorf("ttl coverage at tick 0 = %s", first[2])
	}
	if atof(t, last[2]) != 0 {
		t.Errorf("ttl coverage at end = %s, want 0 (cliff)", last[2])
	}
	sawPartial := false
	for _, row := range tbl.Rows {
		c := atof(t, row[1])
		if c > 0.1 && c < 0.9 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Error("egi coverage never passed through partial values (no graceful decay)")
	}
}

func TestE4ConsumeShrinksPeekRepeats(t *testing.T) {
	tbl := E4Consume(testCfg())
	var consumeRows, peekRows [][]string
	for _, row := range tbl.Rows {
		if row[1] == "consume" {
			consumeRows = append(consumeRows, row)
		} else {
			peekRows = append(peekRows, row)
		}
	}
	// Consume: extent monotonically non-increasing, zero duplicates.
	prev := int(^uint(0) >> 1)
	for _, row := range consumeRows {
		if d := atoi(t, row[3]); d != 0 {
			t.Errorf("consume round %s returned %d duplicates", row[0], d)
		}
		ext := atoi(t, row[4])
		if ext > prev {
			t.Errorf("consume extent grew: %d -> %d", prev, ext)
		}
		prev = ext
	}
	// Peek: all rounds after the first are pure duplicates; extent flat.
	for i, row := range peekRows {
		if i == 0 {
			continue
		}
		if atoi(t, row[2]) != atoi(t, row[3]) {
			t.Errorf("peek round %s: answer %s != dups %s", row[0], row[2], row[3])
		}
		if atoi(t, row[4]) != atoi(t, peekRows[0][4]) {
			t.Errorf("peek extent changed at round %s", row[0])
		}
	}
}

func TestE5DistillAccuracy(t *testing.T) {
	tbl := E5Distill(Config{Scale: 0.2, Seed: 7})
	cells := map[string][]string{}
	for _, row := range tbl.Rows {
		cells[row[0]] = row
	}
	if atof(t, cells["count"][3]) != 0 {
		t.Errorf("count not exact: rel_err %s", cells["count"][3])
	}
	if e := atof(t, cells["ndv(user)"][3]); e > 0.05 {
		t.Errorf("NDV error %v > 5%%", e)
	}
	if r := atof(t, cells["bytes"][3]); r >= 0.5 {
		t.Errorf("container/raw ratio %v not < 0.5 at this scale", r)
	}
	if hits := atoi(t, cells["top5(url) recall"][2]); hits < 4 {
		t.Errorf("heavy-hitter recall %d/5", hits)
	}
}

func TestE6ExtinctionMonotoneInRates(t *testing.T) {
	tbl := E6Extinction(testCfg())
	// Build map[(sr,dr)] = ticks.
	ticks := map[string]int{}
	for _, row := range tbl.Rows {
		ticks[row[0]+"/"+row[1]] = atoi(t, row[2])
		if atoi(t, row[2]) <= 0 {
			t.Errorf("non-positive extinction time in row %v", row)
		}
	}
	if !(ticks["16/0.25"] < ticks["1/0.05"]) {
		t.Errorf("hardest setting (%d) not faster than gentlest (%d)", ticks["16/0.25"], ticks["1/0.05"])
	}
}

func TestE7CaptureRisesWithFrequency(t *testing.T) {
	tbl := E7Health(testCfg())
	rates := map[string]float64{}
	for _, row := range tbl.Rows {
		rates[row[0]] = atof(t, row[4])
	}
	if rates["0"] != 0 {
		t.Errorf("never-distill capture rate = %v, want 0", rates["0"])
	}
	if !(rates["5"] > rates["50"]) {
		t.Errorf("capture(5)=%v not above capture(50)=%v", rates["5"], rates["50"])
	}
}

func TestE8FungiBounded(t *testing.T) {
	tbl := E8SteadyState(testCfg())
	for _, row := range tbl.Rows {
		bounded := row[4] == "true"
		if row[0] == "none" && bounded {
			t.Error("'none' reported bounded")
		}
		if row[0] != "none" && !bounded {
			t.Errorf("%s reported unbounded", row[0])
		}
	}
}

func TestE9MassFallsFreshnessFloors(t *testing.T) {
	tbl := E9FreshnessTradeoff(testCfg())
	prevMass := atof(t, tbl.Rows[0][2])
	for _, row := range tbl.Rows[1:] {
		mass := atof(t, row[2])
		if mass > prevMass {
			t.Errorf("answer mass rose with harsher decay: %v -> %v", prevMass, mass)
		}
		prevMass = mass
	}
	for _, row := range tbl.Rows {
		if f := atof(t, row[3]); f < 0.42 {
			t.Errorf("rate %s: survivor mean freshness %v below the 0.5 floor", row[0], f)
		}
	}
	// The harshest rate leaves a strictly smaller answer than the mildest.
	if !(atof(t, tbl.Rows[len(tbl.Rows)-1][1]) < atof(t, tbl.Rows[0][1])) {
		t.Error("answer size did not shrink with decay aggressiveness")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "long_header"},
		Notes:  []string{"a note"},
	}
	tbl.Add(1, 2.5)
	tbl.Add("wide-cell-content", 3)
	out := tbl.String()
	for _, want := range []string{"== X: demo ==", "long_header", "wide-cell-content", "# a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if tbl.Cell(0, 1) != "2.5" {
		t.Errorf("Cell = %q", tbl.Cell(0, 1))
	}
}
