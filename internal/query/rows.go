package query

import (
	"fungusdb/internal/tuple"
)

// Rows is the pull-based result of executing a prepared plan. The
// iteration contract follows database/sql:
//
//	rows, err := pq.Execute(params...)
//	defer rows.Close()
//	for rows.Next() {
//	    use rows.Values() (projected) or rows.Tuple() (raw plans)
//	}
//	if err := rows.Err(); err != nil { ... }
//
// For streaming plans the rows arrive from per-shard scan goroutines as
// they are produced (k-way merged back into global insertion order), so
// a large answer never materialises in one place; Close releases the
// producers early when the caller stops before exhaustion. Plans with a
// barrier (ORDER BY, aggregation, consume, ask) are memory-backed and
// Close is a no-op. A Rows is not safe for concurrent use.
type Rows struct {
	cols   []string
	mode   Mode
	src    rowSource
	vals   []tuple.Value
	tp     *tuple.Tuple
	err    error
	done   bool
	closed bool
}

// rowSource feeds a Rows. next sets r.vals/r.tp and returns true, or
// returns false at end of stream (setting r.err on failure).
type rowSource interface {
	next(r *Rows) bool
	close() error
	scanned() int
}

// Cols returns the output column names (nil for raw tuple scans).
func (r *Rows) Cols() []string { return r.cols }

// Mode returns the executed plan's read semantics.
func (r *Rows) Mode() Mode { return r.mode }

// Next advances to the next row, reporting whether one is available.
// Once it returns false, check Err.
func (r *Rows) Next() bool {
	if r.done || r.closed {
		return false
	}
	if !r.src.next(r) {
		r.done = true
		r.vals, r.tp = nil, nil
		return false
	}
	return true
}

// Values returns the current projected row. It is valid until the next
// Next call; nil for raw plans (use Tuple).
func (r *Rows) Values() []tuple.Value { return r.vals }

// Tuple returns the current whole tuple for raw plans (Query-style
// scans); nil when the plan has a projection stage.
func (r *Rows) Tuple() *tuple.Tuple { return r.tp }

// Err returns the first error hit while producing rows. For streaming
// plans an error in one shard surfaces after the remaining shards'
// rows drain, so callers must always check Err after Next returns
// false before trusting the row set.
func (r *Rows) Err() error { return r.err }

// Scanned returns the number of live tuples examined. It is complete
// only after Next has returned false (or Close ran).
func (r *Rows) Scanned() int { return r.src.scanned() }

// Close releases the result early: streaming producers are signalled,
// drained and joined. It is idempotent and returns Err.
func (r *Rows) Close() error {
	if !r.closed {
		r.closed = true
		if cerr := r.src.close(); r.err == nil {
			r.err = cerr
		}
	}
	return r.err
}

// --- memory-backed sources -------------------------------------------

// valueSource serves pre-computed value rows (grids, ask answers).
type valueSource struct {
	rows     [][]tuple.Value
	i        int
	scannedN int
}

func (s *valueSource) next(r *Rows) bool {
	if s.i >= len(s.rows) {
		return false
	}
	r.vals, r.tp = s.rows[s.i], nil
	s.i++
	return true
}

func (s *valueSource) close() error { return nil }
func (s *valueSource) scanned() int { return s.scannedN }

// NewValueRows wraps materialised value rows (an executed grid, an ask
// answer) as a Rows.
func NewValueRows(cols []string, mode Mode, rows [][]tuple.Value, scanned int) *Rows {
	return &Rows{cols: cols, mode: mode, src: &valueSource{rows: rows, scannedN: scanned}}
}

// NewGridRows wraps a materialised Grid as a Rows.
func NewGridRows(g *Grid, mode Mode, scanned int) *Rows {
	return &Rows{cols: g.Cols, mode: mode, src: &valueSource{rows: g.Rows, scannedN: scanned}}
}

// tupleSource serves a materialised matching set, optionally projected.
type tupleSource struct {
	tuples   []tuple.Tuple
	i        int
	project  func(*tuple.Tuple) ([]tuple.Value, error) // nil = raw
	scannedN int
}

func (s *tupleSource) next(r *Rows) bool {
	if s.i >= len(s.tuples) {
		return false
	}
	tp := &s.tuples[s.i]
	s.i++
	if s.project != nil {
		vals, err := s.project(tp)
		if err != nil {
			r.err = err
			return false
		}
		r.vals = vals
	} else {
		r.vals = nil
	}
	r.tp = tp
	return true
}

func (s *tupleSource) close() error { return nil }
func (s *tupleSource) scanned() int { return s.scannedN }

// NewTupleRows wraps a materialised matching set as a Rows. A nil
// project yields raw tuples only.
func NewTupleRows(cols []string, mode Mode, tuples []tuple.Tuple, project func(*tuple.Tuple) ([]tuple.Value, error), scanned int) *Rows {
	return &Rows{cols: cols, mode: mode, src: &tupleSource{tuples: tuples, project: project, scannedN: scanned}}
}

// --- shard-streaming source ------------------------------------------

// Stream wires a shard-parallel scan into a Rows. The engine owns the
// producer goroutines; this type owns the pull side.
type Stream struct {
	// Cols are the output column names (nil for raw plans).
	Cols []string
	// Mode is the plan's read semantics.
	Mode Mode
	// Batches carries each shard's matching tuples as ID-ascending
	// batches; every channel is closed when its shard's scan ends.
	Batches []<-chan []tuple.Tuple
	// Done is closed exactly once by the Rows to abort the producers
	// (early Close, limit reached, projection error).
	Done chan struct{}
	// Wait blocks until every producer exited and returns the total
	// live tuples scanned plus the first scan error.
	Wait func() (scanned int, err error)
	// Project maps a matching tuple to an output row; nil = raw.
	Project func(*tuple.Tuple) ([]tuple.Value, error)
	// Limit caps the emitted rows (0 = unlimited).
	Limit int
}

// NewStreamRows builds the pull-based k-way merge over per-shard batch
// channels: each shard's batches are ID-ascending, so emitting the
// smallest head ID reproduces global insertion order — the same order
// the materialised path's mergeByID produces.
func NewStreamRows(s Stream) *Rows {
	return &Rows{cols: s.Cols, mode: s.Mode, src: &streamSource{
		batches: s.Batches,
		done:    s.Done,
		wait:    s.Wait,
		project: s.Project,
		limit:   s.Limit,
	}}
}

type streamSource struct {
	batches []<-chan []tuple.Tuple
	heads   [][]tuple.Tuple // current batch per shard; nil once its channel closed
	idx     []int           // cursor into heads[i]
	done    chan struct{}
	wait    func() (int, error)
	project func(*tuple.Tuple) ([]tuple.Value, error)
	limit   int
	emitted int
	started bool
	stopped bool
	total   int
	waitErr error
}

func (s *streamSource) next(r *Rows) bool {
	if s.stopped {
		return false
	}
	if !s.started {
		s.started = true
		s.heads = make([][]tuple.Tuple, len(s.batches))
		s.idx = make([]int, len(s.batches))
		for i := range s.batches {
			s.refill(i)
		}
	}
	if s.limit > 0 && s.emitted >= s.limit {
		if err := s.shutdown(); err != nil && r.err == nil {
			r.err = err
		}
		return false
	}
	best := -1
	for i, h := range s.heads {
		if h == nil {
			continue
		}
		if best < 0 || h[s.idx[i]].ID < s.heads[best][s.idx[best]].ID {
			best = i
		}
	}
	if best < 0 {
		if err := s.shutdown(); err != nil && r.err == nil {
			r.err = err
		}
		return false
	}
	tp := &s.heads[best][s.idx[best]]
	s.idx[best]++
	if s.idx[best] == len(s.heads[best]) {
		if s.limit == 0 || s.emitted+1 < s.limit {
			s.refill(best)
		} else {
			// This emission reaches the limit: the merge will never
			// need another batch, so don't block on a producer that
			// may be mid-way through a long matchless stretch — the
			// next call shuts the stream down and cancels them.
			s.heads[best] = nil
		}
	}
	if s.project != nil {
		vals, err := s.project(tp)
		if err != nil {
			r.err = err
			_ = s.shutdown()
			return false
		}
		r.vals = vals
	} else {
		r.vals = nil
	}
	r.tp = tp
	s.emitted++
	return true
}

// refill receives shard i's next batch, marking the shard finished
// when its channel closes.
func (s *streamSource) refill(i int) {
	for {
		b, ok := <-s.batches[i]
		if !ok {
			s.heads[i] = nil
			return
		}
		if len(b) > 0 {
			s.heads[i] = b
			s.idx[i] = 0
			return
		}
	}
}

// shutdown aborts and joins the producers: signal done, drain every
// channel so no producer stays blocked on a send, then collect the
// scan error and totals. Idempotent; returns the first scan error.
func (s *streamSource) shutdown() error {
	if s.stopped {
		return s.waitErr
	}
	s.stopped = true
	close(s.done)
	for _, ch := range s.batches {
		for range ch { // drain until closed so producers unblock
		}
	}
	s.total, s.waitErr = s.wait()
	return s.waitErr
}

func (s *streamSource) close() error { return s.shutdown() }

func (s *streamSource) scanned() int { return s.total }
