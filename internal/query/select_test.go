package query

import (
	"strings"
	"testing"
	"testing/quick"

	"fungusdb/internal/tuple"
)

var clickSchema = tuple.MustSchema(
	tuple.Column{Name: "user", Kind: tuple.KindString},
	tuple.Column{Name: "url", Kind: tuple.KindString},
	tuple.Column{Name: "dwell", Kind: tuple.KindInt},
)

func clickTuples() []tuple.Tuple {
	rows := []struct {
		user, url string
		dwell     int64
	}{
		{"alice", "/home", 100},
		{"bob", "/home", 200},
		{"alice", "/shop", 300},
		{"carol", "/home", 400},
		{"alice", "/home", 500},
		{"bob", "/shop", 600},
	}
	out := make([]tuple.Tuple, len(rows))
	for i, r := range rows {
		out[i] = tuple.New(tuple.ID(i), 1, []tuple.Value{
			tuple.String_(r.user), tuple.String_(r.url), tuple.Int(r.dwell),
		})
	}
	return out
}

func mustExec(t *testing.T, sql string) *Grid {
	t.Helper()
	stmt, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", sql, err)
	}
	g, err := Execute(stmt, clickSchema, clickTuples())
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return g
}

func TestSelectStarProjection(t *testing.T) {
	g := mustExec(t, "SELECT * FROM clicks")
	if len(g.Cols) != 3 || g.Cols[0] != "user" {
		t.Fatalf("cols = %v", g.Cols)
	}
	if len(g.Rows) != 6 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	if g.Rows[0][0].AsString() != "alice" {
		t.Errorf("row 0 = %v", g.Rows[0])
	}
}

func TestSelectExprTargetsAndAlias(t *testing.T) {
	g := mustExec(t, "SELECT user, dwell * 2 AS double_dwell FROM clicks LIMIT 2")
	if len(g.Cols) != 2 || g.Cols[1] != "double_dwell" {
		t.Fatalf("cols = %v", g.Cols)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	if g.Rows[0][1].AsInt() != 200 {
		t.Errorf("double_dwell = %v", g.Rows[0][1])
	}
}

func TestSelectWhere(t *testing.T) {
	stmt, err := ParseSelect("SELECT url FROM clicks WHERE user = 'alice'")
	if err != nil {
		t.Fatal(err)
	}
	// Execute receives pre-filtered tuples in the engine; simulate here.
	pred, err := FromExpr(stmt.Where, clickSchema)
	if err != nil {
		t.Fatal(err)
	}
	var filtered []tuple.Tuple
	for _, tp := range clickTuples() {
		if ok, _ := pred.Match(&tp); ok {
			filtered = append(filtered, tp)
		}
	}
	g, err := Execute(stmt, clickSchema, filtered)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Errorf("alice rows = %d", len(g.Rows))
	}
}

func TestSelectGroupByAggregates(t *testing.T) {
	g := mustExec(t, "SELECT user, COUNT(*), SUM(dwell) AS total, AVG(dwell) AS avg, MIN(dwell) AS lo, MAX(dwell) AS hi FROM clicks GROUP BY user")
	if len(g.Rows) != 3 {
		t.Fatalf("groups = %d", len(g.Rows))
	}
	// Default order: by group key -> alice, bob, carol.
	alice := g.Rows[0]
	if alice[0].AsString() != "alice" || alice[1].AsInt() != 3 {
		t.Fatalf("alice row = %v", alice)
	}
	if alice[2].AsFloat() != 900 || alice[3].AsFloat() != 300 {
		t.Errorf("alice sum/avg = %v/%v", alice[2], alice[3])
	}
	if alice[4].AsInt() != 100 || alice[5].AsInt() != 500 {
		t.Errorf("alice min/max = %v/%v", alice[4], alice[5])
	}
	carol := g.Rows[2]
	if carol[0].AsString() != "carol" || carol[1].AsInt() != 1 {
		t.Errorf("carol row = %v", carol)
	}
}

func TestSelectGlobalAggregate(t *testing.T) {
	g := mustExec(t, "SELECT COUNT(*), SUM(dwell) FROM clicks")
	if len(g.Rows) != 1 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	if g.Rows[0][0].AsInt() != 6 || g.Rows[0][1].AsFloat() != 2100 {
		t.Errorf("row = %v", g.Rows[0])
	}
}

func TestSelectGlobalAggregateEmptyInput(t *testing.T) {
	stmt, _ := ParseSelect("SELECT COUNT(*) FROM clicks")
	g, err := Execute(stmt, clickSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 1 || g.Rows[0][0].AsInt() != 0 {
		t.Errorf("empty aggregate = %v", g.Rows)
	}
}

func TestSelectOrderBy(t *testing.T) {
	g := mustExec(t, "SELECT user, dwell FROM clicks ORDER BY dwell DESC LIMIT 3")
	want := []int64{600, 500, 400}
	for i, w := range want {
		if g.Rows[i][1].AsInt() != w {
			t.Errorf("row %d dwell = %v, want %d", i, g.Rows[i][1], w)
		}
	}
	// Multi-key: url asc, dwell desc.
	g = mustExec(t, "SELECT url, dwell FROM clicks ORDER BY url, dwell DESC")
	if g.Rows[0][0].AsString() != "/home" || g.Rows[0][1].AsInt() != 500 {
		t.Errorf("first row = %v", g.Rows[0])
	}
	last := g.Rows[len(g.Rows)-1]
	if last[0].AsString() != "/shop" || last[1].AsInt() != 300 {
		t.Errorf("last row = %v", last)
	}
}

func TestSelectGroupOrderByAggregate(t *testing.T) {
	g := mustExec(t, "SELECT url, COUNT(*) AS hits FROM clicks GROUP BY url ORDER BY hits DESC")
	if g.Rows[0][0].AsString() != "/home" || g.Rows[0][1].AsInt() != 4 {
		t.Errorf("top url = %v", g.Rows[0])
	}
}

func TestSelectParseErrors(t *testing.T) {
	bad := []string{
		"",
		"INSERT INTO x",
		"SELECT FROM clicks",
		"SELECT * clicks",
		"SELECT * FROM",
		"SELECT * FROM clicks GROUP user",
		"SELECT * FROM clicks ORDER dwell",
		"SELECT * FROM clicks LIMIT x",
		"SELECT * FROM clicks LIMIT -1",
		"SELECT * FROM clicks trailing",
		"SELECT SUM(*) FROM clicks",
		"SELECT COUNT(dwell FROM clicks",
		"SELECT * FROM clicks GROUP BY user", // star with grouping
	}
	for _, src := range bad {
		stmt, err := ParseSelect(src)
		if err != nil {
			continue
		}
		if _, err := Execute(stmt, clickSchema, clickTuples()); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestSelectExecuteErrors(t *testing.T) {
	bad := []string{
		"SELECT nosuch FROM clicks",
		"SELECT SUM(user) FROM clicks",
		"SELECT dwell FROM clicks GROUP BY user", // non-grouped plain target
		"SELECT user, user FROM clicks",          // duplicate alias
		"SELECT user FROM clicks ORDER BY dwell", // order by non-output col
		"SELECT * FROM clicks GROUP BY nosuch",
	}
	for _, src := range bad {
		stmt, err := ParseSelect(src)
		if err != nil {
			continue
		}
		if _, err := Execute(stmt, clickSchema, clickTuples()); err == nil {
			t.Errorf("%q executed", src)
		}
	}
}

func TestSelectConsumeFlagParsed(t *testing.T) {
	stmt, err := ParseSelect("SELECT CONSUME * FROM clicks WHERE dwell > 100")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.Consume {
		t.Error("CONSUME not parsed")
	}
	stmt, _ = ParseSelect("SELECT * FROM clicks")
	if stmt.Consume {
		t.Error("Consume true without keyword")
	}
}

func TestGridRender(t *testing.T) {
	g := mustExec(t, "SELECT user, COUNT(*) AS hits FROM clicks GROUP BY user")
	var b strings.Builder
	g.Render(&b)
	out := b.String()
	for _, want := range []string{"user", "hits", "alice", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLikeOperator(t *testing.T) {
	tp := testTuple("sensor-42", 1, 1, true)
	cases := []struct {
		src  string
		want bool
	}{
		{"device LIKE 'sensor-%'", true},
		{"device LIKE '%-42'", true},
		{"device LIKE 'sensor-__'", true},
		{"device LIKE 'sensor-_'", false},
		{"device LIKE '%s%42%'", true},
		{"device LIKE 'nope%'", false},
		{"device NOT LIKE 'nope%'", true},
		{"device LIKE 'sensor-42'", true},
		{"device LIKE ''", false},
		{"'' LIKE '%'", true},
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestInOperator(t *testing.T) {
	tp := testTuple("a", 2.5, 3, true)
	cases := []struct {
		src  string
		want bool
	}{
		{"count IN (1, 2, 3)", true},
		{"count IN (1, 2)", false},
		{"count NOT IN (1, 2)", true},
		{"device IN ('a', 'b')", true},
		{"device IN ('x')", false},
		{"temp IN (2.5)", true},
		{"count IN (3.0)", true},       // numeric cross-kind equality
		{"count IN ('3', 3)", true},    // incomparable member skipped
		{"count IN ('3')", false},      // only incomparable members
		{"count IN (count, 99)", true}, // non-literal members allowed
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestBetweenOperator(t *testing.T) {
	tp := testTuple("a", 2.5, 3, true)
	cases := []struct {
		src  string
		want bool
	}{
		{"temp BETWEEN 2 AND 3", true},
		{"temp BETWEEN 2.5 AND 2.5", true},
		{"temp BETWEEN 3 AND 4", false},
		{"temp NOT BETWEEN 3 AND 4", true},
		{"count BETWEEN temp AND 10", true},
		{"device BETWEEN 'a' AND 'b'", true},
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPostfixOperatorErrors(t *testing.T) {
	for _, src := range []string{
		"temp LIKE 'x'",        // LIKE on float
		"device LIKE 5",        // non-string pattern
		"count IN (",           // unterminated list
		"count IN ()",          // empty list
		"count BETWEEN 1 OR 2", // wrong connective
		"count NOT 5",          // stray NOT
	} {
		p, err := Compile(src, testSchema)
		if err != nil {
			continue
		}
		tp := testTuple("a", 1, 1, true)
		if _, err := p.Match(&tp); err == nil {
			t.Errorf("%q evaluated", src)
		}
	}
}

func TestLikeInStringsRoundTrip(t *testing.T) {
	for _, src := range []string{
		"device LIKE 'a%'",
		"count IN (1, 2, 3)",
	} {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse %q -> %q: %v", src, e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip %q -> %q", e1.String(), e2.String())
		}
	}
}

// Property: likeMatch with a bare '%' pattern accepts everything, and a
// literal pattern accepts exactly itself.
func TestQuickLikeIdentityAndWildcard(t *testing.T) {
	f := func(s string) bool {
		if !likeMatch(s, "%") {
			return false
		}
		clean := strings.NewReplacer("%", "", "_", "").Replace(s)
		return likeMatch(clean, clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prefix% matches exactly strings with that prefix.
func TestQuickLikePrefix(t *testing.T) {
	f := func(prefix, rest string) bool {
		p := strings.NewReplacer("%", "", "_", "").Replace(prefix)
		return likeMatch(p+rest, p+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
