package query

import (
	"strings"
	"testing"

	"fungusdb/internal/tuple"
)

func TestLimitPlaceholderParses(t *testing.T) {
	stmt, err := ParseSelect("SELECT k FROM t WHERE k > ? LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Params != 2 {
		t.Errorf("Params = %d, want 2", stmt.Params)
	}
	if stmt.LimitParam != 1 {
		t.Errorf("LimitParam = %d, want 1 (assigned in parse order)", stmt.LimitParam)
	}
	if stmt.Limit != 0 {
		t.Errorf("Limit = %d, want 0 until bind", stmt.Limit)
	}
	// A literal limit keeps the sentinel.
	stmt, err = ParseSelect("SELECT k FROM t LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.LimitParam != -1 || stmt.Limit != 5 {
		t.Errorf("literal limit parsed as %d/%d", stmt.Limit, stmt.LimitParam)
	}
}

func TestLimitPlaceholderBind(t *testing.T) {
	st, err := ParseStatement("SELECT k FROM t WHERE k >= ? ORDER BY k LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := st.Plan(matchSchema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumParams() != 2 {
		t.Fatalf("NumParams = %d", plan.NumParams())
	}
	// Arity is checked by BindCheck like any placeholder.
	if err := plan.BindCheck([]tuple.Value{tuple.Int(1)}); err == nil {
		t.Error("short param list accepted")
	}
	// Type and sign are checked at bind.
	if _, err := plan.Bind([]tuple.Value{tuple.Int(1), tuple.String_("x")}); err == nil ||
		!strings.Contains(err.Error(), "LIMIT wants INT") {
		t.Errorf("string limit: %v", err)
	}
	if _, err := plan.Bind([]tuple.Value{tuple.Int(1), tuple.Int(-3)}); err == nil ||
		!strings.Contains(err.Error(), ">= 0") {
		t.Errorf("negative limit: %v", err)
	}
	bound, err := plan.Bind([]tuple.Value{tuple.Int(1), tuple.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Limit() != 7 {
		t.Errorf("bound Limit = %d, want 7", bound.Limit())
	}
	if plan.Limit() != 0 {
		t.Errorf("cached plan Limit mutated to %d", plan.Limit())
	}
	// Binding zero means unlimited, like a missing LIMIT clause.
	bound, err = plan.Bind([]tuple.Value{tuple.Int(1), tuple.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Limit() != 0 {
		t.Errorf("zero limit = %d", bound.Limit())
	}
}

func TestLimitPlaceholderGroupedFinish(t *testing.T) {
	// The bound limit must reach the aggregator's finishing stages.
	st, err := ParseStatement("SELECT name, COUNT(*) AS n FROM t GROUP BY name ORDER BY n DESC LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := st.Plan(matchSchema)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := plan.Bind([]tuple.Value{tuple.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	g, err := bound.Finish(matchTuples(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Errorf("grouped rows = %d, want LIMIT 2", len(g.Rows))
	}
}
