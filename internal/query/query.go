package query

import (
	"fmt"

	"fungusdb/internal/tuple"
)

// Mode selects query semantics.
type Mode uint8

const (
	// Peek is the classical non-destructive read, the paper's "before"
	// world and the baseline in experiment E4.
	Peek Mode = iota
	// Consume implements the second natural law: "all tuples in R
	// satisfying P are discarded immediately" once answered.
	Consume
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Consume {
		return "consume"
	}
	return "peek"
}

// Predicate is a WHERE expression validated against one schema. It is
// immutable and safe for concurrent use. Compilation also lowers the
// expression into the typed closure chain and segment prune checks the
// engine's scan paths use (see match.go, prune.go).
type Predicate struct {
	expr   Expr
	schema *tuple.Schema
	src    string
	match  matchFn
	pruner *Pruner
	vec    *vecProg
}

// Compile parses src and checks every column reference against schema.
// Empty src compiles to the always-true predicate.
func Compile(src string, schema *tuple.Schema) (*Predicate, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := checkCols(e, schema); err != nil {
		return nil, err
	}
	return newPredicate(e, schema, src), nil
}

func newPredicate(e Expr, schema *tuple.Schema, src string) *Predicate {
	return &Predicate{
		expr:   e,
		schema: schema,
		src:    src,
		match:  compileMatch(e, schema),
		pruner: compilePrune(e, schema),
		vec:    compileVecMatch(e, schema),
	}
}

// MustCompile is Compile that panics on error.
func MustCompile(src string, schema *tuple.Schema) *Predicate {
	p, err := Compile(src, schema)
	if err != nil {
		panic(err)
	}
	return p
}

// FromExpr wraps an already-parsed expression (e.g. a SelectStmt's
// WHERE clause) as a schema-checked predicate. A nil expression yields
// the always-true predicate.
func FromExpr(e Expr, schema *tuple.Schema) (*Predicate, error) {
	if e == nil {
		e = Lit{V: tuple.Bool(true)}
	}
	if err := checkCols(e, schema); err != nil {
		return nil, err
	}
	return newPredicate(e, schema, e.String()), nil
}

func checkCols(e Expr, schema *tuple.Schema) error {
	switch n := e.(type) {
	case Col:
		if n.Name == tuple.SysTick || n.Name == tuple.SysFresh || n.Name == tuple.SysID {
			return nil
		}
		if schema.Index(n.Name) < 0 {
			return fmt.Errorf("query: unknown column %q (schema: %s)", n.Name, schema)
		}
	case Bin:
		if err := checkCols(n.L, schema); err != nil {
			return err
		}
		return checkCols(n.R, schema)
	case Not:
		return checkCols(n.X, schema)
	case Neg:
		return checkCols(n.X, schema)
	case Like:
		if err := checkCols(n.X, schema); err != nil {
			return err
		}
		return checkCols(n.Pattern, schema)
	case In:
		if err := checkCols(n.X, schema); err != nil {
			return err
		}
		for _, e := range n.List {
			if err := checkCols(e, schema); err != nil {
				return err
			}
		}
	}
	return nil
}

// Match evaluates the predicate for one tuple. Non-boolean results are
// a type error.
func (p *Predicate) Match(tp *tuple.Tuple) (bool, error) {
	if p.match != nil {
		return p.match(tp)
	}
	v, err := p.expr.Eval(TupleEnv{Schema: p.schema, Tuple: tp})
	if err != nil {
		return false, err
	}
	if v.Kind() != tuple.KindBool {
		return false, fmt.Errorf("query: predicate yields %s, want BOOL", v.Kind())
	}
	return v.AsBool(), nil
}

// Source returns the original WHERE source text.
func (p *Predicate) Source() string { return p.src }

// Expr exposes the compiled tree (read-only) for explainers.
func (p *Predicate) Expr() Expr { return p.expr }

// Result is a query answer set A plus bookkeeping the experiments use.
type Result struct {
	Schema  *tuple.Schema
	Tuples  []tuple.Tuple // answer set, insertion order
	Scanned int           // live tuples examined
	Mode    Mode
}

// Len returns the answer set size.
func (r *Result) Len() int { return len(r.Tuples) }

// FreshnessMass returns the summed freshness of the answer, the metric
// E9 charts: answers over rotting data weigh less.
func (r *Result) FreshnessMass() float64 {
	var m float64
	for i := range r.Tuples {
		m += float64(r.Tuples[i].F)
	}
	return m
}

// MeanFreshness returns the average freshness of the answer, or 0 for an
// empty result.
func (r *Result) MeanFreshness() float64 {
	if len(r.Tuples) == 0 {
		return 0
	}
	return r.FreshnessMass() / float64(len(r.Tuples))
}

// Bytes returns the approximate answer payload size.
func (r *Result) Bytes() int {
	n := 0
	for i := range r.Tuples {
		n += r.Tuples[i].Size()
	}
	return n
}

// Project returns the values of the named columns for row i, resolving
// system columns. It is the target-expression T of Q(T,R,P) in its
// simplest useful form.
func (r *Result) Project(i int, cols []string) ([]tuple.Value, error) {
	tp := &r.Tuples[i]
	out := make([]tuple.Value, len(cols))
	env := TupleEnv{Schema: r.Schema, Tuple: tp}
	for j, c := range cols {
		v, err := env.Lookup(c)
		if err != nil {
			return nil, err
		}
		out[j] = v
	}
	return out, nil
}

// Agg accumulates the running aggregates of one numeric column. The
// zero value is ready to use.
type Agg struct {
	n        uint64
	sum      float64
	min, max float64
}

// Observe folds one value into the aggregate; non-numeric values are
// rejected.
func (a *Agg) Observe(v tuple.Value) error {
	f, ok := v.Numeric()
	if !ok {
		return fmt.Errorf("query: aggregate over non-numeric %s", v.Kind())
	}
	if a.n == 0 || f < a.min {
		a.min = f
	}
	if a.n == 0 || f > a.max {
		a.max = f
	}
	a.n++
	a.sum += f
	return nil
}

// Count returns the number of observations.
func (a *Agg) Count() uint64 { return a.n }

// Sum returns the observation total.
func (a *Agg) Sum() float64 { return a.sum }

// Min returns the smallest observation, or 0 before any Observe.
func (a *Agg) Min() float64 { return a.min }

// Max returns the largest observation, or 0 before any Observe.
func (a *Agg) Max() float64 { return a.max }

// Mean returns the average observation, or 0 before any Observe.
func (a *Agg) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Aggregate computes Agg over one column of a result. The column may be
// a system column.
func (r *Result) Aggregate(col string) (*Agg, error) {
	var a Agg
	for i := range r.Tuples {
		env := TupleEnv{Schema: r.Schema, Tuple: &r.Tuples[i]}
		v, err := env.Lookup(col)
		if err != nil {
			return nil, err
		}
		if err := a.Observe(v); err != nil {
			return nil, err
		}
	}
	return &a, nil
}
