// Package query implements the paper's second natural law. Queries are
// select-from-where expressions A = Q(T,R,P): a predicate P compiled
// from a small SQL-like WHERE grammar, a target projection T, and an
// execution mode. In Consume mode "the extent of table R is replaced by
// each query Q into the union of the answer set of Q and the reduced
// extent of R" — matching tuples are removed as they are answered. Peek
// mode is the classical non-destructive read, kept as the baseline.
//
// The engine (internal/core) owns execution; this package provides the
// statement grammar (with `?` placeholders), the compiled Plan —
// schema validation, projection, aggregation and routing decided once
// at prepare time — and the pull-based Rows iterator the executor
// streams results through. See docs/QUERY.md for the full lifecycle.
package query

import (
	"fmt"

	"fungusdb/internal/tuple"
)

// Env resolves column references during evaluation.
type Env interface {
	// Lookup returns the value of the named column. The reserved names
	// "_t" (insertion tick as INT) and "_f" (freshness as FLOAT) must
	// be supported.
	Lookup(name string) (tuple.Value, error)
}

// TupleEnv adapts a tuple + schema pair into an Env. Params, when
// non-nil, binds the statement's positional `?` placeholders.
type TupleEnv struct {
	Schema *tuple.Schema
	Tuple  *tuple.Tuple
	Params []tuple.Value
}

// Param implements ParamResolver.
func (e TupleEnv) Param(i int) (tuple.Value, error) {
	if i < 0 || i >= len(e.Params) {
		return tuple.Value{}, fmt.Errorf("query: parameter ?%d is not bound (%d given)", i+1, len(e.Params))
	}
	return e.Params[i], nil
}

// Lookup implements Env.
func (e TupleEnv) Lookup(name string) (tuple.Value, error) {
	switch name {
	case tuple.SysTick:
		return tuple.Int(int64(e.Tuple.T)), nil
	case tuple.SysFresh:
		return tuple.Float(float64(e.Tuple.F)), nil
	case tuple.SysID:
		return tuple.Int(int64(e.Tuple.ID)), nil
	}
	i := e.Schema.Index(name)
	if i < 0 {
		return tuple.Value{}, fmt.Errorf("query: unknown column %q", name)
	}
	return e.Tuple.Attrs[i], nil
}

// Expr is a node of the compiled expression tree.
type Expr interface {
	// Eval computes the node's value for one tuple.
	Eval(env Env) (tuple.Value, error)
	// String renders the node as parseable source.
	String() string
}

// Lit is a literal constant.
type Lit struct{ V tuple.Value }

// Eval implements Expr.
func (l Lit) Eval(Env) (tuple.Value, error) { return l.V, nil }

// String implements Expr.
func (l Lit) String() string { return l.V.String() }

// Col is a column reference.
type Col struct{ Name string }

// Eval implements Expr.
func (c Col) Eval(env Env) (tuple.Value, error) { return env.Lookup(c.Name) }

// String implements Expr.
func (c Col) String() string { return c.Name }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators in precedence groups (see parser).
const (
	OpInvalid BinOp = iota
	OpOr
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

var binOpNames = map[BinOp]string{
	OpOr: "OR", OpAnd: "AND",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
}

// String implements fmt.Stringer.
func (op BinOp) String() string {
	if s, ok := binOpNames[op]; ok {
		return s
	}
	return "?"
}

// Bin is a binary operation.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// String implements Expr.
func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Eval implements Expr.
func (b Bin) Eval(env Env) (tuple.Value, error) {
	switch b.Op {
	case OpAnd, OpOr:
		return b.evalLogical(env)
	}
	lv, err := b.L.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	rv, err := b.R.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	switch b.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		cmp, ok := lv.Compare(rv)
		if !ok {
			return tuple.Value{}, fmt.Errorf("query: cannot compare %s and %s", lv.Kind(), rv.Kind())
		}
		var out bool
		switch b.Op {
		case OpEq:
			out = cmp == 0
		case OpNe:
			out = cmp != 0
		case OpLt:
			out = cmp < 0
		case OpLe:
			out = cmp <= 0
		case OpGt:
			out = cmp > 0
		case OpGe:
			out = cmp >= 0
		}
		return tuple.Bool(out), nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(b.Op, lv, rv)
	}
	return tuple.Value{}, fmt.Errorf("query: unknown operator %v", b.Op)
}

// evalLogical gives AND/OR short-circuit semantics.
func (b Bin) evalLogical(env Env) (tuple.Value, error) {
	lv, err := b.L.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	if lv.Kind() != tuple.KindBool {
		return tuple.Value{}, fmt.Errorf("query: %s needs BOOL operands, got %s", b.Op, lv.Kind())
	}
	if b.Op == OpAnd && !lv.AsBool() {
		return tuple.Bool(false), nil
	}
	if b.Op == OpOr && lv.AsBool() {
		return tuple.Bool(true), nil
	}
	rv, err := b.R.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	if rv.Kind() != tuple.KindBool {
		return tuple.Value{}, fmt.Errorf("query: %s needs BOOL operands, got %s", b.Op, rv.Kind())
	}
	return rv, nil
}

func evalArith(op BinOp, lv, rv tuple.Value) (tuple.Value, error) {
	// String concatenation via '+' as the single string operation.
	if op == OpAdd && lv.Kind() == tuple.KindString && rv.Kind() == tuple.KindString {
		return tuple.String_(lv.AsString() + rv.AsString()), nil
	}
	// Integer arithmetic stays exact when both operands are INT.
	if lv.Kind() == tuple.KindInt && rv.Kind() == tuple.KindInt {
		a, b := lv.AsInt(), rv.AsInt()
		switch op {
		case OpAdd:
			return tuple.Int(a + b), nil
		case OpSub:
			return tuple.Int(a - b), nil
		case OpMul:
			return tuple.Int(a * b), nil
		case OpDiv:
			if b == 0 {
				return tuple.Value{}, fmt.Errorf("query: division by zero")
			}
			return tuple.Int(a / b), nil
		case OpMod:
			if b == 0 {
				return tuple.Value{}, fmt.Errorf("query: modulo by zero")
			}
			return tuple.Int(a % b), nil
		}
	}
	a, aok := lv.Numeric()
	b, bok := rv.Numeric()
	if !aok || !bok {
		return tuple.Value{}, fmt.Errorf("query: %s needs numeric operands, got %s and %s", op, lv.Kind(), rv.Kind())
	}
	switch op {
	case OpAdd:
		return tuple.Float(a + b), nil
	case OpSub:
		return tuple.Float(a - b), nil
	case OpMul:
		return tuple.Float(a * b), nil
	case OpDiv:
		if b == 0 {
			return tuple.Value{}, fmt.Errorf("query: division by zero")
		}
		return tuple.Float(a / b), nil
	case OpMod:
		return tuple.Value{}, fmt.Errorf("query: %% needs INT operands")
	}
	return tuple.Value{}, fmt.Errorf("query: unknown arithmetic %v", op)
}

// Not negates a boolean operand.
type Not struct{ X Expr }

// Eval implements Expr.
func (n Not) Eval(env Env) (tuple.Value, error) {
	v, err := n.X.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	if v.Kind() != tuple.KindBool {
		return tuple.Value{}, fmt.Errorf("query: NOT needs BOOL, got %s", v.Kind())
	}
	return tuple.Bool(!v.AsBool()), nil
}

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// Neg negates a numeric operand.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n Neg) Eval(env Env) (tuple.Value, error) {
	v, err := n.X.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	switch v.Kind() {
	case tuple.KindInt:
		return tuple.Int(-v.AsInt()), nil
	case tuple.KindFloat:
		return tuple.Float(-v.AsFloat()), nil
	}
	return tuple.Value{}, fmt.Errorf("query: unary minus needs numeric, got %s", v.Kind())
}

// String implements Expr.
func (n Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }
