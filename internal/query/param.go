package query

import (
	"fmt"

	"fungusdb/internal/tuple"
)

// Param is a positional `?` placeholder in a prepared statement.
// Indices are assigned left to right in source order, starting at 0.
// Evaluation resolves the value through the Env, which must implement
// ParamResolver (TupleEnv does, via its Params field); evaluating a
// parameter that was never bound is an error, so a statement with
// placeholders can only run through the prepare/execute path.
type Param struct{ Index int }

// ParamResolver is the optional Env extension that resolves positional
// placeholders.
type ParamResolver interface {
	// Param returns the value bound to placeholder i (0-based).
	Param(i int) (tuple.Value, error)
}

// Eval implements Expr.
func (p Param) Eval(env Env) (tuple.Value, error) {
	if pr, ok := env.(ParamResolver); ok {
		return pr.Param(p.Index)
	}
	return tuple.Value{}, fmt.Errorf("query: parameter ?%d is not bound", p.Index+1)
}

// String implements Expr.
func (p Param) String() string { return "?" }

// bindExpr substitutes every placeholder under e with its bound value
// as a literal, returning the rewritten tree. The caller has already
// arity-checked params. Rebinding copies only the expression spine —
// a per-execute cost proportional to the (tiny) tree, which buys
// literal-speed evaluation on the per-tuple hot path: no parameter
// lookup, no resolver assertion, per scanned tuple.
func bindExpr(e Expr, params []tuple.Value) Expr {
	switch n := e.(type) {
	case Param:
		return Lit{V: params[n.Index]}
	case Bin:
		return Bin{Op: n.Op, L: bindExpr(n.L, params), R: bindExpr(n.R, params)}
	case Not:
		return Not{X: bindExpr(n.X, params)}
	case Neg:
		return Neg{X: bindExpr(n.X, params)}
	case Like:
		return Like{X: bindExpr(n.X, params), Pattern: bindExpr(n.Pattern, params)}
	case In:
		list := make([]Expr, len(n.List))
		for i, item := range n.List {
			list[i] = bindExpr(item, params)
		}
		return In{X: bindExpr(n.X, params), List: list}
	}
	return e
}
