package query

import (
	"testing"

	"fungusdb/internal/tuple"
)

// FuzzParse is the native fuzz target over every parser entry point:
// the WHERE-expression grammar, the SELECT statement grammar and the
// ask-question grammar must be total — any input yields a value or an
// error, never a panic — and everything that parses must also survive
// compilation against a schema.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"a = 1",
		"temp > 30 AND device LIKE 'sensor-%'",
		"dwell NOT IN (1, 2, 3) OR NOT (x BETWEEN -1 AND 1e3)",
		"dwell > ? AND user = ?",
		"SELECT * FROM t",
		"SELECT CONSUME device, COUNT(*) AS n FROM t WHERE f > ? GROUP BY device ORDER BY n DESC LIMIT 10",
		"SELECT SUM(a + b * -c) FROM t WHERE s = 'it''s'",
		"count",
		"q:temp:0.95",
		"has:device:?",
		"top:device:5",
	} {
		f.Add(seed)
	}
	schema := tuple.MustSchema(
		tuple.Column{Name: "device", Kind: tuple.KindString},
		tuple.Column{Name: "temp", Kind: tuple.KindFloat},
		tuple.Column{Name: "n", Kind: tuple.KindInt},
		tuple.Column{Name: "ok", Kind: tuple.KindBool},
	)
	f.Fuzz(func(t *testing.T, src string) {
		if e, err := Parse(src); err == nil && e == nil {
			t.Fatalf("Parse(%q) = nil, nil", src)
		}
		if stmt, err := ParseStatement(src); err == nil {
			// Whatever parses must compile or error cleanly, and a
			// compiled plan must bind-check without panicking.
			if plan, err := stmt.Plan(schema); err == nil {
				_ = plan.BindCheck(nil)
				_ = plan.Cols()
			}
		}
		if stmt, err := ParseAskStatement("c", src); err == nil {
			_, _ = stmt.Plan(schema)
		}
	})
}
