package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokOp     // one of = != < <= > >= + - * / % ( )
	tokAnd    // keyword AND
	tokOr     // keyword OR
	tokNot    // keyword NOT
	tokTrue   // keyword TRUE
	tokFalse  // keyword FALSE
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokQMark  // ? positional placeholder
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset in the source, for error messages
}

// lex tokenises a WHERE-clause source string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '?':
			toks = append(toks, token{tokQMark, "?", i})
			i++
		case c == '*':
			// '*' doubles as multiply and the SELECT star; the parsers
			// disambiguate by context.
			toks = append(toks, token{tokOp, "*", i})
			i++
		case strings.ContainsRune("=+-/%", rune(c)):
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: stray '!' at %d (use != or NOT)", i)
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '\'' || c == '"':
			str, next, err := lexString(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{tokString, str, i})
			i = next
		case c >= '0' && c <= '9' || c == '.':
			text, isFloat, next, err := lexNumber(src, i)
			if err != nil {
				return nil, err
			}
			kind := tokInt
			if isFloat {
				kind = tokFloat
			}
			toks = append(toks, token{kind, text, i})
			i = next
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			kind := tokIdent
			switch strings.ToUpper(word) {
			case "AND":
				kind = tokAnd
			case "OR":
				kind = tokOr
			case "NOT":
				kind = tokNot
			case "TRUE":
				kind = tokTrue
			case "FALSE":
				kind = tokFalse
			}
			toks = append(toks, token{kind, word, i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func lexString(src string, start int) (val string, next int, err error) {
	quote := src[start]
	var b strings.Builder
	i := start + 1
	for i < len(src) {
		c := src[i]
		if c == quote {
			if i+1 < len(src) && src[i+1] == quote { // doubled quote escapes
				b.WriteByte(quote)
				i += 2
				continue
			}
			return b.String(), i + 1, nil
		}
		b.WriteByte(c)
		i++
	}
	return "", 0, fmt.Errorf("query: unterminated string at %d", start)
}

func lexNumber(src string, start int) (text string, isFloat bool, next int, err error) {
	i := start
	for i < len(src) && (src[i] >= '0' && src[i] <= '9') {
		i++
	}
	if i < len(src) && src[i] == '.' {
		isFloat = true
		i++
		for i < len(src) && (src[i] >= '0' && src[i] <= '9') {
			i++
		}
	}
	if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
		isFloat = true
		i++
		if i < len(src) && (src[i] == '+' || src[i] == '-') {
			i++
		}
		digits := 0
		for i < len(src) && (src[i] >= '0' && src[i] <= '9') {
			i++
			digits++
		}
		if digits == 0 {
			return "", false, 0, fmt.Errorf("query: malformed exponent at %d", start)
		}
	}
	text = src[start:i]
	if text == "." {
		return "", false, 0, fmt.Errorf("query: stray '.' at %d", start)
	}
	return text, isFloat, i, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
