package query

import (
	"testing"

	"fungusdb/internal/tuple"
)

// fakeZone is a hand-rolled ZoneView for rule-level tests: column 0 is
// k INT in [10, 20], column 2 is name STRING in {"alpha","beta"},
// ticks span [100, 200], IDs [1000, 2000].
type fakeZone struct{ names map[string]bool }

func (z fakeZone) Bounds(col int) (lo, hi tuple.Value, ok bool) {
	switch col {
	case 0:
		return tuple.Int(10), tuple.Int(20), true
	case 2:
		return tuple.String_("alpha"), tuple.String_("beta"), true
	}
	return tuple.Value{}, tuple.Value{}, false
}

func (z fakeZone) TickBounds() (lo, hi tuple.Value, ok bool) {
	return tuple.Int(100), tuple.Int(200), true
}

func (z fakeZone) IDBounds() (lo, hi tuple.Value, ok bool) {
	return tuple.Int(1000), tuple.Int(2000), true
}

func (z fakeZone) MayContainString(col int, s string) bool {
	if z.names == nil {
		return true
	}
	return z.names[s]
}

func TestPruneRules(t *testing.T) {
	zone := fakeZone{names: map[string]bool{"alpha": true, "beta": true}}
	cases := []struct {
		where string
		skip  bool
	}{
		{"k > 3", false},
		{"k > 20", true},
		{"k >= 20", false},
		{"k < 10", true},
		{"k <= 10", false},
		{"k = 15", false},
		{"k = 9", true},
		{"k = 21", true},
		{"21 = k", true},   // literal-first mirrors
		{"21 > k", false},  // k < 21 possible
		{"10 > k", true},   // k < 10 impossible
		{"k != 15", false}, // bounds not collapsed
		{"k BETWEEN 30 AND 40", true},
		{"k BETWEEN 5 AND 12", false},
		{"k > 20 AND v = 1.5", true}, // one dead conjunct suffices
		{"v = 1.5 AND k > 3", false}, // v has no bounds
		{"k > 20 OR k < 5", true},    // both branches dead
		{"k > 20 OR k > 12", false},  // live branch
		{"k > 20 OR v = 1.5", false}, // unprunable branch disables the OR
		{"name = \"gamma\"", true},   // bloom miss
		{"name = \"alpha\"", false},  // bloom hit
		{"\"gamma\" = name", true},   // flipped bloom miss
		{"name = \"aaaa\"", true},    // bounds prove it: "aaaa" < lo "alpha"
		{"name < \"aaa\"", true},     // below string lo
		{"name > \"zeta\"", true},    // above string hi
		{"name IN (\"x\", \"y\")", true},
		{"name IN (\"x\", \"alpha\")", false},
		{"k IN (1, 2)", true},
		{"k IN (1, 15)", false},
		{"_t < 100", true},
		{"_t <= 100", false},
		{"_id > 2000", true},
		{"_id >= 1000", false},
		{"_f < 0.5", false}, // freshness never prunes
		{"false", true},
		{"k = 15 AND false", true},
		{"NOT k > 3", false}, // NOT is never lowered
	}
	for _, c := range cases {
		pred, err := Compile(c.where, matchSchema)
		if err != nil {
			t.Fatalf("%q: %v", c.where, err)
		}
		if pred.pruner == nil {
			if c.skip {
				t.Errorf("%q: no pruner compiled but skip expected", c.where)
			}
			continue
		}
		if got := pred.pruner.Skip(zone); got != c.skip {
			t.Errorf("%q: skip = %v, want %v", c.where, got, c.skip)
		}
	}
}

// Special case in the table above: name = "aaaa" is outside the string
// bounds, so the range half of the combined rule must prune even when
// the bloom (fake: unknown values miss) would already do it. Verify
// the bounds proof alone suffices when the bloom abstains.
func TestPruneStringBoundsWithoutBloom(t *testing.T) {
	pred := MustCompile("name = \"aaaa\"", matchSchema)
	zone := fakeZone{} // nil names: bloom always says maybe
	if pred.pruner == nil || !pred.pruner.Skip(zone) {
		t.Error("string bounds alone did not prune")
	}
}

func TestPruneUnprunablePredicates(t *testing.T) {
	for _, where := range []string{
		"", "true", "v > 0.5", "_f < 1.0", "k + 1 > 3", "k > v",
		"NOT k > 20", "name LIKE \"a%\"", "k != 12",
	} {
		pred, err := Compile(where, matchSchema)
		if err != nil {
			t.Fatalf("%q: %v", where, err)
		}
		if pred.pruner != nil && pred.pruner.Skip(fakeZone{}) {
			t.Errorf("%q pruned a segment it cannot reason about", where)
		}
	}
}

func TestPruneCompiledOnBind(t *testing.T) {
	stmt, err := ParseStatement("SELECT k FROM t WHERE k > ?")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := stmt.Plan(matchSchema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pruner() != nil {
		t.Fatal("unbound plan has a pruner")
	}
	bound, err := plan.Bind([]tuple.Value{tuple.Int(20)})
	if err != nil {
		t.Fatal(err)
	}
	if bound.Pruner() == nil {
		t.Fatal("bound plan lost its pruner")
	}
	if !bound.Pruner().Skip(fakeZone{}) {
		t.Error("k > 20 did not prune [10, 20]")
	}
	// The cached plan is untouched.
	if plan.Pruner() != nil {
		t.Error("Bind mutated the cached plan")
	}
}
