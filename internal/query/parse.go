package query

import (
	"fmt"
	"strconv"
	"strings"

	"fungusdb/internal/tuple"
)

// Parse compiles WHERE-clause source into an expression tree. The
// grammar, loosest binding first:
//
//	expr   := or
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((= | != | <> | < | <= | > | >=) add)?
//	add    := mul ((+ | -) mul)*
//	mul    := unary ((* | / | %) unary)*
//	unary  := - unary | primary
//	primary:= INT | FLOAT | STRING | TRUE | FALSE | ident | ( expr )
//
// An empty source parses to the constant TRUE (select everything),
// matching the paper's unqualified "each query Q". Placeholders are
// rejected: a bare WHERE expression has no bind step, so `?` is only
// legal inside a prepared statement (ParseStatement).
func Parse(src string) (Expr, error) {
	e, params, err := parseWhere(src)
	if err != nil {
		return nil, err
	}
	if params > 0 {
		return nil, fmt.Errorf("query: expression has %d '?' placeholder(s); prepare it as a statement to bind them", params)
	}
	return e, nil
}

// parseWhere parses a bare WHERE expression and reports how many `?`
// placeholders it contains.
func parseWhere(src string) (Expr, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	if p.peek().kind == tokEOF {
		return Lit{V: tuple.Bool(true)}, 0, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, 0, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, 0, fmt.Errorf("query: unexpected %q at %d", t.text, t.pos)
	}
	return e, p.params, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	toks   []token
	pos    int
	params int // `?` placeholders seen so far; indices assign in parse order
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Bin{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().kind == tokNot {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Bin{Op: op, L: l, R: r}, nil
		}
		return l, nil
	}
	// Postfix keyword operators: [NOT] LIKE / IN / BETWEEN.
	negate := false
	if t.kind == tokNot && p.keywordAt(p.pos+1) != "" {
		p.next()
		negate = true
		t = p.peek()
	}
	var e Expr
	switch strings.ToUpper(t.text) {
	case "LIKE":
		if t.kind != tokIdent {
			break
		}
		p.next()
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		e = Like{X: l, Pattern: pat}
	case "IN":
		if t.kind != tokIdent {
			break
		}
		p.next()
		if open := p.next(); open.kind != tokLParen {
			return nil, fmt.Errorf("query: IN needs '(' at %d", open.pos)
		}
		var list []Expr
		for {
			item, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			sep := p.next()
			if sep.kind == tokRParen {
				break
			}
			if sep.kind != tokComma {
				return nil, fmt.Errorf("query: IN list wants ',' or ')' at %d", sep.pos)
			}
		}
		e = In{X: l, List: list}
	case "BETWEEN":
		if t.kind != tokIdent {
			break
		}
		p.next()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if and := p.next(); and.kind != tokAnd {
			return nil, fmt.Errorf("query: BETWEEN wants AND at %d", and.pos)
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		// x BETWEEN lo AND hi desugars to x >= lo AND x <= hi; the
		// expression tree is pure so double evaluation is safe.
		e = Bin{Op: OpAnd,
			L: Bin{Op: OpGe, L: l, R: lo},
			R: Bin{Op: OpLe, L: l, R: hi},
		}
	}
	if e == nil {
		if negate {
			return nil, fmt.Errorf("query: NOT at %d must precede LIKE/IN/BETWEEN here", t.pos)
		}
		return l, nil
	}
	if negate {
		return Not{X: e}, nil
	}
	return e, nil
}

// keywordAt reports the postfix keyword at token index i ("LIKE", "IN",
// "BETWEEN"), or "" when the token is not one of them.
func (p *parser) keywordAt(i int) string {
	if i >= len(p.toks) {
		return ""
	}
	t := p.toks[i]
	if t.kind != tokIdent {
		return ""
	}
	switch strings.ToUpper(t.text) {
	case "LIKE", "IN", "BETWEEN":
		return strings.ToUpper(t.text)
	}
	return ""
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.text == "-" {
			op = OpSub
		}
		l = Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		var op BinOp
		switch t.text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		default:
			op = OpMod
		}
		l = Bin{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.kind == tokOp && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad integer %q at %d", t.text, t.pos)
		}
		return Lit{V: tuple.Int(n)}, nil
	case tokFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad float %q at %d", t.text, t.pos)
		}
		return Lit{V: tuple.Float(f)}, nil
	case tokString:
		return Lit{V: tuple.String_(t.text)}, nil
	case tokTrue:
		return Lit{V: tuple.Bool(true)}, nil
	case tokFalse:
		return Lit{V: tuple.Bool(false)}, nil
	case tokIdent:
		return Col{Name: t.text}, nil
	case tokQMark:
		p.params++
		return Param{Index: p.params - 1}, nil
	case tokLParen:
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if closing := p.next(); closing.kind != tokRParen {
			return nil, fmt.Errorf("query: missing ')' at %d", closing.pos)
		}
		return e, nil
	case tokEOF:
		return nil, fmt.Errorf("query: unexpected end of expression")
	default:
		return nil, fmt.Errorf("query: unexpected %q at %d", t.text, t.pos)
	}
}
