package query

import (
	"fmt"
	"strings"

	"fungusdb/internal/tuple"
)

// Like is the SQL LIKE operator: '%' matches any run (including empty),
// '_' matches exactly one byte. Both operands must evaluate to STRING.
type Like struct {
	X       Expr
	Pattern Expr
}

// Eval implements Expr.
func (l Like) Eval(env Env) (tuple.Value, error) {
	xv, err := l.X.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	pv, err := l.Pattern.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	if xv.Kind() != tuple.KindString || pv.Kind() != tuple.KindString {
		return tuple.Value{}, fmt.Errorf("query: LIKE needs STRING operands, got %s and %s", xv.Kind(), pv.Kind())
	}
	return tuple.Bool(likeMatch(xv.AsString(), pv.AsString())), nil
}

// String implements Expr.
func (l Like) String() string { return fmt.Sprintf("(%s LIKE %s)", l.X, l.Pattern) }

// likeMatch implements %/_ globbing without regexp, iteratively: on a
// mismatch after a '%', backtrack to the character after the last '%'.
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// In is the SQL IN operator: true when X equals any list member.
// Incomparable kinds in the list are skipped rather than erroring,
// matching the two-valued semantics of the rest of the engine.
type In struct {
	X    Expr
	List []Expr
}

// Eval implements Expr.
func (n In) Eval(env Env) (tuple.Value, error) {
	xv, err := n.X.Eval(env)
	if err != nil {
		return tuple.Value{}, err
	}
	for _, e := range n.List {
		v, err := e.Eval(env)
		if err != nil {
			return tuple.Value{}, err
		}
		if cmp, ok := xv.Compare(v); ok && cmp == 0 {
			return tuple.Bool(true), nil
		}
	}
	return tuple.Bool(false), nil
}

// String implements Expr.
func (n In) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%s IN (", n.X)
	for i, e := range n.List {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("))")
	return b.String()
}
