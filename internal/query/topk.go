package query

import (
	"fmt"
	"sort"

	"fungusdb/internal/sketch"
	"fungusdb/internal/tuple"
)

// This file implements the ORDER BY top-k push-down: instead of
// materialising every matching tuple behind a sort barrier, each shard
// folds its matches into a bounded heap of k = LIMIT projected rows,
// and the engine merges the per-shard survivors — peak result memory
// O(shards × k) regardless of how many tuples match.
//
// Ordering is (ORDER BY keys, tuple ID ascending), which is exactly
// the total order the materialised path produces: its rows arrive in
// global ID order and go through a stable sort on the keys.

// orderIdx is one ORDER BY key resolved to an output-column index at
// plan compile time.
type orderIdx struct {
	col  string
	idx  int
	desc bool
}

// resolveOrderKeys resolves ORDER BY columns against the output
// columns (last match wins, matching historical behaviour). It is the
// single resolver behind Plan compilation and the raw Execute path, so
// the two cannot drift.
func resolveOrderKeys(orderBy []OrderKey, cols []string) ([]orderIdx, error) {
	out := make([]orderIdx, len(orderBy))
	for i, key := range orderBy {
		idx := -1
		for j, c := range cols {
			if c == key.Col {
				idx = j
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("query: ORDER BY %q is not an output column (%v)", key.Col, cols)
		}
		out[i] = orderIdx{col: key.Col, idx: idx, desc: key.Desc}
	}
	return out, nil
}

// compareOrderKeys orders two rows by the resolved keys (DESC keys
// reversed), returning 0 on a full tie; both the sort barrier and the
// top-k heaps order through it, which is what makes their outputs
// byte-identical. err reports the first incomparable key pair.
func compareOrderKeys(a, b []tuple.Value, keys []orderIdx) (int, error) {
	for _, k := range keys {
		cmp, ok := a[k.idx].Compare(b[k.idx])
		if !ok {
			return 0, fmt.Errorf("query: ORDER BY %q over incomparable kinds", k.col)
		}
		if cmp == 0 {
			continue
		}
		if k.desc {
			return -cmp, nil
		}
		return cmp, nil
	}
	return 0, nil
}

// topkRow is one candidate row plus the ID tie-break.
type topkRow struct {
	vals []tuple.Value
	id   tuple.ID
}

// TopK accumulates the best k projected rows of one shard. Not safe
// for concurrent use; run one per shard and merge with MergeTopK.
type TopK struct {
	plan *Plan
	h    *sketch.BoundedHeap[topkRow]
	err  error
}

// NewTopK returns an empty per-shard collector. The plan must be
// ordered with a positive LIMIT (the engine routes only such plans
// here).
func (p *Plan) NewTopK() *TopK {
	t := &TopK{plan: p}
	t.h = sketch.NewBoundedHeap(p.limit, func(a, b topkRow) bool {
		return p.orderLess(a, b, &t.err)
	})
	return t
}

// orderLess orders candidate rows by the resolved ORDER BY keys, ties
// broken by ascending tuple ID. Incomparable keys record the first
// error and impose an arbitrary (but consistent within the sort)
// order; the caller surfaces the error before trusting any result.
func (p *Plan) orderLess(a, b topkRow, errp *error) bool {
	cmp, err := compareOrderKeys(a.vals, b.vals, p.order)
	if err != nil {
		if *errp == nil {
			*errp = err
		}
		return false
	}
	if cmp != 0 {
		return cmp < 0
	}
	return a.id < b.id
}

// Add offers one projected row.
func (t *TopK) Add(vals []tuple.Value, id tuple.ID) {
	t.h.Push(topkRow{vals: vals, id: id})
}

// Len returns the rows currently retained (≤ k).
func (t *TopK) Len() int { return t.h.Len() }

// AxisSkip returns a zone check for axis-ordered top-k scans (see
// Plan.OrderAxis): once the heap holds k rows, a segment whose best
// possible primary-key value cannot strictly beat the current worst
// survivor provably contributes nothing — every row it holds loses on
// the first key before tie-breaks matter. Ties keep scanning (a tying
// row can still win on later keys or the ID tie-break). The closure
// reads live heap state and must only run on the goroutine feeding
// this collector.
func (t *TopK) AxisSkip(axis uint8, desc bool) func(ZoneView) bool {
	keyIdx := t.plan.order[0].idx
	return func(z ZoneView) bool {
		if t.h.Len() < t.h.Cap() {
			return false
		}
		worst, wok := t.h.Items()[0].vals[keyIdx].Numeric()
		if !wok {
			return false
		}
		var lo, hi tuple.Value
		var ok bool
		switch axis {
		case 1:
			lo, hi, ok = z.TickBounds()
		case 2:
			lo, hi, ok = z.IDBounds()
		default:
			return false
		}
		if !ok {
			return false
		}
		if desc {
			h, _ := hi.Numeric()
			return h < worst
		}
		l, _ := lo.Numeric()
		return l > worst
	}
}

// Err returns the first ordering error observed.
func (t *TopK) Err() error { return t.err }

// MergeTopK merges per-shard collectors into the final ordered rows,
// at most LIMIT of them. Nil collectors are skipped.
func (p *Plan) MergeTopK(parts []*TopK) ([][]tuple.Value, error) {
	var all []topkRow
	var err error
	for _, t := range parts {
		if t == nil {
			continue
		}
		if t.err != nil && err == nil {
			err = t.err
		}
		all = append(all, t.h.Items()...)
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool { return p.orderLess(all[i], all[j], &err) })
	if err != nil {
		return nil, err
	}
	if len(all) > p.limit {
		all = all[:p.limit]
	}
	rows := make([][]tuple.Value, len(all))
	for i := range all {
		rows[i] = all[i].vals
	}
	return rows, nil
}
