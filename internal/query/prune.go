package query

import (
	"fungusdb/internal/tuple"
)

// ZoneView is the pruning read-surface of one storage segment: the
// conservative per-column summaries a Pruner consults before the scan
// touches a single tuple. The storage layer's *storage.ZoneMap
// satisfies it structurally, keeping the two packages decoupled.
//
// Every method is conservative: ok=false (or MayContainString=true)
// means "unknown — scan the segment". Bounds are inclusive and cover a
// superset of the live tuples, so a segment excluded by them provably
// holds no match.
type ZoneView interface {
	// Bounds returns inclusive bounds of schema column col.
	Bounds(col int) (lo, hi tuple.Value, ok bool)
	// TickBounds returns inclusive insertion-tick bounds (INT values).
	TickBounds() (lo, hi tuple.Value, ok bool)
	// IDBounds returns inclusive tuple-ID bounds (INT values).
	IDBounds() (lo, hi tuple.Value, ok bool)
	// MayContainString reports whether column col may hold s; false
	// means definitely absent.
	MayContainString(col int, s string) bool
}

// Pruner is the compile-time half of segment pruning: the predicate's
// top-level conjuncts lowered into zone-map checks. Skip(z) == true
// proves no tuple in the summarised segment can satisfy the WHERE
// clause, because some conjunct is unsatisfiable over the segment's
// bounds (or bloom). Conjuncts that cannot be lowered are simply
// absent — pruning only ever under-approximates.
type Pruner struct {
	rules []pruneRule
}

// Skip reports whether the summarised segment can be skipped entirely.
func (p *Pruner) Skip(z ZoneView) bool {
	for _, r := range p.rules {
		if r.skip(z) {
			return true
		}
	}
	return false
}

// NumRules returns how many conjuncts were lowered into prune checks.
func (p *Pruner) NumRules() int { return len(p.rules) }

// pruneRule proves (or fails to prove) one conjunct unsatisfiable over
// a segment summary.
type pruneRule interface {
	skip(z ZoneView) bool
}

// pruneCol addresses one column in a ZoneView.
type pruneCol struct {
	idx int   // schema index for attribute columns
	sys uint8 // 0 = attribute, 1 = _t, 2 = _id
}

func (c pruneCol) bounds(z ZoneView) (lo, hi tuple.Value, ok bool) {
	switch c.sys {
	case 1:
		return z.TickBounds()
	case 2:
		return z.IDBounds()
	}
	return z.Bounds(c.idx)
}

// compilePrune lowers the WHERE tree into a Pruner, or nil when no
// conjunct is prunable. Parameter placeholders must already be folded
// into literals (Bind does); an unbound Param makes its conjunct
// unprunable, nothing worse.
func compilePrune(e Expr, schema *tuple.Schema) *Pruner {
	if e == nil {
		return nil
	}
	var rules []pruneRule
	for _, c := range splitAnd(e) {
		if r := compilePruneRule(c, schema); r != nil {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		return nil
	}
	return &Pruner{rules: rules}
}

// splitAnd flattens nested AND chains into their conjuncts.
func splitAnd(e Expr) []Expr {
	if b, ok := e.(Bin); ok && b.Op == OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// pruneColOf resolves a column reference into a pruneCol; ok=false for
// non-columns and for _f (freshness mutates in place, so segments
// carry no usable bound for it).
func pruneColOf(e Expr, schema *tuple.Schema) (pruneCol, bool) {
	c, ok := e.(Col)
	if !ok {
		return pruneCol{}, false
	}
	switch c.Name {
	case tuple.SysTick:
		return pruneCol{sys: 1}, true
	case tuple.SysID:
		return pruneCol{sys: 2}, true
	case tuple.SysFresh:
		return pruneCol{}, false
	}
	if i := schema.Index(c.Name); i >= 0 {
		return pruneCol{idx: i}, true
	}
	return pruneCol{}, false
}

// flipCmp mirrors a comparison so the column lands on the left:
// lit < col  ==  col > lit.
func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op // Eq, Ne are symmetric
}

// compilePruneRule lowers one conjunct, or returns nil when it cannot
// contribute to pruning.
func compilePruneRule(e Expr, schema *tuple.Schema) pruneRule {
	switch n := e.(type) {
	case Bin:
		switch n.Op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			if col, ok := pruneColOf(n.L, schema); ok {
				if lit, ok := n.R.(Lit); ok {
					return newCmpRule(col, n.Op, lit.V, schema)
				}
			}
			if col, ok := pruneColOf(n.R, schema); ok {
				if lit, ok := n.L.(Lit); ok {
					return newCmpRule(col, flipCmp(n.Op), lit.V, schema)
				}
			}
		case OpOr:
			l := compilePruneRule(n.L, schema)
			r := compilePruneRule(n.R, schema)
			if l != nil && r != nil {
				return orRule{l, r}
			}
		case OpAnd:
			// Nested AND under an OR branch: any lowered side proves
			// the whole conjunction unsatisfiable.
			l := compilePruneRule(n.L, schema)
			r := compilePruneRule(n.R, schema)
			switch {
			case l != nil && r != nil:
				return anyRule{l, r}
			case l != nil:
				return l
			case r != nil:
				return r
			}
		}
	case In:
		col, ok := pruneColOf(n.X, schema)
		if !ok {
			return nil
		}
		items := make([]tuple.Value, 0, len(n.List))
		for _, it := range n.List {
			lit, ok := it.(Lit)
			if !ok {
				return nil
			}
			items = append(items, lit.V)
		}
		return inRule{col: col, items: items, str: stringCol(col, schema)}
	case Lit:
		// A constant-false conjunct makes every segment skippable.
		if n.V.Kind() == tuple.KindBool && !n.V.AsBool() {
			return falseRule{}
		}
	}
	return nil
}

// stringCol reports whether the pruned column is a STRING attribute
// (the only columns with segment blooms).
func stringCol(c pruneCol, schema *tuple.Schema) bool {
	return c.sys == 0 && schema.Column(c.idx).Kind == tuple.KindString
}

// newCmpRule builds the rule for `col op lit`. String equality also
// consults the segment bloom.
func newCmpRule(col pruneCol, op BinOp, lit tuple.Value, schema *tuple.Schema) pruneRule {
	r := cmpRule{col: col, op: op, lit: lit}
	if op == OpEq && stringCol(col, schema) && lit.Kind() == tuple.KindString {
		return anyRule{r, bloomRule{col: col.idx, s: lit.AsString()}}
	}
	return r
}

// cmpRule proves `col op lit` unsatisfiable from the column bounds.
type cmpRule struct {
	col pruneCol
	op  BinOp
	lit tuple.Value
}

func (r cmpRule) skip(z ZoneView) bool {
	lo, hi, ok := r.col.bounds(z)
	if !ok {
		return false
	}
	cmpLo, okLo := r.lit.Compare(lo)
	cmpHi, okHi := r.lit.Compare(hi)
	if !okLo || !okHi {
		// Incomparable kinds (or NaN): evaluation will error anyway;
		// never prune on them.
		return false
	}
	switch r.op {
	case OpEq:
		return cmpLo < 0 || cmpHi > 0 // lit outside [lo, hi]
	case OpNe:
		return cmpLo == 0 && cmpHi == 0 // every value equals lit
	case OpLt: // col < lit: impossible when min >= lit
		return cmpLo <= 0
	case OpLe: // col <= lit: impossible when min > lit
		return cmpLo < 0
	case OpGt: // col > lit: impossible when max <= lit
		return cmpHi >= 0
	case OpGe: // col >= lit: impossible when max < lit
		return cmpHi > 0
	}
	return false
}

// bloomRule proves a string equality unsatisfiable from the segment
// bloom.
type bloomRule struct {
	col int
	s   string
}

func (r bloomRule) skip(z ZoneView) bool { return !z.MayContainString(r.col, r.s) }

// inRule proves `col IN (lits)` unsatisfiable: every list item must be
// provably absent.
type inRule struct {
	col   pruneCol
	items []tuple.Value
	str   bool // column has a segment bloom
}

func (r inRule) skip(z ZoneView) bool {
	lo, hi, haveBounds := r.col.bounds(z)
	for _, it := range r.items {
		excluded := false
		if haveBounds {
			if cmpLo, ok := it.Compare(lo); ok && cmpLo < 0 {
				excluded = true
			} else if cmpHi, ok := it.Compare(hi); ok && cmpHi > 0 {
				excluded = true
			}
		}
		if !excluded && r.str && it.Kind() == tuple.KindString &&
			!z.MayContainString(r.col.idx, it.AsString()) {
			excluded = true
		}
		if !excluded {
			return false
		}
	}
	return len(r.items) > 0
}

// orRule: a disjunction is unsatisfiable only when every branch is.
type orRule struct{ l, r pruneRule }

func (r orRule) skip(z ZoneView) bool { return r.l.skip(z) && r.r.skip(z) }

// anyRule: any member proving unsatisfiability suffices (conjunctions,
// or independent proofs of the same conjunct).
type anyRule []pruneRule

func (r anyRule) skip(z ZoneView) bool {
	for _, m := range r {
		if m.skip(z) {
			return true
		}
	}
	return false
}

// falseRule: a constant-false predicate matches nothing anywhere.
type falseRule struct{}

func (falseRule) skip(ZoneView) bool { return true }
