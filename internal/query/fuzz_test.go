package query

import (
	"testing"
	"testing/quick"

	"fungusdb/internal/tuple"
)

// These tests assert the parsers are total: arbitrary input produces a
// value or an error, never a panic or a hang.

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("Parse(%q) panicked", src)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseSelectNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				t.Logf("ParseSelect(%q) panicked", src)
				ok = false
			}
		}()
		_, _ = ParseSelect(src)
		_, _ = ParseSelect("SELECT " + src)
		_, _ = ParseSelect("SELECT * FROM t WHERE " + src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Targeted grammar-shaped fragments: recombine real tokens into mostly
// invalid statements and require graceful errors.
func TestParserTokenSoup(t *testing.T) {
	frags := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AND",
		"OR", "NOT", "IN", "LIKE", "BETWEEN", "COUNT", "(", ")", ",", "*",
		"+", "-", "/", "%", "=", "!=", "<=", ">=", "<", ">", "'str'",
		"ident", "_t", "_f", "42", "4.2", "TRUE", "FALSE", "AS", "CONSUME",
	}
	// Deterministic pseudo-random walks through the fragment space.
	seed := uint64(1)
	next := func(n int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % n
	}
	for trial := 0; trial < 5000; trial++ {
		var src string
		for i, l := 0, 1+next(12); i < l; i++ {
			src += frags[next(len(frags))] + " "
		}
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("panic on %q", src)
				}
			}()
			_, _ = Parse(src)
			_, _ = ParseSelect(src)
		}()
	}
}

// Property: a predicate that compiles against a schema either matches
// or errors on every tuple — Match itself never panics.
func TestQuickMatchTotal(t *testing.T) {
	schema := tuple.MustSchema(
		tuple.Column{Name: "s", Kind: tuple.KindString},
		tuple.Column{Name: "n", Kind: tuple.KindInt},
	)
	exprs := []string{
		"n > 0", "s LIKE '%x%'", "n IN (1, 2, 3)", "n BETWEEN -5 AND 5",
		"s = 'a' OR n % 2 = 0", "NOT (n < 0)", "_f > 0.5 AND _t < 100",
	}
	preds := make([]*Predicate, len(exprs))
	for i, e := range exprs {
		preds[i] = MustCompile(e, schema)
	}
	f := func(s string, n int64, pi uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		tp := tuple.New(0, 0, []tuple.Value{tuple.String_(s), tuple.Int(n)})
		_, _ = preds[int(pi)%len(preds)].Match(&tp)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
