package query

import (
	"fmt"
	"strings"

	"fungusdb/internal/tuple"
)

// This file is the shard-parallel half of SELECT execution. A scan over
// a sharded extent produces one partial result per shard; aggregate and
// GROUP BY stages merge those partials instead of materialising every
// matching tuple in one place:
//
//	aggs := one NewAggregator per shard
//	shard scan i: aggs[i].Feed(tp) for every match   (parallel)
//	for i > 0: aggs[0].Merge(aggs[i])                (shard order)
//	grid := aggs[0].Grid()
//
// Every aggregate the engine supports merges losslessly: COUNT and SUM
// add, MIN/MAX compare, AVG carries (sum, n). Merging in ascending
// shard order keeps the output deterministic for a fixed shard count —
// group "first seen" order and floating-point addition order depend
// only on the data placement, never on goroutine scheduling.

// aggGroup is one GROUP BY bucket.
type aggGroup struct {
	key  []tuple.Value
	aggs []*aggState
}

// Aggregator accumulates the aggregate/GROUP BY stage of one SELECT
// over a stream of tuples. It is not safe for concurrent use; shard
// scans feed one Aggregator each and merge afterwards.
type Aggregator struct {
	stmt    *SelectStmt
	targets []SelectTarget
	schema  *tuple.Schema
	groups  map[string]*aggGroup
	order   []string      // first-seen group order
	params  []tuple.Value // bound `?` placeholders, nil when the statement has none

	// Batch-folding state, compiled lazily by CanFeedBatch: one lowered
	// accessor per target when the statement shape supports FeedBatch.
	bt      []batchCol
	btState int8 // 0 unknown, 1 supported, -1 per-tuple only
}

// batchCol is one aggregate target lowered for batch folding: the
// aggregate kind plus a resolved column accessor (hasCol false for
// COUNT(*)).
type batchCol struct {
	agg    AggKind
	col    colAcc
	hasCol bool
}

// Aggregated reports whether the statement needs the aggregate path
// (any aggregate target or a GROUP BY clause). Non-aggregated
// statements project tuples row by row and use Execute directly.
func Aggregated(stmt *SelectStmt, schema *tuple.Schema) (bool, error) {
	targets, err := expandTargets(stmt, schema)
	if err != nil {
		return false, err
	}
	if len(stmt.GroupBy) > 0 {
		return true, nil
	}
	for _, t := range targets {
		if t.Agg != AggNone {
			return true, nil
		}
	}
	return false, nil
}

// NewAggregator validates the statement against the schema and returns
// an empty accumulator for it.
func NewAggregator(stmt *SelectStmt, schema *tuple.Schema) (*Aggregator, error) {
	targets, err := expandTargets(stmt, schema)
	if err != nil {
		return nil, err
	}
	if err := checkGrouping(stmt, targets, schema); err != nil {
		return nil, err
	}
	return &Aggregator{
		stmt:    stmt,
		targets: targets,
		schema:  schema,
		groups:  map[string]*aggGroup{},
	}, nil
}

// Fork returns a fresh, empty accumulator sharing this one's validated
// statement and targets — one Fork per shard avoids re-validating the
// statement on every shard of the fan-out. Forks merge back into any
// aggregator of the same family.
func (a *Aggregator) Fork() *Aggregator {
	return &Aggregator{
		stmt:    a.stmt,
		targets: a.targets,
		schema:  a.schema,
		groups:  map[string]*aggGroup{},
		params:  a.params,
	}
}

// checkGrouping validates that plain targets are GROUP BY columns.
func checkGrouping(stmt *SelectStmt, targets []SelectTarget, schema *tuple.Schema) error {
	groupSet := map[string]bool{}
	for _, c := range stmt.GroupBy {
		if c != tuple.SysTick && c != tuple.SysFresh && c != tuple.SysID && schema.Index(c) < 0 {
			return fmt.Errorf("query: unknown GROUP BY column %q", c)
		}
		groupSet[c] = true
	}
	for _, t := range targets {
		if t.Agg != AggNone {
			continue
		}
		c, ok := t.Expr.(Col)
		if !ok || !groupSet[c.Name] {
			return fmt.Errorf("query: non-aggregate target %q must be a GROUP BY column", t.Alias)
		}
	}
	return nil
}

// Feed folds one tuple into the accumulator.
func (a *Aggregator) Feed(tp *tuple.Tuple) error {
	env := TupleEnv{Schema: a.schema, Tuple: tp, Params: a.params}
	keyVals := make([]tuple.Value, len(a.stmt.GroupBy))
	var kb strings.Builder
	for j, c := range a.stmt.GroupBy {
		v, err := env.Lookup(c)
		if err != nil {
			return err
		}
		keyVals[j] = v
		kb.WriteString(v.String())
		kb.WriteByte('\x00')
	}
	grp := a.group(kb.String(), keyVals)
	for j, t := range a.targets {
		if t.Agg == AggNone {
			continue
		}
		var v tuple.Value
		if t.Expr != nil {
			var err error
			if v, err = t.Expr.Eval(env); err != nil {
				return err
			}
		}
		if err := grp.aggs[j].observe(t.Agg, v); err != nil {
			return err
		}
	}
	return nil
}

// CanFeedBatch reports whether FeedBatch may be used: no GROUP BY and
// every target a plain aggregate over a resolvable column (or
// COUNT(*)). Anything else — grouped statements, computed aggregate
// arguments — folds tuple at a time, where the interpreter's
// evaluation order is the specification.
func (a *Aggregator) CanFeedBatch() bool {
	if a.btState == 0 {
		a.compileBatch()
	}
	return a.btState > 0
}

func (a *Aggregator) compileBatch() {
	a.btState = -1
	if len(a.stmt.GroupBy) != 0 {
		return
	}
	bt := make([]batchCol, len(a.targets))
	for i, t := range a.targets {
		if t.Agg == AggNone {
			return
		}
		if t.Expr == nil {
			if t.Agg != AggCount {
				return
			}
			bt[i] = batchCol{agg: t.Agg}
			continue
		}
		c, ok := t.Expr.(Col)
		if !ok {
			return
		}
		acc, ok := resolveCol(c.Name, a.schema)
		if !ok {
			return
		}
		bt[i] = batchCol{agg: t.Agg, col: acc, hasCol: true}
	}
	a.bt = bt
	a.btState = 1
}

// FeedBatch folds every selected row of a column batch, producing the
// exact state (and on failure the exact error) a Feed call per
// selected row would have: rows fold in ascending order, targets in
// statement order within a row, so float accumulation order and the
// first-erroring (row, target) pair match the tuple path bit for bit.
// The caller must have checked CanFeedBatch.
func (a *Aggregator) FeedBatch(b *tuple.Batch, sel []uint64) error {
	var grp *aggGroup
	var ferr error
	tuple.EachSet(sel, func(j int) bool {
		if grp == nil {
			grp = a.group("", make([]tuple.Value, 0))
		}
		for ti := range a.bt {
			bc := &a.bt[ti]
			st := grp.aggs[ti]
			st.n++
			switch bc.agg {
			case AggCount:
			case AggSum, AggAvg:
				f, ok := batchNum(bc.col, b, j)
				if !ok {
					ferr = fmt.Errorf("query: %s over non-numeric %s", bc.agg, bc.col.kind)
					return false
				}
				st.sum += f
			case AggMin:
				v := batchValue(bc.col, b, j)
				if !st.min.IsValid() {
					st.min = v
				} else if cmp, ok := v.Compare(st.min); !ok {
					ferr = fmt.Errorf("query: MIN over incomparable kinds")
					return false
				} else if cmp < 0 {
					st.min = v
				}
			case AggMax:
				v := batchValue(bc.col, b, j)
				if !st.max.IsValid() {
					st.max = v
				} else if cmp, ok := v.Compare(st.max); !ok {
					ferr = fmt.Errorf("query: MAX over incomparable kinds")
					return false
				} else if cmp > 0 {
					st.max = v
				}
			}
		}
		return true
	})
	return ferr
}

// group returns (creating if needed) the bucket for key.
func (a *Aggregator) group(key string, keyVals []tuple.Value) *aggGroup {
	grp, ok := a.groups[key]
	if !ok {
		grp = &aggGroup{key: keyVals, aggs: make([]*aggState, len(a.targets))}
		for j := range grp.aggs {
			grp.aggs[j] = &aggState{}
		}
		a.groups[key] = grp
		a.order = append(a.order, key)
	}
	return grp
}

// Merge folds another partial accumulator (built over a disjoint tuple
// set, e.g. another shard) into a. b must come from the same statement;
// it must not be used afterwards.
func (a *Aggregator) Merge(b *Aggregator) error {
	for _, k := range b.order {
		src := b.groups[k]
		grp := a.group(k, src.key)
		for j, t := range a.targets {
			if t.Agg == AggNone {
				continue
			}
			if err := grp.aggs[j].merge(src.aggs[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// merge folds the partial cell b into a. COUNT/SUM/AVG add their (n,
// sum) carriers; MIN/MAX compare — every aggregate merges losslessly.
func (a *aggState) merge(b *aggState) error {
	a.n += b.n
	a.sum += b.sum
	if b.min.IsValid() {
		if !a.min.IsValid() {
			a.min = b.min
		} else if cmp, ok := b.min.Compare(a.min); !ok {
			return fmt.Errorf("query: MIN merge over incomparable kinds")
		} else if cmp < 0 {
			a.min = b.min
		}
	}
	if b.max.IsValid() {
		if !a.max.IsValid() {
			a.max = b.max
		} else if cmp, ok := b.max.Compare(a.max); !ok {
			return fmt.Errorf("query: MAX merge over incomparable kinds")
		} else if cmp > 0 {
			a.max = b.max
		}
	}
	return nil
}

// Grid finalises the accumulated groups into the statement's output
// grid, applying ORDER BY and LIMIT.
func (a *Aggregator) Grid() (*Grid, error) {
	g := &Grid{}
	for _, t := range a.targets {
		g.Cols = append(g.Cols, t.Alias)
	}
	if len(a.stmt.GroupBy) == 0 {
		// Whole-extent aggregate: exactly one row, even over zero tuples.
		grp := &aggGroup{aggs: make([]*aggState, len(a.targets))}
		for j := range grp.aggs {
			grp.aggs[j] = &aggState{}
		}
		if len(a.order) == 1 {
			grp = a.groups[a.order[0]]
		}
		row := make([]tuple.Value, len(a.targets))
		for j, t := range a.targets {
			row[j] = grp.aggs[j].result(t.Agg)
		}
		g.Rows = append(g.Rows, row)
	} else {
		for _, k := range a.order {
			grp := a.groups[k]
			row := make([]tuple.Value, len(a.targets))
			for j, t := range a.targets {
				if t.Agg == AggNone {
					c := t.Expr.(Col)
					for gi, gc := range a.stmt.GroupBy {
						if gc == c.Name {
							row[j] = grp.key[gi]
						}
					}
					continue
				}
				row[j] = grp.aggs[j].result(t.Agg)
			}
			g.Rows = append(g.Rows, row)
		}
		// Deterministic default order: by group key.
		if len(a.stmt.OrderBy) == 0 {
			keyIdx := []int{}
			for j, t := range a.targets {
				if t.Agg == AggNone {
					keyIdx = append(keyIdx, j)
				}
			}
			sortGridByKeys(g, keyIdx)
		}
	}
	if err := orderAndLimit(g, a.stmt); err != nil {
		return nil, err
	}
	return g, nil
}
