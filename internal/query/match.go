package query

import (
	"fmt"
	"math"

	"fungusdb/internal/tuple"
)

// This file lowers a bound expression tree into a chain of typed Go
// closures: column offsets are resolved against the schema once at
// compile time, and constant comparisons specialise on the operands'
// tuple.Value kinds. The per-tuple hot path then runs without Expr
// interface dispatch, without Env.Lookup map work, and — on the
// specialised comparison forms — without boxing values at all.
//
// The compiled matcher is semantically identical to interpreting the
// tree through Expr.Eval with a TupleEnv, including error text and the
// point at which errors surface (per tuple, not at compile time); the
// equivalence is property-tested in match_test.go.

// matchFn evaluates the compiled predicate for one tuple.
type matchFn func(tp *tuple.Tuple) (bool, error)

// valFn evaluates one compiled sub-expression to a value.
type valFn func(tp *tuple.Tuple) (tuple.Value, error)

// colAcc is a schema-resolved column accessor.
type colAcc struct {
	kind tuple.Kind
	idx  int   // attribute index, sys == 0 only
	sys  uint8 // 0 = attribute, 1 = _t, 2 = _f, 3 = _id
}

// resolveCol resolves a column name once, at compile time. ok=false
// reproduces the interpreter's unknown-column error lazily.
func resolveCol(name string, schema *tuple.Schema) (colAcc, bool) {
	switch name {
	case tuple.SysTick:
		return colAcc{kind: tuple.KindInt, sys: 1}, true
	case tuple.SysFresh:
		return colAcc{kind: tuple.KindFloat, sys: 2}, true
	case tuple.SysID:
		return colAcc{kind: tuple.KindInt, sys: 3}, true
	}
	if i := schema.Index(name); i >= 0 {
		return colAcc{kind: schema.Column(i).Kind, idx: i}, true
	}
	return colAcc{}, false
}

func (c colAcc) value(tp *tuple.Tuple) tuple.Value {
	switch c.sys {
	case 1:
		return tuple.Int(int64(tp.T))
	case 2:
		return tuple.Float(float64(tp.F))
	case 3:
		return tuple.Int(int64(tp.ID))
	}
	return tp.Attrs[c.idx]
}

// num returns the column as float64 for the numeric fast paths; only
// valid when kind is INT or FLOAT.
func (c colAcc) num(tp *tuple.Tuple) float64 {
	switch c.sys {
	case 1:
		return float64(tp.T)
	case 2:
		return float64(tp.F)
	case 3:
		return float64(tp.ID)
	}
	v := tp.Attrs[c.idx]
	if c.kind == tuple.KindInt {
		return float64(v.AsInt())
	}
	return v.AsFloat()
}

// compileMatch lowers a predicate expression to a matchFn, including
// the top-level "predicate yields X, want BOOL" guard.
func compileMatch(e Expr, schema *tuple.Schema) matchFn {
	if bf := compileBoolNode(e, schema); bf != nil {
		return bf
	}
	vf := compileVal(e, schema)
	return func(tp *tuple.Tuple) (bool, error) {
		v, err := vf(tp)
		if err != nil {
			return false, err
		}
		if v.Kind() != tuple.KindBool {
			return false, fmt.Errorf("query: predicate yields %s, want BOOL", v.Kind())
		}
		return v.AsBool(), nil
	}
}

// compileBoolNode compiles nodes that statically yield BOOL, returning
// nil for everything else (the caller falls back to the boxed path).
func compileBoolNode(e Expr, schema *tuple.Schema) matchFn {
	switch n := e.(type) {
	case Bin:
		switch n.Op {
		case OpAnd, OpOr:
			l := compileBoolOperand(n.L, schema, n.Op)
			r := compileBoolOperand(n.R, schema, n.Op)
			if n.Op == OpAnd {
				return func(tp *tuple.Tuple) (bool, error) {
					lb, err := l(tp)
					if err != nil || !lb {
						return false, err
					}
					return r(tp)
				}
			}
			return func(tp *tuple.Tuple) (bool, error) {
				lb, err := l(tp)
				if err != nil || lb {
					return lb, err
				}
				return r(tp)
			}
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return compileCmp(n, schema)
		}
	case Not:
		if inner := compileBoolNode(n.X, schema); inner != nil {
			return func(tp *tuple.Tuple) (bool, error) {
				b, err := inner(tp)
				if err != nil {
					return false, err
				}
				return !b, nil
			}
		}
		vf := compileVal(n.X, schema)
		return func(tp *tuple.Tuple) (bool, error) {
			v, err := vf(tp)
			if err != nil {
				return false, err
			}
			if v.Kind() != tuple.KindBool {
				return false, fmt.Errorf("query: NOT needs BOOL, got %s", v.Kind())
			}
			return !v.AsBool(), nil
		}
	case Like:
		return compileLike(n, schema)
	case In:
		return compileIn(n, schema)
	case Lit:
		if n.V.Kind() == tuple.KindBool {
			b := n.V.AsBool()
			return func(*tuple.Tuple) (bool, error) { return b, nil }
		}
	case Col:
		if c, ok := resolveCol(n.Name, schema); ok && c.kind == tuple.KindBool {
			return func(tp *tuple.Tuple) (bool, error) { return tp.Attrs[c.idx].AsBool(), nil }
		}
	}
	return nil
}

// compileBoolOperand compiles one AND/OR operand with the logical
// operators' per-tuple kind check.
func compileBoolOperand(e Expr, schema *tuple.Schema, op BinOp) matchFn {
	if bf := compileBoolNode(e, schema); bf != nil {
		return bf
	}
	vf := compileVal(e, schema)
	return func(tp *tuple.Tuple) (bool, error) {
		v, err := vf(tp)
		if err != nil {
			return false, err
		}
		if v.Kind() != tuple.KindBool {
			return false, fmt.Errorf("query: %s needs BOOL operands, got %s", op, v.Kind())
		}
		return v.AsBool(), nil
	}
}

// cmpDecide turns a three-way comparison into the operator's boolean.
func cmpDecide(op BinOp, cmp int) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// compileCmp specialises a comparison on the operands' static shapes:
// column-vs-literal and column-vs-column forms with known compatible
// kinds compare unboxed; everything else evaluates both sides and goes
// through tuple.Value.Compare, exactly like the interpreter.
func compileCmp(n Bin, schema *tuple.Schema) matchFn {
	op := n.Op
	// col <op> lit and lit <op> col.
	if c, ok := colRef(n.L, schema); ok {
		if lit, isLit := n.R.(Lit); isLit {
			if f := compileColLitCmp(c, op, lit.V, false); f != nil {
				return f
			}
		}
		if c2, ok2 := colRef(n.R, schema); ok2 {
			return compileColColCmp(c, op, c2)
		}
	}
	if lit, isLit := n.L.(Lit); isLit {
		if c, ok := colRef(n.R, schema); ok {
			if f := compileColLitCmp(c, flipCmp(op), lit.V, true); f != nil {
				return f
			}
		}
	}
	lf := compileVal(n.L, schema)
	rf := compileVal(n.R, schema)
	return func(tp *tuple.Tuple) (bool, error) {
		lv, err := lf(tp)
		if err != nil {
			return false, err
		}
		rv, err := rf(tp)
		if err != nil {
			return false, err
		}
		cmp, ok := lv.Compare(rv)
		if !ok {
			return false, fmt.Errorf("query: cannot compare %s and %s", lv.Kind(), rv.Kind())
		}
		return cmpDecide(op, cmp), nil
	}
}

// colRef resolves e when it is a plain column reference.
func colRef(e Expr, schema *tuple.Schema) (colAcc, bool) {
	c, ok := e.(Col)
	if !ok {
		return colAcc{}, false
	}
	return resolveCol(c.Name, schema)
}

// numericKind reports whether k participates in numeric comparison.
func numericKind(k tuple.Kind) bool { return k == tuple.KindInt || k == tuple.KindFloat }

// compileColLitCmp builds the unboxed column-vs-constant comparison,
// or nil when the kinds need the generic path. swap marks the source
// order as literal-first (the caller mirrored op with flipCmp), which
// only matters for error-message operand order.
func compileColLitCmp(c colAcc, op BinOp, lit tuple.Value, swap bool) matchFn {
	kinds := [2]tuple.Kind{c.kind, lit.Kind()}
	if swap {
		kinds[0], kinds[1] = kinds[1], kinds[0]
	}
	incomparable := func() error {
		return fmt.Errorf("query: cannot compare %s and %s", kinds[0], kinds[1])
	}
	switch {
	case c.kind == tuple.KindInt && c.sys == 0 && lit.Kind() == tuple.KindInt:
		// Compare itself converts both sides to float64 (Numeric), so
		// mirror that to stay bit-identical even beyond 2^53.
		b := float64(lit.AsInt())
		return func(tp *tuple.Tuple) (bool, error) {
			return cmpDecide(op, cmpFloat(float64(tp.Attrs[c.idx].AsInt()), b)), nil
		}
	case numericKind(c.kind) && numericKind(lit.Kind()):
		b, _ := lit.Numeric()
		if math.IsNaN(b) {
			return func(*tuple.Tuple) (bool, error) { return false, incomparable() }
		}
		return func(tp *tuple.Tuple) (bool, error) {
			a := c.num(tp)
			if math.IsNaN(a) {
				return false, incomparable()
			}
			return cmpDecide(op, cmpFloat(a, b)), nil
		}
	case c.kind == tuple.KindString && lit.Kind() == tuple.KindString:
		s := lit.AsString()
		return func(tp *tuple.Tuple) (bool, error) {
			return cmpDecide(op, cmpString(tp.Attrs[c.idx].AsString(), s)), nil
		}
	case c.kind == tuple.KindBool && lit.Kind() == tuple.KindBool:
		b := lit.AsBool()
		return func(tp *tuple.Tuple) (bool, error) {
			return cmpDecide(op, cmpBool(tp.Attrs[c.idx].AsBool(), b)), nil
		}
	default:
		// Statically incomparable kinds: reproduce the interpreter's
		// per-tuple error.
		return func(*tuple.Tuple) (bool, error) { return false, incomparable() }
	}
}

// compileColColCmp builds the unboxed column-vs-column comparison.
func compileColColCmp(l colAcc, op BinOp, r colAcc) matchFn {
	switch {
	case numericKind(l.kind) && numericKind(r.kind):
		return func(tp *tuple.Tuple) (bool, error) {
			a, b := l.num(tp), r.num(tp)
			if math.IsNaN(a) || math.IsNaN(b) {
				return false, fmt.Errorf("query: cannot compare %s and %s", l.kind, r.kind)
			}
			return cmpDecide(op, cmpFloat(a, b)), nil
		}
	case l.kind == tuple.KindString && r.kind == tuple.KindString:
		return func(tp *tuple.Tuple) (bool, error) {
			return cmpDecide(op, cmpString(tp.Attrs[l.idx].AsString(), tp.Attrs[r.idx].AsString())), nil
		}
	case l.kind == tuple.KindBool && r.kind == tuple.KindBool:
		return func(tp *tuple.Tuple) (bool, error) {
			return cmpDecide(op, cmpBool(tp.Attrs[l.idx].AsBool(), tp.Attrs[r.idx].AsBool())), nil
		}
	}
	kinds := [2]tuple.Kind{l.kind, r.kind}
	return func(*tuple.Tuple) (bool, error) {
		return false, fmt.Errorf("query: cannot compare %s and %s", kinds[0], kinds[1])
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	}
	return 0
}

// compileLike lowers LIKE with the pattern pre-evaluated when literal.
func compileLike(n Like, schema *tuple.Schema) matchFn {
	xf := compileVal(n.X, schema)
	if lit, ok := n.Pattern.(Lit); ok && lit.V.Kind() == tuple.KindString {
		pat := lit.V.AsString()
		return func(tp *tuple.Tuple) (bool, error) {
			xv, err := xf(tp)
			if err != nil {
				return false, err
			}
			if xv.Kind() != tuple.KindString {
				return false, fmt.Errorf("query: LIKE needs STRING operands, got %s and %s", xv.Kind(), tuple.KindString)
			}
			return likeMatch(xv.AsString(), pat), nil
		}
	}
	pf := compileVal(n.Pattern, schema)
	return func(tp *tuple.Tuple) (bool, error) {
		xv, err := xf(tp)
		if err != nil {
			return false, err
		}
		pv, err := pf(tp)
		if err != nil {
			return false, err
		}
		if xv.Kind() != tuple.KindString || pv.Kind() != tuple.KindString {
			return false, fmt.Errorf("query: LIKE needs STRING operands, got %s and %s", xv.Kind(), pv.Kind())
		}
		return likeMatch(xv.AsString(), pv.AsString()), nil
	}
}

// compileIn lowers IN. All-literal lists against a known column kind
// compile to a hash-set probe (numeric values key by their float64
// image, matching Compare's cross-kind equality); everything else
// walks the compiled list exactly like the interpreter.
func compileIn(n In, schema *tuple.Schema) matchFn {
	if c, ok := colRef(n.X, schema); ok {
		if allLits(n.List) {
			switch {
			case numericKind(c.kind):
				set := make(map[float64]struct{}, len(n.List))
				for _, it := range n.List {
					if f, ok := it.(Lit).V.Numeric(); ok && !math.IsNaN(f) {
						set[f] = struct{}{}
					}
				}
				return func(tp *tuple.Tuple) (bool, error) {
					a := c.num(tp)
					_, hit := set[a] // NaN probes never hit, matching Compare
					return hit, nil
				}
			case c.kind == tuple.KindString:
				set := make(map[string]struct{}, len(n.List))
				for _, it := range n.List {
					if v := it.(Lit).V; v.Kind() == tuple.KindString {
						set[v.AsString()] = struct{}{}
					}
				}
				return func(tp *tuple.Tuple) (bool, error) {
					_, hit := set[tp.Attrs[c.idx].AsString()]
					return hit, nil
				}
			}
		}
	}
	xf := compileVal(n.X, schema)
	fns := make([]valFn, len(n.List))
	for i, it := range n.List {
		fns[i] = compileVal(it, schema)
	}
	return func(tp *tuple.Tuple) (bool, error) {
		xv, err := xf(tp)
		if err != nil {
			return false, err
		}
		for _, f := range fns {
			v, err := f(tp)
			if err != nil {
				return false, err
			}
			if cmp, ok := xv.Compare(v); ok && cmp == 0 {
				return true, nil
			}
		}
		return false, nil
	}
}

func allLits(list []Expr) bool {
	for _, e := range list {
		if _, ok := e.(Lit); !ok {
			return false
		}
	}
	return true
}

// compileVal lowers any expression to a value closure. Every node kind
// is supported; semantic errors surface per tuple with the
// interpreter's exact messages.
func compileVal(e Expr, schema *tuple.Schema) valFn {
	switch n := e.(type) {
	case Lit:
		v := n.V
		return func(*tuple.Tuple) (tuple.Value, error) { return v, nil }
	case Col:
		c, ok := resolveCol(n.Name, schema)
		if !ok {
			err := fmt.Errorf("query: unknown column %q", n.Name)
			return func(*tuple.Tuple) (tuple.Value, error) { return tuple.Value{}, err }
		}
		if c.sys == 0 {
			idx := c.idx
			return func(tp *tuple.Tuple) (tuple.Value, error) { return tp.Attrs[idx], nil }
		}
		return func(tp *tuple.Tuple) (tuple.Value, error) { return c.value(tp), nil }
	case Bin:
		switch n.Op {
		case OpAnd, OpOr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			bf := compileBoolNode(n, schema)
			return func(tp *tuple.Tuple) (tuple.Value, error) {
				b, err := bf(tp)
				if err != nil {
					return tuple.Value{}, err
				}
				return tuple.Bool(b), nil
			}
		}
		lf := compileVal(n.L, schema)
		rf := compileVal(n.R, schema)
		op := n.Op
		return func(tp *tuple.Tuple) (tuple.Value, error) {
			lv, err := lf(tp)
			if err != nil {
				return tuple.Value{}, err
			}
			rv, err := rf(tp)
			if err != nil {
				return tuple.Value{}, err
			}
			return evalArith(op, lv, rv)
		}
	case Not, Like, In:
		bf := compileBoolNode(e, schema)
		return func(tp *tuple.Tuple) (tuple.Value, error) {
			b, err := bf(tp)
			if err != nil {
				return tuple.Value{}, err
			}
			return tuple.Bool(b), nil
		}
	case Neg:
		xf := compileVal(n.X, schema)
		return func(tp *tuple.Tuple) (tuple.Value, error) {
			v, err := xf(tp)
			if err != nil {
				return tuple.Value{}, err
			}
			switch v.Kind() {
			case tuple.KindInt:
				return tuple.Int(-v.AsInt()), nil
			case tuple.KindFloat:
				return tuple.Float(-v.AsFloat()), nil
			}
			return tuple.Value{}, fmt.Errorf("query: unary minus needs numeric, got %s", v.Kind())
		}
	case Param:
		idx := n.Index
		err := fmt.Errorf("query: parameter ?%d is not bound", idx+1)
		return func(*tuple.Tuple) (tuple.Value, error) { return tuple.Value{}, err }
	}
	// Unknown node types evaluate through the interpreter with a
	// tuple-scoped env, preserving open extensibility of Expr.
	return func(tp *tuple.Tuple) (tuple.Value, error) {
		return e.Eval(TupleEnv{Schema: schema, Tuple: tp})
	}
}
