package query

import (
	"fmt"
	"strconv"

	"fungusdb/internal/sketch"
	"fungusdb/internal/tuple"
)

// Plan is a Statement compiled against one schema: every static check
// has passed, targets are expanded, the ask operand is coerced, and the
// routing decision (stream / aggregate / consume / digest) is captured.
// Plans are immutable and safe for concurrent use, so one Plan can back
// any number of concurrent Execute calls — the engine caches them per
// table, keyed by source text.
//
// The split mirrors the classical prepare/execute contract: Plan pays
// the parse + validation cost once at compile time (where conflicts
// belong), Execute binds parameters and streams rows.
type Plan struct {
	schema  *tuple.Schema
	src     string
	mode    Mode
	where   Expr           // nil = always true
	stmt    *SelectStmt    // nil for raw and ask plans
	targets []SelectTarget // expanded projection; nil for raw plans
	ask     *AskStmt       // nil for SELECT plans
	askVal  tuple.Value    // coerced has-operand (zero when parameterised)
	cols    []string
	params  int
	agg     bool
	raw     bool // no projection stage: Execute yields whole tuples

	// Compiled execution state. match is the WHERE clause lowered to
	// typed closures; pruner is its conjuncts lowered to zone-map
	// checks. Both are compiled when the plan (or its Bind derivative)
	// has no unresolved placeholders left. order is the ORDER BY list
	// resolved to output-column indices at compile time.
	match      matchFn
	pruner     *Pruner
	vec        *vecProg
	order      []orderIdx
	limit      int // resolved LIMIT (0 = unlimited)
	limitParam int // `LIMIT ?` placeholder index, -1 when literal
}

// Plan compiles the statement against schema. All column references,
// grouping rules and ask operands are validated here, never at execute
// time.
func (s *Statement) Plan(schema *tuple.Schema) (*Plan, error) {
	if s.ask != nil {
		return planAsk(s.ask, schema, s.src)
	}
	stmt := s.sel
	targets, err := expandTargets(stmt, schema)
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		if err := checkCols(stmt.Where, schema); err != nil {
			return nil, err
		}
	}
	agg := len(stmt.GroupBy) > 0
	for _, t := range targets {
		if t.Agg != AggNone {
			agg = true
		}
	}
	if agg {
		if err := checkGrouping(stmt, targets, schema); err != nil {
			return nil, err
		}
	}
	mode := Peek
	if stmt.Consume {
		mode = Consume
	}
	cols := make([]string, len(targets))
	for i, t := range targets {
		cols[i] = t.Alias
	}
	p := &Plan{
		schema:     schema,
		src:        s.src,
		mode:       mode,
		where:      stmt.Where,
		stmt:       stmt,
		targets:    targets,
		cols:       cols,
		params:     stmt.Params,
		agg:        agg,
		limit:      stmt.Limit,
		limitParam: stmt.LimitParam,
	}
	// Resolve ORDER BY keys against the output columns once, here —
	// a misspelt sort column is a compile error, not a per-execute
	// surprise.
	if len(stmt.OrderBy) > 0 {
		order, err := resolveOrderKeys(stmt.OrderBy, cols)
		if err != nil {
			return nil, err
		}
		p.order = order
	}
	if stmt.Params == 0 {
		p.compileExec()
	}
	return p, nil
}

// compileExec lowers the (fully bound) WHERE clause into the compiled
// matcher and the segment pruner.
func (p *Plan) compileExec() {
	if p.where == nil {
		return
	}
	p.match = compileMatch(p.where, p.schema)
	p.pruner = compilePrune(p.where, p.schema)
	p.vec = compileVecMatch(p.where, p.schema)
}

func planAsk(ask *AskStmt, schema *tuple.Schema, src string) (*Plan, error) {
	p := &Plan{schema: schema, src: src, mode: Peek, ask: ask, params: ask.Params, limitParam: -1}
	if ask.Op != AskCount {
		if schema.Index(ask.Col) < 0 {
			return nil, fmt.Errorf("query: unknown column %q (schema: %s)", ask.Col, schema)
		}
	}
	switch ask.Op {
	case AskTop:
		p.cols = []string{"item", "count"}
	case AskHas:
		p.cols = []string{"contains"}
		if !ask.HasParam {
			v, err := coerceToColumn(schema, ask.Col, ask.RawValue)
			if err != nil {
				return nil, err
			}
			p.askVal = v
		}
	default:
		p.cols = []string{"value"}
	}
	return p, nil
}

// coerceToColumn parses raw source text into the named column's kind —
// the compile-time half of the old per-request value guessing.
func coerceToColumn(schema *tuple.Schema, col, raw string) (tuple.Value, error) {
	switch schema.Column(schema.Index(col)).Kind {
	case tuple.KindInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("query: column %q wants INT, got %q", col, raw)
		}
		return tuple.Int(n), nil
	case tuple.KindFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("query: column %q wants FLOAT, got %q", col, raw)
		}
		return tuple.Float(f), nil
	case tuple.KindBool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return tuple.Value{}, fmt.Errorf("query: column %q wants BOOL, got %q", col, raw)
		}
		return tuple.Bool(b), nil
	}
	return tuple.String_(raw), nil
}

// PlanPredicate wraps an already-compiled predicate as a raw scan plan:
// no projection stage, Execute yields whole tuples. It is how the
// classical Query/QueryPred API re-expresses itself over the one
// prepared path.
func PlanPredicate(pred *Predicate, mode Mode) *Plan {
	return &Plan{
		schema:     pred.schema,
		src:        pred.src,
		mode:       mode,
		where:      pred.expr,
		raw:        true,
		match:      pred.match,
		pruner:     pred.pruner,
		vec:        pred.vec,
		limitParam: -1,
	}
}

// Schema returns the schema the plan compiled against.
func (p *Plan) Schema() *tuple.Schema { return p.schema }

// Source returns the statement source text.
func (p *Plan) Source() string { return p.src }

// Mode returns the plan's read semantics (Peek or Consume).
func (p *Plan) Mode() Mode { return p.mode }

// Consume reports whether executing discards the answered tuples.
func (p *Plan) Consume() bool { return p.mode == Consume }

// Aggregated reports whether the plan runs the aggregate/GROUP BY
// stage (and therefore merges per-shard partial aggregators).
func (p *Plan) Aggregated() bool { return p.agg }

// Raw reports whether the plan has no projection stage: Execute yields
// whole tuples and Rows.Values is nil.
func (p *Plan) Raw() bool { return p.raw }

// Ordered reports whether the plan needs a sort barrier before the
// first row can be emitted.
func (p *Plan) Ordered() bool { return p.stmt != nil && len(p.stmt.OrderBy) > 0 }

// Limit returns the resolved LIMIT (0 = unlimited). For `LIMIT ?`
// plans the value is known only on the plan Bind returns.
func (p *Plan) Limit() int { return p.limit }

// Pruner returns the predicate's compiled segment-prune checks, nil
// when no conjunct is prunable (or placeholders are still unbound).
func (p *Plan) Pruner() *Pruner { return p.pruner }

// OrderAxis reports whether the plan's primary sort key is one of the
// insertion axes the segment zone maps bound: axis 1 is `_t`, axis 2
// is `_id` (matching the prune-column convention). ok holds only for
// non-aggregated statement plans whose first ORDER BY key projects the
// bare system column — those orders can be served by an axis-directed
// scan that skips whole segments once a top-k heap is full.
func (p *Plan) OrderAxis() (axis uint8, desc, ok bool) {
	if p.stmt == nil || p.agg || p.raw || len(p.order) == 0 {
		return 0, false, false
	}
	oi := p.order[0]
	t := p.targets[oi.idx]
	if t.Agg != AggNone {
		return 0, false, false
	}
	c, isCol := t.Expr.(Col)
	if !isCol {
		return 0, false, false
	}
	switch c.Name {
	case tuple.SysTick:
		return 1, oi.desc, true
	case tuple.SysID:
		return 2, oi.desc, true
	}
	return 0, false, false
}

// IsAsk reports whether the plan answers a knowledge-container
// question rather than scanning the extent.
func (p *Plan) IsAsk() bool { return p.ask != nil }

// Ask returns the validated ask statement, nil for SELECT plans.
func (p *Plan) Ask() *AskStmt { return p.ask }

// Cols returns the output column names (nil for raw plans).
func (p *Plan) Cols() []string { return p.cols }

// NumParams returns the number of `?` placeholders Execute must bind.
func (p *Plan) NumParams() int { return p.params }

// BindCheck validates the bound parameter list's arity. Value typing
// is enforced where the parameter is used (comparisons and aggregates
// reject incompatible kinds), because a placeholder's kind is not
// statically known.
func (p *Plan) BindCheck(params []tuple.Value) error {
	if len(params) != p.params {
		return fmt.Errorf("query: statement wants %d parameter(s), got %d", p.params, len(params))
	}
	for i, v := range params {
		if !v.IsValid() {
			return fmt.Errorf("query: parameter ?%d is invalid", i+1)
		}
	}
	return nil
}

// Bind substitutes the parameters into the plan's expressions as
// literals, returning a derived zero-parameter plan that evaluates at
// literal speed (no per-tuple parameter resolution): the bound WHERE
// clause is re-lowered into compiled closures and prune checks, and a
// `LIMIT ?` placeholder resolves (and type-checks) here. The caller
// must have BindCheck-ed params first; plans without placeholders
// return themselves. The original plan is untouched — one cached Plan
// serves any number of concurrent bindings.
func (p *Plan) Bind(params []tuple.Value) (*Plan, error) {
	if p.params == 0 {
		return p, nil
	}
	q := *p
	q.params = 0
	if p.limitParam >= 0 {
		v := params[p.limitParam]
		if v.Kind() != tuple.KindInt {
			return nil, fmt.Errorf("query: LIMIT wants INT, got %s", v.Kind())
		}
		n := v.AsInt()
		if n < 0 {
			return nil, fmt.Errorf("query: LIMIT must be >= 0, got %d", n)
		}
		q.limit = int(n)
		q.limitParam = -1
		if p.stmt != nil {
			// The finishing stages (orderAndLimit, the aggregator)
			// read the statement's Limit; give the bound plan its own
			// copy so the cached plan stays pristine.
			stmt := *p.stmt
			stmt.Limit = q.limit
			q.stmt = &stmt
		}
	}
	if p.where != nil {
		q.where = bindExpr(p.where, params)
	}
	if p.targets != nil {
		targets := make([]SelectTarget, len(p.targets))
		copy(targets, p.targets)
		for i := range targets {
			if targets[i].Expr != nil {
				targets[i].Expr = bindExpr(targets[i].Expr, params)
			}
		}
		q.targets = targets
	}
	q.compileExec()
	return &q, nil
}

// Match evaluates the plan's WHERE clause for one tuple. Fully bound
// plans run the compiled closure chain; the expression tree is only
// interpreted when unresolved placeholders force the Env path.
func (p *Plan) Match(tp *tuple.Tuple, params []tuple.Value) (bool, error) {
	if p.where == nil {
		return true, nil
	}
	if p.match != nil && len(params) == 0 {
		return p.match(tp)
	}
	v, err := p.where.Eval(TupleEnv{Schema: p.schema, Tuple: tp, Params: params})
	if err != nil {
		return false, err
	}
	if v.Kind() != tuple.KindBool {
		return false, fmt.Errorf("query: predicate yields %s, want BOOL", v.Kind())
	}
	return v.AsBool(), nil
}

// Project evaluates the plain projection for one matching tuple. It
// must only be called on non-aggregated SELECT plans.
func (p *Plan) Project(tp *tuple.Tuple, params []tuple.Value) ([]tuple.Value, error) {
	env := TupleEnv{Schema: p.schema, Tuple: tp, Params: params}
	row := make([]tuple.Value, len(p.targets))
	for j, t := range p.targets {
		v, err := t.Expr.Eval(env)
		if err != nil {
			return nil, err
		}
		row[j] = v
	}
	return row, nil
}

// Finish runs the statement's target/group/order/limit stages over a
// materialised matching set — the barrier path for plans that cannot
// stream (ORDER BY, aggregates executed locally, consume).
func (p *Plan) Finish(tuples []tuple.Tuple, params []tuple.Value) (*Grid, error) {
	if p.raw || p.stmt == nil {
		return nil, fmt.Errorf("query: raw plans have no projection stage")
	}
	if p.agg {
		agg := p.NewAggregator(params)
		for i := range tuples {
			if err := agg.Feed(&tuples[i]); err != nil {
				return nil, err
			}
		}
		return agg.Grid()
	}
	return executePlain(p.stmt, p.targets, p.schema, tuples, params)
}

// NewAggregator returns an empty accumulator for the plan's aggregate
// stage with the given parameters bound. The plan already validated
// the statement, so construction cannot fail; Fork per shard and Merge
// in shard order, exactly like NewAggregator's accumulators.
func (p *Plan) NewAggregator(params []tuple.Value) *Aggregator {
	return &Aggregator{
		stmt:    p.stmt,
		targets: p.targets,
		schema:  p.schema,
		groups:  map[string]*aggGroup{},
		params:  params,
	}
}

// DigestView is the read surface of a knowledge-container digest that
// ask plans evaluate against (satisfied by container.Digest).
type DigestView interface {
	Count() uint64
	NDV(col string) (uint64, error)
	Mean(col string) (float64, error)
	Sum(col string) (float64, error)
	Quantile(col string, q float64) (float64, error)
	HeavyHitters(col string, n int) ([]sketch.Entry, error)
	MayContain(col string, v tuple.Value) (bool, error)
}

// AskRows answers the plan's digest question and returns the result as
// a (small, memory-backed) Rows stream: scalar questions yield one
// ["value"] row, `top` yields up to K ["item","count"] rows, `has`
// yields one ["contains"] row.
func (p *Plan) AskRows(d DigestView, params []tuple.Value) (*Rows, error) {
	ask := p.ask
	if ask == nil {
		return nil, fmt.Errorf("query: not an ask plan")
	}
	scalar := func(v float64) (*Rows, error) {
		return NewValueRows(p.cols, p.mode, [][]tuple.Value{{tuple.Float(v)}}, 0), nil
	}
	switch ask.Op {
	case AskCount:
		return scalar(float64(d.Count()))
	case AskNDV:
		v, err := d.NDV(ask.Col)
		if err != nil {
			return nil, err
		}
		return scalar(float64(v))
	case AskMean:
		v, err := d.Mean(ask.Col)
		if err != nil {
			return nil, err
		}
		return scalar(v)
	case AskSum:
		v, err := d.Sum(ask.Col)
		if err != nil {
			return nil, err
		}
		return scalar(v)
	case AskQuantile:
		v, err := d.Quantile(ask.Col, ask.Quantile)
		if err != nil {
			return nil, err
		}
		return scalar(v)
	case AskTop:
		entries, err := d.HeavyHitters(ask.Col, ask.K)
		if err != nil {
			return nil, err
		}
		rows := make([][]tuple.Value, len(entries))
		for i, e := range entries {
			rows[i] = []tuple.Value{tuple.String_(e.Item), tuple.Int(int64(e.Count))}
		}
		return NewValueRows(p.cols, p.mode, rows, 0), nil
	case AskHas:
		v := p.askVal
		if ask.HasParam {
			v = params[0]
		}
		b, err := d.MayContain(ask.Col, v)
		if err != nil {
			return nil, err
		}
		return NewValueRows(p.cols, p.mode, [][]tuple.Value{{tuple.Bool(b)}}, 0), nil
	}
	return nil, fmt.Errorf("query: bad ask op %d", ask.Op)
}
