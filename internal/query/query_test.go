package query

import (
	"strings"
	"testing"
	"testing/quick"

	"fungusdb/internal/tuple"
)

var testSchema = tuple.MustSchema(
	tuple.Column{Name: "device", Kind: tuple.KindString},
	tuple.Column{Name: "temp", Kind: tuple.KindFloat},
	tuple.Column{Name: "count", Kind: tuple.KindInt},
	tuple.Column{Name: "ok", Kind: tuple.KindBool},
)

func testTuple(device string, temp float64, count int64, ok bool) tuple.Tuple {
	tp := tuple.New(1, 10, []tuple.Value{
		tuple.String_(device), tuple.Float(temp), tuple.Int(count), tuple.Bool(ok),
	})
	tp.F = 0.5
	return tp
}

func evalBool(t *testing.T, src string, tp tuple.Tuple) bool {
	t.Helper()
	p, err := Compile(src, testSchema)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	got, err := p.Match(&tp)
	if err != nil {
		t.Fatalf("Match(%q): %v", src, err)
	}
	return got
}

func TestPredicateComparisons(t *testing.T) {
	tp := testTuple("sensor-1", 21.5, 3, true)
	cases := []struct {
		src  string
		want bool
	}{
		{"temp > 20", true},
		{"temp > 21.5", false},
		{"temp >= 21.5", true},
		{"temp < 100", true},
		{"temp <= 21", false},
		{"count = 3", true},
		{"count != 3", false},
		{"count <> 3", false},
		{"device = 'sensor-1'", true},
		{"device = \"sensor-1\"", true},
		{"device != 'sensor-2'", true},
		{"ok = TRUE", true},
		{"ok", true},
		{"NOT ok", false},
		{"", true}, // empty predicate selects everything
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPredicateLogicalOps(t *testing.T) {
	tp := testTuple("a", 10, 5, false)
	cases := []struct {
		src  string
		want bool
	}{
		{"temp = 10 AND count = 5", true},
		{"temp = 10 AND count = 6", false},
		{"temp = 11 OR count = 5", true},
		{"temp = 11 OR count = 6", false},
		{"NOT (temp = 11) AND NOT ok", true},
		// Precedence: AND binds tighter than OR.
		{"temp = 11 OR temp = 10 AND count = 5", true},
		{"(temp = 11 OR temp = 10) AND count = 6", false},
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPredicateArithmetic(t *testing.T) {
	tp := testTuple("a", 10, 4, true)
	cases := []struct {
		src  string
		want bool
	}{
		{"temp * 2 = 20", true},
		{"count + 1 = 5", true},
		{"count - 6 = -2", true},
		{"count / 2 = 2", true},
		{"count % 3 = 1", true},
		{"-count = -4", true},
		{"temp + count = 14", true},
		{"(temp + 2) * 2 = 24", true},
		{"device + '!' = 'a!'", true},
		{"2 + 3 * 4 = 14", true}, // * binds tighter than +
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPredicateSystemColumns(t *testing.T) {
	tp := testTuple("a", 1, 1, true) // inserted at tick 10, freshness 0.5
	cases := []struct {
		src  string
		want bool
	}{
		{"_t = 10", true},
		{"_t < 5", false},
		{"_f = 0.5", true},
		{"_f > 0.25 AND _f < 0.75", true},
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, tp); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestCompileRejectsUnknownColumn(t *testing.T) {
	_, err := Compile("nosuch > 1", testSchema)
	if err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Errorf("err = %v", err)
	}
}

func TestCompileRejectsSyntaxErrors(t *testing.T) {
	for _, src := range []string{
		"temp >", "AND temp", "temp = )", "(temp = 1", "temp = 'open",
		"temp ! 1", "1 2", "temp = 1e", "temp = .",
	} {
		if _, err := Compile(src, testSchema); err == nil {
			t.Errorf("Compile(%q) accepted", src)
		}
	}
}

func TestMatchTypeErrors(t *testing.T) {
	tp := testTuple("a", 1, 1, true)
	for _, src := range []string{
		"device > 5",       // string vs int comparison
		"temp AND ok",      // non-bool logical operand
		"NOT temp",         // NOT on float
		"device * 2 = 'x'", // arithmetic on string
		"count / 0 = 1",    // division by zero
		"count % 0 = 1",    // modulo by zero
		"temp + 1",         // non-boolean predicate result
		"-device = 'a'",    // negate string
	} {
		p, err := Compile(src, testSchema)
		if err != nil {
			continue // some are caught at compile time; fine either way
		}
		if _, err := p.Match(&tp); err == nil {
			t.Errorf("Match(%q) did not error", src)
		}
	}
}

func TestShortCircuitSkipsErrors(t *testing.T) {
	tp := testTuple("a", 1, 0, false)
	// The right side would divide by zero, but the left side decides.
	if got := evalBool(t, "FALSE AND 1 / count = 1", tp); got {
		t.Error("FALSE AND ... = true")
	}
	if got := evalBool(t, "TRUE OR 1 / count = 1", tp); !got {
		t.Error("TRUE OR ... = false")
	}
}

func TestExprStringRoundTrips(t *testing.T) {
	srcs := []string{
		"temp > 20 AND device = 'x'",
		"NOT (ok OR count < 3)",
		"count + 1 * 2 >= 3",
		"-temp < 0 OR _f > 0.5",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q failed: %v", src, e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("String round trip: %q -> %q", e1.String(), e2.String())
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Schema: testSchema,
		Tuples: []tuple.Tuple{
			testTuple("a", 10, 1, true),
			testTuple("b", 20, 2, false),
		},
		Scanned: 5,
		Mode:    Consume,
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.FreshnessMass() != 1.0 { // two tuples at 0.5 each
		t.Errorf("FreshnessMass = %v", r.FreshnessMass())
	}
	if r.MeanFreshness() != 0.5 {
		t.Errorf("MeanFreshness = %v", r.MeanFreshness())
	}
	if r.Bytes() <= 0 {
		t.Error("Bytes not positive")
	}
	if r.Mode.String() != "consume" || Peek.String() != "peek" {
		t.Error("Mode strings wrong")
	}

	vals, err := r.Project(1, []string{"device", "_f", "temp"})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].AsString() != "b" || vals[1].AsFloat() != 0.5 || vals[2].AsFloat() != 20 {
		t.Errorf("Project = %v", vals)
	}
	if _, err := r.Project(0, []string{"nosuch"}); err == nil {
		t.Error("Project unknown column accepted")
	}

	empty := &Result{Schema: testSchema}
	if empty.MeanFreshness() != 0 {
		t.Error("empty MeanFreshness not 0")
	}
}

func TestAggregate(t *testing.T) {
	r := &Result{
		Schema: testSchema,
		Tuples: []tuple.Tuple{
			testTuple("a", 10, 1, true),
			testTuple("b", 30, 3, true),
			testTuple("c", 20, 2, true),
		},
	}
	a, err := r.Aggregate("temp")
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || a.Sum() != 60 || a.Min() != 10 || a.Max() != 30 || a.Mean() != 20 {
		t.Errorf("agg = count %d sum %v min %v max %v mean %v", a.Count(), a.Sum(), a.Min(), a.Max(), a.Mean())
	}
	if _, err := r.Aggregate("device"); err == nil {
		t.Error("aggregate over string accepted")
	}
	if _, err := r.Aggregate("nosuch"); err == nil {
		t.Error("aggregate over unknown column accepted")
	}
	var zero Agg
	if zero.Mean() != 0 || zero.Min() != 0 || zero.Max() != 0 {
		t.Error("zero Agg accessors not 0")
	}
}

// Property: integer comparison predicates agree with Go's operators.
func TestQuickIntPredicates(t *testing.T) {
	schema := tuple.MustSchema(tuple.Column{Name: "x", Kind: tuple.KindInt})
	lt := MustCompile("x < 0", schema)
	ge := MustCompile("x >= 0", schema)
	f := func(x int64) bool {
		tp := tuple.New(0, 0, []tuple.Value{tuple.Int(x)})
		a, err1 := lt.Match(&tp)
		b, err2 := ge.Match(&tp)
		if err1 != nil || err2 != nil {
			return false
		}
		return a == (x < 0) && b == (x >= 0) && a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan's law holds for arbitrary boolean tuples.
func TestQuickDeMorgan(t *testing.T) {
	schema := tuple.MustSchema(
		tuple.Column{Name: "p", Kind: tuple.KindBool},
		tuple.Column{Name: "q", Kind: tuple.KindBool},
	)
	lhs := MustCompile("NOT (p AND q)", schema)
	rhs := MustCompile("NOT p OR NOT q", schema)
	f := func(p, q bool) bool {
		tp := tuple.New(0, 0, []tuple.Value{tuple.Bool(p), tuple.Bool(q)})
		a, err1 := lhs.Match(&tp)
		b, err2 := rhs.Match(&tp)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredicateSourceAndExpr(t *testing.T) {
	p := MustCompile("temp > 1", testSchema)
	if p.Source() != "temp > 1" {
		t.Errorf("Source = %q", p.Source())
	}
	if p.Expr() == nil {
		t.Error("Expr nil")
	}
}

func TestLexStringEscapes(t *testing.T) {
	tp := testTuple("it''s", 1, 1, true)
	// Doubled quotes escape inside both quote styles.
	if !evalBool(t, "device = 'it''''s'", tp) {
		// device value is "it''s": the source needs each ' doubled.
		t.Error("doubled single-quote escape failed")
	}
}
