package query

import (
	"fmt"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

var matchSchema = tuple.MustSchema(
	tuple.Column{Name: "k", Kind: tuple.KindInt},
	tuple.Column{Name: "v", Kind: tuple.KindFloat},
	tuple.Column{Name: "name", Kind: tuple.KindString},
	tuple.Column{Name: "ok", Kind: tuple.KindBool},
)

func matchTuples() []tuple.Tuple {
	var out []tuple.Tuple
	names := []string{"alpha", "beta", "gamma", "", "a%b_c"}
	for i := 0; i < 25; i++ {
		out = append(out, tuple.Tuple{
			ID: tuple.ID(i),
			T:  clock.Tick(i / 5),
			F:  tuple.Freshness(1.0 - float64(i)*0.03),
			Attrs: []tuple.Value{
				tuple.Int(int64(i - 5)),
				tuple.Float(float64(i) * 1.5),
				tuple.String_(names[i%len(names)]),
				tuple.Bool(i%3 == 0),
			},
		})
	}
	return out
}

// matchCorpus is every expression shape the compiler specialises plus
// the error paths whose messages must match the interpreter exactly.
var matchCorpus = []string{
	"",
	"true",
	"false",
	"k > 3",
	"k >= 3 AND k <= 10",
	"3 < k",
	"3.5 >= v",
	"v = 7.5",
	"v != 7.5",
	"k = v",
	"v = k",
	"name = \"beta\"",
	"\"beta\" != name",
	"name < \"b\"",
	"name LIKE \"%a\"",
	"name LIKE \"a\\%b%\"",
	"name NOT LIKE \"%a%\"",
	"ok",
	"ok = true",
	"NOT ok",
	"ok AND k > 0",
	"ok OR v < 3.0",
	"k IN (1, 2, 3)",
	"k IN (1.0, 2, 19)",
	"name IN (\"alpha\", \"gamma\")",
	"name NOT IN (\"alpha\")",
	"k IN (v, 3)",
	"k BETWEEN 2 AND 8",
	"k + 1 > v - 0.5",
	"k * 2 = 4",
	"k % 3 = 0",
	"-k > 2",
	"_t >= 2",
	"_f < 0.5",
	"_id BETWEEN 5 AND 9",
	"_id % 2 = 0 AND v > 1.0",
	"(k > 0 OR ok) AND NOT (name = \"beta\")",
	// Error paths: type mismatches surface per tuple with pinned text.
	"name > 3",
	"3 > name",
	"ok > 1",
	"k AND ok",
	"ok AND k",
	"NOT k",
	"name LIKE 3",
	"k LIKE \"a%\"",
	"-name > 0",
	"k / 0 = 1",
	"k % 0 = 1",
	"name + name = \"x\"",
	"k",
	"k + 1",
	"name",
}

func TestCompiledMatcherEquivalence(t *testing.T) {
	tuples := matchTuples()
	for _, src := range matchCorpus {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: parse: %v", src, err)
		}
		compiled := compileMatch(e, matchSchema)
		for i := range tuples {
			tp := &tuples[i]
			wantOK, wantErr := interpMatch(e, tp)
			gotOK, gotErr := compiled(tp)
			if wantOK != gotOK {
				t.Errorf("%q on tuple %d: compiled=%v interpreted=%v", src, i, gotOK, wantOK)
			}
			if (wantErr == nil) != (gotErr == nil) {
				t.Errorf("%q on tuple %d: compiled err=%v interpreted err=%v", src, i, gotErr, wantErr)
			} else if wantErr != nil && wantErr.Error() != gotErr.Error() {
				t.Errorf("%q on tuple %d:\n  compiled:    %v\n  interpreted: %v", src, i, gotErr, wantErr)
			}
		}
	}
}

// interpMatch is the reference: the expression tree walked through
// Expr.Eval with a TupleEnv, exactly what Predicate.Match did before
// compilation existed.
func interpMatch(e Expr, tp *tuple.Tuple) (bool, error) {
	v, err := e.Eval(TupleEnv{Schema: matchSchema, Tuple: tp})
	if err != nil {
		return false, err
	}
	if v.Kind() != tuple.KindBool {
		return false, fmt.Errorf("query: predicate yields %s, want BOOL", v.Kind())
	}
	return v.AsBool(), nil
}

func TestCompiledMatcherUnknownColumn(t *testing.T) {
	// Schema checks normally reject unknown columns at compile time;
	// the closure compiler must still reproduce the interpreter's
	// error if handed one (predicates built via FromExpr on unchecked
	// trees).
	e := Bin{Op: OpGt, L: Col{Name: "nosuch"}, R: Lit{V: tuple.Int(1)}}
	f := compileMatch(e, matchSchema)
	tp := matchTuples()[0]
	_, gotErr := f(&tp)
	_, wantErr := interpMatch(e, &tp)
	if gotErr == nil || wantErr == nil || gotErr.Error() != wantErr.Error() {
		t.Errorf("compiled=%v interpreted=%v", gotErr, wantErr)
	}
}
