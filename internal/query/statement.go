package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is one parsed query in the prepared-statement API: either a
// SELECT (optionally CONSUME) over a table extent, or an ASK over a
// knowledge-container digest. A Statement is pure syntax — it knows
// nothing about any schema. Compiling it against a schema with Plan
// performs every static check (column resolution, grouping rules,
// aggregate typing, ask-operand coercion) once, so Execute never pays
// for validation and malformed statements fail before they run.
type Statement struct {
	sel *SelectStmt
	ask *AskStmt
	src string
}

// ParseStatement parses a SELECT statement (see ParseSelect for the
// grammar). `?` placeholders may appear anywhere an expression may;
// they bind positionally at execute time.
func ParseStatement(src string) (*Statement, error) {
	stmt, err := ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return &Statement{sel: stmt, src: src}, nil
}

// Source returns the original statement text.
func (s *Statement) Source() string { return s.src }

// From returns the table a SELECT reads, or "" for ASK statements
// (their table is addressed out of band, the container by name).
func (s *Statement) From() string {
	if s.sel != nil {
		return s.sel.From
	}
	return ""
}

// NumParams returns the number of `?` placeholders the statement binds.
func (s *Statement) NumParams() int {
	if s.sel != nil {
		return s.sel.Params
	}
	return s.ask.Params
}

// Select exposes the parsed SELECT, nil for ASK statements.
func (s *Statement) Select() *SelectStmt { return s.sel }

// Ask exposes the parsed ASK, nil for SELECT statements.
func (s *Statement) Ask() *AskStmt { return s.ask }

// AskOp enumerates knowledge-container digest questions.
type AskOp uint8

// Digest questions.
const (
	AskCount    AskOp = iota // count          -> total absorbed tuples
	AskNDV                   // ndv:col        -> distinct values (HLL)
	AskMean                  // mean:col       -> running mean
	AskSum                   // sum:col        -> running sum
	AskQuantile              // q:col:p        -> p-quantile estimate
	AskTop                   // top:col[:k]    -> heavy hitters
	AskHas                   // has:col:value  -> Bloom membership
)

// AskStmt is a parsed knowledge-container question. The value operand
// of `has` stays raw text until Plan time, where the column's schema
// kind coerces it (or a `?` placeholder defers it to bind time).
type AskStmt struct {
	Container string
	Op        AskOp
	Col       string
	Quantile  float64
	K         int    // top-k fan-out (default 10)
	RawValue  string // has operand, source text
	HasParam  bool   // has operand is a `?` placeholder
	Params    int
}

// ParseAskStatement parses a digest question addressed at a container:
//
//	count | ndv:<col> | mean:<col> | sum:<col> | q:<col>:<0..1>
//	     | top:<col>[:k] | has:<col>:<value|?>
//
// Parsing checks only the question shape; column existence and value
// typing are compile-time checks done by Plan against the schema.
func ParseAskStatement(container, question string) (*Statement, error) {
	if container == "" {
		return nil, fmt.Errorf("query: ask wants a container name")
	}
	parts := strings.Split(question, ":")
	ask := &AskStmt{Container: container}
	needCol := func(form string) error {
		if len(parts) < 2 || parts[1] == "" {
			return fmt.Errorf("query: %s wants %s", parts[0], form)
		}
		ask.Col = parts[1]
		return nil
	}
	switch parts[0] {
	case "count":
		if len(parts) != 1 {
			return nil, fmt.Errorf("query: count takes no operand")
		}
		ask.Op = AskCount
	case "ndv", "mean", "sum":
		if err := needCol(parts[0] + ":<col>"); err != nil {
			return nil, err
		}
		if len(parts) != 2 {
			return nil, fmt.Errorf("query: %s wants %s:<col>", parts[0], parts[0])
		}
		switch parts[0] {
		case "ndv":
			ask.Op = AskNDV
		case "mean":
			ask.Op = AskMean
		default:
			ask.Op = AskSum
		}
	case "q":
		if len(parts) != 3 {
			return nil, fmt.Errorf("query: quantile wants q:<col>:<0..1>")
		}
		ask.Op = AskQuantile
		ask.Col = parts[1]
		p, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("query: bad quantile %q (want 0..1)", parts[2])
		}
		ask.Quantile = p
	case "top":
		if err := needCol("top:<col>[:k]"); err != nil {
			return nil, err
		}
		ask.Op = AskTop
		ask.K = 10
		if len(parts) == 3 {
			k, err := strconv.Atoi(parts[2])
			if err != nil || k < 1 {
				return nil, fmt.Errorf("query: bad top-k %q", parts[2])
			}
			ask.K = k
		} else if len(parts) != 2 {
			return nil, fmt.Errorf("query: top wants top:<col>[:k]")
		}
	case "has":
		if len(parts) != 3 {
			return nil, fmt.Errorf("query: has wants has:<col>:<value>")
		}
		ask.Op = AskHas
		ask.Col = parts[1]
		if parts[2] == "?" {
			ask.HasParam = true
			ask.Params = 1
		} else {
			ask.RawValue = parts[2]
		}
	default:
		return nil, fmt.Errorf("query: unknown question %q", question)
	}
	return &Statement{ask: ask, src: "ask " + container + " " + question}, nil
}
