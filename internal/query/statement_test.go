package query

import (
	"strings"
	"testing"

	"fungusdb/internal/tuple"
)

// --- placeholders -----------------------------------------------------

func TestPlaceholderIndicesAssignInParseOrder(t *testing.T) {
	stmt, err := ParseStatement("SELECT user FROM clicks WHERE dwell > ? AND url = ? OR dwell IN (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 4 {
		t.Fatalf("NumParams = %d, want 4", stmt.NumParams())
	}
	plan, err := stmt.Plan(clickSchema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumParams() != 4 {
		t.Fatalf("plan params = %d, want 4", plan.NumParams())
	}
}

func TestPlaceholderBindAndMatch(t *testing.T) {
	stmt, err := ParseStatement("SELECT * FROM clicks WHERE dwell >= ? AND user = ?")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := stmt.Plan(clickSchema)
	if err != nil {
		t.Fatal(err)
	}
	params := []tuple.Value{tuple.Int(300), tuple.String_("alice")}
	if err := plan.BindCheck(params); err != nil {
		t.Fatal(err)
	}
	tuples := clickTuples()
	var matched int
	for i := range tuples {
		ok, err := plan.Match(&tuples[i], params)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			matched++
		}
	}
	// alice rows with dwell >= 300: (/shop,300) and (/home,500).
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
}

func TestPlaceholderArityMismatch(t *testing.T) {
	stmt, _ := ParseStatement("SELECT * FROM clicks WHERE dwell > ?")
	plan, err := stmt.Plan(clickSchema)
	if err != nil {
		t.Fatal(err)
	}
	for _, params := range [][]tuple.Value{
		nil,
		{tuple.Int(1), tuple.Int(2)},
	} {
		if err := plan.BindCheck(params); err == nil {
			t.Errorf("BindCheck(%v) accepted wrong arity", params)
		}
	}
	if err := plan.BindCheck([]tuple.Value{{}}); err == nil {
		t.Error("BindCheck accepted an invalid (zero) value")
	}
}

func TestPlaceholderTypeMismatchSurfacesAtMatch(t *testing.T) {
	stmt, _ := ParseStatement("SELECT * FROM clicks WHERE dwell > ?")
	plan, err := stmt.Plan(clickSchema)
	if err != nil {
		t.Fatal(err)
	}
	tuples := clickTuples()
	// Comparing INT column against STRING param is a runtime type error.
	if _, err := plan.Match(&tuples[0], []tuple.Value{tuple.String_("nope")}); err == nil {
		t.Fatal("INT vs STRING comparison did not error")
	}
}

func TestBareWhereRejectsPlaceholders(t *testing.T) {
	if _, err := Parse("dwell > ?"); err == nil {
		t.Fatal("Parse accepted a placeholder outside a prepared statement")
	}
	if _, err := Compile("dwell > ?", clickSchema); err == nil {
		t.Fatal("Compile accepted a placeholder")
	}
}

func TestUnboundPlaceholderEvalErrors(t *testing.T) {
	stmt, _ := ParseStatement("SELECT dwell + ? AS d FROM clicks")
	plan, err := stmt.Plan(clickSchema)
	if err != nil {
		t.Fatal(err)
	}
	tuples := clickTuples()
	// Project with an empty param slice: the placeholder must fail, not
	// silently evaluate.
	if _, err := plan.Project(&tuples[0], nil); err == nil {
		t.Fatal("unbound placeholder evaluated")
	}
}

// --- plan compile checks ---------------------------------------------

func TestPlanRejectsUnknownColumns(t *testing.T) {
	for _, src := range []string{
		"SELECT nosuch FROM clicks",
		"SELECT * FROM clicks WHERE nosuch = 1",
		"SELECT user, COUNT(*) FROM clicks GROUP BY nosuch",
		"SELECT user FROM clicks GROUP BY url", // non-grouped plain target
	} {
		stmt, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := stmt.Plan(clickSchema); err == nil {
			t.Errorf("Plan accepted %q", src)
		}
	}
}

func TestPlanRouting(t *testing.T) {
	cases := []struct {
		src                        string
		agg, consume, ordered, raw bool
	}{
		{"SELECT * FROM clicks", false, false, false, false},
		{"SELECT COUNT(*) FROM clicks", true, false, false, false},
		{"SELECT user, COUNT(*) AS n FROM clicks GROUP BY user", true, false, false, false},
		{"SELECT CONSUME * FROM clicks WHERE dwell > 1", false, true, false, false},
		{"SELECT user FROM clicks ORDER BY user", false, false, true, false},
	}
	for _, c := range cases {
		stmt, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		plan, err := stmt.Plan(clickSchema)
		if err != nil {
			t.Fatalf("plan %q: %v", c.src, err)
		}
		if plan.Aggregated() != c.agg || plan.Consume() != c.consume ||
			plan.Ordered() != c.ordered || plan.Raw() != c.raw {
			t.Errorf("%q routing = agg:%v consume:%v ordered:%v raw:%v",
				c.src, plan.Aggregated(), plan.Consume(), plan.Ordered(), plan.Raw())
		}
	}
}

// --- ask statements ---------------------------------------------------

func TestParseAskForms(t *testing.T) {
	good := []string{
		"count", "ndv:user", "mean:dwell", "sum:dwell",
		"q:dwell:0.5", "top:url", "top:url:3", "has:user:alice", "has:dwell:?",
	}
	for _, q := range good {
		stmt, err := ParseAskStatement("c", q)
		if err != nil {
			t.Errorf("ParseAskStatement(%q): %v", q, err)
			continue
		}
		if _, err := stmt.Plan(clickSchema); err != nil {
			t.Errorf("Plan(%q): %v", q, err)
		}
	}
	bad := []string{
		"", "count:extra", "ndv", "ndv:", "q:dwell", "q:dwell:2.0", "q:dwell:x",
		"top:url:0", "has:user", "unknown", "mean:dwell:extra",
	}
	for _, q := range bad {
		if stmt, err := ParseAskStatement("c", q); err == nil {
			if _, err := stmt.Plan(clickSchema); err == nil {
				t.Errorf("ask %q accepted", q)
			}
		}
	}
}

func TestAskPlanValidatesColumnAndOperand(t *testing.T) {
	// Unknown column caught at compile, not at digest time.
	stmt, err := ParseAskStatement("c", "ndv:nosuch")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Plan(clickSchema); err == nil {
		t.Fatal("unknown ask column compiled")
	}
	// INT column with a non-integer has-operand: compile-time coercion
	// failure.
	stmt, err = ParseAskStatement("c", "has:dwell:notanint")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Plan(clickSchema); err == nil {
		t.Fatal("bad has operand compiled")
	}
	// Parameterised has defers the operand to bind time.
	stmt, _ = ParseAskStatement("c", "has:dwell:?")
	plan, err := stmt.Plan(clickSchema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumParams() != 1 {
		t.Fatalf("has:dwell:? params = %d, want 1", plan.NumParams())
	}
}

// --- parser edge cases (NOT with postfix operators, precedence) -------

func matchWhere(t *testing.T, where string, tp *tuple.Tuple) bool {
	t.Helper()
	pred, err := Compile(where, clickSchema)
	if err != nil {
		t.Fatalf("Compile(%q): %v", where, err)
	}
	ok, err := pred.Match(tp)
	if err != nil {
		t.Fatalf("Match(%q): %v", where, err)
	}
	return ok
}

func TestNotWithPostfixOperators(t *testing.T) {
	tuples := clickTuples()
	alice := &tuples[0] // alice /home 100
	cases := []struct {
		where string
		want  bool
	}{
		{"user NOT LIKE 'b%'", true},
		{"user NOT LIKE 'a%'", false},
		{"NOT user LIKE 'a%'", false},
		{"NOT (user LIKE 'a%')", false},
		{"dwell NOT IN (100, 200)", false},
		{"dwell NOT IN (300, 400)", true},
		{"NOT dwell IN (100)", false},
		{"dwell NOT BETWEEN 50 AND 150", false},
		{"dwell NOT BETWEEN 150 AND 250", true},
		{"NOT user LIKE 'b%' AND dwell NOT IN (999)", true},
		// NOT binds the whole postfix expression, then AND combines.
		{"NOT (user LIKE 'a%' AND dwell IN (100))", false},
	}
	for _, c := range cases {
		if got := matchWhere(t, c.where, alice); got != c.want {
			t.Errorf("%q = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestPrecedenceVsParentheses(t *testing.T) {
	tuples := clickTuples()
	alice := &tuples[0] // alice /home 100
	cases := []struct {
		where string
		want  bool
	}{
		// AND binds tighter than OR.
		{"user = 'bob' OR user = 'alice' AND dwell = 100", true},
		{"(user = 'bob' OR user = 'alice') AND dwell = 999", false},
		// NOT binds tighter than AND.
		{"NOT user = 'bob' AND dwell = 100", true},
		{"NOT (user = 'bob' AND dwell = 100)", true},
		{"NOT (user = 'alice' AND dwell = 100)", false},
		// Arithmetic precedence: * over +, parens override.
		{"dwell = 10 + 9 * 10", true},
		{"dwell = (10 + 9) * 10", false},
		{"dwell % 30 = 10", true},
		{"-dwell + 200 = 100", true},
	}
	for _, c := range cases {
		if got := matchWhere(t, c.where, alice); got != c.want {
			t.Errorf("%q = %v, want %v", c.where, got, c.want)
		}
	}
}

// TestErrorMessageStability pins the user-facing text of the most
// common mistakes: these strings are part of the API surface (clients
// and docs show them verbatim), so changing one should be a conscious
// decision that updates this test.
func TestErrorMessageStability(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"SELECT", "query: unexpected end of expression"},
		{"SELECT *", "query: missing FROM"},
		{"SELECT * FROM", "query: FROM wants a table name"},
		{"SELECT * FROM t WHERE", "query: unexpected end of expression"},
		{"SELECT * FROM t LIMIT x", "query: LIMIT wants an integer"},
		{"SELECT * FROM t GROUP user", "query: GROUP wants BY"},
		{"SELECT COUNT( FROM t", "query: aggregate missing ')'"},
		{"SELECT SUM(*) FROM t", "query: only COUNT accepts '*'"},
	}
	for _, c := range cases {
		_, err := ParseStatement(c.src)
		if err == nil {
			t.Errorf("%q parsed", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q error = %q, want it to contain %q", c.src, err, c.want)
		}
	}
	whereCases := []struct {
		src, want string
	}{
		{"a !", "stray '!'"},
		{"'unterminated", "unterminated string"},
		{"1e", "malformed exponent"},
		{"a NOT 1", "query: unexpected \"NOT\""},
		{"a IN 1", "IN needs '('"},
		{"a BETWEEN 1 OR 2", "BETWEEN wants AND"},
		{"dwell > ?", "placeholder"},
	}
	for _, c := range whereCases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q parsed", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q error = %q, want it to contain %q", c.src, err, c.want)
		}
	}
}
