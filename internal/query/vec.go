package query

import (
	"fmt"
	"math"
	"math/bits"

	"fungusdb/internal/tuple"
)

// This file lowers WHERE clauses a second time, into column-wise batch
// kernels. The per-tuple closures in match.go stay the semantic
// reference: a batch program exists only for expression shapes whose
// kernels reproduce the interpreted path bit for bit — same selected
// rows, same error text, same first-erroring row. Shapes without a
// kernel simply do not compile (compileVecMatch returns nil) and the
// executor falls back to tuple-at-a-time matching, so vectorization is
// never a semantics fork, only a faster route for the common plans:
// comparisons of a column against a literal or another column, IN over
// a literal list, LIKE with a literal pattern, bare BOOL columns, and
// AND/OR/NOT over those.
//
// A kernel evaluates one operator over a selection bitmap (one bit per
// batch row) and writes a result bitmap. Errors keep lazy, per-row
// semantics: eval returns the index of the first selected row whose
// evaluation would error under the interpreter, with result bits
// defined only below that row — exactly the prefix a tuple-at-a-time
// scan would have produced before aborting.

// vecProg is an immutable compiled batch program, shared by every
// execution of its plan. Scratch state lives in BatchMatcher.
type vecProg struct {
	root vecNode
	nbuf int // scratch selection-bitmap slots
	nstr int // string translate-table slots
}

// vecNode is one operator of a compiled batch program.
type vecNode interface {
	// eval computes the operator over the rows selected in sel,
	// setting out bits for rows where it yields true. It returns the
	// index of the first selected row whose evaluation errors (b.N
	// when none) and that row's error. Bits of out at or above the
	// returned row are unspecified; callers mask before use.
	eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error)
}

// batchWords is the bitmap length covering a full batch.
const batchWords = tuple.BatchRows / 64

// maskBelow clears every bit at row index >= n.
func maskBelow(words []uint64, n int) {
	w := n >> 6
	if w >= len(words) {
		return
	}
	words[w] &= (1 << uint(n&63)) - 1
	for i := w + 1; i < len(words); i++ {
		words[i] = 0
	}
}

// firstSet returns the lowest set row index, or -1 when empty.
func firstSet(words []uint64) int {
	for w, m := range words {
		if m != 0 {
			return w<<6 + bits.TrailingZeros64(m)
		}
	}
	return -1
}

func zeroWords(words []uint64) {
	for i := range words {
		words[i] = 0
	}
}

// batchNum reads row j of a numeric column as its float64 image —
// the same conversion colAcc.num applies on the tuple path. ok is
// false for non-numeric kinds.
func batchNum(c colAcc, b *tuple.Batch, j int) (float64, bool) {
	switch c.sys {
	case 1:
		return float64(b.Ts[j]), true
	case 2:
		return b.Fs[j], true
	case 3:
		return float64(b.IDs[j]), true
	}
	cv := &b.Cols[c.idx]
	switch c.kind {
	case tuple.KindInt:
		return float64(cv.Ints[j]), true
	case tuple.KindFloat:
		return cv.Floats[j], true
	}
	return 0, false
}

// batchValue reads row j of a column as a boxed Value, mirroring
// colAcc.value.
func batchValue(c colAcc, b *tuple.Batch, j int) tuple.Value {
	switch c.sys {
	case 1:
		return tuple.Int(b.Ts[j])
	case 2:
		return tuple.Float(b.Fs[j])
	case 3:
		return tuple.Int(int64(b.IDs[j]))
	}
	return b.Cols[c.idx].Value(j)
}

// --- combinators ----------------------------------------------------

// andNode mirrors the interpreter's short-circuit AND: the right side
// is only evaluated for rows where the left was true and error-free.
type andNode struct {
	l, r vecNode
	tmp  int
}

func (nd *andNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	tmp := m.bufs[nd.tmp][:len(sel)]
	ra, errA := nd.l.eval(m, b, sel, tmp)
	if ra < b.N {
		maskBelow(tmp, ra)
	}
	rb, errB := nd.r.eval(m, b, tmp, out)
	for i := range out {
		out[i] &= tmp[i]
	}
	// The scan would abort at the earliest erroring row, whichever
	// side it came from; left errors only exist at ra, right errors
	// only below it (tmp was masked).
	if rb < ra {
		return rb, errB
	}
	return ra, errA
}

// orNode mirrors short-circuit OR: the right side runs only where the
// left was false and error-free.
type orNode struct {
	l, r       vecNode
	tmpA, tmpB int
}

func (nd *orNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	ltrue := m.bufs[nd.tmpA][:len(sel)]
	ra, errA := nd.l.eval(m, b, sel, ltrue)
	if ra < b.N {
		maskBelow(ltrue, ra)
	}
	rsel := m.bufs[nd.tmpB][:len(sel)]
	for i := range rsel {
		rsel[i] = sel[i] &^ ltrue[i]
	}
	if ra < b.N {
		maskBelow(rsel, ra)
	}
	rb, errB := nd.r.eval(m, b, rsel, out)
	for i := range out {
		out[i] |= ltrue[i]
	}
	if rb < ra {
		return rb, errB
	}
	return ra, errA
}

type notNode struct {
	x   vecNode
	tmp int
}

func (nd *notNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	tmp := m.bufs[nd.tmp][:len(sel)]
	rx, err := nd.x.eval(m, b, sel, tmp)
	for i := range out {
		out[i] = sel[i] &^ tmp[i]
	}
	return rx, err
}

// --- leaf kernels ---------------------------------------------------

// numLitNode compares a numeric column against a non-NaN numeric
// constant. check is set for FLOAT columns, whose stored values can be
// NaN and then error exactly like the interpreter.
type numLitNode struct {
	c     colAcc
	op    BinOp
	lit   float64
	check bool
	err   error
}

func (nd *numLitNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			a, _ := batchNum(nd.c, b, j)
			if nd.check && math.IsNaN(a) {
				return j, nd.err
			}
			if cmpDecide(nd.op, cmpFloat(a, nd.lit)) {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

// numColColNode compares two numeric columns row-wise.
type numColColNode struct {
	l, r colAcc
	op   BinOp
	err  error
}

func (nd *numColColNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			a, _ := batchNum(nd.l, b, j)
			bb, _ := batchNum(nd.r, b, j)
			if math.IsNaN(a) || math.IsNaN(bb) {
				return j, nd.err
			}
			if cmpDecide(nd.op, cmpFloat(a, bb)) {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

// strTableNode evaluates a per-string predicate (comparison against a
// literal, IN set probe, LIKE pattern) over a dictionary-encoded
// column by translating it once per dictionary entry and then probing
// the resulting truth table per row — the predicate itself runs
// O(distinct), not O(rows). Tables cache per segment tag: a tag
// changes whenever a segment's dictionary could (rebuild, compaction),
// so a stale table can never be probed.
type strTableNode struct {
	idx  int
	slot int
	pred func(string) bool
}

func (nd *strTableNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	cv := &b.Cols[nd.idx]
	tab := m.tabs[nd.slot]
	if m.tabSeg[nd.slot] != b.Seg || len(tab) < len(cv.Dict) {
		tab = make([]bool, len(cv.Dict))
		for d, s := range cv.Dict {
			tab[d] = nd.pred(s)
		}
		m.tabs[nd.slot] = tab
		m.tabSeg[nd.slot] = b.Seg
	}
	codes := cv.Codes
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			if tab[codes[j]] {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

// strColColNode compares two string columns row-wise through their
// dictionaries.
type strColColNode struct {
	li, ri int
	op     BinOp
}

func (nd *strColColNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	lc, rc := &b.Cols[nd.li], &b.Cols[nd.ri]
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			if cmpDecide(nd.op, cmpString(lc.Dict[lc.Codes[j]], rc.Dict[rc.Codes[j]])) {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

type boolCmpLitNode struct {
	idx int
	op  BinOp
	lit bool
}

func (nd *boolCmpLitNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	vals := b.Cols[nd.idx].Bools
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			if cmpDecide(nd.op, cmpBool(vals[j], nd.lit)) {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

type boolColColNode struct {
	li, ri int
	op     BinOp
}

func (nd *boolColColNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	lv, rv := b.Cols[nd.li].Bools, b.Cols[nd.ri].Bools
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			if cmpDecide(nd.op, cmpBool(lv[j], rv[j])) {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

// numInNode probes a numeric column against a literal set keyed by
// float64 image; NaN values miss, matching Compare.
type numInNode struct {
	c   colAcc
	set map[float64]struct{}
}

func (nd *numInNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			a, _ := batchNum(nd.c, b, j)
			if _, hit := nd.set[a]; hit {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

// boolColNode is a bare BOOL column used as the predicate.
type boolColNode struct {
	idx int
}

func (nd *boolColNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	vals := b.Cols[nd.idx].Bools
	zeroWords(out)
	for w, mset := range sel {
		base := w << 6
		for mset != 0 {
			j := base + bits.TrailingZeros64(mset)
			mset &= mset - 1
			if vals[j] {
				out[w] |= 1 << uint(j&63)
			}
		}
	}
	return b.N, nil
}

// litBoolNode is a constant BOOL predicate.
type litBoolNode struct {
	val bool
}

func (nd *litBoolNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	if nd.val {
		copy(out, sel)
	} else {
		zeroWords(out)
	}
	return b.N, nil
}

// staticErrNode reproduces operators that error for every tuple they
// are evaluated on (statically incomparable kinds, NaN literals,
// non-string LIKE operands): the scan aborts at the first selected
// row, or selects nothing when no row reaches the operator.
type staticErrNode struct {
	err error
}

func (nd *staticErrNode) eval(m *BatchMatcher, b *tuple.Batch, sel, out []uint64) (int, error) {
	zeroWords(out)
	if j := firstSet(sel); j >= 0 {
		return j, nd.err
	}
	return b.N, nil
}

// --- compiler -------------------------------------------------------

type vecCompiler struct {
	schema *tuple.Schema
	nbuf   int
	nstr   int
}

func (vc *vecCompiler) buf() int { vc.nbuf++; return vc.nbuf - 1 }
func (vc *vecCompiler) str() int { vc.nstr++; return vc.nstr - 1 }

// compileVecMatch lowers a predicate into a batch program, or nil when
// some node has no kernel with interpreter-identical semantics.
func compileVecMatch(e Expr, schema *tuple.Schema) *vecProg {
	vc := &vecCompiler{schema: schema}
	root := vc.boolNode(e)
	if root == nil {
		return nil
	}
	return &vecProg{root: root, nbuf: vc.nbuf, nstr: vc.nstr}
}

// boolNode mirrors compileBoolNode's shape dispatch; nil means the
// shape needs the tuple-at-a-time path.
func (vc *vecCompiler) boolNode(e Expr) vecNode {
	switch n := e.(type) {
	case Bin:
		switch n.Op {
		case OpAnd, OpOr:
			l := vc.boolNode(n.L)
			if l == nil {
				return nil
			}
			r := vc.boolNode(n.R)
			if r == nil {
				return nil
			}
			if n.Op == OpAnd {
				return &andNode{l: l, r: r, tmp: vc.buf()}
			}
			return &orNode{l: l, r: r, tmpA: vc.buf(), tmpB: vc.buf()}
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			return vc.cmp(n)
		}
	case Not:
		x := vc.boolNode(n.X)
		if x == nil {
			return nil
		}
		return &notNode{x: x, tmp: vc.buf()}
	case Like:
		return vc.like(n)
	case In:
		return vc.in(n)
	case Lit:
		if n.V.Kind() == tuple.KindBool {
			return &litBoolNode{val: n.V.AsBool()}
		}
	case Col:
		if c, ok := resolveCol(n.Name, vc.schema); ok && c.kind == tuple.KindBool {
			return &boolColNode{idx: c.idx}
		}
	}
	return nil
}

func (vc *vecCompiler) cmp(n Bin) vecNode {
	op := n.Op
	if c, ok := colRef(n.L, vc.schema); ok {
		if lit, isLit := n.R.(Lit); isLit {
			return vc.colLit(c, op, lit.V, false)
		}
		if c2, ok2 := colRef(n.R, vc.schema); ok2 {
			return vc.colCol(c, op, c2)
		}
		return nil
	}
	if lit, isLit := n.L.(Lit); isLit {
		if c, ok := colRef(n.R, vc.schema); ok {
			return vc.colLit(c, flipCmp(op), lit.V, true)
		}
	}
	return nil
}

// colLit mirrors compileColLitCmp case for case, including the
// error-message operand order under swap.
func (vc *vecCompiler) colLit(c colAcc, op BinOp, lit tuple.Value, swap bool) vecNode {
	kinds := [2]tuple.Kind{c.kind, lit.Kind()}
	if swap {
		kinds[0], kinds[1] = kinds[1], kinds[0]
	}
	incomparable := fmt.Errorf("query: cannot compare %s and %s", kinds[0], kinds[1])
	switch {
	case numericKind(c.kind) && numericKind(lit.Kind()):
		b, _ := lit.Numeric()
		if math.IsNaN(b) {
			return &staticErrNode{err: incomparable}
		}
		// INT columns never produce NaN through their float64 image,
		// so only FLOAT columns carry the per-row check.
		return &numLitNode{c: c, op: op, lit: b, check: c.kind == tuple.KindFloat, err: incomparable}
	case c.kind == tuple.KindString && lit.Kind() == tuple.KindString:
		s := lit.AsString()
		return &strTableNode{idx: c.idx, slot: vc.str(), pred: func(x string) bool {
			return cmpDecide(op, cmpString(x, s))
		}}
	case c.kind == tuple.KindBool && lit.Kind() == tuple.KindBool:
		return &boolCmpLitNode{idx: c.idx, op: op, lit: lit.AsBool()}
	default:
		return &staticErrNode{err: incomparable}
	}
}

// colCol mirrors compileColColCmp.
func (vc *vecCompiler) colCol(l colAcc, op BinOp, r colAcc) vecNode {
	switch {
	case numericKind(l.kind) && numericKind(r.kind):
		return &numColColNode{l: l, r: r, op: op,
			err: fmt.Errorf("query: cannot compare %s and %s", l.kind, r.kind)}
	case l.kind == tuple.KindString && r.kind == tuple.KindString:
		return &strColColNode{li: l.idx, ri: r.idx, op: op}
	case l.kind == tuple.KindBool && r.kind == tuple.KindBool:
		return &boolColColNode{li: l.idx, ri: r.idx, op: op}
	default:
		return &staticErrNode{err: fmt.Errorf("query: cannot compare %s and %s", l.kind, r.kind)}
	}
}

// like mirrors compileLike for literal patterns; computed patterns
// fall back.
func (vc *vecCompiler) like(n Like) vecNode {
	c, ok := colRef(n.X, vc.schema)
	if !ok {
		return nil
	}
	lit, isLit := n.Pattern.(Lit)
	if !isLit {
		return nil
	}
	if lit.V.Kind() == tuple.KindString {
		pat := lit.V.AsString()
		if c.kind == tuple.KindString {
			return &strTableNode{idx: c.idx, slot: vc.str(), pred: func(x string) bool {
				return likeMatch(x, pat)
			}}
		}
		return &staticErrNode{err: fmt.Errorf("query: LIKE needs STRING operands, got %s and %s", c.kind, tuple.KindString)}
	}
	return &staticErrNode{err: fmt.Errorf("query: LIKE needs STRING operands, got %s and %s", c.kind, lit.V.Kind())}
}

// in mirrors compileIn's hash-set specialisation; other shapes fall
// back.
func (vc *vecCompiler) in(n In) vecNode {
	c, ok := colRef(n.X, vc.schema)
	if !ok || !allLits(n.List) {
		return nil
	}
	switch {
	case numericKind(c.kind):
		set := make(map[float64]struct{}, len(n.List))
		for _, it := range n.List {
			if f, ok := it.(Lit).V.Numeric(); ok && !math.IsNaN(f) {
				set[f] = struct{}{}
			}
		}
		return &numInNode{c: c, set: set}
	case c.kind == tuple.KindString:
		set := make(map[string]struct{}, len(n.List))
		for _, it := range n.List {
			if v := it.(Lit).V; v.Kind() == tuple.KindString {
				set[v.AsString()] = struct{}{}
			}
		}
		return &strTableNode{idx: c.idx, slot: vc.str(), pred: func(x string) bool {
			_, hit := set[x]
			return hit
		}}
	}
	return nil
}

// --- matcher --------------------------------------------------------

// BatchMatcher is one execution's batch-program state: scratch
// selection bitmaps and per-segment string translate tables. It is not
// safe for concurrent use; executors create one per shard scan.
type BatchMatcher struct {
	prog   *vecProg
	base   []uint64
	out    []uint64
	bufs   [][]uint64
	tabSeg []uint64
	tabs   [][]bool
}

func newBatchMatcher(prog *vecProg) *BatchMatcher {
	m := &BatchMatcher{
		prog: prog,
		base: make([]uint64, batchWords),
		out:  make([]uint64, batchWords),
	}
	if prog != nil {
		m.bufs = make([][]uint64, prog.nbuf)
		for i := range m.bufs {
			m.bufs[i] = make([]uint64, batchWords)
		}
		m.tabSeg = make([]uint64, prog.nstr)
		m.tabs = make([][]bool, prog.nstr)
	}
	return m
}

// Match evaluates the WHERE program over one batch, returning the
// selection bitmap of matching live rows, the first erroring row (b.N
// when none) and its error. Bits at or above the error row are
// cleared: they are exactly the rows a tuple-at-a-time scan would
// never have reached. The bitmap aliases matcher scratch and is valid
// until the next Match call.
func (m *BatchMatcher) Match(b *tuple.Batch) ([]uint64, int, error) {
	nw := len(b.Live)
	sel := m.base[:nw]
	copy(sel, b.Live)
	if m.prog == nil {
		return sel, b.N, nil
	}
	out := m.out[:nw]
	errRow, err := m.prog.root.eval(m, b, sel, out)
	if errRow < b.N {
		maskBelow(out, errRow)
	}
	return out, errRow, err
}

// NewBatchMatcher returns a fresh batch evaluator for the plan's WHERE
// clause, or nil when the clause has no batch lowering (the executor
// then matches tuple at a time — same result, slower). Mirrors Match's
// compiled-path gate: unbound placeholders disable it.
func (p *Plan) NewBatchMatcher(params []tuple.Value) *BatchMatcher {
	if p.where == nil {
		return newBatchMatcher(nil)
	}
	if p.vec == nil || len(params) != 0 {
		return nil
	}
	return newBatchMatcher(p.vec)
}
