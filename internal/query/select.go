package query

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"fungusdb/internal/tuple"
)

// SelectStmt is a parsed SELECT statement:
//
//	SELECT [CONSUME] <targets> FROM <table>
//	       [WHERE <expr>] [GROUP BY <cols>]
//	       [ORDER BY <col> [ASC|DESC], ...] [LIMIT n | LIMIT ?]
//
// Targets are '*', expressions, or aggregate calls COUNT(*) /
// COUNT(expr) / SUM / AVG / MIN / MAX (expr), optionally aliased with
// AS. The CONSUME keyword selects the paper's second-law semantics:
// everything the statement reads is removed from the extent.
type SelectStmt struct {
	Consume bool
	Targets []SelectTarget
	From    string
	Where   Expr // nil = all
	GroupBy []string
	OrderBy []OrderKey
	Limit   int // 0 = unlimited
	// LimitParam is the placeholder index of a `LIMIT ?`, -1 when the
	// limit is a literal (or absent). The bound value is type-checked
	// (INT, non-negative) at Plan.Bind time.
	LimitParam int
	Params     int // number of `?` placeholders, in parse order
}

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregate functions.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (a AggKind) String() string {
	for n, k := range aggNames {
		if k == a {
			return n
		}
	}
	return ""
}

// SelectTarget is one output column.
type SelectTarget struct {
	Star  bool    // '*': expand to all schema columns (plain targets only)
	Agg   AggKind // AggNone for plain expressions
	Expr  Expr    // nil for COUNT(*) and Star
	Alias string  // output column name
}

// OrderKey is one ORDER BY element, referencing an output column name.
type OrderKey struct {
	Col  string
	Desc bool
}

// ParseSelect parses a SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if !p.eatKeyword("SELECT") {
		return nil, fmt.Errorf("query: statement must start with SELECT")
	}
	stmt := &SelectStmt{LimitParam: -1}
	if p.eatKeyword("CONSUME") {
		stmt.Consume = true
	}
	for {
		tgt, err := p.parseTarget()
		if err != nil {
			return nil, err
		}
		stmt.Targets = append(stmt.Targets, tgt)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if !p.eatKeyword("FROM") {
		return nil, fmt.Errorf("query: missing FROM at %d", p.peek().pos)
	}
	from := p.next()
	if from.kind != tokIdent {
		return nil, fmt.Errorf("query: FROM wants a table name at %d", from.pos)
	}
	stmt.From = from.text

	if p.eatKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.eatKeyword("GROUP") {
		if !p.eatKeyword("BY") {
			return nil, fmt.Errorf("query: GROUP wants BY at %d", p.peek().pos)
		}
		for {
			c := p.next()
			if c.kind != tokIdent {
				return nil, fmt.Errorf("query: GROUP BY wants a column at %d", c.pos)
			}
			stmt.GroupBy = append(stmt.GroupBy, c.text)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.eatKeyword("ORDER") {
		if !p.eatKeyword("BY") {
			return nil, fmt.Errorf("query: ORDER wants BY at %d", p.peek().pos)
		}
		for {
			c := p.next()
			if c.kind != tokIdent {
				return nil, fmt.Errorf("query: ORDER BY wants a column at %d", c.pos)
			}
			key := OrderKey{Col: c.text}
			if p.eatKeyword("DESC") {
				key.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.eatKeyword("LIMIT") {
		if p.peek().kind == tokQMark {
			p.next()
			stmt.LimitParam = p.params
			p.params++
		} else {
			n := p.next()
			if n.kind != tokInt {
				return nil, fmt.Errorf("query: LIMIT wants an integer at %d", n.pos)
			}
			v, err := strconv.Atoi(n.text)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("query: bad LIMIT %q", n.text)
			}
			stmt.Limit = v
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected %q at %d", t.text, t.pos)
	}
	stmt.Params = p.params
	return stmt, nil
}

// eatKeyword consumes the next token when it is the given keyword
// (case-insensitive identifier, or the AND keyword token for "AND").
func (p *parser) eatKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseTarget() (SelectTarget, error) {
	t := p.peek()
	// '*' star target.
	if t.kind == tokOp && t.text == "*" {
		p.next()
		return SelectTarget{Star: true}, nil
	}
	// Aggregate call?
	if t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToUpper(t.text)]; ok && p.toks[p.pos+1].kind == tokLParen {
			p.next()
			p.next() // '('
			tgt := SelectTarget{Agg: agg}
			inner := p.peek()
			if inner.kind == tokOp && inner.text == "*" {
				if agg != AggCount {
					return SelectTarget{}, fmt.Errorf("query: only COUNT accepts '*' at %d", inner.pos)
				}
				p.next()
			} else {
				e, err := p.parseAdd()
				if err != nil {
					return SelectTarget{}, err
				}
				tgt.Expr = e
			}
			if closing := p.next(); closing.kind != tokRParen {
				return SelectTarget{}, fmt.Errorf("query: aggregate missing ')' at %d", closing.pos)
			}
			tgt.Alias = defaultAlias(tgt)
			return p.maybeAlias(tgt)
		}
	}
	e, err := p.parseAdd()
	if err != nil {
		return SelectTarget{}, err
	}
	tgt := SelectTarget{Expr: e, Alias: defaultAlias(SelectTarget{Expr: e})}
	return p.maybeAlias(tgt)
}

func (p *parser) maybeAlias(tgt SelectTarget) (SelectTarget, error) {
	if p.eatKeyword("AS") {
		a := p.next()
		if a.kind != tokIdent {
			return SelectTarget{}, fmt.Errorf("query: AS wants a name at %d", a.pos)
		}
		tgt.Alias = a.text
	}
	return tgt, nil
}

func defaultAlias(tgt SelectTarget) string {
	switch {
	case tgt.Agg != AggNone && tgt.Expr == nil:
		return "count"
	case tgt.Agg != AggNone:
		return strings.ToLower(tgt.Agg.String()) + "(" + tgt.Expr.String() + ")"
	case tgt.Expr != nil:
		if c, ok := tgt.Expr.(Col); ok {
			return c.Name
		}
		return tgt.Expr.String()
	}
	return "*"
}

// Grid is a materialised SELECT result: named output columns and rows
// of values.
type Grid struct {
	Cols []string
	Rows [][]tuple.Value
}

// Execute evaluates the statement's target/group/order/limit stages
// over the given tuples (already filtered by WHERE). The engine layer
// owns the scan and consume semantics; Execute is pure. Statements with
// placeholders must run through a Plan, which threads the bound
// parameters into these same stages.
func Execute(stmt *SelectStmt, schema *tuple.Schema, tuples []tuple.Tuple) (*Grid, error) {
	targets, err := expandTargets(stmt, schema)
	if err != nil {
		return nil, err
	}
	hasAgg := false
	for _, t := range targets {
		if t.Agg != AggNone {
			hasAgg = true
		}
	}
	if len(stmt.GroupBy) > 0 || hasAgg {
		return executeGrouped(stmt, targets, schema, tuples, nil)
	}
	return executePlain(stmt, targets, schema, tuples, nil)
}

func expandTargets(stmt *SelectStmt, schema *tuple.Schema) ([]SelectTarget, error) {
	var out []SelectTarget
	for _, t := range stmt.Targets {
		if !t.Star {
			if t.Expr != nil {
				if err := checkCols(t.Expr, schema); err != nil {
					return nil, err
				}
			}
			out = append(out, t)
			continue
		}
		if stmt.GroupBy != nil {
			return nil, fmt.Errorf("query: '*' cannot be combined with GROUP BY")
		}
		for _, c := range schema.Columns() {
			out = append(out, SelectTarget{Expr: Col{Name: c.Name}, Alias: c.Name})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("query: empty target list")
	}
	seen := map[string]bool{}
	for _, t := range out {
		if seen[t.Alias] {
			return nil, fmt.Errorf("query: duplicate output column %q (use AS)", t.Alias)
		}
		seen[t.Alias] = true
	}
	return out, nil
}

func executePlain(stmt *SelectStmt, targets []SelectTarget, schema *tuple.Schema, tuples []tuple.Tuple, params []tuple.Value) (*Grid, error) {
	g := &Grid{}
	for _, t := range targets {
		g.Cols = append(g.Cols, t.Alias)
	}
	for i := range tuples {
		env := TupleEnv{Schema: schema, Tuple: &tuples[i], Params: params}
		row := make([]tuple.Value, len(targets))
		for j, t := range targets {
			v, err := t.Expr.Eval(env)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		g.Rows = append(g.Rows, row)
	}
	if err := orderAndLimit(g, stmt); err != nil {
		return nil, err
	}
	return g, nil
}

// aggState accumulates one aggregate cell.
type aggState struct {
	n   uint64
	sum float64
	min tuple.Value
	max tuple.Value
}

func (a *aggState) observe(kind AggKind, v tuple.Value) error {
	a.n++
	switch kind {
	case AggCount:
		return nil
	case AggSum, AggAvg:
		f, ok := v.Numeric()
		if !ok {
			return fmt.Errorf("query: %s over non-numeric %s", kind, v.Kind())
		}
		a.sum += f
		return nil
	case AggMin:
		if !a.min.IsValid() {
			a.min = v
			return nil
		}
		cmp, ok := v.Compare(a.min)
		if !ok {
			return fmt.Errorf("query: MIN over incomparable kinds")
		}
		if cmp < 0 {
			a.min = v
		}
		return nil
	case AggMax:
		if !a.max.IsValid() {
			a.max = v
			return nil
		}
		cmp, ok := v.Compare(a.max)
		if !ok {
			return fmt.Errorf("query: MAX over incomparable kinds")
		}
		if cmp > 0 {
			a.max = v
		}
		return nil
	}
	return fmt.Errorf("query: bad aggregate")
}

func (a *aggState) result(kind AggKind) tuple.Value {
	switch kind {
	case AggCount:
		return tuple.Int(int64(a.n))
	case AggSum:
		return tuple.Float(a.sum)
	case AggAvg:
		if a.n == 0 {
			return tuple.Float(0)
		}
		return tuple.Float(a.sum / float64(a.n))
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	}
	return tuple.Value{}
}

func executeGrouped(stmt *SelectStmt, targets []SelectTarget, schema *tuple.Schema, tuples []tuple.Tuple, params []tuple.Value) (*Grid, error) {
	if err := checkGrouping(stmt, targets, schema); err != nil {
		return nil, err
	}
	agg := &Aggregator{stmt: stmt, targets: targets, schema: schema, groups: map[string]*aggGroup{}, params: params}
	for i := range tuples {
		if err := agg.Feed(&tuples[i]); err != nil {
			return nil, err
		}
	}
	return agg.Grid()
}

// sortGridByKeys stably sorts rows by the given column indices.
func sortGridByKeys(g *Grid, keyIdx []int) {
	sort.SliceStable(g.Rows, func(a, b int) bool {
		for _, j := range keyIdx {
			if cmp, ok := g.Rows[a][j].Compare(g.Rows[b][j]); ok && cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

func orderAndLimit(g *Grid, stmt *SelectStmt) error {
	if len(stmt.OrderBy) > 0 {
		keys, err := resolveOrderKeys(stmt.OrderBy, g.Cols)
		if err != nil {
			return err
		}
		// Stable sort through the same key comparison the top-k
		// push-down uses: rows arrive in ID order, so stability makes
		// the total order (keys, ID) — identical to the heaps'.
		var sortErr error
		sort.SliceStable(g.Rows, func(a, b int) bool {
			cmp, err := compareOrderKeys(g.Rows[a], g.Rows[b], keys)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			return cmp < 0
		})
		if sortErr != nil {
			return sortErr
		}
	}
	if stmt.Limit > 0 && len(g.Rows) > stmt.Limit {
		g.Rows = g.Rows[:stmt.Limit]
	}
	return nil
}

// Render writes the grid as an aligned text table.
func (g *Grid) Render(w io.Writer) {
	widths := make([]int, len(g.Cols))
	cells := make([][]string, 0, len(g.Rows))
	for i, c := range g.Cols {
		widths[i] = len(c)
	}
	for _, row := range g.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			s := v.String()
			if v.Kind() == tuple.KindString {
				s = v.AsString() // unquoted for display
			}
			line[i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
		cells = append(cells, line)
	}
	writeLine := func(line []string) {
		var b strings.Builder
		for i, s := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			if pad := widths[i] - len(s); pad > 0 && i < len(line)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, b.String())
	}
	writeLine(g.Cols)
	for _, line := range cells {
		writeLine(line)
	}
}
