package storage

import (
	"encoding/binary"
	"math"

	"fungusdb/internal/sketch"
	"fungusdb/internal/tuple"
)

// zoneBlobVersion versions the serialised zone record layout, including
// the bloom filter bit layout it embeds (see sketch.hashes). A reader
// that sees a different version discards the blob and rebuilds the
// summaries from the restored tuples — persistence here is an
// optimisation, never a correctness dependency.
const zoneBlobVersion = 1

// pendingZone is a snapshot zone summary staged for install: when a
// restore creates the segment at its base, the summary is adopted and
// per-row folds are skipped for every row with ID <= coverMax (the
// summary's ID high-water mark — IDs are globally monotonic, so rows
// the summary has not seen always sort above it and fold normally).
type pendingZone struct {
	zone     *ZoneMap
	coverMax tuple.ID
}

// AppendZones serialises every usable segment zone map of the store to
// dst. Dirty or empty summaries are skipped: recovery rebuilds those
// the ordinary way. The blob is self-describing and safe to hand to a
// store with a different shard count or segment size — records that do
// not line up with the reader's layout are simply dropped.
func (s *Store) AppendZones(dst []byte) []byte {
	var recs [][]byte
	for i := s.first; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg == nil || !sg.zone.usable() {
			continue
		}
		recs = append(recs, appendZoneRecord(nil, sg))
	}
	return appendZoneBlob(dst, recs)
}

// InstallZones parses a blob written by AppendZones and stages every
// record that matches this store's layout (stride and residue class)
// for install during the upcoming Restore stream. Unparseable or
// mismatched blobs are ignored without error.
func (s *Store) InstallZones(blob []byte) {
	pos := 0
	ver, n := binary.Uvarint(blob[pos:])
	if n <= 0 || ver != zoneBlobVersion {
		return
	}
	pos += n
	count, n := binary.Uvarint(blob[pos:])
	if n <= 0 {
		return
	}
	pos += n
	for i := uint64(0); i < count; i++ {
		rlen, n := binary.Uvarint(blob[pos:])
		if n <= 0 || pos+n+int(rlen) > len(blob) {
			return
		}
		pos += n
		rec := blob[pos : pos+int(rlen)]
		pos += int(rlen)
		base, coverMax, zone, ok := decodeZoneRecord(rec, s.schema)
		if !ok {
			continue
		}
		if tuple.ID(zoneStride(rec)) != s.stride || base%s.stride != s.offset%s.stride {
			continue
		}
		if s.pendingZones == nil {
			s.pendingZones = make(map[tuple.ID]pendingZone)
		}
		s.pendingZones[base] = pendingZone{zone: zone, coverMax: coverMax}
	}
}

// AppendZones serialises the usable zone maps of every shard into one
// blob. Records carry their shard's stride and base, so a reader with a
// different shard count drops them instead of misinstalling.
func (ss *ShardedStore) AppendZones(dst []byte) []byte {
	var recs [][]byte
	for _, sh := range ss.shards {
		for i := sh.first; i < len(sh.segs); i++ {
			sg := sh.segs[i]
			if sg == nil || !sg.zone.usable() {
				continue
			}
			recs = append(recs, appendZoneRecord(nil, sg))
		}
	}
	return appendZoneBlob(dst, recs)
}

// appendZoneBlob frames the records: version, count, then each record
// length-prefixed.
func appendZoneBlob(dst []byte, recs [][]byte) []byte {
	dst = binary.AppendUvarint(dst, zoneBlobVersion)
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(r)))
		dst = append(dst, r...)
	}
	return dst
}

// InstallZones offers the blob to every shard; each stages only the
// records that match its own stride and residue class.
func (ss *ShardedStore) InstallZones(blob []byte) {
	for _, sh := range ss.shards {
		sh.InstallZones(blob)
	}
}

// appendZoneRecord serialises one segment's summary: base, stride, then
// the tick/ID bounds and per-column kind-tagged bounds (with the bloom
// for STRING columns).
func appendZoneRecord(dst []byte, sg *segment) []byte {
	z := sg.zone
	dst = binary.AppendUvarint(dst, uint64(sg.base))
	dst = binary.AppendUvarint(dst, uint64(sg.stride))
	dst = binary.AppendVarint(dst, z.tMin)
	dst = binary.AppendVarint(dst, z.tMax)
	dst = binary.AppendUvarint(dst, uint64(z.idMin))
	dst = binary.AppendUvarint(dst, uint64(z.idMax))
	dst = binary.AppendUvarint(dst, uint64(len(z.cols)))
	for i := range z.cols {
		c := &z.cols[i]
		dst = append(dst, byte(c.kind))
		if !c.ok {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
			switch c.kind {
			case tuple.KindInt, tuple.KindBool:
				dst = binary.AppendVarint(dst, c.iLo)
				dst = binary.AppendVarint(dst, c.iHi)
			case tuple.KindFloat:
				dst = binary.AppendUvarint(dst, math.Float64bits(c.fLo))
				dst = binary.AppendUvarint(dst, math.Float64bits(c.fHi))
			case tuple.KindString:
				dst = binary.AppendUvarint(dst, uint64(len(c.sLo)))
				dst = append(dst, c.sLo...)
				dst = binary.AppendUvarint(dst, uint64(len(c.sHi)))
				dst = append(dst, c.sHi...)
			}
		}
		if c.kind == tuple.KindString {
			if c.bloom == nil {
				dst = append(dst, 0)
			} else {
				dst = append(dst, 1)
				dst = c.bloom.AppendTo(dst)
			}
		}
	}
	return dst
}

// zoneStride peeks the stride field of a record (second uvarint).
func zoneStride(rec []byte) uint64 {
	_, n := binary.Uvarint(rec)
	if n <= 0 {
		return 0
	}
	stride, m := binary.Uvarint(rec[n:])
	if m <= 0 {
		return 0
	}
	return stride
}

// decodeZoneRecord rebuilds one summary. ok is false when the record is
// malformed or its column kinds do not match schema.
func decodeZoneRecord(rec []byte, schema *tuple.Schema) (base, coverMax tuple.ID, z *ZoneMap, ok bool) {
	pos := 0
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(rec[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	sv := func() (int64, bool) {
		v, n := binary.Varint(rec[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	b, ok1 := uv()
	_, ok2 := uv() // stride, already matched by the caller
	tMin, ok3 := sv()
	tMax, ok4 := sv()
	idMin, ok5 := uv()
	idMax, ok6 := uv()
	ncols, ok7 := uv()
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 || !ok7 || int(ncols) != schema.Len() {
		return 0, 0, nil, false
	}
	z = &ZoneMap{
		schema: schema,
		cols:   make([]colZone, ncols),
		tMin:   tMin,
		tMax:   tMax,
		idMin:  tuple.ID(idMin),
		idMax:  tuple.ID(idMax),
		seen:   true,
	}
	for i := range z.cols {
		if pos+2 > len(rec) {
			return 0, 0, nil, false
		}
		kind := tuple.Kind(rec[pos])
		pos++
		if kind != schema.Column(i).Kind {
			return 0, 0, nil, false
		}
		c := &z.cols[i]
		c.kind = kind
		hasBounds := rec[pos] == 1
		pos++
		if hasBounds {
			c.ok = true
			switch kind {
			case tuple.KindInt, tuple.KindBool:
				lo, okLo := sv()
				hi, okHi := sv()
				if !okLo || !okHi {
					return 0, 0, nil, false
				}
				c.iLo, c.iHi = lo, hi
			case tuple.KindFloat:
				lo, okLo := uv()
				hi, okHi := uv()
				if !okLo || !okHi {
					return 0, 0, nil, false
				}
				c.fLo, c.fHi = math.Float64frombits(lo), math.Float64frombits(hi)
			case tuple.KindString:
				nLo, okLo := uv()
				if !okLo || pos+int(nLo) > len(rec) {
					return 0, 0, nil, false
				}
				c.sLo = string(rec[pos : pos+int(nLo)])
				pos += int(nLo)
				nHi, okHi := uv()
				if !okHi || pos+int(nHi) > len(rec) {
					return 0, 0, nil, false
				}
				c.sHi = string(rec[pos : pos+int(nHi)])
				pos += int(nHi)
			}
		}
		if kind == tuple.KindString {
			if pos >= len(rec) {
				return 0, 0, nil, false
			}
			hasBloom := rec[pos] == 1
			pos++
			if hasBloom {
				bl, n, err := sketch.BloomFrom(rec[pos:])
				if err != nil {
					return 0, 0, nil, false
				}
				c.bloom = bl
				pos += n
			}
		}
	}
	return tuple.ID(b), z.idMax, z, true
}
