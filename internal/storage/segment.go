// Package storage implements the extent of a relation: an append-only,
// time-ordered tuple store organised into fixed-capacity segments.
//
// Tuple IDs are assigned densely in insertion order and never reused, so
// the ID axis coincides with the paper's insertion-time axis. Segment k
// of an unsharded store owns IDs [k*cap, (k+1)*cap). Eviction (rot or
// consume-on-query) marks tombstones; a fully dead segment is dropped
// wholesale, which is how the paper's "removing complete insertion
// ranges" materialises.
//
// A ShardedStore horizontally partitions one extent across N Stores:
// shard s owns the ID residue class {s, s+N, s+2N, ...} (stride N,
// offset s), and inserts are dealt round-robin so single-threaded
// insertion still produces the dense global sequence 0, 1, 2, ... Each
// shard is an independent Store — its own segments, counters and
// fungus.Extent surface — which is what lets the engine decay and scan
// shards on separate cores.
package storage

import (
	"sort"
	"sync/atomic"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

// segTags hands out segment revision tags: a fresh tag per segment, and
// a fresh one again whenever Compact rewrites a segment's columns. The
// tag travels with every batch (tuple.Batch.Seg) so per-segment caches
// built over the dictionary — predicate translate tables in the query
// layer — invalidate exactly when the dictionary can have changed.
var segTags atomic.Uint64

// colVec stores one attribute column of a segment as a contiguous typed
// slice. Exactly one payload slice is in use, selected by kind; STRING
// values are dictionary-encoded (codes index dict, lookup inverts it).
type colVec struct {
	kind   tuple.Kind
	ints   []int64
	floats []float64
	bools  []bool
	codes  []uint32
	dict   []string
	lookup map[string]uint32
}

func newColVec(kind tuple.Kind, capacity int) colVec {
	c := colVec{kind: kind}
	switch kind {
	case tuple.KindInt:
		c.ints = make([]int64, 0, capacity)
	case tuple.KindFloat:
		c.floats = make([]float64, 0, capacity)
	case tuple.KindBool:
		c.bools = make([]bool, 0, capacity)
	case tuple.KindString:
		c.codes = make([]uint32, 0, capacity)
		c.lookup = make(map[string]uint32)
	}
	return c
}

// code interns s into the dictionary and returns its code.
func (c *colVec) code(s string) uint32 {
	if code, ok := c.lookup[s]; ok {
		return code
	}
	code := uint32(len(c.dict))
	c.dict = append(c.dict, s)
	c.lookup[s] = code
	return code
}

// appendVal appends one value. v's kind must match the column's.
func (c *colVec) appendVal(v tuple.Value) {
	switch c.kind {
	case tuple.KindInt:
		c.ints = append(c.ints, v.AsInt())
	case tuple.KindFloat:
		c.floats = append(c.floats, v.AsFloat())
	case tuple.KindBool:
		c.bools = append(c.bools, v.AsBool())
	case tuple.KindString:
		c.codes = append(c.codes, c.code(v.AsString()))
	}
}

// setVal overwrites row j. v's kind must match the column's.
func (c *colVec) setVal(j int, v tuple.Value) {
	switch c.kind {
	case tuple.KindInt:
		c.ints[j] = v.AsInt()
	case tuple.KindFloat:
		c.floats[j] = v.AsFloat()
	case tuple.KindBool:
		c.bools[j] = v.AsBool()
	case tuple.KindString:
		c.codes[j] = c.code(v.AsString())
	}
}

// value boxes row j.
func (c *colVec) value(j int) tuple.Value {
	switch c.kind {
	case tuple.KindInt:
		return tuple.Int(c.ints[j])
	case tuple.KindFloat:
		return tuple.Float(c.floats[j])
	case tuple.KindBool:
		return tuple.Bool(c.bools[j])
	case tuple.KindString:
		return tuple.String_(c.dict[c.codes[j]])
	}
	return tuple.Value{}
}

// valueBytes returns the accounting footprint of row j, matching
// tuple.Value.Size for the boxed form.
func (c *colVec) valueBytes(j int) int {
	if c.kind == tuple.KindString {
		return 16 + len(c.dict[c.codes[j]])
	}
	return 16
}

// view returns the [lo, hi) window as a batch column view.
func (c *colVec) view(lo, hi int) tuple.ColView {
	out := tuple.ColView{Kind: c.kind}
	switch c.kind {
	case tuple.KindInt:
		out.Ints = c.ints[lo:hi]
	case tuple.KindFloat:
		out.Floats = c.floats[lo:hi]
	case tuple.KindBool:
		out.Bools = c.bools[lo:hi]
	case tuple.KindString:
		out.Codes = c.codes[lo:hi]
		out.Dict = c.dict
	}
	return out
}

// segment holds tuples whose IDs fall in [base, base+capacity*stride),
// striding the ID axis (stride 1 for an unsharded store; shard s of N
// holds IDs ≡ s mod N with stride N). Storage is columnar: the system
// axes (id, tick, freshness, infection) and every attribute live in
// contiguous typed slices indexed by row, with a liveness bitmap marking
// tombstones — the layout the batch scan hands out as zero-copy column
// views. While dense (the normal state) slot addressing is
// (id-base)/stride; after compaction the segment becomes sparse —
// tombstoned rows are physically removed, IDs are preserved — and slot
// addressing binary-searches the id column.
type segment struct {
	base     tuple.ID
	stride   tuple.ID
	capacity int
	tag      uint64 // revision tag, renewed by compaction

	ids      []tuple.ID
	ts       []int64
	fs       []float64
	inf      []bool
	liveBits []uint64 // bit j set = row j live
	cols     []colVec

	live   int      // number of non-tombstoned rows
	bytes  int      // accounting size of live rows
	sealed bool     // reached capacity at least once; no further appends
	sparse bool     // compacted: IDs no longer dense, use binary search
	zone   *ZoneMap // pruning summary, maintained on append

	// zoneCoverMax is set when the zone map was installed from a
	// snapshot instead of built here: rows with IDs at or below it are
	// already summarised, so append skips the per-row fold for them.
	// IDs are globally monotonic, so any row the installed summary did
	// not see has a larger ID and folds normally.
	zoneCoverMax tuple.ID
	zoneInstall  bool
}

func newSegment(schema *tuple.Schema, base tuple.ID, capacity int, stride tuple.ID) *segment {
	sg := &segment{
		base:     base,
		stride:   stride,
		capacity: capacity,
		tag:      segTags.Add(1),
		ids:      make([]tuple.ID, 0, capacity),
		ts:       make([]int64, 0, capacity),
		fs:       make([]float64, 0, capacity),
		inf:      make([]bool, 0, capacity),
		liveBits: make([]uint64, 0, (capacity+63)/64),
		cols:     make([]colVec, schema.Len()),
		zone:     newZoneMap(schema, capacity),
	}
	for i := range sg.cols {
		sg.cols[i] = newColVec(schema.Column(i).Kind, capacity)
	}
	return sg
}

// rows returns the number of rows, live or tombstoned.
func (s *segment) rows() int { return len(s.ids) }

// liveAt reports whether row j is live.
func (s *segment) liveAt(j int) bool {
	return s.liveBits[j>>6]&(1<<(uint(j)&63)) != 0
}

// append adds a tuple with an ID greater than any present. The segment
// turns sparse when the ID skips slots (possible after ID-space gaps
// left by recovery).
func (s *segment) append(tp tuple.Tuple) {
	j := len(s.ids)
	if tp.ID != s.base+tuple.ID(j)*s.stride {
		s.sparse = true
	}
	s.ids = append(s.ids, tp.ID)
	s.ts = append(s.ts, int64(tp.T))
	s.fs = append(s.fs, float64(tp.F))
	s.inf = append(s.inf, tp.Infected)
	for i := range s.cols {
		s.cols[i].appendVal(tp.Attrs[i])
	}
	if j>>6 == len(s.liveBits) {
		s.liveBits = append(s.liveBits, 0)
	}
	s.liveBits[j>>6] |= 1 << (uint(j) & 63)
	s.live++
	s.bytes += tp.Size()
	if !s.zoneInstall || tp.ID > s.zoneCoverMax {
		s.zone.fold(s, j)
	}
	if len(s.ids) == s.capacity {
		s.sealed = true
	}
}

// slot returns the row index of id, or -1 if absent.
func (s *segment) slot(id tuple.ID) int {
	if !s.sparse {
		if id < s.base || (id-s.base)%s.stride != 0 {
			return -1
		}
		i := int((id - s.base) / s.stride)
		if i >= len(s.ids) {
			return -1
		}
		return i
	}
	i := sort.Search(len(s.ids), func(j int) bool { return s.ids[j] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		return i
	}
	return -1
}

// liveSlot returns the row index of id if it is present and live.
func (s *segment) liveSlot(id tuple.ID) int {
	i := s.slot(id)
	if i < 0 || !s.liveAt(i) {
		return -1
	}
	return i
}

// readRow materialises row j into dst, reusing dst's attribute slice
// when it has capacity. Attribute strings alias the dictionary, which
// lives as long as the segment.
func (s *segment) readRow(j int, dst *tuple.Tuple) {
	dst.ID = s.ids[j]
	dst.T = clock.Tick(s.ts[j])
	dst.F = tuple.Freshness(s.fs[j])
	dst.Infected = s.inf[j]
	if cap(dst.Attrs) < len(s.cols) {
		dst.Attrs = make([]tuple.Value, len(s.cols))
	} else {
		dst.Attrs = dst.Attrs[:len(s.cols)]
	}
	for i := range s.cols {
		dst.Attrs[i] = s.cols[i].value(j)
	}
}

// writeBack persists the in-place mutations a scan callback is allowed
// to make — freshness and infection state — from the decoded tuple back
// into the columns.
func (s *segment) writeBack(j int, tp *tuple.Tuple) {
	s.fs[j] = float64(tp.F)
	s.inf[j] = tp.Infected
}

// rowSize returns the accounting footprint of row j, matching
// tuple.Tuple.Size for the decoded form.
func (s *segment) rowSize(j int) int {
	n := 56 // id + tick + freshness + infected + pad + slice header
	for i := range s.cols {
		n += s.cols[i].valueBytes(j)
	}
	return n
}

// kill tombstones row j if still live, returning the bytes freed and
// whether it did.
func (s *segment) kill(j int) (int, bool) {
	if !s.liveAt(j) {
		return 0, false
	}
	s.liveBits[j>>6] &^= 1 << (uint(j) & 63)
	s.live--
	freed := s.rowSize(j)
	s.bytes -= freed
	return freed, true
}

// fillBatch populates b with the rows [start, min(start+BatchRows, rows)).
// start must be a multiple of BatchRows so the liveness view is
// word-aligned.
func (s *segment) fillBatch(start int, b *tuple.Batch) {
	end := start + tuple.BatchRows
	if end > len(s.ids) {
		end = len(s.ids)
	}
	b.N = end - start
	b.IDs = s.ids[start:end]
	b.Ts = s.ts[start:end]
	b.Fs = s.fs[start:end]
	b.Inf = s.inf[start:end]
	b.Live = s.liveBits[start>>6 : (end+63)>>6]
	b.Seg = s.tag
	if cap(b.Cols) < len(s.cols) {
		b.Cols = make([]tuple.ColView, len(s.cols))
	} else {
		b.Cols = b.Cols[:len(s.cols)]
	}
	for i := range s.cols {
		b.Cols[i] = s.cols[i].view(start, end)
	}
	b.Alive = tuple.PopCount(b.Live)
}

// compactInPlace rewrites the segment's columns keeping only live rows,
// returning the number of tombstone slots reclaimed. IDs are preserved;
// the segment becomes sparse and gets a fresh revision tag (the string
// dictionaries are rebuilt, so codes change).
func (s *segment) compactInPlace() int {
	reclaimed := len(s.ids) - s.live
	ids := make([]tuple.ID, 0, s.live)
	ts := make([]int64, 0, s.live)
	fs := make([]float64, 0, s.live)
	inf := make([]bool, 0, s.live)
	cols := make([]colVec, len(s.cols))
	for i := range cols {
		cols[i] = newColVec(s.cols[i].kind, s.live)
	}
	for j := range s.ids {
		if !s.liveAt(j) {
			continue
		}
		ids = append(ids, s.ids[j])
		ts = append(ts, s.ts[j])
		fs = append(fs, s.fs[j])
		inf = append(inf, s.inf[j])
		for i := range cols {
			cols[i].appendVal(s.cols[i].value(j))
		}
	}
	s.ids, s.ts, s.fs, s.inf, s.cols = ids, ts, fs, inf, cols
	s.liveBits = make([]uint64, (len(ids)+63)/64)
	for j := range ids {
		s.liveBits[j>>6] |= 1 << (uint(j) & 63)
	}
	s.sparse = true
	s.tag = segTags.Add(1)
	s.zoneInstall = false
	return reclaimed
}

// lastLiveAtOrBelow returns the greatest live tuple ID <= bound in s.
func (s *segment) lastLiveAtOrBelow(bound tuple.ID) (tuple.ID, bool) {
	// Index of the last row with ID <= bound.
	j := sort.Search(len(s.ids), func(k int) bool { return s.ids[k] > bound }) - 1
	for ; j >= 0; j-- {
		if s.liveAt(j) {
			return s.ids[j], true
		}
	}
	return 0, false
}

// firstLiveAtOrAbove returns the least live tuple ID >= bound in s.
func (s *segment) firstLiveAtOrAbove(bound tuple.ID) (tuple.ID, bool) {
	j := sort.Search(len(s.ids), func(k int) bool { return s.ids[k] >= bound })
	for ; j < len(s.ids); j++ {
		if s.liveAt(j) {
			return s.ids[j], true
		}
	}
	return 0, false
}
