// Package storage implements the extent of a relation: an append-only,
// time-ordered tuple store organised into fixed-capacity segments.
//
// Tuple IDs are assigned densely in insertion order and never reused, so
// the ID axis coincides with the paper's insertion-time axis. Segment k
// of an unsharded store owns IDs [k*cap, (k+1)*cap). Eviction (rot or
// consume-on-query) marks tombstones; a fully dead segment is dropped
// wholesale, which is how the paper's "removing complete insertion
// ranges" materialises.
//
// A ShardedStore horizontally partitions one extent across N Stores:
// shard s owns the ID residue class {s, s+N, s+2N, ...} (stride N,
// offset s), and inserts are dealt round-robin so single-threaded
// insertion still produces the dense global sequence 0, 1, 2, ... Each
// shard is an independent Store — its own segments, counters and
// fungus.Extent surface — which is what lets the engine decay and scan
// shards on separate cores.
package storage

import (
	"sort"

	"fungusdb/internal/tuple"
)

// segment holds tuples whose IDs fall in [base, base+capacity*stride),
// striding the ID axis (stride 1 for an unsharded store; shard s of N
// holds IDs ≡ s mod N with stride N). While dense (the normal state)
// slot addressing is (id-base)/stride. After compaction the segment
// becomes sparse — tombstoned tuples are physically removed, IDs are
// preserved — and slot addressing binary-searches. dead[slot] marks
// tombstones; freshness and infection state are mutated in place by the
// fungus layer.
type segment struct {
	base   tuple.ID
	stride tuple.ID
	tuples []tuple.Tuple
	dead   []bool
	live   int      // number of non-tombstoned tuples
	bytes  int      // sum of Size() over live tuples
	sealed bool     // reached capacity at least once; no further appends
	sparse bool     // compacted: IDs no longer dense, use binary search
	zone   *ZoneMap // pruning summary, maintained on append
}

func newSegment(schema *tuple.Schema, base tuple.ID, capacity int, stride tuple.ID) *segment {
	return &segment{
		base:   base,
		stride: stride,
		tuples: make([]tuple.Tuple, 0, capacity),
		dead:   make([]bool, 0, capacity),
		zone:   newZoneMap(schema, capacity),
	}
}

// append adds a tuple with an ID greater than any present. The segment
// turns sparse when the ID skips slots (possible after ID-space gaps
// left by recovery).
func (s *segment) append(tp tuple.Tuple) {
	if tp.ID != s.base+tuple.ID(len(s.tuples))*s.stride {
		s.sparse = true
	}
	s.tuples = append(s.tuples, tp)
	s.dead = append(s.dead, false)
	s.live++
	s.bytes += tp.Size()
	s.zone.add(&s.tuples[len(s.tuples)-1])
	if len(s.tuples) == cap(s.tuples) {
		s.sealed = true
	}
}

// slot returns the index of id within tuples, or -1 if absent.
func (s *segment) slot(id tuple.ID) int {
	if !s.sparse {
		if id < s.base || (id-s.base)%s.stride != 0 {
			return -1
		}
		i := int((id - s.base) / s.stride)
		if i >= len(s.tuples) {
			return -1
		}
		return i
	}
	i := sort.Search(len(s.tuples), func(j int) bool { return s.tuples[j].ID >= id })
	if i < len(s.tuples) && s.tuples[i].ID == id {
		return i
	}
	return -1
}

// get returns a pointer to the live tuple with the given id, or nil.
func (s *segment) get(id tuple.ID) *tuple.Tuple {
	i := s.slot(id)
	if i < 0 || s.dead[i] {
		return nil
	}
	return &s.tuples[i]
}

// kill tombstones the tuple in slot i if still live, reporting whether
// it did.
func (s *segment) kill(i int) bool {
	if s.dead[i] {
		return false
	}
	s.dead[i] = true
	s.live--
	s.bytes -= s.tuples[i].Size()
	return true
}
