package storage

import (
	"testing"

	"fungusdb/internal/tuple"
)

func shardSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	s, err := tuple.ParseSchema("v INT")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func row(v int64) []tuple.Value { return []tuple.Value{tuple.Int(v)} }

// Single-threaded round-robin insertion must produce the dense global
// sequence 0, 1, 2, ... regardless of shard count — the sharded axis is
// indistinguishable from the unsharded one.
func TestShardedIDSequenceMatchesUnsharded(t *testing.T) {
	schema := shardSchema(t)
	for _, shards := range []int{1, 2, 3, 4, 7} {
		ss := NewSharded(schema, shards, WithSegmentSize(8))
		const n = 100
		for i := 0; i < n; i++ {
			tp, err := ss.Insert(1, row(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			if tp.ID != tuple.ID(i) {
				t.Fatalf("shards=%d: insert %d got ID %d", shards, i, tp.ID)
			}
		}
		// Merged scan yields global insertion order.
		want := tuple.ID(0)
		ss.Scan(func(tp *tuple.Tuple) bool {
			if tp.ID != want {
				t.Fatalf("shards=%d: scan got %d, want %d", shards, tp.ID, want)
			}
			want++
			return true
		})
		if want != n {
			t.Fatalf("shards=%d: scan saw %d tuples", shards, want)
		}
		if ss.Len() != n {
			t.Fatalf("shards=%d: Len=%d", shards, ss.Len())
		}
	}
}

func TestShardedRoutingAndEvict(t *testing.T) {
	schema := shardSchema(t)
	ss := NewSharded(schema, 4)
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := ss.Insert(1, row(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		id := tuple.ID(i)
		if ss.ShardOf(id) != i%4 {
			t.Fatalf("ShardOf(%d) = %d", id, ss.ShardOf(id))
		}
		tp, err := ss.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if tp.Attrs[0].AsInt() != int64(i) {
			t.Fatalf("Get(%d) value %v", id, tp.Attrs[0])
		}
	}
	// Evict every tuple of shard 1's residue class.
	for i := 1; i < n; i += 4 {
		if err := ss.Evict(tuple.ID(i)); err != nil {
			t.Fatalf("Evict(%d): %v", i, err)
		}
	}
	if ss.Len() != n-n/4 {
		t.Fatalf("Len after evictions = %d", ss.Len())
	}
	if ss.Shard(1).Len() != 0 {
		t.Fatalf("shard 1 should be empty, Len=%d", ss.Shard(1).Len())
	}
	// Merged neighbour walk skips the hole shard.
	if next, ok := ss.NextLive(0); !ok || next != 2 {
		t.Fatalf("NextLive(0) = %d, %v", next, ok)
	}
	if prev, ok := ss.PrevLive(4); !ok || prev != 3 {
		t.Fatalf("PrevLive(4) = %d, %v", prev, ok)
	}
}

// A shard store's neighbour queries accept IDs outside its residue
// class (EGI's age-biased seeding aims at arbitrary global positions).
func TestStrideStoreUnalignedNeighbours(t *testing.T) {
	schema := shardSchema(t)
	s := New(schema, WithStride(4, 1), WithSegmentSize(4))
	// IDs 1, 5, 9, ..., 37.
	for i := 0; i < 10; i++ {
		tp, err := s.Insert(1, row(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if tp.ID != tuple.ID(4*i+1) {
			t.Fatalf("insert %d got ID %d", i, tp.ID)
		}
	}
	if got, ok := s.NextLive(0); !ok || got != 1 {
		t.Fatalf("NextLive(0) = %d, %v", got, ok)
	}
	if got, ok := s.NextLive(1); !ok || got != 5 {
		t.Fatalf("NextLive(1) = %d, %v", got, ok)
	}
	if got, ok := s.NextLive(7); !ok || got != 9 {
		t.Fatalf("NextLive(7) = %d, %v", got, ok)
	}
	if got, ok := s.PrevLive(7); !ok || got != 5 {
		t.Fatalf("PrevLive(7) = %d, %v", got, ok)
	}
	if _, ok := s.PrevLive(1); ok {
		t.Fatal("PrevLive(1) should find nothing")
	}
	if got, ok := s.PrevLive(1000); !ok || got != 37 {
		t.Fatalf("PrevLive(1000) = %d, %v", got, ok)
	}
	if _, ok := s.NextLive(37); ok {
		t.Fatal("NextLive(37) should find nothing")
	}
	// Unaligned lookups miss without panicking.
	if s.Contains(2) {
		t.Fatal("Contains(2) on residue class 1 mod 4")
	}
	if err := s.Evict(2); err == nil {
		t.Fatal("Evict(2) should fail")
	}
}

// Restoring a snapshot written by an N-sharded extent into an M-sharded
// one must work: IDs decide ownership, not file layout.
func TestShardedRestoreAcrossShardCounts(t *testing.T) {
	schema := shardSchema(t)
	src := NewSharded(schema, 3)
	const n = 30
	for i := 0; i < n; i++ {
		if _, err := src.Insert(7, row(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Punch holes so the restore stream is sparse.
	for _, id := range []tuple.ID{4, 5, 11, 29} {
		if err := src.Evict(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, shards := range []int{1, 2, 5} {
		dst := NewSharded(schema, shards)
		src.Scan(func(tp *tuple.Tuple) bool {
			if err := dst.Restore(tp.Clone()); err != nil {
				t.Fatalf("shards=%d: restore %d: %v", shards, tp.ID, err)
			}
			return true
		})
		dst.FinishRestore()
		dst.AdvanceNextID(src.NextID())
		if dst.Len() != src.Len() {
			t.Fatalf("shards=%d: Len=%d want %d", shards, dst.Len(), src.Len())
		}
		var got, want []tuple.ID
		src.Scan(func(tp *tuple.Tuple) bool { want = append(want, tp.ID); return true })
		dst.Scan(func(tp *tuple.Tuple) bool { got = append(got, tp.ID); return true })
		if len(got) != len(want) {
			t.Fatalf("shards=%d: scan mismatch", shards)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: scan[%d] = %d want %d", shards, i, got[i], want[i])
			}
		}
		// Fresh inserts never collide with restored IDs.
		seen := map[tuple.ID]bool{}
		for _, id := range got {
			seen[id] = true
		}
		for i := 0; i < 10; i++ {
			tp, err := dst.Insert(8, row(99))
			if err != nil {
				t.Fatal(err)
			}
			if seen[tp.ID] {
				t.Fatalf("shards=%d: reused ID %d", shards, tp.ID)
			}
			seen[tp.ID] = true
		}
	}
}

// ShardNextIDs exposes each shard's allocation cursor exactly — the
// per-shard WAL manifest records these at checkpoint time.
func TestShardCursorExposure(t *testing.T) {
	schema := shardSchema(t)
	ss := NewSharded(schema, 4)
	for i := 0; i < 10; i++ { // IDs 0..9
		if _, err := ss.Insert(1, row(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Shards 0,1 have taken 3 inserts (cursors 12, 13); shards 2,3 two
	// (cursors 10, 11).
	want := []tuple.ID{12, 13, 10, 11}
	got := ss.ShardNextIDs()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ShardNextIDs[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Raising one shard's cursor directly re-aims the rotation once
	// FinishRestore syncs it — the recovery flow.
	ss.Shard(2).AdvanceNextID(15)
	if next := ss.ShardNextIDs()[2]; next != 18 {
		t.Fatalf("advanced shard 2 cursor = %d, want 18 (15 rounded into class 2 mod 4)", next)
	}
	ss.FinishRestore()
	tp, err := ss.Insert(1, row(99))
	if err != nil {
		t.Fatal(err)
	}
	if tp.ID != 11 {
		t.Fatalf("post-advance insert got ID %d, want 11 (shard 3 is furthest behind)", tp.ID)
	}
}
