package storage

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fungusdb/internal/tuple"
)

func intSchema(t *testing.T) *tuple.Schema {
	t.Helper()
	return tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt})
}

func fill(t *testing.T, s *Store, n int) []tuple.Tuple {
	t.Helper()
	out := make([]tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		tp, err := s.Insert(1, []tuple.Value{tuple.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tp)
	}
	return out
}

func TestInsertAssignsDenseIDs(t *testing.T) {
	s := New(intSchema(t))
	tps := fill(t, s, 10)
	for i, tp := range tps {
		if tp.ID != tuple.ID(i) {
			t.Errorf("tuple %d has ID %d", i, tp.ID)
		}
		if tp.F != tuple.Full {
			t.Errorf("tuple %d freshness %v, want 1.0", i, tp.F)
		}
	}
	if s.Len() != 10 {
		t.Errorf("Len() = %d, want 10", s.Len())
	}
	if s.NextID() != 10 {
		t.Errorf("NextID() = %d, want 10", s.NextID())
	}
}

func TestInsertRejectsBadRow(t *testing.T) {
	s := New(intSchema(t))
	if _, err := s.Insert(1, []tuple.Value{tuple.String_("x")}); err == nil {
		t.Error("schema-violating insert accepted")
	}
	if s.Len() != 0 {
		t.Error("failed insert changed Len")
	}
}

func TestGetAndEvict(t *testing.T) {
	s := New(intSchema(t))
	fill(t, s, 5)
	got, err := s.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs[0].AsInt() != 3 {
		t.Errorf("Get(3) = %v", got)
	}
	if err := s.Evict(3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(3); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after evict: %v", err)
	}
	if err := s.Evict(3); !errors.Is(err, ErrNotFound) {
		t.Errorf("double evict: %v", err)
	}
	if err := s.Evict(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("evict never-inserted: %v", err)
	}
	if s.Len() != 4 {
		t.Errorf("Len() = %d, want 4", s.Len())
	}
}

func TestBytesAccounting(t *testing.T) {
	s := New(intSchema(t))
	if s.Bytes() != 0 {
		t.Fatal("empty store has bytes")
	}
	tps := fill(t, s, 3)
	want := 0
	for _, tp := range tps {
		want += tp.Size()
	}
	if s.Bytes() != want {
		t.Errorf("Bytes() = %d, want %d", s.Bytes(), want)
	}
	s.Evict(0)
	want -= tps[0].Size()
	if s.Bytes() != want {
		t.Errorf("after evict Bytes() = %d, want %d", s.Bytes(), want)
	}
}

func TestUpdateFreshness(t *testing.T) {
	s := New(intSchema(t))
	fill(t, s, 2)
	err := s.Update(1, func(tp *tuple.Tuple) {
		tp.F = 0.5
		tp.Infected = true
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(1)
	if got.F != 0.5 || !got.Infected {
		t.Errorf("update not applied: %v", got)
	}
	if err := s.Update(77, func(*tuple.Tuple) {}); !errors.Is(err, ErrNotFound) {
		t.Errorf("update missing: %v", err)
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	s := New(intSchema(t), WithSegmentSize(4))
	fill(t, s, 10)
	s.Evict(2)
	s.Evict(7)
	var ids []tuple.ID
	s.Scan(func(tp *tuple.Tuple) bool {
		ids = append(ids, tp.ID)
		return true
	})
	want := []tuple.ID{0, 1, 3, 4, 5, 6, 8, 9}
	if len(ids) != len(want) {
		t.Fatalf("scan ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("scan ids = %v, want %v", ids, want)
		}
	}
	count := 0
	s.Scan(func(*tuple.Tuple) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop scanned %d, want 3", count)
	}
}

func TestSegmentDropOnFullEviction(t *testing.T) {
	s := New(intSchema(t), WithSegmentSize(4))
	fill(t, s, 12)
	// Kill all of segment 1 (IDs 4..7).
	for id := tuple.ID(4); id < 8; id++ {
		if err := s.Evict(id); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SegsDropped != 1 {
		t.Errorf("SegsDropped = %d, want 1", st.SegsDropped)
	}
	if st.SegsLive != 2 {
		t.Errorf("SegsLive = %d, want 2", st.SegsLive)
	}
	// Neighbour queries must hop the dropped segment.
	if next, ok := s.NextLive(3); !ok || next != 8 {
		t.Errorf("NextLive(3) = %d, %v; want 8, true", next, ok)
	}
	if prev, ok := s.PrevLive(8); !ok || prev != 3 {
		t.Errorf("PrevLive(8) = %d, %v; want 3, true", prev, ok)
	}
}

func TestPrevNextLiveBasics(t *testing.T) {
	s := New(intSchema(t), WithSegmentSize(4))
	fill(t, s, 10)
	if _, ok := s.PrevLive(0); ok {
		t.Error("PrevLive(0) should not exist")
	}
	if next, ok := s.NextLive(9); ok {
		t.Errorf("NextLive(last) = %d, should not exist", next)
	}
	if prev, ok := s.PrevLive(5); !ok || prev != 4 {
		t.Errorf("PrevLive(5) = %d, %v", prev, ok)
	}
	if next, ok := s.NextLive(5); !ok || next != 6 {
		t.Errorf("NextLive(5) = %d, %v", next, ok)
	}
	s.Evict(4)
	s.Evict(6)
	if prev, ok := s.PrevLive(5); !ok || prev != 3 {
		t.Errorf("PrevLive(5) after evicts = %d, %v", prev, ok)
	}
	if next, ok := s.NextLive(5); !ok || next != 7 {
		t.Errorf("NextLive(5) after evicts = %d, %v", next, ok)
	}
	// Neighbour search from an ID beyond the extent.
	if prev, ok := s.PrevLive(100); !ok || prev != 9 {
		t.Errorf("PrevLive(100) = %d, %v; want 9", prev, ok)
	}
	if _, ok := s.NextLive(100); ok {
		t.Error("NextLive(100) should not exist")
	}
}

func TestPrevNextAfterEverythingEvicted(t *testing.T) {
	s := New(intSchema(t), WithSegmentSize(2))
	fill(t, s, 6)
	for id := tuple.ID(0); id < 6; id++ {
		s.Evict(id)
	}
	if _, ok := s.PrevLive(5); ok {
		t.Error("PrevLive on empty extent")
	}
	if _, ok := s.NextLive(0); ok {
		t.Error("NextLive on empty extent")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestCompactPreservesScanAndLookups(t *testing.T) {
	s := New(intSchema(t), WithSegmentSize(4))
	fill(t, s, 12)
	for _, id := range []tuple.ID{0, 2, 5, 6, 7, 9} {
		s.Evict(id)
	}
	before := s.ScanIDs(nil)
	reclaimed := s.Compact()
	if reclaimed == 0 {
		t.Error("Compact reclaimed nothing")
	}
	after := s.ScanIDs(nil)
	if len(before) != len(after) {
		t.Fatalf("scan changed: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("scan changed: %v -> %v", before, after)
		}
	}
	// Lookups still work in sparse segments.
	for _, id := range after {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) false after compact", id)
		}
	}
	for _, id := range []tuple.ID{0, 2, 5} {
		if s.Contains(id) {
			t.Errorf("evicted %d visible after compact", id)
		}
	}
	// Neighbours across a compacted (sparse) segment.
	if next, ok := s.NextLive(4); !ok || next != 8 {
		t.Errorf("NextLive(4) = %d, %v; want 8", next, ok)
	}
	if prev, ok := s.PrevLive(8); !ok || prev != 4 {
		t.Errorf("PrevLive(8) = %d, %v; want 4", prev, ok)
	}
}

func TestEvictInSparseSegment(t *testing.T) {
	s := New(intSchema(t), WithSegmentSize(4))
	fill(t, s, 8)
	s.Evict(1)
	s.Compact()
	if err := s.Evict(2); err != nil {
		t.Fatalf("evict in sparse segment: %v", err)
	}
	if s.Contains(2) {
		t.Error("tuple 2 still visible")
	}
	// Evicting the rest of segment 0 must drop it.
	s.Evict(0)
	s.Evict(3)
	if st := s.Stats(); st.SegsDropped != 1 {
		t.Errorf("SegsDropped = %d, want 1", st.SegsDropped)
	}
}

func TestInsertTupleRestore(t *testing.T) {
	s := New(intSchema(t))
	tp := tuple.New(0, 5, []tuple.Value{tuple.Int(7)})
	tp.F = 0.25
	tp.Infected = true
	if err := s.InsertTuple(tp); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(0)
	if got.F != 0.25 || !got.Infected || got.T != 5 {
		t.Errorf("restore lost state: %v", got)
	}
	bad := tuple.New(5, 1, []tuple.Value{tuple.Int(1)})
	if err := s.InsertTuple(bad); err == nil {
		t.Error("out-of-order restore accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	s := New(intSchema(t), WithSegmentSize(2))
	fill(t, s, 5)
	s.Evict(0)
	s.Evict(1)
	st := s.Stats()
	if st.Inserted != 5 || st.Evicted != 2 || st.Live != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.SegsTotal != 3 {
		t.Errorf("SegsTotal = %d, want 3", st.SegsTotal)
	}
}

func TestWithSegmentSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithSegmentSize(0) did not panic")
		}
	}()
	WithSegmentSize(0)
}

// Property: after an arbitrary interleaving of inserts and evicts, Len
// equals inserted-evicted, Scan visits exactly the live IDs in order,
// and PrevLive/NextLive agree with the scan sequence.
func TestQuickStoreInvariants(t *testing.T) {
	f := func(seed int64, ops []bool) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt}), WithSegmentSize(3))
		alive := map[tuple.ID]bool{}
		for _, ins := range ops {
			if ins || len(alive) == 0 {
				tp, err := s.Insert(1, []tuple.Value{tuple.Int(rng.Int63())})
				if err != nil {
					return false
				}
				alive[tp.ID] = true
			} else {
				// Pick an arbitrary live tuple deterministically.
				var victim tuple.ID
				found := false
				for id := range alive {
					if !found || id < victim {
						victim = id
						found = true
					}
					if rng.Intn(3) == 0 {
						break
					}
				}
				if err := s.Evict(victim); err != nil {
					return false
				}
				delete(alive, victim)
			}
			if rng.Intn(8) == 0 {
				s.Compact()
			}
		}
		if s.Len() != len(alive) {
			return false
		}
		ids := s.ScanIDs(nil)
		if len(ids) != len(alive) {
			return false
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				return false
			}
		}
		for i, id := range ids {
			if !alive[id] {
				return false
			}
			if i > 0 {
				prev, ok := s.PrevLive(id)
				if !ok || prev != ids[i-1] {
					return false
				}
			}
			if i < len(ids)-1 {
				next, ok := s.NextLive(id)
				if !ok || next != ids[i+1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
