package storage

import (
	"math"

	"fungusdb/internal/sketch"
	"fungusdb/internal/tuple"
)

// zoneBloomFP is the per-segment string bloom's false-positive rate. A
// false positive only costs a wasted segment scan, so the filters stay
// small (~1.2 bytes per string value at 1%).
const zoneBloomFP = 0.01

// ZoneMap is the per-segment pruning summary: inclusive min/max bounds
// for every attribute column plus the insertion-tick and ID axes, and a
// Bloom filter over each STRING column. Bounds cover every tuple ever
// appended to the segment, live or tombstoned — a superset of the live
// set — so eviction (rot, consume) never needs to touch them: they stay
// conservative, merely loose. Compact rebuilds them over the survivors,
// tightening the bounds and clearing the dirty flag an in-place
// attribute mutation sets.
//
// Maintenance sits on the insert hot path, so each column's bounds are
// kept in raw kind-specialised form (int64/float64/string) and only
// boxed into tuple.Values when a scan consults them.
//
// Freshness carries no zone map: the fungus layer rewrites it on every
// tick, so any recorded bound would go stale in the dangerous
// direction. Predicates over _f simply never prune.
//
// The query layer consumes a ZoneMap through its own structurally
// matching ZoneView interface, keeping storage free of query imports.
type ZoneMap struct {
	schema *tuple.Schema
	cols   []colZone
	tMin   int64
	tMax   int64
	idMin  tuple.ID
	idMax  tuple.ID
	seen   bool // at least one tuple folded in
	dirty  bool // an Update mutated attributes; bounds unusable until rebuilt
}

// colZone summarises one attribute column. Which bound fields are live
// depends on kind: iLo/iHi for INT and BOOL (0/1), fLo/fHi for FLOAT,
// sLo/sHi (plus the bloom) for STRING.
type colZone struct {
	kind     tuple.Kind
	ok       bool // bounds usable (false after an incomparable value, e.g. NaN)
	iLo, iHi int64
	fLo, fHi float64
	sLo, sHi string
	bloom    *sketch.Bloom // STRING columns only
	lastCode uint32        // dictionary code last folded (dedup memo)
	hasLast  bool
}

// TestHookZoneFold, when non-nil, observes every per-row zone fold.
// Recovery tests use it to prove that snapshot-installed summaries skip
// the per-tuple rebuild. Not for production use.
var TestHookZoneFold func()

// newZoneMap builds an empty summary for a segment of the given tuple
// capacity.
func newZoneMap(schema *tuple.Schema, capacity int) *ZoneMap {
	z := &ZoneMap{schema: schema, cols: make([]colZone, schema.Len())}
	for i := range z.cols {
		z.cols[i].kind = schema.Column(i).Kind
		if z.cols[i].kind == tuple.KindString {
			z.cols[i].bloom = sketch.MustBloom(uint64(capacity), zoneBloomFP)
		}
	}
	return z
}

// fold folds row j of the segment into the summary, reading the typed
// column slices directly — no tuple is materialised on the insert hot
// path.
func (z *ZoneMap) fold(sg *segment, j int) {
	if TestHookZoneFold != nil {
		TestHookZoneFold()
	}
	first := !z.seen
	if first {
		z.seen = true
		z.tMin, z.tMax = sg.ts[j], sg.ts[j]
		z.idMin, z.idMax = sg.ids[j], sg.ids[j]
	} else {
		if t := sg.ts[j]; t < z.tMin {
			z.tMin = t
		} else if t > z.tMax {
			z.tMax = t
		}
		if id := sg.ids[j]; id < z.idMin {
			z.idMin = id
		} else if id > z.idMax {
			z.idMax = id
		}
	}
	for i := range z.cols {
		c := &z.cols[i]
		col := &sg.cols[i]
		switch c.kind {
		case tuple.KindInt:
			v := col.ints[j]
			if first {
				c.iLo, c.iHi, c.ok = v, v, true
			} else if v < c.iLo {
				c.iLo = v
			} else if v > c.iHi {
				c.iHi = v
			}
		case tuple.KindFloat:
			v := col.floats[j]
			switch {
			case math.IsNaN(v):
				// NaN is unordered: no bounds can cover it, so the
				// column stays unprunable for this segment's lifetime.
				c.ok = false
			case first:
				c.fLo, c.fHi, c.ok = v, v, true
			case c.ok:
				if v < c.fLo {
					c.fLo = v
				} else if v > c.fHi {
					c.fHi = v
				}
			}
		case tuple.KindString:
			code := col.codes[j]
			if !first && c.hasLast && code == c.lastCode {
				// Insertion-time clustering makes value repeats the
				// common case; a repeat changes neither the bounds nor
				// the bloom (sets are idempotent), so skip the hash.
				break
			}
			v := col.dict[code]
			if first {
				c.sLo, c.sHi, c.ok = v, v, true
			} else {
				if v < c.sLo {
					c.sLo = v
				} else if v > c.sHi {
					c.sHi = v
				}
			}
			if c.bloom != nil {
				c.bloom.AddString(v)
			}
			c.lastCode, c.hasLast = code, true
		case tuple.KindBool:
			var v int64
			if col.bools[j] {
				v = 1
			}
			if first {
				c.iLo, c.iHi, c.ok = v, v, true
			} else if v < c.iLo {
				c.iLo = v
			} else if v > c.iHi {
				c.iHi = v
			}
		}
	}
}

// rebuild recomputes the summary over the segment's live rows,
// tightening eviction-loosened bounds and clearing the dirty flag. The
// bloom is sized to the segment's full capacity, not its current fill:
// an unsealed segment keeps appending after a rebuild, and an
// undersized filter would saturate into uselessness. The caller must
// hold the shard's write lock.
func (z *ZoneMap) rebuild(sg *segment) {
	capacity := sg.capacity
	if capacity < 1 {
		capacity = 1
	}
	fresh := newZoneMap(z.schema, capacity)
	for j := range sg.ids {
		if sg.liveAt(j) {
			fresh.fold(sg, j)
		}
	}
	*z = *fresh
}

// markDirty invalidates the summary until the next rebuild. Called when
// an Update mutates attribute values in place.
func (z *ZoneMap) markDirty() { z.dirty = true }

// usable reports whether the summary may be consulted at all.
func (z *ZoneMap) usable() bool { return z.seen && !z.dirty }

// Bounds returns the inclusive bounds of schema column i, with ok=false
// when the summary cannot vouch for them (empty, dirty, or poisoned by
// an incomparable value).
func (z *ZoneMap) Bounds(i int) (lo, hi tuple.Value, ok bool) {
	if !z.usable() || i < 0 || i >= len(z.cols) || !z.cols[i].ok {
		return tuple.Value{}, tuple.Value{}, false
	}
	c := &z.cols[i]
	switch c.kind {
	case tuple.KindInt:
		return tuple.Int(c.iLo), tuple.Int(c.iHi), true
	case tuple.KindFloat:
		return tuple.Float(c.fLo), tuple.Float(c.fHi), true
	case tuple.KindString:
		return tuple.String_(c.sLo), tuple.String_(c.sHi), true
	case tuple.KindBool:
		return tuple.Bool(c.iLo != 0), tuple.Bool(c.iHi != 0), true
	}
	return tuple.Value{}, tuple.Value{}, false
}

// TickBounds returns the inclusive insertion-tick bounds as INT values.
func (z *ZoneMap) TickBounds() (lo, hi tuple.Value, ok bool) {
	if !z.usable() {
		return tuple.Value{}, tuple.Value{}, false
	}
	return tuple.Int(z.tMin), tuple.Int(z.tMax), true
}

// IDBounds returns the inclusive tuple-ID bounds as INT values.
func (z *ZoneMap) IDBounds() (lo, hi tuple.Value, ok bool) {
	if !z.usable() {
		return tuple.Value{}, tuple.Value{}, false
	}
	return tuple.Int(int64(z.idMin)), tuple.Int(int64(z.idMax)), true
}

// MayContainString reports whether column i may hold the string s.
// False means definitely absent; true when present, unknown, or the
// column has no bloom.
func (z *ZoneMap) MayContainString(i int, s string) bool {
	if !z.usable() || i < 0 || i >= len(z.cols) || z.cols[i].bloom == nil {
		return true
	}
	return z.cols[i].bloom.MayContainString(s)
}

// PruneStats reports what one pruned scan skipped.
type PruneStats struct {
	Segments int // segments skipped wholesale
	Tuples   int // live tuples inside those segments
}
