package storage

import (
	"fmt"
	"testing"

	"fungusdb/internal/tuple"
)

var zoneSchema = tuple.MustSchema(
	tuple.Column{Name: "k", Kind: tuple.KindInt},
	tuple.Column{Name: "name", Kind: tuple.KindString},
)

func zoneRow(k int64, name string) []tuple.Value {
	return []tuple.Value{tuple.Int(k), tuple.String_(name)}
}

// fillZoneStore inserts n tuples with k = i and name = name-<i%8> into
// a store with small segments.
func fillZoneStore(t *testing.T, segSize, n int) *Store {
	t.Helper()
	s := New(zoneSchema, WithSegmentSize(segSize))
	for i := 0; i < n; i++ {
		if _, err := s.Insert(0, zoneRow(int64(i), fmt.Sprintf("name-%d", i%8))); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestZoneMapBoundsTrackAppends(t *testing.T) {
	s := fillZoneStore(t, 16, 40) // segments: [0,16) [16,32) [32,40)
	sg := s.segs[1]
	lo, hi, ok := sg.zone.Bounds(0)
	if !ok {
		t.Fatal("bounds unavailable")
	}
	if lo.AsInt() != 16 || hi.AsInt() != 31 {
		t.Errorf("k bounds [%v, %v], want [16, 31]", lo, hi)
	}
	idLo, idHi, ok := sg.zone.IDBounds()
	if !ok || idLo.AsInt() != 16 || idHi.AsInt() != 31 {
		t.Errorf("ID bounds [%v %v %v]", idLo, idHi, ok)
	}
	if _, _, ok := sg.zone.TickBounds(); !ok {
		t.Error("tick bounds unavailable")
	}
	// Bloom: present strings may hit, absent strings beyond the fp
	// budget must mostly miss; with 8 distinct values a definite miss
	// is deterministic to check via a value never inserted.
	if !sg.zone.MayContainString(1, "name-3") {
		t.Error("bloom lost an inserted value")
	}
	miss := 0
	for i := 0; i < 100; i++ {
		if !sg.zone.MayContainString(1, fmt.Sprintf("absent-%d", i)) {
			miss++
		}
	}
	if miss < 90 {
		t.Errorf("bloom definite-misses = %d/100, expected near-total", miss)
	}
}

func TestZoneMapEvictionStaysConservative(t *testing.T) {
	s := fillZoneStore(t, 16, 32)
	// Evict the extremes of segment 0; bounds must still cover every
	// remaining live tuple (they stay a superset — loose, never wrong).
	if err := s.Evict(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict(15); err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := s.segs[0].zone.Bounds(0)
	if !ok {
		t.Fatal("bounds unavailable after evictions")
	}
	if lo.AsInt() > 1 || hi.AsInt() < 14 {
		t.Errorf("bounds [%v, %v] exclude live tuples", lo, hi)
	}
}

func TestZoneMapCompactRebuildTightens(t *testing.T) {
	s := fillZoneStore(t, 16, 32)
	for id := 0; id < 8; id++ {
		if err := s.Evict(tuple.ID(id)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Compact(); n != 8 {
		t.Fatalf("compact reclaimed %d, want 8", n)
	}
	lo, hi, ok := s.segs[0].zone.Bounds(0)
	if !ok {
		t.Fatal("bounds unavailable after compact")
	}
	if lo.AsInt() != 8 || hi.AsInt() != 15 {
		t.Errorf("rebuilt bounds [%v, %v], want [8, 15]", lo, hi)
	}
	// The rebuilt bloom no longer contains the evicted-only values.
	if s.segs[0].zone.MayContainString(1, "name-0") {
		t.Log("name-0 may remain (live dupes or fp) — checking a live one instead")
	}
	if !s.segs[0].zone.MayContainString(1, "name-7") {
		t.Error("rebuilt bloom lost a live value")
	}
}

func TestZoneMapUpdateAttrsDirties(t *testing.T) {
	s := fillZoneStore(t, 16, 32)
	// Freshness-only updates (the per-tick hot path) must keep the
	// summary usable.
	if err := s.Update(3, func(tp *tuple.Tuple) { tp.F = 0.5; tp.Infected = true }); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.segs[0].zone.Bounds(0); !ok {
		t.Fatal("freshness update invalidated the zone map")
	}
	// An attribute mutation goes through UpdateAttrs and must dirty it...
	if err := s.UpdateAttrs(3, func(tp *tuple.Tuple) { tp.Attrs[0] = tuple.Int(999) }); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.segs[0].zone.Bounds(0); ok {
		t.Fatal("attribute update left the zone map usable")
	}
	if !s.segs[0].zone.MayContainString(1, "definitely-absent") {
		t.Error("dirty bloom still claimed definite absence")
	}
	// ...and Compact must rebuild it over the new values.
	s.Compact()
	lo, hi, ok := s.segs[0].zone.Bounds(0)
	if !ok {
		t.Fatal("bounds unavailable after rebuild")
	}
	if hi.AsInt() != 999 || lo.AsInt() != 0 {
		t.Errorf("rebuilt bounds [%v, %v], want [0, 999]", lo, hi)
	}
}

func TestScanPrunedSkipsAndCounts(t *testing.T) {
	s := fillZoneStore(t, 16, 64) // 4 segments
	visited := 0
	ps := s.ScanPruned(func(z *ZoneMap) bool {
		_, hi, ok := z.Bounds(0)
		return ok && hi.AsInt() < 32 // skip segments wholly below 32
	}, func(tp *tuple.Tuple) bool {
		visited++
		if tp.Attrs[0].AsInt() < 32 {
			t.Fatalf("visited pruned tuple %v", tp)
		}
		return true
	})
	if ps.Segments != 2 || ps.Tuples != 32 {
		t.Errorf("prune stats = %+v, want 2 segments / 32 tuples", ps)
	}
	if visited != 32 {
		t.Errorf("visited %d, want 32", visited)
	}
	st := s.Stats()
	if st.SegsPruned != 2 || st.TuplesSkipped != 32 {
		t.Errorf("lifetime counters = %d/%d", st.SegsPruned, st.TuplesSkipped)
	}
	// A nil skip is a plain scan.
	n := 0
	if ps := s.ScanPruned(nil, func(*tuple.Tuple) bool { n++; return true }); ps.Segments != 0 || n != 64 {
		t.Errorf("nil-skip scan visited %d, pruned %+v", n, ps)
	}
}

func TestScanPrunedRestoredStore(t *testing.T) {
	// Zone maps must also be built on the snapshot-restore path.
	src := fillZoneStore(t, 16, 48)
	dst := New(zoneSchema, WithSegmentSize(16))
	src.Scan(func(tp *tuple.Tuple) bool {
		if err := dst.Restore(tp.Clone()); err != nil {
			t.Fatal(err)
		}
		return true
	})
	dst.FinishRestore()
	visited := 0
	ps := dst.ScanPruned(func(z *ZoneMap) bool {
		_, hi, ok := z.Bounds(0)
		return ok && hi.AsInt() < 16
	}, func(*tuple.Tuple) bool { visited++; return true })
	if ps.Segments != 1 || visited != 32 {
		t.Errorf("restored store: pruned %+v, visited %d (want 1 segment, 32)", ps, visited)
	}
}

func TestZoneMapRebuildKeepsBloomCapacity(t *testing.T) {
	// Rebuilding a partially-filled unsealed segment must size its
	// bloom for the segment's capacity: the segment keeps appending
	// afterwards, and an undersized filter would saturate.
	s := New(zoneSchema, WithSegmentSize(256))
	for i := 0; i < 16; i++ {
		if _, err := s.Insert(0, zoneRow(int64(i), fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.UpdateAttrs(3, func(tp *tuple.Tuple) { tp.Attrs[0] = tuple.Int(500) }); err != nil {
		t.Fatal(err)
	}
	s.Compact() // rebuilds the dirty unsealed tail
	for i := 16; i < 256; i++ {
		if _, err := s.Insert(0, zoneRow(int64(i), fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	miss := 0
	for i := 0; i < 100; i++ {
		if !s.segs[0].zone.MayContainString(1, fmt.Sprintf("absent-%d", i)) {
			miss++
		}
	}
	if miss < 90 {
		t.Errorf("rebuilt bloom saturated: only %d/100 definite misses", miss)
	}
}
