package storage

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

// DefaultSegmentSize is the tuple capacity of one segment when the
// caller does not choose one.
const DefaultSegmentSize = 4096

// ErrNotFound is returned when an operation addresses a tuple that was
// never inserted or has been evicted.
var ErrNotFound = errors.New("storage: tuple not found")

// ErrStaleRestore is returned by Restore when the tuple's ID is behind
// the store's allocation cursor: the tuple is already present (or was
// superseded), which WAL recovery treats as "skip, not fail".
var ErrStaleRestore = errors.New("storage: stale restore")

// Store is the extent of one relation (or one shard of one, when
// created with WithStride). It is not safe for concurrent use; the
// engine layer (internal/core) serialises access per shard.
type Store struct {
	schema  *tuple.Schema
	segSize int
	stride  tuple.ID   // ID-axis step between consecutive slots (1 = unsharded)
	offset  tuple.ID   // ID of slot 0 (the shard index)
	segs    []*segment // segs[k] covers slots [k*segSize, (k+1)*segSize); nil once dropped
	first   int        // index of the first non-nil segment (all before are dropped)
	nextID  tuple.ID
	live    int
	bytes   int

	evictions uint64 // tombstones ever written
	drops     uint64 // whole segments reclaimed

	// Pruning and batch counters are atomic: pruned scans run under the
	// engine's shard read lock, so any number of them observe and skip
	// segments concurrently.
	segsPruned     atomic.Uint64 // segments skipped wholesale by pruned scans
	tuplesSkipped  atomic.Uint64 // live tuples inside those segments
	batchesScanned atomic.Uint64 // column batches handed to vectorized scans
	rowsVectorized atomic.Uint64 // live rows inside those batches

	restoreSeg   int                      // segment index of the last Restore, -1 outside recovery
	pendingZones map[tuple.ID]pendingZone // snapshot zone summaries staged for install, keyed by segment base
	upScratch    tuple.Tuple              // Update decode buffer (Update runs under the shard write lock)
}

// Option configures a Store.
type Option func(*Store)

// WithSegmentSize sets the per-segment tuple capacity. It panics if n
// is not positive.
func WithSegmentSize(n int) Option {
	if n <= 0 {
		panic("storage: segment size must be positive")
	}
	return func(s *Store) { s.segSize = n }
}

// WithStride makes the store own only the ID residue class
// {offset, offset+stride, offset+2*stride, ...}: shard offset of a
// stride-way sharded extent. The default (stride 1, offset 0) is the
// dense unsharded axis. It panics on an invalid pair.
func WithStride(stride, offset int) Option {
	if stride <= 0 || offset < 0 || offset >= stride {
		panic("storage: stride must be positive and 0 <= offset < stride")
	}
	return func(s *Store) {
		s.stride = tuple.ID(stride)
		s.offset = tuple.ID(offset)
		s.nextID = s.offset
	}
}

// New creates an empty Store for the given schema.
func New(schema *tuple.Schema, opts ...Option) *Store {
	s := &Store{schema: schema, segSize: DefaultSegmentSize, stride: 1, restoreSeg: -1}
	for _, o := range opts {
		o(s)
	}
	return s
}

// aligned reports whether id belongs to this store's residue class.
func (s *Store) aligned(id tuple.ID) bool {
	return id >= s.offset && (id-s.offset)%s.stride == 0
}

// slotOf converts an aligned ID to its dense slot index.
func (s *Store) slotOf(id tuple.ID) int { return int((id - s.offset) / s.stride) }

// idAt converts a dense slot index back to its ID.
func (s *Store) idAt(slot int) tuple.ID { return s.offset + tuple.ID(slot)*s.stride }

// Schema returns the relation schema.
func (s *Store) Schema() *tuple.Schema { return s.schema }

// Len returns the number of live tuples in the extent.
func (s *Store) Len() int { return s.live }

// Bytes returns the approximate live extent size in bytes.
func (s *Store) Bytes() int { return s.bytes }

// NextID returns the ID the next insert will receive.
func (s *Store) NextID() tuple.ID { return s.nextID }

// Stats summarises lifetime store activity.
type Stats struct {
	Live        int
	Bytes       int
	Inserted    uint64
	Evicted     uint64
	SegsTotal   int // segments ever created
	SegsLive    int // segments currently held
	SegsDropped uint64
	// SegsPruned counts segments skipped wholesale by zone-map pruned
	// scans; TuplesSkipped is the live tuples those segments held at
	// skip time (work the scan never did).
	SegsPruned    uint64
	TuplesSkipped uint64
	// BatchesScanned counts column batches handed out by vectorized
	// scans; RowsVectorized is the live rows those batches carried.
	BatchesScanned uint64
	RowsVectorized uint64
}

// Stats returns a snapshot of store counters.
func (s *Store) Stats() Stats {
	liveSegs := 0
	for _, sg := range s.segs {
		if sg != nil {
			liveSegs++
		}
	}
	return Stats{
		Live:           s.live,
		Bytes:          s.bytes,
		Inserted:       uint64(s.slotOf(s.nextID)),
		Evicted:        s.evictions,
		SegsTotal:      len(s.segs),
		SegsLive:       liveSegs,
		SegsDropped:    s.drops,
		SegsPruned:     s.segsPruned.Load(),
		TuplesSkipped:  s.tuplesSkipped.Load(),
		BatchesScanned: s.batchesScanned.Load(),
		RowsVectorized: s.rowsVectorized.Load(),
	}
}

// Insert validates attrs against the schema and appends a new tuple with
// full freshness at tick now, returning it.
func (s *Store) Insert(now clock.Tick, attrs []tuple.Value) (tuple.Tuple, error) {
	if err := s.schema.Validate(attrs); err != nil {
		return tuple.Tuple{}, err
	}
	tp := tuple.New(s.allocID(), now, attrs)
	s.insertRaw(tp)
	return tp, nil
}

// AdvanceNextID raises the ID the next insert will receive to at least
// id (rounded up to this store's residue class). Recovery uses it to
// restore the pre-crash allocation point so IDs of evicted tuples are
// never reused.
func (s *Store) AdvanceNextID(id tuple.ID) {
	if id <= s.nextID {
		return
	}
	if rem := (id - s.offset) % s.stride; rem != 0 {
		id += s.stride - rem
	}
	if id > s.nextID {
		s.nextID = id
	}
}

// allocID returns the ID for the next insert, skipping past segments
// that can no longer accept appends (dropped, or sealed sparse segments
// left behind by a snapshot restore). IDs stay strictly increasing but
// need not be contiguous.
func (s *Store) allocID() tuple.ID {
	for {
		segIdx := s.slotOf(s.nextID) / s.segSize
		if segIdx >= len(s.segs) {
			return s.nextID
		}
		sg := s.segs[segIdx]
		if sg != nil && !sg.sealed {
			return s.nextID
		}
		s.nextID = s.idAt((segIdx + 1) * s.segSize)
	}
}

// InsertTuple restores a fully formed tuple (including freshness and
// infection state), used by WAL recovery and snapshot load. The tuple's
// ID must equal NextID(); recovery replays in insertion order.
func (s *Store) InsertTuple(tp tuple.Tuple) error {
	if tp.ID != s.nextID {
		return fmt.Errorf("storage: out-of-order restore: got id %d, want %d", tp.ID, s.nextID)
	}
	if err := s.schema.Validate(tp.Attrs); err != nil {
		return err
	}
	s.insertRaw(tp)
	return nil
}

// Restore appends a tuple during snapshot load. Unlike InsertTuple it
// accepts sparse IDs (snapshots only contain survivors); IDs must still
// be strictly increasing across calls. Segments fully covered by gaps
// stay unallocated, and segments the restore cursor has moved past are
// sealed so they can be dropped when their last tuple is evicted. Call
// FinishRestore after the last tuple.
func (s *Store) Restore(tp tuple.Tuple) error {
	if tp.ID < s.nextID {
		return fmt.Errorf("storage: restore id %d not increasing (next %d): %w", tp.ID, s.nextID, ErrStaleRestore)
	}
	if !s.aligned(tp.ID) {
		return fmt.Errorf("storage: restore id %d outside residue class (stride %d, offset %d)", tp.ID, s.stride, s.offset)
	}
	if err := s.schema.Validate(tp.Attrs); err != nil {
		return err
	}
	segIdx := s.slotOf(tp.ID) / s.segSize
	for len(s.segs) <= segIdx {
		s.segs = append(s.segs, nil)
	}
	// Seal every earlier segment the cursor skipped or finished.
	for i := s.restoreSeg; i >= 0 && i < segIdx; i++ {
		if s.segs[i] != nil {
			s.segs[i].sealed = true
		}
	}
	if s.restoreSeg < segIdx {
		s.restoreSeg = segIdx
	}
	if s.segs[segIdx] == nil {
		sg := newSegment(s.schema, s.idAt(segIdx*s.segSize), s.segSize, s.stride)
		if pz, ok := s.pendingZones[sg.base]; ok {
			// A snapshot carried this segment's zone map: install it and
			// let append skip the per-row fold for every row it already
			// covers (IDs at or below the summary's high-water mark).
			sg.zone = pz.zone
			sg.zoneCoverMax = pz.coverMax
			sg.zoneInstall = true
		}
		s.segs[segIdx] = sg
	}
	s.segs[segIdx].append(tp)
	s.nextID = tp.ID + s.stride
	s.live++
	s.bytes += tp.Size()
	return nil
}

// FinishRestore seals the final restored segment when it cannot receive
// further inserts (it is sparse, so insertRaw would misalign), keeping
// the drop-when-empty invariant. A dense final segment stays open as the
// normal insert tail.
func (s *Store) FinishRestore() {
	s.pendingZones = nil
	if s.restoreSeg < 0 || s.restoreSeg >= len(s.segs) {
		return
	}
	sg := s.segs[s.restoreSeg]
	if sg != nil && sg.sparse {
		sg.sealed = true
	}
	// Advance first past any leading nil gap segments.
	for s.first < len(s.segs) && s.segs[s.first] == nil {
		s.first++
	}
}

func (s *Store) insertRaw(tp tuple.Tuple) {
	segIdx := s.slotOf(tp.ID) / s.segSize
	if segIdx >= len(s.segs) && len(s.segs) > 0 {
		// Moving past the current tail: it will never receive another
		// append (IDs only grow), so seal it to keep drop-when-empty.
		if tail := s.segs[len(s.segs)-1]; tail != nil {
			tail.sealed = true
		}
	}
	for len(s.segs) <= segIdx {
		s.segs = append(s.segs, newSegment(s.schema, s.idAt(len(s.segs)*s.segSize), s.segSize, s.stride))
	}
	s.segs[segIdx].append(tp)
	s.nextID += s.stride
	s.live++
	s.bytes += tp.Size()
}

// Get returns a copy of the live tuple with the given id.
func (s *Store) Get(id tuple.ID) (tuple.Tuple, error) {
	sg, j := s.locate(id)
	if sg == nil {
		return tuple.Tuple{}, ErrNotFound
	}
	var tp tuple.Tuple
	sg.readRow(j, &tp)
	return tp, nil
}

// Contains reports whether id refers to a live tuple.
func (s *Store) Contains(id tuple.ID) bool {
	sg, _ := s.locate(id)
	return sg != nil
}

// locate returns the segment and row index of the live tuple with id,
// or (nil, -1).
func (s *Store) locate(id tuple.ID) (*segment, int) {
	sg := s.segOf(id)
	if sg == nil {
		return nil, -1
	}
	j := sg.liveSlot(id)
	if j < 0 {
		return nil, -1
	}
	return sg, j
}

func (s *Store) segOf(id tuple.ID) *segment {
	if !s.aligned(id) {
		return nil
	}
	segIdx := s.slotOf(id) / s.segSize
	if segIdx < s.first || segIdx >= len(s.segs) {
		return nil
	}
	return s.segs[segIdx]
}

// Update applies fn to the live tuple with id in place. fn may mutate
// freshness and infection state only; it must not change ID, T or the
// attributes (use UpdateAttrs for those — the columnar layout only
// writes freshness and infection back, and this path runs once per
// touched tuple per decay tick, too hot for change detection).
func (s *Store) Update(id tuple.ID, fn func(*tuple.Tuple)) error {
	sg, j := s.locate(id)
	if sg == nil {
		return ErrNotFound
	}
	sg.readRow(j, &s.upScratch)
	fn(&s.upScratch)
	sg.writeBack(j, &s.upScratch)
	return nil
}

// UpdateAttrs applies fn to the live tuple with id, allowing attribute
// mutation: the new values are written back into the columns and the
// segment's zone map is invalidated until the next Compact rebuilds it,
// so pruning can never trust bounds the mutation outdated. fn must not
// change ID or T.
func (s *Store) UpdateAttrs(id tuple.ID, fn func(*tuple.Tuple)) error {
	sg, j := s.locate(id)
	if sg == nil {
		return ErrNotFound
	}
	sg.readRow(j, &s.upScratch)
	before := s.upScratch.Size()
	fn(&s.upScratch)
	sg.writeBack(j, &s.upScratch)
	for i := range sg.cols {
		sg.cols[i].setVal(j, s.upScratch.Attrs[i])
	}
	delta := s.upScratch.Size() - before
	s.bytes += delta
	sg.bytes += delta
	sg.zone.markDirty()
	return nil
}

// Evict tombstones the tuple with id. A sealed segment whose last live
// tuple is evicted is dropped and its memory released — the paper's
// "removing complete insertion ranges".
func (s *Store) Evict(id tuple.ID) error {
	if !s.aligned(id) {
		return ErrNotFound
	}
	segIdx := s.slotOf(id) / s.segSize
	if segIdx < s.first || segIdx >= len(s.segs) || s.segs[segIdx] == nil {
		return ErrNotFound
	}
	sg := s.segs[segIdx]
	slot := sg.slot(id)
	if slot < 0 {
		return ErrNotFound
	}
	freed, ok := sg.kill(slot)
	if !ok {
		return ErrNotFound
	}
	s.live--
	s.bytes -= freed
	s.evictions++
	if sg.live == 0 && sg.sealed {
		s.dropSegment(segIdx)
	}
	return nil
}

func (s *Store) dropSegment(i int) {
	s.segs[i] = nil
	s.drops++
	for s.first < len(s.segs) && s.segs[s.first] == nil {
		s.first++
	}
}

// Scan calls fn for every live tuple in insertion (time) order. The
// tuple is decoded from the columns into a scratch buffer; the pointer
// passed to fn is valid only during the call, and fn must not evict or
// insert. Mutations fn makes to freshness and infection state — the
// only fields the fungus contract allows a scan to touch — are written
// back into the columns after each call. Returning false stops the
// scan.
func (s *Store) Scan(fn func(*tuple.Tuple) bool) {
	s.ScanPruned(nil, fn)
}

// ScanSystem hands fn the raw system columns of every segment holding
// live tuples, in insertion (time) order: row IDs, insertion ticks,
// freshness values, and the liveness bitmap (set bits mark live rows;
// bits past the appended prefix are never set). fn may mutate fs in
// place — that is the columnar equivalent of the freshness write-back a
// Scan performs — but must treat the other slices as read-only and must
// not evict or insert. Returning false stops the scan. This exists so
// decay laws that touch only system fields can tick without
// materialising tuples row by row.
func (s *Store) ScanSystem(fn func(ids []tuple.ID, ts []int64, fs []float64, live []uint64) bool) {
	for i := s.first; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg == nil || sg.live == 0 {
			continue
		}
		if !fn(sg.ids, sg.ts, sg.fs, sg.liveBits) {
			return
		}
	}
}

// ScanPruned is Scan with segment pruning: before a segment's rows are
// visited, skip is consulted with the segment's zone map and may veto
// the whole segment (skip must only return true when no live tuple can
// match — zone maps guarantee bounds and bloom membership are
// conservative). A nil skip degrades to a plain Scan. Dirty or empty
// summaries are never offered to skip. Returns what was pruned; the
// store's lifetime counters accumulate the same numbers.
func (s *Store) ScanPruned(skip func(*ZoneMap) bool, fn func(*tuple.Tuple) bool) PruneStats {
	var ps PruneStats
	var scratch tuple.Tuple
	for i := s.first; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg == nil {
			continue
		}
		if skip != nil && sg.live > 0 && sg.zone.usable() && skip(sg.zone) {
			ps.Segments++
			ps.Tuples += sg.live
			continue
		}
		if !sg.scanLive(&scratch, fn) {
			s.notePruned(ps)
			return ps
		}
	}
	s.notePruned(ps)
	return ps
}

// scanLive drives fn over the segment's live rows in ID order, writing
// freshness/infection mutations back after every call. Reports false
// when fn stopped the scan.
func (s *segment) scanLive(scratch *tuple.Tuple, fn func(*tuple.Tuple) bool) bool {
	for w, m := range s.liveBits {
		base := w << 6
		for m != 0 {
			j := base + bits.TrailingZeros64(m)
			m &= m - 1
			s.readRow(j, scratch)
			ok := fn(scratch)
			s.writeBack(j, scratch)
			if !ok {
				return false
			}
		}
	}
	return true
}

// ScanBatches drives fn over the extent's live rows as columnar
// batches, segment-pruning with skip exactly like ScanPruned. Every
// batch's views alias segment memory and are valid only during the
// call; fn must not evict, insert, or mutate through them. Batches with
// no live rows are elided. Returning false stops the scan.
func (s *Store) ScanBatches(skip func(*ZoneMap) bool, fn func(*tuple.Batch) bool) PruneStats {
	var ps PruneStats
	var b tuple.Batch
	var batches, rows uint64
	for i := s.first; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg == nil {
			continue
		}
		if skip != nil && sg.live > 0 && sg.zone.usable() && skip(sg.zone) {
			ps.Segments++
			ps.Tuples += sg.live
			continue
		}
		for start := 0; start < sg.rows(); start += tuple.BatchRows {
			sg.fillBatch(start, &b)
			if b.Alive == 0 {
				continue
			}
			batches++
			rows += uint64(b.Alive)
			if !fn(&b) {
				s.noteBatches(batches, rows)
				s.notePruned(ps)
				return ps
			}
		}
	}
	s.noteBatches(batches, rows)
	s.notePruned(ps)
	return ps
}

// ScanAxis is ScanPruned with a caller-chosen direction: reverse=true
// visits segments (and rows within them) from the top of the ID axis
// down. Ordered top-k scans use it with a heap-state-aware skip so
// ORDER BY _t/_id LIMIT k queries stop consulting segments whose zone
// bounds cannot beat the current worst survivor.
func (s *Store) ScanAxis(reverse bool, skip func(*ZoneMap) bool, fn func(*tuple.Tuple) bool) PruneStats {
	if !reverse {
		return s.ScanPruned(skip, fn)
	}
	var ps PruneStats
	var scratch tuple.Tuple
	for i := len(s.segs) - 1; i >= s.first; i-- {
		sg := s.segs[i]
		if sg == nil {
			continue
		}
		if skip != nil && sg.live > 0 && sg.zone.usable() && skip(sg.zone) {
			ps.Segments++
			ps.Tuples += sg.live
			continue
		}
		for j := sg.rows() - 1; j >= 0; j-- {
			if !sg.liveAt(j) {
				continue
			}
			sg.readRow(j, &scratch)
			ok := fn(&scratch)
			sg.writeBack(j, &scratch)
			if !ok {
				s.notePruned(ps)
				return ps
			}
		}
	}
	s.notePruned(ps)
	return ps
}

// noteBatches folds one batch scan's volume into the lifetime counters.
func (s *Store) noteBatches(batches, rows uint64) {
	if batches > 0 {
		s.batchesScanned.Add(batches)
		s.rowsVectorized.Add(rows)
	}
}

// notePruned folds one scan's pruning outcome into the lifetime
// counters.
func (s *Store) notePruned(ps PruneStats) {
	if ps.Segments > 0 {
		s.segsPruned.Add(uint64(ps.Segments))
		s.tuplesSkipped.Add(uint64(ps.Tuples))
	}
}

// ScanIDs appends the IDs of all live tuples to dst in insertion order
// and returns it. Used by fungi that must mutate during iteration.
func (s *Store) ScanIDs(dst []tuple.ID) []tuple.ID {
	s.Scan(func(tp *tuple.Tuple) bool {
		dst = append(dst, tp.ID)
		return true
	})
	return dst
}

// PrevLive returns the nearest live tuple ID strictly before id on the
// time axis, with ok=false when none exists. id itself need not be live
// or belong to this store's residue class.
func (s *Store) PrevLive(id tuple.ID) (tuple.ID, bool) {
	if id <= s.offset {
		return 0, false
	}
	bound := id - 1 // largest candidate ID (ID-space; may be unaligned)
	segIdx := s.slotOf(bound-(bound-s.offset)%s.stride) / s.segSize
	if segIdx >= len(s.segs) {
		segIdx = len(s.segs) - 1
		bound = s.idAt(len(s.segs)*s.segSize) - 1
	}
	for i := segIdx; i >= s.first; i-- {
		sg := s.segs[i]
		if sg != nil {
			if got, ok := sg.lastLiveAtOrBelow(bound); ok {
				return got, true
			}
		}
		if i == 0 {
			break
		}
		bound = s.idAt(i*s.segSize) - 1
	}
	return 0, false
}

// NextLive returns the nearest live tuple ID strictly after id, with
// ok=false when none exists. id need not belong to this store's residue
// class.
func (s *Store) NextLive(id tuple.ID) (tuple.ID, bool) {
	bound := id + 1 // smallest candidate ID (ID-space; may be unaligned)
	if bound < s.offset {
		bound = s.offset
	}
	// Slot of the smallest aligned ID >= bound.
	slot := int((bound - s.offset + s.stride - 1) / s.stride)
	segIdx := slot / s.segSize
	if segIdx < s.first {
		segIdx = s.first
		bound = s.idAt(s.first * s.segSize)
	}
	for i := segIdx; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg != nil {
			if got, ok := sg.firstLiveAtOrAbove(bound); ok {
				return got, true
			}
		}
		bound = s.idAt((i + 1) * s.segSize)
	}
	return 0, false
}

// FirstLive returns the smallest live tuple ID, with ok=false when the
// extent is empty.
func (s *Store) FirstLive() (tuple.ID, bool) {
	for i := s.first; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg == nil {
			continue
		}
		if got, ok := sg.firstLiveAtOrAbove(sg.base); ok {
			return got, true
		}
	}
	return 0, false
}

// LastLive returns the largest live tuple ID, with ok=false when the
// extent is empty.
func (s *Store) LastLive() (tuple.ID, bool) {
	if s.nextID == s.offset {
		return 0, false
	}
	return s.PrevLive(s.nextID)
}

// Compact rewrites partially dead sealed segments, physically removing
// tombstoned tuples while preserving IDs (segments become sparse). It
// returns the number of tombstone slots reclaimed. Compact never changes
// what Scan observes, only memory usage; the unsealed tail segment is
// skipped. Every surviving segment's zone map is rebuilt over the live
// tuples — tightening eviction-loosened bounds and re-validating
// summaries an attribute Update dirtied.
//
// This is the "deferred compaction" arm of the ablation in DESIGN.md;
// eager deletion corresponds to calling Compact after every Evict.
func (s *Store) Compact() int {
	reclaimed := 0
	for i := s.first; i < len(s.segs); i++ {
		sg := s.segs[i]
		if sg == nil {
			continue
		}
		if !sg.sealed {
			if sg.zone.dirty {
				sg.zone.rebuild(sg)
			}
			continue
		}
		if sg.live == 0 {
			reclaimed += sg.rows()
			s.dropSegment(i)
			continue
		}
		if sg.live == sg.rows() {
			if sg.zone.dirty {
				sg.zone.rebuild(sg)
			}
			continue
		}
		reclaimed += sg.compactInPlace()
		sg.zone.rebuild(sg)
	}
	return reclaimed
}
