package storage

import (
	"sync/atomic"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

// ShardedStore horizontally partitions one relation extent across N
// independent Stores. Shard s owns the ID residue class
// {s, s+N, s+2N, ...} (stride N, offset s), so every global tuple ID
// maps to exactly one shard via id mod N, and the union of the shards
// is a dense global ID axis. Inserts are dealt round-robin, which keeps
// single-threaded insertion producing the same ID sequence 0, 1, 2, ...
// as an unsharded store; a one-shard ShardedStore is bit-for-bit
// equivalent to a plain Store.
//
// Like Store, a ShardedStore is not safe for concurrent use by itself —
// the engine layer (internal/core) holds one lock per shard and fans
// work out. The exception is NextShard, whose round-robin cursor is
// atomic so concurrent inserters can claim shards without a global
// lock. Methods that take a shard index (Shard, InsertShard, ScanShard)
// touch only that shard and may run concurrently with operations on
// other shards; whole-extent methods (Scan, Len, Stats, ...) touch
// every shard and need all shard locks held.
type ShardedStore struct {
	schema *tuple.Schema
	shards []*Store
	rr     atomic.Uint64 // round-robin insert cursor
}

// NewSharded creates an empty extent split into the given number of
// shards (values below 1 are clamped to 1). Options apply to every
// shard; WithStride must not be passed (the sharding owns the axis).
func NewSharded(schema *tuple.Schema, shards int, opts ...Option) *ShardedStore {
	if shards < 1 {
		shards = 1
	}
	ss := &ShardedStore{schema: schema, shards: make([]*Store, shards)}
	for i := range ss.shards {
		shardOpts := make([]Option, 0, len(opts)+1)
		shardOpts = append(shardOpts, opts...)
		shardOpts = append(shardOpts, WithStride(shards, i))
		ss.shards[i] = New(schema, shardOpts...)
	}
	return ss
}

// Schema returns the relation schema.
func (ss *ShardedStore) Schema() *tuple.Schema { return ss.schema }

// NumShards returns the shard count.
func (ss *ShardedStore) NumShards() int { return len(ss.shards) }

// Shard returns shard i. Each shard is a full Store and implements the
// fungus.Extent contract over its slice of the time axis.
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// ShardOf returns the index of the shard owning id.
func (ss *ShardedStore) ShardOf(id tuple.ID) int {
	return int(uint64(id) % uint64(len(ss.shards)))
}

// NextShard atomically advances the round-robin cursor and returns the
// shard the next insert should go to. Safe for concurrent use.
func (ss *ShardedStore) NextShard() int {
	return int((ss.rr.Add(1) - 1) % uint64(len(ss.shards)))
}

// Insert routes one insert round-robin. Callers that need per-shard
// locking call NextShard and InsertShard themselves.
func (ss *ShardedStore) Insert(now clock.Tick, attrs []tuple.Value) (tuple.Tuple, error) {
	return ss.shards[ss.NextShard()].Insert(now, attrs)
}

// InsertShard inserts into shard i, which the caller has claimed via
// NextShard (and locked, under concurrency).
//
//fungusvet:requires shardlock
func (ss *ShardedStore) InsertShard(i int, now clock.Tick, attrs []tuple.Value) (tuple.Tuple, error) {
	return ss.shards[i].Insert(now, attrs)
}

// Len returns the number of live tuples across all shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.Len()
	}
	return n
}

// Bytes returns the approximate live extent size across all shards.
func (ss *ShardedStore) Bytes() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.Bytes()
	}
	return n
}

// NextID returns one past the largest ID any shard has allocated: an
// upper bound on every assigned ID, used by snapshots.
func (ss *ShardedStore) NextID() tuple.ID {
	var max tuple.ID
	for _, sh := range ss.shards {
		if sh.NextID() > max {
			max = sh.NextID()
		}
	}
	return max
}

// ShardNextIDs returns each shard's allocation cursor (the ID its next
// insert will receive), indexed by shard. The per-shard WAL manifest
// records these so recovery can restore every cursor exactly instead of
// rounding all of them up from the global high-water mark.
func (ss *ShardedStore) ShardNextIDs() []tuple.ID {
	out := make([]tuple.ID, len(ss.shards))
	for i, sh := range ss.shards {
		out[i] = sh.NextID()
	}
	return out
}

// Stats aggregates the per-shard counters.
func (ss *ShardedStore) Stats() Stats {
	var out Stats
	for _, sh := range ss.shards {
		st := sh.Stats()
		out.Live += st.Live
		out.Bytes += st.Bytes
		out.Inserted += st.Inserted
		out.Evicted += st.Evicted
		out.SegsTotal += st.SegsTotal
		out.SegsLive += st.SegsLive
		out.SegsDropped += st.SegsDropped
		out.SegsPruned += st.SegsPruned
		out.TuplesSkipped += st.TuplesSkipped
		out.BatchesScanned += st.BatchesScanned
		out.RowsVectorized += st.RowsVectorized
	}
	return out
}

// Get returns a copy of the live tuple with the given id.
func (ss *ShardedStore) Get(id tuple.ID) (tuple.Tuple, error) {
	return ss.shards[ss.ShardOf(id)].Get(id)
}

// Contains reports whether id refers to a live tuple.
func (ss *ShardedStore) Contains(id tuple.ID) bool {
	return ss.shards[ss.ShardOf(id)].Contains(id)
}

// Update applies fn to the live tuple with id in place (freshness and
// infection state only — see Store.Update).
func (ss *ShardedStore) Update(id tuple.ID, fn func(*tuple.Tuple)) error {
	return ss.shards[ss.ShardOf(id)].Update(id, fn)
}

// UpdateAttrs applies fn to the live tuple with id, allowing attribute
// mutation (invalidates the owning segment's zone map).
func (ss *ShardedStore) UpdateAttrs(id tuple.ID, fn func(*tuple.Tuple)) error {
	return ss.shards[ss.ShardOf(id)].UpdateAttrs(id, fn)
}

// Evict tombstones the tuple with id.
func (ss *ShardedStore) Evict(id tuple.ID) error {
	return ss.shards[ss.ShardOf(id)].Evict(id)
}

// cursor walks one shard's live rows in ID order without callbacks, so
// Scan can k-way merge shards. Each cursor decodes into its own scratch
// tuple and remembers the row behind it, so the merge loop can write
// freshness/infection mutations back after every callback.
type cursor struct {
	s    *Store
	seg  int
	slot int
	buf  tuple.Tuple
	cur  *segment // segment of the row buf was decoded from
	curJ int
}

func (c *cursor) next() *tuple.Tuple {
	for c.seg < len(c.s.segs) {
		sg := c.s.segs[c.seg]
		if sg == nil {
			c.seg++
			c.slot = 0
			continue
		}
		for c.slot < sg.rows() {
			j := c.slot
			c.slot++
			if sg.liveAt(j) {
				sg.readRow(j, &c.buf)
				c.cur, c.curJ = sg, j
				return &c.buf
			}
		}
		c.seg++
		c.slot = 0
	}
	return nil
}

// writeBack persists the scan-mutable fields of the current row.
func (c *cursor) writeBack() { c.cur.writeBack(c.curJ, &c.buf) }

// Scan calls fn for every live tuple in global insertion (time) order,
// merging the shards by ID. The pointer passed to fn is valid only
// during the call; fn must not evict or insert, and may mutate only
// freshness and infection state (written back after each call).
// Returning false stops the scan.
func (ss *ShardedStore) Scan(fn func(*tuple.Tuple) bool) {
	if len(ss.shards) == 1 {
		ss.shards[0].Scan(fn)
		return
	}
	cursors := make([]cursor, len(ss.shards))
	heads := make([]*tuple.Tuple, len(ss.shards))
	for i, sh := range ss.shards {
		cursors[i] = cursor{s: sh, seg: sh.first}
		heads[i] = cursors[i].next()
	}
	for {
		best := -1
		for i, h := range heads {
			if h != nil && (best < 0 || h.ID < heads[best].ID) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		ok := fn(heads[best])
		cursors[best].writeBack()
		if !ok {
			return
		}
		heads[best] = cursors[best].next()
	}
}

// ScanShard scans only shard i, in that shard's ID order.
//
//fungusvet:requires shardlock
func (ss *ShardedStore) ScanShard(i int, fn func(*tuple.Tuple) bool) {
	ss.shards[i].Scan(fn)
}

// ScanShardPruned scans only shard i with segment pruning (see
// Store.ScanPruned), reporting what was skipped.
//
//fungusvet:requires shardlock
func (ss *ShardedStore) ScanShardPruned(i int, skip func(*ZoneMap) bool, fn func(*tuple.Tuple) bool) PruneStats {
	return ss.shards[i].ScanPruned(skip, fn)
}

// ScanShardBatches scans only shard i as columnar batches (see
// Store.ScanBatches), reporting what was pruned.
//
//fungusvet:requires shardlock
func (ss *ShardedStore) ScanShardBatches(i int, skip func(*ZoneMap) bool, fn func(*tuple.Batch) bool) PruneStats {
	return ss.shards[i].ScanBatches(skip, fn)
}

// ScanShardAxis scans only shard i in the chosen direction along the ID
// axis (see Store.ScanAxis), reporting what was skipped.
//
//fungusvet:requires shardlock
func (ss *ShardedStore) ScanShardAxis(i int, reverse bool, skip func(*ZoneMap) bool, fn func(*tuple.Tuple) bool) PruneStats {
	return ss.shards[i].ScanAxis(reverse, skip, fn)
}

// ScanIDs appends the IDs of all live tuples to dst in global insertion
// order and returns it.
func (ss *ShardedStore) ScanIDs(dst []tuple.ID) []tuple.ID {
	ss.Scan(func(tp *tuple.Tuple) bool {
		dst = append(dst, tp.ID)
		return true
	})
	return dst
}

// FirstLive returns the smallest live tuple ID across shards.
func (ss *ShardedStore) FirstLive() (tuple.ID, bool) {
	var best tuple.ID
	found := false
	for _, sh := range ss.shards {
		if id, ok := sh.FirstLive(); ok && (!found || id < best) {
			best, found = id, true
		}
	}
	return best, found
}

// LastLive returns the largest live tuple ID across shards.
func (ss *ShardedStore) LastLive() (tuple.ID, bool) {
	var best tuple.ID
	found := false
	for _, sh := range ss.shards {
		if id, ok := sh.LastLive(); ok && (!found || id > best) {
			best, found = id, true
		}
	}
	return best, found
}

// PrevLive returns the nearest live tuple ID strictly before id on the
// global time axis.
func (ss *ShardedStore) PrevLive(id tuple.ID) (tuple.ID, bool) {
	var best tuple.ID
	found := false
	for _, sh := range ss.shards {
		if got, ok := sh.PrevLive(id); ok && (!found || got > best) {
			best, found = got, true
		}
	}
	return best, found
}

// NextLive returns the nearest live tuple ID strictly after id on the
// global time axis.
func (ss *ShardedStore) NextLive(id tuple.ID) (tuple.ID, bool) {
	var best tuple.ID
	found := false
	for _, sh := range ss.shards {
		if got, ok := sh.NextLive(id); ok && (!found || got < best) {
			best, found = got, true
		}
	}
	return best, found
}

// Compact reclaims tombstone space in every shard, returning the total
// number of slots reclaimed.
func (ss *ShardedStore) Compact() int {
	n := 0
	for _, sh := range ss.shards {
		n += sh.Compact()
	}
	return n
}

// Restore appends a tuple during snapshot load, routing by ID residue.
// Global IDs must be strictly increasing across calls (the snapshot is
// written in global scan order), which keeps every shard's sequence
// increasing too.
func (ss *ShardedStore) Restore(tp tuple.Tuple) error {
	return ss.shards[ss.ShardOf(tp.ID)].Restore(tp)
}

// InsertTuple restores a fully formed tuple during WAL replay, routing
// by ID residue.
func (ss *ShardedStore) InsertTuple(tp tuple.Tuple) error {
	return ss.shards[ss.ShardOf(tp.ID)].InsertTuple(tp)
}

// FinishRestore completes recovery on every shard and re-aims the
// round-robin cursor at the shard that is furthest behind, so the
// post-recovery insert rotation continues where the pre-crash one left
// off.
func (ss *ShardedStore) FinishRestore() {
	for _, sh := range ss.shards {
		sh.FinishRestore()
	}
	ss.syncCursor()
}

// AdvanceNextID raises every shard's allocation point to at least id
// (each shard rounds up into its own residue class, so a few IDs may be
// skipped — IDs need not be contiguous, only unique and increasing).
func (ss *ShardedStore) AdvanceNextID(id tuple.ID) {
	for _, sh := range ss.shards {
		sh.AdvanceNextID(id)
	}
	ss.syncCursor()
}

// syncCursor points the round-robin cursor at the shard with the
// smallest next ID (ties to the lowest index): under round-robin
// allocation that is exactly the next shard in rotation.
func (ss *ShardedStore) syncCursor() {
	best := 0
	for i, sh := range ss.shards {
		if sh.NextID() < ss.shards[best].NextID() {
			best = i
		}
	}
	ss.rr.Store(uint64(best))
}
