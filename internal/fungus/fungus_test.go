package fungus

import (
	"math"
	"math/rand"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// newExtent builds a store with n tuples all inserted at the given tick.
func newExtent(t *testing.T, n int, at clock.Tick) *storage.Store {
	t.Helper()
	s := storage.New(tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt}), storage.WithSegmentSize(64))
	for i := 0; i < n; i++ {
		if _, err := s.Insert(at, []tuple.Value{tuple.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestNullNeverRots(t *testing.T) {
	s := newExtent(t, 100, 0)
	var f Null
	for tick := clock.Tick(1); tick < 100; tick++ {
		if rotten := f.Tick(tick, s, rng(), nil); len(rotten) != 0 {
			t.Fatalf("Null rotted %d tuples at %v", len(rotten), tick)
		}
	}
	minF := tuple.Full
	s.Scan(func(tp *tuple.Tuple) bool {
		if tp.F < minF {
			minF = tp.F
		}
		return true
	})
	if minF != tuple.Full {
		t.Errorf("Null decayed freshness to %v", minF)
	}
}

func TestTTLLinearFreshnessAndCliff(t *testing.T) {
	s := newExtent(t, 10, 0)
	f := TTL{Lifetime: 10}

	rotten := f.Tick(5, s, rng(), nil)
	if len(rotten) != 0 {
		t.Fatalf("rotted at half-life: %v", rotten)
	}
	tp, _ := s.Get(0)
	if math.Abs(float64(tp.F)-0.5) > 1e-9 {
		t.Errorf("freshness at age 5 = %v, want 0.5", tp.F)
	}

	rotten = f.Tick(10, s, rng(), nil)
	if len(rotten) != 10 {
		t.Fatalf("at lifetime rotted %d, want all 10", len(rotten))
	}
	tp, _ = s.Get(0)
	if tp.F != 0 {
		t.Errorf("rotten tuple freshness = %v, want 0", tp.F)
	}
}

func TestTTLMixedAges(t *testing.T) {
	s := newExtent(t, 5, 0)
	for i := 0; i < 5; i++ {
		if _, err := s.Insert(8, []tuple.Value{tuple.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	f := TTL{Lifetime: 10}
	rotten := f.Tick(10, s, rng(), nil)
	if len(rotten) != 5 {
		t.Fatalf("rotted %d, want 5 (only the old batch)", len(rotten))
	}
	for _, id := range rotten {
		if id >= 5 {
			t.Errorf("young tuple %d rotted", id)
		}
	}
}

func TestTTLZeroLifetimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TTL{0} did not panic")
		}
	}()
	TTL{}.Tick(1, newExtent(t, 1, 0), rng(), nil)
}

func TestLinearDecaysToRot(t *testing.T) {
	s := newExtent(t, 4, 0)
	f := Linear{Rate: 0.4}
	if rotten := f.Tick(1, s, rng(), nil); len(rotten) != 0 {
		t.Fatal("rotted after one tick")
	}
	if rotten := f.Tick(2, s, rng(), nil); len(rotten) != 0 {
		t.Fatal("rotted after two ticks")
	}
	rotten := f.Tick(3, s, rng(), nil)
	if len(rotten) != 4 {
		t.Fatalf("after 3 ticks rotted %d, want 4", len(rotten))
	}
}

func TestExponentialReachesThreshold(t *testing.T) {
	s := newExtent(t, 1, 0)
	f := Exponential{Factor: 0.5}
	var rotten []tuple.ID
	ticks := 0
	for len(rotten) == 0 && ticks < 64 {
		ticks++
		rotten = f.Tick(clock.Tick(ticks), s, rng(), nil)
	}
	// 0.5^10 ≈ 0.00098 < 1e-3, so rot on the 10th tick.
	if ticks != 10 {
		t.Errorf("rotted after %d ticks, want 10", ticks)
	}
	tp, _ := s.Get(0)
	if tp.F != 0 {
		t.Errorf("rotten freshness = %v", tp.F)
	}
}

func TestHalfLife(t *testing.T) {
	f := HalfLife(7)
	got := math.Pow(f.Factor, 7)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("factor^7 = %v, want 0.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("HalfLife(0) did not panic")
		}
	}()
	HalfLife(0)
}

func TestCompositeMergesWithoutDuplicates(t *testing.T) {
	s := newExtent(t, 3, 0)
	c := Composite{Members: []Fungus{Linear{Rate: 1.0}, Linear{Rate: 1.0}}}
	rotten := c.Tick(1, s, rng(), nil)
	if len(rotten) != 3 {
		t.Fatalf("composite rotted %d, want 3 (no duplicates)", len(rotten))
	}
	if c.Name() != "composite(linear+linear)" {
		t.Errorf("Name() = %q", c.Name())
	}
}

func TestAccessRefreshTouch(t *testing.T) {
	s := newExtent(t, 2, 0)
	inner := NewEGI(EGIConfig{SeedsPerTick: 1, DecayRate: 0.3, AgeBias: 2})
	a := AccessRefresh{Inner: inner}

	// Decay both tuples a bit and infect them via EGI ticks.
	r := rng()
	for i := 1; i <= 2; i++ {
		a.Tick(clock.Tick(i), s, r, nil)
	}
	if inner.InfectedCount() == 0 {
		t.Fatal("EGI infected nothing in two ticks")
	}
	var victim tuple.ID
	s.Scan(func(tp *tuple.Tuple) bool {
		if tp.Infected {
			victim = tp.ID
			return false
		}
		return true
	})
	a.Touch(3, s, victim)
	got, _ := s.Get(victim)
	if got.F != tuple.Full || got.Infected {
		t.Errorf("touched tuple not refreshed: %v", got)
	}
	if inner.infected[victim] {
		t.Error("EGI still tracks touched tuple")
	}
	if a.Name() != "refresh(egi)" {
		t.Errorf("Name() = %q", a.Name())
	}
}

func TestEGISpotGrowsBidirectionally(t *testing.T) {
	s := newExtent(t, 101, 0)
	e := NewEGI(EGIConfig{SeedsPerTick: 0, DecayRate: 0.05}) // no random seeds
	// Plant one deterministic seed in the middle.
	e.Seed(50)

	r := rng()
	e.Tick(1, s, r, nil)
	// After one tick the seed plus both direct neighbours are infected.
	for _, id := range []tuple.ID{49, 50, 51} {
		tp, _ := s.Get(id)
		if !tp.Infected {
			t.Errorf("tuple %d not infected after 1 tick", id)
		}
	}
	tp, _ := s.Get(48)
	if tp.Infected {
		t.Error("infection jumped two tuples in one tick")
	}

	// After k ticks the spot spans [50-k, 50+k].
	for tick := 2; tick <= 5; tick++ {
		e.Tick(clock.Tick(tick), s, r, nil)
	}
	for id := tuple.ID(45); id <= 55; id++ {
		tp, _ := s.Get(id)
		if !tp.Infected {
			t.Errorf("tuple %d not infected after 5 ticks", id)
		}
	}
	tp, _ = s.Get(44)
	if tp.Infected {
		t.Error("spot wider than 5 after 5 ticks")
	}
	tp, _ = s.Get(56)
	if tp.Infected {
		t.Error("spot wider than 5 after 5 ticks (right)")
	}

	// The centre has lost the most freshness; edges the least.
	centre, _ := s.Get(50)
	edge, _ := s.Get(45)
	if centre.F >= edge.F {
		t.Errorf("centre freshness %v >= edge %v", centre.F, edge.F)
	}
}

func TestEGIRotAndEviction(t *testing.T) {
	s := newExtent(t, 20, 0)
	e := NewEGI(EGIConfig{SeedsPerTick: 0, DecayRate: 0.5})
	e.Seed(10)
	r := rng()

	rotten := e.Tick(1, s, r, nil)
	if len(rotten) != 0 {
		t.Fatalf("rotted on first tick: %v", rotten)
	}
	rotten = e.Tick(2, s, r, nil)
	// Tuple 10 hit 0 on tick 2 (2 × 0.5); neighbours 9 and 11 got their
	// second hit too (infected on tick 1 with immediate decay).
	wantRotten := map[tuple.ID]bool{9: true, 10: true, 11: true}
	if len(rotten) != 3 {
		t.Fatalf("tick 2 rotted %v, want 9,10,11", rotten)
	}
	for _, id := range rotten {
		if !wantRotten[id] {
			t.Errorf("unexpected rotten id %d", id)
		}
	}
	// Engine evicts; the fungus keeps eating outward afterwards.
	for _, id := range rotten {
		if err := s.Evict(id); err != nil {
			t.Fatal(err)
		}
	}
	rotten = e.Tick(3, s, r, nil)
	for _, id := range rotten {
		if id != 8 && id != 12 {
			t.Errorf("tick 3 rotted %d, want only 8/12", id)
		}
	}
	if s.Len() != 17 {
		t.Errorf("Len = %d, want 17", s.Len())
	}
}

func TestEGIPrunesConsumedTuples(t *testing.T) {
	s := newExtent(t, 10, 0)
	e := NewEGI(EGIConfig{SeedsPerTick: 0, DecayRate: 0.1})
	e.Seed(5)
	// The tuple is consumed by a query before the next tick.
	if err := s.Evict(5); err != nil {
		t.Fatal(err)
	}
	e.Tick(1, s, rng(), nil)
	if e.infected[5] {
		t.Error("EGI still tracks consumed tuple after tick")
	}
	// Note: the infection died with the tuple — no spread happened.
	count := 0
	s.Scan(func(tp *tuple.Tuple) bool {
		if tp.Infected {
			count++
		}
		return true
	})
	if count != 0 {
		t.Errorf("%d tuples infected after consumed seed", count)
	}
}

func TestEGISeedingIsAgeBiased(t *testing.T) {
	const n = 1000
	s := newExtent(t, n, 0)
	e := NewEGI(EGIConfig{SeedsPerTick: 1, DecayRate: 0, AgeBias: 2})
	r := rng()
	oldHalf, trials := 0, 2000
	for i := 0; i < trials; i++ {
		id, ok := e.pickSeed(s, r)
		if !ok {
			t.Fatal("pickSeed failed")
		}
		if id < n/2 {
			oldHalf++
		}
	}
	// With u^2 bias, P(older half) = sqrt(0.5) ≈ 0.707.
	frac := float64(oldHalf) / float64(trials)
	if frac < 0.65 || frac > 0.77 {
		t.Errorf("old-half seed fraction = %.3f, want ≈ 0.707", frac)
	}
}

func TestEGISeedOnEmptyAndSingleton(t *testing.T) {
	s := newExtent(t, 0, 0)
	e := NewEGI(DefaultEGIConfig())
	if rotten := e.Tick(1, s, rng(), nil); len(rotten) != 0 {
		t.Error("rot on empty extent")
	}
	s2 := newExtent(t, 1, 0)
	e2 := NewEGI(EGIConfig{SeedsPerTick: 1, DecayRate: 0.6})
	r := rng()
	e2.Tick(1, s2, r, nil)
	rotten := e2.Tick(2, s2, r, nil)
	if len(rotten) != 1 || rotten[0] != 0 {
		t.Errorf("singleton rot = %v, want [0]", rotten)
	}
}

func TestEGIDeterministicGivenSeed(t *testing.T) {
	run := func() []tuple.ID {
		s := newExtent(t, 200, 0)
		e := NewEGI(EGIConfig{SeedsPerTick: 2, DecayRate: 0.2})
		r := rand.New(rand.NewSource(7))
		var all []tuple.ID
		for tick := 1; tick <= 20; tick++ {
			rotten := e.Tick(clock.Tick(tick), s, r, nil)
			for _, id := range rotten {
				s.Evict(id)
			}
			all = append(all, rotten...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic rot counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic rot order at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Error("20 ticks of EGI rotted nothing")
	}
}

func TestEGIEatsWholeExtentEventually(t *testing.T) {
	// DESIGN.md E6: "The extent ... decays until it has been completely
	// disappeared" — the first natural law, end to end.
	s := newExtent(t, 300, 0)
	e := NewEGI(EGIConfig{SeedsPerTick: 3, DecayRate: 0.25})
	r := rng()
	for tick := 1; tick <= 5000 && s.Len() > 0; tick++ {
		for _, id := range e.Tick(clock.Tick(tick), s, r, nil) {
			s.Evict(id)
		}
	}
	if s.Len() != 0 {
		t.Errorf("extent not extinct after 5000 ticks: %d live", s.Len())
	}
}

func TestNewEGIDefaultsAndValidation(t *testing.T) {
	e := NewEGI(DefaultEGIConfig())
	if e.seedsPerTick != 1 || e.decayRate != 0.1 || e.ageBias != 2 {
		t.Errorf("defaults = %+v", e)
	}
	if NewEGI(EGIConfig{}).ageBias != 2 {
		t.Error("AgeBias zero should default to 2")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative rate did not panic")
		}
	}()
	NewEGI(EGIConfig{DecayRate: -1})
}

func TestFungusNames(t *testing.T) {
	cases := map[string]Fungus{
		"none":        Null{},
		"ttl":         TTL{Lifetime: 1},
		"linear":      Linear{Rate: 0.1},
		"exponential": Exponential{Factor: 0.9},
		"egi":         NewEGI(DefaultEGIConfig()),
	}
	for want, f := range cases {
		if got := f.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
