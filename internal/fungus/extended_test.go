package fungus

import (
	"errors"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// extSchema: n INT (doubles as per-tuple decay rate in ValueRate tests).
func extStore(t *testing.T, values []int64) *storage.Store {
	t.Helper()
	s := storage.New(
		tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt}),
		storage.WithSegmentSize(32),
	)
	for _, v := range values {
		if _, err := s.Insert(0, []tuple.Value{tuple.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func evens(tp *tuple.Tuple) (bool, error) { return tp.Attrs[0].AsInt()%2 == 0, nil }

func TestTargetedShieldsNonMatching(t *testing.T) {
	s := extStore(t, []int64{0, 1, 2, 3, 4, 5})
	f := Targeted{Inner: Linear{Rate: 0.6}, Only: MatcherFunc(evens)}
	r := rng()

	rotten := f.Tick(1, s, r, nil)
	if len(rotten) != 0 {
		t.Fatalf("rotted on tick 1: %v", rotten)
	}
	s.Scan(func(tp *tuple.Tuple) bool {
		want := tuple.Freshness(1.0)
		if tp.Attrs[0].AsInt()%2 == 0 {
			want = 0.4
		}
		if tp.F != want {
			t.Errorf("tuple %d freshness %v, want %v", tp.ID, tp.F, want)
		}
		return true
	})

	rotten = f.Tick(2, s, r, nil)
	if len(rotten) != 3 {
		t.Fatalf("tick 2 rotted %v, want the 3 even tuples", rotten)
	}
	for _, id := range rotten {
		tp, _ := s.Get(id)
		if tp.Attrs[0].AsInt()%2 != 0 {
			t.Errorf("odd tuple %d rotted", id)
		}
	}
}

func TestTargetedWithEGIShieldForgets(t *testing.T) {
	s := extStore(t, []int64{0, 1, 2, 3, 4, 5, 6, 7})
	egi := NewEGI(EGIConfig{SeedsPerTick: 2, DecayRate: 0.9, AgeBias: 1})
	f := Targeted{Inner: egi, Only: MatcherFunc(evens)}
	r := rng()
	for tick := 1; tick <= 10; tick++ {
		rotten := f.Tick(clock.Tick(tick), s, r, nil)
		for _, id := range rotten {
			tp, _ := s.Get(id)
			if tp.Attrs[0].AsInt()%2 != 0 {
				t.Fatalf("shielded odd tuple %d rotted", id)
			}
			s.Evict(id)
		}
	}
	// All odd tuples survive at full freshness.
	count := 0
	s.Scan(func(tp *tuple.Tuple) bool {
		if tp.Attrs[0].AsInt()%2 != 0 {
			count++
			if tp.F != tuple.Full {
				t.Errorf("odd tuple %d decayed to %v", tp.ID, tp.F)
			}
		}
		return true
	})
	if count != 4 {
		t.Errorf("odd survivors = %d, want 4", count)
	}
}

func TestTargetedMatcherErrorFailsClosed(t *testing.T) {
	s := extStore(t, []int64{1, 2, 3})
	f := Targeted{
		Inner: Linear{Rate: 1.0},
		Only:  MatcherFunc(func(*tuple.Tuple) (bool, error) { return false, errors.New("boom") }),
	}
	rotten := f.Tick(1, s, rng(), nil)
	if len(rotten) != 0 {
		t.Errorf("broken matcher rotted %v", rotten)
	}
	tp, _ := s.Get(0)
	if tp.F != tuple.Full {
		t.Errorf("broken matcher decayed to %v", tp.F)
	}
}

func TestValueRatePerTupleDecay(t *testing.T) {
	// Rates: tuple 0 decays 0.5/tick, tuple 1 decays 0.1/tick, tuple 2
	// has no valid rate and never decays.
	s := extStore(t, []int64{5, 1, -3})
	f := ValueRate{Column: 0, Scale: 0.1}
	r := rng()

	rotten := f.Tick(1, s, r, nil)
	if len(rotten) != 0 {
		t.Fatalf("tick 1 rotted %v", rotten)
	}
	tp0, _ := s.Get(0)
	tp1, _ := s.Get(1)
	tp2, _ := s.Get(2)
	if tp0.F != 0.5 || tp1.F != 0.9 || tp2.F != 1.0 {
		t.Errorf("freshness = %v, %v, %v", tp0.F, tp1.F, tp2.F)
	}
	rotten = f.Tick(2, s, r, nil)
	if len(rotten) != 1 || rotten[0] != 0 {
		t.Errorf("tick 2 rotted %v, want [0]", rotten)
	}
}

func TestValueRateBadColumnIgnored(t *testing.T) {
	s := extStore(t, []int64{1})
	f := ValueRate{Column: 9, Scale: 1}
	if rotten := f.Tick(1, s, rng(), nil); len(rotten) != 0 {
		t.Error("out-of-range column decayed something")
	}
}

func TestQuotaRotsOldestSurplus(t *testing.T) {
	s := extStore(t, []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f := Quota{MaxTuples: 6}
	rotten := f.Tick(1, s, rng(), nil)
	if len(rotten) != 4 {
		t.Fatalf("rotted %d, want 4", len(rotten))
	}
	for i, id := range rotten {
		if id != tuple.ID(i) {
			t.Errorf("rotted %v, want the oldest 0..3", rotten)
			break
		}
	}
	for _, id := range rotten {
		s.Evict(id)
	}
	// Under quota: nothing further rots.
	if rotten := f.Tick(2, s, rng(), nil); len(rotten) != 0 {
		t.Errorf("under-quota tick rotted %v", rotten)
	}
}

func TestQuotaPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quota{}.Tick(1, extStore(t, []int64{1}), rng(), nil)
}

func TestSeasonalDutyCycle(t *testing.T) {
	s := extStore(t, []int64{1, 2})
	f := Seasonal{Inner: Linear{Rate: 0.1}, Period: 4, Active: 1}
	r := rng()
	// Over 8 ticks (ticks 0..7), only ticks 0 and 4 decay.
	for tick := clock.Tick(0); tick < 8; tick++ {
		f.Tick(tick, s, r, nil)
	}
	tp, _ := s.Get(0)
	if tp.F != 0.8 {
		t.Errorf("freshness = %v, want 0.8 (2 active ticks)", tp.F)
	}
	if f.Name() != "seasonal(linear,1/4)" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestSeasonalPanicsOnZeroPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Seasonal{Inner: Null{}}.Tick(1, extStore(t, []int64{1}), rng(), nil)
}

func TestStaggeredMatchesLinearLongRun(t *testing.T) {
	sA := extStore(t, make([]int64, 40))
	sB := extStore(t, make([]int64, 40))
	linear := Linear{Rate: 0.05}
	staggered := Staggered{Rate: 0.05, Phases: 4}
	r := rng()
	// After any multiple of Phases ticks the two extents agree exactly.
	for tick := clock.Tick(0); tick < 12; tick++ {
		linear.Tick(tick, sA, r, nil)
		staggered.Tick(tick, sB, r, nil)
	}
	sA.Scan(func(tpA *tuple.Tuple) bool {
		tpB, err := sB.Get(tpA.ID)
		if err != nil {
			t.Errorf("tuple %d missing in staggered extent", tpA.ID)
			return true
		}
		if d := float64(tpA.F - tpB.F); d > 1e-9 || d < -1e-9 {
			t.Errorf("tuple %d: linear %v vs staggered %v", tpA.ID, tpA.F, tpB.F)
		}
		return true
	})
}

func TestStaggeredVisitsEachTupleOncePerCycle(t *testing.T) {
	s := extStore(t, make([]int64, 8))
	f := Staggered{Rate: 0.1, Phases: 4}
	r := rng()
	f.Tick(0, s, r, nil) // phase 0 touches IDs 0 and 4
	touched := 0
	s.Scan(func(tp *tuple.Tuple) bool {
		if tp.F < 1 {
			touched++
			if uint64(tp.ID)%4 != 0 {
				t.Errorf("tuple %d touched in phase 0", tp.ID)
			}
		}
		return true
	})
	if touched != 2 {
		t.Errorf("touched %d tuples, want 2", touched)
	}
}

func TestStaggeredPanicsOnZeroPhases(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Staggered{Rate: 0.1}.Tick(1, extStore(t, []int64{1}), rng(), nil)
}

func TestExtendedFungusNames(t *testing.T) {
	cases := map[string]Fungus{
		"targeted(linear)": Targeted{Inner: Linear{Rate: 0.1}, Only: MatcherFunc(evens)},
		"valuerate(col=0)": ValueRate{Column: 0},
		"quota(10)":        Quota{MaxTuples: 10},
		"staggered(4)":     Staggered{Rate: 0.1, Phases: 4},
	}
	for want, f := range cases {
		if got := f.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
	if len(Names()) == 0 {
		t.Error("Names() empty")
	}
}
