package fungus

import (
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// scanOnly hides the store's ScanSystem method so a fungus falls back to
// the row-at-a-time Scan path, letting the tests below compare the two.
type scanOnly struct{ Extent }

// freshnessMap snapshots every live tuple's freshness keyed by ID.
func freshnessMap(s *storage.Store) map[tuple.ID]tuple.Freshness {
	m := make(map[tuple.ID]tuple.Freshness, s.Len())
	s.Scan(func(tp *tuple.Tuple) bool {
		m[tp.ID] = tp.F
		return true
	})
	return m
}

// parityExtents builds two identical stores with small segments, staggered
// insertion ticks, and eviction holes, so the batch path has to cope with
// multiple segments and partial liveness bitmaps.
func parityExtents(t *testing.T) (*storage.Store, *storage.Store) {
	t.Helper()
	schema := tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt})
	a := storage.New(schema, storage.WithSegmentSize(8))
	b := storage.New(schema, storage.WithSegmentSize(8))
	for i := 0; i < 90; i++ {
		at := clock.Tick(i / 10) // ten insertion cohorts for TTL ages
		attrs := []tuple.Value{tuple.Int(int64(i))}
		ta, err := a.Insert(at, attrs)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.Insert(at, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if ta.ID != tb.ID {
			t.Fatalf("stores diverged: ids %v vs %v", ta.ID, tb.ID)
		}
		if i%7 == 3 { // punch holes in the liveness bitmaps
			if err := a.Evict(ta.ID); err != nil {
				t.Fatal(err)
			}
			if err := b.Evict(tb.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a, b
}

// TestSystemScanTickParity proves the columnar tick fast path is
// observationally identical to the row-at-a-time Scan fallback for every
// law that takes it: same rotten IDs in the same order, same freshness
// for every surviving tuple, across several consecutive ticks.
func TestSystemScanTickParity(t *testing.T) {
	laws := []struct {
		name string
		f    Fungus
	}{
		{"linear", Linear{Rate: 0.21}},
		{"ttl", TTL{Lifetime: 11}},
		{"exponential", Exponential{Factor: 0.2}},
	}
	for _, law := range laws {
		t.Run(law.name, func(t *testing.T) {
			fast, slow := parityExtents(t)
			if _, ok := Extent(fast).(systemScanner); !ok {
				t.Fatal("*storage.Store no longer offers ScanSystem")
			}
			if _, ok := Extent(scanOnly{slow}).(systemScanner); ok {
				t.Fatal("scanOnly wrapper failed to hide ScanSystem")
			}
			for now := clock.Tick(10); now < 16; now++ {
				rotFast := law.f.Tick(now, fast, rng(), nil)
				rotSlow := law.f.Tick(now, scanOnly{slow}, rng(), nil)
				if len(rotFast) != len(rotSlow) {
					t.Fatalf("tick %d: rotten count %d (batch) != %d (scan)",
						now, len(rotFast), len(rotSlow))
				}
				for i := range rotFast {
					if rotFast[i] != rotSlow[i] {
						t.Fatalf("tick %d: rotten[%d] = %v (batch) != %v (scan)",
							now, i, rotFast[i], rotSlow[i])
					}
				}
				fa, fb := freshnessMap(fast), freshnessMap(slow)
				if len(fa) != len(fb) {
					t.Fatalf("tick %d: live count %d != %d", now, len(fa), len(fb))
				}
				for id, f := range fa {
					if fb[id] != f {
						t.Fatalf("tick %d: id %v freshness %v (batch) != %v (scan)",
							now, id, f, fb[id])
					}
				}
				// Evict what rotted so later ticks exercise shrinking bitmaps.
				for _, id := range rotFast {
					if err := fast.Evict(id); err != nil {
						t.Fatal(err)
					}
				}
				for _, id := range rotSlow {
					if err := slow.Evict(id); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}
