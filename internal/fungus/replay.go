package fungus

// Replayable reports whether f's decay is a pure function of the extent
// and the clock — no RNG draws, no state carried between ticks, no
// query-driven freshness writes. A replication follower may re-execute
// logged tick records through a replayable fungus and reproduce the
// leader's freshness trajectory exactly, whether it joined from the
// full log history or re-based from a snapshot mid-stream (every
// built-in replayable law derives each tick's decay from the current
// freshness values, which snapshots carry exactly).
//
// Non-replayable laws — EGI (RNG draws plus an infection front that a
// mid-stream join cannot reconstruct) and AccessRefresh (freshness
// restored by unlogged query touches) — still replicate correctly for
// membership: the leader's logged evict records carry every rot
// decision. Only the follower's freshness/infection bytes are then
// approximate, so the byte-identical convergence guarantee is scoped to
// replayable laws. See docs/REPLICATION.md.
func Replayable(f Fungus) bool {
	switch v := f.(type) {
	case Null, TTL, Linear, Exponential, ValueRate, Quota, Staggered:
		return true
	case Targeted:
		return Replayable(v.Inner)
	case Seasonal:
		return Replayable(v.Inner)
	case Composite:
		for _, m := range v.Members {
			if !Replayable(m) {
				return false
			}
		}
		return true
	default:
		// EGI, AccessRefresh, and any unknown law: assume stateful.
		return false
	}
}
