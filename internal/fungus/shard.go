package fungus

// Sharded extents run one fungus instance per shard, each against that
// shard's slice of the insertion-time axis. Boundary semantics:
//
//   - Stateless whole-extent fungi (TTL, Linear, Exponential, Staggered,
//     ValueRate, Null) behave identically sharded or not — every tuple
//     is visited exactly once per decay cycle regardless of which shard
//     holds it.
//   - EGI infection fronts are scoped to their shard: neighbour
//     infection follows PrevLive/NextLive of the shard extent, i.e. the
//     nearest live tuple in the same residue class. With round-robin
//     insertion a shard's neighbours are ~N global positions apart, so a
//     rot spot of width w on the global axis corresponds to width w/N on
//     each shard; spots still grow bi-directionally and still remove
//     complete insertion ranges, they just grow on N fronts at once.
//     Seeding draws from the shard's own deterministic RNG and is gated
//     round-robin on the instance's own run counter (shard i seeds on
//     its i-th-of-every-N fungus runs — deliberately NOT on the clock
//     value, which would alias with a table-level TickEvery period), so
//     the whole-table seeding rate equals the unsharded law's.
//   - Quota is divided: each shard enforces ceil(MaxTuples/N), keeping
//     the table-level bound within N-1 tuples of the unsharded law.
//   - Decorators (AccessRefresh, Seasonal, Targeted, Composite) shard by
//     recursing into their inner fungi.
//
// ForShard builds the per-shard instance; custom stateful fungi opt in
// by implementing Cloner, otherwise the same instance is shared across
// shards and must tolerate concurrent Ticks over disjoint extents.

// Cloner is implemented by stateful fungi that can produce a fresh
// instance of themselves (same parameters, empty state) for one shard
// of a sharded table.
type Cloner interface {
	CloneFresh() Fungus
}

// CloneFresh implements Cloner: a new EGI with the same configuration
// and an empty infection front.
func (e *EGI) CloneFresh() Fungus {
	return NewEGI(EGIConfig{SeedsPerTick: e.seedsPerTick, DecayRate: e.decayRate, AgeBias: e.ageBias})
}

// ForShard returns the fungus instance shard `shard` of `shards` should
// run. Shard 0 keeps the original instance (so a one-shard table is
// exactly the unsharded engine); higher shards get fresh clones of
// stateful fungi and rescaled quotas, with decorators rebuilt around
// their sharded inners.
func ForShard(f Fungus, shard, shards int) Fungus {
	if f == nil {
		return Null{}
	}
	if shards <= 1 {
		if e, ok := f.(*EGI); ok {
			if e.claimed {
				// Already powering another table: clone rather than
				// share (tables tick in parallel; a shared infection
				// map would race) or re-gate the original.
				return e.CloneFresh()
			}
			e.claimed = true
			// Clear any seeding gate a previous sharded ForShard left
			// on the instance: unsharded tables seed every run.
			e.seedPeriod, e.seedPhase = 0, 0
		}
		return f
	}
	switch v := f.(type) {
	case *EGI:
		if shard == 0 && !v.claimed {
			// Shard 0 keeps the original instance (so handles the caller
			// retained — Seed, InfectedCount — stay live), gated onto its
			// phase of the seeding rotation.
			v.claimed = true
			v.seedPeriod, v.seedPhase = uint64(shards), 0
			return v
		}
		clone := v.CloneFresh().(*EGI)
		clone.seedPeriod, clone.seedPhase = uint64(shards), uint64(shard)
		return clone
	case Quota:
		return Quota{MaxTuples: (v.MaxTuples + shards - 1) / shards}
	case Composite:
		members := make([]Fungus, len(v.Members))
		for i, m := range v.Members {
			members[i] = ForShard(m, shard, shards)
		}
		return Composite{Members: members}
	case AccessRefresh:
		return AccessRefresh{Inner: ForShard(v.Inner, shard, shards)}
	case Seasonal:
		return Seasonal{Inner: ForShard(v.Inner, shard, shards), Period: v.Period, Active: v.Active}
	case Targeted:
		return Targeted{Inner: ForShard(v.Inner, shard, shards), Only: v.Only}
	}
	if shard == 0 {
		return f
	}
	if c, ok := f.(Cloner); ok {
		return c.CloneFresh()
	}
	return f
}
