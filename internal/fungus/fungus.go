// Package fungus implements the paper's first natural law: "the extent
// of table R decays with a periodic clock of T seconds using a data
// fungus F until it has been completely disappeared".
//
// A Fungus is a pluggable decay strategy applied once per clock tick.
// Fungi mutate tuple freshness in place through the Extent interface and
// report which tuples rotted (freshness reached zero) so the engine can
// distill them into summaries "for later consumption, or inspect them
// once before removal" (paper §3) before the extent drops them.
//
// The package ships the operators the paper names or implies:
//
//   - Null: no decay (the baseline "fridge").
//   - TTL: the "old-fashioned decay function ... retention times".
//   - Linear, Exponential, HalfLife: smooth whole-extent freshness loss.
//   - EGI (Evict Grouped Individuals): the paper's concrete fungus —
//     age-biased seeding plus bi-directional neighbour infection,
//     producing growing rot spots (the "Blue Cheese" effect).
//   - AccessRefresh: a decorator giving queried tuples their freshness
//     back, modelling "data being taken care of by its owner".
//   - Composite: several fungi applied in sequence.
//
// All fungi are deterministic given the *rand.Rand passed to Tick.
package fungus

import (
	"math"
	"math/bits"
	"math/rand"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

// Extent is the view of a relation a fungus may touch. *storage.Store
// implements it. Fungi must not insert; eviction of rotten tuples is the
// engine's job so it can distill first. Update (and in-place Scan
// mutation) may touch freshness and infection state only — attribute
// values are summarised by the storage layer's zone maps, which this
// interface deliberately gives no way to outdate.
type Extent interface {
	Len() int
	Get(id tuple.ID) (tuple.Tuple, error)
	Update(id tuple.ID, fn func(*tuple.Tuple)) error
	Scan(fn func(*tuple.Tuple) bool)
	PrevLive(id tuple.ID) (tuple.ID, bool)
	NextLive(id tuple.ID) (tuple.ID, bool)
	FirstLive() (tuple.ID, bool)
	LastLive() (tuple.ID, bool)
}

// Fungus is one decay strategy. Implementations may keep per-extent
// state (EGI tracks its infection front) and are not safe for concurrent
// use; the engine serialises Tick with all other table operations.
type Fungus interface {
	// Name identifies the fungus in reports and benchmarks.
	Name() string
	// Tick applies one decay cycle at logical time now and appends the
	// IDs of tuples whose freshness reached zero to rotten, returning
	// the extended slice. Rotten tuples are left in the extent (with
	// freshness clamped to 0) for the engine to distill and evict.
	Tick(now clock.Tick, ext Extent, rng *rand.Rand, rotten []tuple.ID) []tuple.ID
}

// systemScanner is the columnar tick fast path *storage.Store offers
// (matched structurally to avoid importing storage here). It exposes
// each segment's raw system columns — row IDs, insertion ticks,
// freshness, and the liveness bitmap — so decay laws that never read
// attribute values can tick by mutating the freshness slice in place
// instead of materialising every tuple. Laws that consult attributes
// (e.g. ValueRate) must keep using Scan.
type systemScanner interface {
	ScanSystem(fn func(ids []tuple.ID, ts []int64, fs []float64, live []uint64) bool)
}

// eachLive walks the set bits of a segment liveness bitmap, calling fn
// with each live row index.
func eachLive(live []uint64, fn func(j int)) {
	for w, m := range live {
		base := w << 6
		for m != 0 {
			fn(base + bits.TrailingZeros64(m))
			m &= m - 1
		}
	}
}

// Refresher is implemented by fungi that restore freshness when a tuple
// is accessed. The engine calls Touch for every tuple a query returns
// when the table is configured with touch-on-read.
type Refresher interface {
	Touch(now clock.Tick, ext Extent, id tuple.ID)
}

// Null never decays anything: the unbounded "fridge" baseline from the
// paper's motivation.
type Null struct{}

// Name implements Fungus.
func (Null) Name() string { return "none" }

// Tick implements Fungus; it does nothing.
func (Null) Tick(_ clock.Tick, _ Extent, _ *rand.Rand, rotten []tuple.ID) []tuple.ID {
	return rotten
}

// TTL is the retention-time fungus: a tuple's freshness falls linearly
// with age and hits zero exactly at Lifetime ticks after insertion, at
// which point it rots. This is the paper's "old-fashioned decay
// function F ... consider retention times, where after the data will be
// discarded".
type TTL struct {
	Lifetime uint64 // ticks a tuple lives; must be positive
}

// Name implements Fungus.
func (f TTL) Name() string { return "ttl" }

// Tick implements Fungus.
func (f TTL) Tick(now clock.Tick, ext Extent, _ *rand.Rand, rotten []tuple.ID) []tuple.ID {
	if f.Lifetime == 0 {
		panic("fungus: TTL lifetime must be positive")
	}
	if ss, ok := ext.(systemScanner); ok {
		ss.ScanSystem(func(ids []tuple.ID, ts []int64, fs []float64, live []uint64) bool {
			eachLive(live, func(j int) {
				age := uint64(now - clock.Tick(ts[j]))
				if age >= f.Lifetime {
					fs[j] = 0
					rotten = append(rotten, ids[j])
					return
				}
				fs[j] = 1 - float64(age)/float64(f.Lifetime)
			})
			return true
		})
		return rotten
	}
	// The scan only mutates the tuple in place (no evictions), which
	// Extent.Scan permits.
	ext.Scan(func(tp *tuple.Tuple) bool {
		age := uint64(now - tp.T)
		if age >= f.Lifetime {
			tp.F = 0
			rotten = append(rotten, tp.ID)
			return true
		}
		tp.F = tuple.Freshness(1 - float64(age)/float64(f.Lifetime))
		return true
	})
	return rotten
}

// Linear subtracts Rate freshness from every tuple each tick.
type Linear struct {
	Rate float64 // freshness lost per tick, in (0, 1]
}

// Name implements Fungus.
func (f Linear) Name() string { return "linear" }

// Tick implements Fungus.
func (f Linear) Tick(_ clock.Tick, ext Extent, _ *rand.Rand, rotten []tuple.ID) []tuple.ID {
	if ss, ok := ext.(systemScanner); ok {
		rate := tuple.Freshness(f.Rate)
		ss.ScanSystem(func(ids []tuple.ID, _ []int64, fs []float64, live []uint64) bool {
			eachLive(live, func(j int) {
				nf := (tuple.Freshness(fs[j]) - rate).Clamp()
				fs[j] = float64(nf)
				if nf.Rotten() {
					rotten = append(rotten, ids[j])
				}
			})
			return true
		})
		return rotten
	}
	ext.Scan(func(tp *tuple.Tuple) bool {
		tp.F = (tp.F - tuple.Freshness(f.Rate)).Clamp()
		if tp.F.Rotten() {
			rotten = append(rotten, tp.ID)
		}
		return true
	})
	return rotten
}

// rotThreshold is the freshness below which multiplicative fungi declare
// a tuple rotten; a pure exponential never reaches zero.
const rotThreshold = 1e-3

// Exponential multiplies every tuple's freshness by Factor each tick.
// Freshness below a small threshold counts as rotten.
type Exponential struct {
	Factor float64 // per-tick survival factor, in (0, 1)
}

// Name implements Fungus.
func (f Exponential) Name() string { return "exponential" }

// Tick implements Fungus.
func (f Exponential) Tick(_ clock.Tick, ext Extent, _ *rand.Rand, rotten []tuple.ID) []tuple.ID {
	if ss, ok := ext.(systemScanner); ok {
		ss.ScanSystem(func(ids []tuple.ID, _ []int64, fs []float64, live []uint64) bool {
			eachLive(live, func(j int) {
				fs[j] *= f.Factor
				if fs[j] < rotThreshold {
					fs[j] = 0
					rotten = append(rotten, ids[j])
				}
			})
			return true
		})
		return rotten
	}
	ext.Scan(func(tp *tuple.Tuple) bool {
		tp.F = tuple.Freshness(float64(tp.F) * f.Factor)
		if float64(tp.F) < rotThreshold {
			tp.F = 0
			rotten = append(rotten, tp.ID)
		}
		return true
	})
	return rotten
}

// HalfLife is an Exponential parameterised by the number of ticks after
// which freshness halves.
func HalfLife(ticks float64) Exponential {
	if ticks <= 0 {
		panic("fungus: half-life must be positive")
	}
	// factor^ticks = 1/2  =>  factor = 2^(-1/ticks)
	return Exponential{Factor: math.Pow(2, -1/ticks)}
}

// Composite applies each member fungus in order every tick. A tuple
// rotted by an earlier member is still visible (freshness 0) to later
// members, but is reported only once.
type Composite struct {
	Members []Fungus
}

// Name implements Fungus.
func (c Composite) Name() string {
	name := "composite("
	for i, m := range c.Members {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + ")"
}

// Tick implements Fungus. The dedup set is allocated only once a member
// actually rots something — the common all-fresh tick allocates nothing.
func (c Composite) Tick(now clock.Tick, ext Extent, rng *rand.Rand, rotten []tuple.ID) []tuple.ID {
	var seen map[tuple.ID]bool
	ensureSeen := func() {
		if seen == nil {
			seen = make(map[tuple.ID]bool, len(rotten))
			for _, id := range rotten {
				seen[id] = true
			}
		}
	}
	if len(rotten) > 0 {
		ensureSeen()
	}
	var local []tuple.ID
	for _, m := range c.Members {
		local = m.Tick(now, ext, rng, local[:0])
		if len(local) == 0 {
			continue
		}
		ensureSeen()
		for _, id := range local {
			if !seen[id] {
				seen[id] = true
				rotten = append(rotten, id)
			}
		}
	}
	return rotten
}

// Touch implements Refresher by delegating to every member that
// supports it.
func (c Composite) Touch(now clock.Tick, ext Extent, id tuple.ID) {
	for _, m := range c.Members {
		if r, ok := m.(Refresher); ok {
			r.Touch(now, ext, id)
		}
	}
}

// AccessRefresh decorates another fungus: tuples touched by queries get
// their freshness restored to full and any infection cleared. It models
// the paper's remark that rot removes ranges "when not being taken care
// of by its owner" — owners who read their data keep it alive.
type AccessRefresh struct {
	Inner Fungus
}

// Name implements Fungus.
func (a AccessRefresh) Name() string { return "refresh(" + a.Inner.Name() + ")" }

// Tick implements Fungus by delegating to the inner fungus.
func (a AccessRefresh) Tick(now clock.Tick, ext Extent, rng *rand.Rand, rotten []tuple.ID) []tuple.ID {
	return a.Inner.Tick(now, ext, rng, rotten)
}

// Touch implements Refresher: full freshness, infection cleared, and the
// inner fungus forgets the tuple if it tracks infection state.
func (a AccessRefresh) Touch(now clock.Tick, ext Extent, id tuple.ID) {
	_ = ext.Update(id, func(tp *tuple.Tuple) {
		tp.F = tuple.Full
		tp.Infected = false
	})
	if egi, ok := a.Inner.(*EGI); ok {
		egi.Forget(id)
	}
	if r, ok := a.Inner.(Refresher); ok {
		r.Touch(now, ext, id)
	}
}
