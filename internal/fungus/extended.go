package fungus

import (
	"fmt"
	"math/rand"
	"sort"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

// This file implements the paper's §2 remark that "many more data fungi
// can be considered, based on their rate of decay, what to decay, how
// to decay":
//
//   - Targeted decays only tuples selected by a predicate (what).
//   - ValueRate reads each tuple's decay rate off one of its own
//     attributes (rate, per tuple).
//   - Quota rots the oldest tuples whenever the extent exceeds a bound
//     (how: pressure-driven instead of clock-driven).
//   - Seasonal gates another fungus onto a duty cycle (when).

// Matcher selects tuples. It is the fungus-side twin of query
// predicates; query.Predicate.Match satisfies it via a tiny adapter in
// the engine, and tests can use plain functions.
type Matcher interface {
	Match(tp *tuple.Tuple) (bool, error)
}

// MatcherFunc adapts a function to the Matcher interface.
type MatcherFunc func(tp *tuple.Tuple) (bool, error)

// Match implements Matcher.
func (f MatcherFunc) Match(tp *tuple.Tuple) (bool, error) { return f(tp) }

// Targeted applies an inner fungus only to tuples the matcher selects:
// the "what to decay" axis. Non-matching tuples are completely shielded
// — their freshness is restored after the inner tick, so even
// whole-extent fungi like Linear become scoped.
type Targeted struct {
	Inner Fungus
	Only  Matcher
}

// Name implements Fungus.
func (t Targeted) Name() string { return "targeted(" + t.Inner.Name() + ")" }

// Tick implements Fungus.
func (t Targeted) Tick(now clock.Tick, ext Extent, rng *rand.Rand, rotten []tuple.ID) []tuple.ID {
	// Snapshot the freshness of shielded tuples.
	type saved struct {
		id       tuple.ID
		f        tuple.Freshness
		infected bool
	}
	var shield []saved
	var matchErr error
	ext.Scan(func(tp *tuple.Tuple) bool {
		ok, err := t.Only.Match(tp)
		if err != nil {
			matchErr = err
			return false
		}
		if !ok {
			shield = append(shield, saved{tp.ID, tp.F, tp.Infected})
		}
		return true
	})
	if matchErr != nil {
		// A broken matcher must not silently decay everything; fail
		// closed by decaying nothing this tick.
		return rotten
	}
	before := len(rotten)
	rotten = t.Inner.Tick(now, ext, rng, rotten)
	// Restore the shielded tuples and drop them from the rot report.
	shielded := make(map[tuple.ID]bool, len(shield))
	for _, s := range shield {
		shielded[s.id] = true
		_ = ext.Update(s.id, func(tp *tuple.Tuple) {
			tp.F = s.f
			tp.Infected = s.infected
		})
	}
	kept := rotten[:before]
	for _, id := range rotten[before:] {
		if !shielded[id] {
			kept = append(kept, id)
		} else if egi, ok := t.Inner.(*EGI); ok {
			egi.Forget(id)
		}
	}
	return kept
}

// ValueRate decays every tuple by a rate read from one of its own
// numeric attributes (scaled by Scale): data declares its own
// perishability. Columns outside [0, ∞) clamp to 0.
type ValueRate struct {
	Column int     // attribute index holding the rate
	Scale  float64 // multiplier applied to the column value
}

// Name implements Fungus.
func (v ValueRate) Name() string { return fmt.Sprintf("valuerate(col=%d)", v.Column) }

// Tick implements Fungus.
func (v ValueRate) Tick(_ clock.Tick, ext Extent, _ *rand.Rand, rotten []tuple.ID) []tuple.ID {
	ext.Scan(func(tp *tuple.Tuple) bool {
		if v.Column < 0 || v.Column >= len(tp.Attrs) {
			return true
		}
		rate, ok := tp.Attrs[v.Column].Numeric()
		if !ok || rate < 0 {
			return true
		}
		tp.F = (tp.F - tuple.Freshness(rate*v.Scale)).Clamp()
		if tp.F.Rotten() {
			rotten = append(rotten, tp.ID)
		}
		return true
	})
	return rotten
}

// Quota bounds the extent: whenever Len exceeds MaxTuples, the oldest
// surplus tuples rot immediately. It is "how to decay" driven by
// storage pressure rather than age — the fridge with a hard shelf.
type Quota struct {
	MaxTuples int
}

// Name implements Fungus.
func (q Quota) Name() string { return fmt.Sprintf("quota(%d)", q.MaxTuples) }

// Tick implements Fungus.
func (q Quota) Tick(_ clock.Tick, ext Extent, _ *rand.Rand, rotten []tuple.ID) []tuple.ID {
	if q.MaxTuples <= 0 {
		panic("fungus: quota must be positive")
	}
	surplus := ext.Len() - q.MaxTuples
	if surplus <= 0 {
		return rotten
	}
	id, ok := ext.FirstLive()
	for ; ok && surplus > 0; surplus-- {
		_ = ext.Update(id, func(tp *tuple.Tuple) { tp.F = 0 })
		rotten = append(rotten, id)
		id, ok = ext.NextLive(id)
	}
	return rotten
}

// Seasonal gates an inner fungus onto a duty cycle: it runs for Active
// ticks out of every Period. Decay that happens "at night" — or rot
// that pauses during the harvest — without changing the inner law.
type Seasonal struct {
	Inner  Fungus
	Period uint64 // full cycle length in ticks; must be positive
	Active uint64 // leading ticks of each cycle during which Inner runs
}

// Name implements Fungus.
func (s Seasonal) Name() string {
	return fmt.Sprintf("seasonal(%s,%d/%d)", s.Inner.Name(), s.Active, s.Period)
}

// Tick implements Fungus.
func (s Seasonal) Tick(now clock.Tick, ext Extent, rng *rand.Rand, rotten []tuple.ID) []tuple.ID {
	if s.Period == 0 {
		panic("fungus: seasonal period must be positive")
	}
	if uint64(now)%s.Period >= s.Active {
		return rotten
	}
	return s.Inner.Tick(now, ext, rng, rotten)
}

// Touch implements Refresher by delegating when the inner fungus
// supports it.
func (s Seasonal) Touch(now clock.Tick, ext Extent, id tuple.ID) {
	if r, ok := s.Inner.(Refresher); ok {
		r.Touch(now, ext, id)
	}
}

// Staggered splits the extent into Phases groups by ID and decays one
// group per tick round-robin, spreading whole-extent scan cost across
// the clock — the amortised variant of Linear for very large extents.
type Staggered struct {
	Rate   float64
	Phases uint64
}

// Name implements Fungus.
func (s Staggered) Name() string { return fmt.Sprintf("staggered(%d)", s.Phases) }

// Tick implements Fungus. Each tuple is visited once every Phases
// ticks and loses Rate*Phases freshness then, so the long-run decay
// rate matches Linear{Rate} while per-tick work drops by Phases.
func (s Staggered) Tick(now clock.Tick, ext Extent, _ *rand.Rand, rotten []tuple.ID) []tuple.ID {
	if s.Phases == 0 {
		panic("fungus: staggered phases must be positive")
	}
	phase := uint64(now) % s.Phases
	step := tuple.Freshness(s.Rate * float64(s.Phases))
	ext.Scan(func(tp *tuple.Tuple) bool {
		if uint64(tp.ID)%s.Phases != phase {
			return true
		}
		tp.F = (tp.F - step).Clamp()
		if tp.F.Rotten() {
			rotten = append(rotten, tp.ID)
		}
		return true
	})
	return rotten
}

// Names returns the registry of built-in fungus constructors for CLI
// and catalog use, keyed by Name() prefix, sorted.
func Names() []string {
	names := []string{"none", "ttl", "linear", "exponential", "egi", "quota", "staggered"}
	sort.Strings(names)
	return names
}
