package fungus

import (
	"math"
	"math/rand"
	"sort"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

// EGI implements the paper's "Evict Grouped Individuals" fungus. Quoting
// §2, at each clock cycle T:
//
//	"- select an element from R inversely randomly correlated with its
//	   age and seed it with the fungi F, decreasing its freshness.
//	 - select all F infected elements and decrease their freshness, also
//	   affecting the direct neighboring tuples at equal rate."
//
// Infection therefore spreads bi-directionally along the insertion-time
// axis, producing growing rot spots ("Blue Cheese"). When an infected
// tuple's freshness reaches zero it rots; because its neighbours were
// infected first, the spot keeps growing and eventually removes a
// complete insertion range.
//
// The paper's seeding sentence is ambiguous: "inversely randomly
// correlated with its age" reads literally as young-biased, but every
// other sentence (retention analogy, removing old insertion ranges,
// "remains edible for a long time") requires rot to start in OLD data.
// We resolve it with an AgeBias exponent: the seed position is drawn as
// u^AgeBias across the live extent ordered old→new, so AgeBias > 1
// favours old tuples (the default, 2), AgeBias = 1 is uniform, and
// AgeBias < 1 favours young tuples for anyone preferring the literal
// reading. The choice is swept in the E6 ablation.
//
// EGI keeps its infection set between ticks; it is not safe for
// concurrent use. The zero value is not usable — construct with NewEGI.
type EGI struct {
	seedsPerTick int
	decayRate    float64
	ageBias      float64
	infected     map[tuple.ID]bool

	// Shard gating (see ForShard): with seedPeriod > 1 this instance
	// plants seeds only on every seedPeriod-th fungus run, offset by
	// seedPhase, so N shards together seed at the same whole-table rate
	// as one unsharded extent. The gate counts the instance's own Tick
	// invocations (ticks), not the clock value — a table-level
	// TickEvery period must not alias with the shard rotation.
	// Infection spread is ungated — fronts advance every tick on every
	// shard.
	seedPeriod uint64
	seedPhase  uint64
	ticks      uint64

	// claimed marks an instance already installed as some table's
	// shard-0 fungus; ForShard clones instead of sharing when the same
	// instance is offered to a second table (tables tick in parallel,
	// and a shared infection map would race).
	claimed bool
}

// EGIConfig parameterises NewEGI. SeedsPerTick and DecayRate of zero are
// meaningful (no seeding / no decay) and useful in experiments; AgeBias
// zero defaults to 2. Use DefaultEGIConfig for the paper's setup.
type EGIConfig struct {
	// SeedsPerTick is how many new infection seeds are planted per
	// clock cycle. The paper plants one.
	SeedsPerTick int
	// DecayRate is the freshness lost per tick by every infected tuple
	// (and, through infection, by its neighbours).
	DecayRate float64
	// AgeBias is the seed-position exponent described above.
	AgeBias float64
}

// DefaultEGIConfig returns the configuration used throughout the
// experiments unless a sweep overrides it: one seed per tick, 0.1
// freshness lost per infected tick, quadratic old-age bias.
func DefaultEGIConfig() EGIConfig {
	return EGIConfig{SeedsPerTick: 1, DecayRate: 0.1, AgeBias: 2}
}

// NewEGI constructs an EGI fungus. It panics on negative rates, matching
// the package's configuration convention.
func NewEGI(cfg EGIConfig) *EGI {
	if cfg.AgeBias == 0 {
		cfg.AgeBias = 2
	}
	if cfg.SeedsPerTick < 0 || cfg.DecayRate < 0 || cfg.AgeBias <= 0 {
		panic("fungus: invalid EGI configuration")
	}
	return &EGI{
		seedsPerTick: cfg.SeedsPerTick,
		decayRate:    cfg.DecayRate,
		ageBias:      cfg.AgeBias,
		infected:     make(map[tuple.ID]bool),
	}
}

// Name implements Fungus.
func (e *EGI) Name() string { return "egi" }

// InfectedCount reports the number of currently infected live tuples, a
// metric the rot-spot experiments chart.
func (e *EGI) InfectedCount() int { return len(e.infected) }

// Forget drops id from the infection set; the engine calls it when a
// tuple leaves the extent for reasons other than rot (consume-on-query)
// and AccessRefresh calls it when an owner touches a tuple.
func (e *EGI) Forget(id tuple.ID) { delete(e.infected, id) }

// Seed deterministically plants an infection at id, bypassing the
// age-biased random draw. Experiments use it to place rot spots at known
// positions (E2).
func (e *EGI) Seed(id tuple.ID) { e.infected[id] = true }

// Tick implements Fungus.
func (e *EGI) Tick(now clock.Tick, ext Extent, rng *rand.Rand, rotten []tuple.ID) []tuple.ID {
	// Phase 1: plant seeds, age-biased. Seeding already "decreas[es]
	// its freshness" per the paper, which phase 2 performs uniformly
	// for all infected tuples, seeds included.
	run := e.ticks
	e.ticks++
	if e.seedPeriod <= 1 || run%e.seedPeriod == e.seedPhase {
		for i := 0; i < e.seedsPerTick; i++ {
			if id, ok := e.pickSeed(ext, rng); ok {
				e.infected[id] = true
			}
		}
	}

	// Phase 2: every infected element loses freshness and infects its
	// direct neighbours at equal rate. Spreading is computed against
	// the infection set as it stood at the start of the phase so a
	// spot grows one tuple per side per tick, not arbitrarily far.
	front := make([]tuple.ID, 0, len(e.infected))
	//fungusvet:allow determinism -- the front is sorted two lines down, before any decay applies
	for id := range e.infected {
		front = append(front, id)
	}
	// Map iteration order is random; sort so rot reports (and therefore
	// whole experiment runs) are reproducible for a fixed RNG seed.
	sort.Slice(front, func(i, j int) bool { return front[i] < front[j] })
	for _, id := range front {
		var rotted, missing bool
		err := ext.Update(id, func(tp *tuple.Tuple) {
			tp.Infected = true
			tp.F = (tp.F - tuple.Freshness(e.decayRate)).Clamp()
			rotted = tp.F.Rotten()
		})
		if err != nil {
			// The tuple left the extent since the last tick (consumed
			// by a query); the infection dies with it.
			missing = true
		}
		if missing {
			delete(e.infected, id)
			continue
		}
		if rotted {
			rotten = append(rotten, id)
		}
		// Bi-directional growth along the time axis. Newly infected
		// neighbours also lose one tick of freshness immediately —
		// "affecting the direct neighboring tuples at equal rate".
		for _, step := range [2]func(tuple.ID) (tuple.ID, bool){ext.PrevLive, ext.NextLive} {
			nb, ok := step(id)
			if !ok || e.infected[nb] {
				continue
			}
			e.infected[nb] = true
			var nbRotted bool
			if err := ext.Update(nb, func(tp *tuple.Tuple) {
				tp.Infected = true
				tp.F = (tp.F - tuple.Freshness(e.decayRate)).Clamp()
				nbRotted = tp.F.Rotten()
			}); err == nil && nbRotted {
				rotten = append(rotten, nb)
			}
		}
	}

	// Rotten tuples stay in the infection set until the engine evicts
	// them; the next tick's Update will fail and prune them. Pruning
	// here as well keeps the set tight when the engine evicts promptly.
	for _, id := range rotten {
		delete(e.infected, id)
	}
	return rotten
}

// pickSeed draws a live tuple ID with position bias u^ageBias over the
// live ID range ordered old→new, then snaps to the nearest live tuple.
func (e *EGI) pickSeed(ext Extent, rng *rand.Rand) (tuple.ID, bool) {
	lo, ok := ext.FirstLive()
	if !ok {
		return 0, false
	}
	hi, _ := ext.LastLive()
	if hi == lo {
		return lo, true
	}
	span := float64(hi - lo)
	pos := math.Pow(rng.Float64(), e.ageBias) * span
	target := lo + tuple.ID(pos)
	if target <= lo {
		return lo, true // lo is live by definition; also avoids target-1 underflow
	}
	// Snap: target may be a tombstone; prefer the next live tuple, then
	// the previous.
	if id, ok := ext.NextLive(target - 1); ok { // NextLive is strict, so -1 includes target
		return id, true
	}
	if id, ok := ext.PrevLive(target); ok {
		return id, true
	}
	return 0, false
}
