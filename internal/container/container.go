package container

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

// Container is a named knowledge container: a digest plus its own
// freshness lifecycle. Containers decay exponentially with the
// configured half-life (in ticks) and are discarded by their Shelf when
// rotten — knowledge rots too, just on a different clock than data.
// A half-life of zero means the container never decays.
type Container struct {
	Name     string
	Digest   *Digest
	Created  clock.Tick
	HalfLife float64

	freshness tuple.Freshness
}

// NewContainer wraps a fresh digest. halfLife <= 0 disables decay.
func NewContainer(name string, d *Digest, created clock.Tick, halfLife float64) *Container {
	return &Container{
		Name:      name,
		Digest:    d,
		Created:   created,
		HalfLife:  halfLife,
		freshness: tuple.Full,
	}
}

// Freshness returns the container's current freshness.
func (c *Container) Freshness() tuple.Freshness { return c.freshness }

// Tick advances the container's decay by one clock cycle.
func (c *Container) Tick() {
	if c.HalfLife <= 0 {
		return
	}
	c.freshness = tuple.Freshness(float64(c.freshness) * math.Pow(2, -1/c.HalfLife))
	if float64(c.freshness) < 1e-3 {
		c.freshness = 0
	}
}

// Rotten reports whether the container should be discarded.
func (c *Container) Rotten() bool { return c.freshness.Rotten() }

// Touch restores the container to full freshness; consulting knowledge
// keeps it alive, mirroring AccessRefresh on raw data.
func (c *Container) Touch() { c.freshness = tuple.Full }

// Shelf is a thread-safe registry of containers belonging to one table.
type Shelf struct {
	mu         sync.Mutex
	schema     *tuple.Schema
	cfg        DigestConfig
	rng        *rand.Rand
	containers map[string]*Container
	discarded  uint64
}

// NewShelf builds an empty shelf. The rng seeds each digest's reservoir
// and must be non-nil.
func NewShelf(schema *tuple.Schema, cfg DigestConfig, rng *rand.Rand) *Shelf {
	return &Shelf{
		schema:     schema,
		cfg:        cfg,
		rng:        rng,
		containers: make(map[string]*Container),
	}
}

// Get returns the named container, or nil.
func (s *Shelf) Get(name string) *Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.containers[name]
}

// GetOrCreate returns the named container, creating it (with the given
// half-life) on first use.
func (s *Shelf) GetOrCreate(name string, now clock.Tick, halfLife float64) (*Container, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.containers[name]; ok {
		return c, nil
	}
	d, err := NewDigest(s.schema, s.cfg, s.rng)
	if err != nil {
		return nil, err
	}
	c := NewContainer(name, d, now, halfLife)
	s.containers[name] = c
	return c, nil
}

// Absorb distills tuples into the named container, creating it if
// needed.
func (s *Shelf) Absorb(name string, now clock.Tick, halfLife float64, tuples []tuple.Tuple) error {
	c, err := s.GetOrCreate(name, now, halfLife)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range tuples {
		if err := c.Digest.Absorb(&tuples[i]); err != nil {
			return fmt.Errorf("container %q: %w", name, err)
		}
	}
	return nil
}

// Tick decays every container one cycle and discards the rotten ones,
// returning the names discarded (sorted).
func (s *Shelf) Tick() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var gone []string
	for name, c := range s.containers {
		c.Tick()
		if c.Rotten() {
			delete(s.containers, name)
			gone = append(gone, name)
			s.discarded++
		}
	}
	sort.Strings(gone)
	return gone
}

// Names returns the live container names, sorted.
func (s *Shelf) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.containers))
	for n := range s.containers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of live containers.
func (s *Shelf) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.containers)
}

// Discarded returns how many containers have rotted away.
func (s *Shelf) Discarded() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.discarded
}

// Consolidate merges the named source containers into dst (created with
// the given half-life if absent) and removes the sources — the
// knowledge-lifecycle move of rolling hourly containers into a daily
// one. Missing sources are ignored; on a merge error the shelf is left
// partially consolidated (merged sources removed, the failing one kept).
func (s *Shelf) Consolidate(dst string, now clock.Tick, halfLife float64, srcs ...string) error {
	c, err := s.GetOrCreate(dst, now, halfLife)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range srcs {
		if name == dst {
			continue
		}
		src, ok := s.containers[name]
		if !ok {
			continue
		}
		if err := c.Digest.Merge(src.Digest); err != nil {
			return fmt.Errorf("container: consolidate %q: %w", name, err)
		}
		delete(s.containers, name)
	}
	return nil
}

// Bytes returns the total footprint of all live containers.
func (s *Shelf) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.containers {
		n += c.Digest.Bytes()
	}
	return n
}
