// Package container implements knowledge containers: the destination of
// the paper's second natural law. When tuples leave a relation — rotted
// by a fungus or consumed by a query — they are "distilled into useful
// knowledge" here: compact sketches answering counts, distinct values,
// quantiles, heavy hitters, and membership long after the raw data has
// disappeared. Containers carry their own freshness and decay under
// their own schedule, the paper's "stored in a new container subject to
// different data fungi".
package container

import (
	"fmt"
	"math/rand"
	"strconv"

	"fungusdb/internal/clock"
	"fungusdb/internal/sketch"
	"fungusdb/internal/tuple"
)

// DigestConfig sizes the per-column sketches of a digest. The zero
// value is unusable; start from DefaultDigestConfig.
type DigestConfig struct {
	TopK          int     // heavy-hitter counters per column
	HLLPrecision  uint8   // HyperLogLog precision (4..16)
	HistBuckets   int     // histogram buckets for numeric columns (even)
	SampleSize    int     // reservoir sample size (whole tuples)
	BloomItems    uint64  // expected distinct values per column
	BloomFPRate   float64 // bloom false-positive target
	CountMinEps   float64 // count-min relative error
	CountMinDelta float64 // count-min failure probability
}

// DefaultDigestConfig returns sketch sizes suitable for extents from
// tens of thousands to a few million tuples (~25 KiB per column).
func DefaultDigestConfig() DigestConfig {
	return DigestConfig{
		TopK:          32,
		HLLPrecision:  12,
		HistBuckets:   64,
		SampleSize:    64,
		BloomItems:    50_000,
		BloomFPRate:   0.01,
		CountMinEps:   0.01,
		CountMinDelta: 0.01,
	}
}

// CompactDigestConfig returns sketch sizes for small extents (up to a
// few thousand tuples, ~1 KiB per column) where the default would dwarf
// the data it summarises.
func CompactDigestConfig() DigestConfig {
	return DigestConfig{
		TopK:          16,
		HLLPrecision:  10,
		HistBuckets:   32,
		SampleSize:    32,
		BloomItems:    2_000,
		BloomFPRate:   0.02,
		CountMinEps:   0.05,
		CountMinDelta: 0.05,
	}
}

// colDigest is the per-column sketch bundle.
type colDigest struct {
	kind  tuple.Kind
	ndv   *sketch.HLL
	top   *sketch.TopK
	freq  *sketch.CountMin
	bloom *sketch.Bloom
	hist  *sketch.Histogram // numeric columns only
}

// Digest summarises a stream of tuples of one schema.
type Digest struct {
	schema *tuple.Schema
	cfg    DigestConfig
	cols   []*colDigest
	sample *sketch.Reservoir
	count  uint64
	fsum   float64 // summed freshness at absorption time
	minT   clock.Tick
	maxT   clock.Tick
}

// NewDigest builds an empty digest for schema. The rng drives reservoir
// sampling and must be non-nil.
func NewDigest(schema *tuple.Schema, cfg DigestConfig, rng *rand.Rand) (*Digest, error) {
	d := &Digest{schema: schema, cfg: cfg}
	var err error
	if d.sample, err = sketch.NewReservoir(cfg.SampleSize, rng); err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	for i := 0; i < schema.Len(); i++ {
		col := schema.Column(i)
		cd := &colDigest{kind: col.Kind}
		if cd.ndv, err = sketch.NewHLL(cfg.HLLPrecision); err != nil {
			return nil, fmt.Errorf("container: column %s: %w", col.Name, err)
		}
		if cd.top, err = sketch.NewTopK(cfg.TopK); err != nil {
			return nil, fmt.Errorf("container: column %s: %w", col.Name, err)
		}
		if cd.freq, err = sketch.NewCountMin(cfg.CountMinEps, cfg.CountMinDelta); err != nil {
			return nil, fmt.Errorf("container: column %s: %w", col.Name, err)
		}
		if cd.bloom, err = sketch.NewBloom(cfg.BloomItems, cfg.BloomFPRate); err != nil {
			return nil, fmt.Errorf("container: column %s: %w", col.Name, err)
		}
		if col.Kind == tuple.KindInt || col.Kind == tuple.KindFloat {
			if cd.hist, err = sketch.NewHistogram(cfg.HistBuckets); err != nil {
				return nil, fmt.Errorf("container: column %s: %w", col.Name, err)
			}
		}
		d.cols = append(d.cols, cd)
	}
	return d, nil
}

// valueKey renders a value as the byte key fed to the sketches.
func valueKey(v tuple.Value) []byte {
	switch v.Kind() {
	case tuple.KindInt:
		return strconv.AppendInt(nil, v.AsInt(), 10)
	case tuple.KindFloat:
		return strconv.AppendFloat(nil, v.AsFloat(), 'g', -1, 64)
	case tuple.KindString:
		return []byte(v.AsString())
	case tuple.KindBool:
		if v.AsBool() {
			return []byte("t")
		}
		return []byte("f")
	}
	return nil
}

// Absorb distills one tuple into the digest.
func (d *Digest) Absorb(tp *tuple.Tuple) error {
	if len(tp.Attrs) != len(d.cols) {
		return fmt.Errorf("container: tuple arity %d, digest wants %d", len(tp.Attrs), len(d.cols))
	}
	for i, v := range tp.Attrs {
		cd := d.cols[i]
		key := valueKey(v)
		cd.ndv.Add(key)
		cd.top.Add(key)
		cd.freq.Add(key)
		cd.bloom.Add(key)
		if cd.hist != nil {
			f, _ := v.Numeric()
			cd.hist.Add(f)
		}
	}
	d.sample.Add(tuple.AppendEncode(nil, *tp))
	if d.count == 0 || tp.T < d.minT {
		d.minT = tp.T
	}
	if tp.T > d.maxT {
		d.maxT = tp.T
	}
	d.count++
	d.fsum += float64(tp.F)
	return nil
}

// Count returns the number of absorbed tuples (exact).
func (d *Digest) Count() uint64 { return d.count }

// MeanFreshness returns the average freshness tuples had when absorbed,
// 0 when empty. Distill-before-rot pipelines use it to measure how
// "edible" captured knowledge was.
func (d *Digest) MeanFreshness() float64 {
	if d.count == 0 {
		return 0
	}
	return d.fsum / float64(d.count)
}

// TickRange returns the [min, max] insertion ticks absorbed.
func (d *Digest) TickRange() (clock.Tick, clock.Tick) { return d.minT, d.maxT }

func (d *Digest) col(name string) (*colDigest, error) {
	i := d.schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("container: unknown column %q", name)
	}
	return d.cols[i], nil
}

// NDV estimates the number of distinct values absorbed in column name.
func (d *Digest) NDV(name string) (uint64, error) {
	cd, err := d.col(name)
	if err != nil {
		return 0, err
	}
	return cd.ndv.Estimate(), nil
}

// Frequency estimates how many times value appeared in column name
// (never an underestimate).
func (d *Digest) Frequency(name string, v tuple.Value) (uint64, error) {
	cd, err := d.col(name)
	if err != nil {
		return 0, err
	}
	return cd.freq.Estimate(valueKey(v)), nil
}

// HeavyHitters returns the top-n most frequent values of column name.
func (d *Digest) HeavyHitters(name string, n int) ([]sketch.Entry, error) {
	cd, err := d.col(name)
	if err != nil {
		return nil, err
	}
	return cd.top.Top(n), nil
}

// MayContain reports whether value possibly appeared in column name;
// false is definite absence.
func (d *Digest) MayContain(name string, v tuple.Value) (bool, error) {
	cd, err := d.col(name)
	if err != nil {
		return false, err
	}
	return cd.bloom.MayContain(valueKey(v)), nil
}

// Quantile estimates the q'th quantile of a numeric column.
func (d *Digest) Quantile(name string, q float64) (float64, error) {
	cd, err := d.col(name)
	if err != nil {
		return 0, err
	}
	if cd.hist == nil {
		return 0, fmt.Errorf("container: column %q is not numeric", name)
	}
	return cd.hist.Quantile(q), nil
}

// Mean returns the exact running mean of a numeric column.
func (d *Digest) Mean(name string) (float64, error) {
	cd, err := d.col(name)
	if err != nil {
		return 0, err
	}
	if cd.hist == nil {
		return 0, fmt.Errorf("container: column %q is not numeric", name)
	}
	return cd.hist.Mean(), nil
}

// Sum returns the exact running sum of a numeric column.
func (d *Digest) Sum(name string) (float64, error) {
	cd, err := d.col(name)
	if err != nil {
		return 0, err
	}
	if cd.hist == nil {
		return 0, fmt.Errorf("container: column %q is not numeric", name)
	}
	return cd.hist.Sum(), nil
}

// Sample returns up to cfg.SampleSize absorbed tuples, decoded.
func (d *Digest) Sample() ([]tuple.Tuple, error) {
	raw := d.sample.Sample()
	out := make([]tuple.Tuple, 0, len(raw))
	for _, enc := range raw {
		tp, _, err := tuple.Decode(enc, d.schema)
		if err != nil {
			return nil, fmt.Errorf("container: corrupt sample: %w", err)
		}
		out = append(out, tp)
	}
	return out, nil
}

// Merge folds other into d. Both digests must share the schema and
// sketch configuration (guaranteed for digests from one Shelf). Counts,
// sums, NDV and membership merge exactly; quantiles, heavy hitters and
// the sample merge approximately — see the sketch package for bounds.
func (d *Digest) Merge(other *Digest) error {
	if !d.schema.Equal(other.schema) {
		return fmt.Errorf("container: merge schema mismatch")
	}
	if d.cfg != other.cfg {
		return fmt.Errorf("container: merge config mismatch")
	}
	for i, cd := range d.cols {
		oc := other.cols[i]
		if err := cd.ndv.Merge(oc.ndv); err != nil {
			return fmt.Errorf("container: %w", err)
		}
		cd.top.Merge(oc.top)
		if err := cd.freq.Merge(oc.freq); err != nil {
			return fmt.Errorf("container: %w", err)
		}
		if err := cd.bloom.Merge(oc.bloom); err != nil {
			return fmt.Errorf("container: %w", err)
		}
		if cd.hist != nil {
			cd.hist.Merge(oc.hist)
		}
	}
	d.sample.Merge(other.sample)
	if other.count > 0 {
		if d.count == 0 || other.minT < d.minT {
			d.minT = other.minT
		}
		if other.maxT > d.maxT {
			d.maxT = other.maxT
		}
	}
	d.count += other.count
	d.fsum += other.fsum
	return nil
}

// Bytes returns the approximate memory footprint of all sketches — the
// number experiment E5 compares against the raw extent size.
func (d *Digest) Bytes() int {
	n := d.sample.Bytes() + 96
	for _, cd := range d.cols {
		n += cd.ndv.Bytes() + cd.top.Bytes() + cd.freq.Bytes() + cd.bloom.Bytes()
		if cd.hist != nil {
			n += cd.hist.Bytes()
		}
	}
	return n
}
