package container

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

func fillDigest(t *testing.T, d *Digest, lo, hi int, tick clock.Tick) {
	t.Helper()
	for i := lo; i < hi; i++ {
		tp := tuple.New(tuple.ID(i), tick, []tuple.Value{
			tuple.String_(fmt.Sprintf("dev-%d", i%10)),
			tuple.Float(float64(i)),
			tuple.Int(int64(i)),
			tuple.Bool(i%2 == 0),
		})
		tp.F = 0.5
		if err := d.Absorb(&tp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDigestMergeExactParts(t *testing.T) {
	a := newDigest(t)
	b := newDigest(t)
	fillDigest(t, a, 0, 500, 10)
	fillDigest(t, b, 500, 1000, 20)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1000 {
		t.Errorf("Count = %d", a.Count())
	}
	sum, _ := a.Sum("temp")
	if sum != 499500 { // 0+1+...+999
		t.Errorf("Sum = %v", sum)
	}
	lo, hi := a.TickRange()
	if lo != 10 || hi != 20 {
		t.Errorf("TickRange = %v..%v", lo, hi)
	}
	if a.MeanFreshness() != 0.5 {
		t.Errorf("MeanFreshness = %v", a.MeanFreshness())
	}
	// NDV(device): both halves share the same 10 devices.
	ndv, _ := a.NDV("device")
	if ndv < 9 || ndv > 11 {
		t.Errorf("NDV = %d, want ≈10", ndv)
	}
	// NDV(n): all 1000 distinct.
	ndv, _ = a.NDV("n")
	if math.Abs(float64(ndv)-1000) > 60 {
		t.Errorf("NDV(n) = %d, want ≈1000", ndv)
	}
	// Membership survives the merge from both sides.
	for _, probe := range []int64{3, 700} {
		got, _ := a.MayContain("n", tuple.Int(probe))
		if !got {
			t.Errorf("merged bloom lost %d", probe)
		}
	}
}

func TestDigestMergeQuantilesApproximate(t *testing.T) {
	a := newDigest(t)
	b := newDigest(t)
	fillDigest(t, a, 0, 500, 1)
	fillDigest(t, b, 500, 1000, 1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	med, _ := a.Quantile("temp", 0.5)
	if math.Abs(med-500) > 60 {
		t.Errorf("merged median = %v, want ≈500", med)
	}
}

func TestDigestMergeHeavyHitters(t *testing.T) {
	a := newDigest(t)
	b := newDigest(t)
	// "dev-0" is hot in both halves (i%10==0).
	fillDigest(t, a, 0, 300, 1)
	fillDigest(t, b, 300, 600, 1)
	a.Merge(b)
	top, err := a.HeavyHitters("device", 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range top {
		if e.Item == "dev-0" && e.Count >= 60 {
			found = true
		}
	}
	if !found {
		t.Errorf("dev-0 missing from merged top: %v", top)
	}
}

func TestDigestMergeMismatch(t *testing.T) {
	a := newDigest(t)
	other, err := NewDigest(
		tuple.MustSchema(tuple.Column{Name: "x", Kind: tuple.KindInt}),
		DefaultDigestConfig(), rand.New(rand.NewSource(1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(other); err == nil {
		t.Error("schema mismatch accepted")
	}
	small, _ := NewDigest(digSchema, CompactDigestConfig(), rand.New(rand.NewSource(1)))
	if err := a.Merge(small); err == nil {
		t.Error("config mismatch accepted")
	}
}

func TestShelfConsolidate(t *testing.T) {
	s := NewShelf(digSchema, DefaultDigestConfig(), rand.New(rand.NewSource(9)))
	s.Absorb("hour-0", 1, 5, []tuple.Tuple{mk(1, "a", 1), mk(2, "b", 2)})
	s.Absorb("hour-1", 2, 5, []tuple.Tuple{mk(3, "a", 3)})
	s.Absorb("keep", 2, 0, []tuple.Tuple{mk(4, "z", 4)})

	if err := s.Consolidate("day-0", 3, 0, "hour-0", "hour-1", "missing"); err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "day-0" || names[1] != "keep" {
		t.Fatalf("names = %v", names)
	}
	day := s.Get("day-0")
	if day.Digest.Count() != 3 {
		t.Errorf("day count = %d", day.Digest.Count())
	}
	if day.HalfLife != 0 {
		t.Errorf("day half-life = %v", day.HalfLife)
	}
	// Consolidating into an existing container accumulates.
	s.Absorb("hour-2", 4, 5, []tuple.Tuple{mk(5, "c", 5)})
	if err := s.Consolidate("day-0", 5, 0, "hour-2"); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("day-0").Digest.Count(); got != 4 {
		t.Errorf("day count after second roll-up = %d", got)
	}
	// Self-consolidation is a no-op, not a deletion.
	if err := s.Consolidate("day-0", 6, 0, "day-0"); err != nil {
		t.Fatal(err)
	}
	if s.Get("day-0") == nil {
		t.Error("self-consolidation deleted the container")
	}
}

func TestReservoirMergeSeenAccounting(t *testing.T) {
	a := newDigest(t)
	b := newDigest(t)
	fillDigest(t, a, 0, 100, 1)
	fillDigest(t, b, 100, 300, 1)
	a.Merge(b)
	sample, err := a.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) == 0 || len(sample) > DefaultDigestConfig().SampleSize {
		t.Errorf("merged sample size = %d", len(sample))
	}
	// Sampled tuples decode against the schema (no corruption).
	for _, tp := range sample {
		if len(tp.Attrs) != 4 {
			t.Errorf("corrupt sampled tuple %v", tp)
		}
	}
}
