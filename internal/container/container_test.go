package container

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
)

var digSchema = tuple.MustSchema(
	tuple.Column{Name: "device", Kind: tuple.KindString},
	tuple.Column{Name: "temp", Kind: tuple.KindFloat},
	tuple.Column{Name: "n", Kind: tuple.KindInt},
	tuple.Column{Name: "ok", Kind: tuple.KindBool},
)

func newDigest(t *testing.T) *Digest {
	t.Helper()
	d, err := NewDigest(digSchema, DefaultDigestConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDigestCountAndRange(t *testing.T) {
	d := newDigest(t)
	for i := 0; i < 100; i++ {
		tp := tuple.New(tuple.ID(i), clock.Tick(10+i), []tuple.Value{
			tuple.String_(fmt.Sprintf("dev-%d", i%5)), tuple.Float(float64(i)), tuple.Int(int64(i)), tuple.Bool(i%2 == 0),
		})
		tp.F = 0.5
		if err := d.Absorb(&tp); err != nil {
			t.Fatal(err)
		}
	}
	if d.Count() != 100 {
		t.Errorf("Count = %d", d.Count())
	}
	lo, hi := d.TickRange()
	if lo != 10 || hi != 109 {
		t.Errorf("TickRange = [%v, %v], want [10, 109]", lo, hi)
	}
	if d.MeanFreshness() != 0.5 {
		t.Errorf("MeanFreshness = %v", d.MeanFreshness())
	}
}

func TestDigestNDVAndFrequency(t *testing.T) {
	d := newDigest(t)
	for i := 0; i < 1000; i++ {
		tp := tuple.New(tuple.ID(i), 1, []tuple.Value{
			tuple.String_(fmt.Sprintf("dev-%d", i%20)), tuple.Float(1), tuple.Int(int64(i)), tuple.Bool(true),
		})
		d.Absorb(&tp)
	}
	ndv, err := d.NDV("device")
	if err != nil {
		t.Fatal(err)
	}
	if ndv < 18 || ndv > 22 {
		t.Errorf("NDV(device) = %d, want ≈20", ndv)
	}
	freq, err := d.Frequency("device", tuple.String_("dev-3"))
	if err != nil {
		t.Fatal(err)
	}
	if freq < 50 {
		t.Errorf("Frequency(dev-3) = %d, want >= 50", freq)
	}
	if _, err := d.NDV("nosuch"); err == nil {
		t.Error("NDV unknown column accepted")
	}
}

func TestDigestHeavyHitters(t *testing.T) {
	d := newDigest(t)
	for i := 0; i < 900; i++ {
		dev := "common"
		if i%10 == 9 {
			dev = fmt.Sprintf("rare-%d", i)
		}
		tp := tuple.New(tuple.ID(i), 1, []tuple.Value{
			tuple.String_(dev), tuple.Float(1), tuple.Int(1), tuple.Bool(true),
		})
		d.Absorb(&tp)
	}
	top, err := d.HeavyHitters("device", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].Item != "common" {
		t.Errorf("HeavyHitters = %v", top)
	}
	if top[0].Count < 810 {
		t.Errorf("heavy hitter count %d, want >= 810", top[0].Count)
	}
}

func TestDigestQuantileMeanSum(t *testing.T) {
	d := newDigest(t)
	var sum float64
	for i := 1; i <= 1000; i++ {
		tp := tuple.New(tuple.ID(i), 1, []tuple.Value{
			tuple.String_("d"), tuple.Float(float64(i)), tuple.Int(int64(i)), tuple.Bool(true),
		})
		sum += float64(i)
		d.Absorb(&tp)
	}
	med, err := d.Quantile("temp", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-500) > 40 {
		t.Errorf("median = %v, want ≈500", med)
	}
	mean, _ := d.Mean("temp")
	if math.Abs(mean-500.5) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	got, _ := d.Sum("temp")
	if got != sum {
		t.Errorf("sum = %v, want %v", got, sum)
	}
	if _, err := d.Quantile("device", 0.5); err == nil {
		t.Error("quantile over string accepted")
	}
	if _, err := d.Mean("ok"); err == nil {
		t.Error("mean over bool accepted")
	}
}

func TestDigestMayContain(t *testing.T) {
	d := newDigest(t)
	tp := tuple.New(1, 1, []tuple.Value{
		tuple.String_("present"), tuple.Float(42), tuple.Int(7), tuple.Bool(true),
	})
	d.Absorb(&tp)
	if got, _ := d.MayContain("device", tuple.String_("present")); !got {
		t.Error("false negative on device")
	}
	if got, _ := d.MayContain("n", tuple.Int(7)); !got {
		t.Error("false negative on n")
	}
	if got, _ := d.MayContain("device", tuple.String_("never-seen-value")); got {
		t.Error("likely false positive on a 1-item bloom (suspicious)")
	}
}

func TestDigestSampleRoundTrip(t *testing.T) {
	d := newDigest(t)
	for i := 0; i < 10; i++ {
		tp := tuple.New(tuple.ID(i), 1, []tuple.Value{
			tuple.String_("d"), tuple.Float(float64(i)), tuple.Int(int64(i)), tuple.Bool(true),
		})
		d.Absorb(&tp)
	}
	sample, err := d.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 10 {
		t.Errorf("sample size %d, want 10 (under reservoir capacity)", len(sample))
	}
	for _, tp := range sample {
		if tp.Attrs[0].AsString() != "d" {
			t.Errorf("corrupt sample tuple: %v", tp)
		}
	}
}

func TestDigestArityMismatch(t *testing.T) {
	d := newDigest(t)
	tp := tuple.New(1, 1, []tuple.Value{tuple.Int(1)})
	if err := d.Absorb(&tp); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestDigestBytesSmallerThanRaw(t *testing.T) {
	d := newDigest(t)
	raw := 0
	for i := 0; i < 200_000; i++ {
		tp := tuple.New(tuple.ID(i), 1, []tuple.Value{
			tuple.String_(fmt.Sprintf("device-with-a-long-name-%d", i%100)),
			tuple.Float(float64(i)), tuple.Int(int64(i)), tuple.Bool(true),
		})
		raw += tp.Size()
		d.Absorb(&tp)
	}
	if d.Bytes() >= raw/10 {
		t.Errorf("digest %d bytes vs raw %d: compression < 10x", d.Bytes(), raw)
	}
}

func TestContainerDecay(t *testing.T) {
	d := newDigest(t)
	c := NewContainer("week-1", d, 0, 10) // half-life 10 ticks
	if c.Freshness() != tuple.Full || c.Rotten() {
		t.Fatal("new container not fresh")
	}
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	if math.Abs(float64(c.Freshness())-0.5) > 1e-9 {
		t.Errorf("freshness after one half-life = %v", c.Freshness())
	}
	for i := 0; i < 200 && !c.Rotten(); i++ {
		c.Tick()
	}
	if !c.Rotten() {
		t.Error("container never rotted")
	}
}

func TestContainerNoDecayAndTouch(t *testing.T) {
	c := NewContainer("forever", newDigest(t), 0, 0)
	for i := 0; i < 1000; i++ {
		c.Tick()
	}
	if c.Freshness() != tuple.Full {
		t.Error("half-life 0 container decayed")
	}
	c2 := NewContainer("touched", newDigest(t), 0, 5)
	for i := 0; i < 4; i++ {
		c2.Tick()
	}
	c2.Touch()
	if c2.Freshness() != tuple.Full {
		t.Error("Touch did not refresh")
	}
}

func TestShelfLifecycle(t *testing.T) {
	s := NewShelf(digSchema, DefaultDigestConfig(), rand.New(rand.NewSource(2)))
	tuples := []tuple.Tuple{
		mk(1, "a", 1),
		mk(2, "b", 2),
	}
	if err := s.Absorb("bucket-1", 5, 4, tuples); err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb("bucket-2", 5, 0, tuples); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Names(); len(got) != 2 || got[0] != "bucket-1" || got[1] != "bucket-2" {
		t.Errorf("Names = %v", got)
	}
	c := s.Get("bucket-1")
	if c == nil || c.Digest.Count() != 2 {
		t.Fatalf("bucket-1 = %+v", c)
	}
	if s.Get("nosuch") != nil {
		t.Error("Get(nosuch) non-nil")
	}

	// Decay until bucket-1 (half-life 4) rots; bucket-2 (0) survives.
	var gone []string
	for i := 0; i < 100 && len(gone) == 0; i++ {
		gone = s.Tick()
	}
	if len(gone) != 1 || gone[0] != "bucket-1" {
		t.Errorf("discarded %v", gone)
	}
	if s.Len() != 1 || s.Discarded() != 1 {
		t.Errorf("Len=%d Discarded=%d", s.Len(), s.Discarded())
	}
	if s.Bytes() <= 0 {
		t.Error("Bytes not positive with a live container")
	}
}

func TestShelfAbsorbIntoExisting(t *testing.T) {
	s := NewShelf(digSchema, DefaultDigestConfig(), rand.New(rand.NewSource(3)))
	s.Absorb("b", 1, 0, []tuple.Tuple{mk(1, "x", 1)})
	s.Absorb("b", 2, 0, []tuple.Tuple{mk(2, "y", 2)})
	if got := s.Get("b").Digest.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func mk(id uint64, device string, n int64) tuple.Tuple {
	return tuple.New(tuple.ID(id), 1, []tuple.Value{
		tuple.String_(device), tuple.Float(float64(n)), tuple.Int(n), tuple.Bool(true),
	})
}
