// Package stream adds the continuous-query layer the paper's conclusion
// points at: the proposed steps are "fundamental to streaming database
// systems, or Complex Event Processing systems". A Monitor attaches
// standing rules to a table and evaluates them incrementally:
//
//   - OnMatch fires an action for every new tuple satisfying a
//     predicate (simple event rules).
//   - OnSequence fires when a tuple matching a second predicate arrives
//     within a tick window after one matching a first predicate (the
//     minimal "complex" event: A followed by B).
//   - WindowStats computes sliding-window aggregates over recent ticks.
//
// Rules see each tuple exactly once, in insertion order, regardless of
// how often Poll runs — the Monitor keeps a high-water mark over the
// table's ID axis. Because the substrate decays, a tuple that rots (or
// is consumed) before the next Poll is genuinely missed; that is the
// semantics the paper prescribes — data not cooked in time is gone —
// and the Missed counter makes the loss observable.
package stream

import (
	"fmt"
	"sync"

	"fungusdb/internal/clock"
	"fungusdb/internal/core"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
)

// Event is one rule firing.
type Event struct {
	Rule  string
	Tuple tuple.Tuple
	// First is the earlier tuple of a sequence rule (zero otherwise).
	First tuple.Tuple
	At    clock.Tick
}

// Action consumes an event. Actions run synchronously inside Poll, in
// tuple order; they must not call back into the Monitor or the table's
// mutating methods.
type Action func(Event)

type matchRule struct {
	name string
	pred *query.Predicate
	act  Action
}

type seqRule struct {
	name   string
	first  *query.Predicate
	then   *query.Predicate
	within uint64
	act    Action
	// pending holds ticks of unconsumed 'first' events.
	pending []clock.Tick
}

// Monitor evaluates standing rules over one table.
type Monitor struct {
	mu    sync.Mutex
	tbl   *core.Table
	hwm   int64 // highest tuple ID already processed
	rules []*matchRule
	seqs  []*seqRule

	polled  uint64
	fired   uint64
	missed  uint64 // IDs that vanished before being seen
	lastNow clock.Tick
}

// NewMonitor attaches a monitor to tbl. Rules added afterwards only see
// tuples inserted after attachment.
func NewMonitor(tbl *core.Table) *Monitor {
	return &Monitor{tbl: tbl, hwm: -1}
}

// OnMatch registers a simple rule: act fires once for every new tuple
// satisfying where.
func (m *Monitor) OnMatch(name, where string, act Action) error {
	pred, err := m.tbl.Compile(where)
	if err != nil {
		return err
	}
	if act == nil {
		return fmt.Errorf("stream: rule %q needs an action", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules = append(m.rules, &matchRule{name: name, pred: pred, act: act})
	return nil
}

// OnSequence registers a complex rule: act fires when a tuple matching
// thenWhere arrives at most within ticks after a tuple matching
// firstWhere. Each 'first' arms at most one firing (earliest pending
// first wins).
func (m *Monitor) OnSequence(name, firstWhere, thenWhere string, within uint64, act Action) error {
	first, err := m.tbl.Compile(firstWhere)
	if err != nil {
		return err
	}
	then, err := m.tbl.Compile(thenWhere)
	if err != nil {
		return err
	}
	if act == nil {
		return fmt.Errorf("stream: rule %q needs an action", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seqs = append(m.seqs, &seqRule{name: name, first: first, then: then, within: within, act: act})
	return nil
}

// Stats reports monitor counters.
type Stats struct {
	Polled uint64 // tuples processed through rules
	Fired  uint64 // rule firings
	Missed uint64 // tuples that decayed away unseen
}

// Stats returns a snapshot.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Polled: m.polled, Fired: m.fired, Missed: m.missed}
}

// Poll processes every tuple inserted since the previous Poll through
// all rules, returning the number of rule firings. Call it after each
// engine tick (or batch of inserts).
func (m *Monitor) Poll() (fired int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	res, err := m.tbl.Query(fmt.Sprintf("%s > %d", tuple.SysID, m.hwm), query.Peek)
	if err != nil {
		return 0, err
	}
	// Note what vanished without being seen: the allocated ID range
	// advanced further than the live tuples we got back. (Tuples that
	// rotted or were consumed between polls are counted missed.)
	if top := int64(m.tbl.StoreStats().Inserted) - 1; top > m.hwm {
		span := top - m.hwm
		m.missed += uint64(span - int64(len(res.Tuples)))
		m.hwm = top
	}

	for i := range res.Tuples {
		tp := &res.Tuples[i]
		m.polled++
		for _, r := range m.rules {
			ok, err := r.pred.Match(tp)
			if err != nil {
				return fired, fmt.Errorf("stream: rule %q: %w", r.name, err)
			}
			if ok {
				r.act(Event{Rule: r.name, Tuple: tp.Clone(), At: tp.T})
				m.fired++
				fired++
			}
		}
		for _, s := range m.seqs {
			if err := m.stepSequence(s, tp, &fired); err != nil {
				return fired, err
			}
		}
		m.lastNow = tp.T
	}
	return fired, nil
}

func (m *Monitor) stepSequence(s *seqRule, tp *tuple.Tuple, fired *int) error {
	// Expire pending firsts that fell out of the window.
	live := s.pending[:0]
	for _, ft := range s.pending {
		if uint64(tp.T-ft) <= s.within {
			live = append(live, ft)
		}
	}
	s.pending = live

	isThen, err := s.then.Match(tp)
	if err != nil {
		return fmt.Errorf("stream: rule %q: %w", s.name, err)
	}
	if isThen && len(s.pending) > 0 {
		first := s.pending[0]
		s.pending = s.pending[1:]
		s.act(Event{
			Rule:  s.name,
			Tuple: tp.Clone(),
			First: tuple.Tuple{T: first},
			At:    tp.T,
		})
		m.fired++
		*fired++
		return nil
	}
	isFirst, err := s.first.Match(tp)
	if err != nil {
		return fmt.Errorf("stream: rule %q: %w", s.name, err)
	}
	if isFirst {
		s.pending = append(s.pending, tp.T)
	}
	return nil
}

// WindowPoint is one sliding-window aggregate sample.
type WindowPoint struct {
	At    clock.Tick
	Count uint64
	Sum   float64
	Mean  float64
	Min   float64
	Max   float64
}

// WindowStats aggregates col over tuples inserted in the last width
// ticks (inclusive of the current tick). It reads the live extent, so
// rotted tuples are — correctly — absent.
func (m *Monitor) WindowStats(col string, width uint64, now clock.Tick) (WindowPoint, error) {
	lo := uint64(0)
	if uint64(now) > width {
		lo = uint64(now) - width
	}
	res, err := m.tbl.Query(fmt.Sprintf("%s >= %d", tuple.SysTick, lo), query.Peek)
	if err != nil {
		return WindowPoint{}, err
	}
	agg, err := res.Aggregate(col)
	if err != nil {
		return WindowPoint{}, err
	}
	return WindowPoint{
		At:    now,
		Count: agg.Count(),
		Sum:   agg.Sum(),
		Mean:  agg.Mean(),
		Min:   agg.Min(),
		Max:   agg.Max(),
	}, nil
}
