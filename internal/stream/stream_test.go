package stream

import (
	"testing"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/tuple"
)

var logSchema = tuple.MustSchema(
	tuple.Column{Name: "host", Kind: tuple.KindString},
	tuple.Column{Name: "sev", Kind: tuple.KindInt},
)

func newTable(t *testing.T, f fungus.Fungus) (*core.DB, *core.Table) {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("logs", core.TableConfig{Schema: logSchema, Fungus: f})
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestOnMatchFiresOncePerTuple(t *testing.T) {
	_, tbl := newTable(t, nil)
	m := NewMonitor(tbl)
	var got []Event
	if err := m.OnMatch("serious", "sev <= 3", func(e Event) { got = append(got, e) }); err != nil {
		t.Fatal(err)
	}
	tbl.Insert(core.Row("web-1", 7))
	tbl.Insert(core.Row("web-2", 2))
	tbl.Insert(core.Row("web-3", 1))

	fired, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if fired != 2 || len(got) != 2 {
		t.Fatalf("fired %d, events %d", fired, len(got))
	}
	if got[0].Tuple.Attrs[0].AsString() != "web-2" || got[1].Tuple.Attrs[0].AsString() != "web-3" {
		t.Errorf("events out of order: %v", got)
	}
	if got[0].Rule != "serious" {
		t.Errorf("rule name = %q", got[0].Rule)
	}

	// Second poll with nothing new: no refiring.
	fired, _ = m.Poll()
	if fired != 0 {
		t.Errorf("refired %d", fired)
	}
	// New tuple seen exactly once.
	tbl.Insert(core.Row("web-4", 0))
	fired, _ = m.Poll()
	if fired != 1 || len(got) != 3 {
		t.Errorf("after new insert fired %d, events %d", fired, len(got))
	}
}

func TestMultipleRulesAllFire(t *testing.T) {
	_, tbl := newTable(t, nil)
	m := NewMonitor(tbl)
	counts := map[string]int{}
	m.OnMatch("all", "", func(e Event) { counts[e.Rule]++ })
	m.OnMatch("web1", "host = 'web-1'", func(e Event) { counts[e.Rule]++ })
	tbl.Insert(core.Row("web-1", 5))
	tbl.Insert(core.Row("web-2", 5))
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if counts["all"] != 2 || counts["web1"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	st := m.Stats()
	if st.Polled != 2 || st.Fired != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOnMatchBadPredicate(t *testing.T) {
	_, tbl := newTable(t, nil)
	m := NewMonitor(tbl)
	if err := m.OnMatch("x", "nosuch = 1", func(Event) {}); err == nil {
		t.Error("bad predicate accepted")
	}
	if err := m.OnMatch("x", "", nil); err == nil {
		t.Error("nil action accepted")
	}
}

func TestSequenceRule(t *testing.T) {
	db, tbl := newTable(t, nil)
	m := NewMonitor(tbl)
	var fired []Event
	// Complex event: an auth failure (sev 4) followed by an emergency
	// (sev 0) within 5 ticks.
	if err := m.OnSequence("breach", "sev = 4", "sev = 0", 5, func(e Event) {
		fired = append(fired, e)
	}); err != nil {
		t.Fatal(err)
	}

	tbl.Insert(core.Row("web-1", 4)) // first at t0
	db.Tick()
	db.Tick()
	tbl.Insert(core.Row("web-1", 0)) // then at t2: within window
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("sequence fired %d times", len(fired))
	}
	if fired[0].First.T != 0 || fired[0].At != 2 {
		t.Errorf("event = %+v", fired[0])
	}

	// A second 'then' with no pending first: no firing.
	tbl.Insert(core.Row("web-1", 0))
	m.Poll()
	if len(fired) != 1 {
		t.Errorf("unarmed sequence fired")
	}
}

func TestSequenceWindowExpires(t *testing.T) {
	db, tbl := newTable(t, nil)
	m := NewMonitor(tbl)
	count := 0
	m.OnSequence("slow", "sev = 4", "sev = 0", 3, func(Event) { count++ })

	tbl.Insert(core.Row("a", 4)) // first at t0
	for i := 0; i < 10; i++ {
		db.Tick()
	}
	tbl.Insert(core.Row("a", 0)) // then at t10: window long gone
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("expired sequence fired %d", count)
	}
}

func TestSequenceAcrossPolls(t *testing.T) {
	db, tbl := newTable(t, nil)
	m := NewMonitor(tbl)
	count := 0
	m.OnSequence("s", "sev = 4", "sev = 0", 10, func(Event) { count++ })
	tbl.Insert(core.Row("a", 4))
	m.Poll() // first seen in poll 1
	db.Tick()
	tbl.Insert(core.Row("a", 0))
	m.Poll() // then seen in poll 2
	if count != 1 {
		t.Errorf("cross-poll sequence fired %d", count)
	}
}

func TestMissedCountsDecayedTuples(t *testing.T) {
	db, tbl := newTable(t, fungus.Linear{Rate: 1.0}) // everything rots next tick
	m := NewMonitor(tbl)
	m.OnMatch("all", "", func(Event) {})

	tbl.Insert(core.Row("a", 1))
	tbl.Insert(core.Row("b", 2))
	db.Tick() // both rot before the monitor ever polls
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Polled != 0 || st.Missed != 2 {
		t.Errorf("stats = %+v (want 2 missed)", st)
	}
	// Data cooked in time is not missed.
	tbl.Insert(core.Row("c", 3))
	m.Poll()
	st = m.Stats()
	if st.Polled != 1 || st.Missed != 2 {
		t.Errorf("stats after timely poll = %+v", st)
	}
}

func TestWindowStats(t *testing.T) {
	db, tbl := newTable(t, nil)
	m := NewMonitor(tbl)
	// t0: sev 1 and 3; t5: sev 5.
	tbl.Insert(core.Row("a", 1))
	tbl.Insert(core.Row("a", 3))
	for i := 0; i < 5; i++ {
		db.Tick()
	}
	tbl.Insert(core.Row("a", 5))

	// Window of 2 ticks: only the t5 tuple.
	p, err := m.WindowStats("sev", 2, db.Now())
	if err != nil {
		t.Fatal(err)
	}
	if p.Count != 1 || p.Sum != 5 {
		t.Errorf("narrow window = %+v", p)
	}
	// Window of 100 ticks: everything.
	p, err = m.WindowStats("sev", 100, db.Now())
	if err != nil {
		t.Fatal(err)
	}
	if p.Count != 3 || p.Sum != 9 || p.Mean != 3 || p.Min != 1 || p.Max != 5 {
		t.Errorf("wide window = %+v", p)
	}
	if _, err := m.WindowStats("host", 10, db.Now()); err == nil {
		t.Error("window over string column accepted")
	}
}

func TestWindowStatsRespectsDecay(t *testing.T) {
	db, tbl := newTable(t, fungus.TTL{Lifetime: 3})
	m := NewMonitor(tbl)
	tbl.Insert(core.Row("a", 10))
	for i := 0; i < 4; i++ {
		db.Tick() // tuple rots at age 3
	}
	p, err := m.WindowStats("sev", 100, db.Now())
	if err != nil {
		t.Fatal(err)
	}
	if p.Count != 0 {
		t.Errorf("rotted tuple still visible in window: %+v", p)
	}
}
