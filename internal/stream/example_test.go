package stream_test

import (
	"fmt"
	"log"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/stream"
	"fungusdb/internal/tuple"
)

// Example attaches a standing rule and a sequence rule to a decaying
// log table and polls them as events arrive.
func Example() {
	db, _ := core.Open(core.DBConfig{Seed: 1})
	defer db.Close()
	logs, _ := db.CreateTable("logs", core.TableConfig{
		Schema: tuple.MustSchema(
			tuple.Column{Name: "msg", Kind: tuple.KindString},
			tuple.Column{Name: "sev", Kind: tuple.KindInt},
		),
		Fungus: fungus.TTL{Lifetime: 100},
	})

	mon := stream.NewMonitor(logs)
	err := mon.OnMatch("serious", "sev <= 2", func(e stream.Event) {
		fmt.Println("serious:", e.Tuple.Attrs[0].AsString())
	})
	if err != nil {
		log.Fatal(err)
	}
	err = mon.OnSequence("escalation", "sev = 2", "sev = 0", 10, func(e stream.Event) {
		fmt.Println("escalation detected at", e.At)
	})
	if err != nil {
		log.Fatal(err)
	}

	logs.Insert(core.Row("disk latency high", 2))
	db.Tick()
	logs.Insert(core.Row("kernel panic", 0))
	if _, err := mon.Poll(); err != nil {
		log.Fatal(err)
	}
	st := mon.Stats()
	fmt.Printf("polled %d fired %d\n", st.Polled, st.Fired)
	// Output:
	// serious: disk latency high
	// serious: kernel panic
	// escalation detected at t1
	// polled 2 fired 3
}
