package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path      string
	Dir       string
	ModuleDir string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") against the module rooted at
// moduleDir and returns the matched packages parsed and type-checked,
// in dependency order (a package always follows everything it
// imports). Imported packages — including the standard library — are
// resolved from compiler export data produced by `go list -export`,
// so loading needs no network and no third-party tooling.
func Load(moduleDir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, exports, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, lp := range pkgs {
		p, err := typecheck(fset, imp, moduleDir, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// goList shells out to the go command for package metadata and export
// data. It returns the non-dependency target packages in dependency
// order plus an importPath→export-file map covering every dependency.
func goList(moduleDir string, patterns []string) ([]listPkg, map[string]string, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,CgoFiles,Export,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Stderr = os.Stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: go list %s: %w", strings.Join(patterns, " "), err)
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(strings.NewReader(string(stdout)))
	for {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	return targets, exports, nil
}

// newExportImporter returns a types importer backed by the export
// files go list produced. The gc importer caches internally, so the
// one instance serves every package in the run.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// typecheck parses and type-checks one listed package.
func typecheck(fset *token.FileSet, imp types.ImporterFrom, moduleDir string, lp listPkg) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:      lp.ImportPath,
		Dir:       lp.Dir,
		ModuleDir: moduleDir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		Info:      info,
	}, nil
}

// LoadFixture parses and type-checks a single directory of Go files
// that is NOT part of the module build (an analysistest fixture under
// testdata/). The fixture may import real module packages and the
// standard library; those are resolved through go list export data
// exactly as Load resolves them. importPath becomes the fixture's
// package path, which analyzers keyed on package identity match
// against their (test-overridden) configuration.
func LoadFixture(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture %s: %w", dir, err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysis: fixture %s has no Go files", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse fixture %s: %w", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		patterns := make([]string, 0, len(importSet))
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		if _, exports, err = goList(moduleDir, patterns); err != nil {
			return nil, err
		}
	}
	return typecheck(fset, newExportImporter(fset, exports), moduleDir, listPkg{
		ImportPath: importPath,
		Dir:        dir,
		GoFiles:    goFiles,
	})
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}
