// Package metricname is the fixture for the metricname analyzer: it
// registers obs families against a miniature catalog (CATALOG.md in
// this directory, wired in by the test) and exercises the prefix,
// grammar and documentation checks plus the allow escape hatch.
package metricname

import "fungusdb/internal/obs"

func families() []obs.Family {
	return []obs.Family{
		{Name: "fungusdb_good_total", Help: "documented and well formed", Kind: obs.KindCounter},
		{Name: "engine_bad_total", Help: "wrong prefix", Kind: obs.KindCounter},             // want `lacks the fungusdb_ prefix`
		{Name: "fungusdb_bad-grammar", Help: "dash is illegal", Kind: obs.KindGauge},        // want `fails the registry's name grammar`
		{Name: "fungusdb_rogue_total", Help: "missing from catalog", Kind: obs.KindCounter}, // want `is not documented`
	}
}

func histogram() *obs.Histogram {
	return obs.NewHistogram("fungusdb_hist_seconds", "documented", []float64{0.1, 1},
		obs.Label{Name: "shard", Value: "0"},
		obs.Label{Name: "bad-label", Value: "x"}, // want `label name "bad-label" fails the registry's name grammar`
	)
}

// helperFamily routes the name literal through a helper, the shape the
// generic string-literal sweep exists to catch.
func helperFamily(name string) obs.Family {
	return obs.Family{Name: name, Kind: obs.KindCounter}
}

func viaHelper() []obs.Family {
	return []obs.Family{
		helperFamily("fungusdb_helper_total"),
		helperFamily("fungusdb_unlisted_total"), // want `is not documented`
	}
}

// prefixOnly is name-shaped but deliberately not a registration.
const prefixOnly = "fungusdb_" //fungusvet:allow metricname -- bare prefix used for string matching, not registered
