// Package determinism is the fixture for the determinism analyzer:
// wall-clock reads, global math/rand draws and map iteration are
// flagged; injected clocks, seeded per-shard RNGs and the annotated
// escape hatch are not.
package determinism

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now()   // want `wall-clock read time\.Now`
	_ = time.Since(t) // want `wall-clock read time\.Since`
	_ = time.Unix(0, 0).Add(time.Second)
	return t.Unix()
}

func globalRand() int {
	rng := rand.New(rand.NewSource(42)) // seeded constructors are the wanted pattern
	n := rng.Intn(10)
	n += rand.Intn(10)                 // want `global rand\.Intn`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle`
	return n
}

func mapOrder(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	//fungusvet:allow determinism -- order is folded into a commutative sum
	for _, v := range m {
		sum += v
	}
	keys := make([]string, 0, len(m))
	for k := range m { //fungusvet:allow determinism // want `map iteration order` `needs a reason`
		keys = append(keys, k)
	}
	return sum + len(keys)
}
