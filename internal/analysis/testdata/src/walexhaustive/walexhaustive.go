// Package walexhaustive is the fixture for the walexhaustive
// analyzer, written against the real wal.RecType enum so it breaks —
// intentionally — when a record kind is added without updating the
// expectations here.
package walexhaustive

import (
	"errors"
	"fmt"

	"fungusdb/internal/wal"
)

func complete(r wal.Rec) error {
	switch r.Type {
	case wal.RecInsert:
		return nil
	case wal.RecEvict, wal.RecTick:
		return nil
	}
	return errors.New("unreachable")
}

func missingKind(r wal.Rec) error {
	switch r.Type { // want `does not handle RecTick`
	case wal.RecInsert:
		return nil
	case wal.RecEvict:
		return nil
	}
	return nil
}

func missingTwo(r wal.Rec) error {
	switch r.Type { // want `does not handle RecEvict, RecTick`
	case wal.RecInsert:
		return nil
	}
	return nil
}

func defaultErrors(r wal.Rec) error {
	switch r.Type {
	case wal.RecInsert:
		return nil
	default:
		return fmt.Errorf("unknown record %d", r.Type)
	}
}

func defaultPanics(r wal.Rec) {
	switch r.Type {
	case wal.RecEvict:
	default:
		panic("unknown record")
	}
}

func defaultSkips(r wal.Rec) {
	switch r.Type {
	case wal.RecInsert:
	default: // want `default clause .* must return or panic`
		_ = r
	}
}

// A switch over some other uint8-ish type is none of our business.
type notRecType uint8

func unrelated(x notRecType) {
	switch x {
	case 1:
	}
}
