// Package lockdiscipline is the fixture for the lockdiscipline
// analyzer: a miniature core.Table with per-shard mutexes, a
// lock-requiring per-shard entry point and the three blessed calling
// shapes (direct shardMu acquisition, closure acquisition, annotated
// acquires-helper), plus the violation.
package lockdiscipline

import "sync"

type table struct {
	shardMu []sync.RWMutex
	data    [][]int
}

// scanShard reads shard i's rows.
//
//fungusvet:requires shardlock
func (t *table) scanShard(i int) int { return len(t.data[i]) }

// lockAll takes every shard lock on the caller's behalf.
//
//fungusvet:acquires shardlock
func (t *table) lockAll() {
	for i := range t.shardMu {
		t.shardMu[i].Lock()
	}
}

func (t *table) unlockAll() {
	for i := len(t.shardMu) - 1; i >= 0; i-- {
		t.shardMu[i].Unlock()
	}
}

func (t *table) lockedCaller(i int) int {
	t.shardMu[i].RLock()
	defer t.shardMu[i].RUnlock()
	return t.scanShard(i)
}

func (t *table) closureLockedCaller(i int) int {
	n := 0
	func() {
		t.shardMu[i].Lock()
		defer t.shardMu[i].Unlock()
		n = t.scanShard(i)
	}()
	return n
}

func (t *table) helperCaller(i int) int {
	t.lockAll()
	defer t.unlockAll()
	return t.scanShard(i)
}

// annotatedCaller passes the obligation up to its own callers.
//
//fungusvet:requires shardlock
func (t *table) annotatedCaller(i int) int { return t.scanShard(i) + 1 }

func (t *table) nakedCaller(i int) int {
	return t.scanShard(i) // want `scanShard requires the shard lock, but nakedCaller never acquires one`
}

func nakedFunc(t *table) int {
	return t.annotatedCaller(0) // want `annotatedCaller requires the shard lock`
}
