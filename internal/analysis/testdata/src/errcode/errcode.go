// Package errcode is the fixture for the errcode analyzer: a
// miniature internal/server error envelope with the pinned code
// constants, the envelope writer, and the ad-hoc shapes the analyzer
// must reject.
package errcode

import (
	"errors"
	"net/http"
)

const (
	ErrCodeBadRequest = "bad_request"
	ErrCodeExec       = "exec_error"
	looseCode         = "loose_code"
)

type ErrorDetail struct {
	Code    string
	Message string
}

type errorBody struct {
	Error ErrorDetail
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	_ = status
	_ = v
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

func goodHandler(w http.ResponseWriter) {
	writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, errors.New("no rows"))
}

func literalCode(w http.ResponseWriter) {
	writeErr(w, http.StatusBadRequest, "bad_request", errors.New("no rows")) // want `ad-hoc error code "bad_request"`
}

func unpinnedConst(w http.ResponseWriter) {
	writeErr(w, http.StatusBadRequest, looseCode, errors.New("no rows")) // want `ad-hoc error code "loose_code"`
}

func literalEnvelope() ErrorDetail {
	return ErrorDetail{Code: "exec_error", Message: "x"} // want `ad-hoc error code "exec_error"`
}

func positionalEnvelope() ErrorDetail {
	return ErrorDetail{ErrCodeExec, "x"}
}

func positionalLiteral() ErrorDetail {
	return ErrorDetail{"exec_error", "x"} // want `ad-hoc error code "exec_error"`
}

func rawHTTPError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusBadRequest) // want `http\.Error bypasses the error envelope`
}
