// Package analysis is fungusvet's analyzer framework: a deliberately
// small, dependency-free re-implementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus the project's
// annotation conventions. The build environment vendors no third-party
// modules, so the framework loads packages itself (see load.go) with
// nothing but go/ast, go/types and the go command.
//
// The five analyzers in this package turn the engine's correctness
// conventions — determinism of replayed code, WAL record-kind
// exhaustiveness, shard-lock discipline, the stable error-code
// envelope and the fungusdb_ metric catalog — into compile-time
// contracts. docs/ANALYSIS.md documents each invariant and why it
// exists; cmd/fungusvet is the multichecker binary CI runs.
//
// # Annotations
//
// Three comment directives are recognised:
//
//	//fungusvet:allow <analyzer> -- <reason>
//	//fungusvet:requires shardlock
//	//fungusvet:acquires shardlock
//
// "allow" suppresses diagnostics from the named analyzer on the same
// source line (or, for a standalone comment line, the line below it).
// The reason string after "--" is mandatory: an allow without one is
// itself a finding, so every escape hatch in the tree records why it
// is safe.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one fungusvet check. The shape mirrors
// golang.org/x/tools/go/analysis so the pack could migrate to the real
// framework if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //fungusvet:allow annotations.
	Name string
	// Doc is the one-paragraph invariant statement shown by
	// fungusvet's usage text.
	Doc string
	// Run analyses one package. Diagnostics go through pass.Report.
	// Packages are presented in dependency order, so an analyzer that
	// accumulates cross-package facts (lockdiscipline) sees callees
	// before callers.
	Run func(pass *Pass) error
}

// Pass holds one package's syntax and type information for one
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // package import path
	Pkg      *types.Package
	Info     *types.Info
	// ModuleDir is the absolute path of the module root, so analyzers
	// can consult checked-in project files (metricname reads the
	// docs/OBSERVABILITY.md catalog).
	ModuleDir string

	diags  *[]Diagnostic
	allows map[string][]allowDirective // file name -> directives
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// allowDirective is one parsed //fungusvet:allow comment.
type allowDirective struct {
	line     int    // line the directive suppresses
	ownLine  int    // line the comment itself sits on
	analyzer string // analyzer name it names
	reason   string // text after "--", trimmed
	pos      token.Position
}

const allowPrefix = "//fungusvet:allow"

// parseAllows extracts every //fungusvet:allow directive from a file.
// A directive on a line of its own covers the next line; a trailing
// directive covers its own line.
func parseAllows(fset *token.FileSet, file *ast.File) []allowDirective {
	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //fungusvet:allowx
			}
			name, reason := rest, ""
			if i := strings.Index(rest, "--"); i >= 0 {
				name, reason = rest[:i], strings.TrimSpace(rest[i+2:])
			}
			// The analyzer name is the first word; anything further
			// before the "--" (or a missing "--" entirely) leaves the
			// directive reasonless, which is itself reported.
			name = strings.TrimSpace(name)
			if f := strings.Fields(name); len(f) > 0 {
				name = f[0]
			}
			pos := fset.Position(c.Pos())
			d := allowDirective{ownLine: pos.Line, analyzer: name, reason: reason, pos: pos}
			// A comment that starts its line is a standalone directive
			// covering the next line; otherwise it trails the code it
			// covers.
			if isLineStart(fset, file, c) {
				d.line = pos.Line + 1
			} else {
				d.line = pos.Line
			}
			out = append(out, d)
		}
	}
	return out
}

// isLineStart reports whether comment c is the first token on its
// line (no code precedes it).
func isLineStart(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	first := true
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos().IsValid() && n.Pos() < c.Pos() {
			p := fset.Position(n.Pos())
			if p.Line == pos.Line {
				first = false
				return false
			}
		}
		return true
	})
	return first
}

// Report files a diagnostic unless an allow directive suppresses it.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, d := range p.allows[position.Filename] {
		if d.analyzer == p.Analyzer.Name && d.line == position.Line && d.reason != "" {
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// checkAllowDirectives reports allow annotations naming this analyzer
// that carry no reason: the escape hatch is only valid with a recorded
// justification.
func (p *Pass) checkAllowDirectives() {
	for _, dirs := range p.allows {
		for _, d := range dirs {
			if d.analyzer == p.Analyzer.Name && d.reason == "" {
				*p.diags = append(*p.diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: p.Analyzer.Name,
					Message:  `fungusvet:allow needs a reason: "//fungusvet:allow ` + d.analyzer + ` -- <why this is safe>"`,
				})
			}
		}
	}
}

// RunAnalyzers applies every analyzer to every package (packages must
// already be in dependency order, as Load returns them) and returns
// the surviving diagnostics sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := map[string][]allowDirective{}
		for _, f := range pkg.Syntax {
			name := pkg.Fset.Position(f.Pos()).Filename
			allows[name] = append(allows[name], parseAllows(pkg.Fset, f)...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Path:      pkg.Path,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				ModuleDir: pkg.ModuleDir,
				diags:     &diags,
				allows:    allows,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
			pass.checkAllowDirectives()
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// calleeFunc resolves the called function of a call expression to its
// types object, or nil when the callee is dynamic (interface method
// value, func-typed variable, conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namedType unwraps pointers and aliases and returns the named type of
// t, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n
	}
	return nil
}

// docHasDirective reports whether a declaration's doc comment contains
// the given //fungusvet: directive line.
func docHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}
