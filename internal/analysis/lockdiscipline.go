package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The two shard-lock annotations. "requires" marks a per-shard entry
// point (storage.ShardedStore.ScanShardPruned and friends) whose
// caller must hold the owning shard's lock; "acquires" marks a helper
// (core.Table.lockAll/rlockAll) that takes shard locks on the
// caller's behalf.
const (
	requiresShardLock = "//fungusvet:requires shardlock"
	acquiresShardLock = "//fungusvet:acquires shardlock"
)

// shardMuFieldName is the built-in acquisition pattern: a call to
// .Lock/.RLock on an expression mentioning a shardMu field counts as
// taking a shard lock (core.Table keeps its per-shard mutexes in a
// field of that name).
var shardMuFieldName = "shardMu"

// lockFacts carries annotations across packages. The driver presents
// packages in dependency order, so an annotated callee in
// internal/storage is recorded before its callers in internal/core
// are checked — the same flow x/tools facts provide.
type lockFacts struct {
	requires map[string]bool // types.Func.FullName() -> true
	acquires map[string]bool
}

var lockState = &lockFacts{requires: map[string]bool{}, acquires: map[string]bool{}}

// ResetLockFacts clears the cross-package annotation tables; the
// analysistest harness calls it so fixtures run from a clean slate.
func ResetLockFacts() {
	lockState = &lockFacts{requires: map[string]bool{}, acquires: map[string]bool{}}
}

// LockDiscipline enforces the engine's locking model (core/table.go:
// "shardMu[i] guards shard i's store, fungus and RNG"). A function
// annotated //fungusvet:requires shardlock may only be called from a
// function that (a) is itself annotated, (b) visibly takes a shard
// lock (shardMu Lock/RLock anywhere in its body, including closures),
// or (c) calls a helper annotated //fungusvet:acquires shardlock.
// This is the class of cross-shard-access bug PRs 1-3 fixed by hand.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "functions annotated //fungusvet:requires shardlock may only be called while a " +
		"shard lock is held (shardMu Lock/RLock, an //fungusvet:acquires helper, or an annotated caller)",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *Pass) error {
	// Pass 1: harvest this package's annotations before checking any
	// calls, so same-package callee annotations are always visible.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if docHasDirective(fd.Doc, requiresShardLock) {
				lockState.requires[fn.FullName()] = true
			}
			if docHasDirective(fd.Doc, acquiresShardLock) {
				lockState.acquires[fn.FullName()] = true
			}
		}
	}
	// Pass 2: every call to a lock-requiring function must sit inside
	// a declaration that holds (or is documented to hold) a shard
	// lock. The unit is the top-level declaration: an acquisition in
	// an enclosing scope or a sibling closure of the same declaration
	// counts, which matches the fan-out idiom (lock taken inside the
	// per-shard goroutine closure).
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			exempt := fn != nil && lockState.requires[fn.FullName()]
			holds := exempt || declAcquiresShardLock(pass, fd.Body)
			if holds {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				if callee != nil && lockState.requires[callee.FullName()] {
					pass.Report(call.Pos(), "%s requires the shard lock, but %s never acquires one; take shardMu[i], call a //fungusvet:acquires helper, or annotate the caller",
						callee.Name(), fd.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// declAcquiresShardLock reports whether the body contains a visible
// shard-lock acquisition: shardMu…Lock/RLock, or a call to an
// annotated acquires-helper.
func declAcquiresShardLock(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeFunc(pass.Info, call); callee != nil && lockState.acquires[callee.FullName()] {
			found = true
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && mentionsShardMu(sel.X) {
			found = true
			return false
		}
		return true
	})
	return found
}

// mentionsShardMu reports whether the expression's selector/index
// chain contains the shardMu field.
func mentionsShardMu(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == shardMuFieldName {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			return strings.Contains(x.Name, shardMuFieldName)
		default:
			return false
		}
	}
}
