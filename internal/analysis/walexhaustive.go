package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WalRecTypeName names the WAL record-kind enum the exhaustiveness
// check keys on: the type RecType declared in a package whose import
// path ends in WalRecTypePkgSuffix. Exported (with the suffix) so the
// analysistest fixture can declare its own copy of the enum.
var (
	WalRecTypeName      = "RecType"
	WalRecTypePkgSuffix = "internal/wal"
)

// WalExhaustive requires every switch over wal.RecType to either
// handle all declared record kinds or carry a default clause that
// returns or panics. Replay sites (crash recovery, follower apply,
// reshard merge) otherwise skip unknown frames silently, and a new
// record kind — the ROADMAP failover arc will add one — must break
// the build at every replay site rather than corrupt a replica.
var WalExhaustive = &Analyzer{
	Name: "walexhaustive",
	Doc: "every switch on wal.RecType must handle all record kinds or have a default " +
		"that returns or panics, so new record kinds fail loudly at every replay site",
	Run: runWalExhaustive,
}

func runWalExhaustive(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := namedType(pass.Info.TypeOf(sw.Tag))
			if named == nil || named.Obj().Name() != WalRecTypeName ||
				named.Obj().Pkg() == nil || !strings.HasSuffix(named.Obj().Pkg().Path(), WalRecTypePkgSuffix) {
				return true
			}
			checkRecTypeSwitch(pass, sw, named)
			return true
		})
	}
	return nil
}

func checkRecTypeSwitch(pass *Pass, sw *ast.SwitchStmt, named *types.Named) {
	want := recTypeKinds(named)
	handled := map[string]bool{}
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			for name, v := range want {
				if constant.Compare(v, token.EQL, tv.Value) {
					handled[name] = true
				}
			}
		}
	}
	var missing []string
	for name := range want {
		if !handled[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) == 0 {
		return
	}
	if deflt == nil {
		pass.Report(sw.Pos(), "switch on %s.%s does not handle %s and has no default; handle every record kind or add a default that errors",
			named.Obj().Pkg().Name(), WalRecTypeName, strings.Join(missing, ", "))
		return
	}
	if !clauseErrors(deflt) {
		pass.Report(deflt.Pos(), "default clause of a %s.%s switch must return or panic, not skip: unhandled record kinds (%s) would be dropped silently",
			named.Obj().Pkg().Name(), WalRecTypeName, strings.Join(missing, ", "))
	}
}

// recTypeKinds enumerates the declared constants of the enum type,
// keyed by name.
func recTypeKinds(named *types.Named) map[string]constant.Value {
	out := map[string]constant.Value{}
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			out[name] = c.Val()
		}
	}
	return out
}

// clauseErrors reports whether a default clause visibly refuses the
// record: its body contains a return statement or a panic call.
func clauseErrors(cc *ast.CaseClause) bool {
	errors := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				errors = true
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
					errors = true
				}
			case *ast.FuncLit:
				return false // a nested closure's returns do not exit the clause
			}
			return !errors
		})
		if errors {
			return true
		}
	}
	return false
}
