package analysis_test

import (
	"path/filepath"
	"testing"

	"fungusdb/internal/analysis"
	"fungusdb/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	old := analysis.DeterminismPackages
	analysis.DeterminismPackages = append(old, "fixture/determinism")
	t.Cleanup(func() { analysis.DeterminismPackages = old })
	analysistest.Run(t, analysis.Determinism, "determinism")
}

func TestWalExhaustive(t *testing.T) {
	analysistest.Run(t, analysis.WalExhaustive, "walexhaustive")
}

func TestLockDiscipline(t *testing.T) {
	analysis.ResetLockFacts()
	t.Cleanup(analysis.ResetLockFacts)
	analysistest.Run(t, analysis.LockDiscipline, "lockdiscipline")
}

func TestErrcode(t *testing.T) {
	old := analysis.ErrcodePackages
	analysis.ErrcodePackages = append(old, "fixture/errcode")
	t.Cleanup(func() { analysis.ErrcodePackages = old })
	analysistest.Run(t, analysis.Errcode, "errcode")
}

func TestMetricName(t *testing.T) {
	doc, err := filepath.Abs(filepath.Join("testdata", "src", "metricname", "CATALOG.md"))
	if err != nil {
		t.Fatal(err)
	}
	analysis.MetricDocPath = doc
	t.Cleanup(func() { analysis.MetricDocPath = "" })
	analysistest.Run(t, analysis.MetricName, "metricname")
}

// TestLoadRealPackages smoke-tests the loader against the live module:
// the wal package must load, typecheck against export data, and run
// the full analyzer set without loader errors.
func TestLoadRealPackages(t *testing.T) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, []string{"fungusdb/internal/wal"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "fungusdb/internal/wal" {
		t.Fatalf("loaded %d packages, want internal/wal", len(pkgs))
	}
	analysis.ResetLockFacts()
	t.Cleanup(analysis.ResetLockFacts)
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding in clean package: %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}
