// Package analysistest runs one fungusvet analyzer over a fixture
// package and compares its diagnostics against // want comments, the
// same convention golang.org/x/tools/go/analysis/analysistest uses:
//
//	t := time.Now() // want `wall-clock read`
//
// Each want comment carries one or more regexps (backquoted or
// double-quoted); every regexp must match a diagnostic reported on
// that line, and every diagnostic must be claimed by a want. Fixtures
// live under testdata/src/<name>/ and may import real module packages
// (fungusdb/internal/wal, fungusdb/internal/obs, ...), so flagged and
// allowed patterns are written against the genuine types the
// analyzers key on.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fungusdb/internal/analysis"
)

// wantRx pulls the regexp arguments out of a want comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run loads testdata/src/<fixture> as package "fixture/<fixture>",
// applies the analyzer, and checks the diagnostics against the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	moduleDir, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := analysis.LoadFixture(moduleDir, dir, "fixture/"+fixture)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d.Message)
	}
	want := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or be embedded after
				// another directive ("//fungusvet:allow x // want ...").
				idx := strings.Index(c.Text, "// want")
				if idx < 0 {
					continue
				}
				text := c.Text[idx+len("// want"):]
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
					src := m[1]
					if src == "" {
						src = m[2]
					}
					rx, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, src, err)
					}
					want[k] = append(want[k], rx)
				}
			}
		}
	}

	for k, rxs := range want {
		msgs := got[k]
		for _, rx := range rxs {
			matched := -1
			for i, msg := range msgs {
				if msg != "" && rx.MatchString(msg) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no %s diagnostic matching %q (got %s)",
					k.file, k.line, a.Name, rx, describe(msgs))
				continue
			}
			msgs[matched] = "" // each diagnostic satisfies one want
		}
		for _, msg := range msgs {
			if msg != "" {
				t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
			}
		}
		delete(got, k)
	}
	for k, msgs := range got {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, msg)
		}
	}
}

func describe(msgs []string) string {
	if len(msgs) == 0 {
		return "no diagnostics"
	}
	return fmt.Sprintf("%q", msgs)
}
