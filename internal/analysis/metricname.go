package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"

	"fungusdb/internal/obs"
)

// MetricDocPath overrides where the analyzer finds the metric catalog;
// empty means <module>/docs/OBSERVABILITY.md. Exported for the
// analysistest fixtures, which carry their own miniature catalog.
var MetricDocPath = ""

const metricPrefix = "fungusdb_" //fungusvet:allow metricname -- the analyzer's own prefix constant, not a registration

// metricToken matches metric-name-shaped tokens both in source
// literals and in the catalog document.
var metricToken = regexp.MustCompile(`fungusdb_[a-zA-Z0-9_:]+`) //fungusvet:allow metricname -- the catalog token pattern, not a registration

// MetricName pins the observability surface: every metric family the
// code registers (obs.Family literals, obs.NewHistogram calls, and any
// fungusdb_-prefixed name literal feeding a registration helper) must
// carry the fungusdb_ prefix, satisfy the registry's own name grammar
// (obs.ValidName — the same check Gather applies at scrape time), and
// appear in docs/OBSERVABILITY.md's catalog. Catalog drift is caught
// here, statically, instead of by a failing scrape in production.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "obs metric families must be fungusdb_-prefixed, valid per the registry grammar, " +
		"and documented in docs/OBSERVABILITY.md",
	Run: runMetricName,
}

func runMetricName(pass *Pass) error {
	seen := map[token.Pos]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				named := namedType(pass.Info.TypeOf(n))
				if named == nil || named.Obj().Pkg() == nil ||
					!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs") {
					return true
				}
				switch named.Obj().Name() {
				case "Family":
					if e := structFieldExpr(n, "Name", 0); e != nil {
						checkFamilyName(pass, e, seen)
					}
				case "Label":
					if e := structFieldExpr(n, "Name", 0); e != nil {
						checkLabelName(pass, e, seen)
					}
				}
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn != nil && fn.Name() == "NewHistogram" && fn.Pkg() != nil &&
					strings.HasSuffix(fn.Pkg().Path(), "internal/obs") && len(n.Args) > 0 {
					checkFamilyName(pass, n.Args[0], seen)
				}
			}
			return true
		})
	}
	// Catch registrations routed through helpers (the ingest collector
	// builds families from name literals passed to a closure): any
	// remaining fungusdb_-prefixed string literal must still be a
	// valid, documented family name.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || seen[lit.Pos()] {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			if s := constant.StringVal(tv.Value); strings.HasPrefix(s, metricPrefix) {
				reportBadMetricName(pass, lit.Pos(), s)
			}
			return true
		})
	}
	return nil
}

// structFieldExpr returns the value of the named field in a struct
// composite literal, accepting the positional form at index pos.
func structFieldExpr(lit *ast.CompositeLit, name string, pos int) ast.Expr {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == name {
				return kv.Value
			}
			continue
		}
		if i == pos {
			return elt
		}
	}
	return nil
}

func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func markSeen(e ast.Expr, seen map[token.Pos]bool) {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		seen[lit.Pos()] = true
	}
}

func checkFamilyName(pass *Pass, e ast.Expr, seen map[token.Pos]bool) {
	s, ok := constString(pass, e)
	if !ok {
		return // dynamic name: the registry validates it at Gather time
	}
	markSeen(e, seen)
	if !strings.HasPrefix(s, metricPrefix) {
		pass.Report(e.Pos(), "metric family %q lacks the %s prefix every engine metric carries", s, metricPrefix)
		return
	}
	reportBadMetricName(pass, e.Pos(), s)
}

func reportBadMetricName(pass *Pass, pos token.Pos, s string) {
	if !obs.ValidName(s) {
		pass.Report(pos, "metric family %q fails the registry's name grammar; Gather would reject the scrape", s)
		return
	}
	if !metricDocumented(pass, s) {
		pass.Report(pos, "metric family %q is not documented in %s's catalog", s, metricDocRel(pass))
	}
}

func checkLabelName(pass *Pass, e ast.Expr, seen map[token.Pos]bool) {
	s, ok := constString(pass, e)
	if !ok {
		return
	}
	markSeen(e, seen)
	if !obs.ValidName(s) {
		pass.Report(e.Pos(), "label name %q fails the registry's name grammar; Gather would reject the scrape", s)
	}
}

// --- catalog loading -------------------------------------------------

var (
	docMu    sync.Mutex
	docCache = map[string]map[string]bool{}
)

func metricDocRel(pass *Pass) string {
	if MetricDocPath != "" {
		return filepath.Base(MetricDocPath)
	}
	return "docs/OBSERVABILITY.md"
}

func metricDocumented(pass *Pass, name string) bool {
	path := MetricDocPath
	if path == "" {
		path = filepath.Join(pass.ModuleDir, "docs", "OBSERVABILITY.md")
	}
	docMu.Lock()
	defer docMu.Unlock()
	names, ok := docCache[path]
	if !ok {
		names = map[string]bool{}
		if data, err := os.ReadFile(path); err == nil {
			for _, tok := range metricToken.FindAllString(string(data), -1) {
				names[tok] = true
			}
		} else {
			// A missing catalog fails every name loudly rather than
			// letting the check silently pass.
			fmt.Fprintf(os.Stderr, "fungusvet: metricname: cannot read catalog %s: %v\n", path, err)
		}
		docCache[path] = names
	}
	return names[name]
}
