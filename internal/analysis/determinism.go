package analysis

import (
	"go/ast"
	"go/types"
	"slices"
)

// DeterminismPackages lists the replay-reachable import paths: code
// that runs again — on crash recovery or on a replication follower
// re-executing RecTick records — and must therefore be a pure function
// of the WAL stream, the injected clock and the per-shard RNGs.
// Exported so the analysistest harness can point the analyzer at a
// fixture package.
var DeterminismPackages = []string{
	"fungusdb/internal/core",
	"fungusdb/internal/fungus",
	"fungusdb/internal/wal",
	"fungusdb/internal/repl",
}

// forbiddenTimeFuncs are the wall-clock reads. time.Since/Until are
// Now in disguise.
var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors build explicitly-seeded generators — the
// deterministic per-shard pattern the engine wants — and are therefore
// fine; every other package-level math/rand function draws from the
// process-global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism forbids the three classic nondeterminism sources in
// replay-reachable packages: wall-clock reads, the global math/rand
// generators (process-seeded, shared across shards) and map iteration
// (order varies run to run, so anything derived from it — WAL
// encoding order, snapshot serialization, tick application — diverges
// between leader and follower). See docs/ANALYSIS.md.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now, global math/rand and map iteration in replay-reachable packages " +
		"(inject internal/clock, use the table's per-shard RNGs, iterate sorted keys)",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !slices.Contains(DeterminismPackages, pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Report(n.Pos(), "map iteration order is nondeterministic in a replay-reachable package; iterate a sorted key slice (or annotate why order cannot escape)")
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Report(call.Pos(), "wall-clock read time.%s in a replay-reachable package; take a clock.Clock and use logical ticks", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
			pass.Report(call.Pos(), "global %s.%s is seeded per process, not per shard; use the table's injected *rand.Rand", fn.Pkg().Name(), fn.Name())
		}
	}
}
