package analysis

import (
	"go/ast"
	"go/types"
	"slices"
	"strings"
)

// Errcode configuration, exported for the analysistest fixtures. The
// analyzer runs only in ErrcodePackages; within them, every error
// code handed to the envelope (the writeErr helper or an ErrorDetail
// literal, including the NDJSON mid-stream error lines) must be one
// of the pinned ErrCode* constants — clients pattern-match on these
// strings, so an ad-hoc literal is a silent API break.
var (
	ErrcodePackages      = []string{"fungusdb/internal/server"}
	ErrcodeConstPrefix   = "ErrCode"
	ErrcodeWriterName    = "writeErr"
	ErrcodeEnvelopeType  = "ErrorDetail"
	errcodeWriterCodeArg = 2 // writeErr(w, status, code, err)
)

// Errcode keeps the HTTP error envelope's code set closed: handlers
// must emit errors through writeErr (never http.Error) and the code
// must be an ErrCode* constant from internal/server/server.go.
var Errcode = &Analyzer{
	Name: "errcode",
	Doc: "HTTP handlers must emit errors through the envelope writer with a pinned ErrCode* " +
		"constant — no ad-hoc code strings, no http.Error",
	Run: runErrcode,
}

func runErrcode(pass *Pass) error {
	if !slices.Contains(ErrcodePackages, pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrcodeCall(pass, n)
			case *ast.CompositeLit:
				checkEnvelopeLit(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkErrcodeCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error" {
		pass.Report(call.Pos(), "http.Error bypasses the error envelope; use %s with an %s* code", ErrcodeWriterName, ErrcodeConstPrefix)
		return
	}
	if fn.Name() == ErrcodeWriterName && fn.Pkg() == pass.Pkg && len(call.Args) > errcodeWriterCodeArg {
		checkCodeExpr(pass, call.Args[errcodeWriterCodeArg])
	}
}

// checkEnvelopeLit validates ErrorDetail{Code: ...} literals — the
// shape the streaming routes use to write mid-stream error lines.
func checkEnvelopeLit(pass *Pass, lit *ast.CompositeLit) {
	named := namedType(pass.Info.TypeOf(lit))
	if named == nil || named.Obj().Name() != ErrcodeEnvelopeType {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Code" {
				checkCodeExpr(pass, kv.Value)
			}
			continue
		}
		// Positional form: Code is the struct's first field.
		if i == 0 {
			checkCodeExpr(pass, elt)
		}
	}
}

// checkCodeExpr accepts a non-constant expression (the writer helpers
// thread the code through a parameter) and any constant spelled as an
// ErrCode*-named identifier; everything else constant — above all a
// bare string literal — is a finding.
func checkCodeExpr(pass *Pass, e ast.Expr) {
	e = ast.Unparen(e)
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return
	}
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[x.Sel]
	}
	if c, ok := obj.(*types.Const); ok && strings.HasPrefix(c.Name(), ErrcodeConstPrefix) {
		return
	}
	pass.Report(e.Pos(), "ad-hoc error code %s; use one of the pinned %s* constants so the envelope's code set stays closed", tv.Value, ErrcodeConstPrefix)
}
