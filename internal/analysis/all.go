package analysis

// All returns the full fungusvet analyzer pack, in the order findings
// are most useful to read: mechanical invariants first, catalog
// checks last.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		WalExhaustive,
		LockDiscipline,
		Errcode,
		MetricName,
	}
}
