// Package fanout provides the bounded worker pool shared by the engine
// (internal/core) and WAL (internal/wal) layers. It is a leaf package so
// both sides of the core→wal import edge can use one implementation.
package fanout

import (
	"sync"
	"sync/atomic"
)

// Run runs fn(0..n-1) over a bounded pool of at most `workers`
// goroutines and waits for all of them. Every index runs even when an
// earlier one fails; the error returned is the lowest-index one, so
// error selection is deterministic regardless of scheduling. With one
// worker (or one item) everything runs inline on the caller's
// goroutine — a one-shard table pays no synchronisation at all.
func Run(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		// Same contract as the pooled path: every index runs, lowest-
		// index error wins — which work completes must not depend on
		// the worker count.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
