// Package ingest drives data from workload sources into tables: the
// "data ingestion pipeline" the paper names as the place where rotting
// is pre-empted by cooking data "into useful information a.s.a.p."
// (§3).
//
// A Pipeline pulls rows from a Source, batches them, and applies an
// optional Refiner stage that can distill or drop rows before they ever
// reach the extent — cooking at ingestion time. Pipelines run either
// synchronously (Run, used by experiments for determinism) or in the
// background (Start/Stop).
//
// Background ingestion is a bounded-queue producer/consumer: the
// producer claims a shard rotation slot per row and enqueues it into
// that shard's bounded channel, and one flush-on-tick consumer per
// shard drains batches under only that shard's lock. A slow shard
// therefore fills its own queue and exerts backpressure on the source
// (or sheds load, with Config.DropWhenFull) instead of stalling the
// whole pipeline on a contended shard lock.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/obs"
	"fungusdb/internal/tuple"
)

// Source yields rows; workload generators satisfy it. Sources are
// pulled from a single producer goroutine (or the Run caller), so they
// need not be safe for concurrent use.
type Source interface {
	Schema() *tuple.Schema
	Next() []tuple.Value
}

// Refiner inspects a row before insertion. Return keep=false to drop
// the row (it never enters the extent); the Refiner may distill dropped
// rows elsewhere — cooking at the pipeline stage. Refiners run on the
// producer side, before rows are enqueued, so they see source order.
type Refiner interface {
	Refine(row []tuple.Value) (keep bool, err error)
}

// RefinerFunc adapts a function to the Refiner interface.
type RefinerFunc func(row []tuple.Value) (bool, error)

// Refine implements Refiner.
func (f RefinerFunc) Refine(row []tuple.Value) (bool, error) { return f(row) }

// Default background-mode knobs (see Config).
const (
	// DefaultFlushInterval is the consumer flush tick when
	// Config.FlushInterval is zero.
	DefaultFlushInterval = 5 * time.Millisecond
)

// Config parameterises a Pipeline.
type Config struct {
	// BatchSize groups inserts; stats are updated per batch. Must be
	// positive. Background consumers also flush early once a shard has
	// this many rows queued up in its drain buffer.
	BatchSize int
	// Refiner filters/cooks rows before insert. Nil keeps everything.
	Refiner Refiner
	// DistillDropped, when non-empty, names a knowledge container on
	// the table's shelf that absorbs refiner-dropped rows — cooking at
	// the pipeline stage instead of discarding outright. The container
	// never decays (half-life 0).
	DistillDropped string
	// RatePerSecond limits background ingestion (Start). Zero means
	// unthrottled. Ignored by Run, which is driven by explicit counts.
	RatePerSecond float64
	// QueueDepth bounds each shard's pending-row queue in background
	// mode. When a shard's consumer falls behind its queue fills, and
	// the producer either blocks (backpressure, the default) or drops
	// the row (DropWhenFull). 0 means 4×BatchSize.
	QueueDepth int
	// FlushInterval is how often a background consumer drains its
	// shard queue even when the buffered batch is not full, bounding
	// row latency under a trickle load. 0 means DefaultFlushInterval.
	FlushInterval time.Duration
	// DropWhenFull switches the full-queue policy from blocking the
	// source (lossless backpressure) to dropping the incoming row
	// (load shedding, counted in Stats.QueueDropped).
	DropWhenFull bool
}

// Stats reports pipeline progress. All counters are cumulative.
type Stats struct {
	Pulled   uint64 // rows drawn from the source
	Inserted uint64 // rows that reached the extent
	Dropped  uint64 // rows the refiner discarded
	Batches  uint64 // batches inserted into the table
	// Background (Start) mode only:
	Enqueued     uint64 // rows handed to a shard queue
	QueueDropped uint64 // rows shed because their shard queue was full
	Flushes      uint64 // consumer drain rounds that inserted rows
}

// Pipeline connects one Source to one Table. Stats and QueueDepths are
// safe to call from any goroutine; Run, Start and Stop must not be
// called concurrently with each other.
type Pipeline struct {
	mu    sync.Mutex
	src   Source
	tbl   *core.Table
	cfg   Config
	stats Stats

	cancel context.CancelFunc
	done   chan struct{}
	queues []chan []tuple.Value // live only while started
}

// New builds a pipeline. The source schema must equal the table schema.
func New(src Source, tbl *core.Table, cfg Config) (*Pipeline, error) {
	if cfg.BatchSize <= 0 {
		return nil, errors.New("ingest: batch size must be positive")
	}
	if cfg.QueueDepth < 0 {
		return nil, errors.New("ingest: queue depth must be non-negative")
	}
	if !src.Schema().Equal(tbl.Schema()) {
		return nil, fmt.Errorf("ingest: source schema (%s) != table schema (%s)", src.Schema(), tbl.Schema())
	}
	return &Pipeline{src: src, tbl: tbl, cfg: cfg}, nil
}

// Stats returns a snapshot of pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// QueueDepths returns the current number of rows pending in each
// shard's queue (indexed by shard), or nil when the pipeline is not
// running in background mode. Depths are instantaneous and advisory —
// the queues drain concurrently.
func (p *Pipeline) QueueDepths() []int {
	p.mu.Lock()
	queues := p.queues
	p.mu.Unlock()
	if queues == nil {
		return nil
	}
	out := make([]int, len(queues))
	for i, q := range queues {
		out[i] = len(q)
	}
	return out
}

// MetricsCollector exposes the pipeline's counters and per-shard queue
// depths as obs metric families, labelled with the destination table
// name. Register it on the serving registry so /metrics scrapes see
// ingestion pressure alongside the engine counters.
func (p *Pipeline) MetricsCollector(table string) obs.Collector {
	tableLabel := obs.Label{Name: "table", Value: table}
	return obs.CollectorFunc(func() []obs.Family {
		st := p.Stats()
		counter := func(name, help string, v uint64) obs.Family {
			return obs.Family{
				Name: name, Help: help, Kind: obs.KindCounter,
				Samples: []obs.Sample{{Labels: []obs.Label{tableLabel}, Value: float64(v)}},
			}
		}
		fams := []obs.Family{
			counter("fungusdb_ingest_pulled_total", "Rows drawn from the pipeline source.", st.Pulled),
			counter("fungusdb_ingest_inserted_total", "Rows that reached the extent through the pipeline.", st.Inserted),
			counter("fungusdb_ingest_refiner_dropped_total", "Rows the refiner discarded before insertion.", st.Dropped),
			counter("fungusdb_ingest_batches_total", "Batches inserted into the table.", st.Batches),
			counter("fungusdb_ingest_enqueued_total", "Rows handed to a shard queue in background mode.", st.Enqueued),
			counter("fungusdb_ingest_queue_dropped_total", "Rows shed because their shard queue was full.", st.QueueDropped),
			counter("fungusdb_ingest_flushes_total", "Consumer drain rounds that inserted rows.", st.Flushes),
		}
		depth := obs.Family{
			Name: "fungusdb_ingest_queue_depth",
			Help: "Rows pending in each shard's ingest queue (background mode; absent when stopped).",
			Kind: obs.KindGauge,
		}
		for shard, n := range p.QueueDepths() {
			depth.Samples = append(depth.Samples, obs.Sample{
				Labels: []obs.Label{tableLabel, {Name: "shard", Value: strconv.Itoa(shard)}},
				Value:  float64(n),
			})
		}
		return append(fams, depth)
	})
}

// Run synchronously ingests exactly n rows (before refinement) and
// returns the number actually inserted. Experiments use Run for
// deterministic, clock-independent loading; it bypasses the queues
// entirely.
func (p *Pipeline) Run(n int) (int, error) {
	inserted := 0
	for done := 0; done < n; {
		batch := p.cfg.BatchSize
		if rem := n - done; rem < batch {
			batch = rem
		}
		ins, err := p.runBatch(batch)
		inserted += ins
		if err != nil {
			return inserted, err
		}
		done += batch
	}
	return inserted, nil
}

// pullBatch draws and refines up to batch rows from the source,
// returning the surviving rows, the rows the refiner rejected (only
// collected when DistillDropped is set), batch-local counters, and the
// first refine error. Producer-side only: the source and refiner are
// not synchronised.
func (p *Pipeline) pullBatch(batch int) (rows [][]tuple.Value, rejected []tuple.Tuple, local Stats, err error) {
	rows = make([][]tuple.Value, 0, batch)
	for i := 0; i < batch; i++ {
		row := p.src.Next()
		local.Pulled++
		if p.cfg.Refiner != nil {
			keep, rerr := p.cfg.Refiner.Refine(row)
			if rerr != nil {
				err = fmt.Errorf("ingest: refine: %w", rerr)
				return rows, rejected, local, err
			}
			if !keep {
				if p.cfg.DistillDropped != "" {
					// Dropped rows never get a tuple ID or tick; wrap
					// them ephemerally so the digest can absorb them.
					rejected = append(rejected, tuple.Tuple{Attrs: row, F: tuple.Full})
				}
				local.Dropped++
				continue
			}
		}
		rows = append(rows, row)
	}
	return rows, rejected, local, nil
}

// distillRejected absorbs refiner-rejected rows into the configured
// shelf container.
func (p *Pipeline) distillRejected(rejected []tuple.Tuple) error {
	if len(rejected) == 0 || p.cfg.DistillDropped == "" {
		return nil
	}
	if err := p.tbl.Shelf().Absorb(p.cfg.DistillDropped, 0, 0, rejected); err != nil {
		return fmt.Errorf("ingest: distill dropped: %w", err)
	}
	return nil
}

// addStats folds batch-local counters into the shared stats.
func (p *Pipeline) addStats(local Stats) {
	p.mu.Lock()
	p.stats.Pulled += local.Pulled
	p.stats.Inserted += local.Inserted
	p.stats.Dropped += local.Dropped
	p.stats.Batches += local.Batches
	p.stats.Enqueued += local.Enqueued
	p.stats.QueueDropped += local.QueueDropped
	p.stats.Flushes += local.Flushes
	p.mu.Unlock()
}

// runBatch pulls and refines one batch, then hands the survivors to the
// table as a single shard-routed batch insert: the table groups rows by
// destination shard and takes each shard lock once, instead of the old
// row-at-a-time lock/unlock churn. Pipeline stats are accumulated
// batch-locally and folded in under one lock per batch.
func (p *Pipeline) runBatch(batch int) (int, error) {
	rows, rejected, local, refineErr := p.pullBatch(batch)
	// Flush everything refined before any error surfaces: the source
	// cursor has already advanced past these rows, so dropping them on
	// a refine or distill failure would lose them (the old row-at-a-time
	// pipeline had inserted them by this point). Inserts and dropped-row
	// distillation are independent; attempt both, report the first error.
	var err error
	inserted := 0
	if len(rows) > 0 {
		tps, ierr := p.tbl.InsertBatch(rows)
		if ierr != nil {
			err = fmt.Errorf("ingest: insert: %w", ierr)
			// The batch may be partially applied: count the rows that
			// made it (failed rows come back zero-valued, and a real
			// insert always carries full freshness).
			for _, tp := range tps {
				if tp.F != 0 {
					inserted++
				}
			}
		} else {
			inserted = len(rows)
		}
	}
	if derr := p.distillRejected(rejected); derr != nil && err == nil {
		err = derr
	}
	if err == nil {
		err = refineErr
	}
	local.Inserted = uint64(inserted)
	if err == nil {
		local.Batches = 1
	}
	p.addStats(local)
	return inserted, err
}

// Start launches background ingestion until Stop (or ctx cancellation):
// one producer goroutine pulling, refining and routing rows into
// per-shard bounded queues, plus one consumer goroutine per shard
// draining its queue into the extent in batches, under only its own
// shard lock. It returns an error if the pipeline is already running.
func (p *Pipeline) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return errors.New("ingest: pipeline already running")
	}
	ctx, cancel := context.WithCancel(ctx)
	p.cancel = cancel
	p.done = make(chan struct{})

	depth := p.cfg.QueueDepth
	if depth == 0 {
		depth = 4 * p.cfg.BatchSize
	}
	shards := p.tbl.Shards()
	queues := make([]chan []tuple.Value, shards)
	for i := range queues {
		queues[i] = make(chan []tuple.Value, depth)
	}
	p.queues = queues

	var consumers sync.WaitGroup
	consumers.Add(shards)
	for i := 0; i < shards; i++ {
		go func(i int) {
			defer consumers.Done()
			p.consume(cancel, i, queues[i])
		}(i)
	}

	done := p.done
	go func() {
		defer close(done)
		p.produce(ctx, queues)
		// Closing the queues flushes the consumers out: each drains
		// what is already buffered, inserts it, and exits — enqueued
		// rows are never abandoned on Stop.
		for _, q := range queues {
			close(q)
		}
		consumers.Wait()
		p.mu.Lock()
		p.queues = nil
		p.mu.Unlock()
	}()
	return nil
}

// produce is the source side of background mode: pull and refine a
// batch, claim a shard rotation slot per surviving row, and enqueue it
// into that shard's bounded queue — blocking for backpressure or
// shedding, per Config.DropWhenFull. Runs until ctx is cancelled or
// the source/refiner fails.
func (p *Pipeline) produce(ctx context.Context, queues []chan []tuple.Value) {
	interval := time.Duration(0)
	if p.cfg.RatePerSecond > 0 {
		interval = time.Duration(float64(time.Second) * float64(p.cfg.BatchSize) / p.cfg.RatePerSecond)
	}
	var tick *time.Ticker
	if interval > 0 {
		tick = time.NewTicker(interval)
		defer tick.Stop()
	}
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		rows, rejected, local, refineErr := p.pullBatch(p.cfg.BatchSize)
		for _, row := range rows {
			// Claim the rotation slot at enqueue time, so shard routing
			// follows source arrival order even when consumers drain at
			// different speeds.
			i := p.tbl.NextShard()
			if p.cfg.DropWhenFull {
				select {
				case queues[i] <- row:
					local.Enqueued++
				default:
					local.QueueDropped++
				}
				continue
			}
			select {
			case queues[i] <- row:
				local.Enqueued++
			case <-ctx.Done():
				// Shutting down mid-batch: the remaining pulled rows
				// are shed, and counted, rather than blocked on — but
				// refiner-rejected rows still distill (the synchronous
				// path absorbs them before surfacing any exit, too).
				local.QueueDropped += uint64(len(rows)) - local.Enqueued
				_ = p.distillRejected(rejected)
				p.addStats(local)
				return
			}
		}
		if err := p.distillRejected(rejected); err != nil && refineErr == nil {
			refineErr = err
		}
		p.addStats(local)
		if refineErr != nil {
			return // source/refiner is broken; stop quietly like Run's caller would
		}
		if tick != nil {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}
}

// consume is shard i's drain loop: buffer rows from the queue and
// insert them via Table.InsertShardBatch — under shard i's lock alone —
// whenever the buffer reaches BatchSize or the flush tick fires. On an
// insert error (table closed, schema violation) it cancels the whole
// pipeline, since no future batch can succeed either.
func (p *Pipeline) consume(cancel context.CancelFunc, i int, q <-chan []tuple.Value) {
	flushEvery := p.cfg.FlushInterval
	if flushEvery <= 0 {
		flushEvery = DefaultFlushInterval
	}
	tick := time.NewTicker(flushEvery)
	defer tick.Stop()

	buf := make([][]tuple.Value, 0, p.cfg.BatchSize)
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		tps, err := p.tbl.InsertShardBatch(i, buf)
		var local Stats
		if err != nil {
			for _, tp := range tps {
				if tp.F != 0 {
					local.Inserted++
				}
			}
		} else {
			local.Inserted = uint64(len(buf))
			local.Batches = 1
			local.Flushes = 1
		}
		buf = buf[:0]
		p.addStats(local)
		if err != nil {
			cancel()
			return false
		}
		return true
	}

	for {
		select {
		case row, ok := <-q:
			if !ok {
				flush()
				return
			}
			buf = append(buf, row)
			if len(buf) >= p.cfg.BatchSize {
				if !flush() {
					return
				}
			}
		case <-tick.C:
			if !flush() {
				return
			}
		}
	}
}

// Stop halts background ingestion and waits for the producer and every
// shard consumer to exit; rows already enqueued are drained into the
// table first. It is a no-op when the pipeline is not running.
func (p *Pipeline) Stop() {
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel, p.done = nil, nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}
