// Package ingest drives data from workload sources into tables: the
// "data ingestion pipeline" the paper names as the place where rotting
// is pre-empted by cooking data "into useful information a.s.a.p."
// (§3).
//
// A Pipeline pulls rows from a Source, batches them, and applies an
// optional Refiner stage that can distill or drop rows before they ever
// reach the extent — cooking at ingestion time. Pipelines run either
// synchronously (Run, used by experiments for determinism) or in the
// background (Start/Stop) with rate limiting against real time.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/tuple"
)

// Source yields rows; workload generators satisfy it.
type Source interface {
	Schema() *tuple.Schema
	Next() []tuple.Value
}

// Refiner inspects a row before insertion. Return keep=false to drop
// the row (it never enters the extent); the Refiner may distill dropped
// rows elsewhere — cooking at the pipeline stage.
type Refiner interface {
	Refine(row []tuple.Value) (keep bool, err error)
}

// RefinerFunc adapts a function to the Refiner interface.
type RefinerFunc func(row []tuple.Value) (bool, error)

// Refine implements Refiner.
func (f RefinerFunc) Refine(row []tuple.Value) (bool, error) { return f(row) }

// Config parameterises a Pipeline.
type Config struct {
	// BatchSize groups inserts; stats are updated per batch. Must be
	// positive.
	BatchSize int
	// Refiner filters/cooks rows before insert. Nil keeps everything.
	Refiner Refiner
	// DistillDropped, when non-empty, names a knowledge container on
	// the table's shelf that absorbs refiner-dropped rows — cooking at
	// the pipeline stage instead of discarding outright. The container
	// never decays (half-life 0).
	DistillDropped string
	// RatePerSecond limits background ingestion (Start). Zero means
	// unthrottled. Ignored by Run, which is driven by explicit counts.
	RatePerSecond float64
}

// Stats reports pipeline progress.
type Stats struct {
	Pulled   uint64 // rows drawn from the source
	Inserted uint64 // rows that reached the extent
	Dropped  uint64 // rows the refiner discarded
	Batches  uint64
}

// Pipeline connects one Source to one Table.
type Pipeline struct {
	mu    sync.Mutex
	src   Source
	tbl   *core.Table
	cfg   Config
	stats Stats

	cancel context.CancelFunc
	done   chan struct{}
}

// New builds a pipeline. The source schema must equal the table schema.
func New(src Source, tbl *core.Table, cfg Config) (*Pipeline, error) {
	if cfg.BatchSize <= 0 {
		return nil, errors.New("ingest: batch size must be positive")
	}
	if !src.Schema().Equal(tbl.Schema()) {
		return nil, fmt.Errorf("ingest: source schema (%s) != table schema (%s)", src.Schema(), tbl.Schema())
	}
	return &Pipeline{src: src, tbl: tbl, cfg: cfg}, nil
}

// Stats returns a snapshot of pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Run synchronously ingests exactly n rows (before refinement) and
// returns the number actually inserted. Experiments use Run for
// deterministic, clock-independent loading.
func (p *Pipeline) Run(n int) (int, error) {
	inserted := 0
	for done := 0; done < n; {
		batch := p.cfg.BatchSize
		if rem := n - done; rem < batch {
			batch = rem
		}
		ins, err := p.runBatch(batch)
		inserted += ins
		if err != nil {
			return inserted, err
		}
		done += batch
	}
	return inserted, nil
}

// runBatch pulls and refines one batch, then hands the survivors to the
// table as a single shard-routed batch insert: the table groups rows by
// destination shard and takes each shard lock once, instead of the old
// row-at-a-time lock/unlock churn. Pipeline stats are accumulated
// batch-locally and folded in under one lock per batch.
func (p *Pipeline) runBatch(batch int) (int, error) {
	var local Stats
	rows := make([][]tuple.Value, 0, batch)
	var dropped []tuple.Tuple
	var refineErr error
	for i := 0; i < batch; i++ {
		row := p.src.Next()
		local.Pulled++
		if p.cfg.Refiner != nil {
			keep, rerr := p.cfg.Refiner.Refine(row)
			if rerr != nil {
				refineErr = fmt.Errorf("ingest: refine: %w", rerr)
				break
			}
			if !keep {
				if p.cfg.DistillDropped != "" {
					// Dropped rows never get a tuple ID or tick; wrap
					// them ephemerally so the digest can absorb them.
					dropped = append(dropped, tuple.Tuple{Attrs: row, F: tuple.Full})
				}
				local.Dropped++
				continue
			}
		}
		rows = append(rows, row)
	}
	// Flush everything refined before any error surfaces: the source
	// cursor has already advanced past these rows, so dropping them on
	// a refine or distill failure would lose them (the old row-at-a-time
	// pipeline had inserted them by this point). Inserts and dropped-row
	// distillation are independent; attempt both, report the first error.
	var err error
	inserted := 0
	if len(rows) > 0 {
		tps, ierr := p.tbl.InsertBatch(rows)
		if ierr != nil {
			err = fmt.Errorf("ingest: insert: %w", ierr)
			// The batch may be partially applied: count the rows that
			// made it (failed rows come back zero-valued, and a real
			// insert always carries full freshness).
			for _, tp := range tps {
				if tp.F != 0 {
					inserted++
				}
			}
		} else {
			inserted = len(rows)
		}
	}
	if len(dropped) > 0 {
		if derr := p.tbl.Shelf().Absorb(p.cfg.DistillDropped, 0, 0, dropped); derr != nil && err == nil {
			err = fmt.Errorf("ingest: distill dropped: %w", derr)
		}
	}
	if err == nil {
		err = refineErr
	}
	local.Inserted = uint64(inserted)
	p.mu.Lock()
	p.stats.Pulled += local.Pulled
	p.stats.Inserted += local.Inserted
	p.stats.Dropped += local.Dropped
	if err == nil {
		p.stats.Batches++
	}
	p.mu.Unlock()
	return inserted, err
}

// Start launches background ingestion until Stop (or ctx cancellation).
// It returns an error if the pipeline is already running.
func (p *Pipeline) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return errors.New("ingest: pipeline already running")
	}
	ctx, cancel := context.WithCancel(ctx)
	p.cancel = cancel
	p.done = make(chan struct{})

	interval := time.Duration(0)
	if p.cfg.RatePerSecond > 0 {
		interval = time.Duration(float64(time.Second) * float64(p.cfg.BatchSize) / p.cfg.RatePerSecond)
	}

	go func() {
		defer close(p.done)
		var tick *time.Ticker
		if interval > 0 {
			tick = time.NewTicker(interval)
			defer tick.Stop()
		}
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			if _, err := p.runBatch(p.cfg.BatchSize); err != nil {
				return // table closed or schema violation; stop quietly
			}
			if tick != nil {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
			}
		}
	}()
	return nil
}

// Stop halts background ingestion and waits for the worker to exit. It
// is a no-op when the pipeline is not running.
func (p *Pipeline) Stop() {
	p.mu.Lock()
	cancel, done := p.cancel, p.done
	p.cancel, p.done = nil, nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}
