package ingest

import (
	"context"
	"errors"
	"testing"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/tuple"
	"fungusdb/internal/workload"
)

func newTable(t *testing.T, schema *tuple.Schema) *core.Table {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRunIngestsExactly(t *testing.T) {
	gen := workload.NewIoT(10, 1)
	tbl := newTable(t, gen.Schema())
	p, err := New(gen, tbl, Config{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || tbl.Len() != 100 {
		t.Errorf("inserted %d, table %d", n, tbl.Len())
	}
	st := p.Stats()
	if st.Pulled != 100 || st.Inserted != 100 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Batches != 15 { // 14 full batches of 7 + final 2
		t.Errorf("batches = %d, want 15", st.Batches)
	}
}

func TestRefinerDropsRows(t *testing.T) {
	gen := workload.NewSyslog(4, 2)
	tbl := newTable(t, gen.Schema())
	// Cook at ingestion: drop the chatty severities (6 and 7).
	refiner := RefinerFunc(func(row []tuple.Value) (bool, error) {
		return row[1].AsInt() < 6, nil
	})
	p, err := New(gen, tbl, Config{BatchSize: 50, Refiner: refiner})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Pulled != 1000 {
		t.Errorf("pulled %d", st.Pulled)
	}
	if st.Inserted+st.Dropped != 1000 {
		t.Errorf("inserted %d + dropped %d != 1000", st.Inserted, st.Dropped)
	}
	if st.Dropped < 700 { // ~85% of syslog is severity >= 6
		t.Errorf("dropped only %d chatty rows", st.Dropped)
	}
	if tbl.Len() != int(st.Inserted) {
		t.Errorf("table %d != inserted %d", tbl.Len(), st.Inserted)
	}
}

func TestDistillDroppedRows(t *testing.T) {
	gen := workload.NewSyslog(4, 9)
	tbl := newTable(t, gen.Schema())
	refiner := RefinerFunc(func(row []tuple.Value) (bool, error) {
		return row[1].AsInt() < 6, nil // keep only the serious lines
	})
	p, err := New(gen, tbl, Config{
		BatchSize:      100,
		Refiner:        refiner,
		DistillDropped: "chatter",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	c := tbl.Shelf().Get("chatter")
	if c == nil {
		t.Fatal("dropped-row container missing")
	}
	if c.Digest.Count() != st.Dropped {
		t.Errorf("container %d != dropped %d", c.Digest.Count(), st.Dropped)
	}
	// The chatter knowledge is queryable even though no chatty row ever
	// entered the extent.
	ndv, err := c.Digest.NDV("host")
	if err != nil {
		t.Fatal(err)
	}
	if ndv < 3 || ndv > 5 {
		t.Errorf("NDV(host) over dropped rows = %d, want ≈4", ndv)
	}
}

func TestRefinerErrorAborts(t *testing.T) {
	gen := workload.NewIoT(5, 3)
	tbl := newTable(t, gen.Schema())
	boom := errors.New("boom")
	p, _ := New(gen, tbl, Config{BatchSize: 10, Refiner: RefinerFunc(func([]tuple.Value) (bool, error) {
		return false, boom
	})})
	if _, err := p.Run(10); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	gen := workload.NewIoT(5, 4)
	tbl := newTable(t, gen.Schema())
	if _, err := New(gen, tbl, Config{BatchSize: 0}); err == nil {
		t.Error("zero batch accepted")
	}
	other := newTable(t, workload.NewSyslog(2, 1).Schema())
	if _, err := New(gen, other, Config{BatchSize: 1}); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestBackgroundStartStop(t *testing.T) {
	gen := workload.NewIoT(5, 5)
	tbl := newTable(t, gen.Schema())
	p, err := New(gen, tbl, Config{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err == nil {
		t.Error("double start accepted")
	}
	deadline := time.After(5 * time.Second)
	for tbl.Len() < 100 {
		select {
		case <-deadline:
			t.Fatalf("background ingest too slow: %d rows", tbl.Len())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	n := tbl.Len()
	time.Sleep(20 * time.Millisecond)
	if tbl.Len() != n {
		t.Error("ingestion continued after Stop")
	}
	p.Stop() // no-op
}

func TestBackgroundRateLimitThrottles(t *testing.T) {
	gen := workload.NewIoT(5, 6)
	tbl := newTable(t, gen.Schema())
	// 1000 rows/s in batches of 10 -> one batch per 10ms.
	p, err := New(gen, tbl, Config{BatchSize: 10, RatePerSecond: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	p.Stop()
	got := tbl.Len()
	// ~100ms at 1000/s is ~100 rows; allow generous scheduling slack
	// but catch an unthrottled burst (which would insert tens of
	// thousands).
	if got > 1000 {
		t.Errorf("rate limiter ineffective: %d rows in 100ms", got)
	}
	if got == 0 {
		t.Error("nothing ingested")
	}
}

func TestBackgroundStopsOnClosedTable(t *testing.T) {
	gen := workload.NewIoT(5, 7)
	tbl := newTable(t, gen.Schema())
	p, _ := New(gen, tbl, Config{BatchSize: 5})
	tbl.Close()
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The worker must exit promptly on insert failure.
	deadline := time.After(2 * time.Second)
	select {
	case <-p.done:
	case <-deadline:
		t.Fatal("worker did not exit after table close")
	}
	p.Stop()
}

func TestContextCancellationStops(t *testing.T) {
	gen := workload.NewIoT(5, 8)
	tbl := newTable(t, gen.Schema())
	p, _ := New(gen, tbl, Config{BatchSize: 10, RatePerSecond: 100})
	ctx, cancel := context.WithCancel(context.Background())
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-p.done:
	case <-time.After(2 * time.Second):
		t.Fatal("worker did not exit on context cancellation")
	}
}
