package ingest

import (
	"context"
	"errors"
	"testing"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
	"fungusdb/internal/workload"
)

func newTable(t *testing.T, schema *tuple.Schema) *core.Table {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRunIngestsExactly(t *testing.T) {
	gen := workload.NewIoT(10, 1)
	tbl := newTable(t, gen.Schema())
	p, err := New(gen, tbl, Config{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	n, err := p.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 || tbl.Len() != 100 {
		t.Errorf("inserted %d, table %d", n, tbl.Len())
	}
	st := p.Stats()
	if st.Pulled != 100 || st.Inserted != 100 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Batches != 15 { // 14 full batches of 7 + final 2
		t.Errorf("batches = %d, want 15", st.Batches)
	}
}

func TestRefinerDropsRows(t *testing.T) {
	gen := workload.NewSyslog(4, 2)
	tbl := newTable(t, gen.Schema())
	// Cook at ingestion: drop the chatty severities (6 and 7).
	refiner := RefinerFunc(func(row []tuple.Value) (bool, error) {
		return row[1].AsInt() < 6, nil
	})
	p, err := New(gen, tbl, Config{BatchSize: 50, Refiner: refiner})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Pulled != 1000 {
		t.Errorf("pulled %d", st.Pulled)
	}
	if st.Inserted+st.Dropped != 1000 {
		t.Errorf("inserted %d + dropped %d != 1000", st.Inserted, st.Dropped)
	}
	if st.Dropped < 700 { // ~85% of syslog is severity >= 6
		t.Errorf("dropped only %d chatty rows", st.Dropped)
	}
	if tbl.Len() != int(st.Inserted) {
		t.Errorf("table %d != inserted %d", tbl.Len(), st.Inserted)
	}
}

func TestDistillDroppedRows(t *testing.T) {
	gen := workload.NewSyslog(4, 9)
	tbl := newTable(t, gen.Schema())
	refiner := RefinerFunc(func(row []tuple.Value) (bool, error) {
		return row[1].AsInt() < 6, nil // keep only the serious lines
	})
	p, err := New(gen, tbl, Config{
		BatchSize:      100,
		Refiner:        refiner,
		DistillDropped: "chatter",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	c := tbl.Shelf().Get("chatter")
	if c == nil {
		t.Fatal("dropped-row container missing")
	}
	if c.Digest.Count() != st.Dropped {
		t.Errorf("container %d != dropped %d", c.Digest.Count(), st.Dropped)
	}
	// The chatter knowledge is queryable even though no chatty row ever
	// entered the extent.
	ndv, err := c.Digest.NDV("host")
	if err != nil {
		t.Fatal(err)
	}
	if ndv < 3 || ndv > 5 {
		t.Errorf("NDV(host) over dropped rows = %d, want ≈4", ndv)
	}
}

func TestRefinerErrorAborts(t *testing.T) {
	gen := workload.NewIoT(5, 3)
	tbl := newTable(t, gen.Schema())
	boom := errors.New("boom")
	p, _ := New(gen, tbl, Config{BatchSize: 10, Refiner: RefinerFunc(func([]tuple.Value) (bool, error) {
		return false, boom
	})})
	if _, err := p.Run(10); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	gen := workload.NewIoT(5, 4)
	tbl := newTable(t, gen.Schema())
	if _, err := New(gen, tbl, Config{BatchSize: 0}); err == nil {
		t.Error("zero batch accepted")
	}
	other := newTable(t, workload.NewSyslog(2, 1).Schema())
	if _, err := New(gen, other, Config{BatchSize: 1}); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestBackgroundStartStop(t *testing.T) {
	gen := workload.NewIoT(5, 5)
	tbl := newTable(t, gen.Schema())
	p, err := New(gen, tbl, Config{BatchSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err == nil {
		t.Error("double start accepted")
	}
	deadline := time.After(5 * time.Second)
	for tbl.Len() < 100 {
		select {
		case <-deadline:
			t.Fatalf("background ingest too slow: %d rows", tbl.Len())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	n := tbl.Len()
	time.Sleep(20 * time.Millisecond)
	if tbl.Len() != n {
		t.Error("ingestion continued after Stop")
	}
	p.Stop() // no-op
}

func TestBackgroundRateLimitThrottles(t *testing.T) {
	gen := workload.NewIoT(5, 6)
	tbl := newTable(t, gen.Schema())
	// 1000 rows/s in batches of 10 -> one batch per 10ms.
	p, err := New(gen, tbl, Config{BatchSize: 10, RatePerSecond: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	p.Stop()
	got := tbl.Len()
	// ~100ms at 1000/s is ~100 rows; allow generous scheduling slack
	// but catch an unthrottled burst (which would insert tens of
	// thousands).
	if got > 1000 {
		t.Errorf("rate limiter ineffective: %d rows in 100ms", got)
	}
	if got == 0 {
		t.Error("nothing ingested")
	}
}

func TestBackgroundStopsOnClosedTable(t *testing.T) {
	gen := workload.NewIoT(5, 7)
	tbl := newTable(t, gen.Schema())
	p, _ := New(gen, tbl, Config{BatchSize: 5})
	tbl.Close()
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The worker must exit promptly on insert failure.
	deadline := time.After(2 * time.Second)
	select {
	case <-p.done:
	case <-deadline:
		t.Fatal("worker did not exit after table close")
	}
	p.Stop()
}

func TestContextCancellationStops(t *testing.T) {
	gen := workload.NewIoT(5, 8)
	tbl := newTable(t, gen.Schema())
	p, _ := New(gen, tbl, Config{BatchSize: 10, RatePerSecond: 100})
	ctx, cancel := context.WithCancel(context.Background())
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case <-p.done:
	case <-time.After(2 * time.Second):
		t.Fatal("worker did not exit on context cancellation")
	}
}

// --- bounded-queue background mode ------------------------------------

func newShardedTable(t *testing.T, schema *tuple.Schema, shards int) *core.Table {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: schema, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// Stop drains: every row handed to a shard queue is inserted before
// Stop returns, and the counters conserve (pulled = inserted +
// refiner-dropped + queue-shed).
func TestBoundedQueueDrainsOnStop(t *testing.T) {
	gen := workload.NewIoT(5, 11)
	tbl := newShardedTable(t, gen.Schema(), 4)
	p, err := New(gen, tbl, Config{BatchSize: 32, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for tbl.Len() < 500 {
		select {
		case <-deadline:
			t.Fatalf("bounded-queue ingest too slow: %d rows", tbl.Len())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	st := p.Stats()
	if st.Enqueued == 0 {
		t.Fatal("nothing enqueued")
	}
	if st.Inserted != st.Enqueued {
		t.Errorf("inserted %d != enqueued %d (Stop must drain the queues)", st.Inserted, st.Enqueued)
	}
	if got := uint64(tbl.Len()); got != st.Inserted {
		t.Errorf("table %d != inserted %d", got, st.Inserted)
	}
	if st.Pulled != st.Inserted+st.Dropped+st.QueueDropped {
		t.Errorf("conservation broken: pulled %d != inserted %d + dropped %d + shed %d",
			st.Pulled, st.Inserted, st.Dropped, st.QueueDropped)
	}
	if st.Flushes == 0 {
		t.Error("no consumer flushes recorded")
	}
}

// QueueDepths reports one entry per shard while running, nil after.
func TestQueueDepthsLifecycle(t *testing.T) {
	gen := workload.NewIoT(5, 12)
	tbl := newShardedTable(t, gen.Schema(), 3)
	p, err := New(gen, tbl, Config{BatchSize: 16, RatePerSecond: 500})
	if err != nil {
		t.Fatal(err)
	}
	if p.QueueDepths() != nil {
		t.Error("queue depths non-nil before Start")
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.QueueDepths(); len(got) != 3 {
		t.Errorf("queue depths = %v, want 3 entries", got)
	}
	p.Stop()
	if p.QueueDepths() != nil {
		t.Error("queue depths non-nil after Stop")
	}
}

// DropWhenFull sheds instead of blocking: with a strict-durability
// (fsync-per-append) single shard and a one-slot queue, the unthrottled
// producer must overrun the consumer and count drops — while everything
// enqueued still lands.
func TestDropWhenFullShedsLoad(t *testing.T) {
	gen := workload.NewIoT(5, 13)
	db, err := core.Open(core.DBConfig{Seed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("t", core.TableConfig{
		Schema: gen.Schema(), Shards: 1, Persist: true, Durability: wal.DurabilityStrict,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(gen, tbl, Config{BatchSize: 64, QueueDepth: 1, DropWhenFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for p.Stats().QueueDropped == 0 {
		select {
		case <-deadline:
			t.Fatal("drop policy never shed a row")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	st := p.Stats()
	if st.Inserted != st.Enqueued {
		t.Errorf("inserted %d != enqueued %d", st.Inserted, st.Enqueued)
	}
	if st.Pulled != st.Inserted+st.Dropped+st.QueueDropped {
		t.Errorf("conservation broken: %+v", st)
	}
}

// The refiner still runs (producer-side) in background mode, and
// refined-away rows never reach a queue.
func TestBackgroundRefinerRuns(t *testing.T) {
	gen := workload.NewSyslog(4, 14)
	tbl := newShardedTable(t, gen.Schema(), 2)
	refiner := RefinerFunc(func(row []tuple.Value) (bool, error) {
		return row[1].AsInt() < 6, nil
	})
	p, err := New(gen, tbl, Config{BatchSize: 25, Refiner: refiner})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		st := p.Stats()
		if st.Dropped > 50 && st.Inserted > 5 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("refiner starved: %+v", p.Stats())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.Stop()
	st := p.Stats()
	if st.Enqueued+st.Dropped+st.QueueDropped != st.Pulled {
		t.Errorf("refined rows leaked into the queues: %+v", st)
	}
}
