// Package catalog provides the declarative description of tables —
// schema, fungus, decay options — and its JSON persistence. A DB opened
// on a directory with a catalog recreates every table in it, fungi
// included, so a FungusDB instance survives restarts without the
// application re-supplying configuration.
//
// Fungi constructed programmatically (custom Fungus implementations,
// Targeted with a Go-level Matcher) cannot round-trip through JSON;
// the spec language covers every built-in fungus, with Targeted scoped
// by a WHERE clause instead of a function.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

// FungusSpec declaratively describes a fungus. Kind selects the
// constructor; the other fields parameterise it (unused fields are
// ignored). Decorators (refresh, seasonal, targeted) wrap Inner.
type FungusSpec struct {
	Kind string `json:"kind"` // none, ttl, linear, exponential, halflife, egi, quota, staggered, refresh, seasonal, targeted

	Rate     float64 `json:"rate,omitempty"`     // linear, staggered, egi decay
	Lifetime uint64  `json:"lifetime,omitempty"` // ttl
	Factor   float64 `json:"factor,omitempty"`   // exponential
	HalfLife float64 `json:"half_life,omitempty"`
	Seeds    int     `json:"seeds,omitempty"`    // egi
	AgeBias  float64 `json:"age_bias,omitempty"` // egi
	Max      int     `json:"max,omitempty"`      // quota
	Phases   uint64  `json:"phases,omitempty"`   // staggered
	Period   uint64  `json:"period,omitempty"`   // seasonal
	Active   uint64  `json:"active,omitempty"`   // seasonal
	Where    string  `json:"where,omitempty"`    // targeted

	Inner *FungusSpec `json:"inner,omitempty"` // refresh, seasonal, targeted
}

// Build constructs the fungus. The schema is needed for targeted specs,
// whose WHERE clause is compiled against it.
func (s *FungusSpec) Build(schema *tuple.Schema) (fungus.Fungus, error) {
	if s == nil {
		return fungus.Null{}, nil
	}
	inner := func() (fungus.Fungus, error) {
		if s.Inner == nil {
			return nil, fmt.Errorf("catalog: fungus %q needs an inner fungus", s.Kind)
		}
		return s.Inner.Build(schema)
	}
	switch s.Kind {
	case "", "none":
		return fungus.Null{}, nil
	case "ttl":
		if s.Lifetime == 0 {
			return nil, errors.New("catalog: ttl needs a positive lifetime")
		}
		return fungus.TTL{Lifetime: s.Lifetime}, nil
	case "linear":
		if s.Rate <= 0 {
			return nil, errors.New("catalog: linear needs a positive rate")
		}
		return fungus.Linear{Rate: s.Rate}, nil
	case "exponential":
		if s.Factor <= 0 || s.Factor >= 1 {
			return nil, errors.New("catalog: exponential needs factor in (0,1)")
		}
		return fungus.Exponential{Factor: s.Factor}, nil
	case "halflife":
		if s.HalfLife <= 0 {
			return nil, errors.New("catalog: halflife needs positive ticks")
		}
		return fungus.HalfLife(s.HalfLife), nil
	case "egi":
		cfg := fungus.EGIConfig{SeedsPerTick: s.Seeds, DecayRate: s.Rate, AgeBias: s.AgeBias}
		if cfg.SeedsPerTick < 0 || cfg.DecayRate < 0 {
			return nil, errors.New("catalog: egi rates must be non-negative")
		}
		return fungus.NewEGI(cfg), nil
	case "quota":
		if s.Max <= 0 {
			return nil, errors.New("catalog: quota needs a positive max")
		}
		return fungus.Quota{MaxTuples: s.Max}, nil
	case "staggered":
		if s.Rate <= 0 || s.Phases == 0 {
			return nil, errors.New("catalog: staggered needs positive rate and phases")
		}
		return fungus.Staggered{Rate: s.Rate, Phases: s.Phases}, nil
	case "refresh":
		in, err := inner()
		if err != nil {
			return nil, err
		}
		return fungus.AccessRefresh{Inner: in}, nil
	case "seasonal":
		in, err := inner()
		if err != nil {
			return nil, err
		}
		if s.Period == 0 || s.Active == 0 || s.Active > s.Period {
			return nil, errors.New("catalog: seasonal needs 0 < active <= period")
		}
		return fungus.Seasonal{Inner: in, Period: s.Period, Active: s.Active}, nil
	case "targeted":
		in, err := inner()
		if err != nil {
			return nil, err
		}
		pred, err := query.Compile(s.Where, schema)
		if err != nil {
			return nil, fmt.Errorf("catalog: targeted: %w", err)
		}
		return fungus.Targeted{Inner: in, Only: predMatcher{pred}}, nil
	}
	return nil, fmt.Errorf("catalog: unknown fungus kind %q", s.Kind)
}

// predMatcher adapts a query predicate to the fungus.Matcher interface.
type predMatcher struct{ p *query.Predicate }

// Match implements fungus.Matcher.
func (m predMatcher) Match(tp *tuple.Tuple) (bool, error) { return m.p.Match(tp) }

// TableSpec declaratively describes one table.
type TableSpec struct {
	Name   string      `json:"name"`
	Schema string      `json:"schema"` // tuple.ParseSchema format
	Fungus *FungusSpec `json:"fungus,omitempty"`
	// Shards splits the extent into this many independently locked,
	// independently decaying shards (0 and 1 both mean unsharded). The
	// shard count may change across restarts: recovery re-routes every
	// tuple to its owner by ID.
	Shards            int     `json:"shards,omitempty"`
	SegmentSize       int     `json:"segment_size,omitempty"`
	TickEvery         int     `json:"tick_every,omitempty"`
	TouchOnRead       bool    `json:"touch_on_read,omitempty"`
	DistillOnRot      bool    `json:"distill_on_rot,omitempty"`
	ContainerHalfLife float64 `json:"container_half_life,omitempty"`
	CheckpointEvery   int     `json:"checkpoint_every,omitempty"`
	// Durability is the WAL sync level for persistent tables: "none"
	// (buffered, fsync at checkpoint/close), "grouped" (batched
	// group-commit fsync with commit futures) or "strict" (fsync per
	// append). Empty inherits the DB-level default.
	Durability string `json:"durability,omitempty"`
}

// MaxShards bounds TableSpec.Shards: beyond the core count per-shard
// extents stop buying parallelism and only fragment the time axis.
const MaxShards = 1024

// Validate checks the spec without building anything.
func (s *TableSpec) Validate() error {
	if s.Name == "" {
		return errors.New("catalog: table spec needs a name")
	}
	if s.Shards < 0 || s.Shards > MaxShards {
		return fmt.Errorf("catalog: table %q: shards must be in [0, %d]", s.Name, MaxShards)
	}
	if _, err := wal.ParseDurability(s.Durability); err != nil {
		return fmt.Errorf("catalog: table %q: %w", s.Name, err)
	}
	schema, err := tuple.ParseSchema(s.Schema)
	if err != nil {
		return fmt.Errorf("catalog: table %q: %w", s.Name, err)
	}
	if _, err := s.Fungus.Build(schema); err != nil {
		return fmt.Errorf("catalog: table %q: %w", s.Name, err)
	}
	return nil
}

// File is the on-disk catalog: a sorted list of table specs.
const File = "catalog.json"

// Catalog is the set of declaratively created tables of one DB.
type Catalog struct {
	Tables []TableSpec `json:"tables"`
}

// Load reads the catalog from dir. A missing file is an empty catalog.
func Load(dir string) (*Catalog, error) {
	data, err := os.ReadFile(filepath.Join(dir, File))
	if errors.Is(err, os.ErrNotExist) {
		return &Catalog{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: load: %w", err)
	}
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("catalog: parse: %w", err)
	}
	for i := range c.Tables {
		if err := c.Tables[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &c, nil
}

// Save writes the catalog to dir atomically.
func (c *Catalog) Save(dir string) error {
	sort.Slice(c.Tables, func(i, j int) bool { return c.Tables[i].Name < c.Tables[j].Name })
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: marshal: %w", err)
	}
	tmp := filepath.Join(dir, File+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("catalog: save: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, File)); err != nil {
		return fmt.Errorf("catalog: save: %w", err)
	}
	return nil
}

// Put inserts or replaces the spec for its table name.
func (c *Catalog) Put(spec TableSpec) {
	for i := range c.Tables {
		if c.Tables[i].Name == spec.Name {
			c.Tables[i] = spec
			return
		}
	}
	c.Tables = append(c.Tables, spec)
}

// Remove deletes the named spec, reporting whether it existed.
func (c *Catalog) Remove(name string) bool {
	for i := range c.Tables {
		if c.Tables[i].Name == name {
			c.Tables = append(c.Tables[:i], c.Tables[i+1:]...)
			return true
		}
	}
	return false
}
