package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fungusdb/internal/fungus"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

var catSchema = tuple.MustSchema(
	tuple.Column{Name: "sev", Kind: tuple.KindInt},
	tuple.Column{Name: "host", Kind: tuple.KindString},
)

func TestFungusSpecBuildAllKinds(t *testing.T) {
	cases := []struct {
		spec FungusSpec
		name string
	}{
		{FungusSpec{}, "none"},
		{FungusSpec{Kind: "none"}, "none"},
		{FungusSpec{Kind: "ttl", Lifetime: 10}, "ttl"},
		{FungusSpec{Kind: "linear", Rate: 0.1}, "linear"},
		{FungusSpec{Kind: "exponential", Factor: 0.9}, "exponential"},
		{FungusSpec{Kind: "halflife", HalfLife: 7}, "exponential"},
		{FungusSpec{Kind: "egi", Seeds: 2, Rate: 0.1, AgeBias: 2}, "egi"},
		{FungusSpec{Kind: "quota", Max: 100}, "quota(100)"},
		{FungusSpec{Kind: "staggered", Rate: 0.1, Phases: 4}, "staggered(4)"},
		{FungusSpec{Kind: "refresh", Inner: &FungusSpec{Kind: "linear", Rate: 0.1}}, "refresh(linear)"},
		{FungusSpec{Kind: "seasonal", Period: 10, Active: 2, Inner: &FungusSpec{Kind: "ttl", Lifetime: 5}}, "seasonal(ttl,2/10)"},
		{FungusSpec{Kind: "targeted", Where: "sev <= 3", Inner: &FungusSpec{Kind: "linear", Rate: 0.5}}, "targeted(linear)"},
	}
	for _, c := range cases {
		f, err := c.spec.Build(catSchema)
		if err != nil {
			t.Errorf("Build(%+v): %v", c.spec, err)
			continue
		}
		if !strings.HasPrefix(f.Name(), strings.SplitN(c.name, "(", 2)[0]) {
			t.Errorf("Build(%+v).Name() = %q, want prefix of %q", c.spec, f.Name(), c.name)
		}
	}
}

func TestFungusSpecBuildErrors(t *testing.T) {
	bad := []FungusSpec{
		{Kind: "mystery"},
		{Kind: "ttl"},
		{Kind: "linear"},
		{Kind: "linear", Rate: -1},
		{Kind: "exponential", Factor: 1.5},
		{Kind: "halflife"},
		{Kind: "quota"},
		{Kind: "staggered", Rate: 0.1},
		{Kind: "refresh"}, // missing inner
		{Kind: "seasonal", Period: 5, Active: 9, Inner: &FungusSpec{}},
		{Kind: "targeted", Where: "nosuch = 1", Inner: &FungusSpec{}},
		{Kind: "egi", Rate: -1},
	}
	for _, s := range bad {
		if _, err := s.Build(catSchema); err == nil {
			t.Errorf("Build(%+v) accepted", s)
		}
	}
}

func TestTargetedSpecActuallyScopes(t *testing.T) {
	spec := FungusSpec{Kind: "targeted", Where: "sev <= 3", Inner: &FungusSpec{Kind: "linear", Rate: 1.0}}
	f, err := spec.Build(catSchema)
	if err != nil {
		t.Fatal(err)
	}
	s := storage.New(catSchema)
	s.Insert(0, []tuple.Value{tuple.Int(1), tuple.String_("a")})
	s.Insert(0, []tuple.Value{tuple.Int(7), tuple.String_("b")})
	rotten := f.Tick(1, s, nil, nil)
	if len(rotten) != 1 || rotten[0] != 0 {
		t.Errorf("rotten = %v, want [0]", rotten)
	}
}

func TestTableSpecValidate(t *testing.T) {
	good := TableSpec{Name: "logs", Schema: "sev INT, host STRING", Fungus: &FungusSpec{Kind: "ttl", Lifetime: 5}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []TableSpec{
		{Schema: "sev INT"},
		{Name: "x", Schema: "not-a-schema"},
		{Name: "x", Schema: "sev INT", Fungus: &FungusSpec{Kind: "mystery"}},
		{Name: "x", Schema: "sev INT", Fungus: &FungusSpec{Kind: "targeted", Where: "host = 'a'", Inner: &FungusSpec{}}}, // host not in schema
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestCatalogSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := &Catalog{}
	c.Put(TableSpec{Name: "b", Schema: "x INT"})
	c.Put(TableSpec{Name: "a", Schema: "y STRING", Fungus: &FungusSpec{Kind: "egi", Seeds: 1, Rate: 0.1, AgeBias: 2}})
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 2 {
		t.Fatalf("tables = %d", len(got.Tables))
	}
	// Saved sorted by name.
	if got.Tables[0].Name != "a" || got.Tables[1].Name != "b" {
		t.Errorf("order = %v, %v", got.Tables[0].Name, got.Tables[1].Name)
	}
	if got.Tables[0].Fungus.Kind != "egi" || got.Tables[0].Fungus.Seeds != 1 {
		t.Errorf("fungus lost: %+v", got.Tables[0].Fungus)
	}
}

func TestCatalogPutReplaces(t *testing.T) {
	c := &Catalog{}
	c.Put(TableSpec{Name: "t", Schema: "x INT"})
	c.Put(TableSpec{Name: "t", Schema: "x INT, y INT"})
	if len(c.Tables) != 1 || c.Tables[0].Schema != "x INT, y INT" {
		t.Errorf("catalog = %+v", c.Tables)
	}
}

func TestCatalogRemove(t *testing.T) {
	c := &Catalog{}
	c.Put(TableSpec{Name: "t", Schema: "x INT"})
	if !c.Remove("t") {
		t.Error("Remove existing returned false")
	}
	if c.Remove("t") {
		t.Error("Remove missing returned true")
	}
}

func TestLoadMissingAndCorrupt(t *testing.T) {
	c, err := Load(t.TempDir())
	if err != nil || len(c.Tables) != 0 {
		t.Errorf("missing catalog: %v, %d tables", err, len(c.Tables))
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, File), []byte("{broken"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Error("corrupt catalog accepted")
	}
	// Structurally valid JSON but invalid spec.
	os.WriteFile(filepath.Join(dir, File), []byte(`{"tables":[{"name":"x","schema":"bad"}]}`), 0o644)
	if _, err := Load(dir); err == nil {
		t.Error("invalid spec accepted")
	}
}

// Compile-time check that the spec-built targeted fungus satisfies the
// interfaces the engine relies on.
var _ fungus.Fungus = fungus.Targeted{}

func TestTableSpecDurability(t *testing.T) {
	for _, level := range []string{"", "none", "grouped", "strict"} {
		s := TableSpec{Name: "logs", Schema: "sev INT", Durability: level}
		if err := s.Validate(); err != nil {
			t.Errorf("durability %q rejected: %v", level, err)
		}
	}
	bad := TableSpec{Name: "logs", Schema: "sev INT", Durability: "paranoid"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown durability level accepted")
	}

	// The level survives the catalog round trip.
	dir := t.TempDir()
	c := &Catalog{}
	c.Put(TableSpec{Name: "evts", Schema: "x INT", Durability: "grouped"})
	if err := c.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tables[0].Durability != "grouped" {
		t.Errorf("durability lost in round trip: %+v", got.Tables[0])
	}
}
