// Package workload synthesises the data streams the paper's motivation
// names — the "data deluge" of sensors, clicks and logs — plus query
// workloads over them. All generators are deterministic given their
// seed, so experiments are reproducible. See DESIGN.md: these stand in
// for the production traces the paper (a vision piece) does not ship.
package workload

import (
	"fmt"
	"math/rand"

	"fungusdb/internal/tuple"
)

// Generator produces an endless stream of rows for one schema.
type Generator interface {
	// Schema describes the rows produced.
	Schema() *tuple.Schema
	// Next returns the next row. Rows always validate against Schema.
	Next() []tuple.Value
	// Name identifies the workload in reports.
	Name() string
}

// IoT simulates a fleet of sensors: each reading carries the device
// name, a per-device random-walk temperature, a battery level that
// drains slowly, and an alarm flag raised on temperature spikes.
type IoT struct {
	rng     *rand.Rand
	schema  *tuple.Schema
	temps   []float64
	battery []float64
	devices int
}

// NewIoT builds a sensor workload with the given fleet size.
func NewIoT(devices int, seed int64) *IoT {
	if devices <= 0 {
		panic("workload: device count must be positive")
	}
	g := &IoT{
		rng: rand.New(rand.NewSource(seed)),
		schema: tuple.MustSchema(
			tuple.Column{Name: "device", Kind: tuple.KindString},
			tuple.Column{Name: "temp", Kind: tuple.KindFloat},
			tuple.Column{Name: "battery", Kind: tuple.KindFloat},
			tuple.Column{Name: "alarm", Kind: tuple.KindBool},
		),
		temps:   make([]float64, devices),
		battery: make([]float64, devices),
		devices: devices,
	}
	for i := range g.temps {
		g.temps[i] = 15 + g.rng.Float64()*10
		g.battery[i] = 100
	}
	return g
}

// Name implements Generator.
func (g *IoT) Name() string { return "iot" }

// Schema implements Generator.
func (g *IoT) Schema() *tuple.Schema { return g.schema }

// Next implements Generator.
func (g *IoT) Next() []tuple.Value {
	d := g.rng.Intn(g.devices)
	g.temps[d] += g.rng.NormFloat64() * 0.5
	if g.rng.Intn(200) == 0 { // occasional spike
		g.temps[d] += 20
	}
	g.battery[d] -= g.rng.Float64() * 0.01
	if g.battery[d] < 0 {
		g.battery[d] = 100 // battery swapped
	}
	return []tuple.Value{
		tuple.String_(fmt.Sprintf("sensor-%03d", d)),
		tuple.Float(g.temps[d]),
		tuple.Float(g.battery[d]),
		tuple.Bool(g.temps[d] > 40),
	}
}

// Clickstream simulates web traffic: Zipf-distributed users and URLs
// with a dwell time in milliseconds and a conversion flag.
type Clickstream struct {
	rng    *rand.Rand
	schema *tuple.Schema
	users  *rand.Zipf
	urls   *rand.Zipf
}

// NewClickstream builds a click workload over the given population
// sizes. Skew follows Zipf(s=1.2), the classic web-traffic shape.
func NewClickstream(users, urls int, seed int64) *Clickstream {
	if users <= 0 || urls <= 0 {
		panic("workload: population sizes must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	return &Clickstream{
		rng: rng,
		schema: tuple.MustSchema(
			tuple.Column{Name: "user", Kind: tuple.KindString},
			tuple.Column{Name: "url", Kind: tuple.KindString},
			tuple.Column{Name: "dwell_ms", Kind: tuple.KindInt},
			tuple.Column{Name: "converted", Kind: tuple.KindBool},
		),
		users: rand.NewZipf(rng, 1.2, 1, uint64(users-1)),
		urls:  rand.NewZipf(rng, 1.2, 1, uint64(urls-1)),
	}
}

// Name implements Generator.
func (g *Clickstream) Name() string { return "clickstream" }

// Schema implements Generator.
func (g *Clickstream) Schema() *tuple.Schema { return g.schema }

// Next implements Generator.
func (g *Clickstream) Next() []tuple.Value {
	dwell := int64(g.rng.ExpFloat64() * 3000)
	return []tuple.Value{
		tuple.String_(fmt.Sprintf("user-%05d", g.users.Uint64())),
		tuple.String_(fmt.Sprintf("/page/%04d", g.urls.Uint64())),
		tuple.Int(dwell),
		tuple.Bool(g.rng.Intn(50) == 0),
	}
}

// Syslog simulates machine logs: hosts, weighted severities, and a
// status code. Severity 0 is emergency, 7 is debug; the weights skew
// heavily toward the chatty low-importance end, as real logs do.
type Syslog struct {
	rng    *rand.Rand
	schema *tuple.Schema
	hosts  int
}

// NewSyslog builds a log workload over the given host count.
func NewSyslog(hosts int, seed int64) *Syslog {
	if hosts <= 0 {
		panic("workload: host count must be positive")
	}
	return &Syslog{
		rng: rand.New(rand.NewSource(seed)),
		schema: tuple.MustSchema(
			tuple.Column{Name: "host", Kind: tuple.KindString},
			tuple.Column{Name: "severity", Kind: tuple.KindInt},
			tuple.Column{Name: "status", Kind: tuple.KindInt},
			tuple.Column{Name: "msg", Kind: tuple.KindString},
		),
		hosts: hosts,
	}
}

// Name implements Generator.
func (g *Syslog) Name() string { return "syslog" }

// Schema implements Generator.
func (g *Syslog) Schema() *tuple.Schema { return g.schema }

var syslogMessages = []string{
	"connection accepted", "connection closed", "request served",
	"cache miss", "cache hit", "retrying upstream", "disk latency high",
	"auth failure", "config reloaded", "healthcheck ok",
}

// Next implements Generator.
func (g *Syslog) Next() []tuple.Value {
	// Severity: mostly 6-7 (info/debug), rarely 0-3 (serious).
	r := g.rng.Float64()
	var sev int64
	switch {
	case r < 0.55:
		sev = 7
	case r < 0.85:
		sev = 6
	case r < 0.93:
		sev = 5
	case r < 0.97:
		sev = 4
	default:
		sev = int64(g.rng.Intn(4))
	}
	status := int64(200)
	if g.rng.Intn(20) == 0 {
		status = 500
	} else if g.rng.Intn(10) == 0 {
		status = 404
	}
	return []tuple.Value{
		tuple.String_(fmt.Sprintf("host-%02d", g.rng.Intn(g.hosts))),
		tuple.Int(sev),
		tuple.Int(status),
		tuple.String_(syslogMessages[g.rng.Intn(len(syslogMessages))]),
	}
}

// Queries generates WHERE clauses matched to a generator's schema, used
// by the blue-cheese and consume experiments.
type Queries struct {
	rng  *rand.Rand
	kind string
}

// NewQueries builds a query generator for the named workload ("iot",
// "clickstream" or "syslog").
func NewQueries(kind string, seed int64) (*Queries, error) {
	switch kind {
	case "iot", "clickstream", "syslog":
		return &Queries{rng: rand.New(rand.NewSource(seed)), kind: kind}, nil
	}
	return nil, fmt.Errorf("workload: no query generator for %q", kind)
}

// Next returns a WHERE clause. Clauses mix point, range and time-window
// predicates with roughly the selectivity real dashboards have.
func (q *Queries) Next(nowTick uint64) string {
	switch q.kind {
	case "iot":
		switch q.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("device = 'sensor-%03d'", q.rng.Intn(100))
		case 1:
			lo := 10 + q.rng.Float64()*20
			return fmt.Sprintf("temp >= %.1f AND temp < %.1f", lo, lo+5)
		case 2:
			return "alarm"
		default:
			win := uint64(10 + q.rng.Intn(90))
			if win > nowTick {
				win = nowTick
			}
			return fmt.Sprintf("_t >= %d", nowTick-win)
		}
	case "clickstream":
		switch q.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("url = '/page/%04d'", q.rng.Intn(100))
		case 1:
			return "converted"
		default:
			return fmt.Sprintf("dwell_ms > %d", 1000+q.rng.Intn(5000))
		}
	default: // syslog
		switch q.rng.Intn(3) {
		case 0:
			return fmt.Sprintf("severity <= %d", q.rng.Intn(5))
		case 1:
			return "status = 500"
		default:
			return fmt.Sprintf("host = 'host-%02d'", q.rng.Intn(10))
		}
	}
}
