package workload

import (
	"strings"
	"testing"

	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
)

func TestGeneratorsProduceValidRows(t *testing.T) {
	gens := []Generator{
		NewIoT(10, 1),
		NewClickstream(100, 50, 2),
		NewSyslog(8, 3),
	}
	for _, g := range gens {
		t.Run(g.Name(), func(t *testing.T) {
			for i := 0; i < 1000; i++ {
				row := g.Next()
				if err := g.Schema().Validate(row); err != nil {
					t.Fatalf("row %d invalid: %v", i, err)
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, b := NewIoT(5, 42), NewIoT(5, 42)
	for i := 0; i < 100; i++ {
		ra, rb := a.Next(), b.Next()
		for j := range ra {
			if !ra[j].Equal(rb[j]) {
				t.Fatalf("row %d differs at column %d: %v vs %v", i, j, ra[j], rb[j])
			}
		}
	}
	c := NewIoT(5, 43)
	same := true
	for i := 0; i < 20; i++ {
		ra, rc := a.Next(), c.Next()
		for j := range ra {
			if !ra[j].Equal(rc[j]) {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestIoTDeviceNamesBounded(t *testing.T) {
	g := NewIoT(3, 1)
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[g.Next()[0].AsString()] = true
	}
	if len(seen) != 3 {
		t.Errorf("saw %d devices, want 3", len(seen))
	}
	for d := range seen {
		if !strings.HasPrefix(d, "sensor-") {
			t.Errorf("odd device name %q", d)
		}
	}
}

func TestClickstreamSkew(t *testing.T) {
	g := NewClickstream(1000, 1000, 4)
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[g.Next()[1].AsString()]++
	}
	// Zipf: the single hottest URL should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Errorf("hottest URL got %d/5000 hits; expected strong skew", max)
	}
}

func TestSyslogSeverityDistribution(t *testing.T) {
	g := NewSyslog(4, 5)
	var chatty, serious int
	for i := 0; i < 5000; i++ {
		sev := g.Next()[1].AsInt()
		if sev < 0 || sev > 7 {
			t.Fatalf("severity %d out of range", sev)
		}
		if sev >= 6 {
			chatty++
		}
		if sev <= 3 {
			serious++
		}
	}
	if chatty < 3500 {
		t.Errorf("chatty fraction %d/5000 too low", chatty)
	}
	if serious > 500 {
		t.Errorf("serious fraction %d/5000 too high", serious)
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { NewIoT(0, 1) },
		func() { NewClickstream(0, 5, 1) },
		func() { NewClickstream(5, 0, 1) },
		func() { NewSyslog(0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQueriesCompileAgainstSchemas(t *testing.T) {
	for _, kind := range []string{"iot", "clickstream", "syslog"} {
		var schema *tuple.Schema
		switch kind {
		case "iot":
			schema = NewIoT(10, 1).Schema()
		case "clickstream":
			schema = NewClickstream(10, 10, 1).Schema()
		case "syslog":
			schema = NewSyslog(10, 1).Schema()
		}
		q, err := NewQueries(kind, 6)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			src := q.Next(uint64(100 + i))
			if _, err := query.Compile(src, schema); err != nil {
				t.Fatalf("%s query %q does not compile: %v", kind, src, err)
			}
		}
	}
}

func TestQueriesUnknownKind(t *testing.T) {
	if _, err := NewQueries("nosuch", 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestQueriesTimeWindowClamped(t *testing.T) {
	q, _ := NewQueries("iot", 7)
	// With nowTick 0 every generated time-window predicate must clamp
	// to _t >= 0 rather than underflowing.
	for i := 0; i < 100; i++ {
		src := q.Next(0)
		if strings.Contains(src, "_t >= ") && strings.Contains(src, "-") {
			t.Fatalf("underflowed window: %q", src)
		}
	}
}
