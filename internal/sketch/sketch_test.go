package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%d", i)) }

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := MustCountMin(0.01, 0.01)
	truth := map[int]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := rng.Intn(500)
		truth[k]++
		cm.Add(key(k))
	}
	for k, want := range truth {
		if got := cm.Estimate(key(k)); got < want {
			t.Fatalf("Estimate(%d) = %d < true %d", k, got, want)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	const eps = 0.01
	cm := MustCountMin(eps, 0.001)
	truth := map[int]uint64{}
	rng := rand.New(rand.NewSource(2))
	const n = 50000
	for i := 0; i < n; i++ {
		k := int(math.Abs(rng.NormFloat64()) * 100)
		truth[k]++
		cm.Add(key(k))
	}
	bad := 0
	for k, want := range truth {
		got := cm.Estimate(key(k))
		if float64(got-want) > eps*float64(n) {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d keys exceeded the eps*N overestimate bound", bad, len(truth))
	}
}

func TestCountMinAddNAndTotal(t *testing.T) {
	cm := MustCountMin(0.1, 0.1)
	cm.AddN(key(1), 10)
	cm.Add(key(1))
	if got := cm.Estimate(key(1)); got < 11 {
		t.Errorf("Estimate = %d, want >= 11", got)
	}
	if cm.Total() != 11 {
		t.Errorf("Total = %d, want 11", cm.Total())
	}
	if cm.Estimate(key(99)) > uint64(float64(cm.Total())) {
		t.Errorf("absent key estimate too large")
	}
}

func TestCountMinMerge(t *testing.T) {
	a := MustCountMin(0.05, 0.05)
	b := MustCountMin(0.05, 0.05)
	a.AddN(key(1), 5)
	b.AddN(key(1), 7)
	b.AddN(key(2), 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(key(1)); got < 12 {
		t.Errorf("merged estimate = %d, want >= 12", got)
	}
	if a.Total() != 15 {
		t.Errorf("merged total = %d, want 15", a.Total())
	}
	c := MustCountMin(0.5, 0.5)
	if err := a.Merge(c); err == nil {
		t.Error("shape-mismatched merge accepted")
	}
}

func TestCountMinValidation(t *testing.T) {
	for _, c := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}} {
		if _, err := NewCountMin(c[0], c[1]); err == nil {
			t.Errorf("NewCountMin(%v, %v) accepted", c[0], c[1])
		}
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 50000} {
		h := MustHLL(12)
		for i := 0; i < n; i++ {
			h.Add(key(i))
		}
		got := float64(h.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		if relErr > 0.06 {
			t.Errorf("n=%d: estimate %v off by %.1f%%", n, got, relErr*100)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := MustHLL(12)
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			h.Add(key(i))
		}
	}
	got := float64(h.Estimate())
	if math.Abs(got-500)/500 > 0.06 {
		t.Errorf("estimate %v for 500 distinct across duplicates", got)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := MustHLL(10), MustHLL(10)
	for i := 0; i < 1000; i++ {
		a.Add(key(i))
		b.Add(key(i + 500)) // 50% overlap
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Estimate())
	if math.Abs(got-1500)/1500 > 0.1 {
		t.Errorf("merged estimate %v, want ≈1500", got)
	}
	c := MustHLL(11)
	if err := a.Merge(c); err == nil {
		t.Error("precision-mismatched merge accepted")
	}
}

func TestHLLValidation(t *testing.T) {
	for _, p := range []uint8{0, 3, 17} {
		if _, err := NewHLL(p); err == nil {
			t.Errorf("NewHLL(%d) accepted", p)
		}
	}
	if h := MustHLL(4); h.Estimate() != 0 {
		t.Error("empty HLL estimate not 0")
	}
}

func TestReservoirUnderfill(t *testing.T) {
	r := MustReservoir(10, rand.New(rand.NewSource(3)))
	for i := 0; i < 5; i++ {
		r.Add(key(i))
	}
	if len(r.Sample()) != 5 || r.Seen() != 5 {
		t.Errorf("sample %d seen %d", len(r.Sample()), r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 100 items should land in a k=10 reservoir with p = 0.1.
	const items, k, trials = 100, 10, 3000
	counts := make([]int, items)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < trials; trial++ {
		r := MustReservoir(k, rng)
		for i := 0; i < items; i++ {
			r.Add(key(i))
		}
		for _, it := range r.Sample() {
			var idx int
			fmt.Sscanf(string(it), "key-%d", &idx)
			counts[idx]++
		}
	}
	want := float64(trials) * float64(k) / float64(items)
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.25 {
			t.Errorf("item %d sampled %d times, want ≈%.0f", i, c, want)
		}
	}
}

func TestReservoirCopiesInput(t *testing.T) {
	r := MustReservoir(2, rand.New(rand.NewSource(5)))
	buf := []byte("mutable")
	r.Add(buf)
	buf[0] = 'X'
	if string(r.Sample()[0]) != "mutable" {
		t.Error("reservoir aliases caller's buffer")
	}
}

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewReservoir(1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := MustHistogram(32)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("Sum = %v", h.Sum())
	}
	if h.Mean() != 50.5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := MustHistogram(64)
	var data []float64
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10000; i++ {
		v := rng.Float64() * 1000
		data = append(data, v)
		h.Add(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := ExactQuantile(data, q)
		if math.Abs(got-want) > 40 { // ~2.5 bucket widths of slack
			t.Errorf("q=%v: got %v, want %v", q, got, want)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("extreme quantiles should be exact min/max")
	}
}

func TestHistogramRangeGrowth(t *testing.T) {
	h := MustHistogram(8)
	h.Add(0)
	h.Add(1000)   // forces upward growth
	h.Add(-1000)  // forces downward growth
	h.Add(999999) // forces many doublings
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if h.Min() != -1000 || h.Max() != 999999 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	counts, lo, hi := h.Buckets()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Errorf("bucket mass = %d, want 4", total)
	}
	if lo > -1000 || hi <= 999999 {
		t.Errorf("range [%v,%v) does not cover data", lo, hi)
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	h := MustHistogram(4)
	h.Add(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN counted")
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, n := range []int{0, 1, 3, -2} {
		if _, err := NewHistogram(n); err == nil {
			t.Errorf("NewHistogram(%d) accepted", n)
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := MustBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(key(i))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContain(key(i)) {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := MustBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(key(i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(key(100000 + i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f, want <= 0.03", rate)
	}
}

func TestBloomValidation(t *testing.T) {
	if _, err := NewBloom(0, 0.01); err == nil {
		t.Error("zero items accepted")
	}
	if _, err := NewBloom(10, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewBloom(10, 1); err == nil {
		t.Error("rate 1 accepted")
	}
}

func TestTopKFindsHeavyHitters(t *testing.T) {
	tk := MustTopK(20)
	rng := rand.New(rand.NewSource(7))
	// 5 heavy keys with ~1000 hits each over ~5500 noise observations.
	for i := 0; i < 5000; i++ {
		tk.Add(key(rng.Intn(5)))
	}
	for i := 0; i < 5500; i++ {
		tk.Add(key(100 + rng.Intn(5000)))
	}
	top := tk.Top(5)
	if len(top) != 5 {
		t.Fatalf("Top(5) returned %d", len(top))
	}
	for _, e := range top {
		var idx int
		fmt.Sscanf(e.Item, "key-%d", &idx)
		if idx >= 5 {
			t.Errorf("noise key %q in top 5", e.Item)
		}
	}
}

func TestTopKGuarantee(t *testing.T) {
	// Space-Saving guarantees est >= true count for tracked items.
	tk := MustTopK(3)
	seq := []int{1, 1, 1, 2, 2, 3, 4, 5, 1, 2}
	truth := map[int]uint64{}
	for _, v := range seq {
		truth[v]++
		tk.Add(key(v))
	}
	for _, e := range tk.Top(3) {
		var idx int
		fmt.Sscanf(e.Item, "key-%d", &idx)
		if e.Count < truth[idx] {
			t.Errorf("item %d estimated %d < true %d", idx, e.Count, truth[idx])
		}
	}
	if tk.Total() != uint64(len(seq)) {
		t.Errorf("Total = %d", tk.Total())
	}
}

func TestTopKDeterministicOrder(t *testing.T) {
	build := func() []Entry {
		tk := MustTopK(10)
		for i := 0; i < 100; i++ {
			tk.Add(key(i % 10))
		}
		return tk.Top(10)
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic Top: %v vs %v", a, b)
		}
	}
}

func TestTopKValidation(t *testing.T) {
	if _, err := NewTopK(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSketchBytesArePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sketches := []interface{ Bytes() int }{
		MustCountMin(0.01, 0.01),
		MustHLL(12),
		MustReservoir(10, rng),
		MustHistogram(32),
		MustBloom(100, 0.01),
		MustTopK(10),
	}
	for i, s := range sketches {
		if s.Bytes() <= 0 {
			t.Errorf("sketch %d reports %d bytes", i, s.Bytes())
		}
	}
}

// Property: count-min estimates are monotone under additional inserts.
func TestQuickCountMinMonotone(t *testing.T) {
	f := func(items []uint8) bool {
		cm := MustCountMin(0.1, 0.1)
		prev := map[uint8]uint64{}
		for _, it := range items {
			before := cm.Estimate([]byte{it})
			if before < prev[it] {
				return false
			}
			cm.Add([]byte{it})
			after := cm.Estimate([]byte{it})
			if after < before+1 {
				return false
			}
			prev[it] = after
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: bloom filters never forget.
func TestQuickBloomNoFalseNegative(t *testing.T) {
	f := func(items [][]byte) bool {
		if len(items) == 0 {
			return true
		}
		b := MustBloom(uint64(len(items)), 0.05)
		for _, it := range items {
			b.Add(it)
		}
		for _, it := range items {
			if !b.MayContain(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
