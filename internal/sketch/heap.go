package sketch

// BoundedHeap keeps the k smallest items seen under a caller-supplied
// ordering, in O(log k) per Push and O(k) memory — the building block
// of the query layer's per-shard ORDER BY top-k push-down. Internally
// it is a max-heap whose root is the current worst survivor, so an
// incoming item either evicts the root or is dropped on the spot.
//
// The zero BoundedHeap is not usable; construct with NewBoundedHeap.
// Not safe for concurrent use.
type BoundedHeap[T any] struct {
	k     int
	less  func(a, b T) bool
	items []T
}

// NewBoundedHeap builds a heap retaining the k smallest items by less.
// It panics when k is not positive (a bounded collection of nothing is
// a caller bug, not a state). Storage grows with the items actually
// retained, so a huge k over a small input costs what the input costs,
// not what k would.
func NewBoundedHeap[T any](k int, less func(a, b T) bool) *BoundedHeap[T] {
	if k <= 0 {
		panic("sketch: bounded heap size must be positive")
	}
	prealloc := k
	if prealloc > 1024 {
		prealloc = 1024
	}
	return &BoundedHeap[T]{k: k, less: less, items: make([]T, 0, prealloc)}
}

// Push offers an item, keeping only the k smallest.
func (h *BoundedHeap[T]) Push(x T) {
	if len(h.items) < h.k {
		h.items = append(h.items, x)
		h.siftUp(len(h.items) - 1)
		return
	}
	// Full: admit only if x beats the current worst (the root).
	if h.less(x, h.items[0]) {
		h.items[0] = x
		h.siftDown(0)
	}
}

// Len returns the number of retained items (≤ k).
func (h *BoundedHeap[T]) Len() int { return len(h.items) }

// Cap returns k.
func (h *BoundedHeap[T]) Cap() int { return h.k }

// Items returns the retained items in heap order (no particular
// sorted order). The slice aliases the heap's storage.
func (h *BoundedHeap[T]) Items() []T { return h.items }

func (h *BoundedHeap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// Max-heap on less: parent must not be smaller than child.
		if !h.less(h.items[parent], h.items[i]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *BoundedHeap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		biggest := i
		if l < n && h.less(h.items[biggest], h.items[l]) {
			biggest = l
		}
		if r < n && h.less(h.items[biggest], h.items[r]) {
			biggest = r
		}
		if biggest == i {
			return
		}
		h.items[i], h.items[biggest] = h.items[biggest], h.items[i]
		i = biggest
	}
}
