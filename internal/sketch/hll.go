package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog distinct-value estimator with 2^precision
// registers and the standard bias corrections for the small and large
// ranges.
type HLL struct {
	precision uint8
	registers []uint8
}

// NewHLL builds an estimator. precision must be in [4, 16]; 12 gives a
// typical ~1.6% standard error at 4 KiB.
func NewHLL(precision uint8) (*HLL, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("sketch: HLL precision %d out of [4,16]", precision)
	}
	return &HLL{precision: precision, registers: make([]uint8, 1<<precision)}, nil
}

// MustHLL is NewHLL that panics on error.
func MustHLL(precision uint8) *HLL {
	h, err := NewHLL(precision)
	if err != nil {
		panic(err)
	}
	return h
}

// Add observes item.
func (h *HLL) Add(item []byte) {
	x := fnv64a(0x9E3779B97F4A7C15, item)
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | 1<<(h.precision-1) // guard bit keeps rank bounded
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the approximate number of distinct items added.
func (h *HLL) Estimate() uint64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := hllAlpha(len(h.registers))
	est := alpha * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	// Large-range correction for 64-bit hashing is negligible at our
	// scales and omitted, matching common practice.
	return uint64(est + 0.5)
}

func hllAlpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge folds other into h (register-wise max). Precisions must match.
func (h *HLL) Merge(other *HLL) error {
	if h.precision != other.precision {
		return errors.New("sketch: HLL precision mismatch")
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// Bytes returns the approximate memory footprint.
func (h *HLL) Bytes() int { return len(h.registers) }
