package sketch

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramMergeMoments(t *testing.T) {
	a, b := MustHistogram(32), MustHistogram(32)
	for i := 1; i <= 100; i++ {
		a.Add(float64(i))
	}
	for i := 101; i <= 300; i++ {
		b.Add(float64(i))
	}
	a.Merge(b)
	if a.Count() != 300 {
		t.Errorf("Count = %d", a.Count())
	}
	if a.Sum() != 45150 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.Min() != 1 || a.Max() != 300 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if math.Abs(med-150) > 25 {
		t.Errorf("merged median = %v", med)
	}
}

func TestHistogramMergeEmptySides(t *testing.T) {
	a, b := MustHistogram(8), MustHistogram(8)
	a.Add(5)
	a.Merge(b) // empty other: no change
	if a.Count() != 1 {
		t.Errorf("Count = %d", a.Count())
	}
	empty := MustHistogram(8)
	empty.Merge(a) // empty receiver adopts other's content
	if empty.Count() != 1 || empty.Min() != 5 || empty.Max() != 5 {
		t.Errorf("merge into empty = count %d min %v max %v", empty.Count(), empty.Min(), empty.Max())
	}
}

func TestTopKMergeAddsSharedCounts(t *testing.T) {
	a, b := MustTopK(4), MustTopK(4)
	for i := 0; i < 30; i++ {
		a.Add([]byte("hot"))
	}
	for i := 0; i < 20; i++ {
		b.Add([]byte("hot"))
	}
	b.Add([]byte("cold"))
	a.Merge(b)
	top := a.Top(2)
	if top[0].Item != "hot" || top[0].Count != 50 {
		t.Errorf("top = %v", top)
	}
	if a.Total() != 51 {
		t.Errorf("Total = %d", a.Total())
	}
}

func TestTopKMergeShrinksToK(t *testing.T) {
	a, b := MustTopK(2), MustTopK(2)
	a.Add([]byte("a"))
	a.Add([]byte("b"))
	b.Add([]byte("c"))
	b.Add([]byte("c"))
	b.Add([]byte("d"))
	a.Merge(b)
	if got := len(a.Top(10)); got > 2 {
		t.Errorf("merged holds %d counters, want <= 2", got)
	}
	// The heaviest item survives.
	if a.Top(1)[0].Item != "c" {
		t.Errorf("top after shrink = %v", a.Top(1))
	}
}

func TestBloomMerge(t *testing.T) {
	a := MustBloom(1000, 0.01)
	b := MustBloom(1000, 0.01)
	a.Add([]byte("in-a"))
	b.Add([]byte("in-b"))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.MayContain([]byte("in-a")) || !a.MayContain([]byte("in-b")) {
		t.Error("merged bloom lost members")
	}
	if a.Added() != 2 {
		t.Errorf("Added = %d", a.Added())
	}
	c := MustBloom(10, 0.5)
	if err := a.Merge(c); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestReservoirMergeProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// a saw 100 items of kind 'a'; b saw 900 of kind 'b'. The merged
	// sample should be ~90% b.
	bCount := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a := MustReservoir(20, rng)
		b := MustReservoir(20, rng)
		for i := 0; i < 100; i++ {
			a.Add([]byte{'a'})
		}
		for i := 0; i < 900; i++ {
			b.Add([]byte{'b'})
		}
		a.Merge(b)
		if a.Seen() != 1000 {
			t.Fatalf("Seen = %d", a.Seen())
		}
		for _, it := range a.Sample() {
			if it[0] == 'b' {
				bCount++
			}
		}
	}
	frac := float64(bCount) / float64(trials*20)
	if frac < 0.8 || frac > 0.98 {
		t.Errorf("b fraction = %.3f, want ≈0.9", frac)
	}
}

func TestReservoirMergeEmptySides(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := MustReservoir(4, rng)
	b := MustReservoir(4, rng)
	b.Add([]byte("x"))
	a.Merge(b)
	if a.Seen() != 1 || len(a.Sample()) != 1 {
		t.Errorf("merge into empty: seen %d, sample %d", a.Seen(), len(a.Sample()))
	}
	empty := MustReservoir(4, rng)
	a.Merge(empty)
	if a.Seen() != 1 {
		t.Errorf("merge of empty changed seen: %d", a.Seen())
	}
}
