package sketch

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBoundedHeapKeepsSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 3, 10, 64} {
		for _, n := range []int{0, 1, k, 3 * k, 1000} {
			h := NewBoundedHeap(k, func(a, b int) bool { return a < b })
			vals := make([]int, n)
			for i := range vals {
				vals[i] = rng.Intn(200) // duplicates likely
				h.Push(vals[i])
			}
			want := append([]int(nil), vals...)
			sort.Ints(want)
			if len(want) > k {
				want = want[:k]
			}
			got := append([]int(nil), h.Items()...)
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("k=%d n=%d: kept %d, want %d", k, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d n=%d: kept %v, want %v", k, n, got, want)
				}
			}
			if h.Cap() != k {
				t.Errorf("Cap = %d", h.Cap())
			}
		}
	}
}

func TestBoundedHeapRejectsNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 did not panic")
		}
	}()
	NewBoundedHeap(0, func(a, b int) bool { return a < b })
}
