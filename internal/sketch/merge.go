package sketch

import "errors"

// Merge support for the remaining sketches. Count-min and HLL merges
// are exact (in merge.go's siblings); the structures here merge
// approximately, which is documented per method.

// Merge folds other into h by re-adding other's bucket masses at their
// midpoints. The result is approximate: other's intra-bucket
// distribution is lost, but counts, sums, mins and maxes stay exact.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	counts, lo, hi := other.Buckets()
	width := (hi - lo) / float64(len(counts))
	// Track exact moments, then correct after the bucket replay.
	exactCount := h.count + other.count
	exactSum := h.sum + other.sum
	min, max := h.min, h.max
	if !h.init || other.min < min {
		min = other.min
	}
	if !h.init || other.max > max {
		max = other.max
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		mid := lo + (float64(i)+0.5)*width
		for j := uint64(0); j < c; j++ {
			h.Add(mid)
		}
	}
	h.count = exactCount
	h.sum = exactSum
	h.min = min
	h.max = max
}

// Merge folds other into t: counts for shared items add exactly, and
// the union is re-reduced to k counters. Error bounds loosen to the sum
// of both sketches' bounds.
func (t *TopK) Merge(other *TopK) {
	for item, c := range other.counters {
		if mine, ok := t.counters[item]; ok {
			mine.count += c.count
			mine.err += c.err
			continue
		}
		t.counters[item] = &ssCounter{count: c.count, err: c.err}
	}
	t.total += other.total
	// Shrink back to k by evicting the smallest counters.
	for len(t.counters) > t.k {
		var minKey string
		var minC *ssCounter
		for k2, c := range t.counters {
			if minC == nil || c.count < minC.count || (c.count == minC.count && k2 < minKey) {
				minKey, minC = k2, c
			}
		}
		delete(t.counters, minKey)
	}
}

// Merge folds other into b (bitwise OR). The filters must have the same
// geometry, which holds whenever both were built with the same
// parameters.
func (b *Bloom) Merge(other *Bloom) error {
	if b.nbits != other.nbits || b.k != other.k {
		return errors.New("sketch: bloom geometry mismatch")
	}
	for i := range b.bits {
		b.bits[i] |= other.bits[i]
	}
	b.added += other.added
	return nil
}

// Merge folds other into r with weighted reservoir union: each slot of
// the merged sample is drawn from r's or other's sample with
// probability proportional to the stream sizes they represent. The
// result approximates a uniform sample over the union.
func (r *Reservoir) Merge(other *Reservoir) {
	if other.seen == 0 {
		return
	}
	if r.seen == 0 {
		r.items = append(r.items[:0], other.items...)
		r.seen = other.seen
		return
	}
	total := r.seen + other.seen
	merged := make([][]byte, 0, r.k)
	for i := 0; i < r.k; i++ {
		pickOther := uint64(r.rng.Int63n(int64(total))) < other.seen
		src := r.items
		if pickOther {
			src = other.items
		}
		if len(src) == 0 {
			continue
		}
		merged = append(merged, src[r.rng.Intn(len(src))])
	}
	r.items = merged
	r.seen = total
}
