package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Bloom is a Bloom filter: a compact set membership summary with
// configurable false-positive rate and no false negatives. Distilled
// containers use it to answer "was a tuple like this ever present?"
// after the raw data has rotted away.
type Bloom struct {
	bits  []uint64
	nbits uint64
	k     uint32 // number of hash functions
	added uint64
}

// NewBloom sizes a filter for expectedItems at the target
// falsePositiveRate (both must be positive; rate in (0,1)).
func NewBloom(expectedItems uint64, falsePositiveRate float64) (*Bloom, error) {
	if expectedItems == 0 {
		return nil, fmt.Errorf("sketch: bloom expectedItems must be positive")
	}
	if falsePositiveRate <= 0 || falsePositiveRate >= 1 {
		return nil, fmt.Errorf("sketch: bloom fp rate %v out of (0,1)", falsePositiveRate)
	}
	// Optimal sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := uint64(math.Ceil(-float64(expectedItems) * math.Log(falsePositiveRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(float64(m) / float64(expectedItems) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return &Bloom{
		bits:  make([]uint64, (m+63)/64),
		nbits: m,
		k:     k,
	}, nil
}

// MustBloom is NewBloom that panics on error.
func MustBloom(expectedItems uint64, fpRate float64) *Bloom {
	b, err := NewBloom(expectedItems, fpRate)
	if err != nil {
		panic(err)
	}
	return b
}

// hashes derives the double-hashing pair from one FNV pass: h2 is a
// splitmix64 finalisation of h1 (odd, so the stride cycles every
// position). One pass over the bytes instead of two — this is the
// ingest hot path via the segment zone maps. Persisted filters (the
// zone-map records inside WAL snapshots) bake this bit layout in:
// changing the hash derivation requires bumping the zone blob version
// in internal/storage so stale filters are discarded, not misread.
func hashes(item []byte) (h1, h2 uint64) {
	h1 = fnv64a(0, item)
	return h1, deriveH2(h1)
}

// deriveH2 is the shared splitmix64 finalisation behind hashes and
// hashesString — one implementation, so the byte and string paths
// cannot drift and AddString([s]) always hits Add([]byte(s))'s bits.
func deriveH2(h1 uint64) uint64 {
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) | 1
}

// reduce maps a 64-bit hash onto [0, n) without the division a modulo
// costs (Lemire's multiply-shift: the high word of h×n is uniform when
// h is).
func reduce(h, n uint64) uint64 {
	hi, _ := bits.Mul64(h, n)
	return hi
}

// Add inserts item.
func (b *Bloom) Add(item []byte) {
	h1, h2 := hashes(item)
	for i := uint32(0); i < b.k; i++ {
		pos := reduce(h1+uint64(i)*h2, b.nbits)
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.added++
}

// MayContain reports whether item was possibly added. False means
// definitely not added.
func (b *Bloom) MayContain(item []byte) bool {
	h1, h2 := hashes(item)
	for i := uint32(0); i < b.k; i++ {
		pos := reduce(h1+uint64(i)*h2, b.nbits)
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Added returns the number of Add calls.
func (b *Bloom) Added() uint64 { return b.added }

// AppendTo serialises the filter: nbits, k, added, then the bit words,
// all as uvarints. The layout pairs with BloomFrom.
func (b *Bloom) AppendTo(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, b.nbits)
	dst = binary.AppendUvarint(dst, uint64(b.k))
	dst = binary.AppendUvarint(dst, b.added)
	for _, w := range b.bits {
		dst = binary.AppendUvarint(dst, w)
	}
	return dst
}

// BloomFrom deserialises a filter written by AppendTo, returning it and
// the number of bytes consumed.
func BloomFrom(data []byte) (*Bloom, int, error) {
	pos := 0
	read := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	nbits, ok1 := read()
	k, ok2 := read()
	added, ok3 := read()
	if !ok1 || !ok2 || !ok3 || k == 0 || nbits == 0 {
		return nil, 0, fmt.Errorf("sketch: bloom decode: bad header")
	}
	words := make([]uint64, (nbits+63)/64)
	for i := range words {
		w, ok := read()
		if !ok {
			return nil, 0, fmt.Errorf("sketch: bloom decode: truncated words")
		}
		words[i] = w
	}
	return &Bloom{bits: words, nbits: nbits, k: uint32(k), added: added}, pos, nil
}

// Bytes returns the approximate memory footprint.
func (b *Bloom) Bytes() int { return 8 * len(b.bits) }

// hashesString is hashes for a string key, avoiding the []byte
// conversion on the ingest hot path.
func hashesString(s string) (h1, h2 uint64) {
	h1 = fnv64aString(s)
	return h1, deriveH2(h1)
}

// AddString is Add for a string key. Identical bit positions to
// Add([]byte(s)).
func (b *Bloom) AddString(s string) {
	h1, h2 := hashesString(s)
	for i := uint32(0); i < b.k; i++ {
		pos := reduce(h1+uint64(i)*h2, b.nbits)
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.added++
}

// MayContainString is MayContain for a string key.
func (b *Bloom) MayContainString(s string) bool {
	h1, h2 := hashesString(s)
	for i := uint32(0); i < b.k; i++ {
		pos := reduce(h1+uint64(i)*h2, b.nbits)
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}
