package sketch

import (
	"fmt"
	"math"
)

// Bloom is a Bloom filter: a compact set membership summary with
// configurable false-positive rate and no false negatives. Distilled
// containers use it to answer "was a tuple like this ever present?"
// after the raw data has rotted away.
type Bloom struct {
	bits  []uint64
	nbits uint64
	k     uint32 // number of hash functions
	added uint64
}

// NewBloom sizes a filter for expectedItems at the target
// falsePositiveRate (both must be positive; rate in (0,1)).
func NewBloom(expectedItems uint64, falsePositiveRate float64) (*Bloom, error) {
	if expectedItems == 0 {
		return nil, fmt.Errorf("sketch: bloom expectedItems must be positive")
	}
	if falsePositiveRate <= 0 || falsePositiveRate >= 1 {
		return nil, fmt.Errorf("sketch: bloom fp rate %v out of (0,1)", falsePositiveRate)
	}
	// Optimal sizing: m = -n ln p / (ln 2)^2, k = m/n ln 2.
	m := uint64(math.Ceil(-float64(expectedItems) * math.Log(falsePositiveRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(float64(m) / float64(expectedItems) * math.Ln2))
	if k == 0 {
		k = 1
	}
	return &Bloom{
		bits:  make([]uint64, (m+63)/64),
		nbits: m,
		k:     k,
	}, nil
}

// MustBloom is NewBloom that panics on error.
func MustBloom(expectedItems uint64, fpRate float64) *Bloom {
	b, err := NewBloom(expectedItems, fpRate)
	if err != nil {
		panic(err)
	}
	return b
}

// Add inserts item.
func (b *Bloom) Add(item []byte) {
	h1 := fnv64a(0, item)
	h2 := fnv64a(1, item) | 1 // odd so the stride cycles all positions
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.added++
}

// MayContain reports whether item was possibly added. False means
// definitely not added.
func (b *Bloom) MayContain(item []byte) bool {
	h1 := fnv64a(0, item)
	h2 := fnv64a(1, item) | 1
	for i := uint32(0); i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Added returns the number of Add calls.
func (b *Bloom) Added() uint64 { return b.added }

// Bytes returns the approximate memory footprint.
func (b *Bloom) Bytes() int { return 8 * len(b.bits) }
