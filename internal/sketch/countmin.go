package sketch

import (
	"errors"
	"fmt"
	"math"
)

// CountMin is a count-min sketch: a fixed-size frequency estimator with
// one-sided error. Estimate(x) >= true count, and with probability
// 1-delta the overestimate is at most epsilon * total count.
type CountMin struct {
	width uint32
	depth uint32
	rows  [][]uint64
	total uint64
}

// NewCountMin builds a sketch with the given error bounds: relative
// error epsilon with confidence 1-delta. Both must be in (0, 1).
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: count-min bounds out of range: eps=%v delta=%v", epsilon, delta)
	}
	width := uint32(math.Ceil(math.E / epsilon))
	depth := uint32(math.Ceil(math.Log(1 / delta)))
	if depth == 0 {
		depth = 1
	}
	cm := &CountMin{width: width, depth: depth}
	cm.rows = make([][]uint64, depth)
	for i := range cm.rows {
		cm.rows[i] = make([]uint64, width)
	}
	return cm, nil
}

// MustCountMin is NewCountMin that panics on error.
func MustCountMin(epsilon, delta float64) *CountMin {
	cm, err := NewCountMin(epsilon, delta)
	if err != nil {
		panic(err)
	}
	return cm
}

// Add counts one occurrence of item.
func (c *CountMin) Add(item []byte) { c.AddN(item, 1) }

// AddN counts n occurrences of item.
func (c *CountMin) AddN(item []byte, n uint64) {
	for i := uint32(0); i < c.depth; i++ {
		slot := fnv64a(uint64(i), item) % uint64(c.width)
		c.rows[i][slot] += n
	}
	c.total += n
}

// Estimate returns the estimated count of item (never underestimates).
func (c *CountMin) Estimate(item []byte) uint64 {
	est := uint64(math.MaxUint64)
	for i := uint32(0); i < c.depth; i++ {
		slot := fnv64a(uint64(i), item) % uint64(c.width)
		if c.rows[i][slot] < est {
			est = c.rows[i][slot]
		}
	}
	return est
}

// Total returns the number of additions (with multiplicity).
func (c *CountMin) Total() uint64 { return c.total }

// Merge folds other into c. The sketches must have identical shape.
func (c *CountMin) Merge(other *CountMin) error {
	if c.width != other.width || c.depth != other.depth {
		return errors.New("sketch: count-min shape mismatch")
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += other.rows[i][j]
		}
	}
	c.total += other.total
	return nil
}

// Bytes returns the approximate memory footprint of the sketch.
func (c *CountMin) Bytes() int {
	return int(c.width) * int(c.depth) * 8
}
