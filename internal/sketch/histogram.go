package sketch

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a streaming equi-width histogram over float64 values with
// automatic range growth: when a value falls outside the current range
// the histogram doubles its span (merging adjacent buckets) until the
// value fits, so the bucket count stays fixed while coverage adapts.
type Histogram struct {
	buckets []uint64
	lo, hi  float64 // current covered range, hi > lo once initialised
	count   uint64
	sum     float64
	min     float64
	max     float64
	init    bool
}

// NewHistogram builds a histogram with n buckets (n must be even and
// at least 2, so range doubling can merge pairs cleanly).
func NewHistogram(n int) (*Histogram, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("sketch: histogram needs an even bucket count >= 2, got %d", n)
	}
	return &Histogram{buckets: make([]uint64, n)}, nil
}

// MustHistogram is NewHistogram that panics on error.
func MustHistogram(n int) *Histogram {
	h, err := NewHistogram(n)
	if err != nil {
		panic(err)
	}
	return h
}

// Add observes v. NaN is ignored.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if !h.init {
		h.lo, h.hi = v, v+1 // degenerate unit span around the first value
		h.min, h.max = v, v
		h.init = true
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	for v < h.lo || v >= h.hi {
		h.grow(v)
	}
	idx := int(float64(len(h.buckets)) * (v - h.lo) / (h.hi - h.lo))
	if idx == len(h.buckets) { // v == hi after float rounding
		idx--
	}
	h.buckets[idx]++
	h.count++
	h.sum += v
}

// grow doubles the covered range toward v, merging bucket pairs.
func (h *Histogram) grow(v float64) {
	n := len(h.buckets)
	span := h.hi - h.lo
	merged := make([]uint64, n)
	if v < h.lo {
		// New range [lo-span, hi): old content moves to the upper half.
		for i := 0; i < n; i += 2 {
			merged[n/2+i/2] = h.buckets[i] + h.buckets[i+1]
		}
		h.lo -= span
	} else {
		// New range [lo, hi+span): old content compresses to lower half.
		for i := 0; i < n; i += 2 {
			merged[i/2] = h.buckets[i] + h.buckets[i+1]
		}
		h.hi += span
	}
	h.buckets = merged
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the average observation, or 0 before any Add.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes (exact, not bucketed). They
// return 0 before any Add.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the maximum observed value.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q'th quantile (q in [0,1]) by
// linear interpolation within the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	var cum float64
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			est := h.lo + (float64(i)+frac)*width
			// Clamp into the observed range; bucket edges can stick out.
			return math.Max(h.min, math.Min(h.max, est))
		}
		cum = next
	}
	return h.max
}

// Buckets returns a copy of the current counts along with the covered
// range, for report rendering.
func (h *Histogram) Buckets() (counts []uint64, lo, hi float64) {
	counts = make([]uint64, len(h.buckets))
	copy(counts, h.buckets)
	return counts, h.lo, h.hi
}

// Bytes returns the approximate memory footprint.
func (h *Histogram) Bytes() int { return 8*len(h.buckets) + 64 }

// ExactQuantile is a testing helper: the true q'th quantile of data
// using the same nearest-rank-with-interpolation convention.
func ExactQuantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 < len(sorted) {
		return sorted[i]*(1-frac) + sorted[i+1]*frac
	}
	return sorted[i]
}
