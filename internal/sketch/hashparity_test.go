package sketch

import "testing"

func TestStringHashParity(t *testing.T) {
	for _, s := range []string{"", "a", "sensor-12", "a longer key with spaces", "\x00\xff"} {
		if got, want := fnv64aString(s), fnv64a(0, []byte(s)); got != want {
			t.Errorf("fnv64aString(%q) = %x, fnv64a = %x", s, got, want)
		}
		b := MustBloom(128, 0.01)
		b.AddString(s)
		if !b.MayContain([]byte(s)) || !b.MayContainString(s) {
			t.Errorf("AddString(%q) not visible to byte/string probes", s)
		}
		b2 := MustBloom(128, 0.01)
		b2.Add([]byte(s))
		if !b2.MayContainString(s) {
			t.Errorf("Add(%q) not visible to string probe", s)
		}
	}
}
