package sketch

import (
	"fmt"
	"math/rand"
)

// Reservoir keeps a uniform random sample of up to k observed items
// (Vitter's Algorithm R). It preserves a representative taste of data
// that is about to rot away.
type Reservoir struct {
	k     int
	seen  uint64
	items [][]byte
	rng   *rand.Rand
}

// NewReservoir builds a sampler holding at most k items, driven by the
// given deterministic source.
func NewReservoir(k int, rng *rand.Rand) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sketch: reservoir size %d must be positive", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("sketch: reservoir needs a rand source")
	}
	return &Reservoir{k: k, rng: rng, items: make([][]byte, 0, k)}, nil
}

// MustReservoir is NewReservoir that panics on error.
func MustReservoir(k int, rng *rand.Rand) *Reservoir {
	r, err := NewReservoir(k, rng)
	if err != nil {
		panic(err)
	}
	return r
}

// Add observes one item. The sampler copies the bytes.
func (r *Reservoir) Add(item []byte) {
	r.seen++
	cp := append([]byte(nil), item...)
	if len(r.items) < r.k {
		r.items = append(r.items, cp)
		return
	}
	j := r.rng.Int63n(int64(r.seen))
	if j < int64(r.k) {
		r.items[j] = cp
	}
}

// Seen returns the number of items observed.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Sample returns the current sample. The returned slices are owned by
// the reservoir; callers must not mutate them.
func (r *Reservoir) Sample() [][]byte { return r.items }

// Bytes returns the approximate memory footprint.
func (r *Reservoir) Bytes() int {
	n := 24 * cap(r.items)
	for _, it := range r.items {
		n += len(it)
	}
	return n
}
