// Package sketch provides the summary structures the paper calls
// "(datamining) 'cooking' schemes" (§4): compact, mergeable digests that
// distilled query answers and rotting data are turned into. All sketches
// are stdlib-only, deterministic, and serialisable.
//
// The shared element model is a byte string; internal/container adapts
// tuples onto it.
package sketch

import "encoding/binary"

// fnv64a hashes data with the FNV-1a 64-bit function, parameterised by a
// seed so one input can feed many independent hash rows. We inline the
// function rather than using hash/fnv to avoid an allocation per call.
func fnv64a(seed uint64, data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	// Mix the seed in as if it were an 8-byte prefix.
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	for _, b := range s {
		h ^= uint64(b)
		h *= prime
	}
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return fmix64(h)
}

// fmix64 is the MurmurHash3 finaliser. FNV-1a mixes its low bits well
// but leaves the high bits weakly avalanched for short inputs, which
// breaks HyperLogLog's register indexing (it uses the top bits); the
// finaliser fixes the distribution at negligible cost.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnv64aZeroState is fnv64a's running state after mixing the 8-byte
// zero-seed prefix: the constant starting point of every seed-0 hash,
// hoisted out of the per-string hot path.
var fnv64aZeroState = func() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h *= prime // seed bytes are all zero: the xor is a no-op
	}
	return h
}()

// fnv64aString is seed-0 fnv64a over a string without a []byte
// conversion or the seed-prefix rounds — the zone-map ingest hot path
// calls it once per appended string. Identical output to
// fnv64a(0, []byte(s)).
func fnv64aString(s string) uint64 {
	const prime = 1099511628211
	h := fnv64aZeroState
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return fmix64(h)
}
