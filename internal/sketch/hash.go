// Package sketch provides the summary structures the paper calls
// "(datamining) 'cooking' schemes" (§4): compact, mergeable digests that
// distilled query answers and rotting data are turned into. All sketches
// are stdlib-only, deterministic, and serialisable.
//
// The shared element model is a byte string; internal/container adapts
// tuples onto it.
package sketch

import "encoding/binary"

// fnv64a hashes data with the FNV-1a 64-bit function, parameterised by a
// seed so one input can feed many independent hash rows. We inline the
// function rather than using hash/fnv to avoid an allocation per call.
func fnv64a(seed uint64, data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	// Mix the seed in as if it were an 8-byte prefix.
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seed)
	for _, b := range s {
		h ^= uint64(b)
		h *= prime
	}
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return fmix64(h)
}

// fmix64 is the MurmurHash3 finaliser. FNV-1a mixes its low bits well
// but leaves the high bits weakly avalanched for short inputs, which
// breaks HyperLogLog's register indexing (it uses the top bits); the
// finaliser fixes the distribution at negligible cost.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
