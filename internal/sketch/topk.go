package sketch

import (
	"fmt"
	"sort"
)

// TopK tracks approximate heavy hitters with the Space-Saving algorithm:
// at most k counters, each carrying a count and a maximum possible
// overestimate. Every item with true frequency above Total/k is
// guaranteed to be present.
type TopK struct {
	k        int
	counters map[string]*ssCounter
	total    uint64
}

type ssCounter struct {
	count uint64
	err   uint64 // overestimate upper bound inherited at takeover
}

// NewTopK builds a tracker with at most k counters.
func NewTopK(k int) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sketch: top-k size %d must be positive", k)
	}
	return &TopK{k: k, counters: make(map[string]*ssCounter, k)}, nil
}

// MustTopK is NewTopK that panics on error.
func MustTopK(k int) *TopK {
	t, err := NewTopK(k)
	if err != nil {
		panic(err)
	}
	return t
}

// Add observes item.
func (t *TopK) Add(item []byte) {
	t.total++
	key := string(item)
	if c, ok := t.counters[key]; ok {
		c.count++
		return
	}
	if len(t.counters) < t.k {
		t.counters[key] = &ssCounter{count: 1}
		return
	}
	// Replace the minimum counter, inheriting its count as error bound.
	var minKey string
	var minC *ssCounter
	for k2, c := range t.counters {
		if minC == nil || c.count < minC.count || (c.count == minC.count && k2 < minKey) {
			minKey, minC = k2, c
		}
	}
	delete(t.counters, minKey)
	t.counters[key] = &ssCounter{count: minC.count + 1, err: minC.count}
}

// Entry is one reported heavy hitter.
type Entry struct {
	Item  string
	Count uint64 // estimated count (may overestimate by at most Err)
	Err   uint64
}

// Top returns up to n entries ordered by descending estimated count,
// ties broken by item for determinism.
func (t *TopK) Top(n int) []Entry {
	out := make([]Entry, 0, len(t.counters))
	for k2, c := range t.counters {
		out = append(out, Entry{Item: k2, Count: c.count, Err: c.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Total returns the number of observations.
func (t *TopK) Total() uint64 { return t.total }

// Bytes returns the approximate memory footprint.
func (t *TopK) Bytes() int {
	n := 64 + 48*len(t.counters)
	for k2 := range t.counters {
		n += len(k2)
	}
	return n
}
