// Package metrics measures the health of a decaying relation. The paper
// declares a database "in optimal health condition if you regularly can
// turn rotting portions into summaries for later consumption"; this
// package turns that sentence into numbers: freshness profiles over the
// extent, rot-spot series along the time axis, and a capture-rate health
// score relating knowledge distilled to data lost.
package metrics

import (
	"fmt"
	"strings"

	"fungusdb/internal/tuple"
)

// Scanner is the read-only extent view the profilers need;
// *storage.Store implements it.
type Scanner interface {
	Len() int
	Bytes() int
	Scan(fn func(*tuple.Tuple) bool)
}

// FreshnessProfile summarises the freshness distribution of an extent.
type FreshnessProfile struct {
	Live     int
	Bytes    int
	Mean     float64
	Min      float64
	Infected int
	// Deciles[i] counts tuples with freshness in [i/10, (i+1)/10);
	// fully fresh tuples (f == 1) land in the last bucket.
	Deciles [10]int
}

// Profile scans the extent once and returns its freshness profile.
func Profile(s Scanner) FreshnessProfile {
	p := FreshnessProfile{Live: s.Len(), Bytes: s.Bytes(), Min: 1}
	if p.Live == 0 {
		p.Min = 0
		return p
	}
	var sum float64
	s.Scan(func(tp *tuple.Tuple) bool {
		f := float64(tp.F)
		sum += f
		if f < p.Min {
			p.Min = f
		}
		if tp.Infected {
			p.Infected++
		}
		idx := int(f * 10)
		if idx > 9 {
			idx = 9
		}
		p.Deciles[idx]++
		return true
	})
	p.Mean = sum / float64(p.Live)
	return p
}

// String renders the profile as a one-line report with a sparkline of
// the decile histogram.
func (p FreshnessProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live=%d bytes=%d mean=%.3f min=%.3f infected=%d [", p.Live, p.Bytes, p.Mean, p.Min, p.Infected)
	max := 0
	for _, c := range p.Deciles {
		if c > max {
			max = c
		}
	}
	marks := []byte(" .:-=+*#%@")
	for _, c := range p.Deciles {
		if max == 0 {
			b.WriteByte(' ')
			continue
		}
		b.WriteByte(marks[c*(len(marks)-1)/max])
	}
	b.WriteByte(']')
	return b.String()
}

// TimeBucket is the mean freshness of one slice of the insertion-time
// axis — the series experiment E2 charts to show rot spots.
type TimeBucket struct {
	FromID   tuple.ID // first tuple ID covered (inclusive)
	ToID     tuple.ID // last tuple ID covered (inclusive)
	Live     int
	Dead     int // IDs in range with no live tuple
	Mean     float64
	Min      float64
	Infected int
}

// TimeSeries splits the live extent into n equal ID ranges and profiles
// each, exposing where along the time axis the rot spots sit. Returns
// nil for an empty extent.
func TimeSeries(s Scanner, n int) []TimeBucket {
	if n <= 0 {
		panic("metrics: bucket count must be positive")
	}
	var first, last tuple.ID
	found := false
	s.Scan(func(tp *tuple.Tuple) bool {
		if !found {
			first = tp.ID
			found = true
		}
		last = tp.ID
		return true
	})
	if !found {
		return nil
	}
	span := uint64(last-first) + 1
	if uint64(n) > span {
		n = int(span)
	}
	buckets := make([]TimeBucket, n)
	width := span / uint64(n)
	extra := span % uint64(n)
	cursor := first
	for i := range buckets {
		w := width
		if uint64(i) < extra {
			w++
		}
		buckets[i].FromID = cursor
		buckets[i].ToID = cursor + tuple.ID(w) - 1
		buckets[i].Min = 1
		cursor += tuple.ID(w)
	}
	var sums []float64 = make([]float64, n)
	s.Scan(func(tp *tuple.Tuple) bool {
		// Buckets are contiguous; locate by offset.
		idx := bucketIndex(buckets, tp.ID)
		b := &buckets[idx]
		b.Live++
		f := float64(tp.F)
		sums[idx] += f
		if f < b.Min {
			b.Min = f
		}
		if tp.Infected {
			b.Infected++
		}
		return true
	})
	for i := range buckets {
		b := &buckets[i]
		b.Dead = int(uint64(b.ToID-b.FromID)+1) - b.Live
		if b.Live > 0 {
			b.Mean = sums[i] / float64(b.Live)
		} else {
			b.Min = 0
		}
	}
	return buckets
}

func bucketIndex(buckets []TimeBucket, id tuple.ID) int {
	lo, hi := 0, len(buckets)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if id > buckets[mid].ToID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Counters aggregates lifetime engine events for one table. The engine
// mutates it under its own lock; readers take a copy via a method that
// holds the same lock, so the struct itself carries no synchronisation.
type Counters struct {
	Inserted       uint64
	Rotted         uint64 // evicted because freshness reached zero
	Consumed       uint64 // evicted by consume-mode queries
	DistilledRot   uint64 // rotted tuples captured in a container first
	DistilledQuery uint64 // consumed tuples captured in a container
	Queries        uint64
	Ticks          uint64
}

// CaptureRate returns the fraction of departed tuples that were
// distilled into knowledge before leaving, the paper's health criterion.
// It returns 1 when nothing has departed (a healthy empty history).
func (c Counters) CaptureRate() float64 {
	departed := c.Rotted + c.Consumed
	if departed == 0 {
		return 1
	}
	return float64(c.DistilledRot+c.DistilledQuery) / float64(departed)
}

// LossRate returns 1 - CaptureRate: the fraction of departed tuples
// whose information rotted away uncaptured.
func (c Counters) LossRate() float64 { return 1 - c.CaptureRate() }

// String renders the counters compactly.
func (c Counters) String() string {
	return fmt.Sprintf("ins=%d rot=%d consumed=%d distilled=%d/%d queries=%d ticks=%d capture=%.2f",
		c.Inserted, c.Rotted, c.Consumed, c.DistilledRot+c.DistilledQuery, c.Rotted+c.Consumed, c.Queries, c.Ticks, c.CaptureRate())
}
