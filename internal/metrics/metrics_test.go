package metrics

import (
	"math"
	"strings"
	"testing"

	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

func buildStore(t *testing.T, freshness []float64) *storage.Store {
	t.Helper()
	s := storage.New(tuple.MustSchema(tuple.Column{Name: "n", Kind: tuple.KindInt}), storage.WithSegmentSize(8))
	for i, f := range freshness {
		tp, err := s.Insert(1, []tuple.Value{tuple.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		fv := f
		s.Update(tp.ID, func(x *tuple.Tuple) { x.F = tuple.Freshness(fv) })
	}
	return s
}

func TestProfileEmpty(t *testing.T) {
	s := buildStore(t, nil)
	p := Profile(s)
	if p.Live != 0 || p.Mean != 0 || p.Min != 0 {
		t.Errorf("empty profile = %+v", p)
	}
}

func TestProfileStats(t *testing.T) {
	s := buildStore(t, []float64{1.0, 0.5, 0.25, 0.05})
	s.Update(3, func(tp *tuple.Tuple) { tp.Infected = true })
	p := Profile(s)
	if p.Live != 4 {
		t.Errorf("Live = %d", p.Live)
	}
	if math.Abs(p.Mean-0.45) > 1e-9 {
		t.Errorf("Mean = %v", p.Mean)
	}
	if p.Min != 0.05 {
		t.Errorf("Min = %v", p.Min)
	}
	if p.Infected != 1 {
		t.Errorf("Infected = %d", p.Infected)
	}
	// Deciles: 1.0 -> bucket 9; 0.5 -> 5; 0.25 -> 2; 0.05 -> 0.
	want := [10]int{0: 1, 2: 1, 5: 1, 9: 1}
	if p.Deciles != want {
		t.Errorf("Deciles = %v, want %v", p.Deciles, want)
	}
	if p.Bytes <= 0 {
		t.Error("Bytes not positive")
	}
	str := p.String()
	if !strings.Contains(str, "live=4") || !strings.Contains(str, "[") {
		t.Errorf("String = %q", str)
	}
}

func TestTimeSeriesSplitsEvenly(t *testing.T) {
	fr := make([]float64, 100)
	for i := range fr {
		fr[i] = 1.0
	}
	// Carve a rot spot in IDs 40..59.
	for i := 40; i < 60; i++ {
		fr[i] = 0.1
	}
	s := buildStore(t, fr)
	buckets := TimeSeries(s, 10)
	if len(buckets) != 10 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	for i, b := range buckets {
		if b.Live != 10 {
			t.Errorf("bucket %d Live = %d", i, b.Live)
		}
		if b.Dead != 0 {
			t.Errorf("bucket %d Dead = %d", i, b.Dead)
		}
	}
	// Buckets 4 and 5 hold the spot.
	if buckets[4].Mean > 0.2 || buckets[5].Mean > 0.2 {
		t.Errorf("spot buckets mean = %v, %v", buckets[4].Mean, buckets[5].Mean)
	}
	if buckets[0].Mean != 1 || buckets[9].Mean != 1 {
		t.Errorf("edge buckets mean = %v, %v", buckets[0].Mean, buckets[9].Mean)
	}
}

func TestTimeSeriesCountsDeadRanges(t *testing.T) {
	s := buildStore(t, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	for id := tuple.ID(2); id < 6; id++ {
		s.Evict(id)
	}
	buckets := TimeSeries(s, 2)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Live+buckets[1].Live != 6 {
		t.Errorf("live total = %d", buckets[0].Live+buckets[1].Live)
	}
	if buckets[0].Dead+buckets[1].Dead != 4 {
		t.Errorf("dead total = %d", buckets[0].Dead+buckets[1].Dead)
	}
}

func TestTimeSeriesEmptyAndSmall(t *testing.T) {
	if got := TimeSeries(buildStore(t, nil), 5); got != nil {
		t.Errorf("empty extent buckets = %v", got)
	}
	// More buckets than tuples: shrink to tuple count.
	got := TimeSeries(buildStore(t, []float64{1, 1, 1}), 10)
	if len(got) != 3 {
		t.Errorf("3-tuple extent gave %d buckets", len(got))
	}
}

func TestTimeSeriesPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on n=0")
		}
	}()
	TimeSeries(buildStore(t, []float64{1}), 0)
}

func TestCountersCaptureRate(t *testing.T) {
	var c Counters
	if c.CaptureRate() != 1 {
		t.Errorf("empty capture rate = %v, want 1", c.CaptureRate())
	}
	c = Counters{Rotted: 80, Consumed: 20, DistilledRot: 60, DistilledQuery: 20}
	if got := c.CaptureRate(); got != 0.8 {
		t.Errorf("CaptureRate = %v, want 0.8", got)
	}
	if math.Abs(c.LossRate()-0.2) > 1e-12 {
		t.Errorf("LossRate = %v, want 0.2", c.LossRate())
	}
	if !strings.Contains(c.String(), "capture=0.80") {
		t.Errorf("String = %q", c.String())
	}
}
