package tuple

import (
	"fmt"
	"strings"
)

// Column describes one user attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. The system columns t (insertion
// tick) and f (freshness) are implicit on every relation and never
// appear in a Schema; the query layer exposes them under the reserved
// names "_t" and "_f".
type Schema struct {
	cols  []Column
	index map[string]int
}

// Reserved system column names exposed to predicates.
const (
	SysTick  = "_t"
	SysFresh = "_f"
	SysID    = "_id"
)

// NewSchema builds a schema from columns. Column names must be unique,
// non-empty, and must not collide with the reserved system names.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{
		cols:  make([]Column, len(cols)),
		index: make(map[string]int, len(cols)),
	}
	copy(s.cols, cols)
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("tuple: column %d has empty name", i)
		}
		if c.Name == SysTick || c.Name == SysFresh || c.Name == SysID {
			return nil, fmt.Errorf("tuple: column name %q is reserved", c.Name)
		}
		if c.Kind == KindInvalid {
			return nil, fmt.Errorf("tuple: column %q has invalid kind", c.Name)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and examples.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseSchema parses a compact schema description like
// "device STRING, temp FLOAT, ok BOOL" used by the CLI tools.
func ParseSchema(spec string) (*Schema, error) {
	parts := strings.Split(spec, ",")
	cols := make([]Column, 0, len(parts))
	for _, p := range parts {
		fields := strings.Fields(p)
		if len(fields) != 2 {
			return nil, fmt.Errorf("tuple: bad column spec %q (want \"name KIND\")", strings.TrimSpace(p))
		}
		k, err := ParseKind(fields[1])
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: fields[0], Kind: k})
	}
	return NewSchema(cols...)
}

// Len returns the number of user columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i'th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Index returns the position of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Equal reports whether two schemas have identical column sequences.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema in the ParseSchema format.
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	return b.String()
}

// Validate checks that row values match the schema's kinds and arity.
func (s *Schema) Validate(vals []Value) error {
	if len(vals) != len(s.cols) {
		return fmt.Errorf("tuple: row has %d values, schema %q wants %d", len(vals), s, len(s.cols))
	}
	for i, v := range vals {
		if v.Kind() != s.cols[i].Kind {
			return fmt.Errorf("tuple: column %q wants %s, got %s", s.cols[i].Name, s.cols[i].Kind, v.Kind())
		}
	}
	return nil
}
