package tuple

import (
	"fmt"
	"strings"

	"fungusdb/internal/clock"
)

// Freshness is the paper's f property: a value in (0, 1] while the tuple
// is alive. A tuple whose freshness reaches 0 (or below) is rotten and
// must be discarded from the extent.
type Freshness float64

// Full is the initial freshness of every inserted tuple.
const Full Freshness = 1.0

// Rotten reports whether the freshness has decayed to or past zero.
func (f Freshness) Rotten() bool { return f <= 0 }

// Clamp bounds f into [0, 1]. Values within 1e-9 of zero snap to exactly
// zero, so repeated subtractive decay (1.0 − k·rate) rots on the tick
// arithmetic says it should rather than one tick late on float residue.
func (f Freshness) Clamp() Freshness {
	if f < 1e-9 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// ID identifies a tuple within one relation for its whole lifetime.
// IDs are assigned densely in insertion order, which makes them double
// as positions on the paper's time axis: the "direct neighbours" of a
// tuple under the EGI fungus are the tuples with adjacent IDs.
type ID uint64

// Tuple is one element of a relation extent: R(t, f, A1..An).
type Tuple struct {
	ID    ID
	T     clock.Tick // insertion time, the paper's t
	F     Freshness  // freshness, the paper's f
	Attrs []Value    // user attributes A1..An, positions match the Schema

	// Infected marks the tuple as carrying an active fungus infection
	// (EGI seeds and their neighbours). Uninfected tuples under EGI do
	// not lose freshness; see internal/fungus.
	Infected bool
}

// New returns a fresh tuple with freshness 1.0.
func New(id ID, t clock.Tick, attrs []Value) Tuple {
	return Tuple{ID: id, T: t, F: Full, Attrs: attrs}
}

// Clone returns a deep copy (the attribute slice is copied).
func (tp Tuple) Clone() Tuple {
	out := tp
	out.Attrs = make([]Value, len(tp.Attrs))
	copy(out.Attrs, tp.Attrs)
	return out
}

// Size returns the approximate memory footprint in bytes, for extent
// accounting.
func (tp Tuple) Size() int {
	const header = 8 + 8 + 8 + 1 + 7 + 24 // id + tick + freshness + infected + pad + slice header
	n := header
	for _, v := range tp.Attrs {
		n += v.Size()
	}
	return n
}

// String renders the tuple for debugging: [id@t f=0.83 (v1, v2, ...)].
func (tp Tuple) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%d@%s f=%.3f", tp.ID, tp.T, float64(tp.F))
	if tp.Infected {
		b.WriteString(" infected")
	}
	b.WriteString(" (")
	for i, v := range tp.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(")]")
	return b.String()
}
