package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) round-trip failed: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) round-trip failed: %v", v)
	}
	if v := String_("hi"); v.Kind() != KindString || v.AsString() != "hi" {
		t.Errorf("String_ round-trip failed: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool(true) round-trip failed: %v", v)
	}
	if v := Bool(false); v.AsBool() {
		t.Errorf("Bool(false) round-trip failed: %v", v)
	}
}

func TestValueZeroIsInvalid(t *testing.T) {
	var v Value
	if v.IsValid() {
		t.Error("zero Value should be invalid")
	}
	if v.Kind() != KindInvalid {
		t.Errorf("zero Value kind = %v", v.Kind())
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"AsInt on string", func() { String_("x").AsInt() }},
		{"AsFloat on int", func() { Int(1).AsFloat() }},
		{"AsString on bool", func() { Bool(true).AsString() }},
		{"AsBool on float", func() { Float(1).AsBool() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(3), Float(3.0), 0, true},
		{Float(2.5), Int(3), -1, true},
		{String_("a"), String_("b"), -1, true},
		{String_("b"), String_("b"), 0, true},
		{String_("c"), String_("b"), 1, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{String_("1"), Int(1), 0, false},
		{Bool(true), Int(1), 0, false},
		{Float(math.NaN()), Float(1), 0, false},
	}
	for _, c := range cases {
		cmp, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && cmp != c.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("Int(3) should equal Float(3)")
	}
	if Int(3).Equal(String_("3")) {
		t.Error("Int(3) should not equal String_(\"3\")")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{String_("a\"b"), `"a\"b"`},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, s := range []string{"INT", "int", "FLOAT", "float", "STRING", "string", "BOOL", "bool"} {
		if _, err := ParseKind(s); err != nil {
			t.Errorf("ParseKind(%q) error: %v", s, err)
		}
	}
	if _, err := ParseKind("BLOB"); err == nil {
		t.Error("ParseKind(BLOB) should fail")
	}
}

func TestValueSizeGrowsWithString(t *testing.T) {
	small := String_("a").Size()
	big := String_("aaaaaaaaaaaaaaaaaaaa").Size()
	if big <= small {
		t.Errorf("Size: big %d <= small %d", big, small)
	}
}

// Property: comparison is antisymmetric and reflexive on ints.
func TestQuickCompareIntAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Int(a).Compare(Int(b))
		c2, ok2 := Int(b).Compare(Int(a))
		if !ok1 || !ok2 {
			return false
		}
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string comparison agrees with Go's native ordering.
func TestQuickCompareStringAgree(t *testing.T) {
	f := func(a, b string) bool {
		c, ok := String_(a).Compare(String_(b))
		if !ok {
			return false
		}
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		}
		return c == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
