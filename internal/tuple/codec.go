package tuple

import (
	"encoding/binary"
	"fmt"
	"math"

	"fungusdb/internal/clock"
)

// Binary tuple codec used by the WAL and snapshots. Layout (all
// little-endian):
//
//	uint64 id
//	uint64 tick
//	float64 freshness
//	uint8  flags (bit0 = infected)
//	uvarint nattrs
//	per attr: uint8 kind, then kind-specific payload
//	  INT:    varint
//	  FLOAT:  8 bytes IEEE-754
//	  BOOL:   1 byte
//	  STRING: uvarint length + bytes
//
// The codec is self-describing per attribute so readers do not need the
// schema to skip records, but Decode validates against a schema when
// one is supplied.

// AppendEncode appends the binary encoding of tp to dst and returns the
// extended slice.
func AppendEncode(dst []byte, tp Tuple) []byte {
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(tp.ID))
	dst = append(dst, scratch[:]...)
	binary.LittleEndian.PutUint64(scratch[:], uint64(tp.T))
	dst = append(dst, scratch[:]...)
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(float64(tp.F)))
	dst = append(dst, scratch[:]...)
	var flags byte
	if tp.Infected {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(tp.Attrs)))
	for _, v := range tp.Attrs {
		dst = append(dst, byte(v.Kind()))
		switch v.Kind() {
		case KindInt:
			dst = binary.AppendVarint(dst, v.AsInt())
		case KindFloat:
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v.AsFloat()))
			dst = append(dst, scratch[:]...)
		case KindBool:
			if v.AsBool() {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case KindString:
			s := v.AsString()
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		default:
			panic("tuple: encode invalid value")
		}
	}
	return dst
}

// Decode parses one tuple from the front of buf, returning the tuple and
// the number of bytes consumed. If schema is non-nil the decoded
// attributes are validated against it.
func Decode(buf []byte, schema *Schema) (Tuple, int, error) {
	const fixed = 8 + 8 + 8 + 1
	if len(buf) < fixed {
		return Tuple{}, 0, fmt.Errorf("tuple: short buffer (%d bytes)", len(buf))
	}
	var tp Tuple
	tp.ID = ID(binary.LittleEndian.Uint64(buf[0:8]))
	tp.T = clock.Tick(binary.LittleEndian.Uint64(buf[8:16]))
	tp.F = Freshness(math.Float64frombits(binary.LittleEndian.Uint64(buf[16:24])))
	tp.Infected = buf[24]&1 != 0
	pos := fixed

	n, w := binary.Uvarint(buf[pos:])
	if w <= 0 {
		return Tuple{}, 0, fmt.Errorf("tuple: bad attribute count")
	}
	pos += w
	if n > uint64(len(buf)) { // cheap sanity bound before allocating
		return Tuple{}, 0, fmt.Errorf("tuple: implausible attribute count %d", n)
	}
	tp.Attrs = make([]Value, 0, n)
	for i := uint64(0); i < n; i++ {
		if pos >= len(buf) {
			return Tuple{}, 0, fmt.Errorf("tuple: truncated at attribute %d", i)
		}
		kind := Kind(buf[pos])
		pos++
		switch kind {
		case KindInt:
			v, w := binary.Varint(buf[pos:])
			if w <= 0 {
				return Tuple{}, 0, fmt.Errorf("tuple: bad varint at attribute %d", i)
			}
			pos += w
			tp.Attrs = append(tp.Attrs, Int(v))
		case KindFloat:
			if pos+8 > len(buf) {
				return Tuple{}, 0, fmt.Errorf("tuple: truncated float at attribute %d", i)
			}
			tp.Attrs = append(tp.Attrs, Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:]))))
			pos += 8
		case KindBool:
			if pos >= len(buf) {
				return Tuple{}, 0, fmt.Errorf("tuple: truncated bool at attribute %d", i)
			}
			tp.Attrs = append(tp.Attrs, Bool(buf[pos] != 0))
			pos++
		case KindString:
			l, w := binary.Uvarint(buf[pos:])
			if w <= 0 {
				return Tuple{}, 0, fmt.Errorf("tuple: bad string length at attribute %d", i)
			}
			pos += w
			if uint64(pos)+l > uint64(len(buf)) {
				return Tuple{}, 0, fmt.Errorf("tuple: truncated string at attribute %d", i)
			}
			tp.Attrs = append(tp.Attrs, String_(string(buf[pos:pos+int(l)])))
			pos += int(l)
		default:
			return Tuple{}, 0, fmt.Errorf("tuple: unknown kind byte %d at attribute %d", kind, i)
		}
	}
	if schema != nil {
		if err := schema.Validate(tp.Attrs); err != nil {
			return Tuple{}, 0, err
		}
	}
	return tp, pos, nil
}
