package tuple

import (
	"strings"
	"testing"
)

func TestNewSchemaValid(t *testing.T) {
	s, err := NewSchema(
		Column{Name: "device", Kind: KindString},
		Column{Name: "temp", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
	if s.Index("temp") != 1 {
		t.Errorf("Index(temp) = %d, want 1", s.Index("temp"))
	}
	if s.Index("missing") != -1 {
		t.Errorf("Index(missing) = %d, want -1", s.Index("missing"))
	}
	if s.Column(0).Name != "device" {
		t.Errorf("Column(0) = %v", s.Column(0))
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		cols []Column
		want string
	}{
		{"empty name", []Column{{Name: "", Kind: KindInt}}, "empty name"},
		{"reserved _t", []Column{{Name: SysTick, Kind: KindInt}}, "reserved"},
		{"reserved _f", []Column{{Name: SysFresh, Kind: KindFloat}}, "reserved"},
		{"invalid kind", []Column{{Name: "a", Kind: KindInvalid}}, "invalid kind"},
		{"duplicate", []Column{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}, "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema(c.cols...)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestParseSchemaRoundTrip(t *testing.T) {
	spec := "device STRING, temp FLOAT, n INT, ok BOOL"
	s, err := ParseSchema(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != spec {
		t.Errorf("String() = %q, want %q", got, spec)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, spec := range []string{"", "noKind", "a INT, b", "a BLOB"} {
		if _, err := ParseSchema(spec); err == nil {
			t.Errorf("ParseSchema(%q) should fail", spec)
		}
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Column{Name: "x", Kind: KindInt})
	b := MustSchema(Column{Name: "x", Kind: KindInt})
	c := MustSchema(Column{Name: "x", Kind: KindFloat})
	d := MustSchema(Column{Name: "x", Kind: KindInt}, Column{Name: "y", Kind: KindInt})
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(c) {
		t.Error("different kinds reported Equal")
	}
	if a.Equal(d) {
		t.Error("different arity reported Equal")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := MustSchema(Column{Name: "n", Kind: KindInt}, Column{Name: "s", Kind: KindString})
	if err := s.Validate([]Value{Int(1), String_("x")}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate([]Value{Int(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := s.Validate([]Value{String_("x"), Int(1)}); err == nil {
		t.Error("wrong kinds accepted")
	}
}

func TestSchemaColumnsIsCopy(t *testing.T) {
	s := MustSchema(Column{Name: "n", Kind: KindInt})
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "n" {
		t.Error("Columns() leaked internal slice")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema with bad columns did not panic")
		}
	}()
	MustSchema(Column{Name: "", Kind: KindInt})
}
