package tuple

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"fungusdb/internal/clock"
)

func sampleTuple() Tuple {
	return Tuple{
		ID:       17,
		T:        clock.Tick(99),
		F:        0.625,
		Infected: true,
		Attrs: []Value{
			Int(-12345),
			Float(3.25),
			String_("héllo, wörld"),
			Bool(true),
			Bool(false),
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	orig := sampleTuple()
	buf := AppendEncode(nil, orig)
	got, n, err := Decode(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("Decode consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, orig)
	}
}

func TestCodecRoundTripEmptyAttrs(t *testing.T) {
	orig := New(1, 2, nil)
	orig.Attrs = []Value{}
	buf := AppendEncode(nil, orig)
	got, _, err := Decode(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Attrs) != 0 {
		t.Errorf("got %d attrs, want 0", len(got.Attrs))
	}
	if got.ID != 1 || got.T != 2 || got.F != Full {
		t.Errorf("header mismatch: %v", got)
	}
}

func TestCodecAppendsToExisting(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	buf := AppendEncode(prefix, sampleTuple())
	if buf[0] != 0xAA || buf[1] != 0xBB {
		t.Fatal("prefix clobbered")
	}
	got, _, err := Decode(buf[2:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 17 {
		t.Errorf("decoded ID = %d", got.ID)
	}
}

func TestCodecTwoConsecutive(t *testing.T) {
	a := New(1, 10, []Value{Int(1)})
	b := New(2, 20, []Value{String_("two")})
	buf := AppendEncode(AppendEncode(nil, a), b)
	gotA, n, err := Decode(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _, err := Decode(buf[n:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotA.ID != 1 || gotB.ID != 2 {
		t.Errorf("sequence decode mismatch: %v %v", gotA, gotB)
	}
}

func TestCodecSchemaValidation(t *testing.T) {
	s := MustSchema(Column{Name: "n", Kind: KindInt})
	good := New(1, 1, []Value{Int(5)})
	if _, _, err := Decode(AppendEncode(nil, good), s); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	bad := New(2, 1, []Value{String_("x")})
	if _, _, err := Decode(AppendEncode(nil, bad), s); err == nil {
		t.Error("schema-mismatched tuple accepted")
	}
}

func TestCodecTruncation(t *testing.T) {
	full := AppendEncode(nil, sampleTuple())
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Decode(full[:cut], nil); err == nil {
			t.Errorf("Decode accepted truncation at %d bytes", cut)
		}
	}
}

func TestCodecBadKindByte(t *testing.T) {
	buf := AppendEncode(nil, New(1, 1, []Value{Int(7)}))
	// The kind byte of the first attribute sits right after the fixed
	// 25-byte header plus the 1-byte attr count varint.
	buf[26] = 0xEE
	if _, _, err := Decode(buf, nil); err == nil {
		t.Error("Decode accepted corrupt kind byte")
	}
}

func TestCodecSpecialFloats(t *testing.T) {
	for _, f := range []float64{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), math.MaxFloat64} {
		tp := New(1, 1, []Value{Float(f)})
		got, _, err := Decode(AppendEncode(nil, tp), nil)
		if err != nil {
			t.Fatalf("f=%v: %v", f, err)
		}
		if g := got.Attrs[0].AsFloat(); g != f && !(math.IsNaN(g) && math.IsNaN(f)) {
			t.Errorf("float %v round-tripped to %v", f, g)
		}
	}
}

// Property: arbitrary int/string tuples survive the codec.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(id uint64, tick uint64, fresh float64, n int64, s string, b bool) bool {
		fr := Freshness(math.Abs(math.Mod(fresh, 1)))
		orig := Tuple{
			ID: ID(id), T: clock.Tick(tick), F: fr, Infected: b,
			Attrs: []Value{Int(n), String_(s), Bool(b)},
		}
		buf := AppendEncode(nil, orig)
		got, used, err := Decode(buf, nil)
		if err != nil || used != len(buf) {
			return false
		}
		return reflect.DeepEqual(got, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	orig := New(1, 1, []Value{Int(1), Int(2)})
	cl := orig.Clone()
	cl.Attrs[0] = Int(99)
	if orig.Attrs[0].AsInt() != 1 {
		t.Error("Clone shares attribute storage")
	}
}

func TestFreshnessClampAndRotten(t *testing.T) {
	if Freshness(-0.5).Clamp() != 0 {
		t.Error("Clamp negative failed")
	}
	if Freshness(1.5).Clamp() != 1 {
		t.Error("Clamp >1 failed")
	}
	if Freshness(0.5).Clamp() != 0.5 {
		t.Error("Clamp in-range changed value")
	}
	if !Freshness(0).Rotten() {
		t.Error("0 should be rotten")
	}
	if Freshness(0.01).Rotten() {
		t.Error("0.01 should not be rotten")
	}
}

func TestTupleStringContainsParts(t *testing.T) {
	s := sampleTuple().String()
	for _, want := range []string{"17", "t99", "0.625", "infected", "-12345"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestTupleSizeMonotone(t *testing.T) {
	small := New(1, 1, []Value{Int(1)})
	big := New(1, 1, []Value{Int(1), String_("a long string payload here")})
	if big.Size() <= small.Size() {
		t.Errorf("Size not monotone: %d <= %d", big.Size(), small.Size())
	}
}
