// Package tuple defines the relational data model shared by the whole
// engine: typed values, schemas, and tuples of the form R(t, f, A1..An)
// from the paper — every tuple carries its insertion tick t and a
// freshness value f in (0, 1], plus the user attributes.
package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the attribute types the engine supports.
type Kind uint8

// Supported attribute kinds.
const (
	KindInvalid Kind = iota
	KindInt          // 64-bit signed integer
	KindFloat        // 64-bit IEEE float
	KindString       // UTF-8 string
	KindBool         // boolean
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return "INVALID"
	}
}

// ParseKind converts a type name (as written in schemas, e.g. "INT")
// into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "INT", "int":
		return KindInt, nil
	case "FLOAT", "float":
		return KindFloat, nil
	case "STRING", "string":
		return KindString, nil
	case "BOOL", "bool":
		return KindBool, nil
	}
	return KindInvalid, fmt.Errorf("tuple: unknown kind %q", s)
}

// Value is a dynamically typed attribute value. The zero Value has
// KindInvalid and represents "no value"; the engine has no NULLs — the
// paper's model does not need them and their absence keeps predicate
// semantics two-valued.
type Value struct {
	kind Kind
	i    int64   // KindInt, KindBool (0/1)
	f    float64 // KindFloat
	s    string  // KindString
}

// Int returns an INT value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a STRING value. The trailing underscore avoids
// colliding with the Stringer method.
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a BOOL value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds data.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It panics unless Kind is KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("tuple: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the float payload. It panics unless Kind is KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic("tuple: AsFloat on " + v.kind.String())
	}
	return v.f
}

// AsString returns the string payload. It panics unless Kind is KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("tuple: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBool returns the boolean payload. It panics unless Kind is KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("tuple: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// Numeric returns the value as a float64 for arithmetic, accepting INT
// and FLOAT kinds. ok is false for other kinds.
func (v Value) Numeric() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// String renders the value in SQL-literal style.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Equal reports semantic equality. Values of different kinds are equal
// only when both are numeric and represent the same number (INT 3 equals
// FLOAT 3.0), matching the comparison semantics of the query layer.
func (v Value) Equal(o Value) bool {
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Compare orders v against o, returning -1, 0 or +1. ok is false when
// the kinds are incomparable (e.g. STRING vs INT, or any BOOL against a
// non-BOOL). Numeric kinds compare by value across INT/FLOAT.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	switch {
	case v.kind == KindString && o.kind == KindString:
		switch {
		case v.s < o.s:
			return -1, true
		case v.s > o.s:
			return 1, true
		}
		return 0, true
	case v.kind == KindBool && o.kind == KindBool:
		switch {
		case v.i < o.i:
			return -1, true
		case v.i > o.i:
			return 1, true
		}
		return 0, true
	}
	a, aok := v.Numeric()
	b, bok := o.Numeric()
	if !aok || !bok {
		return 0, false
	}
	// NaN is incomparable rather than silently equal; predicates treat
	// it as a type error the same way incompatible kinds are.
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0, false
	}
	switch {
	case a < b:
		return -1, true
	case a > b:
		return 1, true
	}
	return 0, true
}

// Size returns the approximate in-memory footprint of the value in
// bytes, used by the metrics package for extent accounting.
func (v Value) Size() int {
	const header = 16 // kind + padding + one 8-byte slot
	if v.kind == KindString {
		return header + len(v.s)
	}
	return header
}
