package tuple

import (
	"math/bits"

	"fungusdb/internal/clock"
)

// BatchRows is the row capacity of one scan batch: batches start at row
// offsets 0, BatchRows, 2*BatchRows, ... within a segment, so keeping it
// a multiple of 64 means every batch's liveness bitmap is a word-aligned
// subslice of the segment's bitmap — no bit shifting on the scan path.
const BatchRows = 1024

// ColView is a read-only columnar view over one attribute of a batch.
// Exactly one of the payload slices is populated, matching Kind; STRING
// columns are dictionary-encoded (Codes indexes Dict, which is shared by
// every batch of the same segment).
type ColView struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Bools  []bool
	Codes  []uint32
	Dict   []string
}

// Value boxes row j of the column.
func (c *ColView) Value(j int) Value {
	switch c.Kind {
	case KindInt:
		return Int(c.Ints[j])
	case KindFloat:
		return Float(c.Floats[j])
	case KindString:
		return String_(c.Dict[c.Codes[j]])
	case KindBool:
		return Bool(c.Bools[j])
	}
	return Value{}
}

// Batch is a columnar view over up to BatchRows consecutive rows of one
// storage segment. All slices alias segment memory and are valid only
// until the scan callback returns; row j is live iff bit j of Live is
// set (bits at or above N are always clear). Seg identifies the segment
// revision the views belong to, so per-segment caches (for example
// dictionary-translated predicate tables) know when to refresh.
type Batch struct {
	N     int     // rows in the batch, live or not
	Alive int     // popcount of Live
	IDs   []ID    // row IDs
	Ts    []int64 // insertion ticks
	Fs    []float64
	Inf   []bool
	Live  []uint64 // liveness bitmap, bit j of word j/64
	Cols  []ColView
	Seg   uint64 // segment revision tag
}

// ReadRow materialises row j into dst, reusing dst's attribute slice
// when it has capacity. The attribute values alias the batch's
// dictionary strings, which outlive the batch (they belong to the
// segment), so the result is safe to hold across batches.
func (b *Batch) ReadRow(j int, dst *Tuple) {
	dst.ID = b.IDs[j]
	dst.T = clock.Tick(b.Ts[j])
	dst.F = Freshness(b.Fs[j])
	dst.Infected = b.Inf[j]
	if cap(dst.Attrs) < len(b.Cols) {
		dst.Attrs = make([]Value, len(b.Cols))
	} else {
		dst.Attrs = dst.Attrs[:len(b.Cols)]
	}
	for i := range b.Cols {
		dst.Attrs[i] = b.Cols[i].Value(j)
	}
}

// Row materialises row j as a freshly allocated tuple.
func (b *Batch) Row(j int) Tuple {
	var tp Tuple
	b.ReadRow(j, &tp)
	return tp
}

// PopCount returns the number of set bits across words.
func PopCount(words []uint64) int {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	return n
}

// EachSet calls fn for every set bit index in words, in ascending
// order, stopping early (and reporting false) when fn returns false.
func EachSet(words []uint64, fn func(j int) bool) bool {
	for w, m := range words {
		base := w << 6
		for m != 0 {
			j := base + bits.TrailingZeros64(m)
			m &= m - 1
			if !fn(j) {
				return false
			}
		}
	}
	return true
}
