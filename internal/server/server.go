// Package server exposes a FungusDB over HTTP with a JSON API, plus the
// matching Go client. The API surface mirrors the embedded one:
//
//	GET    /healthz                          liveness
//	GET    /v1/tables                        table names
//	POST   /v1/tables                        create table (catalog.TableSpec JSON; non-persistent unless the DB has a Dir)
//	DELETE /v1/tables/{table}                drop table
//	POST   /v1/tables/{table}/rows           bulk insert
//	GET    /v1/tables/{table}/stats          profile + counters
//	GET    /v1/tables/{table}/containers     shelf listing
//	GET    /v1/tables/{table}/containers/{container}/ask?q=...   digest questions
//	POST   /v1/query                         SELECT (incl. CONSUME) -> grid
//	POST   /v1/tick                          advance decay n cycles
//	GET    /metrics                          Prometheus text exposition
//
// Rows and grid cells travel as natural JSON values (numbers, strings,
// booleans) positionally matched to the table schema.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"fungusdb/internal/catalog"
	"fungusdb/internal/core"
	"fungusdb/internal/obs"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

// DefaultMaxRequestBytes caps request bodies when Config leaves
// MaxRequestBytes unset: 64 MiB.
const DefaultMaxRequestBytes = 64 << 20

// Config tunes the HTTP front end.
type Config struct {
	// MaxRequestBytes caps every request body (bulk inserts are the
	// usual offender). 0 means DefaultMaxRequestBytes; negative
	// disables the cap entirely.
	MaxRequestBytes int64
	// PreparedHandles bounds the /v2/prepare handle cache (0 = the
	// defaultHandleCap of 256).
	PreparedHandles int
	// Registry receives the server's metric collectors and backs the
	// GET /metrics endpoint. Nil builds a private registry; pass one in
	// to add your own collectors (ingest pipelines, harnesses) to the
	// same scrape.
	Registry *obs.Registry
	// ReadOnly turns the server into a replication follower front end:
	// every mutating route (table DDL, row inserts, decay ticks) answers
	// 403 with the stable "read_only" code. Reads — queries without
	// CONSUME, stats, containers, metrics — stay fully served.
	ReadOnly bool
	// ReplStatus, when set, reports a table's replication position; the
	// stats endpoint attaches it as the "replication" object. Follower
	// mode wires the repl daemon's per-table status in here.
	ReplStatus func(table string) (ReplStatus, bool)
}

// ReplStatus is a follower table's replication position as reported by
// GET /v1/tables/{table}/stats on a follower server.
type ReplStatus struct {
	Leader     string `json:"leader"`
	Generation uint64 `json:"generation"`
	LagRecords uint64 `json:"lag_records"`
	Inserts    uint64 `json:"applied_inserts"`
	Evicts     uint64 `json:"applied_evicts"`
	Ticks      uint64 `json:"applied_ticks"`
	Batches    uint64 `json:"batches"`
	Reconnects uint64 `json:"reconnects"`
	Rebases    uint64 `json:"rebases"`
	Connected  bool   `json:"connected"`
}

// Server is the HTTP front end of one DB.
type Server struct {
	db   *core.DB
	mux  *http.ServeMux
	cfg  Config
	prep *handleCache
	reg  *obs.Registry
	lat  map[string]*obs.Histogram // query latency per route
}

// latencyRoutes are the label values of the per-route query latency
// histogram: the two SQL execution surfaces plus container questions.
var latencyRoutes = []string{"v1_query", "v2_query", "ask"}

// New wraps db with default configuration. The returned Server is an
// http.Handler.
func New(db *core.DB) *Server { return NewWithConfig(db, Config{}) }

// NewWithConfig wraps db with explicit limits.
func NewWithConfig(db *core.DB, cfg Config) *Server {
	if cfg.MaxRequestBytes == 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		db: db, mux: http.NewServeMux(), cfg: cfg,
		prep: newHandleCache(cfg.PreparedHandles),
		reg:  reg,
		lat:  make(map[string]*obs.Histogram, len(latencyRoutes)),
	}
	reg.Register(obs.EngineCollector(db))
	for _, route := range latencyRoutes {
		h := obs.NewHistogram(
			"fungusdb_http_query_seconds",
			"Query latency by route, from request decode to the last byte of the answer.",
			obs.DefLatencyBuckets,
			obs.Label{Name: "route", Value: route},
		)
		s.lat[route] = h
		reg.Register(h)
	}
	s.mux.Handle("GET /metrics", obs.Handler(reg))
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /v1/tables", s.listTables)
	s.mux.HandleFunc("POST /v1/tables", s.createTable)
	s.mux.HandleFunc("DELETE /v1/tables/{table}", s.dropTable)
	s.mux.HandleFunc("POST /v1/tables/{table}/rows", s.insertRows)
	s.mux.HandleFunc("GET /v1/tables/{table}/stats", s.tableStats)
	s.mux.HandleFunc("GET /v1/tables/{table}/containers", s.listContainers)
	s.mux.HandleFunc("GET /v1/tables/{table}/containers/{container}/ask", s.askContainer)
	s.mux.HandleFunc("POST /v1/query", s.runQuery)
	s.mux.HandleFunc("POST /v1/tick", s.tick)
	s.mux.HandleFunc("POST /v2/prepare", s.prepareV2)
	s.mux.HandleFunc("POST /v2/query", s.queryV2)
	s.mux.HandleFunc("GET /v2/replicate/tables", s.replTables)
	s.mux.HandleFunc("POST /v2/replicate", s.replicate)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry returns the metric registry behind GET /metrics, so hosts
// can register additional collectors into the same scrape.
func (s *Server) Registry() *obs.Registry { return s.reg }

// observe records one query's wall time on the route's latency
// histogram. Call as `defer s.observe(route, time.Now())`.
func (s *Server) observe(route string, start time.Time) {
	if h := s.lat[route]; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Stable machine-readable error codes. Every error response is
//
//	{"error": {"code": "<one of these>", "message": "..."}}
//
// so clients can branch without string-matching messages.
const (
	ErrCodeBadRequest = "bad_request" // malformed body, bad params
	ErrCodeParse      = "parse_error" // statement/question syntax
	ErrCodePlan       = "plan_error"  // compile-time validation (schema, grouping, arity)
	ErrCodeNotFound   = "not_found"   // unknown table/container/handle
	ErrCodeExec       = "exec_error"  // runtime query failure
	ErrCodeInternal   = "internal"    // engine-side failures
	// ErrCodeReadOnly rejects mutations on a replication follower: table
	// DDL, inserts, ticks and CONSUME/distilling queries all pin it.
	ErrCodeReadOnly = "read_only"
	// ErrCodeStaleGen fences a replication stream whose cursor claims a
	// WAL generation the leader has never produced — the follower tailed
	// a different (or since-reset) leader and must not be fed records.
	ErrCodeStaleGen = "stale_generation"
)

// ErrorDetail is the inner error object of the JSON envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error ErrorDetail `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

// writeExecErr maps a runtime failure from the engine: a rejected
// mutation on a replica table gets its stable code (and 403), anything
// else is a plain exec error.
func writeExecErr(w http.ResponseWriter, err error) {
	if errors.Is(err, core.ErrReadOnly) {
		writeErr(w, http.StatusForbidden, ErrCodeReadOnly, err)
		return
	}
	writeErr(w, http.StatusBadRequest, ErrCodeExec, err)
}

// rejectReadOnly answers a mutating route on a follower server. It
// returns true when the request was rejected.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if !s.cfg.ReadOnly {
		return false
	}
	writeErr(w, http.StatusForbidden, ErrCodeReadOnly,
		errors.New("server is a read-only replication follower"))
	return true
}

func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.cfg.MaxRequestBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "now": uint64(s.db.Now())})
}

func (s *Server) listTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.db.Tables()})
}

// CreateTableRequest is the POST /v1/tables body: a catalog spec plus a
// persistence toggle (persistent specs need the server DB to have a
// data directory).
type CreateTableRequest struct {
	catalog.TableSpec
	Persist bool `json:"persist,omitempty"`
}

func (s *Server) createTable(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	var req CreateTableRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	var err error
	if req.Persist {
		_, err = s.db.CreateTableFromSpec(req.TableSpec)
	} else {
		err = s.createEphemeral(req.TableSpec)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"created": req.Name})
}

func (s *Server) createEphemeral(spec catalog.TableSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	schema, err := tuple.ParseSchema(spec.Schema)
	if err != nil {
		return err
	}
	f, err := spec.Fungus.Build(schema)
	if err != nil {
		return err
	}
	durability, err := wal.ParseDurability(spec.Durability)
	if err != nil {
		return err
	}
	_, err = s.db.CreateTable(spec.Name, core.TableConfig{
		Schema:            schema,
		Fungus:            f,
		Shards:            spec.Shards,
		SegmentSize:       spec.SegmentSize,
		TickEvery:         spec.TickEvery,
		TouchOnRead:       spec.TouchOnRead,
		DistillOnRot:      spec.DistillOnRot,
		ContainerHalfLife: spec.ContainerHalfLife,
		Durability:        durability,
	})
	return err
}

func (s *Server) table(w http.ResponseWriter, r *http.Request) (*core.Table, bool) {
	name := r.PathValue("table")
	tbl, err := s.db.Table(name)
	if err != nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, err)
		return nil, false
	}
	return tbl, true
}

func (s *Server) dropTable(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	name := r.PathValue("table")
	if err := s.db.DropTable(name); err != nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

// InsertRequest is the bulk-insert body: rows of positional values.
type InsertRequest struct {
	Rows [][]any `json:"rows"`
}

// InsertResponse reports assigned tuple IDs.
type InsertResponse struct {
	Inserted int      `json:"inserted"`
	FirstID  uint64   `json:"first_id"`
	Errors   []string `json:"errors,omitempty"`
}

func (s *Server) insertRows(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	tbl, ok := s.table(w, r)
	if !ok {
		return
	}
	var req InsertRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, errors.New("no rows"))
		return
	}
	rows := make([][]tuple.Value, len(req.Rows))
	for i, raw := range req.Rows {
		vals, err := decodeRow(tbl.Schema(), raw)
		if err != nil {
			writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("row %d: %w", i, err))
			return
		}
		rows[i] = vals
	}
	// One batch insert: rows are grouped per shard and each shard lock
	// is taken once, instead of once per row.
	tps, err := tbl.InsertBatch(rows)
	if err != nil {
		writeExecErr(w, err)
		return
	}
	resp := InsertResponse{Inserted: len(tps), FirstID: uint64(tps[0].ID)}
	writeJSON(w, http.StatusOK, resp)
}

// decodeRow converts JSON values to typed attributes positionally.
func decodeRow(schema *tuple.Schema, raw []any) ([]tuple.Value, error) {
	if len(raw) != schema.Len() {
		return nil, fmt.Errorf("have %d values, schema wants %d", len(raw), schema.Len())
	}
	vals := make([]tuple.Value, len(raw))
	for i, v := range raw {
		col := schema.Column(i)
		switch col.Kind {
		case tuple.KindInt:
			f, ok := v.(float64) // JSON numbers arrive as float64
			if !ok || f != float64(int64(f)) {
				return nil, fmt.Errorf("column %q wants INT, got %v", col.Name, v)
			}
			vals[i] = tuple.Int(int64(f))
		case tuple.KindFloat:
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("column %q wants FLOAT, got %v", col.Name, v)
			}
			vals[i] = tuple.Float(f)
		case tuple.KindString:
			str, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("column %q wants STRING, got %v", col.Name, v)
			}
			vals[i] = tuple.String_(str)
		case tuple.KindBool:
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("column %q wants BOOL, got %v", col.Name, v)
			}
			vals[i] = tuple.Bool(b)
		}
	}
	return vals, nil
}

// StatsResponse is the GET stats body.
type StatsResponse struct {
	Live        int     `json:"live"`
	Shards      int     `json:"shards"`
	Bytes       int     `json:"bytes"`
	MeanFresh   float64 `json:"mean_freshness"`
	Infected    int     `json:"infected"`
	Inserted    uint64  `json:"inserted"`
	Rotted      uint64  `json:"rotted"`
	Consumed    uint64  `json:"consumed"`
	Distilled   uint64  `json:"distilled"`
	Queries     uint64  `json:"queries"`
	Ticks       uint64  `json:"ticks"`
	CaptureRate float64 `json:"capture_rate"`
	// SegmentsPruned counts extent segments that zone-map pruning
	// skipped wholesale across all scans; TuplesSkipped is the live
	// tuples those segments held — work the scan paths never did.
	SegmentsPruned uint64 `json:"segments_pruned"`
	TuplesSkipped  uint64 `json:"tuples_skipped"`
	// BatchesScanned counts column batches handed to the vectorized
	// scan route; RowsVectorized is the live rows those batches carried
	// — rows matched kernel-wise instead of tuple at a time.
	BatchesScanned uint64 `json:"batches_scanned"`
	RowsVectorized uint64 `json:"rows_vectorized"`
	// WALShards and WALGeneration describe the persistence layout (one
	// WAL file per shard, snapshots committed by generation); both are
	// omitted for in-memory tables.
	WALShards     int    `json:"wal_shards,omitempty"`
	WALGeneration uint64 `json:"wal_generation,omitempty"`
	// WALSyncMode is the resolved durability level ("none", "grouped",
	// "strict"); GroupCommits and AvgGroupSize report the group-commit
	// daemon's fsync batching in grouped mode. All omitted for
	// in-memory tables.
	WALSyncMode  string  `json:"wal_sync_mode,omitempty"`
	GroupCommits uint64  `json:"group_commits,omitempty"`
	AvgGroupSize float64 `json:"avg_group_size,omitempty"`
	Persistent   bool    `json:"persistent"`
	// Replication is present only on a follower: the table's position
	// and lag against the leader it tails.
	Replication *ReplStatus `json:"replication,omitempty"`
}

func (s *Server) tableStats(w http.ResponseWriter, r *http.Request) {
	tbl, ok := s.table(w, r)
	if !ok {
		return
	}
	p := tbl.Profile()
	c := tbl.Counters()
	wi := tbl.WALInfo()
	st := tbl.StoreStats()
	var repl *ReplStatus
	if s.cfg.ReplStatus != nil {
		if rs, ok := s.cfg.ReplStatus(tbl.Name()); ok {
			repl = &rs
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Live: p.Live, Shards: tbl.Shards(), Bytes: p.Bytes, MeanFresh: p.Mean, Infected: p.Infected,
		Inserted: c.Inserted, Rotted: c.Rotted, Consumed: c.Consumed,
		Distilled: c.DistilledRot + c.DistilledQuery,
		Queries:   c.Queries, Ticks: c.Ticks, CaptureRate: c.CaptureRate(),
		SegmentsPruned: st.SegsPruned, TuplesSkipped: st.TuplesSkipped,
		BatchesScanned: st.BatchesScanned, RowsVectorized: st.RowsVectorized,
		WALShards: wi.LogShards, WALGeneration: wi.Generation,
		WALSyncMode: wi.SyncMode, GroupCommits: wi.GroupCommits, AvgGroupSize: wi.AvgGroupSize,
		Persistent: wi.Persistent, Replication: repl,
	})
}

// ContainerInfo summarises one knowledge container.
type ContainerInfo struct {
	Name      string  `json:"name"`
	Count     uint64  `json:"count"`
	Bytes     int     `json:"bytes"`
	Freshness float64 `json:"freshness"`
}

func (s *Server) listContainers(w http.ResponseWriter, r *http.Request) {
	tbl, ok := s.table(w, r)
	if !ok {
		return
	}
	var out []ContainerInfo
	for _, name := range tbl.Shelf().Names() {
		c := tbl.Shelf().Get(name)
		if c == nil {
			continue
		}
		out = append(out, ContainerInfo{
			Name:      name,
			Count:     c.Digest.Count(),
			Bytes:     c.Digest.Bytes(),
			Freshness: float64(c.Freshness()),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"containers": out})
}

// AskResponse answers one knowledge-container question.
type AskResponse struct {
	Question string  `json:"question"`
	Value    float64 `json:"value,omitempty"`
	Bool     *bool   `json:"bool,omitempty"`
	Top      []struct {
		Item  string `json:"item"`
		Count uint64 `json:"count"`
	} `json:"top,omitempty"`
}

// askContainer answers digest questions over HTTP:
//
//	GET .../containers/{c}/ask?q=count
//	GET .../containers/{c}/ask?q=ndv:col | mean:col | sum:col
//	GET .../containers/{c}/ask?q=q:col:0.95
//	GET .../containers/{c}/ask?q=top:col
//	GET .../containers/{c}/ask?q=has:col:value
//
// Asking refreshes the container (consulted knowledge stays alive).
// The handler is a shim over the prepared path: the question compiles
// into an ask plan (validating the column and coercing the operand
// against the schema up front) and executes against the container's
// digest; the answer rows map back into the classical AskResponse
// shape by their column layout.
func (s *Server) askContainer(w http.ResponseWriter, r *http.Request) {
	defer s.observe("ask", time.Now())
	tbl, ok := s.table(w, r)
	if !ok {
		return
	}
	q := r.URL.Query().Get("q")
	pq, err := tbl.PrepareAsk(r.PathValue("container"), q)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodePlan, err)
		return
	}
	rows, err := pq.Execute()
	if err != nil {
		if errors.Is(err, core.ErrNoContainer) {
			writeErr(w, http.StatusNotFound, ErrCodeNotFound, err)
			return
		}
		writeErr(w, http.StatusBadRequest, ErrCodeExec, err)
		return
	}
	defer rows.Close()
	resp := AskResponse{Question: q}
	cols := rows.Cols()
	for rows.Next() {
		vals := rows.Values()
		switch {
		case len(cols) == 2 && cols[0] == "item": // top:<col>
			resp.Top = append(resp.Top, struct {
				Item  string `json:"item"`
				Count uint64 `json:"count"`
			}{vals[0].AsString(), uint64(vals[1].AsInt())})
		case len(cols) == 1 && cols[0] == "contains": // has:<col>:<v>
			b := vals[0].AsBool()
			resp.Bool = &b
		default: // scalar questions
			resp.Value = vals[0].AsFloat()
		}
	}
	if err := rows.Err(); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeExec, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// QueryRequest is the POST /v1/query body. SQL must be a SELECT
// statement (use SELECT CONSUME for second-law semantics); Distill
// optionally names a container absorbing the matched set.
type QueryRequest struct {
	SQL     string `json:"sql"`
	Distill string `json:"distill,omitempty"`
}

// QueryResponse is a grid in JSON.
type QueryResponse struct {
	Cols []string `json:"cols"`
	Rows [][]any  `json:"rows"`
}

// preparedForSQL routes a statement to its table and compiles it: the
// single front door every SQL-shaped handler (v1 and v2) goes through.
func (s *Server) preparedForSQL(w http.ResponseWriter, sql string) (*core.PreparedQuery, bool) {
	stmt, err := query.ParseStatement(sql)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeParse, err)
		return nil, false
	}
	tbl, err := s.db.Table(stmt.From())
	if err != nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, err)
		return nil, false
	}
	pq, err := tbl.PrepareStatement(stmt)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodePlan, err)
		return nil, false
	}
	return pq, true
}

// runQuery is the v1 materialised endpoint, re-expressed as a shim
// over the prepared path: Prepare, Execute, drain the stream into one
// grid-shaped JSON body. Use /v2/query for NDJSON streaming and
// parameter binding.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request) {
	defer s.observe("v1_query", time.Now())
	var req QueryRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	pq, ok := s.preparedForSQL(w, req.SQL)
	if !ok {
		return
	}
	var opt core.QueryOpts
	if req.Distill != "" {
		opt.Distill = req.Distill
	}
	rows, err := pq.ExecuteOpts(opt)
	if err != nil {
		writeExecErr(w, err)
		return
	}
	defer rows.Close()
	resp := QueryResponse{Cols: rows.Cols(), Rows: [][]any{}}
	for rows.Next() {
		vals := rows.Values()
		out := make([]any, len(vals))
		for j, v := range vals {
			out[j] = valueToJSON(v)
		}
		resp.Rows = append(resp.Rows, out)
	}
	if err := rows.Err(); err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeExec, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func valueToJSON(v tuple.Value) any {
	switch v.Kind() {
	case tuple.KindInt:
		return v.AsInt()
	case tuple.KindFloat:
		return v.AsFloat()
	case tuple.KindString:
		return v.AsString()
	case tuple.KindBool:
		return v.AsBool()
	}
	return nil
}

// TickRequest advances decay.
type TickRequest struct {
	N int `json:"n"`
}

// TickResponse reports the aggregate decay outcome.
type TickResponse struct {
	Now    uint64 `json:"now"`
	Rotted int    `json:"rotted"`
	Live   int    `json:"live"`
}

func (s *Server) tick(w http.ResponseWriter, r *http.Request) {
	if s.rejectReadOnly(w) {
		return
	}
	var req TickRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.N < 1 {
		req.N = 1
	}
	if req.N > 1_000_000 {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, errors.New("n too large"))
		return
	}
	resp := TickResponse{}
	for i := 0; i < req.N; i++ {
		rep, err := s.db.Tick()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, ErrCodeInternal, err)
			return
		}
		resp.Rotted += rep.TotalRot
		resp.Now = uint64(rep.Now)
		resp.Live = rep.TotalLive
	}
	writeJSON(w, http.StatusOK, resp)
}

// trim is a tiny helper used by the client for error text.
func trim(s string) string { return strings.TrimSpace(s) }
