// The replication leader endpoint: POST /v2/replicate streams a
// persistent table's per-shard WAL to a follower as NDJSON events.
//
//	header  {"header":{"table","shards","generation","mode","next_ids"}}
//	snap    {"snap":{"shard","data","last"}}       (rebase mode only)
//	recs    {"recs":{"shard","from","n","data"}}   raw framed WAL bytes
//	commit  {"commit":{"generation","counts","reset"}}
//	ping    {"ping":{"generation","counts"}}       idle keep-alive
//	end     {"end":{"reason"}}                     deliberate termination
//
// The follower connects with a cursor (generation, per-shard byte
// offsets). If the cursor is still inside the leader's current
// generation the stream tails from those offsets ("tail" mode); if the
// leader has checkpointed past it, the needed bytes live only inside
// the committed snapshots, so the stream re-bases: snapshot chunks per
// shard, then records from offset zero ("rebase" mode). A cursor that
// had reached exactly the sizes recorded by the last truncation rolls
// over to the new generation without a rebase. A cursor from a FUTURE
// generation means the follower tailed a different leader; it is fenced
// with 409 stale_generation rather than fed divergent records.
//
// Consistency under concurrent checkpoints: Checkpoint publishes the
// new in-memory generation only after the logs are truncated, and its
// caller holds every shard lock across both steps. The shipper
// therefore re-reads the generation after every file read — a stable
// generation proves the bytes belong to it; a changed one discards the
// read and re-evaluates (rollover, or rebase_required).
package server

import (
	"fmt"
	"net/http"
	"time"
)

// ReplicateRequest is the POST /v2/replicate body: the follower's
// resume cursor. Zero values mean "from the beginning of history".
type ReplicateRequest struct {
	Table      string  `json:"table"`
	Generation uint64  `json:"generation"`
	Offsets    []int64 `json:"offsets,omitempty"`
}

// Wire events. Field shapes mirror pkg/client's Repl* types; []byte
// travels as base64 courtesy of encoding/json.
type replHeader struct {
	Table      string   `json:"table"`
	Shards     int      `json:"shards"`
	Generation uint64   `json:"generation"`
	Mode       string   `json:"mode"` // "tail" | "rebase"
	NextIDs    []uint64 `json:"next_ids,omitempty"`
}

type replSnap struct {
	Shard int    `json:"shard"`
	Data  []byte `json:"data,omitempty"`
	Last  bool   `json:"last"`
}

type replRecs struct {
	Shard int    `json:"shard"`
	From  int64  `json:"from"`
	N     int    `json:"n"`
	Data  []byte `json:"data"`
}

type replCommit struct {
	Generation uint64   `json:"generation"`
	Counts     []uint64 `json:"counts,omitempty"`
	Reset      bool     `json:"reset,omitempty"`
}

type replEnd struct {
	Reason string `json:"reason"`
}

type replLine struct {
	Header *replHeader  `json:"header,omitempty"`
	Snap   *replSnap    `json:"snap,omitempty"`
	Recs   *replRecs    `json:"recs,omitempty"`
	Commit *replCommit  `json:"commit,omitempty"`
	Ping   *replCommit  `json:"ping,omitempty"`
	End    *replEnd     `json:"end,omitempty"`
	Error  *ErrorDetail `json:"error,omitempty"`
}

const (
	// replSnapChunk is the snapshot chunk size during a rebase — big
	// enough to amortise the JSON framing, small enough to flush early.
	replSnapChunk = 256 << 10
	// replReadBytes caps one recs event's raw WAL payload.
	replReadBytes = 512 << 10
	// replPoll is the idle tail loop's sleep between log size probes —
	// effectively the shipping latency floor after a group-commit
	// window closes.
	replPoll = 10 * time.Millisecond
	// replPing keeps an idle stream verifiably alive and refreshes the
	// follower's view of the leader's record counts (its lag gauge).
	replPing = 500 * time.Millisecond
)

// replTables lists the specs a follower can mirror (spec-created
// persistent tables). The raw catalog spec is the payload: the follower
// rebuilds schema, fungus and shard count from it.
func (s *Server) replTables(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.db.TableSpecs()})
}

func (s *Server) replicate(w http.ResponseWriter, r *http.Request) {
	var req ReplicateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	tbl, err := s.db.Table(req.Table)
	if err != nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, err)
		return
	}
	log := tbl.ShipLog()
	if log == nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("table %q is not persistent: no WAL to ship", req.Table))
		return
	}
	shards := log.NumShards()
	if len(req.Offsets) != 0 && len(req.Offsets) != shards {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest,
			fmt.Errorf("cursor has %d offsets, table has %d shards", len(req.Offsets), shards))
		return
	}
	man := log.Manifest()
	if req.Generation > man.Generation {
		writeErr(w, http.StatusConflict, ErrCodeStaleGen,
			fmt.Errorf("follower cursor at generation %d but leader is at %d: "+
				"the cursor belongs to a different or reset leader", req.Generation, man.Generation))
		return
	}

	gen := req.Generation
	offsets := make([]int64, shards)
	copy(offsets, req.Offsets)
	mode := "tail"
	if req.Generation < man.Generation {
		// The cursor predates the committed generation. If it sits
		// exactly at the last truncation's sizes the follower missed
		// nothing — roll it over. Anything else needs the snapshots.
		if trunc, ok := log.LastTruncation(); ok &&
			trunc.FromGen == req.Generation && man.Generation == req.Generation+1 &&
			offsetsAt(offsets, trunc.Sizes) {
			gen = man.Generation
			offsets = make([]int64, shards)
		} else {
			mode = "rebase"
		}
	}

	var blobs [][]byte
	if mode == "rebase" {
		man, blobs, err = log.SnapshotBlobs()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, ErrCodeInternal, err)
			return
		}
		gen = man.Generation
		offsets = make([]int64, shards)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	send := func(line replLine) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if err := writeNDJSON(w, line); err != nil {
			return false // follower went away; its reconnect resumes the cursor
		}
		return true
	}
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	if !send(replLine{Header: &replHeader{
		Table: req.Table, Shards: shards, Generation: gen, Mode: mode, NextIDs: man.NextIDs,
	}}) {
		return
	}
	if mode == "rebase" {
		for i := 0; i < shards; i++ {
			blob := blobs[i]
			for off := 0; ; off += replSnapChunk {
				end := off + replSnapChunk
				last := end >= len(blob)
				if last {
					end = len(blob)
				}
				if !send(replLine{Snap: &replSnap{Shard: i, Data: blob[off:end], Last: last}}) {
					return
				}
				if last {
					break
				}
			}
		}
	}
	flush()

	ctx := r.Context()
	lastPing := time.Now()
	for {
		cur := log.Manifest()
		if cur.Generation != gen {
			// A checkpoint committed under the live stream. A fully
			// caught-up cursor (exactly at the truncation sizes) rolls
			// over; anything behind points at bytes that now exist only
			// inside the new snapshots.
			if trunc, ok := log.LastTruncation(); ok &&
				trunc.FromGen == gen && cur.Generation == gen+1 && offsetsAt(offsets, trunc.Sizes) {
				gen = cur.Generation
				for i := range offsets {
					offsets[i] = 0
				}
				if !send(replLine{Commit: &replCommit{Generation: gen, Counts: log.RecordCounts(), Reset: true}}) {
					return
				}
				flush()
				continue
			}
			send(replLine{End: &replEnd{Reason: "rebase_required"}})
			flush()
			return
		}
		progress := false
		for i := 0; i < shards; i++ {
			if err := log.FlushShard(i); err != nil {
				send(replLine{Error: &ErrorDetail{Code: ErrCodeInternal, Message: err.Error()}})
				flush()
				return
			}
			data, nrec, err := log.ReadShard(i, offsets[i], replReadBytes)
			if err != nil {
				send(replLine{Error: &ErrorDetail{Code: ErrCodeInternal, Message: err.Error()}})
				flush()
				return
			}
			if len(data) == 0 {
				continue
			}
			// Generation stability: if a checkpoint committed during the
			// read, these bytes may already belong to the next generation
			// at rewound offsets. Discard and let the outer check decide.
			if log.Manifest().Generation != gen {
				break
			}
			if !send(replLine{Recs: &replRecs{Shard: i, From: offsets[i], N: nrec, Data: data}}) {
				return
			}
			offsets[i] += int64(len(data))
			progress = true
		}
		if progress {
			// One commit per shipped round: the follower's batch/cursor
			// boundary, aligned with group-commit windows on the leader
			// (appends become visible to ReadShard at flush granularity).
			if !send(replLine{Commit: &replCommit{Generation: gen, Counts: log.RecordCounts()}}) {
				return
			}
			flush()
			lastPing = time.Now()
			continue
		}
		if time.Since(lastPing) >= replPing {
			if !send(replLine{Ping: &replCommit{Generation: gen, Counts: log.RecordCounts()}}) {
				return
			}
			flush()
			lastPing = time.Now()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(replPoll):
		}
	}
}

// offsetsAt reports whether a follower cursor sits exactly at the
// recorded truncation sizes (i.e. it had applied everything the
// checkpoint folded into the snapshots).
func offsetsAt(offsets []int64, sizes []int64) bool {
	if len(offsets) != len(sizes) {
		return false
	}
	for i := range offsets {
		if offsets[i] != sizes[i] {
			return false
		}
	}
	return true
}
