package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/tuple"
)

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var (
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)
	helpLine   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeLine   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// parseExposition validates the text format line by line and returns
// family name -> type, plus sample name -> value for singly-labelled
// table samples (label set {table="logs"}).
func parseExposition(t *testing.T, body string) (types map[string]string, tableVals map[string]float64) {
	t.Helper()
	types = map[string]string{}
	tableVals = map[string]float64{}
	var lastHelp, lastType string
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if m := helpLine.FindStringSubmatch(line); m != nil {
			lastHelp = m[1]
			continue
		}
		if m := typeLine.FindStringSubmatch(line); m != nil {
			if lastHelp != m[1] {
				t.Fatalf("# TYPE %s not preceded by its # HELP (saw %q)", m[1], lastHelp)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("family %s declared twice", m[1])
			}
			types[m[1]] = m[2]
			lastType = m[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unexpected comment line %q", line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if base != lastType && m[1] != lastType {
			// Samples must follow their family's TYPE comment.
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q before its # TYPE", line)
			}
		}
		if m[2] == `{table="logs"}` {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad value in %q", line)
			}
			tableVals[m[1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types, tableVals
}

// TestMetricsExposition checks the scrape is a valid Prometheus text
// exposition covering the engine metric catalog (>= 12 engine families)
// plus the per-route latency histogram.
func TestMetricsExposition(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	if _, err := c.Query("SELECT * FROM logs WHERE sev > 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tick(2); err != nil {
		t.Fatal(err)
	}
	body := scrape(t, c.base)
	types, _ := parseExposition(t, body)

	engine := 0
	for name, kind := range types {
		if strings.HasPrefix(name, "fungusdb_table_") || strings.HasPrefix(name, "fungusdb_storage_") || strings.HasPrefix(name, "fungusdb_wal_") {
			engine++
		}
		if strings.HasSuffix(name, "_total") && kind != "counter" {
			t.Errorf("%s has _total suffix but TYPE %s", name, kind)
		}
	}
	if engine < 12 {
		t.Errorf("only %d engine families exposed, want >= 12:\n%v", engine, types)
	}
	if types["fungusdb_http_query_seconds"] != "histogram" {
		t.Errorf("latency histogram missing or mistyped: %q", types["fungusdb_http_query_seconds"])
	}
	// The v1 query above must have landed in the route histogram.
	if !strings.Contains(body, `fungusdb_http_query_seconds_count{route="v1_query"} 1`) {
		t.Errorf("v1_query latency not recorded:\n%s", body)
	}
	// Stable names: the acceptance set the dashboards build on.
	for _, name := range []string{
		"fungusdb_table_inserted_total", "fungusdb_table_rotted_total",
		"fungusdb_table_consumed_total", "fungusdb_table_queries_total",
		"fungusdb_table_ticks_total", "fungusdb_table_live_tuples",
		"fungusdb_table_shard_tuples", "fungusdb_storage_segments_pruned_total",
		"fungusdb_storage_tuples_skipped_total", "fungusdb_storage_batches_scanned_total",
		"fungusdb_storage_rows_vectorized_total", "fungusdb_wal_generation",
	} {
		if _, ok := types[name]; !ok {
			t.Errorf("metric %s missing from scrape", name)
		}
	}
}

// TestMetricsStatsParity cross-checks every counter the scrape exports
// for a table against the /v1 stats endpoint: the two surfaces read the
// same engine state and must agree while the table is quiescent.
func TestMetricsStatsParity(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	if _, err := c.Query("SELECT CONSUME * FROM logs WHERE sev = 7"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tick(4); err != nil { // linear 0.25 fungus: 4 ticks rots the survivors
		t.Fatal(err)
	}
	st, err := c.Stats("logs")
	if err != nil {
		t.Fatal(err)
	}
	_, vals := parseExposition(t, scrape(t, c.base))
	for name, want := range map[string]float64{
		"fungusdb_table_inserted_total":          float64(st.Inserted),
		"fungusdb_table_rotted_total":            float64(st.Rotted),
		"fungusdb_table_consumed_total":          float64(st.Consumed),
		"fungusdb_table_distilled_total":         float64(st.Distilled),
		"fungusdb_table_queries_total":           float64(st.Queries),
		"fungusdb_table_ticks_total":             float64(st.Ticks),
		"fungusdb_table_live_tuples":             float64(st.Live),
		"fungusdb_table_bytes":                   float64(st.Bytes),
		"fungusdb_table_shards":                  float64(st.Shards),
		"fungusdb_table_capture_rate":            st.CaptureRate,
		"fungusdb_storage_segments_pruned_total": float64(st.SegmentsPruned),
		"fungusdb_storage_tuples_skipped_total":  float64(st.TuplesSkipped),
		"fungusdb_storage_batches_scanned_total": float64(st.BatchesScanned),
		"fungusdb_storage_rows_vectorized_total": float64(st.RowsVectorized),
		"fungusdb_wal_generation":                float64(st.WALGeneration),
		"fungusdb_wal_shards":                    float64(st.WALShards),
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("scrape missing %s{table=\"logs\"}", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, stats endpoint says %v", name, got, want)
		}
	}
	if st.Consumed == 0 || st.Rotted == 0 {
		t.Fatalf("test did not exercise consume/rot: %+v", st)
	}
}

// TestMetricsScrapeConcurrent scrapes while inserts, queries and decay
// ticks run — the -race CI job drives this to prove the scrape path
// takes consistent locks against the engine's writers.
func TestMetricsScrapeConcurrent(t *testing.T) {
	db, err := core.Open(core.DBConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	schema := tuple.MustSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindFloat},
	)
	tbl, err := db.CreateTable("hot", core.TableConfig{Schema: schema, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	run := func(fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if err := fn(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	run(func() error { // writer
		rows := make([][]tuple.Value, 32)
		for i := range rows {
			rows[i] = core.Row(i, float64(i)*1.5)
		}
		_, err := tbl.InsertBatch(rows)
		return err
	})
	run(func() error { // decay
		_, err := db.Tick()
		return err
	})
	run(func() error { // reader
		_, err := tbl.SQL("SELECT COUNT(*) FROM hot WHERE k > 10")
		return err
	})
	for i := 0; i < 3; i++ { // three concurrent scrapers
		run(func() error {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("scrape status %d", resp.StatusCode)
			}
			return nil
		})
	}
	wg.Wait()
	// Post-churn scrape still parses.
	parseExposition(t, scrape(t, ts.URL))
}
