package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fungusdb/internal/core"
	"fungusdb/pkg/client"
)

// newServerV2 spins up a server plus the public streaming client.
func newServerV2(t *testing.T, cfg Config) (*client.Client, *core.DB, *httptest.Server) {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ts := httptest.NewServer(NewWithConfig(db, cfg))
	t.Cleanup(ts.Close)
	return client.New(ts.URL, ts.Client()), db, ts
}

func seedV2(t *testing.T, c *client.Client, rows int) {
	t.Helper()
	if err := c.CreateTable(client.TableSpec{
		Name:   "logs",
		Schema: "host STRING, sev INT, latency FLOAT, ok BOOL",
		Shards: 4,
	}); err != nil {
		t.Fatal(err)
	}
	batch := make([][]any, 0, 1000)
	for i := 0; i < rows; i++ {
		batch = append(batch, []any{fmt.Sprintf("web-%d", i%5), i % 10, float64(i % 100), i%2 == 0})
		if len(batch) == cap(batch) || i == rows-1 {
			if _, err := c.Insert("logs", batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
}

func TestV2PrepareAndStreamWithParams(t *testing.T) {
	c, _, _ := newServerV2(t, Config{})
	seedV2(t, c, 500)
	stmt, err := c.Prepare("SELECT host, sev FROM logs WHERE sev >= ? AND latency <= ? ORDER BY sev DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams != 2 {
		t.Fatalf("params = %d, want 2", stmt.NumParams)
	}
	if len(stmt.Cols) != 2 || stmt.Cols[0] != "host" {
		t.Fatalf("cols = %v", stmt.Cols)
	}
	rows, err := stmt.Query(8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		if sev, ok := rows.Row()[1].(float64); !ok || sev < 8 {
			t.Fatalf("row %v violates sev >= 8", rows.Row())
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("rows = %d, want 10", n)
	}
	// Re-preparing the same SQL reuses the handle.
	stmt2, err := c.Prepare("SELECT host, sev FROM logs WHERE sev >= ? AND latency <= ? ORDER BY sev DESC LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.Handle != stmt.Handle {
		t.Fatalf("handle = %q, want reuse of %q", stmt2.Handle, stmt.Handle)
	}
}

// TestV2HandleHealsAfterTableRecreate drops and recreates the table
// behind a prepared handle: executing the stale handle fails (the old
// plan is bound to the closed table), and re-preparing the same SQL
// must re-bind the handle to the new table rather than hand the stale
// compilation back.
func TestV2HandleHealsAfterTableRecreate(t *testing.T) {
	c, _, _ := newServerV2(t, Config{})
	seedV2(t, c, 20)
	stmt, err := c.Prepare("SELECT host FROM logs")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("logs"); err != nil {
		t.Fatal(err)
	}
	seedV2(t, c, 5)
	if _, err := stmt.Query(); err == nil {
		t.Fatal("stale handle executed against a dropped table")
	}
	stmt2, err := c.Prepare("SELECT host FROM logs")
	if err != nil {
		t.Fatal(err)
	}
	if stmt2.Handle != stmt.Handle {
		t.Fatalf("re-prepare minted a new handle %q (had %q)", stmt2.Handle, stmt.Handle)
	}
	rows, err := stmt2.Query()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("healed handle streamed %d rows, want 5", n)
	}
}

// TestV2Streams100kRows is the acceptance criterion: a 100k-row answer
// arrives complete over the NDJSON stream, and the server's own
// response writer never buffers it whole (httptest's default recorder
// would; the real server chunk-flushes every flushEvery rows).
func TestV2Streams100kRows(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-row stream in -short mode")
	}
	c, _, _ := newServerV2(t, Config{})
	seedV2(t, c, 100_000)
	rows, err := c.Query("SELECT host, sev, latency FROM logs")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 100_000 {
		t.Fatalf("streamed %d rows, want 100000", n)
	}
	if rows.Scanned() != 100_000 {
		t.Fatalf("scanned = %d, want 100000", rows.Scanned())
	}
}

// TestV2EarlyDisconnectReleasesServer closes the response body after a
// few rows and checks the server-side scan unwinds (the table accepts
// writes promptly afterwards).
func TestV2EarlyDisconnectReleasesServer(t *testing.T) {
	c, db, _ := newServerV2(t, Config{})
	seedV2(t, c, 50_000)
	rows, err := c.Query("SELECT host FROM logs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && rows.Next(); i++ {
	}
	rows.Close()
	tbl, err := db.Table("logs")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tbl.Insert(core.Row("late", 1, 0.5, true))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("insert blocked after client disconnect")
	}
}

func TestV2ErrorCodes(t *testing.T) {
	c, _, ts := newServerV2(t, Config{})
	seedV2(t, c, 10)
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"parse", "/v2/prepare", `{"sql":"SELEC nope"}`, 400, ErrCodeParse},
		{"plan", "/v2/prepare", `{"sql":"SELECT nosuch FROM logs"}`, 400, ErrCodePlan},
		{"no table", "/v2/prepare", `{"sql":"SELECT * FROM nosuch"}`, 404, ErrCodeNotFound},
		{"stale handle", "/v2/query", `{"handle":"p999"}`, 404, ErrCodeNotFound},
		{"both", "/v2/query", `{"sql":"SELECT * FROM logs","handle":"p1"}`, 400, ErrCodeBadRequest},
		{"neither", "/v2/query", `{}`, 400, ErrCodeBadRequest},
		{"bad param", "/v2/query", `{"sql":"SELECT * FROM logs WHERE sev > ?","params":[null]}`, 400, ErrCodeBadRequest},
		{"arity", "/v2/query", `{"sql":"SELECT * FROM logs WHERE sev > ?"}`, 400, ErrCodeExec},
		{"v1 parse", "/v1/query", `{"sql":"SELEC nope"}`, 400, ErrCodeParse},
		{"v1 no table", "/v1/query", `{"sql":"SELECT * FROM nosuch"}`, 404, ErrCodeNotFound},
		{"v1 plan", "/v1/query", `{"sql":"SELECT nosuch FROM logs"}`, 400, ErrCodePlan},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var env errorBody
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || env.Error.Code != tc.code {
			t.Errorf("%s: got %d/%q (%s), want %d/%q",
				tc.name, resp.StatusCode, env.Error.Code, env.Error.Message, tc.status, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

// TestV2AskErrorShape checks the v1 ask handler speaks the same error
// envelope with compile-time validation.
func TestV2AskErrorShape(t *testing.T) {
	c, _, ts := newServerV2(t, Config{})
	seedV2(t, c, 10)
	get := func(path string) (int, errorBody) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env errorBody
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env
	}
	if status, env := get("/v1/tables/logs/containers/none/ask?q=count"); status != 404 || env.Error.Code != ErrCodeNotFound {
		t.Fatalf("missing container = %d/%q", status, env.Error.Code)
	}
	// Unknown column now fails at compile time with plan_error.
	if status, env := get("/v1/tables/logs/containers/none/ask?q=ndv:nosuch"); status != 400 || env.Error.Code != ErrCodePlan {
		t.Fatalf("unknown ask column = %d/%q", status, env.Error.Code)
	}
}

func TestMaxRequestBytesConfigurable(t *testing.T) {
	c, _, ts := newServerV2(t, Config{MaxRequestBytes: 256})
	if err := c.CreateTable(client.TableSpec{Name: "logs", Schema: "host STRING, sev INT, latency FLOAT, ok BOOL"}); err != nil {
		t.Fatal(err)
	}
	// A body over the 256-byte cap must be rejected.
	var big bytes.Buffer
	big.WriteString(`{"rows":[`)
	for i := 0; i < 100; i++ {
		if i > 0 {
			big.WriteString(",")
		}
		big.WriteString(`["hostname-padding-padding",1,2.5,true]`)
	}
	big.WriteString(`]}`)
	resp, err := http.Post(ts.URL+"/v1/tables/logs/rows", "application/json", &big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body = %d, want 400", resp.StatusCode)
	}
	// Small bodies still work.
	if _, err := c.Insert("logs", [][]any{{"w", 1, 2.5, true}}); err != nil {
		t.Fatal(err)
	}
}

// TestV2WireFormat reads the raw NDJSON to pin the wire contract:
// header line, row lines, trailer line.
func TestV2WireFormat(t *testing.T) {
	c, _, ts := newServerV2(t, Config{})
	seedV2(t, c, 3)
	resp, err := http.Post(ts.URL+"/v2/query", "application/json",
		strings.NewReader(`{"sql":"SELECT host FROM logs"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 5 { // header + 3 rows + trailer
		t.Fatalf("lines = %d (%v)", len(lines), lines)
	}
	if !strings.HasPrefix(lines[0], `{"cols":["host"]}`) {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:4] {
		if !strings.HasPrefix(l, "[") {
			t.Fatalf("row line = %q", l)
		}
	}
	var trailer StreamTrailer
	if err := json.Unmarshal([]byte(lines[4]), &trailer); err != nil || !trailer.Done || trailer.Rows != 3 {
		t.Fatalf("trailer = %q (%v)", lines[4], err)
	}
}
