// The /v2 query surface: prepared statement handles plus NDJSON
// streaming execution. Unlike /v1/query, which materialises the whole
// grid into one JSON body, /v2/query writes one JSON value per line
// and flushes as it goes, so an arbitrarily large answer set streams
// through bounded server memory:
//
//	POST /v2/prepare  {"sql": "SELECT ... WHERE x > ?"}
//	  -> {"handle":"p1","table":"t","cols":[...],"params":1}
//	POST /v2/query    {"handle":"p1","params":[42]}   (or {"sql": ...})
//	  -> {"cols":[...]}            header line
//	     [1,"a",true]              one line per row
//	     {"done":true,"rows":2,"scanned":9}   trailer line
//
// A failure before the first byte is a normal error envelope with the
// usual status; a failure mid-stream (the status line is long gone)
// terminates the stream with an {"error":{...}} line instead of a
// trailer, so clients always know whether the row set is complete.
package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
)

// defaultHandleCap bounds the prepared-handle cache when the Config
// does not choose a size.
const defaultHandleCap = 256

// handleCache is the server-side LRU of prepared statements. Handles
// are opaque tokens; preparing the same SQL twice returns the same
// handle. Eviction only forgets the server-side plan — an evicted
// handle fails with not_found and the client re-prepares.
type handleCache struct {
	mu    sync.Mutex
	cap   int
	seq   uint64
	byID  map[string]*list.Element
	bySQL map[string]*list.Element
	lru   *list.List // front = most recently used
}

type handleEntry struct {
	id    string
	sql   string
	table string
	pq    *core.PreparedQuery
}

func newHandleCache(capacity int) *handleCache {
	if capacity <= 0 {
		capacity = defaultHandleCap
	}
	return &handleCache{
		cap:   capacity,
		byID:  make(map[string]*list.Element, capacity),
		bySQL: make(map[string]*list.Element, capacity),
		lru:   list.New(),
	}
}

// add caches a prepared statement and returns its handle (reusing the
// existing one when the SQL is already cached). The entry's compiled
// query is always replaced with the caller's fresh compilation: if the
// table was dropped and recreated since the first prepare, the old
// PreparedQuery is bound to the closed table, and re-preparing must
// heal the handle rather than hand the stale binding back.
func (c *handleCache) add(sql, table string, pq *core.PreparedQuery) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.bySQL[sql]; ok {
		e := el.Value.(*handleEntry)
		e.table = table
		e.pq = pq
		c.lru.MoveToFront(el)
		return e.id
	}
	if c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		if oldest != nil {
			e := oldest.Value.(*handleEntry)
			c.lru.Remove(oldest)
			delete(c.byID, e.id)
			delete(c.bySQL, e.sql)
		}
	}
	c.seq++
	e := &handleEntry{id: "p" + strconv.FormatUint(c.seq, 10), sql: sql, table: table, pq: pq}
	el := c.lru.PushFront(e)
	c.byID[e.id] = el
	c.bySQL[sql] = el
	return e.id
}

// get resolves a handle to its compiled query, refreshing its
// recency. The PreparedQuery is copied out under the lock because
// add() may concurrently refresh the entry's binding.
func (c *handleCache) get(id string) (*core.PreparedQuery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*handleEntry).pq, true
}

// PrepareRequest is the POST /v2/prepare body.
type PrepareRequest struct {
	SQL string `json:"sql"`
}

// PrepareResponse describes the compiled statement.
type PrepareResponse struct {
	Handle string   `json:"handle"`
	Table  string   `json:"table"`
	Cols   []string `json:"cols"`
	Params int      `json:"params"`
}

func (s *Server) prepareV2(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	stmt, err := query.ParseStatement(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeParse, err)
		return
	}
	tbl, err := s.db.Table(stmt.From())
	if err != nil {
		writeErr(w, http.StatusNotFound, ErrCodeNotFound, err)
		return
	}
	pq, err := tbl.PrepareStatement(stmt)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodePlan, err)
		return
	}
	handle := s.prep.add(req.SQL, stmt.From(), pq)
	writeJSON(w, http.StatusOK, PrepareResponse{
		Handle: handle,
		Table:  stmt.From(),
		Cols:   pq.Cols(),
		Params: pq.NumParams(),
	})
}

// QueryV2Request is the POST /v2/query body: exactly one of SQL or
// Handle, plus positional parameter values for the statement's `?`
// placeholders.
type QueryV2Request struct {
	SQL     string `json:"sql,omitempty"`
	Handle  string `json:"handle,omitempty"`
	Params  []any  `json:"params,omitempty"`
	Distill string `json:"distill,omitempty"`
}

// StreamHeader is the first NDJSON line of a /v2/query response.
type StreamHeader struct {
	Cols []string `json:"cols"`
}

// StreamTrailer is the final NDJSON line of a successful response.
type StreamTrailer struct {
	Done    bool `json:"done"`
	Rows    int  `json:"rows"`
	Scanned int  `json:"scanned"`
}

// flushEvery is how many rows go out between explicit flushes on the
// streaming path; small enough that clients see steady progress, large
// enough to amortise the syscall.
const flushEvery = 64

// streamWriteTimeout bounds how long one row batch may take to reach
// the client. The shard scan producers hold their shards' read locks
// for the life of the stream, so a stalled-but-connected client must
// not be able to park them (and block writers) indefinitely: once the
// kernel buffers fill and a write exceeds this deadline, the write
// errors, the handler returns, and Rows.Close aborts the scan.
const streamWriteTimeout = 30 * time.Second

func (s *Server) queryV2(w http.ResponseWriter, r *http.Request) {
	defer s.observe("v2_query", time.Now())
	var req QueryV2Request
	if !s.readJSON(w, r, &req) {
		return
	}
	var pq *core.PreparedQuery
	switch {
	case req.Handle != "" && req.SQL != "":
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("pass sql or handle, not both"))
		return
	case req.Handle != "":
		cached, ok := s.prep.get(req.Handle)
		if !ok {
			writeErr(w, http.StatusNotFound, ErrCodeNotFound, fmt.Errorf("no prepared handle %q (re-prepare)", req.Handle))
			return
		}
		pq = cached
	case req.SQL != "":
		var ok bool
		if pq, ok = s.preparedForSQL(w, req.SQL); !ok {
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, fmt.Errorf("need sql or handle"))
		return
	}
	params, err := decodeParams(req.Params)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrCodeBadRequest, err)
		return
	}
	var opt core.QueryOpts
	if req.Distill != "" {
		opt.Distill = req.Distill
	}
	rows, err := pq.ExecuteOpts(opt, params...)
	if err != nil {
		writeExecErr(w, err)
		return
	}
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Best effort: not every ResponseWriter supports per-write
	// deadlines (the error is ignored), but the net/http server does.
	rc := http.NewResponseController(w)
	armDeadline := func() { _ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout)) }
	armDeadline()
	if err := writeNDJSON(w, StreamHeader{Cols: rows.Cols()}); err != nil {
		return // client went away before the header
	}
	flush()
	ctx := r.Context()
	n := 0
	for rows.Next() {
		vals := rows.Values()
		out := make([]any, len(vals))
		for j, v := range vals {
			out[j] = valueToJSON(v)
		}
		if err := writeNDJSON(w, out); err != nil {
			return // write failure: client disconnected; Close aborts the scan
		}
		n++
		if n%flushEvery == 0 {
			flush()
			armDeadline()
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}
	if err := rows.Err(); err != nil {
		// Mid-stream failure: the 200 status is already on the wire, so
		// the error travels as the final line in place of the trailer.
		_ = writeNDJSON(w, errorBody{Error: ErrorDetail{Code: ErrCodeExec, Message: err.Error()}})
		flush()
		return
	}
	_ = writeNDJSON(w, StreamTrailer{Done: true, Rows: n, Scanned: rows.Scanned()})
	flush()
}

// writeNDJSON marshals v as one line (json.Encoder appends the
// newline itself).
func writeNDJSON(w http.ResponseWriter, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// decodeParams converts JSON parameter values into typed attribute
// values: integral numbers become INT, other numbers FLOAT, strings
// STRING, booleans BOOL. Comparisons coerce across the numeric kinds,
// so an INT parameter matches a FLOAT column and vice versa.
func decodeParams(raw []any) ([]tuple.Value, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	out := make([]tuple.Value, len(raw))
	for i, v := range raw {
		switch x := v.(type) {
		case float64:
			if x == float64(int64(x)) {
				out[i] = tuple.Int(int64(x))
			} else {
				out[i] = tuple.Float(x)
			}
		case string:
			out[i] = tuple.String_(x)
		case bool:
			out[i] = tuple.Bool(x)
		default:
			return nil, fmt.Errorf("param %d: unsupported value %v (want number, string or bool)", i+1, v)
		}
	}
	return out, nil
}
