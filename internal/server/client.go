package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"fungusdb/internal/catalog"
)

// Client is the Go client for a fungusd server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets base (e.g. "http://localhost:8044"). A nil
// httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: read: %w", err)
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error.Message != "" {
			return fmt.Errorf("server: %s (%s)", eb.Error.Message, eb.Error.Code)
		}
		return fmt.Errorf("server: status %d: %s", resp.StatusCode, trim(string(data)))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decode: %w", err)
		}
	}
	return nil
}

// Health checks liveness and returns the server's logical time.
func (c *Client) Health() (now uint64, err error) {
	var resp struct {
		OK  bool   `json:"ok"`
		Now uint64 `json:"now"`
	}
	if err := c.do(http.MethodGet, "/healthz", nil, &resp); err != nil {
		return 0, err
	}
	if !resp.OK {
		return 0, fmt.Errorf("server not ok")
	}
	return resp.Now, nil
}

// Tables lists table names.
func (c *Client) Tables() ([]string, error) {
	var resp struct {
		Tables []string `json:"tables"`
	}
	if err := c.do(http.MethodGet, "/v1/tables", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// CreateTable creates a table from a spec.
func (c *Client) CreateTable(spec catalog.TableSpec, persist bool) error {
	return c.do(http.MethodPost, "/v1/tables", CreateTableRequest{TableSpec: spec, Persist: persist}, nil)
}

// DropTable removes a table.
func (c *Client) DropTable(name string) error {
	return c.do(http.MethodDelete, "/v1/tables/"+name, nil, nil)
}

// Insert bulk-inserts positional rows.
func (c *Client) Insert(table string, rows [][]any) (InsertResponse, error) {
	var resp InsertResponse
	err := c.do(http.MethodPost, "/v1/tables/"+table+"/rows", InsertRequest{Rows: rows}, &resp)
	return resp, err
}

// Query runs a SELECT (optionally SELECT CONSUME) statement.
func (c *Client) Query(sql string) (QueryResponse, error) {
	var resp QueryResponse
	err := c.do(http.MethodPost, "/v1/query", QueryRequest{SQL: sql}, &resp)
	return resp, err
}

// QueryDistill runs a consuming query whose matched set is distilled
// into the named container.
func (c *Client) QueryDistill(sql, container string) (QueryResponse, error) {
	var resp QueryResponse
	err := c.do(http.MethodPost, "/v1/query", QueryRequest{SQL: sql, Distill: container}, &resp)
	return resp, err
}

// Tick advances decay by n cycles.
func (c *Client) Tick(n int) (TickResponse, error) {
	var resp TickResponse
	err := c.do(http.MethodPost, "/v1/tick", TickRequest{N: n}, &resp)
	return resp, err
}

// Stats fetches a table's freshness profile and counters.
func (c *Client) Stats(table string) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(http.MethodGet, "/v1/tables/"+table+"/stats", nil, &resp)
	return resp, err
}

// Ask poses a question to a knowledge container. Question forms:
// "count", "ndv:col", "mean:col", "sum:col", "q:col:0.95", "top:col",
// "has:col:value".
func (c *Client) Ask(table, container, question string) (AskResponse, error) {
	var resp AskResponse
	err := c.do(http.MethodGet,
		"/v1/tables/"+table+"/containers/"+container+"/ask?q="+url.QueryEscape(question), nil, &resp)
	return resp, err
}

// Containers lists a table's knowledge containers.
func (c *Client) Containers(table string) ([]ContainerInfo, error) {
	var resp struct {
		Containers []ContainerInfo `json:"containers"`
	}
	if err := c.do(http.MethodGet, "/v1/tables/"+table+"/containers", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Containers, nil
}
