package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fungusdb/internal/catalog"
	"fungusdb/internal/core"
)

func newServer(t *testing.T) (*Client, *core.DB) {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ts := httptest.NewServer(New(db))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), db
}

func spec() catalog.TableSpec {
	return catalog.TableSpec{
		Name:   "logs",
		Schema: "host STRING, sev INT, latency FLOAT, ok BOOL",
		Fungus: &catalog.FungusSpec{Kind: "linear", Rate: 0.25},
	}
}

func seed(t *testing.T, c *Client) {
	t.Helper()
	if err := c.CreateTable(spec(), false); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Insert("logs", [][]any{
		{"web-1", 2, 9.5, true},
		{"web-2", 7, 1.25, false},
		{"web-1", 5, 3.0, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Inserted != 3 || resp.FirstID != 0 {
		t.Fatalf("insert resp = %+v", resp)
	}
}

func TestHealthAndTables(t *testing.T) {
	c, _ := newServer(t)
	now, err := c.Health()
	if err != nil || now != 0 {
		t.Fatalf("health = %d, %v", now, err)
	}
	seed(t, c)
	tables, err := c.Tables()
	if err != nil || len(tables) != 1 || tables[0] != "logs" {
		t.Fatalf("tables = %v, %v", tables, err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	g, err := c.Query("SELECT host, sev, latency, ok FROM logs WHERE sev <= 5 ORDER BY sev")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("rows = %v", g.Rows)
	}
	r0 := g.Rows[0]
	if r0[0] != "web-1" || r0[1] != float64(2) || r0[2] != 9.5 || r0[3] != true {
		t.Errorf("row 0 = %v", r0)
	}
}

func TestQueryGroupBy(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	g, err := c.Query("SELECT host, COUNT(*) AS n FROM logs GROUP BY host ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 || g.Rows[0][0] != "web-1" || g.Rows[0][1] != float64(2) {
		t.Errorf("grid = %+v", g)
	}
}

func TestConsumeAndContainersOverHTTP(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	g, err := c.QueryDistill("SELECT CONSUME * FROM logs WHERE sev <= 5", "serious")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("consumed rows = %d", len(g.Rows))
	}
	st, err := c.Stats("logs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 1 || st.Consumed != 2 || st.Distilled != 2 {
		t.Errorf("stats = %+v", st)
	}
	cs, err := c.Containers("logs")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || cs[0].Name != "serious" || cs[0].Count != 2 {
		t.Errorf("containers = %+v", cs)
	}
}

func TestAskContainerOverHTTP(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	if _, err := c.QueryDistill("SELECT CONSUME * FROM logs", "all"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want float64
	}{
		{"count", 3},
		{"sum:sev", 14},
		{"ndv:host", 2},
	}
	for _, tc := range cases {
		resp, err := c.Ask("logs", "all", tc.q)
		if err != nil {
			t.Fatalf("Ask(%q): %v", tc.q, err)
		}
		if resp.Value != tc.want {
			t.Errorf("Ask(%q) = %v, want %v", tc.q, resp.Value, tc.want)
		}
	}
	resp, err := c.Ask("logs", "all", "q:latency:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value < 1 || resp.Value > 10 {
		t.Errorf("median latency = %v", resp.Value)
	}
	resp, err = c.Ask("logs", "all", "top:host")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Top) != 2 || resp.Top[0].Item != "web-1" {
		t.Errorf("top = %+v", resp.Top)
	}
	resp, err = c.Ask("logs", "all", "has:host:web-1")
	if err != nil || resp.Bool == nil || !*resp.Bool {
		t.Errorf("has:host:web-1 = %+v, %v", resp, err)
	}
	resp, err = c.Ask("logs", "all", "has:sev:99")
	if err != nil || resp.Bool == nil || *resp.Bool {
		t.Errorf("has:sev:99 = %+v, %v", resp, err)
	}
	// Errors.
	for _, q := range []string{"nonsense", "ndv", "mean:host", "q:latency:x", "has:sev"} {
		if _, err := c.Ask("logs", "all", q); err == nil {
			t.Errorf("Ask(%q) accepted", q)
		}
	}
	if _, err := c.Ask("logs", "nosuch", "count"); err == nil {
		t.Error("missing container accepted")
	}
}

func TestTickDecaysOverHTTP(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	// Linear rate 0.25: everything rots on the 4th tick.
	resp, err := c.Tick(4)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rotted != 3 || resp.Live != 0 || resp.Now != 4 {
		t.Errorf("tick resp = %+v", resp)
	}
	st, _ := c.Stats("logs")
	if st.Live != 0 || st.Rotted != 3 {
		t.Errorf("stats after rot = %+v", st)
	}
}

func TestDropTable(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	if err := c.DropTable("logs"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("logs"); err == nil {
		t.Error("double drop succeeded")
	}
	tables, _ := c.Tables()
	if len(tables) != 0 {
		t.Errorf("tables = %v", tables)
	}
}

func TestErrorsSurfaceAsJSON(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	cases := []func() error{
		func() error { return c.CreateTable(spec(), false) }, // duplicate
		func() error { return c.CreateTable(catalog.TableSpec{Name: "x", Schema: "bad"}, false) },
		func() error { return c.CreateTable(spec(), true) }, // persist without Dir
		func() error { _, err := c.Insert("nosuch", [][]any{{1}}); return err },
		func() error { _, err := c.Insert("logs", [][]any{{"only-one"}}); return err },
		func() error { _, err := c.Insert("logs", [][]any{{1, 2, 3, 4}}); return err }, // wrong kinds
		func() error { _, err := c.Insert("logs", nil); return err },
		func() error { _, err := c.Query("SELECT nosuch FROM logs"); return err },
		func() error { _, err := c.Query("SELECT * FROM nosuch"); return err },
		func() error { _, err := c.Query("not sql"); return err },
		func() error { _, err := c.Tick(2_000_000); return err },
	}
	for i, fn := range cases {
		if err := fn(); err == nil {
			t.Errorf("case %d succeeded", i)
		} else if !strings.Contains(err.Error(), "server:") {
			t.Errorf("case %d error not from server envelope: %v", i, err)
		}
	}
}

func TestIntColumnRejectsFractional(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	if _, err := c.Insert("logs", [][]any{{"h", 2.5, 1.0, true}}); err == nil {
		t.Error("fractional INT accepted")
	}
}

func TestPersistentSpecOverHTTP(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(core.DBConfig{Seed: 5, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(db))
	c := NewClient(ts.URL, ts.Client())
	if err := c.CreateTable(spec(), true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert("logs", [][]any{{"web-1", 1, 1.0, true}}); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	db.Close()

	// Restart the whole stack on the same dir.
	db2, err := core.Open(core.DBConfig{Seed: 5, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ts2 := httptest.NewServer(New(db2))
	defer ts2.Close()
	c2 := NewClient(ts2.URL, ts2.Client())
	g, err := c2.Query("SELECT COUNT(*) FROM logs")
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows[0][0] != float64(1) {
		t.Errorf("count after restart = %v", g.Rows[0][0])
	}
}

func TestUnknownRoute(t *testing.T) {
	_, db := newServer(t)
	ts := httptest.NewServer(New(db))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestDurabilityStatsOverHTTP(t *testing.T) {
	dir := t.TempDir()
	db, err := core.Open(core.DBConfig{Seed: 5, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ts := httptest.NewServer(New(db))
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())

	s := spec()
	s.Durability = "grouped"
	if err := c.CreateTable(s, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(s.Name, [][]any{{"web-1", 1, 1.0, true}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(s.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Persistent || st.WALSyncMode != "grouped" {
		t.Errorf("stats = %+v, want persistent grouped", st)
	}
	// Unknown durability levels are rejected at create time.
	bad := spec()
	bad.Name = "bad"
	bad.Durability = "paranoid"
	if err := c.CreateTable(bad, false); err == nil {
		t.Error("bad durability accepted over HTTP")
	}
}

func TestPruningCountersOverHTTP(t *testing.T) {
	c, _ := newServer(t)
	seed(t, c)
	// sev spans [2, 7]; a disjoint range predicate lets the zone map
	// skip the whole (single) segment without touching a tuple.
	g, err := c.Query("SELECT host FROM logs WHERE sev > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(g.Rows))
	}
	st, err := c.Stats("logs")
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsPruned == 0 || st.TuplesSkipped == 0 {
		t.Errorf("pruning counters missing from stats: %+v", st)
	}
}
