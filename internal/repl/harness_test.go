// The replication test harness: an in-process leader (persistent DB +
// HTTP server) and follower (in-memory replica DB + repl daemon +
// read-only HTTP front end), plus the convergence oracles the suite
// shares — byte-identical shard snapshots and identical query answers.
//
// The follower DB deliberately runs with a DIFFERENT seed than the
// leader: replayable decay laws are pure functions of (clock, extent),
// so convergence despite divergent RNG streams is itself one of the
// properties under test.
package repl_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fungusdb/internal/catalog"
	"fungusdb/internal/core"
	"fungusdb/internal/repl"
	"fungusdb/internal/server"
	"fungusdb/pkg/client"
)

const tableName = "events"

// eventsSpec is the workload table: a linear fungus (replayable, so
// the follower re-executes logged ticks) over a sharded extent.
func eventsSpec(shards int) catalog.TableSpec {
	return catalog.TableSpec{
		Name:   tableName,
		Schema: "device STRING, temp FLOAT",
		Fungus: &catalog.FungusSpec{Kind: "linear", Rate: 0.04},
		Shards: shards,
		// Generation churn is driven explicitly by the tests (forced
		// checkpoints); keep the automatic trigger out of the way.
		CheckpointEvery: 1 << 30,
	}
}

// leaderHarness is a persistent DB with one spec table behind a real
// HTTP server.
type leaderHarness struct {
	db  *core.DB
	tbl *core.Table
	srv *httptest.Server
	cl  *client.Client
}

func startLeader(t *testing.T, spec catalog.TableSpec) *leaderHarness {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 20150104, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open leader: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTableFromSpec(spec)
	if err != nil {
		t.Fatalf("create leader table: %v", err)
	}
	srv := httptest.NewServer(server.New(db))
	t.Cleanup(srv.Close)
	return &leaderHarness{db: db, tbl: tbl, srv: srv, cl: client.New(srv.URL, nil)}
}

// followerHarness is an in-memory replica DB, its repl daemon, and a
// read-only HTTP front end wired the way cmd/fungusd wires a -follow
// process.
type followerHarness struct {
	db  *core.DB
	f   *repl.Follower
	srv *httptest.Server
	cl  *client.Client
}

// startFollower spins a follower against leaderURL. mod, when non-nil,
// edits the repl.Config before Start (tests inject transports and
// disconnect hooks through it).
func startFollower(t *testing.T, leaderURL string, mod func(*repl.Config)) *followerHarness {
	t.Helper()
	db, err := core.Open(core.DBConfig{Seed: 987654321}) // a different seed than the leader, on purpose
	if err != nil {
		t.Fatalf("open follower: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	cfg := repl.Config{
		Leader:     leaderURL,
		DB:         db,
		PollTables: 20 * time.Millisecond,
		Backoff:    5 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	f, err := repl.Start(cfg)
	if err != nil {
		t.Fatalf("start follower: %v", err)
	}
	t.Cleanup(f.Stop)
	srvCfg := server.Config{ReadOnly: true, ReplStatus: f.ServerStatus}
	handler := server.NewWithConfig(db, srvCfg)
	handler.Registry().Register(f.Collector())
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return &followerHarness{db: db, f: f, srv: srv, cl: client.New(srv.URL, nil)}
}

// waitSynced quiesces: the leader must be idle before calling, and on
// return the follower has applied every record of the leader's current
// generation. It compares against leader-side truth (the WAL's own
// record counts), not the follower's last-heard counts, so a record
// appended a microsecond before the call is still waited for.
func (fh *followerHarness) waitSynced(t *testing.T, lh *leaderHarness) {
	t.Helper()
	log := lh.tbl.ShipLog()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, ok := fh.f.TableStatus(tableName)
		man := log.Manifest()
		var want uint64
		for _, c := range log.RecordCounts() {
			want += c
		}
		if ok && st.Connected && !st.Fenced &&
			st.Generation == man.Generation && st.AppliedRecords == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never synced: leader gen %d with %d records, follower %+v",
				man.Generation, want, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertShardsIdentical is the core convergence oracle: the named
// shards of leader and follower must serialize to byte-identical
// snapshot files (same tuples, same freshness, same zones, same
// allocation cursor).
func assertShardsIdentical(t *testing.T, lh *leaderHarness, fh *followerHarness, shards []int) {
	t.Helper()
	ftbl, err := fh.db.Table(tableName)
	if err != nil {
		t.Fatalf("follower table: %v", err)
	}
	dir := t.TempDir()
	for _, i := range shards {
		lp := filepath.Join(dir, fmt.Sprintf("leader.%d.db", i))
		fp := filepath.Join(dir, fmt.Sprintf("follower.%d.db", i))
		if err := lh.tbl.DumpShardSnapshot(i, lp); err != nil {
			t.Fatalf("dump leader shard %d: %v", i, err)
		}
		if err := ftbl.DumpShardSnapshot(i, fp); err != nil {
			t.Fatalf("dump follower shard %d: %v", i, err)
		}
		lb, err := os.ReadFile(lp)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(fp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, fb) {
			t.Errorf("shard %d diverged: leader snapshot %d bytes, follower %d bytes", i, len(lb), len(fb))
		}
	}
}

// queryRows drains one query into printable rows.
func queryRows(t *testing.T, c *client.Client, sql string, params ...any) []string {
	t.Helper()
	rows, err := c.Query(sql, params...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	defer rows.Close()
	var out []string
	for rows.Next() {
		out = append(out, fmt.Sprintf("%v", rows.Row()))
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return out
}

// assertQueriesIdentical runs the same read-only statements through
// both HTTP servers and compares every row.
func assertQueriesIdentical(t *testing.T, lh *leaderHarness, fh *followerHarness) {
	t.Helper()
	queries := []string{
		"SELECT * FROM events",
		"SELECT device, COUNT(*) AS n FROM events GROUP BY device ORDER BY n DESC LIMIT 5",
		"SELECT device, temp FROM events WHERE temp > 40 ORDER BY temp DESC LIMIT 10",
	}
	for _, q := range queries {
		l := queryRows(t, lh.cl, q)
		f := queryRows(t, fh.cl, q)
		if len(l) != len(f) {
			t.Errorf("query %q: leader %d rows, follower %d rows", q, len(l), len(f))
			continue
		}
		for i := range l {
			if l[i] != f[i] {
				t.Errorf("query %q row %d: leader %s, follower %s", q, i, l[i], f[i])
				break
			}
		}
	}
}

// ingest writes n deterministic-but-varied rows through the leader's
// HTTP API.
func (lh *leaderHarness) ingest(t *testing.T, n int, round int) {
	t.Helper()
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []any{
			fmt.Sprintf("dev-%d", (round*7+i)%13),
			float64((round*31+i*17)%90) + 0.5,
		})
	}
	if _, err := lh.cl.Insert(tableName, rows); err != nil {
		t.Fatalf("insert: %v", err)
	}
}

// consume churns the extent through the paper's destructive-read law.
func (lh *leaderHarness) consume(t *testing.T, threshold float64) {
	t.Helper()
	rows, err := lh.cl.Query("SELECT CONSUME * FROM events WHERE temp > ?", threshold)
	if err != nil {
		t.Fatalf("consume: %v", err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("consume: %v", err)
	}
	rows.Close()
}

func (lh *leaderHarness) tick(t *testing.T, n int) {
	t.Helper()
	if _, err := lh.cl.Tick(n); err != nil {
		t.Fatalf("tick: %v", err)
	}
}

// rewriteTransport redirects every request to the current target host,
// letting a test swap the leader out from under a live follower. The
// zero target passes requests through untouched.
type rewriteTransport struct {
	base   http.RoundTripper
	mu     chan struct{} // 1-buffered mutex (keeps the struct copy-safe in vet's eyes)
	target string        // host:port, "" = passthrough
}

func newRewriteTransport() *rewriteTransport {
	rt := &rewriteTransport{base: http.DefaultTransport, mu: make(chan struct{}, 1)}
	rt.mu <- struct{}{}
	return rt
}

func (rt *rewriteTransport) setTarget(host string) {
	<-rt.mu
	rt.target = host
	rt.mu <- struct{}{}
}

func (rt *rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	<-rt.mu
	target := rt.target
	rt.mu <- struct{}{}
	if target != "" {
		clone := req.Clone(req.Context())
		clone.URL.Host = target
		clone.Host = target
		req = clone
	}
	return rt.base.RoundTrip(req)
}
