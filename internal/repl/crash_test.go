// Crash-injection tests for the follower apply path. The dangerous
// record is the tick: inserts and evicts are idempotent at the storage
// layer, but replaying a logged fungus run twice would decay freshness
// twice. So each test holds the leader to a single WAL generation and
// asserts the exact arithmetic — ticks applied == ticks issued × shards
// and inserts applied == rows ingested — on top of the byte-identical
// snapshot oracle. Redelivery provably happens (the faults strike after
// records applied but before the cursor confirmed), so the counters
// only land exact if the redelivered prefix is trimmed, not re-applied.
package repl_test

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/repl"
)

const (
	crashShards = 4
	crashTicks  = 3
	crashRows   = 80
)

// crashWorkload drives a fixed leader history inside one generation:
// crashRows inserts, crashTicks ticks, one destructive read.
func crashWorkload(t *testing.T, lh *leaderHarness) {
	t.Helper()
	lh.ingest(t, 50, 0)
	lh.tick(t, 2)
	lh.ingest(t, 30, 1)
	lh.consume(t, 60)
	lh.tick(t, 1)
}

// assertExactlyOnce checks the per-record-kind arithmetic after the
// follower caught up on a single-generation leader.
func assertExactlyOnce(t *testing.T, fh *followerHarness) {
	t.Helper()
	st, ok := fh.f.TableStatus(tableName)
	if !ok {
		t.Fatal("follower lost the table")
	}
	if want := uint64(crashTicks * crashShards); st.Ticks != want {
		t.Errorf("tick records applied %d, want exactly %d (one per shard per tick)", st.Ticks, want)
	}
	if want := uint64(crashRows); st.Inserts != want {
		t.Errorf("insert records applied %d, want exactly %d", st.Inserts, want)
	}
	if st.Reconnects < 1 {
		t.Errorf("fault was injected but the follower never reconnected")
	}
}

// TestCrashMidApplyBeforeCursorAdvance kills the stream right after a
// batch has been applied but before any commit confirms it — the
// follower-crash-between-apply-and-cursor-advance window. The
// reconnect resumes from the stale confirmed cursor, the leader
// redelivers the applied prefix, and the trim keeps every record
// exactly-once.
func TestCrashMidApplyBeforeCursorAdvance(t *testing.T) {
	lh := startLeader(t, eventsSpec(crashShards))
	crashWorkload(t, lh) // history exists before the follower ever connects

	var mu sync.Mutex
	crashes := 0
	fh := startFollower(t, lh.srv.URL, func(cfg *repl.Config) {
		cfg.OnApplied = func(table string, shard int, st core.ApplyStats) error {
			mu.Lock()
			defer mu.Unlock()
			crashes++
			if crashes == 1 || crashes == 3 {
				return fmt.Errorf("injected crash after applying shard %d batch", shard)
			}
			return nil
		}
	})
	fh.waitSynced(t, lh)
	assertExactlyOnce(t, fh)
	all := []int{0, 1, 2, 3}
	assertShardsIdentical(t, lh, fh, all)
}

// mutateTransport rewrites the FIRST /v2/replicate response stream
// line by line; later streams (the reconnects) pass through untouched.
type mutateTransport struct {
	base http.RoundTripper
	mu   sync.Mutex
	used bool
	fn   lineMutator
}

// lineMutator inspects one NDJSON line and returns its replacement
// plus a verdict: mutKeep keeps mutating later lines, mutDone switches
// the stream to passthrough, mutCut ends the body after this line.
type lineMutator func(line []byte) ([]byte, int)

const (
	mutKeep = iota
	mutDone
	mutCut
)

func (mt *mutateTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := mt.base.RoundTrip(req)
	if err != nil || req.URL.Path != "/v2/replicate" {
		return resp, err
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.used {
		return resp, nil
	}
	mt.used = true
	resp.Body = &mutatedBody{rc: resp.Body, br: bufio.NewReader(resp.Body), fn: mt.fn}
	return resp, err
}

type mutatedBody struct {
	rc   io.ReadCloser
	br   *bufio.Reader
	fn   lineMutator
	buf  bytes.Buffer
	pass bool
	done bool
}

func (mb *mutatedBody) Read(p []byte) (int, error) {
	for mb.buf.Len() == 0 {
		if mb.done {
			return 0, io.EOF
		}
		if mb.pass {
			return mb.br.Read(p)
		}
		line, err := mb.br.ReadBytes('\n')
		if len(line) > 0 {
			out, verdict := mb.fn(line)
			mb.buf.Write(out)
			switch verdict {
			case mutDone:
				mb.pass = true
			case mutCut:
				mb.done = true
			}
		}
		if err != nil {
			mb.done = true
			break
		}
	}
	return mb.buf.Read(p)
}

func (mb *mutatedBody) Close() error { return mb.rc.Close() }

// TestTornStreamRedelivery cuts the wire immediately after the first
// shipped record batch, before its commit line — the shipped-batch-
// torn-at-a-batch-boundary fault. The batch has been applied; the
// reconnect redelivers it; exactly-once must survive.
func TestTornStreamRedelivery(t *testing.T) {
	lh := startLeader(t, eventsSpec(crashShards))
	crashWorkload(t, lh)

	mt := &mutateTransport{base: http.DefaultTransport, fn: func(line []byte) ([]byte, int) {
		if bytes.Contains(line, []byte(`"recs"`)) {
			return line, mutCut // deliver the batch, then die before the commit
		}
		return line, mutKeep
	}}
	fh := startFollower(t, lh.srv.URL, func(cfg *repl.Config) {
		cfg.HTTPClient = &http.Client{Transport: mt}
	})
	fh.waitSynced(t, lh)
	assertExactlyOnce(t, fh)
	assertShardsIdentical(t, lh, fh, []int{0, 1, 2, 3})
}

// TestTornBatchRejectedBeforeApply corrupts the first shipped batch by
// chopping its payload mid-frame. The follower must reject the whole
// batch up front (nothing half-applies — a half-applied batch would
// replay its tick records after reconnect), pin a torn-batch error,
// reconnect, and converge off the intact redelivery.
func TestTornBatchRejectedBeforeApply(t *testing.T) {
	lh := startLeader(t, eventsSpec(crashShards))
	crashWorkload(t, lh)

	mt := &mutateTransport{base: http.DefaultTransport, fn: func(line []byte) ([]byte, int) {
		if !bytes.Contains(line, []byte(`"recs"`)) {
			return line, mutKeep
		}
		var ev struct {
			Recs struct {
				Shard int    `json:"shard"`
				From  int64  `json:"from"`
				N     int    `json:"n"`
				Data  []byte `json:"data"`
			} `json:"recs"`
		}
		if err := json.Unmarshal(line, &ev); err != nil || len(ev.Recs.Data) < 8 {
			return line, mutKeep
		}
		ev.Recs.Data = ev.Recs.Data[:len(ev.Recs.Data)-5] // tear the last frame mid-record
		out, err := json.Marshal(map[string]any{"recs": map[string]any{
			"shard": ev.Recs.Shard, "from": ev.Recs.From, "n": ev.Recs.N,
			"data": base64.StdEncoding.EncodeToString(ev.Recs.Data),
		}})
		if err != nil {
			return line, mutKeep
		}
		return append(out, '\n'), mutDone
	}}
	fh := startFollower(t, lh.srv.URL, func(cfg *repl.Config) {
		cfg.HTTPClient = &http.Client{Transport: mt}
	})
	fh.waitSynced(t, lh)
	assertExactlyOnce(t, fh)
	assertShardsIdentical(t, lh, fh, []int{0, 1, 2, 3})

	// The rejection is pinned in the table's status: the last stream
	// error was the pre-apply validation, not a storage failure.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, _ := fh.f.TableStatus(tableName)
		if st.Err != nil && strings.Contains(st.Err.Error(), "torn or corrupt") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("torn batch never surfaced as a validation error (last: %v)", st.Err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
