// The convergence property test: a randomized ingest × decay ×
// destructive-read workload against a leader, shipped to a follower
// whose stream is cut at fuzzed commit boundaries and whose generation
// rolls under forced checkpoints — and whose final state must still be
// byte-identical, shard for shard.
package repl_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fungusdb/internal/repl"
	"fungusdb/pkg/client"
)

// commitCutter injects stream disconnects at a fuzzed set of commit
// indices — the convergence suite's "kill the wire at an arbitrary
// group-commit boundary" fault.
type commitCutter struct {
	mu   sync.Mutex
	n    uint64
	cuts map[uint64]bool
	hit  int
}

func newCommitCutter(rng *rand.Rand, want int) *commitCutter {
	cc := &commitCutter{cuts: map[uint64]bool{}}
	next := uint64(1 + rng.Intn(3))
	for i := 0; i < want; i++ {
		cc.cuts[next] = true
		next += uint64(2 + rng.Intn(4))
	}
	return cc
}

func (cc *commitCutter) onCommit(table string, c client.ReplCommit) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.n++
	if cc.cuts[cc.n] {
		cc.hit++
		return fmt.Errorf("injected disconnect at commit %d", cc.n)
	}
	return nil
}

func (cc *commitCutter) hits() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hit
}

// TestConvergence is the acceptance property: under a random workload
// with at least two injected disconnects and forced checkpoint churn,
// leader and follower converge to byte-identical shard snapshots and
// identical query answers — at one, four and seven shards.
func TestConvergence(t *testing.T) {
	for _, shards := range []int{1, 4, 7} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(40 + shards)))
			lh := startLeader(t, eventsSpec(shards))
			cc := newCommitCutter(rng, 2+rng.Intn(2))
			fh := startFollower(t, lh.srv.URL, func(cfg *repl.Config) {
				cfg.OnCommit = cc.onCommit
			})

			rounds := 8 + rng.Intn(4)
			for r := 0; r < rounds; r++ {
				lh.ingest(t, 20+rng.Intn(40), r)
				switch rng.Intn(4) {
				case 0:
					lh.tick(t, 1+rng.Intn(3))
				case 1:
					lh.consume(t, float64(50+rng.Intn(40)))
				case 2:
					// Force a checkpoint: the WAL truncates and the
					// generation advances under the live stream, driving
					// the rollover (caught-up cursor) or rebase (lagging
					// cursor) path depending on shipping timing.
					if err := lh.tbl.Checkpoint(); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
				// Pace rounds past the shipper's poll interval so each
				// round ships (and commits) separately instead of
				// coalescing into one tail burst — the commit stream is
				// what the cutter's fuzzed indices land on.
				time.Sleep(time.Duration(12+rng.Intn(8)) * time.Millisecond)
			}
			// Top up the workload until every fuzzed cut has fired: the
			// property needs >= 2 real disconnects, not two dice rolls.
			for i := 0; cc.hits() < 2 && i < 100; i++ {
				lh.ingest(t, 5, 100+i)
				time.Sleep(15 * time.Millisecond)
			}
			// A final decay ramp so rot-eviction (tick replay on the
			// follower) provably ran, then quiesce.
			lh.tick(t, 3)

			fh.waitSynced(t, lh)
			if got := cc.hits(); got < 2 {
				t.Fatalf("want >= 2 injected disconnects, fuzz hit %d (commit cuts %v)", got, cc.cuts)
			}
			st, ok := fh.f.TableStatus(tableName)
			if !ok {
				t.Fatal("follower lost the table")
			}
			if st.Reconnects < 2 {
				t.Errorf("want >= 2 reconnects after injected cuts, got %d", st.Reconnects)
			}
			if st.Fenced {
				t.Fatalf("follower fenced unexpectedly: %v", st.Err)
			}

			all := make([]int, shards)
			for i := range all {
				all[i] = i
			}
			assertShardsIdentical(t, lh, fh, all)
			assertQueriesIdentical(t, lh, fh)
		})
	}
}

// TestConvergenceAcrossRestartRebase pins the rebase path explicitly: a
// follower that joins after the leader has already checkpointed twice
// can only start from shipped snapshots, and must still land on
// byte-identical shards.
func TestConvergenceAcrossRestartRebase(t *testing.T) {
	lh := startLeader(t, eventsSpec(4))
	lh.ingest(t, 60, 0)
	lh.tick(t, 2)
	if err := lh.tbl.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	lh.ingest(t, 40, 1)
	lh.consume(t, 55)
	if err := lh.tbl.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	lh.ingest(t, 30, 2)
	lh.tick(t, 1)

	fh := startFollower(t, lh.srv.URL, nil)
	fh.waitSynced(t, lh)
	st, _ := fh.f.TableStatus(tableName)
	if st.Rebases < 1 {
		t.Errorf("late join against a checkpointed leader should rebase, got %d rebases", st.Rebases)
	}
	assertShardsIdentical(t, lh, fh, []int{0, 1, 2, 3})
	assertQueriesIdentical(t, lh, fh)
}
