// Negative-path contracts: every mutating route on a follower answers
// the stable "read_only" code, and a cursor from a generation the
// leader never produced is fenced with the stable "stale_generation"
// code — at the wire, and permanently in the follower daemon.
package repl_test

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"fungusdb/internal/repl"
	"fungusdb/pkg/client"
)

// wantCode asserts err is the server's stable coded error.
func wantCode(t *testing.T, err error, code string, status int) {
	t.Helper()
	if err == nil {
		t.Fatalf("want %q error, got success", code)
	}
	var ce *client.Error
	if !errors.As(err, &ce) {
		t.Fatalf("want *client.Error with code %q, got %T: %v", code, err, err)
	}
	if ce.Code != code {
		t.Errorf("error code = %q, want %q (%v)", ce.Code, code, err)
	}
	if status != 0 && ce.Status != status {
		t.Errorf("http status = %d, want %d (%v)", ce.Status, status, err)
	}
}

// TestFollowerRejectsWrites pins the read-only contract on every
// mutating route while reads keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	lh := startLeader(t, eventsSpec(2))
	lh.ingest(t, 10, 0)
	fh := startFollower(t, lh.srv.URL, nil)
	fh.waitSynced(t, lh)

	// DDL: create and drop.
	err := fh.cl.CreateTable(client.TableSpec{Name: "scratch", Schema: "a INT"})
	wantCode(t, err, "read_only", http.StatusForbidden)
	err = fh.cl.DropTable(tableName)
	wantCode(t, err, "read_only", http.StatusForbidden)

	// DML: insert and local decay.
	_, err = fh.cl.Insert(tableName, [][]any{{"dev-9", 1.5}})
	wantCode(t, err, "read_only", http.StatusForbidden)
	_, err = fh.cl.Tick(1)
	wantCode(t, err, "read_only", http.StatusForbidden)

	// Destructive reads: CONSUME through /v2/query mutates the extent,
	// so the same code applies there.
	_, err = fh.cl.Query("SELECT CONSUME * FROM events")
	wantCode(t, err, "read_only", http.StatusForbidden)

	// Plain reads still answer — the whole point of a follower.
	if got := queryRows(t, fh.cl, "SELECT * FROM events"); len(got) != 10 {
		t.Errorf("follower read returned %d rows, want 10", len(got))
	}
	// And nothing above leaked a mutation.
	assertShardsIdentical(t, lh, fh, []int{0, 1})
}

// TestStaleGenerationWire pins the 409 stale_generation answer to a
// replication cursor from the future — the raw wire contract.
func TestStaleGenerationWire(t *testing.T) {
	lh := startLeader(t, eventsSpec(2))
	lh.ingest(t, 5, 0)
	_, err := lh.cl.Replicate(tableName, client.ReplCursor{Generation: 999})
	wantCode(t, err, "stale_generation", http.StatusConflict)
}

// TestStaleGenerationFencesFollower swaps the leader out from under a
// live follower: after the follower's cursor has advanced to
// generation 1 on leader A, its transport is re-aimed at a freshly
// seeded leader B still on generation 0. The reconnect must be fenced
// — retrying against divergent history would splice two timelines —
// and the replica must stay up for reads.
func TestStaleGenerationFencesFollower(t *testing.T) {
	lhA := startLeader(t, eventsSpec(2))
	lhA.ingest(t, 20, 0)

	rt := newRewriteTransport()
	fh := startFollower(t, lhA.srv.URL, func(cfg *repl.Config) {
		cfg.HTTPClient = &http.Client{Transport: rt}
	})
	fh.waitSynced(t, lhA)

	// Advance leader A past generation 0 and wait for the follower's
	// cursor to follow it there (rollover or rebase, timing's choice).
	if err := lhA.tbl.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	lhA.ingest(t, 5, 1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := fh.f.TableStatus(tableName)
		if ok && st.Generation >= 1 && st.Connected && st.LagRecords == 0 && st.HaveCounts {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached generation 1 (status %+v)", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rowsBefore := queryRows(t, fh.cl, "SELECT * FROM events")

	// Leader B: same table name, but a history that never saw
	// generation 1.
	lhB := startLeader(t, eventsSpec(2))
	lhB.ingest(t, 3, 0)
	rt.setTarget(strings.TrimPrefix(lhB.srv.URL, "http://"))
	lhA.srv.CloseClientConnections() // drop the live stream to force the reconnect

	deadline = time.Now().Add(10 * time.Second)
	for {
		st, ok := fh.f.TableStatus(tableName)
		if ok && st.Fenced {
			var ce *client.Error
			if !errors.As(st.Err, &ce) || ce.Code != "stale_generation" {
				t.Fatalf("fenced with %v, want pinned stale_generation", st.Err)
			}
			if st.Connected {
				t.Error("fenced table still reports a live stream")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never fenced against the regressed leader (status %+v)", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fenced ≠ down: the replica still answers reads with its last
	// consistent state.
	if got := queryRows(t, fh.cl, "SELECT * FROM events"); len(got) != len(rowsBefore) {
		t.Errorf("fenced replica answered %d rows, want the pre-fence %d", len(got), len(rowsBefore))
	}
}
