// Package repl is the follower side of WAL log-shipping replication: a
// daemon that discovers a leader's replicable tables, mirrors each one
// as an in-memory read-only replica, and tails the leader's per-shard
// WAL over POST /v2/replicate, applying shipped frames through the same
// replay machinery crash recovery uses (see internal/core's replica
// surface).
//
// Cursor discipline — this is where exactly-once lives:
//
//   - `confirmed` is the reconnect cursor: generation plus per-shard
//     byte offsets, advanced only at commit lines (the leader's
//     group-commit window boundaries). A reconnect always resumes from
//     confirmed, so the leader may re-deliver anything applied since.
//   - `applied` tracks per-shard bytes actually applied, which can run
//     ahead of confirmed between commits. Re-delivered bytes below
//     applied are trimmed before apply — offsets only ever advance by
//     whole frames, so the trim is always frame-aligned. Every record
//     therefore applies exactly once, even though the wire delivers
//     at-least-once. (Idempotence of inserts/evicts alone would not be
//     enough: replaying a tick record twice would decay freshness
//     twice.)
//   - A batch is validated as whole frames before any of it applies; a
//     torn or corrupt batch is rejected up front and re-delivered
//     intact after reconnect, so a tick can never half-apply.
//
// Generation fencing: a leader that answers with the stable
// "stale_generation" code (the follower's cursor names a generation the
// leader never produced) permanently fences the table — retrying would
// splice divergent histories — and the error is pinned in its status.
package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"fungusdb/internal/catalog"
	"fungusdb/internal/core"
	"fungusdb/internal/server"
	"fungusdb/internal/wal"
	"fungusdb/pkg/client"
)

// Config tunes a Follower.
type Config struct {
	// Leader is the leader server's base URL, e.g. "http://10.0.0.5:8044".
	Leader string
	// DB is the follower-side database replicas are created in. Tables
	// are created as in-memory read-only replicas of the leader's specs.
	DB *core.DB
	// HTTPClient overrides the transport (tests inject fault-injecting
	// round trippers). Nil uses http.DefaultClient.
	HTTPClient *http.Client
	// PollTables is the leader catalog re-list interval (new tables get
	// picked up). 0 means 2s.
	PollTables time.Duration
	// Backoff is the delay before reconnecting a dropped stream. 0
	// means 100ms.
	Backoff time.Duration

	// OnApplied, when set, runs after each applied record batch, before
	// any cursor confirmation. Returning an error aborts the stream —
	// the crash-injection tests use it to kill the session mid-apply.
	OnApplied func(table string, shard int, st core.ApplyStats) error
	// OnCommit, when set, runs after a commit line advances the
	// confirmed cursor. Returning an error aborts the stream — the
	// convergence tests use it to inject disconnects at fuzzed commit
	// boundaries.
	OnCommit func(table string, c client.ReplCommit) error
}

// Follower tails one leader, mirroring every replicable table.
type Follower struct {
	cfg    Config
	cl     *client.Client
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	tables map[string]*tableRepl
}

// tableRepl is one table's replication state.
type tableRepl struct {
	f    *Follower
	name string
	tbl  *core.Table

	mu           sync.Mutex
	confirmed    client.ReplCursor // reconnect cursor (commit-granular)
	gen          uint64            // generation of the live stream
	applied      []int64           // per-shard applied byte offsets (ahead of confirmed between commits)
	appliedRecs  []uint64          // per-shard records applied this generation
	leaderCounts []uint64          // leader's per-shard record counts from the last commit/ping
	inserts      uint64
	evicts       uint64
	ticks        uint64
	batches      uint64
	reconnects   uint64
	rebases      uint64
	connected    bool
	fenced       bool
	lastErr      error
}

// TableStatus is a point-in-time snapshot of one table's replication
// position.
type TableStatus struct {
	Table      string
	Leader     string
	Generation uint64
	LagRecords uint64 // leader records not yet applied (0 when counts unknown)
	HaveCounts bool   // at least one commit/ping received this generation
	// AppliedRecords is the total records applied this generation
	// (including idempotent skips) — the follower-side half of the
	// exactly-once ledger a harness checks against the leader's
	// RecordCounts.
	AppliedRecords uint64
	Inserts        uint64
	Evicts         uint64
	Ticks          uint64
	Batches        uint64
	Reconnects     uint64
	Rebases        uint64
	Connected      bool
	Fenced         bool
	Err            error
}

// Start connects to the leader, mirrors its current replicable tables,
// and begins tailing each one. Table discovery then repeats every
// PollTables. An unreachable leader is not fatal — discovery retries in
// the background.
func Start(cfg Config) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, fmt.Errorf("repl: no leader address")
	}
	if cfg.DB == nil {
		return nil, fmt.Errorf("repl: no follower DB")
	}
	if cfg.PollTables <= 0 {
		cfg.PollTables = 2 * time.Second
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		cfg:    cfg,
		cl:     client.New(cfg.Leader, cfg.HTTPClient),
		ctx:    ctx,
		cancel: cancel,
		tables: make(map[string]*tableRepl),
	}
	f.discover() // best effort; background loop retries
	f.wg.Add(1)
	go f.discoverLoop()
	return f, nil
}

// Stop aborts every stream and waits for the daemon to wind down. The
// replica tables stay queryable.
func (f *Follower) Stop() {
	f.cancel()
	f.wg.Wait()
}

func (f *Follower) discoverLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.PollTables)
	defer t.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-t.C:
			f.discover()
		}
	}
}

// discover lists the leader's replicable specs and starts tailing any
// table not yet mirrored.
func (f *Follower) discover() {
	raws, err := f.cl.ReplTables()
	if err != nil {
		return
	}
	for _, raw := range raws {
		var spec catalog.TableSpec
		if err := json.Unmarshal(raw, &spec); err != nil || spec.Name == "" {
			continue
		}
		f.mu.Lock()
		if _, ok := f.tables[spec.Name]; ok {
			f.mu.Unlock()
			continue
		}
		tbl, err := f.cfg.DB.CreateReplicaFromSpec(spec)
		if err != nil {
			// Name collision with a local table, or an unbuildable spec:
			// skip; re-listing will not retry a created table.
			f.mu.Unlock()
			continue
		}
		tr := &tableRepl{f: f, name: spec.Name, tbl: tbl}
		f.tables[spec.Name] = tr
		f.mu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			tr.run(f.ctx)
		}()
	}
}

// run is one table's tail loop: stream, reconnect on failure, stop on
// fencing or shutdown.
func (tr *tableRepl) run(ctx context.Context) {
	for {
		err := tr.streamOnce(ctx)
		tr.setConnected(false)
		if ctx.Err() != nil {
			return
		}
		if err != nil && errCode(err) == "stale_generation" {
			tr.mu.Lock()
			tr.fenced = true
			tr.lastErr = err
			tr.mu.Unlock()
			return
		}
		tr.mu.Lock()
		tr.lastErr = err
		tr.reconnects++
		tr.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-time.After(tr.f.cfg.Backoff):
		}
	}
}

// errCode extracts the server's stable error code, if any.
func errCode(err error) string {
	var e *client.Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ""
}

// streamOnce opens one replication stream from the confirmed cursor and
// applies it until it breaks.
func (tr *tableRepl) streamOnce(ctx context.Context) error {
	st, err := tr.f.cl.Replicate(tr.name, tr.cursor())
	if err != nil {
		return err
	}
	defer st.Close()
	stop := context.AfterFunc(ctx, func() { st.Close() })
	defer stop()

	ev, err := st.Next()
	if err != nil {
		return err
	}
	if ev.Header == nil {
		return fmt.Errorf("repl: %s: stream opened without a header", tr.name)
	}
	hdr := ev.Header
	shards := tr.tbl.Shards()
	if hdr.Shards != shards {
		return fmt.Errorf("repl: %s: leader ships %d shards, replica has %d", tr.name, hdr.Shards, shards)
	}
	switch hdr.Mode {
	case "tail":
		tr.beginTail(hdr)
	case "rebase":
		if err := tr.rebase(st, hdr); err != nil {
			return err
		}
	default:
		return fmt.Errorf("repl: %s: unknown stream mode %q", tr.name, hdr.Mode)
	}
	tr.setConnected(true)

	for {
		ev, err := st.Next()
		if err != nil {
			return err
		}
		switch {
		case ev.Recs != nil:
			if err := tr.applyRecs(ev.Recs); err != nil {
				return err
			}
		case ev.Commit != nil:
			if err := tr.onCommit(*ev.Commit); err != nil {
				return err
			}
		case ev.Ping != nil:
			tr.onPing(*ev.Ping)
		case ev.End != nil:
			// "rebase_required": reconnect immediately; the leader will
			// answer the (stale) confirmed cursor with a rebase stream.
			return nil
		case ev.Snap != nil:
			return fmt.Errorf("repl: %s: snapshot chunk outside a rebase", tr.name)
		}
	}
}

// beginTail aligns the in-memory stream state with a tail-mode header.
// A header generation beyond the confirmed one is the caught-up
// rollover accepted at connect time: the cursor was exactly at the last
// truncation, so the new generation starts at offset zero everywhere.
func (tr *tableRepl) beginTail(hdr *client.ReplHeader) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	shards := tr.tbl.Shards()
	if tr.applied == nil {
		tr.applied = make([]int64, shards)
		copy(tr.applied, tr.confirmed.Offsets)
		tr.appliedRecs = make([]uint64, shards)
	}
	if hdr.Generation != tr.confirmed.Generation {
		tr.gen = hdr.Generation
		tr.confirmed = client.ReplCursor{Generation: hdr.Generation, Offsets: make([]int64, shards)}
		tr.applied = make([]int64, shards)
		tr.appliedRecs = make([]uint64, shards)
		tr.leaderCounts = nil
		return
	}
	tr.gen = hdr.Generation
	// applied may be ahead of confirmed (uncommitted applies from the
	// previous session); keep it — re-delivered bytes below it trim.
}

// rebase discards the replica and rebuilds it from the leader's shipped
// snapshots, then positions the cursor at the snapshot generation's
// offset zero.
func (tr *tableRepl) rebase(st *client.ReplStream, hdr *client.ReplHeader) error {
	if err := tr.tbl.ResetReplica(); err != nil {
		return err
	}
	shards := tr.tbl.Shards()
	pending := make([][]byte, shards)
	done := make([]bool, shards)
	remaining := shards
	for remaining > 0 {
		ev, err := st.Next()
		if err != nil {
			return err
		}
		if ev.Snap == nil {
			return fmt.Errorf("repl: %s: rebase wants %d more snapshot shards, got other event", tr.name, remaining)
		}
		i := ev.Snap.Shard
		if i < 0 || i >= shards || done[i] {
			return fmt.Errorf("repl: %s: bad rebase snapshot shard %d", tr.name, i)
		}
		pending[i] = append(pending[i], ev.Snap.Data...)
		if !ev.Snap.Last {
			continue
		}
		var next uint64
		if i < len(hdr.NextIDs) {
			next = hdr.NextIDs[i]
		}
		if err := tr.tbl.ApplyShardSnapshot(i, pending[i], next); err != nil {
			return err
		}
		pending[i] = nil
		done[i] = true
		remaining--
	}
	tr.tbl.FinishRebase()
	tr.mu.Lock()
	tr.gen = hdr.Generation
	tr.confirmed = client.ReplCursor{Generation: hdr.Generation, Offsets: make([]int64, shards)}
	tr.applied = make([]int64, shards)
	tr.appliedRecs = make([]uint64, shards)
	tr.leaderCounts = nil
	tr.rebases++
	tr.mu.Unlock()
	return nil
}

// applyRecs applies one shipped record batch, trimming any re-delivered
// frame-aligned prefix so each record applies exactly once.
func (tr *tableRepl) applyRecs(rc *client.ReplRecs) error {
	i := rc.Shard
	if i < 0 || i >= tr.tbl.Shards() {
		return fmt.Errorf("repl: %s: recs for shard %d out of range", tr.name, i)
	}
	tr.mu.Lock()
	appliedAt := tr.applied[i]
	tr.mu.Unlock()
	data, from := rc.Data, rc.From
	if from > appliedAt {
		return fmt.Errorf("repl: %s: shard %d stream gap: recs at %d but applied %d", tr.name, i, from, appliedAt)
	}
	if from+int64(len(data)) <= appliedAt {
		return nil // whole batch re-delivered and already applied
	}
	if from < appliedAt {
		data = data[appliedAt-from:] // frame-aligned: offsets advance by whole frames only
	}
	// Validate the whole batch before applying any of it: a torn or
	// corrupt batch must be rejected up front, because retrying a
	// half-applied batch would replay its tick records twice.
	if n, _ := wal.FrameScan(data); n != int64(len(data)) {
		return fmt.Errorf("repl: %s: shard %d: torn or corrupt record batch (%d of %d bytes valid)",
			tr.name, i, n, len(data))
	}
	st, err := tr.tbl.ApplyShipped(i, data)
	if err != nil {
		return err
	}
	tr.mu.Lock()
	tr.applied[i] += int64(len(data))
	tr.appliedRecs[i] += uint64(st.Inserts + st.Evicts + st.Ticks + st.Skipped)
	tr.inserts += uint64(st.Inserts)
	tr.evicts += uint64(st.Evicts)
	tr.ticks += uint64(st.Ticks)
	tr.batches++
	tr.mu.Unlock()
	if tr.f.cfg.OnApplied != nil {
		if err := tr.f.cfg.OnApplied(tr.name, i, st); err != nil {
			return err
		}
	}
	return nil
}

// onCommit advances the confirmed cursor (or rolls the stream over to a
// fresh generation when the leader checkpointed under a caught-up
// cursor).
func (tr *tableRepl) onCommit(c client.ReplCommit) error {
	tr.mu.Lock()
	if c.Reset {
		shards := tr.tbl.Shards()
		tr.gen = c.Generation
		tr.confirmed = client.ReplCursor{Generation: c.Generation, Offsets: make([]int64, shards)}
		tr.applied = make([]int64, shards)
		tr.appliedRecs = make([]uint64, shards)
	} else if c.Generation == tr.gen {
		offs := make([]int64, len(tr.applied))
		copy(offs, tr.applied)
		tr.confirmed = client.ReplCursor{Generation: tr.gen, Offsets: offs}
	}
	tr.leaderCounts = append([]uint64(nil), c.Counts...)
	tr.mu.Unlock()
	if tr.f.cfg.OnCommit != nil {
		if err := tr.f.cfg.OnCommit(tr.name, c); err != nil {
			return err
		}
	}
	return nil
}

func (tr *tableRepl) onPing(c client.ReplCommit) {
	tr.mu.Lock()
	if c.Generation == tr.gen {
		tr.leaderCounts = append([]uint64(nil), c.Counts...)
	}
	tr.mu.Unlock()
}

func (tr *tableRepl) cursor() client.ReplCursor {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	cur := tr.confirmed
	cur.Offsets = append([]int64(nil), tr.confirmed.Offsets...)
	return cur
}

func (tr *tableRepl) setConnected(v bool) {
	tr.mu.Lock()
	tr.connected = v
	tr.mu.Unlock()
}

// status snapshots the table's replication position.
func (tr *tableRepl) status() TableStatus {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	st := TableStatus{
		Table: tr.name, Leader: tr.f.cfg.Leader, Generation: tr.gen,
		HaveCounts: tr.leaderCounts != nil,
		Inserts:    tr.inserts, Evicts: tr.evicts, Ticks: tr.ticks,
		Batches: tr.batches, Reconnects: tr.reconnects, Rebases: tr.rebases,
		Connected: tr.connected, Fenced: tr.fenced, Err: tr.lastErr,
	}
	for _, ap := range tr.appliedRecs {
		st.AppliedRecords += ap
	}
	for i, lc := range tr.leaderCounts {
		var ap uint64
		if i < len(tr.appliedRecs) {
			ap = tr.appliedRecs[i]
		}
		if lc > ap {
			st.LagRecords += lc - ap
		}
	}
	return st
}

// Status snapshots every mirrored table's replication position, in
// sorted table order — the block is rendered verbatim by fungusctl
// stats and the metrics collector, so its order is part of the output.
func (f *Follower) Status() []TableStatus {
	f.mu.Lock()
	trs := make([]*tableRepl, 0, len(f.tables))
	//fungusvet:allow determinism -- collected slice is sorted by table name below
	for _, tr := range f.tables {
		trs = append(trs, tr)
	}
	f.mu.Unlock()
	sort.Slice(trs, func(i, j int) bool { return trs[i].name < trs[j].name })
	out := make([]TableStatus, 0, len(trs))
	for _, tr := range trs {
		out = append(out, tr.status())
	}
	return out
}

// TableStatus snapshots one table's replication position.
func (f *Follower) TableStatus(name string) (TableStatus, bool) {
	f.mu.Lock()
	tr, ok := f.tables[name]
	f.mu.Unlock()
	if !ok {
		return TableStatus{}, false
	}
	return tr.status(), true
}

// ServerStatus adapts TableStatus to the HTTP server's stats shape;
// pass it as server.Config.ReplStatus on a follower front end.
func (f *Follower) ServerStatus(name string) (server.ReplStatus, bool) {
	st, ok := f.TableStatus(name)
	if !ok {
		return server.ReplStatus{}, false
	}
	return server.ReplStatus{
		Leader: st.Leader, Generation: st.Generation, LagRecords: st.LagRecords,
		Inserts: st.Inserts, Evicts: st.Evicts, Ticks: st.Ticks,
		Batches: st.Batches, Reconnects: st.Reconnects, Rebases: st.Rebases,
		Connected: st.Connected,
	}, true
}

// WaitCaughtUp blocks until the named table is connected and has
// applied every record the leader reports (lag zero with known counts),
// or the timeout passes. Quiesce leader writes first — lag against a
// moving leader may never pin to zero.
func (f *Follower) WaitCaughtUp(name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout) //fungusvet:allow determinism -- operator/test timeout on the local machine; never feeds replicated state
	for {
		st, ok := f.TableStatus(name)
		if ok && st.Connected && st.HaveCounts && st.LagRecords == 0 {
			return nil
		}
		if time.Now().After(deadline) { //fungusvet:allow determinism -- same wall-clock timeout as above
			return fmt.Errorf("repl: %s not caught up after %v (status %+v)", name, timeout, st)
		}
		select {
		case <-f.ctx.Done():
			return fmt.Errorf("repl: follower stopped while waiting for %s", name)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
