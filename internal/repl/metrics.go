// Replication metrics: the follower's scrape surface. Registered into
// the follower server's obs.Registry, so GET /metrics on a follower
// exports its replication position next to the engine metrics.
package repl

import "fungusdb/internal/obs"

// Collector exports per-table replication metrics:
//
//	fungusdb_repl_lag_records{table}          gauge — leader records not yet applied
//	fungusdb_repl_connected{table}            gauge — 1 while a stream is live
//	fungusdb_repl_generation{table}           gauge — WAL generation being tailed
//	fungusdb_repl_applied_records_total{table,kind} counter — kind = insert|evict|tick
//	fungusdb_repl_batches_total{table}        counter — shipped batches applied
//	fungusdb_repl_reconnects_total{table}     counter — stream drops survived
//	fungusdb_repl_rebases_total{table}        counter — snapshot re-bases
func (f *Follower) Collector() obs.Collector {
	return obs.CollectorFunc(func() []obs.Family {
		sts := f.Status()
		lag := obs.Family{Name: "fungusdb_repl_lag_records", Kind: obs.KindGauge,
			Help: "Leader WAL records not yet applied by this follower."}
		conn := obs.Family{Name: "fungusdb_repl_connected", Kind: obs.KindGauge,
			Help: "1 while the replication stream for the table is live."}
		gen := obs.Family{Name: "fungusdb_repl_generation", Kind: obs.KindGauge,
			Help: "WAL generation the follower is tailing."}
		applied := obs.Family{Name: "fungusdb_repl_applied_records_total", Kind: obs.KindCounter,
			Help: "Shipped WAL records applied, by record kind."}
		batches := obs.Family{Name: "fungusdb_repl_batches_total", Kind: obs.KindCounter,
			Help: "Shipped record batches applied."}
		reconnects := obs.Family{Name: "fungusdb_repl_reconnects_total", Kind: obs.KindCounter,
			Help: "Replication stream drops survived by reconnecting."}
		rebases := obs.Family{Name: "fungusdb_repl_rebases_total", Kind: obs.KindCounter,
			Help: "Snapshot re-bases (full replica rebuilds) performed."}
		for _, st := range sts {
			tl := obs.Label{Name: "table", Value: st.Table}
			b := func(v bool) float64 {
				if v {
					return 1
				}
				return 0
			}
			lag.Samples = append(lag.Samples, obs.Sample{Labels: []obs.Label{tl}, Value: float64(st.LagRecords)})
			conn.Samples = append(conn.Samples, obs.Sample{Labels: []obs.Label{tl}, Value: b(st.Connected)})
			gen.Samples = append(gen.Samples, obs.Sample{Labels: []obs.Label{tl}, Value: float64(st.Generation)})
			for _, kc := range []struct {
				kind string
				v    uint64
			}{{"insert", st.Inserts}, {"evict", st.Evicts}, {"tick", st.Ticks}} {
				applied.Samples = append(applied.Samples, obs.Sample{
					Labels: []obs.Label{tl, {Name: "kind", Value: kc.kind}},
					Value:  float64(kc.v),
				})
			}
			batches.Samples = append(batches.Samples, obs.Sample{Labels: []obs.Label{tl}, Value: float64(st.Batches)})
			reconnects.Samples = append(reconnects.Samples, obs.Sample{Labels: []obs.Label{tl}, Value: float64(st.Reconnects)})
			rebases.Samples = append(rebases.Samples, obs.Sample{Labels: []obs.Label{tl}, Value: float64(st.Rebases)})
		}
		return []obs.Family{lag, conn, gen, applied, batches, reconnects, rebases}
	})
}
