// Observability under replication: the follower's /metrics scrape
// carries its replication position, and its /v1 stats answer embeds the
// same numbers for CLI tooling.
package repl_test

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	return string(body)
}

// metricValue finds a sample line by its exact name{labels} prefix.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, sample+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[len(sample)+1:]), 64)
		if err != nil {
			t.Fatalf("sample %s: bad value in %q: %v", sample, line, err)
		}
		return v
	}
	t.Fatalf("sample %s missing from scrape:\n%s", sample, body)
	return 0
}

// TestFollowerMetricsScrape scrapes a follower while the stream is
// live, then pins the exact gauges and counters after quiesce.
func TestFollowerMetricsScrape(t *testing.T) {
	lh := startLeader(t, eventsSpec(3))
	lh.ingest(t, 30, 0)
	fh := startFollower(t, lh.srv.URL, nil)

	// Scrape while replication is (potentially) still in flight: the
	// families must be present and well-formed even mid-stream.
	mid := scrape(t, fh.srv.URL)
	for _, fam := range []string{
		"fungusdb_repl_lag_records", "fungusdb_repl_connected",
		"fungusdb_repl_generation", "fungusdb_repl_applied_records_total",
		"fungusdb_repl_batches_total", "fungusdb_repl_reconnects_total",
		"fungusdb_repl_rebases_total",
	} {
		if !strings.Contains(mid, fam) {
			t.Errorf("mid-replication scrape missing family %s", fam)
		}
	}

	lh.tick(t, 2)
	fh.waitSynced(t, lh)
	body := scrape(t, fh.srv.URL)

	tl := `{table="events"}`
	if v := metricValue(t, body, "fungusdb_repl_lag_records"+tl); v != 0 {
		t.Errorf("caught-up lag gauge = %v, want 0", v)
	}
	if v := metricValue(t, body, "fungusdb_repl_connected"+tl); v != 1 {
		t.Errorf("connected gauge = %v, want 1", v)
	}
	if v := metricValue(t, body, `fungusdb_repl_applied_records_total{table="events",kind="insert"}`); v != 30 {
		t.Errorf("applied insert counter = %v, want 30", v)
	}
	if v := metricValue(t, body, `fungusdb_repl_applied_records_total{table="events",kind="tick"}`); v != 6 {
		t.Errorf("applied tick counter = %v, want 6 (2 ticks x 3 shards)", v)
	}
	if v := metricValue(t, body, "fungusdb_repl_batches_total"+tl); v < 1 {
		t.Errorf("batches counter = %v, want >= 1", v)
	}

	// The follower's engine metrics coexist with the repl families on
	// the same registry (tuples restored by replication are live).
	if !strings.Contains(body, "fungusdb_table_live_tuples") {
		t.Error("follower scrape lost the engine families")
	}

	// The same position rides the stats API for CLI tooling.
	st, err := fh.cl.Stats(tableName)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Replication == nil {
		t.Fatal("follower stats carry no replication block")
	}
	if st.Replication.Leader != lh.srv.URL {
		t.Errorf("stats leader = %q, want %q", st.Replication.Leader, lh.srv.URL)
	}
	if !st.Replication.Connected || st.Replication.LagRecords != 0 {
		t.Errorf("stats position = %+v, want connected with zero lag", st.Replication)
	}
	if st.Replication.Inserts != 30 || st.Replication.Ticks != 6 {
		t.Errorf("stats counters = %+v, want 30 inserts / 6 ticks", st.Replication)
	}

	// A leader's stats must NOT grow a replication block.
	lst, err := lh.cl.Stats(tableName)
	if err != nil {
		t.Fatalf("leader stats: %v", err)
	}
	if lst.Replication != nil {
		t.Errorf("leader stats unexpectedly carry replication: %+v", lst.Replication)
	}
}
