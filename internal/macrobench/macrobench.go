// Package macrobench runs named end-to-end experiments against a real
// fungusd HTTP server: N concurrent pkg/client streamers issuing
// prepared queries over the NDJSON v2 API while a background ingest
// pipeline feeds the table and a ticker drives decay — the whole
// engine under load at once, where the micro-benchmarks each isolate
// one layer. Results carry wall time, merged query latency percentiles
// and heap readings; cmd/fungusbench folds them into the benchjson
// report the CI regression gate consumes.
package macrobench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/ingest"
	"fungusdb/internal/obs"
	"fungusdb/internal/server"
	"fungusdb/internal/tuple"
	"fungusdb/internal/workload"
	"fungusdb/pkg/client"
)

// Config parameterises a run. Scale < 1 shrinks durations and
// concurrency proportionally (tests use ~0.05); 0 means 1.0.
type Config struct {
	Seed  int64
	Scale float64
}

// Result is one experiment's outcome.
type Result struct {
	Name     string
	Wall     time.Duration
	P50      time.Duration // per-query latency: issue to fully drained stream
	P95      time.Duration
	P99      time.Duration
	Queries  uint64 // successfully drained streams (latency population)
	Rows     uint64 // rows ingested by the background pipeline
	Dropped  uint64 // rows shed by full ingest queues
	Ticks    uint64 // decay ticks applied during the run
	Soak     int    // held-open concurrent stream workers (soak only)
	HeapPre  uint64 // HeapAlloc after preload, before load
	HeapPeak uint64 // max HeapAlloc sampled during the run
	HeapPost uint64 // HeapAlloc after the run, post-GC
}

// experiment is one named workload shape. All counts are at Scale=1.
type experiment struct {
	name      string
	desc      string
	streamers int           // concurrent prepared-query clients
	soak      int           // extra held-open stream workers (0 = none)
	duration  time.Duration // load phase length
	preload   int           // rows inserted before the clock starts
	shards    int
	rate      float64       // ingest rows/sec (DropWhenFull)
	tickEvery time.Duration // decay cadence
}

// catalog is every experiment, in the order List returns. The "short"
// profile is sized for the CI bench job: a few seconds wall clock,
// enough traffic that the latency percentiles are stable.
var catalog = []experiment{
	{
		name: "short", desc: "CI profile: 4 streamers + ingest + decay, ~2s",
		streamers: 4, duration: 2 * time.Second, preload: 20000,
		shards: 4, rate: 20000, tickEvery: 50 * time.Millisecond,
	},
	{
		name: "mixed", desc: "16 streamers + heavy ingest + fast decay, ~8s",
		streamers: 16, duration: 8 * time.Second, preload: 50000,
		shards: 8, rate: 50000, tickEvery: 25 * time.Millisecond,
	},
	{
		name: "soak", desc: "256 concurrent NDJSON streams held against ingest + decay, ~8s",
		streamers: 4, soak: 256, duration: 8 * time.Second, preload: 30000,
		shards: 8, rate: 20000, tickEvery: 50 * time.Millisecond,
	},
}

// List returns the experiment names in run order.
func List() []string {
	out := make([]string, len(catalog))
	for i, e := range catalog {
		out[i] = e.name
	}
	return out
}

// Describe returns the one-line description for a named experiment.
func Describe(name string) (string, bool) {
	for _, e := range catalog {
		if e.name == name {
			return e.desc, true
		}
	}
	return "", false
}

// streamQueries are the templates every streamer cycles through; each
// exercises a different engine path (filtered scan with LIMIT,
// aggregate, top-k ORDER BY push-down).
var streamQueries = []string{
	"SELECT device, temp FROM macro WHERE temp > ? LIMIT 100",
	"SELECT COUNT(*) FROM macro WHERE battery < ?",
	"SELECT device, temp FROM macro ORDER BY temp DESC LIMIT 50",
}

// soakQuery is what held-open workers stream: a wide slice of the
// table, so each response is many NDJSON lines on the wire.
const soakQuery = "SELECT device, temp, battery FROM macro WHERE battery >= ? LIMIT 500"

// Run executes the named experiment and returns its result.
func Run(name string, cfg Config) (Result, error) {
	var exp *experiment
	for i := range catalog {
		if catalog[i].name == name {
			exp = &catalog[i]
			break
		}
	}
	if exp == nil {
		return Result{}, fmt.Errorf("macrobench: unknown experiment %q (have %v)", name, List())
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return run(*exp, scale, seed)
}

// scaleN shrinks a count, keeping at least min.
func scaleN(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

func run(exp experiment, scale float64, seed int64) (Result, error) {
	streamers := scaleN(exp.streamers, scale, 1)
	soak := 0
	if exp.soak > 0 {
		soak = scaleN(exp.soak, scale, 2)
	}
	duration := time.Duration(float64(exp.duration) * scale)
	if duration < 200*time.Millisecond {
		duration = 200 * time.Millisecond
	}
	preload := scaleN(exp.preload, scale, 256)

	// Engine + table. In-memory: the macro suite measures the query and
	// ingest paths, not disk; the WAL benchmarks cover durability.
	db, err := core.Open(core.DBConfig{Seed: seed})
	if err != nil {
		return Result{}, err
	}
	defer db.Close()
	gen := workload.NewIoT(512, seed)
	tbl, err := db.CreateTable("macro", core.TableConfig{
		Schema: gen.Schema(),
		Shards: exp.shards,
		Fungus: fungus.Linear{Rate: 0.02},
	})
	if err != nil {
		return Result{}, err
	}
	if err := preloadRows(tbl, gen, preload); err != nil {
		return Result{}, err
	}

	// HTTP server on a loopback port, sharing one registry with the
	// ingest pipeline's collector so a scrape during the run sees the
	// whole system.
	reg := obs.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	hs := &http.Server{Handler: server.NewWithConfig(db, server.Config{Registry: reg})}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Background ingest: load-shedding mode so a saturated shard sheds
	// rather than stalling the source; the drop counter is reported.
	pipe, err := ingest.New(workload.NewIoT(512, seed+1), tbl, ingest.Config{
		BatchSize:     256,
		QueueDepth:    4096,
		RatePerSecond: exp.rate * scale,
		DropWhenFull:  true,
	})
	if err != nil {
		return Result{}, err
	}
	reg.Register(pipe.MetricsCollector("macro"))

	res := Result{Name: exp.name, Soak: soak}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res.HeapPre = ms.HeapAlloc

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := pipe.Start(ctx); err != nil {
		return Result{}, err
	}

	var (
		wg       sync.WaitGroup
		ticks    atomic.Uint64
		heapPeak atomic.Uint64
		firstErr atomic.Value // error
	)
	fail := func(err error) {
		if err != nil && ctx.Err() == nil {
			firstErr.CompareAndSwap(nil, err)
		}
	}

	// Decay ticker.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(exp.tickEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := db.Tick(); err != nil {
					fail(err)
					return
				}
				ticks.Add(1)
			}
		}
	}()

	// Heap sampler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(20 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				for {
					cur := heapPeak.Load()
					if ms.HeapAlloc <= cur || heapPeak.CompareAndSwap(cur, ms.HeapAlloc) {
						break
					}
				}
			}
		}
	}()

	// Shared transport sized for the soak fan-out: hundreds of
	// concurrent streams must not thrash connection setup.
	transport := &http.Transport{MaxIdleConns: 1024, MaxIdleConnsPerHost: 1024}
	defer transport.CloseIdleConnections()
	httpc := &http.Client{Transport: transport}

	// Query streamers: each prepares the templates once, then cycles
	// through them until the clock runs out, timing issue-to-drained.
	latCh := make(chan []time.Duration, streamers)
	for i := 0; i < streamers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := client.New(base, httpc)
			stmts := make([]*client.Stmt, len(streamQueries))
			for j, sql := range streamQueries {
				st, err := c.Prepare(sql)
				if err != nil {
					fail(err)
					return
				}
				stmts[j] = st
			}
			var lats []time.Duration
			for n := 0; ctx.Err() == nil; n++ {
				j := n % len(stmts)
				var params []any
				switch j {
				case 0:
					params = []any{10.0 + float64((id+n)%20)}
				case 1:
					params = []any{0.2 + 0.6*float64(n%10)/10}
				}
				start := time.Now()
				rows, err := stmts[j].Query(params...)
				if err != nil {
					fail(err)
					return
				}
				for rows.Next() {
				}
				err = rows.Err()
				rows.Close()
				if err != nil {
					fail(err)
					return
				}
				lats = append(lats, time.Since(start))
			}
			latCh <- lats
		}(i)
	}

	// Soak workers: hold many NDJSON streams open at once. Each worker
	// keeps one stream in flight continuously, so at any instant ~soak
	// responses are on the wire against the same shards decay and
	// ingest are mutating.
	var soakStreams atomic.Uint64
	for i := 0; i < soak; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := client.New(base, httpc)
			st, err := c.Prepare(soakQuery)
			if err != nil {
				fail(err)
				return
			}
			for ctx.Err() == nil {
				rows, err := st.Query(0.0)
				if err != nil {
					fail(err)
					return
				}
				soakStreams.Add(1)
				for rows.Next() {
				}
				err = rows.Err()
				rows.Close()
				if err != nil {
					fail(err)
					return
				}
			}
		}(i)
	}

	start := time.Now()
	time.Sleep(duration)
	cancel()
	wg.Wait()
	res.Wall = time.Since(start)
	pipe.Stop()

	if err, _ := firstErr.Load().(error); err != nil {
		return Result{}, fmt.Errorf("macrobench %s: %w", exp.name, err)
	}

	var all []time.Duration
	for i := 0; i < streamers; i++ {
		all = append(all, <-latCh...)
	}
	if len(all) == 0 {
		return Result{}, fmt.Errorf("macrobench %s: no queries completed", exp.name)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.Queries = uint64(len(all))
	res.P50 = percentile(all, 0.50)
	res.P95 = percentile(all, 0.95)
	res.P99 = percentile(all, 0.99)

	st := pipe.Stats()
	res.Rows = st.Inserted
	res.Dropped = st.QueueDropped
	res.Ticks = ticks.Load()
	res.HeapPeak = heapPeak.Load()
	if res.HeapPeak < res.HeapPre {
		res.HeapPeak = res.HeapPre
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	res.HeapPost = ms.HeapAlloc

	// Final validity check: the run's registry must still gather — the
	// experiment doubles as an end-to-end test of the metrics surface.
	if _, err := reg.Gather(); err != nil {
		return Result{}, fmt.Errorf("macrobench %s: metrics gather: %w", exp.name, err)
	}
	return res, nil
}

// preloadRows batch-inserts n generator rows so streamers have a
// populated extent from the first query.
func preloadRows(tbl *core.Table, gen *workload.IoT, n int) error {
	const batch = 1024
	for done := 0; done < n; {
		b := batch
		if rem := n - done; rem < b {
			b = rem
		}
		rows := make([][]tuple.Value, b)
		for i := range rows {
			rows[i] = gen.Next()
		}
		if _, err := tbl.InsertBatch(rows); err != nil {
			return err
		}
		done += b
	}
	return nil
}

// percentile reads the q-quantile from an ascending-sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
