package macrobench

import (
	"strings"
	"testing"
	"time"
)

// TestRunShortScaled drives the CI experiment at toy scale: the full
// stack (HTTP server, streaming clients, ingest pipeline, decay
// ticker) must produce a populated result in well under a second.
func TestRunShortScaled(t *testing.T) {
	res, err := Run("short", Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 {
		t.Errorf("percentiles not ordered: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	if res.Wall < 200*time.Millisecond {
		t.Errorf("wall %v shorter than the scale floor", res.Wall)
	}
	if res.Rows == 0 {
		t.Error("background ingest inserted nothing")
	}
	if res.Ticks == 0 {
		t.Error("decay ticker never fired")
	}
	if res.HeapPre == 0 || res.HeapPeak < res.HeapPre {
		t.Errorf("heap readings wrong: pre=%d peak=%d post=%d", res.HeapPre, res.HeapPeak, res.HeapPost)
	}
}

// TestRunSoakScaled checks the held-open stream experiment at toy
// scale keeps multiple streams alive.
func TestRunSoakScaled(t *testing.T) {
	res, err := Run("soak", Config{Seed: 7, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.Soak < 2 {
		t.Errorf("soak workers = %d, want >= 2", res.Soak)
	}
	if res.Queries == 0 {
		t.Error("no streamer queries completed")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestListAndDescribe(t *testing.T) {
	names := List()
	if len(names) != 3 || names[0] != "short" {
		t.Fatalf("List() = %v", names)
	}
	for _, n := range names {
		if d, ok := Describe(n); !ok || d == "" {
			t.Errorf("Describe(%q) = %q, %v", n, d, ok)
		}
	}
	if _, ok := Describe("nope"); ok {
		t.Error("Describe accepted unknown name")
	}
}
