package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fungusdb/internal/catalog"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

// Durability threading and crash semantics at the engine layer: the
// WAL-level crash tests prove the log mechanics; these prove the knob
// reaches tables through DBConfig / TableSpec and that commit futures
// mean what docs/DURABILITY.md says across a simulated process crash
// (directory copied while the first DB still holds its buffers).

var duraSchema = tuple.MustSchema(
	tuple.Column{Name: "device", Kind: tuple.KindString},
	tuple.Column{Name: "temp", Kind: tuple.KindFloat},
)

// copyTree snapshots a DB directory (catalog + table subdirectories)
// the way a crash freezes it: whatever reached the files, and nothing
// still sitting in user-space buffers.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// manualGroupedDB opens a persistent DB whose grouped tables flush
// only on demand (no ticker, unreachable size threshold), so tests
// control the commit windows deterministically.
func manualGroupedDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(DBConfig{
		Seed: 1, Dir: dir,
		Durability:          wal.DurabilityGrouped,
		GroupCommitInterval: -1,
		GroupCommitSize:     1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDurabilityResolution(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(DBConfig{Seed: 1, Dir: dir, Durability: wal.DurabilityGrouped})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	inherit, err := db.CreateTable("inherit", TableConfig{Schema: duraSchema, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := inherit.Durability(); got != wal.DurabilityGrouped {
		t.Errorf("inherited durability = %v, want grouped", got)
	}
	override, err := db.CreateTable("override", TableConfig{
		Schema: duraSchema, Persist: true, Durability: wal.DurabilityStrict,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := override.Durability(); got != wal.DurabilityStrict {
		t.Errorf("override durability = %v, want strict", got)
	}
	// In-memory DB: unset everywhere resolves to none.
	mem, err := Open(DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	tbl, err := mem.CreateTable("m", TableConfig{Schema: duraSchema})
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Durability(); got != wal.DurabilityNone {
		t.Errorf("default durability = %v, want none", got)
	}
	// Non-persistent tables hand out pre-resolved waits.
	_, w, err := tbl.InsertDurable(Row("s", 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if !w.Resolved() {
		t.Error("in-memory InsertDurable wait not born resolved")
	}
}

// TestTableSpecDurabilityRoundTrip pins the declarative path: a spec's
// durability survives the catalog and reaches the recreated table.
func TestTableSpecDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(DBConfig{Seed: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTableFromSpec(catalog.TableSpec{
		Name: "evts", Schema: "device STRING, temp FLOAT", Shards: 3, Durability: "grouped",
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(DBConfig{Seed: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl, err := db2.Table("evts")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Durability(); got != wal.DurabilityGrouped {
		t.Errorf("spec durability after reopen = %v, want grouped", got)
	}
	if wi := tbl.WALInfo(); wi.SyncMode != "grouped" {
		t.Errorf("WALInfo sync mode = %q", wi.SyncMode)
	}
}

// TestGroupedCrashKeepsResolvedInserts is the engine-level half of the
// acceptance criterion: after a crash, exactly the inserts whose
// commit waits resolved are recovered — across shard counts.
func TestGroupedCrashKeepsResolvedInserts(t *testing.T) {
	for _, shards := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			db := manualGroupedDB(t, dir)
			defer db.Close()
			tbl, err := db.CreateTableFromSpec(catalog.TableSpec{
				Name: "evts", Schema: "device STRING, temp FLOAT", Shards: shards, Durability: "grouped",
			})
			if err != nil {
				t.Fatal(err)
			}

			const acked, unacked = 25, 9
			waits := make([]wal.CommitWait, 0, acked)
			for k := 0; k < acked; k++ {
				_, w, err := tbl.InsertDurable(Row("dev", float64(k)))
				if err != nil {
					t.Fatal(err)
				}
				waits = append(waits, w)
			}
			if waits[0].Resolved() {
				t.Fatal("wait resolved before any flush")
			}
			if err := tbl.SyncWAL(); err != nil {
				t.Fatal(err)
			}
			for k, w := range waits {
				if err := w.Wait(); err != nil {
					t.Fatalf("wait %d: %v", k, err)
				}
			}
			var pending []wal.CommitWait
			for k := acked; k < acked+unacked; k++ {
				_, w, err := tbl.InsertDurable(Row("dev", float64(k)))
				if err != nil {
					t.Fatal(err)
				}
				pending = append(pending, w)
			}
			for _, w := range pending {
				if w.Resolved() {
					t.Fatal("unflushed wait already resolved")
				}
			}

			crashed := copyTree(t, dir)
			db2, err := Open(DBConfig{Seed: 1, Dir: crashed})
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			tbl2, err := db2.Table("evts")
			if err != nil {
				t.Fatal(err)
			}
			if got := tbl2.Len(); got != acked {
				t.Fatalf("recovered %d rows, want the %d acknowledged", got, acked)
			}
		})
	}
}

// TestStrictInsertsSurviveCrashImmediately: every acknowledged strict
// insert is on disk before Insert returns — no Sync, no Close.
func TestStrictInsertsSurviveCrashImmediately(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(DBConfig{Seed: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTableFromSpec(catalog.TableSpec{
		Name: "evts", Schema: "device STRING, temp FLOAT", Shards: 4, Durability: "strict",
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 17
	for k := 0; k < n; k++ {
		_, w, err := tbl.InsertDurable(Row("dev", float64(k)))
		if err != nil {
			t.Fatal(err)
		}
		if !w.Resolved() {
			t.Fatal("strict wait not resolved at return")
		}
	}
	crashed := copyTree(t, dir)
	db2, err := Open(DBConfig{Seed: 1, Dir: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("evts")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Len(); got != n {
		t.Fatalf("recovered %d rows, want %d", got, n)
	}
}

// TestCheckpointResolvesGroupedWaits: a checkpoint makes the pending
// window durable through the committed snapshots, so its waits resolve
// without an explicit flush.
func TestCheckpointResolvesGroupedWaits(t *testing.T) {
	dir := t.TempDir()
	db := manualGroupedDB(t, dir)
	defer db.Close()
	tbl, err := db.CreateTable("t", TableConfig{
		Schema: duraSchema, Persist: true, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, w, err := tbl.InsertDurable(Row("dev", 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if w.Resolved() {
		t.Fatal("wait resolved before flush or checkpoint")
	}
	if err := tbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !w.Resolved() {
		t.Error("checkpoint did not resolve the pending window")
	}
	// And the row is genuinely durable: crash-copy and reopen.
	crashed := copyTree(t, dir)
	db2, err := Open(DBConfig{Seed: 1, Dir: crashed})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable("t", TableConfig{Schema: duraSchema, Persist: true, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 1 {
		t.Fatalf("recovered %d rows, want 1", tbl2.Len())
	}
}

// TestGroupCommitStatsSurface: grouped-mode fsync batching shows up in
// WALInfo (and therefore in server stats and fungusctl).
func TestGroupCommitStatsSurface(t *testing.T) {
	dir := t.TempDir()
	db := manualGroupedDB(t, dir)
	defer db.Close()
	tbl, err := db.CreateTable("t", TableConfig{Schema: duraSchema, Persist: true, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if _, err := tbl.Insert(Row("dev", float64(k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	wi := tbl.WALInfo()
	if wi.SyncMode != "grouped" {
		t.Errorf("sync mode = %q", wi.SyncMode)
	}
	if wi.GroupCommits != 1 {
		t.Errorf("group commits = %d, want 1", wi.GroupCommits)
	}
	if wi.AvgGroupSize != 10 {
		t.Errorf("avg group size = %g, want 10", wi.AvgGroupSize)
	}
}
